module shapesearch

go 1.24
