// Astronomy: the paper's star-luminosity use cases (Figure 1c). A dip in
// brightness marks a planet transiting its star; a sharp spike marks a
// supernova. Astronomers also filter on luminosity on the fly, which
// changes the shapes — exactly the ad-hoc exploration ShapeSearch targets.
//
//	go run ./examples/astronomy
package main

import (
	"fmt"
	"log"

	"shapesearch"
	"shapesearch/internal/gen"
)

func main() {
	tbl := gen.Luminosity(60, 300, 11)
	spec := shapesearch.ExtractSpec{Z: "star", X: "time", Y: "luminosity"}
	opts := shapesearch.DefaultOptions()
	opts.K = 5

	// Transit hunting: a narrow dip — flat, sharp fall, sharp rise, flat.
	q := shapesearch.MustParseRegex("f ; [p=down, m=>>] ; [p=up, m=>>] ; f")
	show(tbl, spec, q, opts, "planet transits (narrow dip)")

	// Supernovae, as the paper's NL example phrases it.
	q, _, err := shapesearch.ParseNL("find me objects with a sharp peak in luminosity")
	if err != nil {
		log.Fatal(err)
	}
	show(tbl, spec, q, opts, "supernovae (NL: sharp peak)")

	// Repeating transits: at least two dips — a candidate binary system or
	// a short-period planet.
	q = shapesearch.MustParseRegex("[p=down, m={2,}] & [p=up, m={2,}]")
	show(tbl, spec, q, opts, "repeating transits (≥2 dips)")

	// On-the-fly filters (Figure 1c): restrict to the mid-luminosity band
	// and search again — the shape of each trendline changes with the
	// filter, so nothing can be precomputed.
	filtered := spec
	filtered.Filters = []shapesearch.Filter{
		{Col: "luminosity", Op: shapesearch.Lt, Num: 140},
		{Col: "luminosity", Op: shapesearch.Gt, Num: 20},
	}
	q = shapesearch.MustParseRegex("f ; [p=down, m=>>] ; [p=up, m=>>] ; f")
	show(tbl, filtered, q, opts, "transits with 20 < luminosity < 140 filters")
}

func show(tbl *shapesearch.Table, spec shapesearch.ExtractSpec, q shapesearch.Query,
	opts shapesearch.Options, label string) {
	results, err := shapesearch.Search(tbl, spec, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n  query: %s\n", label, q)
	for i, r := range results {
		fmt.Printf("  %d. %-14s %+.3f\n", i+1, r.Z, r.Score)
	}
	fmt.Println()
}
