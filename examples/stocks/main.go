// Stocks: the technical-analysis patterns from the paper's introduction —
// double tops (two peaks within a window, a bearish signal [1]),
// head-and-shoulders, and W-shaped recoveries — plus a comparison of the
// shape-algebra ranking with the DTW baseline on the same query.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"

	"shapesearch"
	"shapesearch/internal/gen"
)

func main() {
	tbl := gen.Stocks(80, 150, 7)
	spec := shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"}
	opts := shapesearch.DefaultOptions()
	opts.K = 5

	// Double top: at least two peaks — the quantifier form.
	q := shapesearch.MustParseRegex("[p=up, m={2,}] & [p=down, m={2,}]")
	show(tbl, spec, q, opts, "double top (≥2 rises and ≥2 falls)")

	// The same need phrased in natural language.
	q, _, err := shapesearch.ParseNL("stocks with at least 2 peaks")
	if err != nil {
		log.Fatal(err)
	}
	show(tbl, spec, q, opts, "double top (natural language)")

	// W-shape: down, up, down, up.
	q = shapesearch.MustParseRegex("d ; u ; d ; u")
	show(tbl, spec, q, opts, "W-shape")

	// Cup: falling, flattening, then rising — with grouping.
	q = shapesearch.MustParseRegex("d ; (f | d) ; u")
	show(tbl, spec, q, opts, "cup")

	// Compare the shape algebra with the DTW baseline on the W-shape:
	// value-based matching is noise-sensitive, which is why the paper's
	// user study found the algebra more accurate on blurry tasks.
	q = shapesearch.MustParseRegex("d ; u ; d ; u")
	dtwOpts := opts
	dtwOpts.Algorithm = shapesearch.AlgDTW
	show(tbl, spec, q, dtwOpts, "W-shape via DTW baseline (for contrast)")
}

func show(tbl *shapesearch.Table, spec shapesearch.ExtractSpec, q shapesearch.Query,
	opts shapesearch.Options, label string) {
	results, err := shapesearch.Search(tbl, spec, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n  query: %s\n", label, q)
	for i, r := range results {
		fmt.Printf("  %d. %-10s %+.3f\n", i+1, r.Z, r.Score)
	}
	fmt.Println()
}
