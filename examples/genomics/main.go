// Genomics: the paper's Section 8 case study. Bioinformatics researchers
// explore gene-expression trendlines: genes suppressed by a drug (up, down,
// up), stem-cell self-renewal profiles (rise at ~45° then stay high), and
// outliers (two expression peaks within a short window — the pvt1 finding).
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"shapesearch"
	"shapesearch/internal/gen"
)

func main() {
	// A synthetic mouse gene-expression dataset in the style of [7]:
	// columns gene, hour, expression.
	tbl := gen.Genes(120, 48, 2024)
	spec := shapesearch.ExtractSpec{Z: "gene", X: "hour", Y: "expression"}
	opts := shapesearch.DefaultOptions()
	opts.K = 5

	// R1's first query, in natural language: genes suppressed by the drug.
	q, _, err := shapesearch.ParseNL("show me genes that are rising, then going down, and then increasing")
	if err != nil {
		log.Fatal(err)
	}
	show(tbl, spec, q, opts, "drug-suppression profile (NL: up, down, up)")

	// R2's regex: self-renewal — rising at ~45° until some point, then
	// high and flat. gbx2, klf5 and spry4 carry this planted profile.
	q = shapesearch.MustParseRegex("[p=45] ; [p=flat]")
	show(tbl, spec, q, opts, "stem-cell self-renewal (regex: θ=45 then flat)")

	// The inverse behaviour: start high, fall, stay low.
	q = shapesearch.MustParseRegex("d ; f")
	show(tbl, spec, q, opts, "differentiation (regex: down then flat)")

	// R1's outlier hunt: two peaks within a short window (pvt1).
	q = shapesearch.MustParseRegex("[x.s=., x.e=.+12, p=[[p=up, m={2,}]]]")
	show(tbl, spec, q, opts, "outliers: two peaks within 12 hours")
}

func show(tbl *shapesearch.Table, spec shapesearch.ExtractSpec, q shapesearch.Query,
	opts shapesearch.Options, label string) {
	results, err := shapesearch.Search(tbl, spec, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n  query: %s\n", label, q)
	for i, r := range results {
		fmt.Printf("  %d. %-22s %+.3f\n", i+1, r.Z, r.Score)
	}
	fmt.Println()
}
