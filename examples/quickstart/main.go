// Quickstart: build a tiny dataset in memory, search it with all three
// query mechanisms (regex, natural language, sketch), and print the
// matches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shapesearch"
)

func main() {
	// Four products with different sales trajectories over 12 months.
	shapes := map[string][]float64{
		"laptop": {10, 14, 18, 24, 28, 33, 37, 42, 45, 50, 55, 60}, // steady growth
		"phone":  {60, 55, 49, 44, 38, 33, 28, 25, 20, 16, 12, 10}, // steady decline
		"tablet": {10, 18, 27, 36, 45, 50, 45, 36, 27, 18, 12, 10}, // rise then fall
		"watch":  {30, 29, 31, 30, 29, 30, 31, 30, 29, 31, 30, 30}, // flat
	}
	var products []string
	var months, sales []float64
	for name, ys := range shapes {
		for m, y := range ys {
			products = append(products, name)
			months = append(months, float64(m+1))
			sales = append(sales, y)
		}
	}
	tbl, err := shapesearch.NewTable(
		shapesearch.Column{Name: "product", Type: shapesearch.String, Strings: products},
		shapesearch.Column{Name: "month", Type: shapesearch.Float, Floats: months},
		shapesearch.Column{Name: "sales", Type: shapesearch.Float, Floats: sales},
	)
	if err != nil {
		log.Fatal(err)
	}
	spec := shapesearch.ExtractSpec{Z: "product", X: "month", Y: "sales"}
	opts := shapesearch.DefaultOptions()
	opts.K = 2

	// 1. Visual regular expression: rising then falling.
	q := shapesearch.MustParseRegex("u ; d")
	report(tbl, spec, q, opts, `regex "u ; d"`)

	// 2. Natural language: the same shape, in words.
	q, _, err = shapesearch.ParseNL("products that are rising and then falling")
	if err != nil {
		log.Fatal(err)
	}
	report(tbl, spec, q, opts, fmt.Sprintf("natural language → %s", q))

	// 3. Sketch: draw a peak, infer the blurry query.
	stroke := []shapesearch.Point{
		{X: 1, Y: 0}, {X: 3, Y: 20}, {X: 6, Y: 45}, {X: 9, Y: 20}, {X: 12, Y: 0},
	}
	q, err = shapesearch.SketchBlurry(stroke, shapesearch.DefaultSketchConfig())
	if err != nil {
		log.Fatal(err)
	}
	report(tbl, spec, q, opts, fmt.Sprintf("sketch → %s", q))
}

func report(tbl *shapesearch.Table, spec shapesearch.ExtractSpec, q shapesearch.Query,
	opts shapesearch.Options, label string) {
	results, err := shapesearch.Search(tbl, spec, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", label)
	for _, r := range results {
		fmt.Printf("  %-8s score %+.3f\n", r.Z, r.Score)
	}
	fmt.Println()
}
