// Package shapesearch is a from-scratch Go implementation of ShapeSearch
// (Siddiqui et al., SIGMOD 2020): a flexible and efficient system for
// shape-based exploration of trendlines.
//
// It provides the ShapeQuery algebra, three query specification mechanisms
// (visual regular expressions, natural language, and sketches), and a
// pattern-matching engine with the paper's segmentation algorithms
// (optimal dynamic programming, the linear-time SegmentTree, greedy and
// DTW/Euclidean baselines), push-down optimizations and two-stage
// collective pruning.
//
// Quickstart:
//
//	tbl, _ := shapesearch.OpenCSV("stocks.csv")
//	q, _ := shapesearch.ParseRegex("u ; d ; u") // rise, fall, rise
//	results, _ := shapesearch.Search(tbl,
//	    shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"},
//	    q, shapesearch.DefaultOptions())
//	for _, r := range results {
//	    fmt.Println(r.Z, r.Score)
//	}
package shapesearch

import (
	"context"
	"io"

	"shapesearch/internal/crf"
	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/nlparser"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/score"
	"shapesearch/internal/shape"
	"shapesearch/internal/sketch"
	"shapesearch/internal/udps"
)

// Core algebra types.
type (
	// Query is a parsed ShapeQuery.
	Query = shape.Query
	// Node is one node of the query tree.
	Node = shape.Node
	// Segment is a ShapeSegment (the MATCH operand).
	Segment = shape.Segment
	// Pattern is the PATTERN primitive.
	Pattern = shape.Pattern
	// Modifier is the MODIFIER primitive.
	Modifier = shape.Modifier
	// Location is the LOCATION primitive.
	Location = shape.Location
	// Point is one (x, y) sketch sample.
	Point = shape.Point
)

// Data substrate types.
type (
	// Table is an in-memory columnar dataset.
	Table = dataset.Table
	// Index is the columnar acceleration layer over a Table:
	// dictionary-encoded grouping keys and memoized (z, x) sort
	// permutations make repeated extraction a single pass over presorted
	// runs with vectorized filters. Build one per long-lived table (see
	// BuildIndex) and pass it wherever a Source is accepted.
	Index = dataset.Index
	// Source is a queryable data source for EXTRACT: either a bare *Table
	// (row-at-a-time compatibility path) or an *Index (columnar path).
	Source = dataset.Source
	// Column is one typed column of a Table.
	Column = dataset.Column
	// Series is one candidate trendline.
	Series = dataset.Series
	// ExtractSpec selects the visualization space: z, x, y, filters and
	// aggregation.
	ExtractSpec = dataset.ExtractSpec
	// Filter is one predicate on a column.
	Filter = dataset.Filter
	// Agg is the aggregation applied to duplicate (z, x) coordinates.
	Agg = dataset.Agg
	// FilterOp is a comparison operator in a filter.
	FilterOp = dataset.FilterOp
)

// Execution types.
type (
	// Options configures a search.
	Options = executor.Options
	// Plan is a compiled query, reusable (and safe for concurrent use)
	// across many Run/Search calls.
	Plan = executor.Plan
	// MultiPlan is a batch of compiled queries that execute against a
	// corpus in one pass, sharing per-candidate work across queries while
	// keeping per-query results byte-identical to independent runs.
	MultiPlan = executor.MultiPlan
	// Result is one matched visualization.
	Result = executor.Result
	// Algorithm selects the segmentation strategy.
	Algorithm = executor.Algorithm
	// UDPRegistry holds user-defined patterns.
	UDPRegistry = score.Registry
	// UDPFunc scores a user-defined pattern over a visual segment.
	UDPFunc = score.UDPFunc
)

// NL and sketch front-end types.
type (
	// NLParser translates natural language into ShapeQueries.
	NLParser = nlparser.Parser
	// NLParseInfo is the correction-panel payload: entity tags and applied
	// ambiguity resolutions.
	NLParseInfo = nlparser.ParseInfo
	// Canvas maps stroke pixels onto a domain window.
	Canvas = sketch.Canvas
	// Pixel is one stroke sample in canvas coordinates.
	Pixel = sketch.Pixel
	// SketchConfig controls blurry sketch inference.
	SketchConfig = sketch.Config
	// CRFModel is a trained entity-tagging model.
	CRFModel = crf.Model
)

// Algorithms.
const (
	// AlgAuto picks SegmentTree for fuzzy queries (default).
	AlgAuto = executor.AlgAuto
	// AlgDP is the optimal O(n²k) dynamic program.
	AlgDP = executor.AlgDP
	// AlgSegmentTree is the O(nk⁴) pattern-aware segmenter.
	AlgSegmentTree = executor.AlgSegmentTree
	// AlgGreedy is the local-search baseline.
	AlgGreedy = executor.AlgGreedy
	// AlgExhaustive enumerates all segmentations (small inputs).
	AlgExhaustive = executor.AlgExhaustive
	// AlgDTW ranks by Dynamic Time Warping distance.
	AlgDTW = executor.AlgDTW
	// AlgEuclidean ranks by Euclidean distance.
	AlgEuclidean = executor.AlgEuclidean
)

// Column types.
const (
	// Float marks numeric columns.
	Float = dataset.Float
	// String marks categorical columns.
	String = dataset.String
)

// Filter operators.
const (
	// Eq tests equality.
	Eq = dataset.Eq
	// Ne tests inequality.
	Ne = dataset.Ne
	// Lt tests less-than.
	Lt = dataset.Lt
	// Le tests less-or-equal.
	Le = dataset.Le
	// Gt tests greater-than.
	Gt = dataset.Gt
	// Ge tests greater-or-equal.
	Ge = dataset.Ge
)

// Aggregations for duplicate (z, x) coordinates.
const (
	// AggNone keeps single points only.
	AggNone = dataset.AggNone
	// AggAvg averages duplicates (the default for multi-sample data).
	AggAvg = dataset.AggAvg
	// AggSum sums duplicates.
	AggSum = dataset.AggSum
	// AggMin keeps the minimum.
	AggMin = dataset.AggMin
	// AggMax keeps the maximum.
	AggMax = dataset.AggMax
	// AggCount counts duplicates.
	AggCount = dataset.AggCount
)

// DefaultOptions returns the system's default search options.
func DefaultOptions() Options { return executor.DefaultOptions() }

// NewUDPRegistry returns an empty user-defined pattern registry.
func NewUDPRegistry() *UDPRegistry { return score.NewRegistry() }

// BuiltinUDPs returns a registry pre-loaded with the mathematical pattern
// library (concave, convex, exponential, logarithmic, vshape, entropy,
// volatile, smooth) — the extension the paper's study participants asked
// for (Section 7.2). Use them like any pattern: [p=concave] & [p=up].
func BuiltinUDPs() *UDPRegistry {
	r := score.NewRegistry()
	if err := udps.Register(r); err != nil {
		panic(err) // impossible: built-in names are valid
	}
	return r
}

// OpenCSV loads a CSV dataset from disk with type inference.
func OpenCSV(path string) (*Table, error) { return dataset.OpenCSV(path) }

// ReadCSV loads a CSV dataset from a reader.
func ReadCSV(r io.Reader) (*Table, error) { return dataset.FromCSV(r) }

// ReadJSON loads a dataset from a JSON array of flat objects.
func ReadJSON(r io.Reader) (*Table, error) { return dataset.FromJSON(r) }

// NewTable builds a dataset from columns.
func NewTable(cols ...Column) (*Table, error) { return dataset.New(cols...) }

// BuildIndex builds the columnar index for a table: string grouping
// columns are dictionary-encoded up front; (z, x) sort permutations are
// built lazily on first extraction and memoized. Index tables that serve
// repeated queries; one-shot extractions can stay on the bare *Table.
func BuildIndex(t *Table) *Index { return dataset.BuildIndex(t) }

// Extract selects candidate trendlines from a table.
func Extract(t *Table, spec ExtractSpec) ([]Series, error) { return dataset.Extract(t, spec) }

// ParseRegex parses a visual regular expression into a ShapeQuery, e.g.
// "[x.s=2, x.e=5, p=up] ; d ; u" or "(u ⊕ d) ⊗ f".
func ParseRegex(s string) (Query, error) { return regexlang.Parse(s) }

// MustParseRegex is ParseRegex for statically known-good queries.
func MustParseRegex(s string) Query { return regexlang.MustParse(s) }

// NewNLParser returns a natural-language parser using the deterministic
// rule tagger (no training needed).
func NewNLParser() *NLParser { return nlparser.NewParser() }

// NewNLParserWithModel returns a natural-language parser backed by a
// trained CRF tagger (see TrainNLTagger).
func NewNLParserWithModel(m *CRFModel) *NLParser { return nlparser.NewParserWithModel(m) }

// ParseNL parses a natural-language query with the default parser.
func ParseNL(s string) (Query, *NLParseInfo, error) { return nlparser.NewParser().Parse(s) }

// TrainNLTagger trains a CRF entity tagger on a synthetic corpus of n
// labeled queries (the stand-in for the paper's Mechanical Turk corpus).
func TrainNLTagger(n int, seed int64) (*CRFModel, error) {
	corpus := nlparser.GenerateCorpus(n, seed)
	return crf.Train(nlparser.ToSequences(corpus), crf.DefaultTrainConfig())
}

// SketchExact builds a precise-match query from domain-coordinate sketch
// points (scored by normalized L2 distance).
func SketchExact(points []Point) (Query, error) { return sketch.ExactQuery(points) }

// SketchBlurry infers a blurry pattern-sequence query from sketch points
// via piecewise-linear segmentation.
func SketchBlurry(points []Point, cfg SketchConfig) (Query, error) {
	return sketch.BlurryQuery(points, cfg)
}

// DefaultSketchConfig returns the default blurry-inference settings.
func DefaultSketchConfig() SketchConfig { return sketch.DefaultConfig() }

// Compile prepares a query for repeated execution: validation,
// normalization, solver selection and nested sub-query compilation run
// once, and the resulting Plan can score many series collections (from
// many goroutines) via Plan.Run, Plan.RunGrouped or Plan.Search.
func Compile(q Query, opts Options) (*Plan, error) { return executor.Compile(q, opts) }

// CompileBatch compiles several queries under one set of options into a
// MultiPlan: their unit signatures are interned into one shared table, so
// batch execution evaluates each distinct pattern once per candidate for
// the whole batch. Related queries (variants of one user intent) get the
// biggest wins; unrelated queries still share segmentation state and the
// single corpus pass.
func CompileBatch(qs []Query, opts Options) (*MultiPlan, error) {
	return executor.CompileBatch(qs, opts)
}

// NewMultiPlan builds a batch executor from already-compiled plans (e.g.
// plans served by a cache). The plans' options must agree on every
// score-relevant field; K may differ per query. The inputs are not mutated
// and remain independently usable.
func NewMultiPlan(plans []*Plan) (*MultiPlan, error) { return executor.NewMultiPlan(plans) }

// SearchBatch runs several queries against the source in one pass over the
// candidates — the batch analogue of Search. Results are per query, in
// input order, byte-identical to running each query alone.
func SearchBatch(src Source, spec ExtractSpec, qs []Query, opts Options) ([][]Result, error) {
	return executor.SearchBatch(src, spec, qs, opts)
}

// SearchBatchContext is SearchBatch with cooperative cancellation.
func SearchBatchContext(ctx context.Context, src Source, spec ExtractSpec, qs []Query, opts Options) ([][]Result, error) {
	return executor.SearchBatchContext(ctx, src, spec, qs, opts)
}

// Search extracts candidate visualizations and ranks them against the
// query — the full EXTRACT → GROUP → SEGMENT → SCORE pipeline. The source
// is a bare *Table or an *Index. It is a thin wrapper over Compile +
// Plan.Search; issue repeated queries through a compiled Plan (and an
// Index) instead.
func Search(src Source, spec ExtractSpec, q Query, opts Options) ([]Result, error) {
	return executor.Search(src, spec, q, opts)
}

// SearchContext is Search with cooperative cancellation: when ctx is
// canceled (or its deadline expires) the scoring worker pool stops pulling
// candidates and the call returns ctx.Err(). Compiled plans expose the same
// via Plan.SearchContext / Plan.RunContext / Plan.RunGroupedContext.
func SearchContext(ctx context.Context, src Source, spec ExtractSpec, q Query, opts Options) ([]Result, error) {
	return executor.SearchContext(ctx, src, spec, q, opts)
}

// SearchSeries ranks pre-extracted trendlines against the query (a thin
// wrapper over Compile + Plan.Run).
func SearchSeries(series []Series, q Query, opts Options) ([]Result, error) {
	return executor.SearchSeries(series, q, opts)
}

// SearchSeriesContext is SearchSeries with cooperative cancellation (see
// SearchContext).
func SearchSeriesContext(ctx context.Context, series []Series, q Query, opts Options) ([]Result, error) {
	return executor.SearchSeriesContext(ctx, series, q, opts)
}
