// Command benchjson converts a `go test -json -bench` event stream (stdin)
// into a compact JSON array of benchmark results (stdout), one record per
// benchmark line: name, package, iterations, ns/op, and the B/op and
// allocs/op columns when -benchmem / b.ReportAllocs emitted them. With
// -table it prints an aligned human-readable summary instead — CI runs it
// both ways over the same raw stream, committing the JSON (BENCH_PR7.json)
// and printing the table into the build log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

type result struct {
	Name        string   `json:"name"`
	Package     string   `json:"package"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_s,omitempty"`
}

func main() {
	table := flag.Bool("table", false,
		"print an aligned summary table instead of JSON")
	flag.Parse()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []result{} // non-nil: an empty run must emit [], not null
	// test2json splits a benchmark result across output events (the padded
	// name first, the metrics after the timing run), so chunks are
	// reassembled into lines per (package, test) stream before parsing.
	pending := make(map[string]string)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines interleaved by tools
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := pending[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if r, ok := parseBenchLine(ev.Package, buf[:nl]); ok {
				results = append(results, r)
			}
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(pending, key)
		} else {
			pending[key] = buf
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *table {
		printTable(results)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// printTable writes the results as an aligned summary, one row per
// benchmark, suitable for a CI build log.
func printTable(results []result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tITERS\tNS/OP\tB/OP\tALLOCS/OP")
	for _, r := range results {
		bytesCol, allocsCol := "-", "-"
		if r.BytesPerOp != nil {
			bytesCol = strconv.FormatInt(*r.BytesPerOp, 10)
		}
		if r.AllocsPerOp != nil {
			allocsCol = strconv.FormatInt(*r.AllocsPerOp, 10)
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%s\t%s\n",
			r.Name, r.Iterations, r.NsPerOp, bytesCol, allocsCol)
	}
	w.Flush()
}

// parseBenchLine recognizes testing's benchmark result format:
// "BenchmarkName-8  30  123456 ns/op  7708 B/op  69 allocs/op".
func parseBenchLine(pkg, line string) (result, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = f
			}
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &n
			}
		case "MB/s":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.MBPerSec = &f
			}
		}
	}
	return r, true
}
