// Command shapeserver runs the ShapeSearch REST back-end. It registers the
// built-in demo datasets and optionally CSV files from disk, then serves
// the /api endpoints (see internal/server).
//
// Examples:
//
//	shapeserver -addr :8080
//	shapeserver -addr :8080 -load prices=prices.csv -load weather=w.csv
//
//	curl -s localhost:8080/api/datasets
//	curl -s -X POST localhost:8080/api/search -d '{
//	  "kind":"nl","query":"rising then falling",
//	  "dataset":"stocks","z":"symbol","x":"day","y":"price","k":3}'
//	curl -s -X POST 'localhost:8080/api/append?dataset=prices' \
//	  --data-binary @new_rows.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"shapesearch"
	"shapesearch/internal/gen"
	"shapesearch/internal/server"
)

// loadFlags accumulates repeated -load name=path flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }

func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	noDemo := flag.Bool("nodemo", false, "skip registering the built-in demo datasets")
	noCache := flag.Bool("nocache", false, "disable the server-side candidate cache")
	candidateCache := flag.Int("candidate-cache", 0,
		"candidate cache capacity in entries (0 = default 64)")
	planCache := flag.Int("plan-cache", 0,
		"compiled-plan cache capacity in entries (0 = default 128)")
	searchTimeout := flag.Duration("search-timeout", 0,
		"per-request deadline covering queueing and scoring (e.g. 5s; 0 = unbounded); expired searches return 503 + Retry-After")
	rebuildThreshold := flag.Int("index-rebuild-threshold", 0,
		"appended/patched viz count after which a cached shape index is rebuilt in the background (0 = default 1024)")
	searchConcurrency := flag.Int("search-concurrency", 0,
		"max concurrently admitted searches (0 = default: core count); arrivals beyond it queue, then shed with 429")
	searchQueueDepth := flag.Int("search-queue", 0,
		"admission queue depth across all tenants (0 = default 64); arrivals past a full queue get 429 + Retry-After")
	searchQueueWait := flag.Duration("search-queue-wait", 0,
		"queue-time budget: a request still queued after this is shed with 429 + Retry-After (0 = default 2s)")
	tenantConcurrency := flag.Int("tenant-concurrency", 0,
		"per-tenant (X-Tenant / API key) concurrent-search cap (0 = no per-tenant cap); freed slots round-robin across tenants")
	var loads loadFlags
	flag.Var(&loads, "load", "register a CSV dataset as name=path (repeatable)")
	flag.Parse()

	srv := server.New(
		server.WithCandidateCacheCapacity(*candidateCache),
		server.WithPlanCacheCapacity(*planCache),
		server.WithIndexRebuildThreshold(*rebuildThreshold),
		server.WithSearchConcurrency(*searchConcurrency),
		server.WithSearchQueueDepth(*searchQueueDepth),
		server.WithSearchQueueWait(*searchQueueWait),
		server.WithTenantConcurrency(*tenantConcurrency),
	)
	if *noCache {
		srv.DisableCache()
		log.Printf("candidate cache disabled")
	}
	if *searchTimeout > 0 {
		srv.SetSearchTimeout(*searchTimeout)
		log.Printf("per-request search timeout: %v", *searchTimeout)
	}
	if !*noDemo {
		srv.Register("stocks", gen.Stocks(60, 150, 1))
		srv.Register("genes", gen.Genes(80, 48, 1))
		srv.Register("luminosity", gen.Luminosity(40, 300, 1))
		srv.Register("cities", gen.Cities(30, 24, 1))
		log.Printf("registered demo datasets: stocks, genes, luminosity, cities")
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("shapeserver: -load wants name=path, got %q", spec)
		}
		tbl, err := shapesearch.OpenCSV(path)
		if err != nil {
			log.Fatalf("shapeserver: loading %q: %v", path, err)
		}
		srv.Register(name, tbl)
		log.Printf("registered %q from %s (%d rows)", name, path, tbl.NumRows())
	}

	log.Printf("shapeserver listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(fmt.Errorf("shapeserver: %w", err))
	}
}
