// Command shapesearch is the terminal front-end: load a CSV dataset (or a
// built-in demo), issue a shape query as a visual regex or natural
// language, and print the top matching trendlines as sparklines.
//
// Examples:
//
//	shapesearch -demo stocks -regex "u ; d ; u ; d" -k 5
//	shapesearch -demo genes -nl "rising then falling then rising"
//	shapesearch -data prices.csv -z symbol -x day -y close -regex "[p=up, m={2,}]"
//
// -regex may repeat; several queries execute as one batch, sharing a
// single pass over the candidate trendlines:
//
//	shapesearch -demo stocks -regex "u ; d" -regex "d ; u" -regex "u ; d ; u"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"shapesearch"
	"shapesearch/internal/gen"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV dataset path")
		demo      = flag.String("demo", "", "built-in demo dataset: stocks, genes, luminosity, cities")
		zAttr     = flag.String("z", "", "category attribute (one trendline per value)")
		xAttr     = flag.String("x", "", "x axis attribute")
		yAttr     = flag.String("y", "", "y axis attribute")
		agg       = flag.String("agg", "none", "aggregation for duplicate (z,x): none, avg, sum, min, max, count")
		nl        = flag.String("nl", "", "natural language query")
		k         = flag.Int("k", 5, "number of results")
		algName   = flag.String("alg", "auto", "algorithm: auto, dp, segmenttree, greedy, dtw, euclidean")
		pruning   = flag.Bool("pruning", false, "enable two-stage collective pruning")
		parallel  = flag.Int("parallel", 0, "scoring workers (0 = one per CPU)")
		filterStr = flag.String("filter", "", "filters, e.g. \"price>10;region=west\" (separators ; , ops = != < <= > >=)")
		width     = flag.Int("width", 60, "sparkline width")
	)
	var regexes multiFlag
	flag.Var(&regexes, "regex", "visual regular expression query (repeatable: each -regex adds one query to the batch)")
	flag.Parse()
	if err := run(*dataPath, *demo, *zAttr, *xAttr, *yAttr, *agg, regexes, *nl,
		*k, *algName, *pruning, *parallel, *filterStr, *width); err != nil {
		fmt.Fprintln(os.Stderr, "shapesearch:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated occurrences of one string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(dataPath, demo, zAttr, xAttr, yAttr, agg string, regexes []string, nl string,
	k int, algName string, pruning bool, parallel int, filterStr string, width int) error {
	tbl, spec, err := loadData(dataPath, demo, zAttr, xAttr, yAttr)
	if err != nil {
		return err
	}
	spec.Agg, err = aggByName(agg)
	if err != nil {
		return err
	}
	spec.Filters, err = parseFilters(filterStr)
	if err != nil {
		return err
	}

	var qs []shapesearch.Query
	switch {
	case len(regexes) > 0 && nl != "":
		return fmt.Errorf("pass either -regex or -nl, not both")
	case len(regexes) > 0:
		for _, re := range regexes {
			q, err := shapesearch.ParseRegex(re)
			if err != nil {
				return fmt.Errorf("-regex %q: %w", re, err)
			}
			qs = append(qs, q)
		}
	case nl != "":
		q, info, err := shapesearch.ParseNL(nl)
		if err != nil {
			return err
		}
		fmt.Printf("parsed: %s\n", q)
		for _, r := range info.Resolutions {
			fmt.Printf("  note: %s\n", r)
		}
		qs = append(qs, q)
	default:
		return fmt.Errorf("a query is required: -regex or -nl")
	}

	opts := shapesearch.DefaultOptions()
	opts.K = k
	opts.Pruning = pruning
	opts.Parallelism = parallel
	opts.Algorithm, err = algByName(algName)
	if err != nil {
		return err
	}

	// Ctrl-C cancels the scoring pipeline cooperatively: workers stop
	// pulling candidates and the search returns context.Canceled instead
	// of leaving a long query running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Search through the columnar index — the same path the server serves
	// from, so CLI results and timings match served queries.
	ix := shapesearch.BuildIndex(tbl)

	if len(qs) == 1 {
		plan, err := shapesearch.Compile(qs[0], opts)
		if err != nil {
			return err
		}
		results, err := plan.SearchContext(ctx, ix, spec)
		if err != nil {
			return err
		}
		printResults(results, width)
		return nil
	}
	// Several -regex flags: one batch, one pass over the candidates.
	mp, err := shapesearch.CompileBatch(qs, opts)
	if err != nil {
		return err
	}
	perQuery, err := mp.SearchContext(ctx, ix, spec)
	if err != nil {
		return err
	}
	for i, results := range perQuery {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s\n", regexes[i])
		printResults(results, width)
	}
	return nil
}

func printResults(results []shapesearch.Result, width int) {
	if len(results) == 0 {
		fmt.Println("no matches")
		return
	}
	maxZ := 0
	for _, r := range results {
		if len(r.Z) > maxZ {
			maxZ = len(r.Z)
		}
	}
	for i, r := range results {
		fmt.Printf("%2d. %-*s  %+.3f  %s\n", i+1, maxZ, r.Z, r.Score, sparkline(r.Series.Y, width))
		if len(r.BreakXs) > 2 {
			parts := make([]string, len(r.BreakXs))
			for j, bx := range r.BreakXs {
				parts[j] = strconv.FormatFloat(bx, 'g', 4, 64)
			}
			fmt.Printf("    %*s  breaks at x = %s\n", maxZ, "", strings.Join(parts, ", "))
		}
	}
}

func loadData(dataPath, demo, zAttr, xAttr, yAttr string) (*shapesearch.Table, shapesearch.ExtractSpec, error) {
	var spec shapesearch.ExtractSpec
	switch {
	case dataPath != "" && demo != "":
		return nil, spec, fmt.Errorf("pass either -data or -demo, not both")
	case dataPath != "":
		if zAttr == "" || xAttr == "" || yAttr == "" {
			return nil, spec, fmt.Errorf("-data requires -z, -x and -y")
		}
		tbl, err := shapesearch.OpenCSV(dataPath)
		if err != nil {
			return nil, spec, err
		}
		return tbl, shapesearch.ExtractSpec{Z: zAttr, X: xAttr, Y: yAttr}, nil
	case demo != "":
		tbl, spec, err := demoData(demo)
		return tbl, spec, err
	default:
		return nil, spec, fmt.Errorf("a dataset is required: -data or -demo")
	}
}

func demoData(name string) (*shapesearch.Table, shapesearch.ExtractSpec, error) {
	switch name {
	case "stocks":
		return gen.Stocks(60, 150, 1), shapesearch.ExtractSpec{Z: "symbol", X: "day", Y: "price"}, nil
	case "genes":
		return gen.Genes(80, 48, 1), shapesearch.ExtractSpec{Z: "gene", X: "hour", Y: "expression"}, nil
	case "luminosity":
		return gen.Luminosity(40, 300, 1), shapesearch.ExtractSpec{Z: "star", X: "time", Y: "luminosity"}, nil
	case "cities":
		return gen.Cities(30, 24, 1), shapesearch.ExtractSpec{Z: "city", X: "month", Y: "temperature"}, nil
	default:
		return nil, shapesearch.ExtractSpec{}, fmt.Errorf("unknown demo %q (want stocks, genes, luminosity, or cities)", name)
	}
}

func aggByName(name string) (shapesearch.Agg, error) {
	switch name {
	case "", "none":
		return shapesearch.AggNone, nil
	case "avg":
		return shapesearch.AggAvg, nil
	case "sum":
		return shapesearch.AggSum, nil
	case "min":
		return shapesearch.AggMin, nil
	case "max":
		return shapesearch.AggMax, nil
	case "count":
		return shapesearch.AggCount, nil
	default:
		return shapesearch.AggNone, fmt.Errorf("unknown aggregation %q", name)
	}
}

func algByName(name string) (shapesearch.Algorithm, error) {
	switch name {
	case "auto", "":
		return shapesearch.AlgAuto, nil
	case "dp":
		return shapesearch.AlgDP, nil
	case "segmenttree", "tree":
		return shapesearch.AlgSegmentTree, nil
	case "greedy":
		return shapesearch.AlgGreedy, nil
	case "exhaustive":
		return shapesearch.AlgExhaustive, nil
	case "dtw":
		return shapesearch.AlgDTW, nil
	case "euclidean":
		return shapesearch.AlgEuclidean, nil
	default:
		return shapesearch.AlgAuto, fmt.Errorf("unknown algorithm %q", name)
	}
}

// parseFilters parses "col>num;col=str" into filter predicates.
func parseFilters(s string) ([]shapesearch.Filter, error) {
	if s == "" {
		return nil, nil
	}
	var filters []shapesearch.Filter
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f, err := parseFilter(clause)
		if err != nil {
			return nil, err
		}
		filters = append(filters, f)
	}
	return filters, nil
}

func parseFilter(clause string) (shapesearch.Filter, error) {
	ops := []struct {
		text string
		op   shapesearch.Filter
	}{
		{"!=", shapesearch.Filter{Op: shapesearch.Ne}},
		{"<=", shapesearch.Filter{Op: shapesearch.Le}},
		{">=", shapesearch.Filter{Op: shapesearch.Ge}},
		{"<", shapesearch.Filter{Op: shapesearch.Lt}},
		{">", shapesearch.Filter{Op: shapesearch.Gt}},
		{"=", shapesearch.Filter{Op: shapesearch.Eq}},
	}
	for _, cand := range ops {
		idx := strings.Index(clause, cand.text)
		if idx <= 0 {
			continue
		}
		f := cand.op
		f.Col = strings.TrimSpace(clause[:idx])
		val := strings.TrimSpace(clause[idx+len(cand.text):])
		if num, err := strconv.ParseFloat(val, 64); err == nil {
			f.Num = num
		} else {
			f.Str = val
		}
		return f, nil
	}
	return shapesearch.Filter{}, fmt.Errorf("cannot parse filter %q (want col<op>value)", clause)
}

// sparkline renders a series as unicode block characters.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	if width <= 0 {
		width = 60
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample by averaging buckets.
	sampled := make([]float64, 0, width)
	if len(ys) <= width {
		sampled = ys
	} else {
		per := float64(len(ys)) / float64(width)
		for i := 0; i < width; i++ {
			lo := int(float64(i) * per)
			hi := int(float64(i+1) * per)
			if hi > len(ys) {
				hi = len(ys)
			}
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range ys[lo:hi] {
				sum += v
			}
			sampled = append(sampled, sum/float64(hi-lo))
		}
	}
	min, max := sampled[0], sampled[0]
	for _, v := range sampled {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	for _, v := range sampled {
		idx := int((v - min) / span * float64(len(blocks)-1))
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
