// Command experiments regenerates the tables and figures of the
// ShapeSearch paper's evaluation on the synthetic dataset substitutes.
//
//	experiments -list
//	experiments -run fig10 -full
//	experiments -run all            # quick mode by default
//
// Results print as markdown; redirect to a file to update EXPERIMENTS.md
// measurements.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shapesearch/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id or 'all' (see -list)")
		full   = flag.Bool("full", false, "full published dataset dimensions (slow; default is quick mode)")
		trials = flag.Int("trials", 0, "timed trials per measurement (0 = default)")
		list   = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.DefaultConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("# ShapeSearch experiment run (%s mode, %s)\n\n", mode, time.Now().Format(time.RFC3339))

	if *run == "all" {
		// Stream results one experiment at a time so long runs show
		// progress as they go.
		for _, id := range experiments.IDs() {
			fn, _ := experiments.ByID(id)
			fmt.Println(fn(cfg).Render())
		}
		return
	}
	fn, ok := experiments.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q; use -list\n", *run)
		os.Exit(1)
	}
	fmt.Println(fn(cfg).Render())
}
