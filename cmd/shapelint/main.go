// Command shapelint runs shapesearch's static-analysis suite: the five
// analyzers in internal/analysis that mechanically enforce the engine's
// concurrency and determinism invariants.
//
// Standalone (checks the module rooted at the working directory):
//
//	shapelint [-analyzers=name1,name2] [packages]
//
// As a vet tool (go vet drives it per package through the unitchecker
// protocol):
//
//	go vet -vettool=$(which shapelint) ./...
//
// Exit status is 2 when any diagnostic is reported, matching go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"shapesearch/internal/analysis"
)

func main() {
	// The unitchecker protocol probes before flag parsing: `go vet` invokes
	// the tool as `shapelint -V=full`, `shapelint -flags`, and finally
	// `shapelint <unit>.cfg`.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			// go vet fingerprints the tool for its build cache: a devel
			// version line must end in a buildID, and hashing our own binary
			// makes the cache invalidate exactly when the tool changes.
			fmt.Printf("%s version devel buildID=%s\n", os.Args[0], selfHash())
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetUnit(args[0]))
		}
	}
	os.Exit(standalone(args))
}

// selfHash fingerprints the running binary for the -V=full version line.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("shapelint", flag.ExitOnError)
	spec := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: shapelint [-analyzers=a,b] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
			exit = 2
		}
	}
	return exit
}

// vetConfig is the JSON unit description go vet hands a -vettool (the
// unitchecker protocol's *.cfg file).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shapelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The analyzers produce no facts, so a vetx-only unit (a dependency
	// analyzed purely for facts) has nothing to do beyond writing the
	// (empty) facts file go vet expects.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants bind non-test code: the standalone loader never parses
	// test files, and the vet path mirrors that by skipping test-variant
	// units ("pkg [pkg.test]", "pkg_test") and in-package _test.go files.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	goFiles := cfg.GoFiles[:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings, err := analysis.RunPackage(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		// go vet surfaces plain file:line: message lines from stderr.
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
