package shapesearch_test

import (
	"fmt"
	"strings"
	"testing"

	"shapesearch"
)

func demoTable(t *testing.T) *shapesearch.Table {
	t.Helper()
	var zs []string
	var xs, ys []float64
	add := func(z string, vals ...float64) {
		for i, v := range vals {
			zs = append(zs, z)
			xs = append(xs, float64(i))
			ys = append(ys, v)
		}
	}
	add("peak", 0, 2, 4, 6, 8, 6, 4, 2, 0)
	add("rise", 0, 1, 2, 3, 4, 5, 6, 7, 8)
	add("fall", 8, 7, 6, 5, 4, 3, 2, 1, 0)
	tbl, err := shapesearch.NewTable(
		shapesearch.Column{Name: "z", Type: shapesearch.String, Strings: zs},
		shapesearch.Column{Name: "x", Type: shapesearch.Float, Floats: xs},
		shapesearch.Column{Name: "y", Type: shapesearch.Float, Floats: ys},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPublicAPISearch(t *testing.T) {
	tbl := demoTable(t)
	q, err := shapesearch.ParseRegex("u ; d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := shapesearch.Search(tbl,
		shapesearch.ExtractSpec{Z: "z", X: "x", Y: "y"}, q, shapesearch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Z != "peak" {
		t.Fatalf("top = %s", res[0].Z)
	}
}

func TestPublicAPINLAndSketch(t *testing.T) {
	q, info, err := shapesearch.ParseNL("rising then falling")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "[p=up][p=down]" || info == nil {
		t.Fatalf("NL parse = %s", q)
	}
	pts := []shapesearch.Point{{X: 0, Y: 0}, {X: 5, Y: 10}, {X: 10, Y: 0}}
	q, err = shapesearch.SketchBlurry(pts, shapesearch.DefaultSketchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "[p=up][p=down]" {
		t.Fatalf("sketch query = %s", q)
	}
	if _, err := shapesearch.SketchExact(pts); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	csv := "city,month,temp\na,1,10\na,2,20\nb,1,20\nb,2,10\n"
	tbl, err := shapesearch.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	series, err := shapesearch.Extract(tbl, shapesearch.ExtractSpec{Z: "city", X: "month", Y: "temp"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := shapesearch.SearchSeries(series, shapesearch.MustParseRegex("u"), shapesearch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Z != "a" {
		t.Fatalf("top = %s", res[0].Z)
	}
}

func TestPublicAPIUDP(t *testing.T) {
	tbl := demoTable(t)
	opts := shapesearch.DefaultOptions()
	opts.UDPs = shapesearch.NewUDPRegistry()
	err := opts.UDPs.Register("symmetric", func(xs, ys []float64) float64 {
		n := len(ys)
		var diff, scale float64
		for i := 0; i < n/2; i++ {
			d := ys[i] - ys[n-1-i]
			diff += d * d
			scale += ys[i] * ys[i]
		}
		if scale == 0 {
			return 0
		}
		return 1 - 2*diff/(diff+scale)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := shapesearch.Search(tbl,
		shapesearch.ExtractSpec{Z: "z", X: "x", Y: "y"},
		shapesearch.MustParseRegex("[p=symmetric]"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Z != "peak" {
		t.Fatalf("top = %s (score %v)", res[0].Z, res[0].Score)
	}
}

func TestTrainNLTagger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	model, err := shapesearch.TrainNLTagger(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := shapesearch.NewNLParserWithModel(model)
	q, _, err := p.Parse("rising then falling")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "[p=up][p=down]" {
		t.Fatalf("CRF-backed parse = %s", q)
	}
}

// ExampleParseRegex demonstrates the query language.
func ExampleParseRegex() {
	q, _ := shapesearch.ParseRegex("[x.s=2, x.e=5, p=up, m=>>] ; d ; u")
	fmt.Println(q)
	fmt.Println("fuzzy:", q.IsFuzzy())
	// Output:
	// [x.s=2, x.e=5, p=up, m=>>][p=down][p=up]
	// fuzzy: true
}

// ExampleParseNL demonstrates natural-language queries.
func ExampleParseNL() {
	q, _, _ := shapesearch.ParseNL("genes with at least 2 peaks")
	fmt.Println(q)
	// Output:
	// [p=up, m={2,}]
}
