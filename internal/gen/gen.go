// Package gen builds seeded synthetic trendline datasets. The paper
// evaluates on five real datasets (UCI Weather, Worms, 50 Words, Haptics,
// and Zillow Real Estate) that are not redistributable; this package
// substitutes generators that match their published trendline counts and
// lengths (Table 11) and plant a comparable mix of shapes, so that every
// Table 11 query matches at least 20 trendlines with positive score — the
// same property the paper required of its query selection.
//
// Shapes are planted as piecewise-linear trends with jittered breakpoints
// and slopes plus Gaussian and local-fluctuation noise; the executor's
// z-score normalization removes the arbitrary scale.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"shapesearch/internal/dataset"
)

// TemplateSeg is one leg of a piecewise-linear planted shape.
type TemplateSeg struct {
	// Angle is the leg's direction in degrees within the normalized chart
	// space, where the full x span is 4 units wide and y has unit variance
	// (matching the executor's normalization). ±90 excluded.
	Angle float64
	// Width is the leg's relative share of the trendline (weights are
	// normalized across the template).
	Width float64
}

// Template is a named planted shape.
type Template struct {
	Name string
	Segs []TemplateSeg
}

// T builds a template from alternating angle/width pairs.
func T(name string, pairs ...float64) Template {
	if len(pairs)%2 != 0 {
		panic("gen: T requires angle/width pairs")
	}
	t := Template{Name: name}
	for i := 0; i < len(pairs); i += 2 {
		t.Segs = append(t.Segs, TemplateSeg{Angle: pairs[i], Width: pairs[i+1]})
	}
	return t
}

// Config describes a synthetic dataset.
type Config struct {
	Name string
	// NumViz is the number of trendlines (distinct z values).
	NumViz int
	// Length is the number of points per trendline.
	Length int
	// XMax is the maximum x value; x samples are evenly spaced over
	// [0, XMax]. Zero means Length-1 (unit-spaced indices).
	XMax float64
	// Seed makes generation reproducible.
	Seed int64
	// Noise is the Gaussian noise standard deviation relative to the
	// trend's amplitude (0.05 is mild, 0.3 is heavy).
	Noise float64
	// Wobble adds local sinusoidal fluctuation of the given relative
	// amplitude, the "minor fluctuations" blurry matching must ignore.
	Wobble float64
	// SamplesPerX emits this many rows per (z, x) coordinate with
	// independent noise; values > 1 exercise aggregation (Real Estate).
	SamplesPerX int
	// Templates is the planted shape mix; trendline i uses template
	// i % len(Templates) with jittered breakpoints and slopes.
	Templates []Template
}

// normalizedXSpan mirrors executor group normalization: the full x range of
// a chart maps to 4 horizontal units so template angles correspond to what
// the executor's fits will see.
const normalizedXSpan = 4.0

// Build renders the dataset as a table with columns z, x, y.
func Build(cfg Config) *dataset.Table {
	if cfg.NumViz <= 0 || cfg.Length <= 1 {
		panic(fmt.Sprintf("gen: invalid config %+v", cfg))
	}
	if len(cfg.Templates) == 0 {
		cfg.Templates = DefaultTemplates()
	}
	samples := cfg.SamplesPerX
	if samples <= 0 {
		samples = 1
	}
	xmax := cfg.XMax
	if xmax <= 0 {
		xmax = float64(cfg.Length - 1)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.NumViz * cfg.Length * samples
	zs := make([]string, 0, total)
	xs := make([]float64, 0, total)
	ys := make([]float64, 0, total)

	width := len(fmt.Sprintf("%d", cfg.NumViz))
	for v := 0; v < cfg.NumViz; v++ {
		tpl := cfg.Templates[v%len(cfg.Templates)]
		z := fmt.Sprintf("%s-%0*d-%s", cfg.Name, width, v, tpl.Name)
		trend := RenderTemplate(tpl, cfg.Length, rng)
		amp := amplitude(trend)
		if amp == 0 {
			amp = 1
		}
		phase := rng.Float64() * 2 * math.Pi
		freq := 6 + rng.Float64()*10
		// Noise and wobble levels vary per trendline (0.5–1.5× the config)
		// so instances of one template spread apart in score, as real
		// trendlines of one class do.
		vizNoise := cfg.Noise * (0.5 + rng.Float64())
		vizWobble := cfg.Wobble * (0.5 + rng.Float64())
		for i := 0; i < cfg.Length; i++ {
			x := xmax * float64(i) / float64(cfg.Length-1)
			base := trend[i]
			if vizWobble > 0 {
				base += vizWobble * amp * math.Sin(phase+freq*2*math.Pi*float64(i)/float64(cfg.Length))
			}
			for s := 0; s < samples; s++ {
				y := base + rng.NormFloat64()*vizNoise*amp
				zs = append(zs, z)
				xs = append(xs, x)
				ys = append(ys, y)
			}
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err) // impossible: columns are constructed with equal lengths
	}
	return tbl
}

// RenderTemplate draws one trendline of the given length from a template,
// jittering segment widths (±35%) and angles (±6°) so instances of one
// template differ structurally, the way real trendlines of one class do.
func RenderTemplate(tpl Template, length int, rng *rand.Rand) []float64 {
	segs := tpl.Segs
	if len(segs) == 0 {
		segs = []TemplateSeg{{Angle: 0, Width: 1}}
	}
	widths := make([]float64, len(segs))
	var totalW float64
	for i, s := range segs {
		w := s.Width * (0.65 + 0.7*rng.Float64())
		if w <= 0 {
			w = 0.01
		}
		widths[i] = w
		totalW += w
	}
	ys := make([]float64, length)
	// x advances in normalized units so angles mean what they say.
	dx := normalizedXSpan / float64(length-1)
	pos := 0
	var y float64
	for i, s := range segs {
		angle := s.Angle + (rng.Float64()-0.5)*12
		if angle > 88 {
			angle = 88
		}
		if angle < -88 {
			angle = -88
		}
		slope := math.Tan(angle * math.Pi / 180)
		end := pos + int(widths[i]/totalW*float64(length))
		if i == len(segs)-1 || end > length {
			end = length
		}
		for ; pos < end; pos++ {
			ys[pos] = y
			y += slope * dx
		}
	}
	for ; pos < length; pos++ {
		ys[pos] = y
	}
	return ys
}

func amplitude(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return max - min
}

// DefaultTemplates is a balanced mix of common trendline shapes.
func DefaultTemplates() []Template {
	return []Template{
		T("rise", 50, 1),
		T("fall", -50, 1),
		T("valley", -55, 1, 55, 1),
		T("peak", 55, 1, -55, 1),
		T("rise-flat", 55, 1, 2, 1),
		T("fall-flat", -55, 1, -2, 1),
		T("zigzag", 55, 1, -55, 1, 55, 1, -55, 1),
		T("drift", 8, 1),
	}
}
