package gen

import (
	"math"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
)

func TestBuildDimensions(t *testing.T) {
	cfg := Config{Name: "t", NumViz: 6, Length: 50, Seed: 1, Noise: 0.05}
	tbl := Build(cfg)
	if tbl.NumRows() != 6*50 {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), 6*50)
	}
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "z", X: "x", Y: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	for _, s := range series {
		if s.Len() != 50 {
			t.Fatalf("series %s has %d points, want 50", s.Z, s.Len())
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Name: "t", NumViz: 3, Length: 40, Seed: 7, Noise: 0.1}
	a := Build(cfg)
	b := Build(cfg)
	ca, _ := a.Column("y")
	cb, _ := b.Column("y")
	for i := range ca.Floats {
		if ca.Floats[i] != cb.Floats[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	cfg.Seed = 8
	c := Build(cfg)
	cc, _ := c.Column("y")
	same := true
	for i := range ca.Floats {
		if ca.Floats[i] != cc.Floats[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestBuildSamplesPerX(t *testing.T) {
	cfg := Config{Name: "t", NumViz: 2, Length: 30, Seed: 1, SamplesPerX: 3}
	tbl := Build(cfg)
	if tbl.NumRows() != 2*30*3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Extraction without aggregation must fail; with AggAvg it succeeds.
	if _, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "z", X: "x", Y: "y"}); err == nil {
		t.Fatal("duplicate (z,x) should demand aggregation")
	}
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "z", X: "x", Y: "y", Agg: dataset.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Len() != 30 {
		t.Fatalf("aggregated length = %d, want 30", series[0].Len())
	}
}

// TestRenderTemplateShape verifies a planted rise/fall renders with the
// right gross structure.
func TestRenderTemplateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trend := RenderTemplate(T("peak", 60, 1, -60, 1), 100, rng)
	if len(trend) != 100 {
		t.Fatalf("len = %d", len(trend))
	}
	maxAt := 0
	for i, y := range trend {
		if y > trend[maxAt] {
			maxAt = i
		}
	}
	if maxAt < 25 || maxAt > 75 {
		t.Fatalf("peak at %d, expected near the middle", maxAt)
	}
	if trend[0] > trend[maxAt] || trend[99] > trend[maxAt] {
		t.Fatal("endpoints should be below the peak")
	}
}

func TestRenderTemplateDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trend := RenderTemplate(Template{Name: "empty"}, 10, rng)
	if len(trend) != 10 {
		t.Fatalf("len = %d", len(trend))
	}
}

func TestTPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("T with odd pairs should panic")
		}
	}()
	T("bad", 1, 2, 3)
}

func TestEvalDatasetsDimensions(t *testing.T) {
	// Published Table 11 dimensions must match exactly.
	want := map[string][2]int{
		"Weather":    {144, 366},
		"Worms":      {258, 900},
		"50Words":    {905, 270},
		"RealEstate": {1777, 138},
		"Haptics":    {463, 1092},
	}
	for _, ds := range EvalDatasets() {
		dims, ok := want[ds.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", ds.Name)
			continue
		}
		series, err := dataset.Extract(ds.Table, ds.Spec)
		if err != nil {
			t.Errorf("%s: %v", ds.Name, err)
			continue
		}
		if len(series) != dims[0] {
			t.Errorf("%s: %d trendlines, want %d", ds.Name, len(series), dims[0])
		}
		if series[0].Len() != dims[1] {
			t.Errorf("%s: %d points, want %d", ds.Name, series[0].Len(), dims[1])
		}
		if len(ds.FuzzyQueries) < 2 || ds.NonFuzzyQuery == "" {
			t.Errorf("%s: missing queries", ds.Name)
		}
	}
}

func TestGenes(t *testing.T) {
	tbl := Genes(30, 48, 1)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "gene", X: "hour", Y: "expression"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 30 {
		t.Fatalf("genes = %d", len(series))
	}
	names := make(map[string]bool)
	for _, s := range series {
		names[s.Z] = true
	}
	for _, g := range []string{"gbx2", "klf5", "spry4", "pvt1"} {
		if !names[g] {
			t.Errorf("case-study gene %q missing", g)
		}
	}
}

func TestStocks(t *testing.T) {
	tbl := Stocks(20, 120, 1)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "symbol", X: "day", Y: "price"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 20 {
		t.Fatalf("stocks = %d", len(series))
	}
	for _, s := range series {
		for _, p := range s.Y {
			if p <= 0 || math.IsNaN(p) {
				t.Fatalf("stock %s has non-positive price %v", s.Z, p)
			}
		}
	}
}

func TestLuminosityAndCities(t *testing.T) {
	lum := Luminosity(12, 200, 1)
	series, err := dataset.Extract(lum, dataset.ExtractSpec{Z: "star", X: "time", Y: "luminosity"})
	if err != nil || len(series) != 12 {
		t.Fatalf("stars = %d, err %v", len(series), err)
	}
	cities := Cities(9, 24, 1)
	cs, err := dataset.Extract(cities, dataset.ExtractSpec{Z: "city", X: "month", Y: "temperature"})
	if err != nil || len(cs) != 9 {
		t.Fatalf("cities = %d, err %v", len(cs), err)
	}
	southern := 0
	for _, s := range cs {
		if len(s.Z) >= 5 && s.Z[:5] == "south" {
			southern++
		}
	}
	if southern == 0 {
		t.Fatal("expected southern-hemisphere cities")
	}
}

func TestDriftPeaks(t *testing.T) {
	tbl := DriftPeaks(120, 64, 5)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "series", X: "t", Y: "v"})
	if err != nil || len(series) != 120 {
		t.Fatalf("series = %d, err %v", len(series), err)
	}
	zigzags := 0
	for _, s := range series {
		if s.Len() != 64 {
			t.Fatalf("%s has %d points, want 64", s.Z, s.Len())
		}
		if len(s.Z) >= 6 && s.Z[:6] == "zigzag" {
			zigzags++
		}
	}
	// ~12% planted zigzags: enough to fill a K=10 floor, rare enough that
	// pruning the drifting bulk is the dominant saving.
	if zigzags < 5 || zigzags > 40 {
		t.Fatalf("zigzags = %d, want a sparse planted minority", zigzags)
	}
}
