package gen

import (
	"fmt"
	"math"
	"math/rand"

	"shapesearch/internal/dataset"
)

// Genes synthesizes a gene-expression dataset in the style of the paper's
// genomics case study (Section 8): columns gene, hour, expression. Besides
// generic profiles it plants the named genes the study discusses — gbx2,
// klf5 and spry4 rise at ~45° and stay high (stem-cell self-renewal), and
// pvt1 shows two sharp peaks within a short window (the outlier R1 found).
func Genes(numGenes, timePoints int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	profiles := []Template{
		T("suppressed", 50, 1, -55, 1.2, 50, 1),    // up, down, up: drug suppression
		T("stimulus", 2, 1, 70, 0.4, -35, 1.6),     // stable, sudden rise, gradual fall
		T("self-renewal", 45, 1, 2, 1.2),           // rise at 45°, stay high
		T("differentiating", -45, 1, -2, 1.2),      // start high, fall, stay low
		T("early-reg", 60, 0.4, -50, 0.6, -2, 2),   // early spike then quiet
		T("late-reg", -2, 2, 55, 0.7),              // quiet then late rise
		T("cycling", 50, 1, -50, 1, 50, 1, -50, 1), // periodic regulation
		T("stable", 2, 1),
	}
	var zs []string
	var xs, ys []float64
	emit := func(name string, tpl Template, noise float64) {
		trend := RenderTemplate(tpl, timePoints, rng)
		amp := amplitude(trend)
		if amp == 0 {
			amp = 1
		}
		for i := 0; i < timePoints; i++ {
			zs = append(zs, name)
			xs = append(xs, float64(i))
			ys = append(ys, 2+trend[i]+rng.NormFloat64()*noise*amp)
		}
	}
	emit("gbx2", profiles[2], 0.04)
	emit("klf5", profiles[2], 0.05)
	emit("spry4", profiles[2], 0.06)
	// pvt1: two sharp peaks within a short window.
	emit("pvt1", T("double-peak", 1, 1.5, 72, 0.5, -72, 0.5, 72, 0.5, -72, 0.5, 1, 1.5), 0.03)
	for g := 4; g < numGenes; g++ {
		tpl := profiles[g%len(profiles)]
		emit(fmt.Sprintf("gene%04d", g), tpl, 0.05+rng.Float64()*0.05)
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "gene", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "hour", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "expression", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// Stocks synthesizes a stock price dataset: columns symbol, day, price.
// It plants the technical patterns the paper's introduction motivates:
// double tops, triple tops, head-and-shoulders, W-shapes and cups.
func Stocks(numStocks, days int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	patterns := []Template{
		T("double-top", 55, 1, -50, 0.8, 50, 0.8, -55, 1),
		T("triple-top", 55, 1, -45, 0.7, 45, 0.7, -45, 0.7, 45, 0.7, -55, 1),
		T("head-shoulders", 45, 1, -35, 0.6, 65, 0.8, -65, 0.8, 35, 0.6, -45, 1),
		T("w-shape", -55, 1, 50, 0.8, -50, 0.8, 55, 1),
		T("cup", -40, 1, -10, 0.8, 10, 0.8, 40, 1),
		T("bull", 45, 1),
		T("bear", -45, 1),
		T("recovery", -55, 1, 55, 1.4),
		T("plateau", 50, 1, 2, 1.5),
		T("choppy", 30, 1, -30, 1, 30, 1, -30, 1),
	}
	var zs []string
	var xs, ys []float64
	for s := 0; s < numStocks; s++ {
		tpl := patterns[s%len(patterns)]
		sym := fmt.Sprintf("%s%03d", tickerPrefix(tpl.Name), s)
		trend := RenderTemplate(tpl, days, rng)
		amp := amplitude(trend)
		if amp == 0 {
			amp = 1
		}
		base := 20 + rng.Float64()*200
		scale := base * 0.3 / amp
		for i := 0; i < days; i++ {
			zs = append(zs, sym)
			xs = append(xs, float64(i))
			ys = append(ys, base+trend[i]*scale+rng.NormFloat64()*0.02*base)
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "symbol", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "day", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "price", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

func tickerPrefix(pattern string) string {
	if len(pattern) >= 3 {
		return pattern[:3]
	}
	return pattern
}

// Luminosity synthesizes star brightness curves: columns star, time,
// luminosity. Planted shapes follow the astronomy use-cases of the paper's
// introduction: transit dips (a planet crossing the star), supernova spikes,
// and quiet stars.
func Luminosity(numStars, points int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	var zs []string
	var xs, ys []float64
	for s := 0; s < numStars; s++ {
		var name string
		var trend []float64
		switch s % 4 {
		case 0: // transit dip: flat, sharp down, sharp up, flat
			name = fmt.Sprintf("transit%03d", s)
			trend = RenderTemplate(T("dip", 0.5, 2, -75, 0.3, 75, 0.3, -0.5, 2), points, rng)
		case 1: // supernova: flat then sharp peak then decay
			name = fmt.Sprintf("supernova%03d", s)
			trend = RenderTemplate(T("nova", 0.5, 2, 80, 0.3, -55, 1.2), points, rng)
		case 2: // double transit
			name = fmt.Sprintf("binary%03d", s)
			trend = RenderTemplate(T("dip2", 0.5, 1.5, -70, 0.3, 70, 0.3, 0.5, 1.5, -70, 0.3, 70, 0.3, 0.5, 1.5), points, rng)
		default: // quiet star
			name = fmt.Sprintf("quiet%03d", s)
			trend = RenderTemplate(T("quiet", 0, 1), points, rng)
		}
		amp := amplitude(trend)
		if amp == 0 {
			amp = 1
		}
		base := 50 + rng.Float64()*100
		for i := 0; i < points; i++ {
			zs = append(zs, name)
			xs = append(xs, float64(i))
			ys = append(ys, base+trend[i]*base*0.2/amp+rng.NormFloat64()*0.01*base)
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "star", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "time", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "luminosity", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// Cities synthesizes monthly temperature trendlines: columns city, month,
// temperature. Northern cities peak mid-year; southern cities (like the
// paper's Sydney example) rise toward January and fall toward July.
func Cities(numCities, months int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	var zs []string
	var xs, ys []float64
	for c := 0; c < numCities; c++ {
		southern := c%3 == 2
		name := fmt.Sprintf("city%03d", c)
		if southern {
			name = fmt.Sprintf("south%03d", c)
		}
		base := -5 + rng.Float64()*25
		ampl := 8 + rng.Float64()*12
		phase := 0.0
		if southern {
			phase = math.Pi
		}
		for m := 0; m < months; m++ {
			t := base + ampl*math.Cos(2*math.Pi*float64(m)/12-math.Pi+phase) + rng.NormFloat64()*0.8
			zs = append(zs, name)
			xs = append(xs, float64(m))
			ys = append(ys, t)
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "city", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "month", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "temperature", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// DriftPeaks synthesizes a "separated" exploration corpus: columns series,
// t, v. The bulk is monotone drifts (half rising, half falling) with mild
// curvature and little noise; roughly one series in eight is a planted
// zigzag (steep rise-fall-rise-fall legs) scattered at random positions.
// Queries like "u ; d ; u ; d" have a top-k floor set by the zigzags that
// clearly separates from the bulk, which is the regime where lossless
// pruning can skip most of the collection: a drifting chart provably lacks
// half of the query's trends, so its sound score upper bound falls below
// the floor.
func DriftPeaks(numSeries, points int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	var zs []string
	var xs, ys []float64
	for s := 0; s < numSeries; s++ {
		var name string
		trend := make([]float64, points)
		if rng.Float64() < 0.12 {
			name = fmt.Sprintf("zigzag%03d", s)
			// Four steep legs (u, d, u, d) with randomized break points,
			// each leg at least ~15% of the chart.
			jitter := points / 8
			if jitter < 1 {
				jitter = 1
			}
			legs := [3]int{}
			legs[0] = points/4 + rng.Intn(jitter) - jitter/2
			legs[1] = points/2 + rng.Intn(jitter) - jitter/2
			legs[2] = 3*points/4 + rng.Intn(jitter) - jitter/2
			dir, y := 1.0, 0.0
			next := 0
			for i := range trend {
				if next < 3 && i == legs[next] {
					dir, next = -dir, next+1
				}
				y += dir * (1 + rng.Float64()*0.1)
				trend[i] = y
			}
		} else {
			name = fmt.Sprintf("drift%03d", s)
			slope := (0.5 + rng.Float64()) * float64(1-2*(s%2))
			curve := rng.NormFloat64() * 0.05 * float64(points)
			freq := 0.25 + rng.Float64()*0.5
			phase := rng.Float64() * 6
			for i := range trend {
				t := float64(i) / float64(points-1)
				trend[i] = slope*float64(points)*t + curve*math.Sin(2*math.Pi*freq*t+phase)
			}
		}
		amp := amplitude(trend)
		if amp == 0 {
			amp = 1
		}
		for i := 0; i < points; i++ {
			zs = append(zs, name)
			xs = append(xs, float64(i))
			ys = append(ys, trend[i]/amp+rng.NormFloat64()*0.0005)
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "series", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "t", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "v", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}
