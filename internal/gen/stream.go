package gen

import (
	"fmt"
	"math/rand"

	"shapesearch/internal/dataset"
)

// StreamTicks synthesizes a deterministic append-only tick stream for the
// incremental-ingestion tests and benchmarks: a base table holding the
// first basePoints points of every series (columns z, x, y), plus nBatches
// delta tables of batchPoints rows each, in arrival order. Every series
// walks its own deterministic sub-stream (the DriftPeaksSeries sub-seed
// scheme), and batch rows pick series from a separate deterministic stream,
// so the whole schedule reproduces exactly for a given parameter tuple —
// whatever order the batches are later applied in, concatenating
// base+batches row-wise always yields the same table.
//
// inOrder=true emits each series' points on the integer grid x = 0,1,2,…
// (the pure-extend streaming case). inOrder=false lets roughly a quarter of
// appended points arrive late: point k lands at x = (k−d) + ½ + k·1e−6 for
// a small backlog d — strictly between existing grid points and unique per
// k, so out-of-order merges are exercised without fabricating duplicate x
// values (which AggNone extraction rejects).
func StreamTicks(numSeries, basePoints, nBatches, batchPoints int, seed int64, inOrder bool) (*dataset.Table, []*dataset.Table) {
	rngs := make([]*rand.Rand, numSeries)
	ks := make([]int, numSeries)        // next point index per series
	level := make([]float64, numSeries) // random-walk y level per series
	names := make([]string, numSeries)
	for s := range rngs {
		rngs[s] = rand.New(rand.NewSource(seed + int64(s)*1_000_003))
		names[s] = fmt.Sprintf("tick%07d", s)
	}
	emit := func(s int) (x, y float64) {
		r := rngs[s]
		k := ks[s]
		ks[s]++
		x = float64(k)
		if !inOrder && k > 0 && r.Intn(4) == 0 {
			d := 1 + r.Intn(k)
			if d > 5 {
				d = 5
			}
			x = float64(k-d) + 0.5 + float64(k)*1e-6
		}
		level[s] += r.NormFloat64()
		return x, level[s]
	}
	mkTable := func(zs []string, xs, ys []float64) *dataset.Table {
		t, err := dataset.New(
			dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
			dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
			dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
		)
		if err != nil {
			panic(err) // impossible: columns are constructed equal-length
		}
		return t
	}

	n := numSeries * basePoints
	zs := make([]string, 0, n)
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for s := 0; s < numSeries; s++ {
		for k := 0; k < basePoints; k++ {
			x, y := emit(s)
			zs = append(zs, names[s])
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	base := mkTable(zs, xs, ys)

	// The series-picking stream is independent of the per-series walks so
	// batch composition (which groups an append touches) is itself a stable
	// part of the schedule.
	pick := rand.New(rand.NewSource(seed ^ 0x7ec5_11fe))
	batches := make([]*dataset.Table, nBatches)
	for b := range batches {
		bz := make([]string, batchPoints)
		bx := make([]float64, batchPoints)
		by := make([]float64, batchPoints)
		for i := 0; i < batchPoints; i++ {
			s := pick.Intn(numSeries)
			bx[i], by[i] = emit(s)
			bz[i] = names[s]
		}
		batches[b] = mkTable(bz, bx, by)
	}
	return base, batches
}
