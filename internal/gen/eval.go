package gen

import "shapesearch/internal/dataset"

// EvalDataset bundles one of the paper's five evaluation datasets (Table 11)
// as a synthetic substitute: the data, the extraction spec, and the fuzzy
// and non-fuzzy queries the paper issued against it, written in this
// repository's regex syntax.
//
// Where the published non-fuzzy x ranges exceed the published trendline
// length (an inconsistency in Table 11 for the 50 Words dataset), the
// ranges are kept and the x domain is widened instead, so the queries run
// verbatim; point counts still match the paper.
type EvalDataset struct {
	Name          string
	Table         *dataset.Table
	Spec          dataset.ExtractSpec
	FuzzyQueries  []string
	NonFuzzyQuery string
}

// Weather mirrors the UCI Weather dataset: 144 trendlines of 366 points.
func Weather() EvalDataset {
	cfg := Config{
		Name: "weather", NumViz: 144, Length: 366, XMax: 366, Seed: 101,
		Noise: 0.04, Wobble: 0.05,
		Templates: []Template{
			T("deg45-d-u-d", 45, 1, -50, 1, 50, 1, -45, 1),
			T("u-f-u-d", 55, 1, 2, 1, 50, 1, -50, 1),
			T("d-f-u-d", -50, 1, -2, 1, 55, 1, -50, 1),
			T("f-u-d-f", 2, 1, 55, 1, -55, 1, -2, 1),
			T("d-u-d-seasonal", -50, 1, 55, 1.2, -50, 1),
			T("peak", 55, 1, -55, 1),
			T("valley", -55, 1, 55, 1),
			T("drift", 10, 1),
		},
	}
	return EvalDataset{
		Name:  "Weather",
		Table: Build(cfg),
		Spec:  dataset.ExtractSpec{Z: "z", X: "x", Y: "y"},
		FuzzyQueries: []string{
			"(θ = 45° ⊗ d ⊗ u ⊗ d)",
			"((u ⊕ d) ⊗ f ⊗ u ⊗ d)",
			"(f ⊗ u ⊗ d ⊗ f)",
		},
		NonFuzzyQuery: "[p{down},x.s=1,x.e=40] ⊗ [p{up},x.s=40,x.e=100] ⊗ [p{down},x.s=100,x.e=120]",
	}
}

// Worms mirrors the UCI Worms dataset: 258 trendlines of 900 points.
func Worms() EvalDataset {
	cfg := Config{
		Name: "worms", NumViz: 258, Length: 900, XMax: 900, Seed: 102,
		Noise: 0.05, Wobble: 0.04,
		Templates: []Template{
			T("d-45-f", -55, 1, 45, 1.2, 2, 1),
			T("d-neg20-f", -50, 1, -20, 1, 2, 1),
			T("d-45-d", -55, 1, 45, 1, -50, 1),
			T("u-d-u", 55, 1, -55, 1, 55, 1),
			T("d-u-d", -55, 1, 55, 1, -55, 1),
			T("fall-then-flat", -50, 1, -2, 2),
			T("drift", 6, 1),
		},
	}
	return EvalDataset{
		Name:  "Worms",
		Table: Build(cfg),
		Spec:  dataset.ExtractSpec{Z: "z", X: "x", Y: "y"},
		FuzzyQueries: []string{
			"(d ⊗ (θ = 45° ⊕ θ = -20°) ⊗ f)",
			"(d ⊗ θ = 45° ⊗ d)",
			"(u ⊗ d ⊗ u)",
		},
		NonFuzzyQuery: "[p{down},x.s=50,x.e=100]",
	}
}

// FiftyWords mirrors the UCI 50 Words dataset: 905 trendlines of 270
// points. The x domain spans [0, 1000] so the paper's non-fuzzy ranges
// (200–400, 800–850) apply verbatim.
func FiftyWords() EvalDataset {
	cfg := Config{
		Name: "words", NumViz: 905, Length: 270, XMax: 1000, Seed: 103,
		Noise: 0.06, Wobble: 0.05,
		Templates: []Template{
			T("d-u", -55, 1, 55, 1),
			T("d-f-d", -55, 1, 2, 1, -50, 1),
			T("f-u-d-f", 2, 1, 55, 1, -55, 1, -2, 1),
			T("u-u-f", 55, 1, 50, 1, 2, 1),
			T("u-d-f", 55, 1, -55, 1, 2, 1),
			T("d-d-f", -55, 1, -50, 1, 2, 1),
			T("d-u-d-u", -55, 1, 55, 1, -55, 1, 55, 1),
			T("drift", -8, 1),
		},
	}
	return EvalDataset{
		Name:  "50Words",
		Table: Build(cfg),
		Spec:  dataset.ExtractSpec{Z: "z", X: "x", Y: "y"},
		FuzzyQueries: []string{
			"(d ⊗ (u ⊕ (f ⊗ d)))",
			"(f ⊗ u ⊗ d ⊗ f)",
			"((u ⊕ d) ⊗ (u ⊕ d) ⊗ f)",
		},
		NonFuzzyQuery: "[p{down},x.s=200,x.e=400] ⊗ [p{up},x.s=800,x.e=850]",
	}
}

// RealEstate mirrors the Zillow Real Estate dataset: 1777 trendlines of 138
// points, with three samples per (z, x) so extraction requires aggregation,
// as in the paper.
func RealEstate() EvalDataset {
	cfg := Config{
		Name: "estate", NumViz: 1777, Length: 138, XMax: 138, Seed: 104,
		Noise: 0.05, Wobble: 0.03, SamplesPerX: 3,
		Templates: []Template{
			T("f-d-u-f", 2, 1, -55, 1, 55, 1, 2, 1),
			T("u-d-u-f", 55, 1, -55, 1, 50, 1, 2, 1),
			T("u-f-45-60", 50, 1, 2, 1, 45, 1, 60, 1),
			T("u-f-u-d", 50, 1, 2, 1, 55, 1, -55, 1),
			T("d-u-d", -55, 1, 55, 1.5, -50, 1),
			T("boom", 60, 1, 5, 1),
			T("bust", -60, 1, -5, 1),
			T("drift", 5, 1),
		},
	}
	return EvalDataset{
		Name:  "RealEstate",
		Table: Build(cfg),
		Spec:  dataset.ExtractSpec{Z: "z", X: "x", Y: "y", Agg: dataset.AggAvg},
		FuzzyQueries: []string{
			"(f ⊗ d ⊗ u ⊗ f)",
			"(u ⊗ d ⊗ u ⊗ f)",
			"(u ⊗ f ⊗ ((θ = 45° ⊗ θ = 60°) ⊕ (u ⊗ d)))",
		},
		NonFuzzyQuery: "[p{down},x.s=1,x.e=20] ⊗ [p{up},x.s=20,x.e=60] ⊗ [p{down},x.s=60,x.e=138]",
	}
}

// Haptics mirrors the UCI Haptics dataset: 463 trendlines of 1092 points.
func Haptics() EvalDataset {
	cfg := Config{
		Name: "haptics", NumViz: 463, Length: 1092, XMax: 1092, Seed: 105,
		Noise: 0.06, Wobble: 0.05,
		Templates: []Template{
			T("u-d-f-u", 55, 1, -55, 1, 2, 1, 50, 1),
			T("d-u-d-f", -55, 1, 55, 1, -55, 1, 2, 1),
			T("early-rise", 60, 0.3, 5, 2),
			T("u-d-u-d", 55, 1, -55, 1, 55, 1, -55, 1),
			T("slow-fall", -20, 1),
			T("drift", 6, 1),
		},
	}
	return EvalDataset{
		Name:  "Haptics",
		Table: Build(cfg),
		Spec:  dataset.ExtractSpec{Z: "z", X: "x", Y: "y"},
		FuzzyQueries: []string{
			"(u ⊗ d ⊗ f ⊗ u)",
			"(d ⊗ u ⊗ d ⊗ f)",
		},
		NonFuzzyQuery: "[p{up},x.s=60,x.e=80]",
	}
}

// EvalDatasets returns all five Table 11 dataset substitutes.
func EvalDatasets() []EvalDataset {
	return []EvalDataset{Weather(), Worms(), FiftyWords(), RealEstate(), Haptics()}
}
