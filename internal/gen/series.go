package gen

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"shapesearch/internal/dataset"
)

// DriftPeaksSeries synthesizes the DriftPeaks separated corpus directly as
// grouped-ready series — the corpus-scale form (10⁵–10⁶ series) that the
// shape-index benchmarks run on, skipping table materialization entirely.
// Unlike DriftPeaks' fixed one-in-eight zigzag fraction, the number of
// planted zigzags is a parameter and does NOT grow with the corpus: the
// top-k floor is set by a fixed strong set however large the bulk gets,
// which is exactly the separated regime where indexed search should visit a
// vanishing fraction of the corpus as N grows.
//
// Generation is deterministic for a given (numSeries, points, zigzags,
// seed): every series derives its own sub-seed, so the corpus is identical
// whatever the worker count, and all series share one X backing slice
// (scoring only reads it).
func DriftPeaksSeries(numSeries, points, zigzags int, seed int64) []dataset.Series {
	if zigzags > numSeries {
		zigzags = numSeries
	}
	xs := make([]float64, points)
	for i := range xs {
		xs[i] = float64(i)
	}
	// Zigzags are spread evenly through the corpus so round-robin index
	// shards each see planted strong candidates early.
	step := 0
	if zigzags > 0 {
		step = numSeries / zigzags
	}
	out := make([]dataset.Series, numSeries)
	workers := runtime.GOMAXPROCS(0)
	chunk := (numSeries + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < numSeries; lo += chunk {
		hi := lo + chunk
		if hi > numSeries {
			hi = numSeries
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for s := lo; s < hi; s++ {
				out[s] = driftPeaksOne(s, points, xs, step, zigzags, seed)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// driftPeaksOne renders series s with its own deterministic sub-stream,
// mirroring DriftPeaks' per-series shapes: a steep u-d-u-d zigzag for the
// planted strong set, a mildly curved monotone drift for the bulk.
func driftPeaksOne(s, points int, xs []float64, step, zigzags int, seed int64) dataset.Series {
	rng := rand.New(rand.NewSource(seed + int64(s)*1_000_003))
	isZig := step > 0 && s%step == 0 && s/step < zigzags
	trend := make([]float64, points)
	var name string
	if isZig {
		name = fmt.Sprintf("zigzag%07d", s)
		jitter := points / 8
		if jitter < 1 {
			jitter = 1
		}
		legs := [3]int{}
		legs[0] = points/4 + rng.Intn(jitter) - jitter/2
		legs[1] = points/2 + rng.Intn(jitter) - jitter/2
		legs[2] = 3*points/4 + rng.Intn(jitter) - jitter/2
		dir, y := 1.0, 0.0
		next := 0
		for i := range trend {
			if next < 3 && i == legs[next] {
				dir, next = -dir, next+1
			}
			y += dir * (1 + rng.Float64()*0.1)
			trend[i] = y
		}
	} else {
		name = fmt.Sprintf("drift%07d", s)
		slope := (0.5 + rng.Float64()) * float64(1-2*(s%2))
		curve := rng.NormFloat64() * 0.05 * float64(points)
		freq := 0.25 + rng.Float64()*0.5
		phase := rng.Float64() * 6
		for i := range trend {
			t := float64(i) / float64(points-1)
			trend[i] = slope*float64(points)*t + curve*math.Sin(2*math.Pi*freq*t+phase)
		}
	}
	amp := amplitude(trend)
	if amp == 0 {
		amp = 1
	}
	ys := make([]float64, points)
	for i := range ys {
		ys[i] = trend[i]/amp + rng.NormFloat64()*0.0005
	}
	return dataset.Series{Z: name, X: xs, Y: ys}
}
