package gen

import (
	"testing"

	"shapesearch/internal/dataset"
)

func tableFingerprint(t *dataset.Table) string {
	out := ""
	for _, name := range t.ColumnNames() {
		c, _ := t.Column(name)
		for i := 0; i < t.NumRows(); i++ {
			out += c.ValueString(i) + "|"
		}
		out += ";"
	}
	return out
}

func TestStreamTicksDeterministic(t *testing.T) {
	for _, inOrder := range []bool{true, false} {
		base1, batches1 := StreamTicks(40, 6, 5, 30, 99, inOrder)
		base2, batches2 := StreamTicks(40, 6, 5, 30, 99, inOrder)
		if tableFingerprint(base1) != tableFingerprint(base2) {
			t.Fatalf("inOrder=%v: base tables differ between identical calls", inOrder)
		}
		if len(batches1) != 5 || len(batches2) != 5 {
			t.Fatalf("inOrder=%v: got %d/%d batches, want 5", inOrder, len(batches1), len(batches2))
		}
		for b := range batches1 {
			if tableFingerprint(batches1[b]) != tableFingerprint(batches2[b]) {
				t.Fatalf("inOrder=%v: batch %d differs between identical calls", inOrder, b)
			}
		}
		if base1.NumRows() != 40*6 {
			t.Fatalf("base rows = %d, want %d", base1.NumRows(), 40*6)
		}
		for _, bt := range batches1 {
			if bt.NumRows() != 30 {
				t.Fatalf("batch rows = %d, want 30", bt.NumRows())
			}
		}
	}
}

// TestStreamTicksUniqueX guards the AggNone compatibility promise: no series
// ever emits a duplicate x, in order or out of order.
func TestStreamTicksUniqueX(t *testing.T) {
	for _, inOrder := range []bool{true, false} {
		base, batches := StreamTicks(25, 8, 12, 40, 7, inOrder)
		seen := make(map[string]map[float64]bool)
		record := func(tb *dataset.Table) {
			zc, _ := tb.Column("z")
			xc, _ := tb.Column("x")
			for i := 0; i < tb.NumRows(); i++ {
				z, x := zc.Strings[i], xc.Floats[i]
				if seen[z] == nil {
					seen[z] = make(map[float64]bool)
				}
				if seen[z][x] {
					t.Fatalf("inOrder=%v: series %s repeats x=%v", inOrder, z, x)
				}
				seen[z][x] = true
			}
		}
		record(base)
		for _, bt := range batches {
			record(bt)
		}
	}
}
