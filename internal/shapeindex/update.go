package shapeindex

import "sort"

// leafSize / fanout shape both Build's construction and Update's patching;
// they must agree so an updated tree chunks like a fresh build's.
const (
	leafSize = 64
	fanout   = 8
)

// Update returns a new Index absorbing a delta: sums is the FULL new
// summary slice (it may be longer than the one Build saw — appended ids go
// into fresh leaves), and changed lists the ids whose summaries were
// replaced or added. The receiver is left untouched (persistent path-copy),
// so in-flight traversals of the old index stay valid.
//
// Cost is O(|changed| · leafSize) to re-envelope dirty leaves plus
// O(dirtyLeaves · log shardLeaves) spine refolds with untouched-node reuse
// — never O(corpus). A changed id that is now nil (its visualization became
// ungroupable) keeps its leaf slot but folds as an unboundable summary, so
// the envelope stays dominant and the member is verified rather than
// wrongly skipped.
//
// Repeated updates decay clustering quality: replaced members drift away
// from their bucket's look-alikes and added ids form new (possibly
// underfull) leaves. Staleness counts the ids touched since the last full
// Build so callers can schedule a rebuild past a threshold.
func (ix *Index) Update(sums []*Summary, changed []int32) *Index {
	if len(changed) == 0 && len(sums) == len(ix.leafOf) {
		return ix
	}
	if len(ix.shards) == 0 {
		// Nothing built yet — incremental maintenance has no structure to
		// patch, so this is a fresh build.
		return Build(sums, ix.wantShards)
	}

	seen := make(map[int32]bool, len(changed))
	// dirtySet dedupes; dirty carries the refs in first-appearance order so
	// the re-envelope loop below is a pure function of the inputs (a map
	// range here would patch leaves in randomized order).
	dirtySet := make(map[leafRef]bool)
	var dirty []leafRef
	var added []int32
	replaced := 0
	for _, id := range changed {
		if id < 0 || int(id) >= len(sums) || seen[id] {
			continue
		}
		seen[id] = true
		if int(id) < len(ix.leafOf) && ix.leafOf[id].pos >= 0 {
			if ref := ix.leafOf[id]; !dirtySet[ref] {
				dirtySet[ref] = true
				dirty = append(dirty, ref)
			}
			replaced++
		} else if sums[id] != nil {
			added = append(added, id)
		}
	}
	// Ids beyond the previous slice are additions even if the caller forgot
	// to list them; scanning the tail keeps Update's contract forgiving.
	for id := int32(len(ix.leafOf)); int(id) < len(sums); id++ {
		if !seen[id] && sums[id] != nil {
			added = append(added, id)
		}
	}

	next := &Index{
		n:          ix.n + len(added),
		wantShards: ix.wantShards,
		stale:      ix.stale + replaced + len(added),
	}
	next.leafOf = make([]leafRef, len(sums))
	copy(next.leafOf, ix.leafOf)
	for i := len(ix.leafOf); i < len(sums); i++ {
		next.leafOf[i] = leafRef{-1, -1}
	}

	// Copy the per-shard leaf lists; shards that stay clean share slices and
	// roots with the old index.
	next.shards = append([]*Node(nil), ix.shards...)
	next.shardLeaves = make([][]*Node, len(ix.shardLeaves))
	copy(next.shardLeaves, ix.shardLeaves)
	dirtyShard := make([]bool, len(next.shards))

	// Re-envelope dirty leaves in place (path-copied nodes, same members).
	for _, ref := range dirty {
		si, pos := int(ref.shard), int(ref.pos)
		if !dirtyShard[si] {
			next.shardLeaves[si] = append([]*Node(nil), ix.shardLeaves[si]...)
			dirtyShard[si] = true
		}
		old := next.shardLeaves[si][pos]
		memberSums := make([]*Summary, len(old.Members))
		for i, id := range old.Members {
			if int(id) < len(sums) && sums[id] != nil {
				memberSums[i] = sums[id]
			} else {
				memberSums[i] = &Summary{} // unboundable: +Inf bound, sound
			}
		}
		env := Envelope(memberSums)
		env.UpDown = nil
		next.shardLeaves[si][pos] = &Node{Env: env, Members: old.Members, MinID: old.MinID}
	}

	// Bucket additions by the build key into fresh leaves, each assigned to
	// the shard with the fewest leaves (ties to the lowest shard) so load
	// stays balanced without reshuffling existing buckets.
	if len(added) > 0 {
		sort.Slice(added, func(a, b int) bool {
			return lessByBuildKey(sums, added[a], added[b])
		})
		for off := 0; off < len(added); off += leafSize {
			end := off + leafSize
			if end > len(added) {
				end = len(added)
			}
			members := append([]int32(nil), added[off:end]...)
			memberSums := make([]*Summary, len(members))
			for i, id := range members {
				memberSums[i] = sums[id]
			}
			env := Envelope(memberSums)
			env.UpDown = nil
			sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
			si := 0
			for s := 1; s < len(next.shardLeaves); s++ {
				if len(next.shardLeaves[s]) < len(next.shardLeaves[si]) {
					si = s
				}
			}
			if !dirtyShard[si] {
				next.shardLeaves[si] = append([]*Node(nil), ix.shardLeaves[si]...)
				dirtyShard[si] = true
			}
			for _, id := range members {
				next.leafOf[id] = leafRef{int32(si), int32(len(next.shardLeaves[si]))}
			}
			next.shardLeaves[si] = append(next.shardLeaves[si], &Node{Env: env, Members: members, MinID: members[0]})
		}
	}

	// Refold dirty shards' spines, reusing every internal node whose
	// children are untouched — the leaf-to-root refold cost.
	for si := range next.shards {
		if dirtyShard[si] {
			next.shards[si] = buildTreeReuse(next.shardLeaves[si], levelsOf(ix.shards[si]), fanout)
		}
	}
	return next
}

// Staleness reports how many summary ids Update has touched since the last
// full Build — the clustering-decay signal a rebuild policy thresholds on.
func (ix *Index) Staleness() int { return ix.stale }

// levelsOf collects a tree's nodes level by level, leaf level first. The
// chunked bottom-up construction gives every leaf the same depth, so a BFS
// partitions cleanly into levels.
func levelsOf(root *Node) [][]*Node {
	if root == nil {
		return nil
	}
	levels := [][]*Node{{root}}
	for {
		cur := levels[len(levels)-1]
		var nextLvl []*Node
		for _, n := range cur {
			nextLvl = append(nextLvl, n.Children...)
		}
		if len(nextLvl) == 0 {
			break
		}
		levels = append(levels, nextLvl)
	}
	// Reverse: leaf level first, root last.
	for i, j := 0, len(levels)-1; i < j; i, j = i+1, j-1 {
		levels[i], levels[j] = levels[j], levels[i]
	}
	return levels
}

// buildTreeReuse is buildTree with node reuse: an internal node from the
// old tree is kept verbatim when its chunk of children is pointer-identical
// to the new chunk (identical children ⇒ identical envelope). Only nodes on
// a dirty leaf's path to the root — or past a grown chunk boundary — are
// re-enveloped.
func buildTreeReuse(level []*Node, oldLevels [][]*Node, fanout int) *Node {
	depth := 0
	for len(level) > 1 {
		var oldUp []*Node
		if depth+1 < len(oldLevels) {
			oldUp = oldLevels[depth+1]
		}
		nextLvl := make([]*Node, 0, (len(level)+fanout-1)/fanout)
		for off := 0; off < len(level); off += fanout {
			end := off + fanout
			if end > len(level) {
				end = len(level)
			}
			children := level[off:end:end]
			if ci := off / fanout; ci < len(oldUp) && sameChildren(oldUp[ci].Children, children) {
				nextLvl = append(nextLvl, oldUp[ci])
				continue
			}
			envs := make([]*Summary, len(children))
			minID := children[0].MinID
			for i, c := range children {
				envs[i] = c.Env
				if c.MinID < minID {
					minID = c.MinID
				}
			}
			nextLvl = append(nextLvl, &Node{Env: Envelope(envs), Children: children, MinID: minID})
		}
		level = nextLvl
		depth++
	}
	return level[0]
}

func sameChildren(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
