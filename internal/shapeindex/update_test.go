package shapeindex

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// applyRandomUpdate mutates sums with a random mix of replacements and
// appended ids (including nil appends — ungroupable additions) and returns
// the new slice plus the changed-id list.
func applyRandomUpdate(rng *rand.Rand, sums []*Summary) ([]*Summary, []int32) {
	out := append([]*Summary(nil), sums...)
	var changed []int32
	for i := rng.Intn(8); i >= 0; i-- {
		id := int32(rng.Intn(len(out)))
		if rng.Intn(6) == 0 {
			out[id] = nil // viz became ungroupable
		} else {
			out[id] = randomSummary(rng)
		}
		changed = append(changed, id)
	}
	for i := rng.Intn(5); i > 0; i-- {
		if rng.Intn(5) == 0 {
			out = append(out, nil)
		} else {
			out = append(out, randomSummary(rng))
		}
		changed = append(changed, int32(len(out)-1))
	}
	return out, changed
}

// TestUpdatePartitionAndDominance drives random update sequences and checks
// after each step: every indexed id still lands in exactly one leaf, n is
// right, envelopes dominate the CURRENT summaries (the invariant indexed
// search relies on), the previous index is untouched (persistence), and the
// same Update applied twice produces the same structure (determinism).
func TestUpdatePartitionAndDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		sums := make([]*Summary, 150+rng.Intn(200))
		for i := range sums {
			if rng.Intn(13) == 0 {
				continue
			}
			sums[i] = randomSummary(rng)
		}
		ix := Build(sums, 1+rng.Intn(4))
		for step := 0; step < 4; step++ {
			newSums, changed := applyRandomUpdate(rng, sums)
			beforeLeaves := collectLeaves(ix)
			upd := ix.Update(newSums, changed)
			if !reflect.DeepEqual(collectLeaves(ix), beforeLeaves) {
				t.Fatalf("trial %d step %d: Update mutated the receiver", trial, step)
			}
			again := ix.Update(newSums, changed)
			if !reflect.DeepEqual(collectLeaves(upd), collectLeaves(again)) {
				t.Fatalf("trial %d step %d: Update is nondeterministic", trial, step)
			}

			// Membership: ids indexed before stay indexed (even if now nil —
			// they fold unboundable rather than vanish); brand-new non-nil
			// ids join; nil additions stay out.
			wantMember := make(map[int32]bool)
			for id, s := range sums {
				if s != nil {
					wantMember[int32(id)] = true
				}
			}
			for id := len(sums); id < len(newSums); id++ {
				if newSums[id] != nil {
					wantMember[int32(id)] = true
				}
			}
			seen := make(map[int32]int)
			leafCount := 0
			upd.Walk(func(env *Summary, members []int32) {
				leafCount++
				for _, id := range members {
					m := newSums[id]
					if m == nil {
						if env.Boundable() {
							t.Fatalf("trial %d step %d: leaf holding nil member %d is boundable", trial, step, id)
						}
						continue
					}
					for _, vmax := range []float64{1, 0.5, 0.2} {
						if env.Boundable() {
							if eh, mh := cappedExtreme(env.High, env.HighPrefix, vmax, true), cappedExtreme(m.High, m.HighPrefix, vmax, true); eh < mh-1e-12 {
								t.Fatalf("trial %d step %d: envelope high %g < member %d high %g (vmax=%g)",
									trial, step, eh, id, mh, vmax)
							}
						}
					}
				}
			})
			for si := 0; si < upd.NumShards(); si++ {
				upd.Traverse(si,
					func(*Summary) float64 { return 1 },
					func() float64 { return math.Inf(-1) }, 0,
					func(members []int32, _ float64) bool {
						for _, id := range members {
							seen[id]++
						}
						return true
					})
			}
			for id := range wantMember {
				if seen[id] != 1 {
					t.Fatalf("trial %d step %d: id %d visited %d times, want 1", trial, step, id, seen[id])
				}
			}
			if upd.Staleness() <= ix.Staleness() {
				t.Fatalf("trial %d step %d: staleness did not grow: %d -> %d", trial, step, ix.Staleness(), upd.Staleness())
			}
			sums, ix = newSums, upd
		}
	}
}

// TestUpdateReusesUntouchedNodes pins the O(changed × log N) claim: a
// single-id update of a large single-shard index must allocate only the
// dirty leaf and its root path, sharing every other node with the old tree.
func TestUpdateReusesUntouchedNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sums := make([]*Summary, 5000)
	for i := range sums {
		sums[i] = randomSummary(rng)
	}
	ix := Build(sums, 1)
	old := make(map[*Node]bool)
	var rec func(n *Node)
	rec = func(n *Node) {
		old[n] = true
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(ix.shards[0])

	newSums := append([]*Summary(nil), sums...)
	newSums[1234] = randomSummary(rng)
	upd := ix.Update(newSums, []int32{1234})
	fresh := 0
	var count func(n *Node)
	count = func(n *Node) {
		if !old[n] {
			fresh++
		}
		for _, c := range n.Children {
			if !old[n] || !old[c] { // descending into shared subtrees is pointless
				count(c)
			}
		}
	}
	count(upd.shards[0])
	// 5000 ids / 64 per leaf ≈ 79 leaves; depth ≈ 3. One dirty leaf should
	// cost a handful of nodes, nowhere near the 90-node full tree.
	if fresh == 0 || fresh > 10 {
		t.Fatalf("single-id update allocated %d fresh nodes", fresh)
	}
}

// TestUpdateEmptyIndexFallsBackToBuild: an index built over nothing has no
// structure to patch; Update must produce a fresh build.
func TestUpdateEmptyIndexFallsBackToBuild(t *testing.T) {
	ix := Build(nil, 2)
	rng := rand.New(rand.NewSource(19))
	sums := make([]*Summary, 100)
	changed := make([]int32, len(sums))
	for i := range sums {
		sums[i] = randomSummary(rng)
		changed[i] = int32(i)
	}
	upd := ix.Update(sums, changed)
	if upd.Len() != len(sums) {
		t.Fatalf("Len = %d, want %d", upd.Len(), len(sums))
	}
	want := Build(sums, 2)
	if !reflect.DeepEqual(collectLeaves(upd), collectLeaves(want)) {
		t.Fatal("fallback build differs from a direct Build")
	}
	if upd.Staleness() != 0 {
		t.Fatalf("fresh build staleness = %d, want 0", upd.Staleness())
	}
}
