package shapeindex

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestUpdateDeterministicOrder pins the regression the floatdeterminism
// analyzer caught: Update used to range over the dirty-leaf map, patching
// leaves in Go's randomized map order. The patch loop now follows a
// first-appearance-order slice, so the produced index — spines included,
// not just leaf content — must be a pure function of the inputs: identical
// across repeated calls and across permutations of the changed list (the
// dirty set is a set; its presentation order must not matter).
func TestUpdateDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		sums := make([]*Summary, 200+rng.Intn(150))
		for i := range sums {
			sums[i] = randomSummary(rng)
		}
		ix := Build(sums, 1+rng.Intn(4))
		newSums, changed := applyRandomUpdate(rng, sums)

		base := ix.Update(newSums, changed)
		for rep := 0; rep < 3; rep++ {
			perm := append([]int32(nil), changed...)
			rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			got := ix.Update(newSums, perm)
			if !reflect.DeepEqual(got.shards, base.shards) {
				t.Fatalf("trial %d rep %d: permuted changed list produced a different tree", trial, rep)
			}
			if !reflect.DeepEqual(got.leafOf, base.leafOf) || got.n != base.n {
				t.Fatalf("trial %d rep %d: permuted changed list produced different leaf assignments", trial, rep)
			}
		}
	}
}
