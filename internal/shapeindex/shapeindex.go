// Package shapeindex implements the corpus-level shape index: a sharded
// hierarchy of candidate-visualization buckets whose merged slope-interval
// envelopes provably dominate every member's sound score upper bound, for
// any query. A search traverses each shard best-first by envelope bound and
// stops as soon as the best remaining envelope falls below the live top-k
// floor — on a separated corpus that skips almost every bucket, making
// candidate selection sub-linear in the corpus size.
//
// The package is deliberately query-agnostic: a Summary carries only the
// query-independent bound ingredients (per-visualization adjacent-pair
// slope extremes with prefix sums, the grid-irregularity ratio, the point
// count, the evaluation-failure flag, and a coarse up/down direction sketch
// used as the build-time bucketing key). The executor supplies the bound
// function that maps a compiled query over a Summary; this package owns the
// structure: envelope merging, bucketing, sharding, and best-first
// traversal.
//
// Envelope-dominance invariant (the soundness contract, pinned by
// executor.TestIndexedBoundDominatesSound): for every node, Bound(node.Env)
// ≥ Bound(member) for every member summary beneath it, for every bound
// function the executor derives from a compiled query. Merge guarantees the
// Summary-level preconditions:
//
//   - Low/High extreme arrays are merged elementwise (min/max) and
//     truncated to the SHORTEST member array. Truncation is what keeps the
//     capped-extreme evaluation dominant: a longer envelope array would
//     spread the weight cap onto deeper, less extreme slopes and could fall
//     below a member's value; parking the leftover weight on the last
//     stored extreme errs outward instead (looser, never unsound).
//   - N is the minimum member point count: the executor's width floor is
//     monotone nondecreasing in the point count, so the envelope's floor is
//     ≤ every member's, its weight cap ≥ theirs, its slope interval ⊇
//     theirs.
//   - Ratio is the maximum member grid ratio (the weight cap grows with
//     irregularity), MayFail is the OR of member flags (it only ever forces
//     lower bounds down), and NPairs is the minimum — a single unboundable
//     member (no valid pair) makes the whole envelope unboundable (+Inf),
//     so it is never wrongly skipped.
package shapeindex

import (
	"runtime"
	"sort"
)

// Summary is the query-independent bound state of one candidate
// visualization (or the merged envelope of a bucket of them). Field
// semantics mirror the executor's pruneStats; see the package comment for
// the envelope merge rules.
type Summary struct {
	// N is the point count (minimum over members for envelopes).
	N int
	// NPairs counts valid adjacent pairs; 0 means unboundable (+Inf).
	NPairs int
	// Low holds the smallest adjacent-pair slopes, ascending; High the
	// largest, descending. LowPrefix[i] = Σ Low[:i] (same for High).
	Low, LowPrefix   []float64
	High, HighPrefix []float64
	// Ratio is the max/min adjacent-gap ratio of the normalized grid
	// (+Inf when degenerate); maximum over members for envelopes.
	Ratio float64
	// MayFail marks evaluation paths that can force a −1 score below any
	// slope-derived minimum (skip masks, degenerate fits); OR over members.
	MayFail bool
	// UpDown is the coarse per-window direction sketch (−1/0/+1) used as
	// the build-time bucketing key so buckets hold look-alike shapes and
	// their envelopes stay tight. Nil on envelopes; never read at query
	// time — bucketing affects only pruning effectiveness, not soundness.
	UpDown []int8
}

// Boundable reports whether the summary carries a usable slope interval;
// unboundable summaries must be bounded as +Inf (never skipped).
func (s *Summary) Boundable() bool {
	return s.NPairs > 0 && len(s.Low) > 0 && len(s.High) > 0
}

// fold merges src into dst under the envelope rules, leaving prefix sums
// stale (finalize recomputes them once per envelope).
func (dst *Summary) fold(src *Summary) {
	if src.N < dst.N {
		dst.N = src.N
	}
	if src.NPairs < dst.NPairs {
		dst.NPairs = src.NPairs
	}
	if src.Ratio > dst.Ratio {
		dst.Ratio = src.Ratio
	}
	dst.MayFail = dst.MayFail || src.MayFail
	if l := len(src.Low); l < len(dst.Low) {
		dst.Low = dst.Low[:l]
	}
	for i := range dst.Low {
		if src.Low[i] < dst.Low[i] {
			dst.Low[i] = src.Low[i]
		}
	}
	if l := len(src.High); l < len(dst.High) {
		dst.High = dst.High[:l]
	}
	for i := range dst.High {
		if src.High[i] > dst.High[i] {
			dst.High[i] = src.High[i]
		}
	}
}

// finalize rebuilds the prefix sums after a fold sequence.
func (s *Summary) finalize() {
	s.LowPrefix = prefixSums(s.Low, s.LowPrefix)
	s.HighPrefix = prefixSums(s.High, s.HighPrefix)
}

func prefixSums(sel, buf []float64) []float64 {
	if cap(buf) < len(sel)+1 {
		buf = make([]float64, len(sel)+1)
	}
	buf = buf[:len(sel)+1]
	buf[0] = 0
	for i, v := range sel {
		buf[i+1] = buf[i] + v
	}
	return buf
}

// Envelope returns a fresh Summary dominating every input (Merge of all).
// At least one input is required.
func Envelope(sums []*Summary) *Summary {
	e := &Summary{
		N:       sums[0].N,
		NPairs:  sums[0].NPairs,
		Ratio:   sums[0].Ratio,
		MayFail: sums[0].MayFail,
		Low:     append([]float64(nil), sums[0].Low...),
		High:    append([]float64(nil), sums[0].High...),
	}
	for _, s := range sums[1:] {
		e.fold(s)
	}
	e.finalize()
	return e
}

// Node is one level of a shard's envelope hierarchy: internal nodes carry
// children, leaves carry the member ids (indices into the summaries slice
// Build was given, ascending). Every node's Env dominates every member
// summary beneath it.
type Node struct {
	Env      *Summary
	Children []*Node
	Members  []int32
	// MinID is the smallest member id under the node — the deterministic
	// heap tie-break, so traversal order is reproducible for equal bounds.
	MinID int32
}

// Index is the built corpus index: per-shard envelope trees over disjoint
// bucket sets. Shards partition the leaf buckets round-robin, so planted
// strong candidates land in every shard and each shard's traversal raises
// the shared floor early. Immutable after Build; safe for concurrent
// traversal. Update path-copies into a fresh Index, so readers of the old
// one are never disturbed.
type Index struct {
	shards []*Node
	n      int

	// Incremental-maintenance bookkeeping (see Update).
	shardLeaves [][]*Node // each shard's leaves in tree order
	leafOf      []leafRef // summary id -> owning leaf; pos -1 = unindexed
	wantShards  int       // shard count requested at Build, pre-clamping
	stale       int       // ids touched by Update since the last full Build
}

// leafRef locates a member's leaf bucket: shardLeaves[shard][pos].
type leafRef struct {
	shard, pos int32
}

// Build constructs the index over the given summaries (nil entries — e.g.
// ungroupable candidates — are skipped and never reported by traversal).
// shards <= 0 picks GOMAXPROCS. Construction is deterministic for a given
// (summaries, shards) input.
func Build(sums []*Summary, shards int) *Index {
	ids := make([]int32, 0, len(sums))
	n := 0
	for i, s := range sums {
		if s != nil {
			ids = append(ids, int32(i))
			n++
		}
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	ix := &Index{n: n, wantShards: shards}
	if len(ids) == 0 {
		return ix
	}
	// Bucketing key: unboundable summaries first (quarantined in their own
	// buckets so their +Inf bound cannot poison a neighbor's envelope),
	// then lexicographic coarse direction sketch — look-alike shapes bucket
	// together, which is what keeps envelopes tight — with slope extremes
	// and the id as deterministic refinements.
	sort.SliceStable(ids, func(a, b int) bool {
		return lessByBuildKey(sums, ids[a], ids[b])
	})
	var leaves []*Node
	for off := 0; off < len(ids); off += leafSize {
		end := off + leafSize
		if end > len(ids) {
			end = len(ids)
		}
		members := append([]int32(nil), ids[off:end]...)
		memberSums := make([]*Summary, len(members))
		for i, id := range members {
			memberSums[i] = sums[id]
		}
		env := Envelope(memberSums)
		env.UpDown = nil
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		leaves = append(leaves, &Node{Env: env, Members: members, MinID: members[0]})
	}
	if shards > len(leaves) {
		shards = len(leaves)
	}
	ix.shards = make([]*Node, shards)
	ix.shardLeaves = make([][]*Node, shards)
	ix.leafOf = make([]leafRef, len(sums))
	for i := range ix.leafOf {
		ix.leafOf[i] = leafRef{-1, -1}
	}
	for si := 0; si < shards; si++ {
		var own []*Node
		for li := si; li < len(leaves); li += shards {
			for _, id := range leaves[li].Members {
				ix.leafOf[id] = leafRef{int32(si), int32(len(own))}
			}
			own = append(own, leaves[li])
		}
		ix.shardLeaves[si] = own
		ix.shards[si] = buildTree(own, fanout)
	}
	return ix
}

// lessByBuildKey is Build's deterministic bucketing order (see Build);
// Update sorts newly added ids by the same key so their buckets stay as
// tight as a fresh build's would be.
func lessByBuildKey(sums []*Summary, a, b int32) bool {
	sa, sb := sums[a], sums[b]
	ba, bb := sa.Boundable(), sb.Boundable()
	if ba != bb {
		return !ba
	}
	if ba {
		if c := compareUpDown(sa.UpDown, sb.UpDown); c != 0 {
			return c < 0
		}
		if sa.High[0] != sb.High[0] {
			return sa.High[0] < sb.High[0]
		}
		if sa.Low[0] != sb.Low[0] {
			return sa.Low[0] < sb.Low[0]
		}
	}
	return a < b
}

// buildTree folds a shard's leaves bottom-up into a fanout-ary tree.
func buildTree(level []*Node, fanout int) *Node {
	for len(level) > 1 {
		next := make([]*Node, 0, (len(level)+fanout-1)/fanout)
		for off := 0; off < len(level); off += fanout {
			end := off + fanout
			if end > len(level) {
				end = len(level)
			}
			children := level[off:end:end]
			envs := make([]*Summary, len(children))
			minID := children[0].MinID
			for i, c := range children {
				envs[i] = c.Env
				if c.MinID < minID {
					minID = c.MinID
				}
			}
			next = append(next, &Node{Env: Envelope(envs), Children: children, MinID: minID})
		}
		level = next
	}
	return level[0]
}

// Len reports the number of indexed (non-nil) summaries.
func (ix *Index) Len() int { return ix.n }

// NumShards reports the shard count.
func (ix *Index) NumShards() int { return len(ix.shards) }

// Traverse runs a best-first descent of one shard: nodes pop in descending
// bound order (ties broken by ascending MinID), a popped subtree whose
// bound trails floor() by more than eps prunes the entire remaining
// frontier (the heap guarantees every unpopped bound is no larger, and the
// caller's floor is monotone), and each surviving leaf is handed to visit
// in pop order. visit returning false aborts the descent. bound must be
// the executor's envelope bound — any function satisfying the dominance
// invariant over this index's envelopes.
func (ix *Index) Traverse(shard int, bound func(*Summary) float64, floor func() float64, eps float64, visit func(members []int32, ub float64) bool) {
	root := ix.shards[shard]
	if root == nil {
		return
	}
	h := nodeHeap{{n: root, ub: bound(root.Env)}}
	for len(h) > 0 {
		top := h.pop()
		if top.ub < floor()-eps {
			return // every remaining subtree is bounded even lower
		}
		if top.n.Members != nil {
			if !visit(top.n.Members, top.ub) {
				return
			}
			continue
		}
		for _, c := range top.n.Children {
			ub := bound(c.Env)
			if ub > top.ub {
				// The parent envelope dominates the child's by
				// construction; clamp out any float wobble so heap order
				// stays consistent with the dominance invariant.
				ub = top.ub
			}
			h.push(heapItem{n: c, ub: ub})
		}
	}
}

// Walk visits every node of every shard together with all leaf member ids
// beneath it (ascending). It exists for invariant checks and tests.
func (ix *Index) Walk(fn func(env *Summary, members []int32)) {
	var rec func(n *Node) []int32
	rec = func(n *Node) []int32 {
		var members []int32
		if n.Members != nil {
			members = n.Members
		} else {
			for _, c := range n.Children {
				members = append(members, rec(c)...)
			}
			sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		}
		fn(n.Env, members)
		return members
	}
	for _, root := range ix.shards {
		if root != nil {
			rec(root)
		}
	}
}

func compareUpDown(a, b []int8) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return len(a) - len(b)
}

// heapItem is one frontier entry of the best-first descent.
type heapItem struct {
	n  *Node
	ub float64
}

// nodeHeap is a max-heap by (ub desc, MinID asc) — the deterministic pop
// order Traverse documents.
type nodeHeap []heapItem

func (h heapItem) before(o heapItem) bool {
	if h.ub != o.ub {
		return h.ub > o.ub
	}
	return h.n.MinID < o.n.MinID
}

func (h *nodeHeap) push(it heapItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *nodeHeap) pop() heapItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && s[l].before(s[best]) {
			best = l
		}
		if r < len(s) && s[r].before(s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}
