package shapeindex

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomSummary fabricates a plausible per-viz summary: sorted slope
// extremes of random depth, a grid ratio ≥ 1, and a random direction
// sketch.
func randomSummary(rng *rand.Rand) *Summary {
	nExt := 1 + rng.Intn(5)
	low := make([]float64, nExt)
	high := make([]float64, nExt)
	for i := range low {
		low[i] = rng.NormFloat64() * 3
		high[i] = rng.NormFloat64() * 3
	}
	sort.Float64s(low)
	sort.Sort(sort.Reverse(sort.Float64Slice(high)))
	ud := make([]int8, 8)
	for i := range ud {
		ud[i] = int8(rng.Intn(3) - 1)
	}
	s := &Summary{
		N:       16 + rng.Intn(100),
		NPairs:  1 + rng.Intn(40),
		Low:     low,
		High:    high,
		Ratio:   1 + rng.Float64()*3,
		MayFail: rng.Intn(4) == 0,
		UpDown:  ud,
	}
	s.finalize()
	return s
}

// cappedExtreme mirrors the executor's evaluation: stack weight vmax on the
// most extreme slopes, park the leftover on the last stored one.
func cappedExtreme(sel, prefix []float64, vmax float64, hi bool) float64 {
	full := int(1 / vmax)
	if max := len(sel) - 1; full > max {
		full = max
	}
	rem := 1 - float64(full)*vmax
	return vmax*prefix[full] + rem*sel[full]
}

// TestEnvelopeDominatesCappedExtremes is the Summary-level half of the
// dominance invariant: for every weight cap, the envelope's capped-extreme
// high is ≥ every member's and its low is ≤ every member's, and the scalar
// fields merge conservatively (min N/NPairs, max Ratio, OR MayFail).
func TestEnvelopeDominatesCappedExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		members := make([]*Summary, 1+rng.Intn(6))
		for i := range members {
			members[i] = randomSummary(rng)
		}
		env := Envelope(members)
		for _, m := range members {
			if env.N > m.N || env.NPairs > m.NPairs || env.Ratio < m.Ratio {
				t.Fatalf("trial %d: scalar merge not conservative: env{N:%d P:%d R:%g} member{N:%d P:%d R:%g}",
					trial, env.N, env.NPairs, env.Ratio, m.N, m.NPairs, m.Ratio)
			}
			if m.MayFail && !env.MayFail {
				t.Fatalf("trial %d: MayFail not propagated", trial)
			}
			for _, vmax := range []float64{1, 0.7, 0.5, 0.33, 0.21, 0.125, 0.06} {
				eh := cappedExtreme(env.High, env.HighPrefix, vmax, true)
				mh := cappedExtreme(m.High, m.HighPrefix, vmax, true)
				if eh < mh-1e-12 {
					t.Fatalf("trial %d vmax=%g: envelope high %g < member %g", trial, vmax, eh, mh)
				}
				el := cappedExtreme(env.Low, env.LowPrefix, vmax, false)
				ml := cappedExtreme(m.Low, m.LowPrefix, vmax, false)
				if el > ml+1e-12 {
					t.Fatalf("trial %d vmax=%g: envelope low %g > member %g", trial, vmax, el, ml)
				}
			}
		}
	}
}

// TestEnvelopeUnboundableMember: one NPairs==0 member must make the whole
// envelope unboundable so traversal can never skip its bucket.
func TestEnvelopeUnboundableMember(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSummary(rng)
	b := &Summary{N: 5, NPairs: 0, Ratio: math.Inf(1)}
	env := Envelope([]*Summary{a, b})
	if env.Boundable() {
		t.Fatal("envelope over an unboundable member must be unboundable")
	}
}

// TestBuildPartitionsAndDeterminism: every non-nil summary lands in exactly
// one leaf across all shards, and two builds of the same input are
// structurally identical.
func TestBuildPartitionsAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sums := make([]*Summary, 500)
	for i := range sums {
		if i%17 == 0 {
			continue // holes: ungroupable candidates
		}
		sums[i] = randomSummary(rng)
	}
	for _, shards := range []int{1, 3, 7} {
		ix := Build(sums, shards)
		seen := make(map[int32]int)
		for si := 0; si < ix.NumShards(); si++ {
			ix.Traverse(si,
				func(*Summary) float64 { return 1 },
				func() float64 { return math.Inf(-1) },
				0,
				func(members []int32, _ float64) bool {
					for _, id := range members {
						seen[id]++
					}
					return true
				})
		}
		for i, s := range sums {
			want := 0
			if s != nil {
				want = 1
			}
			if seen[int32(i)] != want {
				t.Fatalf("shards=%d: id %d visited %d times, want %d", shards, i, seen[int32(i)], want)
			}
		}
		if got := len(seen); got != ix.Len() {
			t.Fatalf("shards=%d: %d distinct ids, index says %d", shards, got, ix.Len())
		}
		again := Build(sums, shards)
		if !reflect.DeepEqual(collectLeaves(ix), collectLeaves(again)) {
			t.Fatalf("shards=%d: two builds of the same input differ", shards)
		}
	}
}

func collectLeaves(ix *Index) [][]int32 {
	var out [][]int32
	ix.Walk(func(env *Summary, members []int32) {
		out = append(out, members)
	})
	return out
}

// TestWalkEnvelopesDominate: Walk must pair every node with exactly the
// members beneath it, and folding those members reproduces a summary the
// node's envelope dominates (same capped-extreme check as above).
func TestWalkEnvelopesDominate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sums := make([]*Summary, 300)
	for i := range sums {
		sums[i] = randomSummary(rng)
	}
	ix := Build(sums, 4)
	nodes := 0
	ix.Walk(func(env *Summary, members []int32) {
		nodes++
		if len(members) == 0 {
			t.Fatal("node with no members")
		}
		for _, id := range members {
			m := sums[id]
			for _, vmax := range []float64{1, 0.5, 0.2} {
				if eh, mh := cappedExtreme(env.High, env.HighPrefix, vmax, true), cappedExtreme(m.High, m.HighPrefix, vmax, true); eh < mh-1e-12 {
					t.Fatalf("node envelope high %g < member %d high %g (vmax=%g)", eh, id, mh, vmax)
				}
			}
		}
	})
	if nodes == 0 {
		t.Fatal("walk visited nothing")
	}
}

// TestTraverseStopsAtFloor: with a floor above every envelope bound the
// traversal must visit nothing; with −Inf it visits every leaf in
// descending bound order.
func TestTraverseStopsAtFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sums := make([]*Summary, 400)
	for i := range sums {
		sums[i] = randomSummary(rng)
	}
	ix := Build(sums, 2)
	bound := func(s *Summary) float64 {
		if !s.Boundable() {
			return math.Inf(1)
		}
		return s.High[0]
	}
	visited := 0
	for si := 0; si < ix.NumShards(); si++ {
		ix.Traverse(si, bound, func() float64 { return math.Inf(1) }, 0,
			func([]int32, float64) bool { visited++; return true })
	}
	if visited != 0 {
		t.Fatalf("floor above every bound: visited %d leaves, want 0", visited)
	}
	for si := 0; si < ix.NumShards(); si++ {
		last := math.Inf(1)
		ix.Traverse(si, bound, func() float64 { return math.Inf(-1) }, 0,
			func(_ []int32, ub float64) bool {
				if ub > last+1e-12 {
					t.Fatalf("leaf bounds not descending: %g after %g", ub, last)
				}
				last = ub
				visited++
				return true
			})
	}
	if visited == 0 {
		t.Fatal("no floor: traversal visited nothing")
	}
}
