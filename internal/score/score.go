// Package score implements ShapeSearch's perceptually-aware scoring
// methodology (Section 5.2 of the paper): the tan⁻¹-based pattern scores of
// Table 5, the operator combinators of Table 6, quantifier scoring, the
// SegmentTree score bounds of Table 7, sketch similarity, and the
// user-defined pattern (UDP) registry.
//
// All scores live in [−1, 1]: 1 is a perfect match, −1 the worst. Scores are
// computed from the slope of the least-squares line fitted over a visual
// segment, which makes them robust to local fluctuations — the "blurry"
// matching at the heart of the system.
package score

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"shapesearch/internal/shape"
)

// WorstScore is the score of a failed match (for example, an unsatisfied
// LOCATION constraint).
const WorstScore = -1.0

// BestScore is the score of a perfect match.
const BestScore = 1.0

// Up scores an increasing pattern: 2·tan⁻¹(slope)/π, rising from −1 at
// slope −∞ to +1 at slope +∞ with diminishing returns (Table 5).
func Up(slope float64) float64 {
	return 2 * math.Atan(slope) / math.Pi
}

// Down scores a decreasing pattern: the negation of Up.
func Down(slope float64) float64 {
	return -Up(slope)
}

// Flat scores a stable pattern: 1 − |4·tan⁻¹(slope)/π|, which is +1 at slope
// 0 and −1 at slope ±∞.
func Flat(slope float64) float64 {
	return 1 - math.Abs(4*math.Atan(slope)/math.Pi)
}

// Theta scores a θ=x pattern for a target angle in degrees: +1 when the
// fitted angle equals the target, decreasing linearly in angular deviation
// to −1 at the farthest achievable angle (±90°). The paper's printed formula
// is typographically garbled; this implements its stated semantics.
func Theta(slope, targetDeg float64) float64 {
	target := targetDeg * math.Pi / 180
	angle := math.Atan(slope)
	dev := math.Abs(angle - target)
	maxDev := math.Pi/2 + math.Abs(target)
	if maxDev == 0 {
		return BestScore
	}
	return 1 - 2*dev/maxDev
}

// SharpnessFactor controls how much steeper a slope must be to earn the same
// score under the ">>" (sharper) modifier, and how much gentler under ">"
// (gradual). See Modified.
const SharpnessFactor = 4.0

// Modified applies a non-positional MODIFIER to a directional pattern score:
// m=>> demands sharper movement (the slope is attenuated before scoring, so
// only steep trends score high) and m=> rewards gradual movement (the slope
// is amplified, so gentle trends saturate early). Slope sign is handled by
// the underlying pattern.
func Modified(kind shape.ModifierKind, base func(float64) float64, slope float64) float64 {
	switch kind {
	case shape.ModMuchMore, shape.ModMuchLess:
		return base(slope / SharpnessFactor)
	case shape.ModMore, shape.ModLess:
		return base(slope * SharpnessFactor)
	default:
		return base(slope)
	}
}

// ForKind scores a simple pattern kind against a fitted slope. target is the
// angle for PatSlope and ignored otherwise. PatPosition, PatUDP and
// PatNested need context beyond a slope and are handled by the evaluator.
func ForKind(kind shape.PatternKind, slope, target float64) float64 {
	switch kind {
	case shape.PatUp:
		return Up(slope)
	case shape.PatDown:
		return Down(slope)
	case shape.PatFlat:
		return Flat(slope)
	case shape.PatSlope:
		return Theta(slope, target)
	case shape.PatAny, shape.PatNone:
		return BestScore
	case shape.PatEmpty:
		return WorstScore
	default:
		return WorstScore
	}
}

// ForKindAngle is ForKind for an unmodified pattern given the precomputed
// fitted angle atan(slope). Every Table 5 score is a function of that angle;
// sharing it across the patterns evaluated over one range (the executor's
// per-candidate fit memo) saves the dominant atan without changing a bit:
// each case reproduces the exact operation sequence of its slope-based
// counterpart after the atan.
func ForKindAngle(kind shape.PatternKind, angle, target float64) float64 {
	switch kind {
	case shape.PatUp:
		return 2 * angle / math.Pi
	case shape.PatDown:
		return -(2 * angle / math.Pi)
	case shape.PatFlat:
		return 1 - math.Abs(4*angle/math.Pi)
	case shape.PatSlope:
		t := target * math.Pi / 180
		dev := math.Abs(angle - t)
		maxDev := math.Pi/2 + math.Abs(t)
		if maxDev == 0 {
			return BestScore
		}
		return 1 - 2*dev/maxDev
	case shape.PatAny, shape.PatNone:
		return BestScore
	case shape.PatEmpty:
		return WorstScore
	default:
		return WorstScore
	}
}

// Concat combines a sequence of sub-scores: the arithmetic mean (Table 6).
func Concat(scores ...float64) float64 {
	if len(scores) == 0 {
		return WorstScore
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}

// And combines simultaneous sub-scores: the minimum (Table 6).
func And(scores ...float64) float64 {
	if len(scores) == 0 {
		return WorstScore
	}
	min := scores[0]
	for _, s := range scores[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// Or combines alternative sub-scores: the maximum (Table 6).
func Or(scores ...float64) float64 {
	if len(scores) == 0 {
		return WorstScore
	}
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	return max
}

// Not negates a sub-score (Table 6).
func Not(s float64) float64 { return -s }

// Clamp bounds a score to [−1, 1].
func Clamp(s float64) float64 {
	if s > BestScore {
		return BestScore
	}
	if s < WorstScore {
		return WorstScore
	}
	return s
}

// PositionScore scores a POSITION ($) reference: how the current segment's
// slope compares with the referenced segment's slope under the given
// modifier (Section 3.1). Differences are measured in normalized angle so
// the score inherits the perceptual diminishing-returns behaviour.
func PositionScore(mod shape.Modifier, slope, refSlope float64) float64 {
	d := (math.Atan(slope) - math.Atan(refSlope)) * 2 / math.Pi
	switch mod.Kind {
	case shape.ModMore:
		return Clamp(2 * d)
	case shape.ModLess:
		return Clamp(-2 * d)
	case shape.ModMuchMore:
		return Clamp(4 * (d - 0.25))
	case shape.ModMuchLess:
		return Clamp(4 * (-d - 0.25))
	case shape.ModEqual:
		return Clamp(1 - 4*math.Abs(d))
	case shape.ModMoreFactor:
		dd := (math.Atan(slope) - math.Atan(mod.Factor*refSlope)) * 2 / math.Pi
		return Clamp(4 * dd)
	case shape.ModLessFactor:
		dd := (math.Atan(mod.Factor*refSlope) - math.Atan(slope)) * 2 / math.Pi
		return Clamp(4 * dd)
	default:
		// An unmodified $ref means "same pattern as the referenced segment":
		// score similarity of slopes.
		return Clamp(1 - 4*math.Abs(d))
	}
}

// DefaultQuantifierThreshold is the positive-score threshold above which a
// sub-segment counts as an occurrence of a pattern (Section 5.2 "using zero
// as a threshold, which can be overridden by users").
const DefaultQuantifierThreshold = 0.0

// Quantifier scores a quantified pattern given the scores of its candidate
// occurrences within the visual segment. Occurrences scoring above threshold
// count toward the bounds; if the count violates the quantifier the score is
// −1 (Section 5.2). Otherwise the score averages the top max(min-bound, 1)
// occurrence scores — the minimum number of sub-segments that satisfy the
// constraint. A satisfied zero-occurrence constraint (pure "at most") scores
// 0, a neutral match.
func Quantifier(mod shape.Modifier, occurrenceScores []float64, threshold float64) float64 {
	if mod.Kind != shape.ModQuantifier {
		return WorstScore
	}
	positive := make([]float64, 0, len(occurrenceScores))
	for _, s := range occurrenceScores {
		if s > threshold {
			positive = append(positive, s)
		}
	}
	if !mod.Satisfies(len(positive)) {
		return WorstScore
	}
	if len(positive) == 0 {
		return 0
	}
	need := 1
	if mod.HasMin && mod.Min > 1 {
		need = mod.Min
	}
	if need > len(positive) {
		need = len(positive)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(positive)))
	return Concat(positive[:need]...)
}

// PositiveRuns returns the index ranges [start, end) of maximal runs of
// consecutive entries with score > threshold. The evaluator uses runs of
// positively-scoring bins as the occurrences of a quantified pattern: a
// trendline "rises twice" when it has two maximal increasing stretches.
func PositiveRuns(scores []float64, threshold float64) [][2]int {
	return PositiveRunsInto(nil, scores, threshold)
}

// PositiveRunsInto is PositiveRuns appending into a reusable buffer
// (typically sliced to [:0] by the caller); the quantifier hot path uses it
// to avoid a per-range allocation.
func PositiveRunsInto(runs [][2]int, scores []float64, threshold float64) [][2]int {
	start := -1
	for i, s := range scores {
		if s > threshold {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			runs = append(runs, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, len(scores)})
	}
	return runs
}

// Bounds implements Table 7 in its set form: the tightest interval
// guaranteed to contain the score of a simple-pattern ShapeSegment whose
// fitted slope lies among (or between) the given slopes. It reduces to
// BoundsInterval over the slope extremes: for up/down the score lies
// between the min and max slope score; for flat and θ=x the upper bound is
// only valid when all slopes sit on one side of the target, otherwise it is
// 1 (the maximum possible value).
func Bounds(kind shape.PatternKind, targetDeg float64, slopes []float64) (lo, hi float64) {
	if len(slopes) == 0 {
		return WorstScore, BestScore
	}
	sLo, sHi := slopes[0], slopes[0]
	for _, s := range slopes[1:] {
		if s < sLo {
			sLo = s
		}
		if s > sHi {
			sHi = s
		}
	}
	return BoundsInterval(kind, shape.ModNone, targetDeg, sLo, sHi)
}

// BoundsInterval bounds the score of a simple-pattern ShapeSegment whose
// fitted slope is only known to lie in [sLo, sHi] (the interval form of the
// Table 7 bounds, with MODIFIER support). Sharp/gradual modifiers rescale
// the slope before scoring (see Modified) and the rescaling is monotone, so
// the interval maps through it exactly. For flat and θ=x the score is not
// monotone in the slope: when the pattern's pivot slope falls inside the
// interval the upper bound is 1, otherwise both bounds come from the
// interval's endpoints. Quantified patterns and kinds whose score is not
// slope-determined are NOT handled here — callers must stay conservative
// for those.
func BoundsInterval(kind shape.PatternKind, mod shape.ModifierKind, targetDeg, sLo, sHi float64) (lo, hi float64) {
	if sLo > sHi {
		sLo, sHi = sHi, sLo
	}
	// Map the slope interval through the modifier's monotone rescaling so
	// the endpoint evaluation below sees the effective slopes.
	switch mod {
	case shape.ModMuchMore, shape.ModMuchLess:
		sLo, sHi = sLo/SharpnessFactor, sHi/SharpnessFactor
	case shape.ModMore, shape.ModLess:
		sLo, sHi = sLo*SharpnessFactor, sHi*SharpnessFactor
	case shape.ModNone:
	default:
		// Positional/quantifier modifiers reshape the score beyond a slope
		// rescaling; stay conservative.
		return WorstScore, BestScore
	}
	a := ForKind(kind, sLo, targetDeg)
	b := ForKind(kind, sHi, targetDeg)
	lo, hi = math.Min(a, b), math.Max(a, b)
	switch kind {
	case shape.PatFlat:
		if sLo <= 0 && 0 <= sHi {
			hi = BestScore
		}
	case shape.PatSlope:
		if pivot := math.Tan(targetDeg * math.Pi / 180); sLo <= pivot && pivot <= sHi {
			hi = BestScore
		}
	}
	return lo, hi
}

// SketchConfig controls precise sketch matching.
type SketchConfig struct {
	// Tau is the z-normalized RMS distance mapped to score −1. Distances
	// are linearly rescaled so 0 → +1 and ≥Tau → −1.
	Tau float64
}

// DefaultSketchConfig matches the system defaults.
func DefaultSketchConfig() SketchConfig { return SketchConfig{Tau: 2.0} }

// SketchL2 scores how precisely a visual segment matches a sketched
// trendline using the L2 norm, normalized into [−1, 1] (Table 5, "v"). Both
// series are resampled to a common length and z-normalized before
// comparison.
func (c SketchConfig) SketchL2(queryY, targetY []float64) float64 {
	if len(queryY) == 0 || len(targetY) == 0 {
		return WorstScore
	}
	n := len(queryY)
	if len(targetY) > n {
		n = len(targetY)
	}
	q := Resample(queryY, n)
	t := Resample(targetY, n)
	znorm(q)
	znorm(t)
	var sum float64
	for i := range q {
		d := q[i] - t[i]
		sum += d * d
	}
	rms := math.Sqrt(sum / float64(n))
	tau := c.Tau
	if tau <= 0 {
		tau = 2.0
	}
	return Clamp(1 - 2*rms/tau)
}

// Resample linearly interpolates ys onto n evenly spaced sample positions.
func Resample(ys []float64, n int) []float64 {
	if n <= 0 || len(ys) == 0 {
		return nil
	}
	out := make([]float64, n)
	if len(ys) == 1 {
		for i := range out {
			out[i] = ys[0]
		}
		return out
	}
	if n == 1 {
		out[0] = ys[0]
		return out
	}
	scale := float64(len(ys)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		j := int(pos)
		if j >= len(ys)-1 {
			out[i] = ys[len(ys)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = ys[j]*(1-frac) + ys[j+1]*frac
	}
	return out
}

func znorm(ys []float64) {
	var sum float64
	for _, y := range ys {
		sum += y
	}
	mean := sum / float64(len(ys))
	var v float64
	for _, y := range ys {
		d := y - mean
		v += d * d
	}
	std := math.Sqrt(v / float64(len(ys)))
	if std == 0 {
		for i := range ys {
			ys[i] -= mean
		}
		return
	}
	for i := range ys {
		ys[i] = (ys[i] - mean) / std
	}
}

// UDPFunc is a user-defined pattern scorer: it receives the x and y values
// of a visual segment and must return a score in [−1, 1]. ShapeSearch treats
// UDPs as black boxes and performs no optimization across them.
type UDPFunc func(xs, ys []float64) float64

// Registry holds named user-defined patterns. The zero value is ready to
// use; Registry is safe for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]UDPFunc
}

// NewRegistry returns an empty UDP registry.
func NewRegistry() *Registry { return &Registry{} }

// Register installs (or replaces) a named pattern. It returns an error for
// empty names or nil functions.
func (r *Registry) Register(name string, fn UDPFunc) error {
	if name == "" {
		return fmt.Errorf("score: UDP name must not be empty")
	}
	if fn == nil {
		return fmt.Errorf("score: UDP %q must not be nil", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fns == nil {
		r.fns = make(map[string]UDPFunc)
	}
	r.fns[name] = fn
	return nil
}

// Lookup retrieves a named pattern.
func (r *Registry) Lookup(name string) (UDPFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	return fn, ok
}

// Names lists registered pattern names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fns))
	//lint:ignore floatdeterminism key collection is order-free; the result is sorted before returning
	for n := range r.fns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
