package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shapesearch/internal/shape"
)

func TestUpScoreProperties(t *testing.T) {
	if Up(0) != 0 {
		t.Errorf("Up(0) = %v, want 0", Up(0))
	}
	if s := Up(1); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Up(1) = %v, want 0.5 (45 degrees)", s)
	}
	if s := Up(math.Inf(1)); math.Abs(s-1) > 1e-12 {
		t.Errorf("Up(inf) = %v, want 1", s)
	}
	if s := Up(-1); math.Abs(s+0.5) > 1e-12 {
		t.Errorf("Up(-1) = %v, want -0.5", s)
	}
}

// TestUpMonotoneAndBounded: the paper's perceptual requirements — up score
// increases with slope, is bounded in [−1,1], and is antisymmetric with down.
func TestUpMonotoneAndBounded(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		sa, sb := Up(a), Up(b)
		if sa < -1 || sa > 1 || sb < -1 || sb > 1 {
			return false
		}
		if a < b && sa > sb {
			return false
		}
		return Down(a) == -sa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDiminishingReturns: the same slope increase moves the score less the
// steeper the trend already is (law of diminishing returns, Section 5.2,
// modeled by tan⁻¹). Equivalently, an angle change 10°→30° requires a much
// smaller slope change than 60°→80° for the same score gain.
func TestDiminishingReturns(t *testing.T) {
	low := Up(0.6) - Up(0.2)  // gentle trends: score moves quickly
	high := Up(5.0) - Up(4.6) // steep trends: same slope delta, tiny gain
	if low <= high {
		t.Fatalf("expected diminishing returns: Δ at low slope %v should exceed Δ at high slope %v", low, high)
	}
	tan := func(deg float64) float64 { return math.Tan(deg * math.Pi / 180) }
	slopeLow := tan(30) - tan(10)
	slopeHigh := tan(80) - tan(60)
	if slopeLow >= slopeHigh {
		t.Fatal("equal score gains should cost more slope at steep angles")
	}
}

func TestFlatScore(t *testing.T) {
	if Flat(0) != 1 {
		t.Errorf("Flat(0) = %v, want 1", Flat(0))
	}
	if s := Flat(math.Inf(1)); math.Abs(s+1) > 1e-12 {
		t.Errorf("Flat(inf) = %v, want -1", s)
	}
	if s := Flat(1); math.Abs(s-0) > 1e-12 { // 45° is halfway: 1-4*45/180 = 0
		t.Errorf("Flat(1) = %v, want 0", s)
	}
	if Flat(2) != Flat(-2) {
		t.Error("Flat should be symmetric in slope sign")
	}
}

func TestThetaScore(t *testing.T) {
	tan45 := math.Tan(45 * math.Pi / 180)
	if s := Theta(tan45, 45); math.Abs(s-1) > 1e-12 {
		t.Errorf("Theta at exact angle = %v, want 1", s)
	}
	// Farthest angle from +45 is −90: score −1.
	if s := Theta(math.Inf(-1), 45); math.Abs(s+1) > 1e-9 {
		t.Errorf("Theta at farthest = %v, want -1", s)
	}
	// Deviation decreases score monotonically.
	if Theta(math.Tan(50*math.Pi/180), 45) >= 1 {
		t.Error("off-target theta should score below 1")
	}
	if Theta(math.Tan(40*math.Pi/180), 45) <= Theta(math.Tan(10*math.Pi/180), 45) {
		t.Error("closer angle should score higher")
	}
}

func TestForKind(t *testing.T) {
	if ForKind(shape.PatAny, 0.3, 0) != 1 {
		t.Error("* should score 1")
	}
	if ForKind(shape.PatEmpty, 0.3, 0) != -1 {
		t.Error("empty should score -1")
	}
	if ForKind(shape.PatUp, 1, 0) != Up(1) {
		t.Error("ForKind up mismatch")
	}
	if ForKind(shape.PatSlope, 1, 45) != Theta(1, 45) {
		t.Error("ForKind theta mismatch")
	}
}

func TestOperatorCombinators(t *testing.T) {
	if s := Concat(1, 0, -1); s != 0 {
		t.Errorf("Concat = %v, want 0", s)
	}
	if s := And(0.5, -0.2, 0.9); s != -0.2 {
		t.Errorf("And = %v, want -0.2", s)
	}
	if s := Or(0.5, -0.2, 0.9); s != 0.9 {
		t.Errorf("Or = %v, want 0.9", s)
	}
	if Not(0.7) != -0.7 {
		t.Error("Not should negate")
	}
	if Concat() != WorstScore || And() != WorstScore || Or() != WorstScore {
		t.Error("empty combinators should be worst score")
	}
}

// TestBoundednessProperty is the paper's Property 5.1: operator outputs are
// bounded by the min and max of their inputs (in absolute value for NOT).
func TestBoundednessProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, r := range raw {
			scores[i] = Clamp(math.Mod(r, 2))
			if math.IsNaN(scores[i]) {
				scores[i] = 0
			}
		}
		lo, hi := scores[0], scores[0]
		for _, s := range scores {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		eps := 1e-9
		for _, v := range []float64{Concat(scores...), And(scores...), Or(scores...)} {
			if v < lo-eps || v > hi+eps {
				return false
			}
		}
		n := Not(scores[0])
		return math.Abs(n) <= math.Max(math.Abs(lo), math.Abs(hi))+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionScore(t *testing.T) {
	less := shape.Modifier{Kind: shape.ModLess}
	if s := PositionScore(less, 0.2, 1.0); s <= 0 {
		t.Errorf("slower-than-ref should be positive, got %v", s)
	}
	if s := PositionScore(less, 2.0, 1.0); s >= 0 {
		t.Errorf("faster-than-ref under m=< should be negative, got %v", s)
	}
	eq := shape.Modifier{Kind: shape.ModEqual}
	if s := PositionScore(eq, 1.0, 1.0); s != 1 {
		t.Errorf("equal slopes under m== should be 1, got %v", s)
	}
	more := shape.Modifier{Kind: shape.ModMore}
	if s := PositionScore(more, 2.0, 1.0); s <= 0 {
		t.Errorf("steeper under m=> should be positive, got %v", s)
	}
	// m=<1/2: slope must be at most half the reference.
	half := shape.Modifier{Kind: shape.ModLessFactor, Factor: 0.5}
	if s := PositionScore(half, 0.3, 1.0); s <= 0 {
		t.Errorf("0.3 <= 0.5*1.0 should be positive, got %v", s)
	}
	if s := PositionScore(half, 0.8, 1.0); s >= 0 {
		t.Errorf("0.8 > 0.5*1.0 should be negative, got %v", s)
	}
	atLeast2x := shape.Modifier{Kind: shape.ModMoreFactor, Factor: 2}
	if s := PositionScore(atLeast2x, 2.5, 1.0); s <= 0 {
		t.Errorf("2.5 >= 2*1.0 should be positive, got %v", s)
	}
}

func TestModified(t *testing.T) {
	// Sharper up demands steeper slopes: a 45° slope scores lower under >>.
	plain := Up(1)
	sharp := Modified(shape.ModMuchMore, Up, 1)
	if sharp >= plain {
		t.Errorf("sharp(1)=%v should be below plain(1)=%v", sharp, plain)
	}
	// Gradual up saturates early: a gentle slope scores higher under >.
	gentle := Modified(shape.ModMore, Up, 0.2)
	if gentle <= Up(0.2) {
		t.Errorf("gradual(0.2)=%v should exceed plain(0.2)=%v", gentle, Up(0.2))
	}
	if Modified(shape.ModNone, Up, 1) != plain {
		t.Error("no modifier should be identity")
	}
}

func TestQuantifier(t *testing.T) {
	atLeast2 := shape.Modifier{Kind: shape.ModQuantifier, Min: 2, HasMin: true}
	// Two positive occurrences satisfy {2,}.
	s := Quantifier(atLeast2, []float64{0.8, 0.6, -0.5}, 0)
	if math.Abs(s-0.7) > 1e-12 {
		t.Errorf("score = %v, want 0.7 (mean of top 2)", s)
	}
	// One positive occurrence fails {2,}.
	if s := Quantifier(atLeast2, []float64{0.8, -0.6}, 0); s != WorstScore {
		t.Errorf("unsatisfied quantifier = %v, want -1", s)
	}
	atMost1 := shape.Modifier{Kind: shape.ModQuantifier, Max: 1, HasMax: true}
	if s := Quantifier(atMost1, []float64{0.8, 0.7}, 0); s != WorstScore {
		t.Errorf("exceeded at-most = %v, want -1", s)
	}
	if s := Quantifier(atMost1, []float64{-0.8, -0.7}, 0); s != 0 {
		t.Errorf("satisfied zero-occurrence = %v, want 0", s)
	}
	exactly2 := shape.Modifier{Kind: shape.ModQuantifier, Min: 2, Max: 2, HasMin: true, HasMax: true}
	if s := Quantifier(exactly2, []float64{0.9, 0.5, 0.4}, 0); s != WorstScore {
		t.Errorf("3 occurrences under {2} = %v, want -1", s)
	}
	if s := Quantifier(shape.Modifier{Kind: shape.ModNone}, []float64{1}, 0); s != WorstScore {
		t.Error("non-quantifier modifier should be rejected")
	}
}

func TestPositiveRuns(t *testing.T) {
	runs := PositiveRuns([]float64{0.5, 0.2, -0.1, 0.3, 0.4, -0.2, -0.3, 0.1}, 0)
	want := [][2]int{{0, 2}, {3, 5}, {7, 8}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	if got := PositiveRuns(nil, 0); got != nil {
		t.Errorf("empty input should give no runs, got %v", got)
	}
	if got := PositiveRuns([]float64{-1, -1}, 0); got != nil {
		t.Errorf("all-negative input should give no runs, got %v", got)
	}
}

func TestBoundsUpDown(t *testing.T) {
	slopes := []float64{-1, 0.5, 2}
	lo, hi := Bounds(shape.PatUp, 0, slopes)
	if lo != Up(-1) || hi != Up(2) {
		t.Errorf("up bounds = [%v, %v], want [%v, %v]", lo, hi, Up(-1), Up(2))
	}
	lo, hi = Bounds(shape.PatDown, 0, slopes)
	if lo != Down(2) || hi != Down(-1) {
		t.Errorf("down bounds = [%v, %v]", lo, hi)
	}
}

func TestBoundsFlatMixedSigns(t *testing.T) {
	// Slopes straddle 0: a flat fit could emerge from cancellation, so the
	// upper bound must be 1 (Table 7).
	lo, hi := Bounds(shape.PatFlat, 0, []float64{-2, 3})
	if hi != 1 {
		t.Errorf("flat hi with mixed slopes = %v, want 1", hi)
	}
	if lo != Flat(3) {
		t.Errorf("flat lo = %v, want %v", lo, Flat(3))
	}
	// All positive slopes: bound is the max node score.
	lo, hi = Bounds(shape.PatFlat, 0, []float64{0.5, 2})
	if hi != Flat(0.5) {
		t.Errorf("flat hi with one-sided slopes = %v, want %v", hi, Flat(0.5))
	}
	_ = lo
}

func TestBoundsTheta(t *testing.T) {
	target := 45.0
	pivot := math.Tan(target * math.Pi / 180)
	// All below the target slope: bound from node scores.
	_, hi := Bounds(shape.PatSlope, target, []float64{0.1, 0.5})
	if hi == 1 {
		t.Error("one-sided theta bound should not be forced to 1")
	}
	// Straddling the target: upper bound 1.
	_, hi = Bounds(shape.PatSlope, target, []float64{pivot - 0.5, pivot + 0.5})
	if hi != 1 {
		t.Errorf("straddling theta hi = %v, want 1", hi)
	}
}

// TestBoundsContainMergedScore: merging two adjacent segments yields a slope
// between the child slopes (for evenly spaced x), so the merged score must
// lie within the Table 7 bounds. This is the invariant the pruning stage
// relies on.
func TestBoundsContainMergedScore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s1 := rng.NormFloat64() * 3
		s2 := rng.NormFloat64() * 3
		merged := (s1 + s2) / 2 // slope of the combined fit over equal halves
		for _, kind := range []shape.PatternKind{shape.PatUp, shape.PatDown, shape.PatFlat} {
			lo, hi := Bounds(kind, 0, []float64{s1, s2})
			got := ForKind(kind, merged, 0)
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Fatalf("kind %v: merged score %v outside [%v, %v] (slopes %v, %v)",
					kind, got, lo, hi, s1, s2)
			}
		}
	}
}

func TestSketchL2(t *testing.T) {
	cfg := DefaultSketchConfig()
	a := []float64{0, 1, 2, 3, 4}
	if s := cfg.SketchL2(a, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("identical series = %v, want 1", s)
	}
	// Affine transform of the same shape scores 1 after z-normalization.
	b := []float64{10, 12, 14, 16, 18}
	if s := cfg.SketchL2(a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("affine series = %v, want 1", s)
	}
	// Opposite shape scores poorly.
	c := []float64{4, 3, 2, 1, 0}
	if s := cfg.SketchL2(a, c); s > -0.5 {
		t.Errorf("opposite series = %v, want strongly negative", s)
	}
	if s := cfg.SketchL2(nil, a); s != WorstScore {
		t.Error("empty query should be worst score")
	}
}

func TestSketchL2DifferentLengths(t *testing.T) {
	cfg := DefaultSketchConfig()
	short := []float64{0, 1, 2}
	long := []float64{0, 0.5, 1, 1.5, 2}
	if s := cfg.SketchL2(short, long); math.Abs(s-1) > 1e-9 {
		t.Errorf("same line at different sampling = %v, want 1", s)
	}
}

func TestResample(t *testing.T) {
	got := Resample([]float64{0, 2}, 3)
	want := []float64{0, 1, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Resample = %v, want %v", got, want)
		}
	}
	if got := Resample([]float64{7}, 4); len(got) != 4 || got[2] != 7 {
		t.Fatalf("Resample single = %v", got)
	}
	if Resample(nil, 3) != nil {
		t.Error("Resample(nil) should be nil")
	}
	if got := Resample([]float64{1, 2, 3}, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Resample to 1 = %v", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func(xs, ys []float64) float64 { return 0 }); err == nil {
		t.Error("empty name should error")
	}
	if err := r.Register("peak", nil); err == nil {
		t.Error("nil func should error")
	}
	if err := r.Register("peak", func(xs, ys []float64) float64 { return 0.5 }); err != nil {
		t.Fatal(err)
	}
	fn, ok := r.Lookup("peak")
	if !ok || fn(nil, nil) != 0.5 {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("missing UDP should not be found")
	}
	r.Register("valley", func(xs, ys []float64) float64 { return -0.5 })
	names := r.Names()
	if len(names) != 2 || names[0] != "peak" || names[1] != "valley" {
		t.Errorf("Names = %v", names)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5) != 1 || Clamp(-5) != -1 || Clamp(0.3) != 0.3 {
		t.Error("Clamp broken")
	}
}

// TestBoundsIntervalModifiers: sharp/gradual modifiers rescale the slope
// before scoring; the interval bound must map through that rescaling
// exactly, and unknown modifiers must stay conservative.
func TestBoundsIntervalModifiers(t *testing.T) {
	lo, hi := BoundsInterval(shape.PatUp, shape.ModMuchMore, 0, -1, 2)
	if want := Up(-1.0 / SharpnessFactor); lo != want {
		t.Errorf("sharp up lo = %v, want %v", lo, want)
	}
	if want := Up(2.0 / SharpnessFactor); hi != want {
		t.Errorf("sharp up hi = %v, want %v", hi, want)
	}
	lo, hi = BoundsInterval(shape.PatDown, shape.ModMore, 0, -1, 2)
	if want := Down(2.0 * SharpnessFactor); lo != want {
		t.Errorf("gradual down lo = %v, want %v", lo, want)
	}
	if want := Down(-1.0 * SharpnessFactor); hi != want {
		t.Errorf("gradual down hi = %v, want %v", hi, want)
	}
	// A sharp flat's pivot is unchanged by rescaling: straddling zero still
	// forces the upper bound to 1.
	if _, hi := BoundsInterval(shape.PatFlat, shape.ModMuchMore, 0, -0.1, 0.1); hi != 1 {
		t.Errorf("sharp flat straddling zero hi = %v, want 1", hi)
	}
	// Modifiers that are not slope rescalings stay at the trivial bounds.
	if lo, hi := BoundsInterval(shape.PatUp, shape.ModEqual, 0, -1, 2); lo != WorstScore || hi != BestScore {
		t.Errorf("non-rescaling modifier bounds = [%v, %v], want [-1, 1]", lo, hi)
	}
}

// TestBoundsIntervalMatchesSetForm: the legacy slope-set Bounds must agree
// with BoundsInterval over the set's extremes — they are the same Table 7
// statement.
func TestBoundsIntervalMatchesSetForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []shape.PatternKind{shape.PatUp, shape.PatDown, shape.PatFlat, shape.PatSlope}
	for trial := 0; trial < 200; trial++ {
		slopes := make([]float64, 2+rng.Intn(6))
		mn, mx := math.Inf(1), math.Inf(-1)
		for i := range slopes {
			slopes[i] = rng.NormFloat64() * 3
			mn = math.Min(mn, slopes[i])
			mx = math.Max(mx, slopes[i])
		}
		target := rng.NormFloat64() * 40
		for _, kind := range kinds {
			slo, shi := Bounds(kind, target, slopes)
			ilo, ihi := BoundsInterval(kind, shape.ModNone, target, mn, mx)
			if slo != ilo || shi != ihi {
				t.Fatalf("%v: set form [%v, %v] != interval form [%v, %v]", kind, slo, shi, ilo, ihi)
			}
		}
	}
}
