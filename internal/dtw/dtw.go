// Package dtw implements the value-based shape similarity baselines the
// paper compares against (Section 9): Dynamic Time Warping [36] with an
// optional Sakoe–Chiba band, and point-wise Euclidean distance. Both
// operate on z-normalized series, the standard preprocessing for scaling
// and translation invariance [16].
package dtw

import (
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/segstat"
)

// Distance computes the unconstrained DTW distance between two series.
// It is the square root of the minimal sum of squared point differences
// along a monotone alignment path.
func Distance(a, b []float64) float64 {
	return BandDistance(a, b, -1)
}

// BandDistance computes DTW constrained to a Sakoe–Chiba band of the given
// half-width (band < 0 means unconstrained). Series must be non-empty;
// an empty input yields +Inf.
func BandDistance(a, b []float64, band int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if band >= 0 {
		// The band must be wide enough to reach the opposite corner.
		if d := abs(n - m); band < d {
			band = d
		}
	}
	// Rolling two-row DP over the (n+1) x (m+1) cost matrix.
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = math.Inf(1)
		}
		lo, hi := 1, m
		if band >= 0 {
			lo = max(1, i-band)
			hi = min(m, i+band)
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			c := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

// Euclidean computes the point-wise L2 distance between two series,
// resampling the shorter to the longer's length first.
func Euclidean(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	ra := score.Resample(a, n)
	rb := score.Resample(b, n)
	var sum float64
	for i := range ra {
		d := ra[i] - rb[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Similarity maps a DTW or Euclidean distance over z-normalized series of
// the given length onto the ShapeSearch score range [−1, 1], so baseline
// rankings are directly comparable with algebra scores: 0 distance → 1,
// and distances at or beyond tau·sqrt(n) → −1.
func Similarity(dist float64, n int, tau float64) float64 {
	if n <= 0 || math.IsInf(dist, 1) {
		return score.WorstScore
	}
	if tau <= 0 {
		tau = 2.0
	}
	norm := dist / math.Sqrt(float64(n))
	return score.Clamp(1 - 2*norm/tau)
}

// ZNormalized returns a z-normalized copy of the series.
func ZNormalized(ys []float64) []float64 {
	out := append([]float64(nil), ys...)
	segstat.ZNormalize(out)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
