package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := Distance(a, a); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestDistanceShifted(t *testing.T) {
	// DTW aligns phase-shifted copies of the same shape much more closely
	// than Euclidean does — the property that motivates it.
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = math.Sin(float64(i) / 5)
		b[i] = math.Sin(float64(i)/5 + 0.8)
	}
	if dtw, euc := Distance(a, b), Euclidean(a, b); dtw >= euc {
		t.Fatalf("DTW %v should beat Euclidean %v on phase shift", dtw, euc)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 2+r.Intn(30), 2+r.Intn(30)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBandDistanceConverges: a sufficiently wide band equals unconstrained
// DTW, and band distances are monotonically non-increasing in band width.
func TestBandDistanceConverges(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	full := Distance(a, b)
	prev := math.Inf(1)
	for _, band := range []int{0, 2, 5, 10, 40} {
		d := BandDistance(a, b, band)
		if d > prev+1e-9 {
			t.Fatalf("band %d distance %v exceeds narrower band %v", band, d, prev)
		}
		prev = d
	}
	if math.Abs(prev-full) > 1e-9 {
		t.Fatalf("wide band %v != unconstrained %v", prev, full)
	}
	if full > BandDistance(a, b, 0)+1e-9 {
		t.Fatal("unconstrained should lower-bound banded")
	}
}

func TestDistanceEmpty(t *testing.T) {
	if !math.IsInf(Distance(nil, []float64{1}), 1) {
		t.Fatal("empty input should be +Inf")
	}
	if !math.IsInf(Euclidean(nil, nil), 1) {
		t.Fatal("empty euclidean should be +Inf")
	}
}

func TestEuclideanResamples(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{0, 0.5, 1, 1.5, 2}
	if d := Euclidean(a, b); d > 1e-9 {
		t.Fatalf("same line at different sampling = %v, want ~0", d)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity(0, 100, 2); s != 1 {
		t.Fatalf("zero distance similarity = %v, want 1", s)
	}
	if s := Similarity(math.Inf(1), 100, 2); s != -1 {
		t.Fatalf("inf distance similarity = %v, want -1", s)
	}
	if s := Similarity(5, 0, 2); s != -1 {
		t.Fatal("n=0 should be worst")
	}
	// Longer series tolerate proportionally more absolute distance.
	if Similarity(3, 10, 2) >= Similarity(3, 1000, 2) {
		t.Fatal("similarity should normalize by length")
	}
}

func TestZNormalized(t *testing.T) {
	orig := []float64{2, 4, 6}
	z := ZNormalized(orig)
	if orig[0] != 2 {
		t.Fatal("input must not be mutated")
	}
	var mean float64
	for _, v := range z {
		mean += v
	}
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("mean = %v, want 0", mean)
	}
}
