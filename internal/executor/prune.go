package executor

import (
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// The collective pruning of Section 6.3 lives in the unified Plan pipeline
// (plan.go) as two stages (the paper's stage-1 coarse sampling was measured
// redundant under the bound-first scan and deleted — the first K exactly
// scored candidates are the highest-bound ones, which seed the floor better
// than a coarse sample did and for free):
//
//   - The bounding stage runs inside every pipeline worker: soundUpperBound
//     computes a provable upper bound on the candidate's query score, the
//     scoring pass visits candidates in descending-bound order, and a
//     candidate is pruned when its bound falls below the live shared
//     threshold (the exact floor of the scores so far). Pruned candidates
//     are never discarded — the worker records them with their bounds in
//     the result slots.
//   - Deferred exact verification (Plan.run) re-scores, after the main
//     pass, every pruned candidate whose recorded bound reaches the final
//     top-k floor. A sound bound plus verification makes pruning lossless:
//     a candidate missing from the final top-k either scored exactly below
//     the floor, or carried a bound (hence an exact score) provably below
//     it.
//
// This file keeps the bound machinery itself. Unlike the earlier Table 7
// mid-tree-level heuristic (whose gap a fixed 0.05 safety margin papered
// over — and failed to: see TestPruningIsLossless's pinned luminosity
// case), the bound here makes no whole-node assumption, so unit ranges that
// split SegmentTree nodes are covered by construction:
//
// For any contiguous point range, the least-squares slope is a convex
// combination of the adjacent-pair slopes inside it (telescoping the fit:
// slope = Σ_p T_p·Δy_p / Sxx with T_p = Σ_{q>p} (x_q − x̄) ≥ 0 and
// Σ_p T_p·Δx_p = Sxx). A range of at least m points additionally caps every
// pair's convex weight at maxSlopeWeight(m) — one noisy pair cannot
// dominate a wide fit — so the fitted slope of every range a solver may
// assign lies inside the capped-extreme interval of soundSlopeInterval.
// unitBounds maps that slope interval through the pattern scores (Table 7
// in interval form, score.BoundsInterval) and the operator composition of
// Property 5.1; constructs whose score is not slope-determined stay at the
// trivial [−1, 1].

// boundEps absorbs floating-point noise when comparing a bound against an
// exactly-scored floor: a candidate is only dismissed when its bound is
// below the floor by more than this, and verification re-scores candidates
// within it. This is float hygiene, not a tuning margin — the bound itself
// is sound.
const boundEps = 1e-9

// maxSlopeWeight bounds the convex weight any single adjacent-pair slope
// can carry in the least-squares slope of a contiguous range of at least m
// points, for a grid whose adjacent-gap ratio (max gap / min gap) is ratio.
//
// Uniform grid (ratio ≈ 1): the weight of pair p is T_p·Δx/Sxx with
// T_p = Σ_{q>p}(x_q − x̄); its maximum over p has the closed form
// ⌊m²/4⌋·d²/2 / (m(m²−1)d²/12) = 6⌊m²/4⌋/(m(m²−1)) — e.g. exactly 1/2 for
// m = 3 (the middle of a 3-point fit is shared by both pairs).
//
// Irregular grid: with dmin ≤ every gap ≤ dmax, T_p ≤ dmax·u(u+1)/2 where
// u ≥ m − (m−1)/(2·ratio) counts points above the mean (the mean sits at
// least (m−1)·dmin/2 from the left edge), and Sxx ≥ dmin²·m(m²−1)/12 (the
// pairwise-spread identity Sxx = ΣΣ(x_q−x_p)²/(2m) with every |x_q−x_p| ≥
// |q−p|·dmin). Both are conservative; the cap only ever errs upward, which
// loosens the bound but never unsounds it.
//
// Monotonicity invariant (the corpus index depends on it): the cap is
// nonincreasing in m at fixed ratio and nondecreasing in ratio at fixed m,
// so an envelope evaluated at its bucket's minimum width floor and maximum
// grid ratio receives a cap ≥ every member's and its slope interval
// contains theirs (see internal/shapeindex and envelopeUpperBound). This
// is why u uses the smooth (m−1)/(2·ratio) instead of the exact
// ⌈(m−1)/(2·ratio)⌉: the ceiled form is marginally tighter but not
// monotone in m (e.g. ratio 1.05: m=8 → 0.263, m=9 → 0.276), while the
// smooth form is provably monotone — 2α·m ≤ 3(α(m−1)+1) for the relevant
// α = 1 − 1/(2·ratio) ∈ (½, 1) — and still a sound upper bound (a larger
// u only loosens).
func maxSlopeWeight(m int, ratio float64) float64 {
	if m < 3 {
		return 1
	}
	fm := float64(m)
	var v float64
	if ratio <= 1+1e-9 {
		// The 1e-6 headroom covers sub-1e-9 gap wobble from float noise in
		// the normalized grid.
		v = 6 * math.Floor(fm*fm/4) / (fm * (fm*fm - 1)) * (1 + 1e-6)
	} else if math.IsInf(ratio, 1) || math.IsNaN(ratio) {
		return 1
	} else {
		u := fm - (fm-1)/(2*ratio)
		v = 6 * ratio * ratio * u * (u + 1) / (fm * (fm*fm - 1))
	}
	if !(v < 1) {
		return 1
	}
	return v
}

// soundSlopeInterval returns an interval provably containing the fitted
// slope of every valid contiguous range of at least m points: convex
// combinations of the chart's adjacent-pair slopes with per-pair weight at
// most maxSlopeWeight(m) are maximized (minimized) by stacking the cap on
// the largest (smallest) slopes.
func soundSlopeInterval(ps *pruneStats, m int) (sLo, sHi float64) {
	vmax := maxSlopeWeight(m, ps.ratio)
	return cappedExtreme(ps, vmax, false), cappedExtreme(ps, vmax, true)
}

// cappedExtreme stacks weight vmax on the largest (hi) or smallest (!hi)
// adjacent slopes until the unit budget runs out; the remainder lands on
// the next slope in line. When the budget outruns the stored extremes
// (fewer pairs than the cap needs, or a width floor beyond the memo's
// horizon), the leftover parks on the last stored extreme — an outward
// error that loosens the bound but keeps it sound.
func cappedExtreme(ps *pruneStats, vmax float64, hi bool) float64 {
	sel, prefix := ps.low, ps.lowPrefix
	if hi {
		sel, prefix = ps.high, ps.highPrefix
	}
	full := int(1 / vmax)
	if max := len(sel) - 1; full > max {
		full = max
	}
	rem := 1 - float64(full)*vmax
	return vmax*prefix[full] + rem*sel[full]
}

// soundUpperBound returns a provable upper bound on the candidate's query
// score under the pipeline's solvers: per alternative, the chain's pinned
// anchors and fuzzy runs are reconstructed exactly as solveChain assigns
// them, each fuzzy run's minimum unit width feeds soundSlopeInterval, and
// per-unit bounds compose through unitBounds into the chain's weighted sum
// (weights sum to 1, so the chain bound is also ≥ the −1 of an infeasible
// segmentation). All state lives on the memoized Viz (pruneSlopeStats) and
// the worker's pooled evalCtx — the check allocates nothing in steady
// state.
func soundUpperBound(ec *evalCtx, v *Viz, norm shape.Normalized, o *Options) float64 {
	ec.resetBoundCaches(o.chainMeta)
	return soundUpperBoundShared(ec, v, norm, o)
}

// resetBoundCaches invalidates the per-candidate bound caches: the slope
// interval per width floor, the unit bound per (signature, width floor),
// and — for pin-free chains — the whole chain bound per distinct bound
// group, so alternatives with provably identical bounds (same unit-count
// and (signature, weight) multiset; the bound is order-free within a fuzzy
// run) derive it once. Single-query bounding resets per (candidate, query);
// batch execution (runMulti) resets once per candidate and lets the caches
// compose across queries — signature and bound-group ids are batch-global,
// so the keys stay unambiguous.
func (ec *evalCtx) resetBoundCaches(meta *chainMeta) {
	ec.ubSpanKeys = ec.ubSpanKeys[:0]
	ec.ubSpanLo = ec.ubSpanLo[:0]
	ec.ubSpanHi = ec.ubSpanHi[:0]
	ec.ubUnitKeys = ec.ubUnitKeys[:0]
	ec.ubUnitHi = ec.ubUnitHi[:0]
	if meta != nil && meta.nBoundGroups > 0 {
		ec.ubChainUB = growFloats(&ec.ubChainUB, meta.nBoundGroups)
		set := growBools(&ec.ubChainSet, meta.nBoundGroups)
		for i := range set {
			set[i] = false
		}
	}
}

// soundUpperBoundShared is soundUpperBound minus the cache reset: the
// caller owns the per-candidate cache lifecycle via resetBoundCaches.
func soundUpperBoundShared(ec *evalCtx, v *Viz, norm shape.Normalized, o *Options) float64 {
	ps := v.pruneSlopeStats()
	if ps.nPairs == 0 {
		return math.Inf(1) // no valid pair: nothing to bound, never prune
	}
	n := v.N()
	tolX := 1.5 * (v.Series.X[n-1] - v.Series.X[0]) / float64(n-1)
	// mayFail: evaluation paths that can force −1 below any slope-derived
	// minimum (skip-mask hits, duplicate-x degenerate fits). The upper
	// bound is unaffected; only NOT's use of the lower bound needs it.
	mayFail := v.Skipped != nil || math.IsInf(ps.ratio, 1)
	meta := o.chainMeta
	ub := math.Inf(-1)
	for ai, alt := range norm.Alternatives {
		var am *altMeta
		if meta != nil {
			am = &meta.alts[ai]
			if g := am.boundGroup; g >= 0 && ec.ubChainSet[g] {
				if c := ec.ubChainUB[g]; c > ub {
					ub = c
				}
				continue
			}
		}
		chainUB := chainUpperBound(ec, v, alt, o, ps, am, tolX, mayFail)
		if am != nil && am.boundGroup >= 0 {
			ec.ubChainSet[am.boundGroup] = true
			ec.ubChainUB[am.boundGroup] = chainUB
		}
		if chainUB > ub {
			ub = chainUB
		}
	}
	return ub
}

// chainUpperBound bounds one alternative, mirroring solveChain's anchor and
// fuzzy-run reconstruction. am, when non-nil, supplies hoisted pins and
// structural signature ids for the per-candidate caches.
func chainUpperBound(ec *evalCtx, v *Viz, alt shape.Chain, o *Options, ps *pruneStats, am *altMeta, tolX float64, mayFail bool) float64 {
	n := v.N()
	k := len(alt.Units)
	pinS := growInts(&ec.ubPinS, k)
	pinE := growInts(&ec.ubPinE, k)
	pinBad := growBools(&ec.ubPinBad, k)
	for t, u := range alt.Units {
		pinS[t], pinE[t], pinBad[t] = -1, -1, false
		var xs, xe float64
		var hasS, hasE bool
		if am != nil {
			p := &am.pins[t]
			xs, hasS, xe, hasE = p.xs, p.hasS, p.xe, p.hasE
		} else {
			xs, hasS = u.PinnedStart()
			xe, hasE = u.PinnedEnd()
		}
		if hasS {
			if xs < v.Series.X[0]-tolX || xs > v.Series.X[n-1]+tolX {
				pinBad[t] = true
			} else {
				pinS[t] = v.indexOfX(xs)
			}
		}
		if hasE {
			if xe < v.Series.X[0]-tolX || xe > v.Series.X[n-1]+tolX {
				pinBad[t] = true
			} else {
				pinE[t] = v.indexAtOrBefore(xe)
			}
		}
		if pinS[t] >= 0 && pinE[t] >= 0 && pinE[t] <= pinS[t] {
			pinBad[t] = true
		}
	}
	// anchored mirrors compiledUnit.pinned(): both indices resolved,
	// even when the pin is erroneous — solveChain anchors those too.
	anchored := func(t int) bool { return pinS[t] >= 0 && pinE[t] >= 0 }
	var chainUB float64
	t := 0
	for t < k {
		if anchored(t) {
			var hi float64
			switch {
			case pinBad[t]:
				hi = score.WorstScore // unitScore is −1 on pin errors
			default:
				if s, ok := v.rangeSlope(pinS[t], pinE[t]); ok {
					_, hi = unitBounds(alt.Units[t].Node, s, s, mayFail)
				} else {
					_, hi = unitBounds(alt.Units[t].Node, math.Inf(-1), math.Inf(1), true)
				}
			}
			chainUB += alt.Units[t].Weight * hi
			t++
			continue
		}
		// Maximal fuzzy run [t, t2] and its window, as in solveChain.
		t2 := t
		for t2+1 < k && !anchored(t2+1) {
			t2++
		}
		lo := 0
		if t > 0 {
			lo = pinE[t-1]
		}
		hiIdx := n - 1
		if t2+1 < k {
			if pinBad[t2+1] {
				hiIdx = lo // solveChain forces the run infeasible
			} else {
				hiIdx = pinS[t2+1]
			}
		}
		kRun := t2 - t + 1
		if hiIdx-lo < kRun {
			for ; t <= t2; t++ {
				chainUB += alt.Units[t].Weight * score.WorstScore
			}
			continue
		}
		span := minSpanWidth(o, n, kRun, lo, hiIdx)
		sLo, sHi := ec.spanInterval(ps, span+1)
		for ; t <= t2; t++ {
			if pinBad[t] {
				// A half-pinned unit whose pin failed scores −1 on
				// every range.
				chainUB += alt.Units[t].Weight * score.WorstScore
				continue
			}
			bsig := -1
			if am != nil {
				bsig = am.bsigs[t]
			}
			chainUB += alt.Units[t].Weight * ec.unitHi(alt.Units[t].Node, bsig, span, sLo, sHi, mayFail)
		}
	}
	return chainUB
}

// spanInterval is soundSlopeInterval cached per candidate by width floor.
func (ec *evalCtx) spanInterval(ps *pruneStats, m int) (float64, float64) {
	for i, key := range ec.ubSpanKeys {
		if key == m {
			return ec.ubSpanLo[i], ec.ubSpanHi[i]
		}
	}
	sLo, sHi := soundSlopeInterval(ps, m)
	if len(ec.ubSpanKeys) < 64 {
		ec.ubSpanKeys = append(ec.ubSpanKeys, m)
		ec.ubSpanLo = append(ec.ubSpanLo, sLo)
		ec.ubSpanHi = append(ec.ubSpanHi, sHi)
	}
	return sLo, sHi
}

// unitHi is a fuzzy unit's upper bound cached per candidate by (structural
// signature, width floor): the floor determines (sLo, sHi) and mayFail is
// candidate-constant, so the key pins every input of unitBounds. bsig < 0
// computes directly (chains compiled without plan metadata).
func (ec *evalCtx) unitHi(nd *shape.Node, bsig, span int, sLo, sHi float64, mayFail bool) float64 {
	var key uint64
	if bsig >= 0 {
		key = uint64(bsig)<<32 | uint64(uint32(span))
		for i, k := range ec.ubUnitKeys {
			if k == key {
				return ec.ubUnitHi[i]
			}
		}
	}
	_, hi := unitBounds(nd, sLo, sHi, mayFail)
	if bsig >= 0 && len(ec.ubUnitKeys) < 256 {
		ec.ubUnitKeys = append(ec.ubUnitKeys, key)
		ec.ubUnitHi = append(ec.ubUnitHi, hi)
	}
	return hi
}

// unitBounds bounds a unit's score given that any range the unit may cover
// has a fitted slope inside [sLo, sHi]: score.BoundsInterval for simple
// pattern segments, Property 5.1 composition for operators, and the trivial
// [−1, 1] for constructs whose score is not slope-determined (quantifiers,
// iterators, sketches, UDPs, references). The lower bound exists for NOT
// composition (NOT's upper bound is the negated child lower bound) and is
// forced to −1 whenever an evaluation-failure path (skip mask, location
// violation, degenerate fit) could undercut the slope-derived minimum.
func unitBounds(n *shape.Node, sLo, sHi float64, mayFail bool) (float64, float64) {
	switch n.Kind {
	case shape.NodeSegment:
		seg := n.Seg
		if seg.Mod.Kind == shape.ModQuantifier || seg.Loc.HasIterator() ||
			len(seg.Sketch) > 0 || seg.Pat.Kind == shape.PatPosition ||
			seg.Pat.Kind == shape.PatUDP || seg.Pat.Kind == shape.PatNested {
			return score.WorstScore, score.BestScore
		}
		var lo, hi float64
		switch seg.Pat.Kind {
		case shape.PatUp, shape.PatDown, shape.PatFlat, shape.PatSlope:
			lo, hi = score.BoundsInterval(seg.Pat.Kind, seg.Mod.Kind, seg.Pat.Slope, sLo, sHi)
		case shape.PatAny, shape.PatNone:
			lo, hi = score.BestScore, score.BestScore
		case shape.PatEmpty:
			return score.WorstScore, score.WorstScore
		default:
			return score.WorstScore, score.BestScore
		}
		loc := seg.Loc
		if mayFail || loc.XS.Set || loc.XE.Set || loc.YS.Set || loc.YE.Set {
			lo = score.WorstScore
		}
		return lo, hi
	case shape.NodeAnd:
		lo, hi := score.BestScore, score.BestScore
		for _, c := range n.Children {
			clo, chi := unitBounds(c, sLo, sHi, mayFail)
			if clo < lo {
				lo = clo
			}
			if chi < hi {
				hi = chi
			}
		}
		return lo, hi
	case shape.NodeOr:
		lo, hi := score.WorstScore, score.WorstScore
		for _, c := range n.Children {
			clo, chi := unitBounds(c, sLo, sHi, mayFail)
			if clo > lo {
				lo = clo
			}
			if chi > hi {
				hi = chi
			}
		}
		return lo, hi
	case shape.NodeNot:
		clo, chi := unitBounds(n.Children[0], sLo, sHi, mayFail)
		return -chi, -clo
	default:
		return score.WorstScore, score.BestScore
	}
}
