package executor

import (
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// The two-stage collective pruning of Section 6.3 lives in the unified
// Plan pipeline (plan.go): stage 1 (Plan.sampleFloor) seeds the shared
// top-k heap's floor from sampled coarse lower bounds, and stage 2 runs
// inside every pipeline worker, where upperBoundBelow walks the
// SegmentTree levels bottom-up and compares the Table 7 (Theorem 6.4)
// score bound against the live shared threshold. This file keeps the
// bound machinery itself.

// coarseScore runs the DP on a sub-sampled candidate grid in the worker's
// evaluation context; the result is a valid (achievable) score and
// therefore a lower bound.
func coarseScore(ec *evalCtx, v *Viz, norm shape.Normalized, o *Options, stride int) (float64, bool) {
	best := math.Inf(-1)
	for _, alt := range norm.Alternatives {
		ce, err := ec.compile(v, alt, o)
		if err != nil {
			return 0, false
		}
		res := solveChain(ce, func(ce *chainEval, t1, t2, lo, hi int) runResult {
			return dpRunStride(ce, t1, t2, lo, hi, stride)
		})
		if res.score > best {
			best = res.score
		}
	}
	return best, !math.IsInf(best, -1)
}

// pruneSafetyMargin compensates for the gap in the Table 7 bound argument:
// it assumes unit ranges are unions of whole level-i nodes, but a real
// break can split a node, letting a unit's score exceed the bound slightly.
// A visualization is pruned only when its upper bound trails the top-k
// floor by more than this margin.
const pruneSafetyMargin = 0.05

// upperBoundBelow reports whether the visualization's query-score upper
// bound, refined over successive SegmentTree levels, falls below the
// current top-k lower bound.
func upperBoundBelow(v *Viz, norm shape.Normalized, o *Options, lb float64) bool {
	// Build a throwaway evaluator for the first alternative just to reuse
	// slope machinery; level slopes depend only on the visualization.
	ce := &chainEval{viz: v, opts: o}
	levels := levelSlopes(ce, 0, v.N()-1)
	if len(levels) == 0 {
		return false
	}
	// Check mid-tree levels: leaf levels give very loose bounds (tiny noisy
	// segments have extreme slopes), while near-root levels are invalid for
	// units covering sub-ranges — the Table 7 merging argument needs unit
	// ranges to be unions of whole nodes, so nodes must stay much smaller
	// than a typical unit range.
	for _, li := range []int{len(levels) / 2, (2 * len(levels)) / 3} {
		if li < 0 || li >= len(levels) {
			continue
		}
		slopes := levels[li]
		if len(slopes) == 0 {
			continue
		}
		ub := math.Inf(-1)
		for _, alt := range norm.Alternatives {
			var chainUB float64
			for _, u := range alt.Units {
				_, hi := unitBounds(u.Node, slopes)
				chainUB += u.Weight * hi
			}
			if chainUB > ub {
				ub = chainUB
			}
		}
		if ub+pruneSafetyMargin < lb {
			return true
		}
	}
	return false
}

// unitBounds computes [lo, hi] bounds on a unit's score from per-level node
// slopes: Table 7 for simple pattern segments, Property 5.1 composition for
// operators, and the trivial [−1, 1] for constructs whose score is not
// slope-determined (quantifiers, iterators, sketches, UDPs, references).
func unitBounds(n *shape.Node, slopes []float64) (float64, float64) {
	switch n.Kind {
	case shape.NodeSegment:
		seg := n.Seg
		if seg.Mod.Kind == shape.ModQuantifier || seg.Loc.HasIterator() ||
			len(seg.Sketch) > 0 || seg.Pat.Kind == shape.PatPosition ||
			seg.Pat.Kind == shape.PatUDP || seg.Pat.Kind == shape.PatNested {
			return score.WorstScore, score.BestScore
		}
		switch seg.Pat.Kind {
		case shape.PatUp, shape.PatDown, shape.PatFlat, shape.PatSlope:
			if seg.Mod.Kind != shape.ModNone {
				// Sharp/gradual modifiers reshape the slope→score map;
				// stay conservative.
				return score.WorstScore, score.BestScore
			}
			return score.Bounds(seg.Pat.Kind, seg.Pat.Slope, slopes)
		case shape.PatAny, shape.PatNone:
			return score.BestScore, score.BestScore
		case shape.PatEmpty:
			return score.WorstScore, score.WorstScore
		default:
			return score.WorstScore, score.BestScore
		}
	case shape.NodeAnd:
		lo, hi := score.BestScore, score.BestScore
		for _, c := range n.Children {
			clo, chi := unitBounds(c, slopes)
			if clo < lo {
				lo = clo
			}
			if chi < hi {
				hi = chi
			}
		}
		return lo, hi
	case shape.NodeOr:
		lo, hi := score.WorstScore, score.WorstScore
		for _, c := range n.Children {
			clo, chi := unitBounds(c, slopes)
			if clo > lo {
				lo = clo
			}
			if chi > hi {
				hi = chi
			}
		}
		return lo, hi
	case shape.NodeNot:
		clo, chi := unitBounds(n.Children[0], slopes)
		return -chi, -clo
	default:
		return score.WorstScore, score.BestScore
	}
}
