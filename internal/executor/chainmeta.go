package executor

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"shapesearch/internal/shape"
)

// chainMeta is the plan-wide, data-independent analysis of a query's
// normalized alternatives, built once at Compile. It is what lets
// per-candidate evaluation cost scale with the *distinct* work across
// alternatives instead of the alternative count:
//
//   - every unit's canonical signature (shape.Unit.Signature, nested
//     sub-queries included) is interned to a small id; alternatives produced
//     by cross-concatenation share ids for the units they share, and the
//     per-candidate unit-score memo (evalCtx.memo) is keyed on them;
//   - the pinned x endpoints of every unit are hoisted here so per-candidate
//     chain compilation stops walking unit trees;
//   - alternatives are ordered by unit count so same-k alternatives score
//     consecutively over one shared candidate grid / SegmentTree skeleton
//     (evalCtx.treeGrid) per (viz, k) group;
//   - pin-free alternatives whose sound upper bound is provably identical —
//     same unit count and same multiset of (signature, weight), the bound
//     being order-independent within a fuzzy run — share a bound group, so
//     soundUpperBound derives each distinct bound once per candidate.
//
// chainMeta is immutable after Compile and shared by every worker.
type chainMeta struct {
	alts []altMeta
	// order holds alternative indices grouped by ascending unit count
	// (original order within a group).
	order []int
	// memoOn reports whether any memo-eligible signature occurs more than
	// once across (alternative, slot) contexts — the only case where the
	// memo can pay for its probes.
	memoOn bool
	// nSigs is the number of distinct unit signatures.
	nSigs int
	// sigFast classifies, per signature id, bare-pattern units — a single
	// segment with only an unmodified up/down/flat/θ/*/empty pattern (no
	// location, sketch, or modifier). Their score is a fixed function of
	// the range's fitted angle, so unitScore serves them straight from the
	// per-candidate fit memo (shared across signatures) with no per-sig
	// score memo traffic. PatNone marks signatures that are not fast.
	sigFast []shape.PatternKind
	// sigFastTarget is the θ target for fast PatSlope signatures.
	sigFastTarget []float64
	// nBoundGroups is the number of distinct pin-free chain-bound groups.
	nBoundGroups int
}

// altMeta is the compile-time analysis of one normalized alternative.
type altMeta struct {
	// sigs is the per-unit memo signature id; −1 marks units whose score is
	// position-dependent (POSITION references) and must not be shared.
	sigs []int
	// bsigs is the per-unit structural signature id, always valid — the
	// sound bound is structure-determined even for POSITION units.
	bsigs []int
	// pins carries each unit's pinned x endpoints.
	pins []unitPin
	// boundGroup identifies the alternative's sound-bound equivalence class
	// among pin-free chains; −1 when the chain has pins (its bound depends
	// on data-resolved anchors and is derived individually).
	boundGroup int
}

// unitPin is a unit's pinned x endpoints, hoisted out of the per-candidate
// compile path.
type unitPin struct {
	xs, xe     float64
	hasS, hasE bool
}

// sigIntern is the mutable interning state behind chainMeta construction.
// For a single plan it is private to one buildChainMeta call; for a batch
// (CompileBatch / NewMultiPlan) one sigIntern spans every query's normalized
// alternatives, so signature ids — and with them the per-candidate score
// memo keys, the fit memo, and the bound-group dedup — are global across the
// batch: two queries sharing a unit share its evaluation on every candidate.
type sigIntern struct {
	ids map[string]int
	// eligCount counts memo-eligible occurrences per signature id across
	// all (alternative, slot) contexts of every query added so far.
	eligCount     []int
	sigFast       []shape.PatternKind
	sigFastTarget []float64
	boundGroups   map[string]int
	memoOn        bool
}

func newSigIntern() *sigIntern {
	return &sigIntern{ids: make(map[string]int), boundGroups: make(map[string]int)}
}

// add interns one query's normalized alternatives, returning its chainMeta
// with the per-alternative fields (sigs, pins, order, bound groups) filled.
// The intern-wide fields (signature tables, counts, memoOn) are stamped by
// finalize once every query has been added — the shared tables may still
// grow while later queries intern.
func (st *sigIntern) add(norm shape.Normalized) *chainMeta {
	m := &chainMeta{alts: make([]altMeta, len(norm.Alternatives))}
	for ai, alt := range norm.Alternatives {
		am := &m.alts[ai]
		k := len(alt.Units)
		am.sigs = make([]int, k)
		am.bsigs = make([]int, k)
		am.pins = make([]unitPin, k)
		pinFree := true
		for t, u := range alt.Units {
			sig := u.Signature()
			id, ok := st.ids[sig]
			if !ok {
				id = len(st.ids)
				st.ids[sig] = id
				st.eligCount = append(st.eligCount, 0)
				fk, target := fastPattern(u.Node)
				st.sigFast = append(st.sigFast, fk)
				st.sigFastTarget = append(st.sigFastTarget, target)
			}
			am.bsigs[t] = id
			if u.Node.HasDirectPositionRef() {
				am.sigs[t] = -1
			} else {
				am.sigs[t] = id
				st.eligCount[id]++
				if st.eligCount[id] > 1 {
					st.memoOn = true
				}
			}
			p := &am.pins[t]
			p.xs, p.hasS = u.PinnedStart()
			p.xe, p.hasE = u.PinnedEnd()
			if p.hasS || p.hasE {
				pinFree = false
			}
		}
		am.boundGroup = -1
		if pinFree {
			key := boundGroupKey(am.bsigs, alt.Units)
			g, ok := st.boundGroups[key]
			if !ok {
				g = len(st.boundGroups)
				st.boundGroups[key] = g
			}
			am.boundGroup = g
		}
	}
	m.order = make([]int, len(norm.Alternatives))
	for i := range m.order {
		m.order[i] = i
	}
	sort.SliceStable(m.order, func(a, b int) bool {
		return len(norm.Alternatives[m.order[a]].Units) < len(norm.Alternatives[m.order[b]].Units)
	})
	return m
}

// finalize stamps the intern-wide tables onto every chainMeta built from
// this state. All metas share the same backing slices (read-only after
// this), the same signature count, and the same memo switch — which is what
// lets batch execution reset the score/fit memos once per candidate and
// share entries across queries.
func (st *sigIntern) finalize(ms ...*chainMeta) {
	for _, m := range ms {
		m.memoOn = st.memoOn
		m.nSigs = len(st.ids)
		m.sigFast = st.sigFast
		m.sigFastTarget = st.sigFastTarget
		m.nBoundGroups = len(st.boundGroups)
	}
}

// buildChainMeta analyzes the normalized alternatives of a query.
func buildChainMeta(norm shape.Normalized) *chainMeta {
	st := newSigIntern()
	m := st.add(norm)
	st.finalize(m)
	return m
}

// fastPattern reports whether the unit is a bare unmodified pattern segment
// whose score is a fixed function of the range's fitted angle (see
// chainMeta.sigFast). PatNone means not fast.
func fastPattern(n *shape.Node) (shape.PatternKind, float64) {
	if n.Kind != shape.NodeSegment {
		return shape.PatNone, 0
	}
	seg := n.Seg
	if seg.Mod.Kind != shape.ModNone || !seg.Loc.IsZero() || len(seg.Sketch) > 0 {
		return shape.PatNone, 0
	}
	switch seg.Pat.Kind {
	case shape.PatUp, shape.PatDown, shape.PatFlat, shape.PatSlope, shape.PatAny, shape.PatEmpty:
		return seg.Pat.Kind, seg.Pat.Slope
	default:
		return shape.PatNone, 0
	}
}

// boundGroupKey canonicalizes a pin-free chain for sound-bound equivalence:
// within a single fuzzy run the bound is Σ wₜ·hi(sigₜ, span(k)) — a
// function of the unit count and the multiset of (signature, weight) pairs,
// not their order — so the key sorts the pairs.
func boundGroupKey(bsigs []int, units []shape.Unit) string {
	type pair struct {
		sig int
		w   uint64
	}
	pairs := make([]pair, len(units))
	for t, u := range units {
		pairs[t] = pair{bsigs[t], math.Float64bits(u.Weight)}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].sig != pairs[b].sig {
			return pairs[a].sig < pairs[b].sig
		}
		return pairs[a].w < pairs[b].w
	})
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(len(units)))
	for _, p := range pairs {
		sb.WriteByte(';')
		sb.WriteString(strconv.Itoa(p.sig))
		sb.WriteByte('*')
		sb.WriteString(strconv.FormatUint(p.w, 16))
	}
	return sb.String()
}

// memoUsable reports whether the per-candidate unit-score memo can key this
// visualization: the packed (sig, i, j) key reserves 16 bits for the
// signature and 24 per range endpoint.
func (m *chainMeta) memoUsable(n int) bool {
	return m.memoOn && n < 1<<24 && m.nSigs < 1<<16
}
