package executor

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"shapesearch/internal/dataset"
	"shapesearch/internal/shape"
)

// MultiPlan executes a batch of compiled queries against one corpus in a
// single pass: every candidate visualization is grouped, bounded and scored
// once for all Q queries, on the same worker pool a single Plan uses. The
// shared-evaluation machinery of one plan (interned unit signatures, the
// per-candidate score/fit memos, the stride grid and SegmentTree leaf
// skeleton, the bound-group dedup) extends across plans: CompileBatch and
// NewMultiPlan re-intern every query's unit signatures into one shared
// table, so per-candidate cost is solve_shared + Σ_q distinct_work(q)
// instead of Σ_q (solve + all work) — related queries (the production
// traffic shape: one user intent fanned out into dozens of near-identical
// trend queries, or many users typing variations of one question) share
// everything they have in common.
//
// Per query, nothing is shared that would change results: each query keeps
// its own top-k heap, its own atomic pruning floor, and its own sound upper
// bounds, so lossless pruning composes per query — a candidate is skipped
// only for the queries whose bound falls below *that query's* floor, and
// the deferred exact-verification stage runs per query. Results are
// byte-identical (score bits, ranking, Ranges, BreakXs) to running each
// plan alone, pinned by TestSearchBatchMatchesSequential.
//
// A MultiPlan is immutable after construction and safe for concurrent use.
type MultiPlan struct {
	// plans holds one shadow Plan per query: a shallow copy of the caller's
	// plan whose Options carry the batch-interned chainMeta. The underlying
	// plans passed to NewMultiPlan are never mutated.
	plans []*Plan
	// prune and distance mirror the per-plan flags; option compatibility
	// makes them uniform across the batch.
	prune    bool
	distance bool
}

// CompileBatch compiles Q queries under one set of options and interns
// their unit signatures into one shared table (see MultiPlan). Options are
// normalized once and apply to every query.
func CompileBatch(qs []shape.Query, opts Options) (*MultiPlan, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("executor: CompileBatch needs at least one query")
	}
	plans := make([]*Plan, len(qs))
	for i, q := range qs {
		p, err := Compile(q, opts)
		if err != nil {
			return nil, fmt.Errorf("executor: batch query %d: %w", i, err)
		}
		plans[i] = p
	}
	return NewMultiPlan(plans)
}

// NewMultiPlan builds a batch executor from already-compiled plans (e.g.
// plans served by a plan cache). The plans' options must agree on every
// field that affects scoring or segmentation — algorithm, stride, width
// floor, pruning, push-down, thresholds, UDP registry, sketch config —
// because batch execution shares per-candidate work across queries and the
// shared entries must be exact for all of them. K may differ per query
// (each keeps its own heap); the first plan's Parallelism drives the pool.
// The input plans are not mutated and remain independently usable.
func NewMultiPlan(plans []*Plan) (*MultiPlan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("executor: NewMultiPlan needs at least one plan")
	}
	for i, p := range plans[1:] {
		if err := compatibleOpts(plans[0].opts, p.opts); err != nil {
			return nil, fmt.Errorf("executor: batch plan %d incompatible with plan 0: %w", i+1, err)
		}
	}
	mp := &MultiPlan{prune: plans[0].prune, distance: plans[0].distance}
	if mp.distance {
		// Distance rankings (DTW/Euclidean) have no unit signatures to
		// share; the batch still amortizes EXTRACT + GROUP per candidate
		// key, and each plan scans the shared candidates itself.
		mp.plans = plans
		return mp, nil
	}
	// Re-intern every query's signatures into one shared table and hand
	// each query a shadow plan whose chainMeta carries the global ids. The
	// shadow options are copies: the caller's plans keep their single-query
	// metadata untouched.
	st := newSigIntern()
	metas := make([]*chainMeta, len(plans))
	for i, p := range plans {
		metas[i] = st.add(p.norm)
	}
	st.finalize(metas...)
	mp.plans = make([]*Plan, len(plans))
	for i, p := range plans {
		o := *p.opts
		o.chainMeta = metas[i]
		sp := *p
		sp.opts = &o
		mp.plans[i] = &sp
	}
	return mp, nil
}

// compatibleOpts verifies two normalized option sets may share batch
// evaluation state. Every field that flows into a unit score, a
// segmentation grid, a sound bound, or the candidate set must match; K and
// Parallelism are per-query/pool concerns and may differ.
func compatibleOpts(a, b *Options) error {
	switch {
	case a.Algorithm != b.Algorithm:
		return fmt.Errorf("algorithm %v != %v", a.Algorithm, b.Algorithm)
	case a.Stride != b.Stride:
		return fmt.Errorf("stride %d != %d", a.Stride, b.Stride)
	case a.MinSegmentFrac != b.MinSegmentFrac:
		return fmt.Errorf("minSegmentFrac %v != %v", a.MinSegmentFrac, b.MinSegmentFrac)
	case a.Pushdown != b.Pushdown:
		return fmt.Errorf("pushdown %v != %v", a.Pushdown, b.Pushdown)
	case a.Pruning != b.Pruning:
		return fmt.Errorf("pruning %v != %v", a.Pruning, b.Pruning)
	case a.QuantifierThreshold != b.QuantifierThreshold:
		return fmt.Errorf("quantifierThreshold %v != %v", a.QuantifierThreshold, b.QuantifierThreshold)
	case a.UDPs != b.UDPs && (len(a.UDPs.Names()) > 0 || len(b.UDPs.Names()) > 0):
		// Distinct empty registries (the per-compile default) define the
		// same (absent) patterns; distinct non-empty ones may not.
		return fmt.Errorf("distinct UDP registries")
	case a.SketchConfig != b.SketchConfig:
		return fmt.Errorf("sketchConfig %v != %v", a.SketchConfig, b.SketchConfig)
	case a.MaxExhaustivePoints != b.MaxExhaustivePoints:
		return fmt.Errorf("maxExhaustivePoints %d != %d", a.MaxExhaustivePoints, b.MaxExhaustivePoints)
	case a.DTWBand != b.DTWBand:
		return fmt.Errorf("dtwBand %d != %d", a.DTWBand, b.DTWBand)
	}
	return nil
}

// Queries reports the number of queries in the batch.
func (mp *MultiPlan) Queries() int { return len(mp.plans) }

// Search runs the full EXTRACT → GROUP → SEGMENT → SCORE pipeline for the
// whole batch, returning one result slice per query in input order.
func (mp *MultiPlan) Search(src dataset.Source, spec dataset.ExtractSpec) ([][]Result, error) {
	return mp.SearchContext(context.Background(), src, spec)
}

// SearchContext is Search with cooperative cancellation. Queries are
// grouped by Plan.CandidateKey: queries whose effective spec and GROUP
// configuration agree (equal keys guarantee identical grouped candidates)
// extract and group once and score in one multi-query pass; each distinct
// key pays one EXTRACT + GROUP. A serving layer with a candidate cache does
// the same grouping itself and calls RunGroupedContext per cached entry.
func (mp *MultiPlan) SearchContext(ctx context.Context, src dataset.Source, spec dataset.ExtractSpec) ([][]Result, error) {
	out := make([][]Result, len(mp.plans))
	err := mp.forEachKeyGroup(func(p *Plan) string { return p.CandidateKey(spec) },
		func(idxs []int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			lead := mp.plans[idxs[0]]
			series, err := src.Extract(lead.EffectiveSpec(spec))
			if err != nil {
				return err
			}
			vizs := lead.GroupSeries(series)
			res, err := mp.runMulti(ctx, idxs, len(vizs), func(i int) *Viz { return vizs[i] })
			if err != nil {
				return err
			}
			for gi, qi := range idxs {
				out[qi] = res[gi]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Run ranks pre-extracted series for every query in the batch.
func (mp *MultiPlan) Run(series []dataset.Series) ([][]Result, error) {
	return mp.RunContext(context.Background(), series)
}

// RunContext is Run with cooperative cancellation. As in SearchContext,
// queries sharing a GROUP configuration (push-down filter windows and
// z-normalization — CandidateKey under an empty spec) group once.
func (mp *MultiPlan) RunContext(ctx context.Context, series []dataset.Series) ([][]Result, error) {
	out := make([][]Result, len(mp.plans))
	err := mp.forEachKeyGroup(func(p *Plan) string { return p.CandidateKey(dataset.ExtractSpec{}) },
		func(idxs []int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			lead := mp.plans[idxs[0]]
			vizs := lead.GroupSeries(series)
			res, err := mp.runMulti(ctx, idxs, len(vizs), func(i int) *Viz { return vizs[i] })
			if err != nil {
				return err
			}
			for gi, qi := range idxs {
				out[qi] = res[gi]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunGrouped ranks pre-grouped candidates for every query in the batch.
// The caller asserts the vizs are valid for all queries (same candidate
// key — the server guarantees this per candidate-cache entry).
func (mp *MultiPlan) RunGrouped(vizs []*Viz) ([][]Result, error) {
	return mp.RunGroupedContext(context.Background(), vizs)
}

// RunGroupedContext is RunGrouped with cooperative cancellation.
func (mp *MultiPlan) RunGroupedContext(ctx context.Context, vizs []*Viz) ([][]Result, error) {
	idxs := make([]int, len(mp.plans))
	for i := range idxs {
		idxs[i] = i
	}
	return mp.runMulti(ctx, idxs, len(vizs), func(i int) *Viz { return vizs[i] })
}

// forEachKeyGroup partitions query indices by key and runs fn once per
// distinct key, in first-appearance order (deterministic across runs).
func (mp *MultiPlan) forEachKeyGroup(key func(*Plan) string, fn func(idxs []int) error) error {
	groups := make(map[string][]int, len(mp.plans))
	order := make([]string, 0, len(mp.plans))
	for i, p := range mp.plans {
		k := key(p)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		if err := fn(groups[k]); err != nil {
			return err
		}
	}
	return nil
}

// runMulti is the batch scoring pipeline: one pass over n candidates
// scoring every query in idxs (indices into mp.plans). It mirrors Plan.run
// stage for stage — bound-first ordering, live shared floors, deferred
// verification — with the per-query state vectorized:
//
//   - Bound pass: each candidate's bound caches (slope interval per width
//     floor, unit bound per signature, chain bound per bound group — all
//     keyed by batch-global ids) are reset once and then serve every
//     query's soundUpperBound, so a unit bound shared by five queries is
//     derived once per candidate, not five times.
//   - Ordering: candidates score in descending max-over-queries bound
//     order. Order affects only how fast each query's floor tightens,
//     never the result; the max is the right single key because a
//     candidate that is strong for any query must score early for that
//     query's floor.
//   - Scan: per candidate, the score/fit memos reset before the first
//     query actually evaluated, then stay live across the remaining
//     queries — every (signature, range) score and every range fit is
//     computed once per candidate for the whole batch. A query whose floor
//     dominates the candidate's bound skips it (recorded, not discarded)
//     without consuming the reset.
//   - Verification: per query, exactly as Plan.run — any candidate pruned
//     for query q whose bound reaches q's final floor is re-scored, so
//     per-query results equal the unpruned per-query scan.
//
// Returned results are indexed like idxs.
func (mp *MultiPlan) runMulti(ctx context.Context, idxs []int, n int, viz func(int) *Viz) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if mp.distance {
		// Distance baselines keep per-plan scans over the shared candidates
		// (their per-(alternative, length) reference memos are plan-local).
		out := make([][]Result, len(idxs))
		for gi, qi := range idxs {
			res, err := mp.plans[qi].run(ctx, n, viz)
			if err != nil {
				return nil, err
			}
			out[gi] = res
		}
		return out, nil
	}
	if len(idxs) == 1 {
		res, err := mp.plans[idxs[0]].run(ctx, n, viz)
		if err != nil {
			return nil, err
		}
		return [][]Result{res}, nil
	}
	plans := make([]*Plan, len(idxs))
	for gi, qi := range idxs {
		plans[gi] = mp.plans[qi]
	}
	o0 := plans[0].opts

	if mp.prune && !o0.DisableAutoIndex && n >= lazyIndexMinCorpus {
		// Same corpus-scale routing as Plan.run: materialize once, index,
		// traverse best-first for the whole batch.
		vizs := make([]*Viz, n)
		w := o0.Parallelism
		if ctxErr := forEachIndex(ctx, w, n, func(_, i int) { vizs[i] = viz(i) }); ctxErr != nil {
			return nil, ctxErr
		}
		return mp.runMultiIndexed(ctx, plans, BuildVizIndex(vizs, 0))
	}

	workers := o0.Parallelism
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ecs := make([]*evalCtx, workers)
	for i := range ecs {
		ecs[i] = getEvalCtx()
	}
	defer func() {
		for _, ec := range ecs {
			putEvalCtx(ec)
		}
	}()

	var (
		errMu    sync.Mutex
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}

	Q := len(plans)
	slots := make([][]slot, Q)
	shared := make([]*sharedTopK, Q)
	for qi, p := range plans {
		slots[qi] = make([]slot, n)
		shared[qi] = newSharedTopK(p.opts.K)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if mp.prune {
		// Bound every candidate for every query up front. maxUB drives the
		// scan order; the per-query bounds drive per-query pruning.
		maxUB := make([]float64, n)
		for i := range maxUB {
			maxUB[i] = math.Inf(-1)
		}
		ctxErr := forEachIndex(ctx, workers, n, func(worker, i int) {
			v := viz(i)
			if v == nil {
				return
			}
			ec := ecs[worker]
			// One reset serves the whole batch: nBoundGroups and every
			// signature id are batch-global, identical in all metas.
			ec.resetBoundCaches(o0.chainMeta)
			for qi, p := range plans {
				ub := soundUpperBoundShared(ec, v, p.norm, p.opts)
				slots[qi][i] = slot{v: v, ub: ub, pruned: true}
				if ub > maxUB[i] {
					maxUB[i] = ub
				}
			}
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		sort.Slice(order, func(a, b int) bool {
			ua, ub := maxUB[order[a]], maxUB[order[b]]
			if ua != ub {
				return ua > ub
			}
			return order[a] < order[b]
		})
	}

	ctxErr := forEachIndex(ctx, workers, n, func(worker, j int) {
		if abort.Load() {
			return
		}
		i := order[j]
		var v *Viz
		if mp.prune {
			v = slots[0][i].v
		} else {
			v = viz(i)
		}
		if v == nil {
			return
		}
		if o0.Algorithm == AlgExhaustive && v.N() > o0.MaxExhaustivePoints {
			fail(fmt.Errorf("executor: exhaustive search limited to %d points, series %q has %d",
				o0.MaxExhaustivePoints, v.Series.Z, v.N()))
			return
		}
		ec := ecs[worker]
		// The memo reset is consumed by the first query actually evaluated
		// on this candidate; per-query pruning skips must not consume it
		// (the memos would then carry the previous candidate's entries).
		resetMemo := true
		for qi, p := range plans {
			if mp.prune {
				threshold := shared[qi].fastFloor() + p.opts.pruneThresholdBias
				if !math.IsInf(threshold, -1) && slots[qi][i].ub < threshold {
					continue // pruned for this query only; stays recorded
				}
			}
			sc, ranges, err := evalVizShared(ec, v, p.norm, p.opts, p.solver, resetMemo)
			if err != nil {
				fail(err)
				return
			}
			resetMemo = false
			if mp.prune {
				shared[qi].add(sc)
			}
			slots[qi][i] = slot{res: makeResult(v, sc, ranges), ok: true}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	if mp.prune {
		for qi, p := range plans {
			floor, full := shared[qi].floor()
			if err := p.verifyPruned(ctx, workers, ecs, slots[qi], floor, full, fail, &abort); err != nil {
				return nil, err
			}
			if firstErr != nil {
				return nil, firstErr
			}
		}
	}

	out := make([][]Result, Q)
	for qi, p := range plans {
		out[qi] = topKSlots(slots[qi], p.opts.K)
	}
	return out, nil
}

// SearchBatch compiles qs under one set of options and runs the whole batch
// against the source in one pass — the convenience wrapper over
// CompileBatch + MultiPlan.Search. Results are per query, in input order.
func SearchBatch(src dataset.Source, spec dataset.ExtractSpec, qs []shape.Query, opts Options) ([][]Result, error) {
	return SearchBatchContext(context.Background(), src, spec, qs, opts)
}

// SearchBatchContext is SearchBatch with cooperative cancellation.
func SearchBatchContext(ctx context.Context, src dataset.Source, spec dataset.ExtractSpec, qs []shape.Query, opts Options) ([][]Result, error) {
	mp, err := CompileBatch(qs, opts)
	if err != nil {
		return nil, err
	}
	return mp.SearchContext(ctx, src, spec)
}
