package executor

import (
	"math/rand"
	"sync"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
)

func planSeries() []dataset.Series {
	rng := rand.New(rand.NewSource(7))
	var series []dataset.Series
	for i := 0; i < 30; i++ {
		s := randomSeries(rng, 48)
		s.Z = s.Z + string(rune('a'+i%26)) + string(rune('0'+i/26))
		series = append(series, s)
	}
	series = append(series,
		ramp("peak", 0, [2]float64{24, 1}, [2]float64{23, -1}),
		ramp("valley", 1, [2]float64{24, -1}, [2]float64{23, 1}),
	)
	return series
}

func TestCompileRejectsInvalidQueries(t *testing.T) {
	if _, err := Compile(regexlang.MustParse("[p=foo_pattern]"), DefaultOptions()); err == nil {
		t.Fatal("unknown UDP must fail at Compile")
	}
	bad := DefaultOptions()
	bad.Algorithm = Algorithm(99)
	if _, err := Compile(regexlang.MustParse("u ; d"), bad); err == nil {
		t.Fatal("unknown algorithm must fail at Compile")
	}
}

// TestPlanMatchesSearchSeries: the compatibility wrappers and the compiled
// plan must rank identically across algorithms, pruning and parallelism.
func TestPlanMatchesSearchSeries(t *testing.T) {
	series := planSeries()
	q := regexlang.MustParse("u ; d")
	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"sequential", func(o *Options) { o.Parallelism = 1 }},
		{"parallel", func(o *Options) { o.Parallelism = 4 }},
		{"pruned-sequential", func(o *Options) { o.Parallelism = 1; o.Pruning = true }},
		{"pruned-parallel", func(o *Options) { o.Parallelism = 4; o.Pruning = true }},
		{"dp", func(o *Options) { o.Algorithm = AlgDP }},
		{"greedy", func(o *Options) { o.Algorithm = AlgGreedy }},
		{"euclidean", func(o *Options) { o.Algorithm = AlgEuclidean }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.K = 5
			tc.mod(&opts)
			want, err := SearchSeries(series, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Compile(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Run(series)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("len %d != %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
					t.Fatalf("%d: %s %v != %s %v", i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
				}
			}
		})
	}
}

// TestRunGroupedMatchesRun: scoring pre-grouped candidates must equal the
// ungrouped path — the contract the server's candidate cache relies on.
func TestRunGroupedMatchesRun(t *testing.T) {
	series := planSeries()
	for _, query := range []string{"u ; d", "[p{up},x.s=10,x.e=30]"} {
		q := regexlang.MustParse(query)
		plan, err := Compile(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.Run(series)
		if err != nil {
			t.Fatal(err)
		}
		vizs := plan.GroupSeries(series)
		got, err := plan.RunGrouped(vizs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: len %d != %d", query, len(got), len(want))
		}
		for i := range want {
			if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
				t.Fatalf("%s: %d: %+v != %+v", query, i, got[i].Z, want[i].Z)
			}
		}
	}
}

// TestPlanConcurrentReuse: one compiled plan must serve concurrent Run and
// RunGrouped calls (the serving pattern) race-free with stable results.
func TestPlanConcurrentReuse(t *testing.T) {
	series := planSeries()
	opts := DefaultOptions()
	opts.Pruning = true
	plan, err := Compile(regexlang.MustParse("u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Run(series)
	if err != nil {
		t.Fatal(err)
	}
	vizs := plan.GroupSeries(series)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				var got []Result
				var err error
				if g%2 == 0 {
					got, err = plan.Run(series)
				} else {
					got, err = plan.RunGrouped(vizs)
				}
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
						errs <- errMismatch
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent plan runs disagree" }

func TestCandidateKey(t *testing.T) {
	spec := dataset.ExtractSpec{Z: "z", X: "x", Y: "y", Agg: dataset.AggAvg}
	fuzzy, err := Compile(regexlang.MustParse("u ; d"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fuzzy2, err := Compile(regexlang.MustParse("d ; u ; d"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Different queries, same visual parameters: keys collide on purpose —
	// that is what lets the cache serve all of them from one candidate set.
	if fuzzy.CandidateKey(spec) != fuzzy2.CandidateKey(spec) {
		t.Fatal("fuzzy queries over the same spec must share a candidate key")
	}
	other := spec
	other.Y = "y2"
	if fuzzy.CandidateKey(spec) == fuzzy.CandidateKey(other) {
		t.Fatal("different specs must not share a candidate key")
	}
	filtered := spec
	filtered.Filters = []dataset.Filter{{Col: "y", Op: dataset.Lt, Num: 3}}
	if fuzzy.CandidateKey(spec) == fuzzy.CandidateKey(filtered) {
		t.Fatal("filters must be part of the candidate key")
	}
	// A y-constrained query disables z-normalization, changing the grouped
	// candidates; its key must differ.
	ycons, err := Compile(regexlang.MustParse("[p{up},y.s=1,y.e=5]"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ycons.CandidateKey(spec) == fuzzy.CandidateKey(spec) {
		t.Fatal("y-constrained queries must not share candidates with z-normalized ones")
	}
	// A fully pinned query pushes windows into EXTRACT and skip-masks GROUP.
	pinned, err := Compile(regexlang.MustParse("[p{up},x.s=10,x.e=30]"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pinned.CandidateKey(spec) == fuzzy.CandidateKey(spec) {
		t.Fatal("pinned queries must not share candidates with unpinned ones")
	}
}

// TestSharedThresholdPruningParallel: the parallel pruned pipeline must
// return the exact top-k of the unpruned search — identity, order and
// scores — under any worker count (the Section 6.3 guarantee, now lossless
// under a shared live threshold plus deferred verification).
func TestSharedThresholdPruningParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var series []dataset.Series
	for i := 0; i < 60; i++ {
		s := randomSeries(rng, 64)
		s.Z = s.Z + string(rune('a'+i%26)) + string(rune('0'+i/26))
		series = append(series, s)
	}
	for i := 0; i < 5; i++ {
		series = append(series, ramp("peak"+string(rune('0'+i)), 0, [2]float64{32, 1}, [2]float64{31, -1}))
	}
	q := regexlang.MustParse("u ; d")
	base := DefaultOptions()
	base.Algorithm = AlgSegmentTree
	base.K = 5
	base.Parallelism = 1
	want, err := SearchSeries(series, q, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		pruned := base
		pruned.Pruning = true
		pruned.Parallelism = workers
		got, err := SearchSeries(series, q, pruned)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
				t.Fatalf("workers=%d: rank %d: pruned %s %.12f != unpruned %s %.12f",
					workers, i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
			}
		}
	}
}
