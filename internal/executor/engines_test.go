package executor

import (
	"math"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

// randomSeries builds a noisy piecewise-linear series for property tests.
func randomSeries(rng *rand.Rand, n int) dataset.Series {
	ys := make([]float64, n)
	y := rng.NormFloat64() * 5
	slope := rng.NormFloat64()
	for i := range ys {
		if rng.Intn(7) == 0 {
			slope = rng.NormFloat64() * 2
		}
		y += slope + rng.NormFloat64()*0.3
		ys[i] = y
	}
	return mkSeries("r", ys...)
}

func fuzzyQueries() []shape.Query {
	qs := []string{
		"u ; d",
		"u ; d ; u",
		"d ; f ; u",
		"(u | d) ; f",
		"u ; (f | d)",
		"[p=45] ; d",
		"u ; d ; u ; d",
	}
	out := make([]shape.Query, len(qs))
	for i, s := range qs {
		out[i] = regexlang.MustParse(s)
	}
	return out
}

// solveBest runs one solver over every alternative of a query and returns
// the best final score.
func solveBest(t *testing.T, v *Viz, q shape.Query, solver runSolver, opts *Options) float64 {
	t.Helper()
	norm, err := shape.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(-1)
	for _, alt := range norm.Alternatives {
		ce, err := compileChain(v, alt, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r := solveChain(ce, solver); r.score > best {
			best = r.score
		}
	}
	return best
}

// TestDPMatchesExhaustive: the DP must be exactly optimal (Theorem 6.1/6.2)
// — it must reproduce the brute-force best score on every input without
// POSITION references.
func TestDPMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	opts := seqOpts()
	o := opts.normalized()
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(14)
		v := group(randomSeries(rng, n), groupConfig{zNormalize: true})
		for _, q := range fuzzyQueries() {
			dp := solveBest(t, v, q, dpRun, o)
			ex := solveBest(t, v, q, exhaustiveRun, o)
			if math.Abs(dp-ex) > 1e-9 {
				t.Fatalf("trial %d, query %s: DP %v != exhaustive %v", trial, q, dp, ex)
			}
		}
	}
}

// TestSolversNeverBeatDP: DP is optimal, so SegmentTree and Greedy scores
// can never exceed it (within float tolerance).
func TestSolversNeverBeatDP(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	o := seqOpts().normalized()
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		v := group(randomSeries(rng, n), groupConfig{zNormalize: true})
		for _, q := range fuzzyQueries() {
			dp := solveBest(t, v, q, dpRun, o)
			tree := solveBest(t, v, q, treeRun, o)
			greedy := solveBest(t, v, q, greedyRun, o)
			if tree > dp+1e-9 {
				t.Fatalf("SegmentTree %v beats DP %v on %s", tree, dp, q)
			}
			if greedy > dp+1e-9 {
				t.Fatalf("Greedy %v beats DP %v on %s", greedy, dp, q)
			}
		}
	}
}

// TestSegmentTreeNearOptimal: on realistic piecewise-linear data the
// SegmentTree score should track DP closely (the paper reports >85%
// ranking accuracy and small score deviations).
func TestSegmentTreeNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	o := seqOpts().normalized()
	var totalDP, totalTree float64
	trials := 0
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(80)
		v := group(randomSeries(rng, n), groupConfig{zNormalize: true})
		for _, q := range fuzzyQueries() {
			dp := solveBest(t, v, q, dpRun, o)
			tree := solveBest(t, v, q, treeRun, o)
			if dp < 0.1 {
				continue // deviation ratios are meaningless near zero
			}
			totalDP += dp
			totalTree += tree
			trials++
		}
	}
	if trials == 0 {
		t.Skip("no positive-score trials")
	}
	ratio := totalTree / totalDP
	if ratio < 0.85 {
		t.Fatalf("SegmentTree captures only %.1f%% of DP score mass", ratio*100)
	}
}

// TestSegmentTreeExactOnCleanData: with noise-free piecewise-linear data
// whose break sits on a power-of-two boundary, SegmentTree finds the exact
// optimum.
func TestSegmentTreeExactOnCleanData(t *testing.T) {
	o := seqOpts().normalized()
	s := ramp("clean", 0, [2]float64{16, 1}, [2]float64{16, -1})
	v := group(s, groupConfig{zNormalize: true})
	q := regexlang.MustParse("u ; d")
	dp := solveBest(t, v, q, dpRun, o)
	tree := solveBest(t, v, q, treeRun, o)
	if math.Abs(dp-tree) > 1e-9 {
		t.Fatalf("tree %v != dp %v on clean data", tree, dp)
	}
}

// TestSegmentTreeSharedUnitMerge: the break point need not fall on a dyadic
// boundary — the shared-unit merge must recover off-center breaks.
func TestSegmentTreeSharedUnitMerge(t *testing.T) {
	o := seqOpts().normalized()
	// Peak at index 5 of 32 points: far from any dyadic midpoint.
	s := ramp("off", 0, [2]float64{5, 2}, [2]float64{27, -1})
	v := group(s, groupConfig{zNormalize: true})
	q := regexlang.MustParse("u ; d")
	norm, _ := shape.Normalize(q)
	ce, err := compileChain(v, norm.Alternatives[0], o)
	if err != nil {
		t.Fatal(err)
	}
	res := solveChain(ce, treeRun)
	if res.score < 0.5 {
		t.Fatalf("score = %v", res.score)
	}
	br := res.ranges[0][1]
	if br < 4 || br > 7 {
		t.Fatalf("break at %d, want ~5", br)
	}
}

// TestGreedyWorseOnHardData: construct data with a local optimum trap and
// confirm greedy underperforms DP — the behaviour Figure 12 documents.
func TestGreedyFindsLocalOptimum(t *testing.T) {
	o := seqOpts().normalized()
	rng := rand.New(rand.NewSource(31))
	worse := 0
	total := 0
	for trial := 0; trial < 40; trial++ {
		v := group(randomSeries(rng, 60), groupConfig{zNormalize: true})
		q := regexlang.MustParse("u ; d ; u ; d")
		dp := solveBest(t, v, q, dpRun, o)
		gr := solveBest(t, v, q, greedyRun, o)
		total++
		if gr < dp-1e-6 {
			worse++
		}
	}
	if worse == 0 {
		t.Fatal("greedy should hit local optima on some random inputs")
	}
	_ = total
}

// TestPruningPreservesTopK: lossless pruning must return exactly the same
// top-k — identity, order and scores — as the unpruned SegmentTree scan.
func TestPruningPreservesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var series []dataset.Series
	// 40 noise series and 5 strong peaks.
	for i := 0; i < 40; i++ {
		s := randomSeries(rng, 64)
		s.Z = s.Z + string(rune('a'+i%26)) + string(rune('0'+i/26))
		series = append(series, s)
	}
	for i := 0; i < 5; i++ {
		s := ramp("peak"+string(rune('0'+i)), 0, [2]float64{32, 1}, [2]float64{31, -1})
		series = append(series, s)
	}
	base := seqOpts()
	base.Algorithm = AlgSegmentTree
	base.K = 5
	pruned := base
	pruned.Pruning = true

	q := regexlang.MustParse("u ; d")
	want, err := SearchSeries(series, q, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchSeries(series, q, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
			t.Fatalf("rank %d: pruned %s %.12f != unpruned %s %.12f",
				i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
		}
	}
}

// TestExhaustiveHandlesPositionRefsJointly: for POSITION queries the
// exhaustive engine optimizes jointly and must never score below the
// two-pass engines' final (re-scored) result.
func TestExhaustivePositionRefs(t *testing.T) {
	o := seqOpts().normalized()
	s := ramp("s", 0, [2]float64{8, 2}, [2]float64{8, 0.4})
	v := group(s, groupConfig{zNormalize: true})
	q := regexlang.MustParse("[p=up][p=$0, m=<]")
	ex := solveBest(t, v, q, exhaustiveRun, o)
	dp := solveBest(t, v, q, dpRun, o)
	if ex < dp-1e-9 {
		t.Fatalf("exhaustive %v below DP two-pass %v", ex, dp)
	}
	if ex < 0.3 {
		t.Fatalf("slowing rise should match, got %v", ex)
	}
}

// TestDPStrideCoarsening: a coarser candidate grid can only lower the DP
// score (it searches a subset of segmentations).
func TestDPStrideCoarsening(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		v := group(randomSeries(rng, 80), groupConfig{zNormalize: true})
		q := regexlang.MustParse("u ; d ; u")
		norm, _ := shape.Normalize(q)
		o := seqOpts().normalized()
		ce, err := compileChain(v, norm.Alternatives[0], o)
		if err != nil {
			t.Fatal(err)
		}
		fine := dpRunStride(ce, 0, len(ce.units)-1, 0, v.N()-1, 1)
		coarse := dpRunStride(ce, 0, len(ce.units)-1, 0, v.N()-1, 8)
		if coarse.score > fine.score+1e-9 {
			t.Fatalf("coarse %v beats fine %v", coarse.score, fine.score)
		}
	}
}

// TestChainScoreConsistency: every solver's reported score must equal the
// re-scored value of the ranges it returns (no internal bookkeeping drift).
func TestChainScoreConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	o := seqOpts().normalized()
	for trial := 0; trial < 15; trial++ {
		v := group(randomSeries(rng, 48), groupConfig{zNormalize: true})
		q := regexlang.MustParse("u ; d ; f")
		norm, _ := shape.Normalize(q)
		for _, solver := range []runSolver{dpRun, treeRun, greedyRun} {
			ce, err := compileChain(v, norm.Alternatives[0], o)
			if err != nil {
				t.Fatal(err)
			}
			res := solveChain(ce, solver)
			re := ce.scoreRanges(res.ranges)
			if math.Abs(res.score-re) > 1e-9 {
				t.Fatalf("solver score %v != rescored %v", res.score, re)
			}
		}
	}
}
