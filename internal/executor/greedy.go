package executor

// greedyRun is the greedy segmentation baseline of Section 9: it starts
// with equal-sized visual segments and repeatedly moves one break to the
// midpoint of an adjacent segment (halving it) whenever that improves the
// overall score, stopping at a local optimum. Fast but easily stuck.
func greedyRun(ce *chainEval, t1, t2, lo, hi int) runResult {
	k := t2 - t1 + 1
	if hi-lo < k {
		return infeasibleRun(t1, t2, lo)
	}
	breaks := make([]int, k-1)
	for i := range breaks {
		breaks[i] = lo + (hi-lo)*(i+1)/k
	}
	scoreOf := func(br []int) float64 {
		total := 0.0
		start := lo
		for t := 0; t < k; t++ {
			end := hi
			if t < k-1 {
				end = br[t]
			}
			total += ce.chain.Units[t1+t].Weight * ce.unitScore(t1+t, start, end)
			start = end
		}
		return total
	}
	span := minSpan(ce, k, lo, hi)
	cur := scoreOf(breaks)
	for iter := 0; iter < 64; iter++ {
		improved := false
		for i := range breaks {
			left := lo
			if i > 0 {
				left = breaks[i-1]
			}
			right := hi
			if i+1 < len(breaks) {
				right = breaks[i+1]
			}
			orig := breaks[i]
			// Shrink the left segment by half, then the right one.
			for _, cand := range []int{(left + orig) / 2, (orig + right) / 2} {
				if cand-left < span || right-cand < span || cand == orig {
					continue
				}
				breaks[i] = cand
				if s := scoreOf(breaks); s > cur {
					cur = s
					improved = true
					orig = cand
				} else {
					breaks[i] = orig
				}
			}
		}
		if !improved {
			break
		}
	}
	return runResult{score: cur, ranges: breaksToRanges(lo, hi, breaks)}
}

// exhaustiveRun enumerates every possible break placement — the ground
// truth oracle for small inputs. Unlike the search engines it scores each
// complete segmentation with POSITION references resolved, so it is exact
// even for queries the other engines approximate. Exponential; guarded by
// Options.MaxExhaustivePoints.
func exhaustiveRun(ce *chainEval, t1, t2, lo, hi int) runResult {
	k := t2 - t1 + 1
	if hi-lo < k {
		return infeasibleRun(t1, t2, lo)
	}
	cands := candidates(lo, hi, ce.opts.Stride)
	span := minSpan(ce, k, lo, hi)
	breaks := make([]int, k-1)
	bestBreaks := make([]int, k-1)
	best := -1e300
	fullChain := t1 == 0 && t2 == len(ce.units)-1

	var rec func(t, minIdx int)
	rec = func(t, minIdx int) {
		if t == k-1 {
			if k > 1 && hi-breaks[k-2] < span {
				return
			}
			var s float64
			ranges := breaksToRanges(lo, hi, breaks)
			if fullChain {
				s = ce.scoreRanges(ranges)
			} else {
				s = 0
				for i, r := range ranges {
					s += ce.chain.Units[t1+i].Weight * ce.unitScore(t1+i, r[0], r[1])
				}
			}
			if s > best {
				best = s
				copy(bestBreaks, breaks)
			}
			return
		}
		for ci := minIdx; ci < len(cands)-(k-1-t); ci++ {
			prev := lo
			if t > 0 {
				prev = breaks[t-1]
			}
			if cands[ci]-prev < span {
				continue
			}
			breaks[t] = cands[ci]
			rec(t+1, ci+1)
		}
	}
	rec(0, 1)
	return runResult{score: best, ranges: breaksToRanges(lo, hi, bestBreaks)}
}
