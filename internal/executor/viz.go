// Package executor implements ShapeSearch's pattern-matching engine
// (Sections 5 and 6 of the paper): the pipelined EXTRACT → GROUP → SEGMENT
// → SCORE execution model, the optimal dynamic-programming segmenter, the
// SegmentTree pattern-aware segmenter, the greedy and exhaustive baselines,
// DTW/Euclidean baselines, push-down optimizations, and two-stage
// collective pruning.
package executor

import (
	"math"
	"sync"

	"shapesearch/internal/dataset"
	"shapesearch/internal/segstat"
	"shapesearch/internal/shapeindex"
	"shapesearch/internal/sketch"
)

// normXSpan is the width of the normalized chart space: the full x range of
// every candidate visualization maps to [0, normXSpan] while y is z-scored
// to unit variance. With span 4, a steady rise across the whole chart from
// −1.7σ to +1.7σ fits a ~40° line — matching how the trend reads on a
// rendered chart, which is what the paper's perceptual scores assume.
const normXSpan = 4.0

// Viz is one candidate visualization after the GROUP operator: the raw
// series plus normalized coordinates and prefix summarized statistics that
// allow O(1) least-squares fits over any point range (Theorem 5.1).
type Viz struct {
	Series dataset.Series
	// NX and NY are the normalized coordinates the fits run on.
	NX, NY []float64
	// Prefix[i] summarizes normalized points [0, i).
	Prefix segstat.Prefix
	// Skipped marks point indices the GROUP operator did not summarize
	// because no query range references them (push-down (c), Section 5.4).
	// Fits touching skipped points are invalid; nil means none skipped.
	Skipped []bool

	// Chain-compilation inputs derived purely from the visualization,
	// memoized on first use: every chain of every alternative of every
	// query re-reads them, so they must not be recomputed per compile.
	// Lazy (not filled in group) so directly constructed Viz literals in
	// tests behave identically; the Once makes concurrent workers safe.
	memoOnce sync.Once
	yLo, yHi float64
	amp      float64
	skipPre  []int

	// Sound-pruning-bound inputs, memoized separately (only pruned
	// searches pay for them): see pruneSlopeStats.
	pruneOnce sync.Once
	pstats    pruneStats
}

// pruneStats is the per-visualization state the sound pruning bound reads:
// the R most extreme adjacent-pair slopes from each end with prefix sums
// (for O(1) capped-extreme evaluation at any weight cap), and the
// adjacent-gap irregularity ratio of the normalized grid. R covers the
// weight budget of the default width floor; should a run's cap need deeper
// slopes (a larger MinSegmentFrac), cappedExtreme parks the leftover
// budget on the last stored extreme, which errs outward — looser, never
// unsound.
type pruneStats struct {
	nPairs     int
	low        []float64 // smallest slopes, ascending
	lowPrefix  []float64 // lowPrefix[i] = Σ low[:i]
	high       []float64 // largest slopes, descending
	highPrefix []float64 // highPrefix[i] = Σ high[:i]
	ratio      float64   // max/min adjacent NX gap over valid pairs (+Inf when degenerate)
}

// N reports the number of points.
func (v *Viz) N() int { return len(v.NX) }

// groupConfig controls the GROUP operator.
type groupConfig struct {
	// zNormalize applies z-score normalization to y (disabled when the
	// query constrains y values, Section 5.3).
	zNormalize bool
	// keepRanges, when non-nil, lists the domain-x windows the query
	// references; points outside all windows are marked skipped
	// (push-down (c)). Nil keeps everything.
	keepRanges [][2]float64
}

// group builds a Viz from a series (the GROUP physical operator). Series
// with fewer than two points yield a nil Viz — they cannot host any fit.
func group(s dataset.Series, cfg groupConfig) *Viz {
	n := s.Len()
	if n < 2 {
		return nil
	}
	v := &Viz{Series: s}
	v.NX = make([]float64, n)
	v.NY = make([]float64, n)
	xmin, xmax := s.X[0], s.X[n-1]
	span := xmax - xmin
	if span <= 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		v.NX[i] = (s.X[i] - xmin) / span * normXSpan
	}
	copy(v.NY, s.Y)
	if cfg.zNormalize {
		segstat.ZNormalize(v.NY)
	}
	if cfg.keepRanges != nil {
		v.Skipped = make([]bool, n)
		for i := 0; i < n; i++ {
			v.Skipped[i] = !dataset.InRanges(s.X[i], cfg.keepRanges)
		}
	}
	bins := make([]segstat.Stats, n)
	for i := 0; i < n; i++ {
		if v.Skipped != nil && v.Skipped[i] {
			continue // contributes empty stats; fits over skipped points are invalid anyway
		}
		var b segstat.Stats
		b.Add(v.NX[i], v.NY[i])
		bins[i] = b
	}
	v.Prefix = segstat.BuildPrefix(bins)
	return v
}

// rangeStats returns the summarized statistics of inclusive point range
// [i, j].
func (v *Viz) rangeStats(i, j int) segstat.Stats {
	return v.Prefix.Range(i, j+1)
}

// rangeSlope returns the least-squares slope over inclusive point range
// [i, j] in normalized coordinates; degenerate ranges report ok=false.
func (v *Viz) rangeSlope(i, j int) (float64, bool) {
	return v.rangeStats(i, j).Slope()
}

// indexOfX maps a domain x value to the nearest point index at or after it.
func (v *Viz) indexOfX(x float64) int {
	xs := v.Series.X
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(xs) {
		return len(xs) - 1
	}
	return lo
}

// indexAtOrBefore maps a domain x value to the nearest point index at or
// before it.
func (v *Viz) indexAtOrBefore(x float64) int {
	i := v.indexOfX(x)
	if i > 0 && v.Series.X[i] > x {
		return i - 1
	}
	return i
}

// padRanges widens each domain window slightly so boundary points survive
// rounding when the GROUP skip-mask is applied.
func padRanges(ranges [][2]float64, pad float64) [][2]float64 {
	out := make([][2]float64, len(ranges))
	for i, r := range ranges {
		out[i] = [2]float64{r[0] - pad, r[1] + pad}
	}
	return out
}

// memoize fills the lazily derived per-viz statistics exactly once.
func (v *Viz) memoize() {
	v.memoOnce.Do(func() {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range v.Series.Y {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		v.yLo, v.yHi = lo, hi
		v.amp = segstat.Std(v.NY)
		if v.amp == 0 {
			v.amp = 1
		}
		if v.Skipped != nil {
			pre := make([]int, len(v.Skipped)+1)
			for i, s := range v.Skipped {
				pre[i+1] = pre[i]
				if s {
					pre[i+1]++
				}
			}
			v.skipPre = pre
		}
	})
}

// pruneSlopeStats fills and returns the sound pruning bound's per-viz
// inputs exactly once (safe across concurrent workers). Pairs touching
// skipped points are excluded — no valid unit range can contain them, so
// they cannot influence any fitted slope the bound must cover.
func (v *Viz) pruneSlopeStats() *pruneStats {
	v.pruneOnce.Do(func() {
		n := v.N()
		// R extremes per end cover the capped-weight budget of the default
		// width floor (≈ m/1.5 slopes for m = 0.05·n points, see
		// maxSlopeWeight); +2 absorbs rounding.
		r := (n-1)/30 + 2
		ext := segstat.NewExtremes(r)
		dMin, dMax := math.Inf(1), math.Inf(-1)
		pairs := 0
		for i := 0; i+1 < n; i++ {
			if v.Skipped != nil && (v.Skipped[i] || v.Skipped[i+1]) {
				continue
			}
			s, ok := v.rangeSlope(i, i+1)
			if !ok {
				continue
			}
			pairs++
			ext.Observe(s)
			d := v.NX[i+1] - v.NX[i]
			if d < dMin {
				dMin = d
			}
			if d > dMax {
				dMax = d
			}
		}
		lowPrefix, highPrefix := ext.PrefixSums()
		ratio := math.Inf(1)
		if dMin > 0 {
			ratio = dMax / dMin
		}
		v.pstats = pruneStats{nPairs: pairs, low: ext.Low(), lowPrefix: lowPrefix, high: ext.High(), highPrefix: highPrefix, ratio: ratio}
	})
	return &v.pstats
}

// indexPAAWindows is the resolution of the coarse direction sketch the
// corpus index buckets by. It only shapes bucket composition (envelope
// tightness), never soundness, so the exact value is a tuning knob.
const indexPAAWindows = 16

// boundSummary exports the visualization's query-independent bound state in
// the corpus index's Summary form: the pruneSlopeStats extremes and prefix
// sums (shared, not copied — both sides treat them as immutable), the grid
// ratio, the evaluation-failure flag, and the coarse direction sketch used
// as the bucketing key.
func (v *Viz) boundSummary() *shapeindex.Summary {
	ps := v.pruneSlopeStats()
	return &shapeindex.Summary{
		N:          v.N(),
		NPairs:     ps.nPairs,
		Low:        ps.low,
		LowPrefix:  ps.lowPrefix,
		High:       ps.high,
		HighPrefix: ps.highPrefix,
		Ratio:      ps.ratio,
		MayFail:    v.Skipped != nil || math.IsInf(ps.ratio, 1),
		UpDown:     sketch.Directions(v.NX, v.NY, indexPAAWindows),
	}
}

// yRange reports the min and max of the raw y values (memoized).
func (v *Viz) yRange() (lo, hi float64) {
	v.memoize()
	return v.yLo, v.yHi
}

// ampUnit is one standard deviation of the normalized y values (memoized);
// quantifier occurrences must move at least a quarter of it to count as a
// perceptible rise or fall. Never zero: flat charts report 1.
func (v *Viz) ampUnit() float64 {
	v.memoize()
	return v.amp
}

// skipPrefix returns the skipped-point prefix sums (memoized); nil when the
// GROUP operator summarized everything.
func (v *Viz) skipPrefix() []int {
	v.memoize()
	return v.skipPre
}
