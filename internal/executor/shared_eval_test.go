package executor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
)

// naivePlan returns a copy of the plan with the shared-segmentation
// metadata stripped: evalViz, coarseScore and soundUpperBound all fall back
// to the naive per-alternative loop — the reference behavior the shared
// path must reproduce byte-identically.
func naivePlan(p *Plan) *Plan {
	o := *p.opts
	o.chainMeta = nil
	np := *p
	np.opts = &o
	return &np
}

// sharedEvalQueries cover the alternative-multiplying constructs: optional
// units, OR over chains, repeated patterns within one chain, pinned hybrid
// chains, quantifiers and nested sub-queries.
var sharedEvalQueries = []string{
	"u ; d ; u ; d",
	"u? ; d ; u?",
	"u?;d;u?;d;u?",
	"(u;d)|(d;u)|(u;f;d)",
	"u? ; [p=down, x.s=20, x.e=60] ; u",
	"[p=up, m={2,}] ; d?",
	"[p=[[p=up][p=down]]] ; u?",
}

// TestSharedEvalMatchesNaive: shared-skeleton + memoized evaluation must be
// byte-identical — score bits, ranges, break points, ranking — to the naive
// per-alternative loop, across corpora × chain shapes × worker counts,
// pruned runs included (the style of TestPooledKernelMatchesFreshContexts,
// lifted to the full pipeline).
func TestSharedEvalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	corpora := [][]dataset.Series{
		allocSeries(12, 90),
		allocSeries(24, 150),
	}
	// A third corpus with irregular lengths.
	var mixed []dataset.Series
	for i := 0; i < 16; i++ {
		s := randomSeries(rng, 70+rng.Intn(90))
		s.Z = fmt.Sprintf("m%03d", i)
		mixed = append(mixed, s)
	}
	corpora = append(corpora, mixed)

	for _, q := range sharedEvalQueries {
		for _, workers := range []int{1, 2, 4} {
			for _, pruning := range []bool{false, true} {
				opts := seqOpts()
				opts.Algorithm = AlgSegmentTree
				opts.Parallelism = workers
				opts.Pruning = pruning
				plan, err := Compile(regexlang.MustParse(q), opts)
				if err != nil {
					t.Fatal(err)
				}
				if plan.opts.chainMeta == nil {
					t.Fatalf("%s: compiled plan has no chain metadata", q)
				}
				for ci, series := range corpora {
					vizs := plan.GroupSeries(series)
					got, err := plan.RunGrouped(vizs)
					if err != nil {
						t.Fatal(err)
					}
					want, err := naivePlan(plan).RunGrouped(vizs)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s workers=%d pruning=%v corpus=%d", q, workers, pruning, ci)
					if len(got) != len(want) {
						t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
					}
					for i := range got {
						g, w := got[i], want[i]
						if g.Z != w.Z {
							t.Fatalf("%s: rank %d is %q, want %q", label, i, g.Z, w.Z)
						}
						if math.Float64bits(g.Score) != math.Float64bits(w.Score) {
							t.Fatalf("%s: %q score %v != naive %v", label, g.Z, g.Score, w.Score)
						}
						if len(g.Ranges) != len(w.Ranges) {
							t.Fatalf("%s: %q range count %d != %d", label, g.Z, len(g.Ranges), len(w.Ranges))
						}
						for r := range g.Ranges {
							if g.Ranges[r] != w.Ranges[r] {
								t.Fatalf("%s: %q range %d %v != %v", label, g.Z, r, g.Ranges[r], w.Ranges[r])
							}
						}
						for b := range g.BreakXs {
							if math.Float64bits(g.BreakXs[b]) != math.Float64bits(w.BreakXs[b]) {
								t.Fatalf("%s: %q break %d %v != %v", label, g.Z, b, g.BreakXs[b], w.BreakXs[b])
							}
						}
					}
				}
			}
		}
	}
}

// TestSharedEvalMatchesNaiveDP covers the DP and greedy solvers over the
// same shared memo (the SegmentTree is exercised above).
func TestSharedEvalMatchesNaiveDP(t *testing.T) {
	series := allocSeries(10, 80)
	for _, alg := range []Algorithm{AlgDP, AlgGreedy} {
		for _, q := range []string{"u?;d;u?", "(u;d)|(d;u)", "u ; d ; u"} {
			opts := seqOpts()
			opts.Algorithm = alg
			plan, err := Compile(regexlang.MustParse(q), opts)
			if err != nil {
				t.Fatal(err)
			}
			vizs := plan.GroupSeries(series)
			got, err := plan.RunGrouped(vizs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := naivePlan(plan).RunGrouped(vizs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Z != want[i].Z || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
					t.Fatalf("%v/%s: rank %d got %q %v, want %q %v",
						alg, q, i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
				}
			}
		}
	}
}

// TestSharedFloorLockFree hammers sharedTopK from concurrent adders and
// lock-free floor readers (run with -race): the published floor must always
// be a value the heap actually held, monotone non-decreasing, and equal to
// the exact heap floor once the writers stop.
func TestSharedFloorLockFree(t *testing.T) {
	s := newSharedTopK(8)
	const (
		writers = 4
		readers = 2
		perW    = 2000
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			last := math.Inf(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := s.fastFloor()
				if f < last {
					t.Errorf("floor went backwards: %v after %v", f, last)
					return
				}
				last = f
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				s.add(rng.Float64())
			}
		}(int64(w))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if f, ok := s.floor(); !ok || math.Float64bits(f) != math.Float64bits(s.fastFloor()) {
		t.Fatalf("published floor %v != heap floor %v (ok=%v)", s.fastFloor(), f, ok)
	}
}

// TestFilterSeriesWithDataBinarySearch pins the binary-searched push-down
// filter against the linear-scan definition, sorted and unsorted inputs
// included.
func TestFilterSeriesWithDataBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	linear := func(series []dataset.Series, ranges [][2]float64) []dataset.Series {
		out := series[:0:0]
		for _, s := range series {
			keep := true
			for _, r := range ranges {
				found := false
				for _, x := range s.X {
					if x >= r[0] && x <= r[1] {
						found = true
						break
					}
				}
				if !found {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, s)
			}
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		var series []dataset.Series
		for i := 0; i < 8; i++ {
			n := 5 + rng.Intn(40)
			xs := make([]float64, n)
			ys := make([]float64, n)
			x := rng.Float64() * 50
			for j := range xs {
				x += rng.Float64() * 3
				xs[j] = x
				ys[j] = rng.NormFloat64()
			}
			if i%3 == 2 { // unsorted: exercise the fallback
				xs[0], xs[n-1] = xs[n-1], xs[0]
			}
			series = append(series, dataset.Series{Z: fmt.Sprintf("s%d", i), X: xs, Y: ys})
		}
		var ranges [][2]float64
		for r := 0; r < 1+rng.Intn(3); r++ {
			lo := rng.Float64() * 120
			ranges = append(ranges, [2]float64{lo, lo + rng.Float64()*40})
		}
		got := filterSeriesWithData(series, ranges)
		want := linear(series, ranges)
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d series, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Z != want[i].Z {
				t.Fatalf("trial %d: kept %q, want %q", trial, got[i].Z, want[i].Z)
			}
		}
	}
}

// fuzzyAltSeries is a Fig-13b-scale corpus (Weather substitute subsampled
// as in the root benchmarks) for the multi-alternative benchmarks.
func fuzzyAltSeries(b *testing.B) []dataset.Series {
	b.Helper()
	ds := gen.Weather()
	series, err := dataset.Extract(ds.Table, ds.Spec)
	if err != nil {
		b.Fatal(err)
	}
	sub := make([]dataset.Series, 0, len(series)/8+1)
	for i := 0; i < len(series); i += 8 {
		sub = append(sub, series[i])
	}
	return sub
}

// BenchmarkFuzzyAlternatives measures shared-segmentation evaluation on a
// query whose optional units expand into 8 alternative chains
// (u?;d;u?;d;u? — the SlopeSeeker-style many-near-identical-variants
// workload). Shared is the compiled-plan path (signature memo + shared
// grids + bound dedup); Naive re-solves every alternative independently,
// which is what every candidate paid before this optimization.
func BenchmarkFuzzyAlternatives(b *testing.B) {
	series := fuzzyAltSeries(b)
	for _, cfg := range []struct {
		name    string
		naive   bool
		pruning bool
	}{
		{"Shared", false, false},
		{"Naive", true, false},
		{"SharedPruned", false, true},
		{"NaivePruned", true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Algorithm = AlgSegmentTree
			opts.Parallelism = 1
			opts.Pruning = cfg.pruning
			plan, err := Compile(regexlang.MustParse("u?;d;u?;d;u?"), opts)
			if err != nil {
				b.Fatal(err)
			}
			if cfg.naive {
				plan = naivePlan(plan)
			}
			// Pre-grouped candidates: the serving hot path (the candidate
			// cache skips EXTRACT + GROUP), and the same constant in both
			// arms either way.
			vizs := plan.GroupSeries(series)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.RunGrouped(vizs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrunedFloorSeeding pins the cost of seeding the pruning floor on
// the separated workload. The paper's stage-1 coarse sampling was deleted
// after this ablation showed it losing on every workload once the
// bound-first scan existed (DriftPeaks: 10.5ms with vs 9.2ms without;
// RealEstate: 35.3 vs 34.3; 8-alternative fuzzy: 3.8 vs 2.5 — the
// measurement recorded in CHANGES.md); what remains is the floor seeded by
// the first exactly-scored, highest-bound candidates.
func BenchmarkPrunedFloorSeeding(b *testing.B) {
	tbl := gen.DriftPeaks(400, 256, 11)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "series", X: "t", Y: "v"})
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Algorithm = AlgSegmentTree
	opts.Parallelism = 1
	opts.Pruning = true
	plan, err := Compile(regexlang.MustParse("u ; d ; u ; d"), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(series); err != nil {
			b.Fatal(err)
		}
	}
}
