package executor

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
	"shapesearch/internal/shapeindex"
)

func mustParseAll(queries []string) []shape.Query {
	qs := make([]shape.Query, len(queries))
	for i, q := range queries {
		qs[i] = regexlang.MustParse(q)
	}
	return qs
}

// indexedQueries spans the bound regimes the envelope has to dominate:
// plain chains (one bound group, fuzzy runs), longer chains (narrower span
// floor), alternation (per-alternative max), pinned chains (anchored
// reconstruction, raw-extreme fallback), and quantified units (conservative
// [-1,1] unit bounds).
var indexedQueries = []string{
	"u ; d",
	"u ; d ; u ; d",
	"f ; u ; d",
	"(u ; d) | (d ; u)",
	"[p=up, x.s=0, x.e=10] ; d ; u",
	"[p=up, m={2,}] ; d",
}

// indexedCorpora returns the test corpora: randomized mixed regimes (noise,
// monotone drifts, planted peaks), the separated DriftPeaks corpus the
// benchmarks use, and a degenerate all-same corpus where every envelope
// equals its members.
func indexedCorpora() map[string][]dataset.Series {
	out := map[string][]dataset.Series{}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out[fmt.Sprintf("mixed-%d", seed)] = mixedCorpus(rng, 100, 64+rng.Intn(48))
	}
	out["driftpeaks"] = gen.DriftPeaksSeries(400, 32, 6, 1)
	flat := make([]dataset.Series, 12)
	for i := range flat {
		flat[i] = mkSeries(fmt.Sprintf("same%02d", i), 1, 2, 3, 2, 1, 2, 3, 2, 1)
	}
	out["uniform"] = flat
	return out
}

// TestIndexedBoundDominatesSound pins the invariant the whole index stands
// on: for every node of the built index and every compiled query, the
// envelope upper bound must be at least every member's sound upper bound.
// If this ever fails, best-first traversal could skip a subtree holding a
// true top-k member and indexed search would silently stop being lossless.
func TestIndexedBoundDominatesSound(t *testing.T) {
	for name, series := range indexedCorpora() {
		t.Run(name, func(t *testing.T) {
			var plans []*Plan
			for _, query := range indexedQueries {
				opts := DefaultOptions()
				opts.Algorithm = AlgSegmentTree
				opts.Pruning = true
				plan, err := Compile(regexlang.MustParse(query), opts)
				if err != nil {
					t.Fatal(err)
				}
				plans = append(plans, plan)
			}
			vizs := plans[0].GroupSeries(series)
			for _, shards := range []int{1, 3} {
				ix := BuildVizIndex(vizs, shards)
				ec := newEvalCtx()
				for qi, plan := range plans {
					o := plan.opts
					ix.ix.Walk(func(env *shapeindex.Summary, members []int32) {
						envUB := envelopeUpperBound(ec, env, plan.norm, o)
						for _, id := range members {
							mUB := soundUpperBound(ec, ix.vizs[id], plan.norm, o)
							if envUB < mUB-boundEps {
								t.Fatalf("q=%q shards=%d: envelope bound %.12f < member %d sound bound %.12f",
									indexedQueries[qi], shards, envUB, id, mUB)
							}
						}
					})
				}
			}
		})
	}
}

// TestIndexedSearchMatchesScan is the indexed extension of the lossless
// contract: whatever the worker count, shard count, query shape or k, the
// indexed ranking — identities, order and exact scores — must be
// byte-identical to the unpruned sequential scan. (The unpruned scan is the
// ground truth on purpose: above lazyIndexMinCorpus the pruned scan itself
// routes through the index.)
func TestIndexedSearchMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		series := mixedCorpus(rng, 120, 64+rng.Intn(32))
		for _, query := range indexedQueries {
			q := regexlang.MustParse(query)
			for _, k := range []int{1, 5} {
				base := DefaultOptions()
				base.Algorithm = AlgSegmentTree
				base.Parallelism = 1
				base.K = k
				base.Pruning = false
				want, err := SearchSeries(series, q, base)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					opts := base
					opts.Pruning = true
					opts.Parallelism = workers
					plan, err := Compile(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					vizs := plan.GroupSeries(series)
					for _, shards := range []int{1, 3} {
						got, err := plan.RunIndexed(BuildVizIndex(vizs, shards))
						if err != nil {
							t.Fatal(err)
						}
						assertSameResults(t,
							fmt.Sprintf("seed=%d q=%q k=%d workers=%d shards=%d", seed, query, k, workers, shards),
							want, got)
					}
				}
			}
		}
	}
}

// TestIndexedBatchMatchesScan runs the whole query set as one MultiPlan over
// one shared traversal and demands every query's ranking equal its own
// unpruned sequential scan — the batch path must not let one query's floor
// prune another query's candidates.
func TestIndexedBatchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	series := mixedCorpus(rng, 150, 80)
	queries := indexedQueries

	opts := DefaultOptions()
	opts.Algorithm = AlgSegmentTree
	opts.Parallelism = 4
	opts.K = 5
	opts.Pruning = true

	mp, err := CompileBatch(mustParseAll(queries), opts)
	if err != nil {
		t.Fatal(err)
	}
	vizs := mp.plans[0].GroupSeries(series)
	for _, shards := range []int{1, 3} {
		got, err := mp.RunIndexed(BuildVizIndex(vizs, shards))
		if err != nil {
			t.Fatal(err)
		}
		for qi, query := range queries {
			base := opts
			base.Parallelism = 1
			base.Pruning = false
			want, err := SearchSeries(series, regexlang.MustParse(query), base)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fmt.Sprintf("shards=%d q=%q", shards, query), want, got[qi])
		}
	}
}

// TestLargeCorpusIndexedSmoke exercises the lazy auto-index path (corpus
// above lazyIndexMinCorpus) end to end on a separated corpus and checks the
// index actually skips work: results identical to the unpruned scan, and
// strictly fewer members visited than the corpus holds.
func TestLargeCorpusIndexedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-corpus smoke test skipped in -short mode")
	}
	series := gen.DriftPeaksSeries(6000, 32, 12, 7)
	q := regexlang.MustParse("u ; d ; u")

	base := DefaultOptions()
	base.Algorithm = AlgSegmentTree
	base.Parallelism = 4
	base.K = 10
	base.Pruning = false
	want, err := SearchSeries(series, q, base)
	if err != nil {
		t.Fatal(err)
	}

	// Pruned Plan.Run auto-indexes at this size — the path servers without a
	// prebuilt index take.
	opts := base
	opts.Pruning = true
	plan, err := Compile(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(series)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "lazy auto-index", want, got)

	// Explicit index with stats: the envelope bounds must skip part of the
	// corpus outright on a separated workload.
	var st IndexStats
	got, err = plan.RunIndexedStatsContext(context.Background(), BuildVizIndex(plan.GroupSeries(series), 0), &st)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "explicit index", want, got)
	if st.Candidates != 6000 {
		t.Fatalf("Candidates = %d, want 6000", st.Candidates)
	}
	if st.Visited >= st.Candidates {
		t.Fatalf("index visited the whole corpus (%d of %d) — envelope bounds skipped nothing",
			st.Visited, st.Candidates)
	}
	t.Logf("visited %d of %d candidates (%d leaves, %d scored)",
		st.Visited, st.Candidates, st.Leaves, st.Scored)
}
