package executor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

// batchQueries is the property-test query pool: the shared fuzzy set plus
// optional-unit spellings, so batches mix heavy signature overlap (shared
// memo entries) with disjoint alternatives.
func batchQueries(t *testing.T) []shape.Query {
	t.Helper()
	qs := fuzzyQueries()
	for _, s := range []string{"u? ; d", "u ; d? ; u"} {
		qs = append(qs, regexlang.MustParse(s))
	}
	return qs
}

// requireSameResults asserts got is byte-identical to want: same order,
// same Z, same Score bits, same Ranges, same BreakXs bits.
func requireSameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Z != g.Z {
			t.Fatalf("%s: result %d Z = %q, want %q", label, i, g.Z, w.Z)
		}
		if math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: result %d (%s) score bits %x, want %x (%v vs %v)",
				label, i, g.Z, math.Float64bits(g.Score), math.Float64bits(w.Score), g.Score, w.Score)
		}
		if len(w.Ranges) != len(g.Ranges) {
			t.Fatalf("%s: result %d (%s) has %d ranges, want %d", label, i, g.Z, len(g.Ranges), len(w.Ranges))
		}
		for j := range w.Ranges {
			if w.Ranges[j] != g.Ranges[j] {
				t.Fatalf("%s: result %d (%s) range %d = %v, want %v", label, i, g.Z, j, g.Ranges[j], w.Ranges[j])
			}
		}
		if len(w.BreakXs) != len(g.BreakXs) {
			t.Fatalf("%s: result %d (%s) has %d breaks, want %d", label, i, g.Z, len(g.BreakXs), len(w.BreakXs))
		}
		for j := range w.BreakXs {
			if math.Float64bits(w.BreakXs[j]) != math.Float64bits(g.BreakXs[j]) {
				t.Fatalf("%s: result %d (%s) break %d = %v, want %v", label, i, g.Z, j, g.BreakXs[j], w.BreakXs[j])
			}
		}
	}
}

// TestSearchBatchMatchesSequential is the batch-execution correctness
// property: over random corpora, query subsets, worker counts, and pruning
// settings, MultiPlan results are byte-identical — score bits, ranking,
// Ranges, BreakXs — to running each compiled plan independently. This is
// the contract that makes the server's batch endpoint transparent.
func TestSearchBatchMatchesSequential(t *testing.T) {
	pool := batchQueries(t)
	rng := rand.New(rand.NewSource(61))
	corpora := [][2]int{{4, 30}, {9, 70}, {14, 120}}
	for trial, shapeOf := range corpora {
		series := make([]dataset.Series, shapeOf[0])
		for i := range series {
			s := randomSeries(rng, shapeOf[1])
			s.Z = fmt.Sprintf("z%02d", i)
			series[i] = s
		}
		// A random query subset per trial, with repeats allowed so the
		// batch contains identical plans (maximal sharing).
		nq := 2 + rng.Intn(len(pool))
		qs := make([]shape.Query, nq)
		for i := range qs {
			qs[i] = pool[rng.Intn(len(pool))]
		}
		for _, workers := range []int{1, 4} {
			for _, pruning := range []bool{false, true} {
				label := fmt.Sprintf("trial%d/w%d/prune%v", trial, workers, pruning)
				opts := DefaultOptions()
				opts.Parallelism = workers
				opts.Pruning = pruning
				opts.K = 5
				plans := make([]*Plan, nq)
				for i, q := range qs {
					p, err := Compile(q, opts)
					if err != nil {
						t.Fatalf("%s: Compile(%d): %v", label, i, err)
					}
					plans[i] = p
				}
				mp, err := NewMultiPlan(plans)
				if err != nil {
					t.Fatalf("%s: NewMultiPlan: %v", label, err)
				}
				got, err := mp.Run(series)
				if err != nil {
					t.Fatalf("%s: batch Run: %v", label, err)
				}
				if len(got) != nq {
					t.Fatalf("%s: got %d result sets, want %d", label, len(got), nq)
				}
				for i, p := range plans {
					want, err := p.Run(series)
					if err != nil {
						t.Fatalf("%s: sequential Run(%d): %v", label, i, err)
					}
					requireSameResults(t, fmt.Sprintf("%s/q%d", label, i), want, got[i])
				}
			}
		}
	}
}

// TestMultiPlanDoesNotMutateInputs pins NewMultiPlan's immutability
// contract: the caller's plans keep their single-query metadata and stay
// usable (and bit-identical) after batch construction and execution.
func TestMultiPlanDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	series := []dataset.Series{}
	for i := 0; i < 6; i++ {
		s := randomSeries(rng, 50)
		s.Z = fmt.Sprintf("z%d", i)
		series = append(series, s)
	}
	opts := seqOpts()
	opts.K = 3
	p1, err := Compile(regexlang.MustParse("u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(regexlang.MustParse("d ; u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	before1, err := p1.Run(series)
	if err != nil {
		t.Fatal(err)
	}
	meta1 := p1.opts.chainMeta
	mp, err := NewMultiPlan([]*Plan{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Run(series); err != nil {
		t.Fatal(err)
	}
	if p1.opts.chainMeta != meta1 {
		t.Fatal("NewMultiPlan replaced the input plan's chainMeta")
	}
	after1, err := p1.Run(series)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "p1 after batch", before1, after1)
}

// TestNewMultiPlanRejectsIncompatible: plans whose options disagree on a
// score-relevant field cannot share batch evaluation state.
func TestNewMultiPlanRejectsIncompatible(t *testing.T) {
	a, err := Compile(regexlang.MustParse("u ; d"), seqOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := seqOpts()
	o.Stride = 4
	b, err := Compile(regexlang.MustParse("d ; u"), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiPlan([]*Plan{a, b}); err == nil {
		t.Fatal("NewMultiPlan accepted plans with different strides")
	}
	// K is per-query state (each query keeps its own heap) and MAY differ.
	o2 := seqOpts()
	o2.K = 1
	c, err := Compile(regexlang.MustParse("d ; u"), o2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiPlan([]*Plan{a, c}); err != nil {
		t.Fatalf("NewMultiPlan rejected plans differing only in K: %v", err)
	}
}

// TestPlanFingerprint pins the compiled-plan cache keying contract:
// syntactically different spellings that normalize to the same
// alternatives collide, and any weight difference separates.
func TestPlanFingerprint(t *testing.T) {
	compile := func(s string) *Plan {
		t.Helper()
		p, err := Compile(regexlang.MustParse(s), seqOpts())
		if err != nil {
			t.Fatalf("Compile(%q): %v", s, err)
		}
		return p
	}
	// `u? ; d` expands the optional into two alternatives
	// [{u .5, d .5}, {d 1}]; spelling those alternatives out through ⊕
	// normalizes to the same chains in the same order.
	a := compile("u? ; d")
	b := compile("(u ; d) ⊕ d")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equivalent spellings did not collide:\n%q\n%q", a.Fingerprint(), b.Fingerprint())
	}
	// Parenthesized concat nests weight division: `u ; (d ; u)` weights
	// .5/.25/.25 versus 1/3 each for `u ; d ; u`. Same unit structure,
	// different weights — must NOT collide (weights are exact IEEE bits).
	c := compile("u ; d ; u")
	d := compile("u ; (d ; u)")
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("queries with different unit weights collided")
	}
	// And trivially: same text, same fingerprint; different shape, different.
	if compile("u ; d").Fingerprint() != compile("u ; d").Fingerprint() {
		t.Fatal("identical queries produced different fingerprints")
	}
	if compile("u ; d").Fingerprint() == compile("d ; u").Fingerprint() {
		t.Fatal("different queries collided")
	}
}
