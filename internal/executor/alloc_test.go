package executor

import (
	"fmt"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
)

// allocSeries builds a deterministic candidate collection big enough that
// per-candidate allocations dominate any per-run fixed cost.
func allocSeries(n, points int) []dataset.Series {
	rng := rand.New(rand.NewSource(7))
	series := make([]dataset.Series, n)
	for i := range series {
		s := randomSeries(rng, points)
		s.Z = fmt.Sprintf("s%03d", i)
		series[i] = s
	}
	return series
}

// TestSteadyStateAllocs pins the scoring kernel's allocation budget:
// steady-state Plan.RunGrouped must not allocate per candidate beyond the
// few escaping result slices (the winning range assignment and BreakXs) —
// everything else lives in the pooled per-worker evalCtx. Before the
// pooled kernel the SegmentTree path allocated ~400 heap objects per
// candidate; the budget below would fail by an order of magnitude if
// per-candidate garbage crept back in.
func TestSteadyStateAllocs(t *testing.T) {
	const (
		nSeries = 16
		points  = 120
		// Per run: slots/heap/result bookkeeping plus ~3 escaping slices
		// per candidate. 10 × nSeries is an order of magnitude below the
		// pre-pooling kernel's budget.
		budget = 10 * nSeries
	)
	series := allocSeries(nSeries, points)
	for _, alg := range []struct {
		name    string
		a       Algorithm
		pruning bool
	}{{"DP", AlgDP, false}, {"SegmentTree", AlgSegmentTree, false},
		// The pruned pipeline's per-candidate bound check must be free in
		// steady state: slope stats are memoized on the Viz (filled during
		// warm-up) and the pin/run scratch lives on the pooled evalCtx.
		// Only per-run bookkeeping (slots, order, heaps) may allocate,
		// and that is covered by the same budget.
		{"SegmentTreePruned", AlgSegmentTree, true}} {
		t.Run(alg.name, func(t *testing.T) {
			opts := seqOpts()
			opts.Algorithm = alg.a
			opts.Pruning = alg.pruning
			plan, err := Compile(regexlang.MustParse("u ; d ; u"), opts)
			if err != nil {
				t.Fatal(err)
			}
			vizs := plan.GroupSeries(series)
			if len(vizs) != nSeries {
				t.Fatalf("grouped %d vizs, want %d", len(vizs), nSeries)
			}
			// Warm the context pool and the per-viz memos.
			if _, err := plan.RunGrouped(vizs); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := plan.RunGrouped(vizs); err != nil {
					t.Fatal(err)
				}
			})
			if avg > budget {
				t.Errorf("steady-state RunGrouped allocates %.0f objects per run, budget %d", avg, budget)
			}
		})
	}
}

// TestSteadyStateAllocsBatch extends the steady-state budget to the batch
// pipeline: runMulti's per-run bookkeeping (per-query slots, heaps and
// bound vectors) scales with Q, while per-candidate evaluation stays on
// the pooled evalCtx exactly as in the single-plan kernel. The budget is
// the single-plan budget times Q plus the same per-run overhead — if
// per-candidate garbage crept into the shared-memo path it would blow
// through by an order of magnitude.
func TestSteadyStateAllocsBatch(t *testing.T) {
	const (
		nSeries = 16
		points  = 120
		nq      = 4
		budget  = 12 * nSeries * nq
	)
	series := allocSeries(nSeries, points)
	queries := []string{"u ; d ; u", "d ; u ; d", "u ; d", "u ; d ; u ; d"}
	for _, pruning := range []bool{false, true} {
		t.Run(fmt.Sprintf("pruning=%v", pruning), func(t *testing.T) {
			opts := seqOpts()
			opts.Algorithm = AlgSegmentTree
			opts.Pruning = pruning
			plans := make([]*Plan, nq)
			for i, q := range queries {
				p, err := Compile(regexlang.MustParse(q), opts)
				if err != nil {
					t.Fatal(err)
				}
				plans[i] = p
			}
			mp, err := NewMultiPlan(plans)
			if err != nil {
				t.Fatal(err)
			}
			vizs := plans[0].GroupSeries(series)
			if _, err := mp.RunGrouped(vizs); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := mp.RunGrouped(vizs); err != nil {
					t.Fatal(err)
				}
			})
			if avg > budget {
				t.Errorf("steady-state batch RunGrouped allocates %.0f objects per run, budget %d", avg, budget)
			}
		})
	}
}

// TestSteadyStateAllocsQuantifier covers the quantifier hot path (pair
// scores, run detection, run scoring), which allocated per evaluated range
// before the pooled kernel.
func TestSteadyStateAllocsQuantifier(t *testing.T) {
	series := allocSeries(8, 100)
	opts := seqOpts()
	opts.Algorithm = AlgSegmentTree
	plan, err := Compile(regexlang.MustParse("[p=up, m={2,}]"), opts)
	if err != nil {
		t.Fatal(err)
	}
	vizs := plan.GroupSeries(series)
	if _, err := plan.RunGrouped(vizs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := plan.RunGrouped(vizs); err != nil {
			t.Fatal(err)
		}
	})
	// The quantifier itself still sorts occurrence scores (one interface
	// allocation per positive evaluation); the budget tolerates that while
	// forbidding the old per-range pair/run slice churn.
	if budget := 60.0 * float64(len(series)); avg > budget {
		t.Errorf("quantifier RunGrouped allocates %.0f objects per run, budget %.0f", avg, budget)
	}
}

// TestPooledKernelMatchesFreshContexts: reusing one evalCtx across many
// candidates must give byte-identical scores and ranges to compiling each
// chain in a fresh context (the pre-pooling behavior preserved by
// compileChain).
func TestPooledKernelMatchesFreshContexts(t *testing.T) {
	series := allocSeries(12, 90)
	for _, q := range []string{"u ; d ; u", "[p=up, m={2,}]", "u ; [p=down, x.s=20, x.e=60] ; u"} {
		for _, alg := range []Algorithm{AlgDP, AlgSegmentTree, AlgGreedy} {
			opts := seqOpts()
			opts.Algorithm = alg
			plan, err := Compile(regexlang.MustParse(q), opts)
			if err != nil {
				t.Fatal(err)
			}
			vizs := plan.GroupSeries(series)
			// Pooled path: one worker context reused across all candidates,
			// exactly like a pipeline worker. Fresh path: a new context per
			// candidate, so no buffer ever carries state across candidates.
			reused := newEvalCtx()
			for vi, v := range vizs {
				pooledSc, pooledRanges, err := evalViz(reused, v, plan.norm, plan.opts, plan.solver)
				if err != nil {
					t.Fatal(err)
				}
				freshSc, freshRanges, err := evalViz(newEvalCtx(), v, plan.norm, plan.opts, plan.solver)
				if err != nil {
					t.Fatal(err)
				}
				if pooledSc != freshSc {
					t.Fatalf("%s/%v viz %d: pooled score %v != fresh score %v", q, alg, vi, pooledSc, freshSc)
				}
				if len(pooledRanges) != len(freshRanges) {
					t.Fatalf("%s/%v viz %d: range count differs", q, alg, vi)
				}
				for i := range pooledRanges {
					if pooledRanges[i] != freshRanges[i] {
						t.Fatalf("%s/%v viz %d: range %d %v != %v", q, alg, vi, i, pooledRanges[i], freshRanges[i])
					}
				}
			}
		}
	}
}
