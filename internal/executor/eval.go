package executor

import (
	"fmt"
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// chainEval evaluates one normalized chain (a weighted CONCAT sequence of
// units) against one visualization. Engines (DP, SegmentTree, greedy,
// exhaustive) decide which point range each unit covers; chainEval scores a
// unit over a range, and combines unit scores into the chain score.
type chainEval struct {
	// ctx owns every scratch buffer the evaluation reuses; non-nil for any
	// chainEval built through compile/compileChain.
	ctx   *evalCtx
	viz   *Viz
	chain shape.Chain
	units []compiledUnit
	opts  *Options
	// skippedPrefix[i] counts skipped points before index i; nil when the
	// GROUP operator summarized everything.
	skippedPrefix []int
	// refSlopes holds each unit's fitted slope once a segmentation is
	// chosen; POSITION references read it during the re-scoring pass.
	// nil during the search pass (references provisionally score 1).
	refSlopes []float64
	// sigs holds each unit's interned signature id for the per-candidate
	// unit-score memo; nil disables memoization (chains compiled without
	// plan metadata, nested sub-queries, units containing POSITION
	// references carry −1 individually). See Options.chainMeta.
	sigs []int
	// tolX and tolY are the location-satisfaction tolerances.
	tolX, tolY float64
	// ampUnit is one standard deviation of the normalized y values (1.0
	// under z-normalization); quantifier occurrences must move at least a
	// quarter of it to count as a perceptible rise or fall.
	ampUnit float64
}

type compiledUnit struct {
	unit shape.Unit
	// pinStart and pinEnd are pinned boundaries as point indices; −1 when
	// the side is free. pinErr marks pins that fall outside the data.
	pinStart, pinEnd int
	pinErr           bool
	// nested holds pre-normalized sub-queries of PatNested segments,
	// keyed by the sub-query root (stable across the segment copies the
	// iterator path makes), compiled once per chain.
	nested map[*shape.Node]shape.Normalized
}

func (u *compiledUnit) pinned() bool { return u.pinStart >= 0 && u.pinEnd >= 0 }

// compileChain prepares a chain for evaluation against a visualization in a
// fresh evaluation context. The pipeline workers call (*evalCtx).compile
// instead, which reuses one context's buffers across candidates.
func compileChain(v *Viz, chain shape.Chain, opts *Options) (*chainEval, error) {
	return newEvalCtx().compile(v, chain, opts)
}

// compile prepares a chain for evaluation against a visualization, reusing
// the context's chainEval and unit buffer. Viz-derived quantities (y range,
// amplitude unit, skipped-point prefix) come memoized from the Viz, and for
// options that went through executor.Compile the per-unit validation walk
// is skipped entirely — UDP resolution, nested sub-query normalization, and
// iterator/sketch hoisting already happened once at plan compile time.
func (ec *evalCtx) compile(v *Viz, chain shape.Chain, opts *Options) (*chainEval, error) {
	return ec.compileAlt(v, chain, opts, nil)
}

// compileAlt is compile with the alternative's plan-compiled metadata: the
// pinned x endpoints hoisted out of the per-candidate path (no per-unit
// tree walks) and the signature ids that key the unit-score memo. A nil
// altMeta falls back to walking the units, with memoization off.
func (ec *evalCtx) compileAlt(v *Viz, chain shape.Chain, opts *Options, am *altMeta) (*chainEval, error) {
	ce := &ec.ce
	*ce = chainEval{ctx: ec, viz: v, chain: chain, opts: opts}
	n := v.N()
	ce.skippedPrefix = v.skipPrefix()
	span := v.Series.X[n-1] - v.Series.X[0]
	ce.tolX = 1.5 * span / float64(n-1)
	lo, hi := v.yRange()
	ce.tolY = 0.1*(hi-lo) + 1e-9
	ce.ampUnit = v.ampUnit()
	if am != nil {
		ce.sigs = am.sigs
	}
	ec.units = ec.units[:0]
	for t, u := range chain.Units {
		cu := compiledUnit{pinStart: -1, pinEnd: -1}
		cu.unit = u
		var xs, xe float64
		var hasS, hasE bool
		if am != nil {
			p := &am.pins[t]
			xs, hasS, xe, hasE = p.xs, p.hasS, p.xe, p.hasE
		} else {
			xs, hasS = u.PinnedStart()
			xe, hasE = u.PinnedEnd()
		}
		if hasS {
			if xs < v.Series.X[0]-ce.tolX || xs > v.Series.X[n-1]+ce.tolX {
				cu.pinErr = true
			} else {
				cu.pinStart = v.indexOfX(xs)
			}
		}
		if hasE {
			if xe < v.Series.X[0]-ce.tolX || xe > v.Series.X[n-1]+ce.tolX {
				cu.pinErr = true
			} else {
				cu.pinEnd = v.indexAtOrBefore(xe)
			}
		}
		if cu.pinStart >= 0 && cu.pinEnd >= 0 && cu.pinEnd <= cu.pinStart {
			cu.pinErr = true
		}
		if !opts.compiled {
			if err := validateUnit(&cu, u, opts); err != nil {
				return nil, err
			}
		}
		ec.units = append(ec.units, cu)
	}
	ce.units = ec.units
	return ce, nil
}

// validateUnit is the per-unit walk for chains compiled outside a Plan
// (direct compileChain construction in tests, dynamically built queries):
// UDP references are resolved and nested sub-queries normalized, once per
// chain. Plan-compiled options skip this — Compile did it once for all.
func validateUnit(cu *compiledUnit, u shape.Unit, opts *Options) error {
	var compileErr error
	u.Node.Walk(func(m *shape.Node) {
		if compileErr != nil || m.Kind != shape.NodeSegment {
			return
		}
		seg := m.Seg
		if seg.Pat.Kind == shape.PatUDP {
			if _, ok := opts.UDPs.Lookup(seg.Pat.Name); !ok {
				compileErr = fmt.Errorf("executor: unknown user-defined pattern %q", seg.Pat.Name)
			}
		}
		if seg.Pat.Kind == shape.PatNested {
			norm, ok := opts.nestedPre[seg.Pat.Sub]
			if !ok {
				var err error
				norm, err = shape.Normalize(shape.Query{Root: seg.Pat.Sub})
				if err != nil {
					compileErr = err
					return
				}
			}
			if cu.nested == nil {
				cu.nested = make(map[*shape.Node]shape.Normalized)
			}
			cu.nested[seg.Pat.Sub] = norm
		}
	})
	return compileErr
}

// anySkipped reports whether inclusive point range [i, j] touches a point
// the GROUP operator did not summarize.
func (ce *chainEval) anySkipped(i, j int) bool {
	if ce.skippedPrefix == nil {
		return false
	}
	return ce.skippedPrefix[j+1]-ce.skippedPrefix[i] > 0
}

// unitScore scores unit t over the inclusive point range [i, j].
//
// For units carrying a signature id the result is memoized per candidate on
// the context's scoreMemo: a unit's score is a pure function of its node
// structure and the range (pins, tolerances and the skip mask all derive
// from the same viz), so alternatives sharing a unit — or one chain using
// the same pattern twice — compute each (signature, range) score once.
// Units containing POSITION references are position-dependent and carry
// signature −1 (never memoized); refSlopes-bound re-scoring is therefore
// also safe to memoize, since non-POSITION scores ignore refSlopes.
func (ce *chainEval) unitScore(t, i, j int) float64 {
	if j <= i || i < 0 || j >= ce.viz.N() {
		return score.WorstScore
	}
	sig := -1
	if ce.sigs != nil {
		sig = ce.sigs[t]
	}
	if sig < 0 {
		return ce.unitScoreSlow(t, i, j)
	}
	// Bare-pattern units score straight off the shared range fit: one probe
	// on the fit memo (shared across signatures — u and d over one range
	// use the same fit and atan) and no per-signature score memo traffic.
	// Bare patterns cannot carry pins, so only the skip mask forces the
	// general path. The up/down/flat expressions are score.ForKindAngle's,
	// unwrapped because that function exceeds the inlining budget and this
	// is the kernel's hottest loop; they MUST stay bit-for-bit in lockstep
	// with ForKindAngle or shared and naive evaluation diverge
	// (TestSharedEvalMatchesNaive pins this).
	meta := ce.opts.chainMeta
	if fk := meta.sigFast[sig]; fk != shape.PatNone && ce.skippedPrefix == nil {
		_, angle, ok := ce.ctx.fitMemo.fit(ce.viz, i, j)
		if !ok {
			return score.WorstScore
		}
		switch fk {
		case shape.PatUp:
			return 2 * angle / math.Pi
		case shape.PatDown:
			return -(2 * angle / math.Pi)
		case shape.PatFlat:
			return 1 - math.Abs(4*angle/math.Pi)
		case shape.PatAny:
			return score.BestScore
		case shape.PatEmpty:
			return score.WorstScore
		default: // PatSlope
			return score.ForKindAngle(fk, angle, meta.sigFastTarget[sig])
		}
	}
	key := uint64(sig)<<48 | uint64(i)<<24 | uint64(j)
	v, slot, ok := ce.ctx.memo.getSlot(key)
	if ok {
		return v
	}
	s := ce.unitScoreSlow(t, i, j)
	ce.ctx.memo.putSlot(slot, key, s)
	return s
}

func (ce *chainEval) unitScoreSlow(t, i, j int) float64 {
	cu := &ce.units[t]
	if cu.pinErr {
		return score.WorstScore
	}
	if ce.anySkipped(i, j) {
		return score.WorstScore
	}
	return ce.evalNode(cu, cu.unit.Node, t, i, j)
}

func (ce *chainEval) evalNode(cu *compiledUnit, n *shape.Node, t, i, j int) float64 {
	switch n.Kind {
	case shape.NodeSegment:
		return ce.evalSegment(cu, n, t, i, j)
	case shape.NodeAnd:
		s := score.BestScore
		for _, c := range n.Children {
			if v := ce.evalNode(cu, c, t, i, j); v < s {
				s = v
			}
		}
		return s
	case shape.NodeOr:
		s := score.WorstScore
		for _, c := range n.Children {
			if v := ce.evalNode(cu, c, t, i, j); v > s {
				s = v
			}
		}
		return s
	case shape.NodeNot:
		return -ce.evalNode(cu, n.Children[0], t, i, j)
	default:
		return score.WorstScore
	}
}

// evalSegment scores one ShapeSegment over [i, j] (Section 5.2): the
// LOCATION/MODIFIER satisfaction part first (worst score on violation),
// then the PATTERN similarity part.
func (ce *chainEval) evalSegment(cu *compiledUnit, n *shape.Node, t, i, j int) float64 {
	seg := n.Seg
	v := ce.viz

	// ITERATOR: scan fixed-width windows inside [i, j] and keep the best.
	if seg.Loc.HasIterator() {
		return ce.evalIterator(cu, n, t, i, j)
	}

	// LOCATION satisfaction. Pinned x endpoints must coincide with the
	// assigned range (engines assign pinned units their exact ranges; the
	// check also serves the exhaustive engine, which tries everything).
	if c := seg.Loc.XS; c.Set && !c.Iter {
		if math.Abs(v.Series.X[i]-c.Value) > ce.tolX {
			return score.WorstScore
		}
	}
	if c := seg.Loc.XE; c.Set && !c.Iter {
		if math.Abs(v.Series.X[j]-c.Value) > ce.tolX {
			return score.WorstScore
		}
	}
	hasYPins := seg.Loc.YS.Set || seg.Loc.YE.Set
	if seg.Loc.YS.Set && math.Abs(v.Series.Y[i]-seg.Loc.YS.Value) > ce.tolY {
		return score.WorstScore
	}
	if seg.Loc.YE.Set && math.Abs(v.Series.Y[j]-seg.Loc.YE.Value) > ce.tolY {
		return score.WorstScore
	}

	// PATTERN similarity. Multiple facets (pattern, sketch, y-anchor line)
	// combine conservatively with min — all must hold.
	best := math.Inf(1)
	consider := func(s float64) {
		if s < best {
			best = s
		}
	}
	if seg.Pat.Kind != shape.PatNone {
		consider(ce.evalPattern(cu, n, t, i, j))
	}
	if len(seg.Sketch) > 0 {
		// The query-y values are query-static; Compile hoists them per
		// segment node. Nodes it has not seen (copied or dynamically built
		// segments) fill a context scratch buffer instead.
		qy := ce.opts.sketchQY[n]
		if qy == nil {
			buf := ce.ctx.qyBuf[:0]
			for _, pt := range seg.Sketch {
				buf = append(buf, pt.Y)
			}
			ce.ctx.qyBuf = buf
			qy = buf
		}
		consider(ce.opts.SketchConfig.SketchL2(qy, v.Series.Y[i:j+1]))
	}
	if seg.Pat.Kind == shape.PatNone && hasYPins {
		// Anchor-line similarity: how closely the trend follows the line
		// from (x.s, y.s) to (x.e, y.e). y is unnormalized here because
		// queries with y constraints disable z-normalization.
		dy := seg.Loc.YE.Value - seg.Loc.YS.Value
		dx := v.NX[j] - v.NX[i]
		if dx <= 0 {
			return score.WorstScore
		}
		slope, ok := v.rangeSlope(i, j)
		if !ok {
			return score.WorstScore
		}
		target := math.Atan2(dy, dx) * 180 / math.Pi
		consider(score.Theta(slope, target))
	}
	if math.IsInf(best, 1) {
		// Location-only segment: satisfaction already passed.
		return score.BestScore
	}
	return best
}

// evalIterator implements the ITERATOR sub-primitive: [x.s=., x.e=.+w, ...]
// slides a window of domain-width w across [i, j], scoring the rest of the
// segment over each window and keeping the maximum.
func (ce *chainEval) evalIterator(cu *compiledUnit, n *shape.Node, t, i, j int) float64 {
	seg := n.Seg
	v := ce.viz
	w := seg.Loc.XE.IterOffset
	// Compile hoists the iterator's inner segment node (LOCATION reduced to
	// the y pins) once per plan; nodes it has not seen build it here.
	innerNode := ce.opts.iterInner[n]
	if innerNode == nil {
		inner := *seg
		inner.Loc = shape.Location{YS: seg.Loc.YS, YE: seg.Loc.YE}
		innerNode = &shape.Node{Kind: shape.NodeSegment, Seg: &inner}
	}
	best := score.WorstScore
	for s := i; s < j; s++ {
		endX := v.Series.X[s] + w
		if endX > v.Series.X[j]+ce.tolX {
			break
		}
		e := v.indexAtOrBefore(endX)
		if e > j {
			e = j
		}
		if e <= s {
			continue
		}
		if sc := ce.evalSegment(cu, innerNode, t, s, e); sc > best {
			best = sc
		}
	}
	return best
}

// evalPattern scores the PATTERN primitive of a segment over [i, j].
func (ce *chainEval) evalPattern(cu *compiledUnit, n *shape.Node, t, i, j int) float64 {
	seg := n.Seg
	v := ce.viz
	switch seg.Pat.Kind {
	case shape.PatUp, shape.PatDown, shape.PatFlat, shape.PatSlope, shape.PatAny, shape.PatEmpty:
		if seg.Mod.Kind == shape.ModQuantifier {
			return ce.evalQuantifier(seg, i, j)
		}
		if ce.sigs != nil {
			// Shared evaluation: one least-squares fit and one atan per
			// range per candidate, shared across the patterns scored over
			// it (ForKindAngle is bit-identical to the slope forms).
			slope, angle, ok := ce.ctx.fitMemo.fit(v, i, j)
			if !ok {
				return score.WorstScore
			}
			switch seg.Mod.Kind {
			case shape.ModMore, shape.ModMuchMore, shape.ModLess, shape.ModMuchLess:
				base := func(s float64) float64 { return score.ForKind(seg.Pat.Kind, s, seg.Pat.Slope) }
				return score.Modified(seg.Mod.Kind, base, slope)
			default:
				return score.ForKindAngle(seg.Pat.Kind, angle, seg.Pat.Slope)
			}
		}
		slope, ok := v.rangeSlope(i, j)
		if !ok {
			return score.WorstScore
		}
		base := func(s float64) float64 { return score.ForKind(seg.Pat.Kind, s, seg.Pat.Slope) }
		switch seg.Mod.Kind {
		case shape.ModMore, shape.ModMuchMore, shape.ModLess, shape.ModMuchLess:
			return score.Modified(seg.Mod.Kind, base, slope)
		default:
			return base(slope)
		}
	case shape.PatPosition:
		slope, ok := v.rangeSlope(i, j)
		if !ok {
			return score.WorstScore
		}
		ref := ce.resolveRef(seg.Pat.Ref, t)
		if ref < 0 || ref >= len(ce.units) || ref == t {
			return score.WorstScore
		}
		if ce.refSlopes == nil {
			// Search pass: the referenced unit's slope is unknown until a
			// segmentation is chosen; provisionally a perfect match. The
			// final segmentation is re-scored exactly (see scoreRanges).
			return score.BestScore
		}
		return score.PositionScore(seg.Mod, slope, ce.refSlopes[ref])
	case shape.PatUDP:
		fn, ok := ce.opts.UDPs.Lookup(seg.Pat.Name)
		if !ok {
			return score.WorstScore
		}
		return score.Clamp(fn(v.Series.X[i:j+1], v.Series.Y[i:j+1]))
	case shape.PatNested:
		norm, ok := cu.nested[seg.Pat.Sub]
		if !ok {
			// Plan-compiled sub-queries were normalized once at Compile.
			norm, ok = ce.opts.nestedPre[seg.Pat.Sub]
		}
		if !ok {
			// Nested sub-queries reached through copied segments (e.g.
			// built by UDFs at evaluation time) normalize lazily.
			lazy, err := shape.Normalize(shape.Query{Root: seg.Pat.Sub})
			if err != nil {
				return score.WorstScore
			}
			if cu.nested == nil {
				cu.nested = make(map[*shape.Node]shape.Normalized)
			}
			cu.nested[seg.Pat.Sub] = lazy
			norm = lazy
		}
		return ce.evalNested(norm, i, j)
	default:
		return score.WorstScore
	}
}

// resolveRef maps a POSITION reference to a unit index.
func (ce *chainEval) resolveRef(r shape.PosRef, t int) int {
	switch r.Kind {
	case shape.RefPrev:
		return t - 1
	case shape.RefNext:
		return t + 1
	default:
		return r.Index
	}
}

// evalQuantifier scores a quantified pattern over [i, j]: occurrences are
// maximal runs of adjacent point pairs where the pattern scores above the
// threshold, each run scored by its merged fit (Section 5.2 "scoring
// quantifiers"; see DESIGN.md for the run-based counting rationale). Runs
// narrower than the perceptibility floor (Options.MinSegmentFrac) do not
// count as occurrences — a two-point noise wiggle is not a "rise".
func (ce *chainEval) evalQuantifier(seg *shape.Segment, i, j int) float64 {
	v := ce.viz
	ctx := ce.ctx
	pairScores := growFloats(&ctx.pairScores, j-i)
	for k := i; k < j; k++ {
		slope, ok := v.rangeSlope(k, k+1)
		if !ok {
			pairScores[k-i] = score.WorstScore
			continue
		}
		pairScores[k-i] = score.ForKind(seg.Pat.Kind, slope, seg.Pat.Slope)
	}
	threshold := ce.opts.QuantifierThreshold
	minRun := int(ce.opts.MinSegmentFrac * float64(v.N()-1))
	if minRun < 1 {
		minRun = 1
	}
	ctx.runsBuf = score.PositiveRunsInto(ctx.runsBuf[:0], pairScores, threshold)
	runs := ctx.runsBuf
	// Directional occurrences must also move perceptibly: a run that rises
	// by a small fraction of the chart's y spread is noise, not a "rise",
	// no matter how steep its fit.
	minAmp := 0.0
	if seg.Pat.Kind == shape.PatUp || seg.Pat.Kind == shape.PatDown {
		minAmp = 0.25 * ce.ampUnit
	}
	runScores := ctx.runScores[:0]
	for _, run := range runs {
		if run[1]-run[0] < minRun {
			continue
		}
		if minAmp > 0 && math.Abs(v.NY[i+run[1]]-v.NY[i+run[0]]) < minAmp {
			continue
		}
		slope, ok := v.rangeSlope(i+run[0], i+run[1])
		if !ok {
			runScores = append(runScores, score.WorstScore)
			continue
		}
		runScores = append(runScores, score.ForKind(seg.Pat.Kind, slope, seg.Pat.Slope))
	}
	ctx.runScores = runScores
	return score.Quantifier(seg.Mod, runScores, threshold)
}

// evalNested scores a nested sub-query pattern over [i, j] by segmenting
// the range with a coarse dynamic program per alternative and returning the
// best alternative's score.
func (ce *chainEval) evalNested(norm shape.Normalized, i, j int) float64 {
	// A child context keeps the sub-query's DP scratch off the outer
	// solver's buffers (the outer DP/tree run is mid-flight on ce.ctx).
	child := ce.ctx.childCtx()
	best := score.WorstScore
	for _, alt := range norm.Alternatives {
		sub, err := child.compile(ce.viz, alt, ce.opts)
		if err != nil {
			continue
		}
		sub.skippedPrefix = ce.skippedPrefix
		// Coarse candidate grid keeps nested evaluation near-linear.
		stride := (j - i) / 32
		if stride < 1 {
			stride = 1
		}
		res := dpRunStride(sub, 0, len(sub.units)-1, i, j, stride)
		if res.score > best {
			best = res.score
		}
	}
	return best
}

// scoreRanges computes the final chain score for a chosen assignment of
// inclusive point ranges to units, resolving POSITION references exactly:
// unit slopes are fitted first, then every unit is re-scored with
// references bound (Design decision 4 in DESIGN.md).
func (ce *chainEval) scoreRanges(ranges [][2]int) float64 {
	slopes := growFloats(&ce.ctx.slopes, len(ce.units))
	for t := range ce.units {
		r := ranges[t]
		if r[1] <= r[0] {
			return score.WorstScore
		}
		s, ok := ce.viz.rangeSlope(r[0], r[1])
		if !ok {
			s = 0
		}
		slopes[t] = s
	}
	saved := ce.refSlopes
	ce.refSlopes = slopes
	defer func() { ce.refSlopes = saved }()
	var total float64
	for t, u := range ce.chain.Units {
		total += u.Weight * ce.unitScore(t, ranges[t][0], ranges[t][1])
	}
	return total
}
