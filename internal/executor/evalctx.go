package executor

import (
	"math"
	"math/bits"
	"sync"
)

// evalCtx is the per-worker, reusable evaluation state of the scoring
// kernel. Every buffer the SEGMENT → SCORE inner loop used to allocate per
// candidate — the chainEval and its compiled units, the DP's best/from
// tables and candidate grid, the SegmentTree's node/entry/break arenas, and
// the quantifier/sketch scratch — lives here and is resized, never
// reallocated, so steady-state scoring performs near-zero heap allocations
// (pinned by TestSteadyStateAllocs).
//
// An evalCtx is owned by exactly one pipeline worker at a time (Plan keeps
// a sync.Pool of them across runs) and is not safe for concurrent use.
// Nested sub-query evaluation borrows a child context so the outer solver's
// scratch is never clobbered mid-run.
type evalCtx struct {
	// ce is the single chainEval reused across (viz, alternative) pairs.
	ce chainEval
	// units backs ce.units, truncated and refilled per compile.
	units []compiledUnit

	// qyBuf holds sketch query-y values for segments not hoisted at plan
	// compile time (dynamically built or copied nodes).
	qyBuf []float64

	// DP scratch (dpRunStride): flat (k+1)×m tables.
	dpBest []float64
	dpFrom []int

	// memo is the per-candidate unit-score memo keyed by
	// (unit signature, inclusive range): one flat epoch-stamped hash table,
	// bump-reset per candidate (evalViz / coarseScore), shared by every
	// solver through unitScore. Alternatives produced by cross-concatenation
	// share almost all of their units, so each (signature, range) pair is
	// scored once per candidate no matter how many alternatives touch it.
	memo scoreMemo

	// fitMemo caches the least-squares fit per range — slope and its atan —
	// for the current candidate, so different patterns over one range (u
	// versus d in cross-concatenated alternatives) share one fit and one
	// atan. Reset with memo; consulted only under shared evaluation.
	fitMemo fitMemo

	// treeGrid and dpGrid cache the break-point candidate grids keyed by
	// (lo, hi, stride). The grids are pure arithmetic in the key, so one
	// cached grid serves every same-k alternative of a candidate and every
	// same-shape candidate after it. The tree grid additionally carries the
	// SegmentTree's trailing-gap merge.
	treeGrid, dpGrid gridCache

	// rangesOut is the runResult out-buffer shared by the DP, the
	// SegmentTree and infeasibleRunCtx; solveChain copies it before the
	// next solver call.
	rangesOut [][2]int
	// chainRanges is solveChain's full-chain assignment; evalViz copies the
	// winning alternative's ranges out of it.
	chainRanges [][2]int
	// slopes is scoreRanges' fitted-slope scratch.
	slopes []float64

	// Quantifier scratch: per-pair scores, detected runs, per-run scores.
	pairScores []float64
	runsBuf    [][2]int
	runScores  []float64

	// Sound-pruning-bound scratch (soundUpperBound): per-unit pin indices
	// and pin-validity flags for the alternative under inspection, plus the
	// per-candidate bound caches — the slope interval per width floor, the
	// unit upper bound per (signature, width floor), and the chain bound per
	// distinct pin-free chain-bound signature. All reset per candidate by
	// truncation; sizes are bounded by the plan's signature counts.
	ubPinS, ubPinE []int
	ubPinBad       []bool
	ubSpanKeys     []int
	ubSpanLo       []float64
	ubSpanHi       []float64
	ubUnitKeys     []uint64
	ubUnitHi       []float64
	ubChainUB      []float64
	ubChainSet     []bool

	// SegmentTree arenas and level buffers (reset per treeRun).
	treeNodes     nodeArena
	treeEntries   entryArena
	treeInts      intArena
	treeSlabs     slabArena
	treeLevel     []*treeNode
	treeLevelNext []*treeNode
	breaksBuf     []int

	// child serves nested sub-query evaluation (one level per depth).
	child *evalCtx
}

func newEvalCtx() *evalCtx { return &evalCtx{} }

// childCtx returns the context nested sub-query evaluation runs in,
// creating it on first use.
func (ec *evalCtx) childCtx() *evalCtx {
	if ec.child == nil {
		ec.child = newEvalCtx()
	}
	return ec.child
}

// ctxPool recycles evaluation contexts across runs of one plan.
var ctxPool = sync.Pool{New: func() any { return newEvalCtx() }}

func getEvalCtx() *evalCtx { return ctxPool.Get().(*evalCtx) }

func putEvalCtx(ec *evalCtx) {
	// Drop the viz/options/query references so a pooled context does not
	// pin a finished run's data; the scratch buffers are the whole point
	// and stay.
	for c := ec; c != nil; c = c.child {
		c.ce = chainEval{}
		for i := range c.units {
			c.units[i] = compiledUnit{}
		}
		c.units = c.units[:0]
	}
	ctxPool.Put(ec)
}

// growFloats resizes *buf to n elements without shrinking its capacity.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growRanges(buf *[][2]int, n int) [][2]int {
	if cap(*buf) < n {
		*buf = make([][2]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// arenaPage is the element count of one arena page. Pages never move, so
// pointers into them stay valid for the whole run; reset reuses the pages.
const arenaPage = 1024

// nodeArena hands out treeNodes with stable addresses.
type nodeArena struct {
	pages [][]treeNode
	used  int
}

func (a *nodeArena) alloc() *treeNode {
	page, off := a.used/arenaPage, a.used%arenaPage
	if page == len(a.pages) {
		a.pages = append(a.pages, make([]treeNode, arenaPage))
	}
	a.used++
	n := &a.pages[page][off]
	*n = treeNode{}
	return n
}

func (a *nodeArena) reset() { a.used = 0 }

// entryArena hands out treeEntries with stable addresses.
type entryArena struct {
	pages [][]treeEntry
	used  int
}

func (a *entryArena) alloc() *treeEntry {
	page, off := a.used/arenaPage, a.used%arenaPage
	if page == len(a.pages) {
		a.pages = append(a.pages, make([]treeEntry, arenaPage))
	}
	a.used++
	e := &a.pages[page][off]
	*e = treeEntry{}
	return e
}

func (a *entryArena) reset() { a.used = 0 }

// intArena bump-allocates small int slices (treeEntry breaks). A request
// that does not fit the current page's remainder starts a new page; the
// waste is bounded by the largest request.
type intArena struct {
	pages [][]int
	page  int
	used  int
}

func (a *intArena) alloc(n int) []int {
	if n == 0 {
		return nil
	}
	size := arenaPage
	if n > size {
		size = n
	}
	for {
		if a.page == len(a.pages) {
			a.pages = append(a.pages, make([]int, size))
		}
		if a.used+n <= len(a.pages[a.page]) {
			s := a.pages[a.page][a.used : a.used : a.used+n]
			a.used += n
			return s
		}
		a.page++
		a.used = 0
	}
}

func (a *intArena) reset() { a.page, a.used = 0, 0 }

// slabArena bump-allocates the k×k entry-pointer slabs of treeNodes,
// zeroing each slab on handout (arena reuse leaves stale pointers behind).
type slabArena struct {
	pages [][]*treeEntry
	page  int
	used  int
}

func (a *slabArena) alloc(n int) []*treeEntry {
	if n == 0 {
		return nil
	}
	size := arenaPage
	if n > size {
		size = n
	}
	for {
		if a.page == len(a.pages) {
			a.pages = append(a.pages, make([]*treeEntry, size))
		}
		if a.used+n <= len(a.pages[a.page]) {
			s := a.pages[a.page][a.used : a.used+n]
			a.used += n
			for i := range s {
				s[i] = nil
			}
			return s
		}
		a.page++
		a.used = 0
	}
}

func (a *slabArena) reset() { a.page, a.used = 0, 0 }

// resetTree clears the SegmentTree arenas for the next treeRun.
func (ec *evalCtx) resetTree() {
	ec.treeNodes.reset()
	ec.treeEntries.reset()
	ec.treeInts.reset()
	ec.treeSlabs.reset()
}

// scoreMemo is a flat open-addressing hash table mapping a packed
// (unit signature, range) key to a unit score. Entries are stamped with an
// epoch; reset bumps the epoch, invalidating every entry in O(1) — the
// steady state allocates nothing (the table grows only while a run's
// candidates are still establishing its working-set size).
//
// Ownership rule: the memo belongs to the worker's current candidate.
// evalViz and coarseScore reset it when they take up a candidate; nothing
// may read an entry written under a previous candidate (the epoch stamp
// enforces this mechanically).
type scoreMemo struct {
	ents  []scoreEnt
	epoch uint32
	live  int
	shift uint
}

// scoreEnt packs one entry into a single cache-line-friendly record (24 B):
// a probe touches one array instead of parallel key/mark/value arrays.
type scoreEnt struct {
	key  uint64
	mark uint32
	val  float64
}

// memoMinSize is the initial table size (a power of two).
const memoMinSize = 1 << 10

func (m *scoreMemo) init(size int) {
	m.ents = make([]scoreEnt, size)
	m.shift = uint(64 - bits.TrailingZeros(uint(size)))
	if m.epoch == 0 {
		m.epoch = 1
	}
	m.live = 0
}

// reset invalidates every entry for the next candidate.
func (m *scoreMemo) reset() {
	m.epoch++
	m.live = 0
	if m.epoch == 0 { // wrapped: stale marks could alias the new epoch
		for i := range m.ents {
			m.ents[i].mark = 0
		}
		m.epoch = 1
	}
}

func memoHash(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

// getSlot probes for key: on a hit it returns the value; on a miss it
// returns the empty slot where the key belongs, so putSlot can insert
// without re-probing.
func (m *scoreMemo) getSlot(key uint64) (v float64, slot int, ok bool) {
	if len(m.ents) == 0 {
		m.init(memoMinSize)
	}
	mask := len(m.ents) - 1
	i := int(memoHash(key) >> m.shift)
	for {
		e := &m.ents[i]
		if e.mark != m.epoch {
			return 0, i, false
		}
		if e.key == key {
			return e.val, i, true
		}
		i = (i + 1) & mask
	}
}

// putSlot inserts at the slot getSlot returned for this key (no mutations
// may occur in between); it re-probes only when the table must grow.
func (m *scoreMemo) putSlot(slot int, key uint64, v float64) {
	if m.live >= len(m.ents)-len(m.ents)/4 {
		m.grow()
		mask := len(m.ents) - 1
		slot = int(memoHash(key) >> m.shift)
		for m.ents[slot].mark == m.epoch {
			if m.ents[slot].key == key {
				m.ents[slot].val = v
				return
			}
			slot = (slot + 1) & mask
		}
	}
	m.ents[slot] = scoreEnt{key: key, mark: m.epoch, val: v}
	m.live++
}

func (m *scoreMemo) put(key uint64, v float64) {
	if len(m.ents) == 0 {
		m.init(memoMinSize)
	} else if m.live >= len(m.ents)-len(m.ents)/4 {
		m.grow()
	}
	mask := len(m.ents) - 1
	i := int(memoHash(key) >> m.shift)
	for m.ents[i].mark == m.epoch {
		if m.ents[i].key == key {
			m.ents[i].val = v
			return
		}
		i = (i + 1) & mask
	}
	m.ents[i] = scoreEnt{key: key, mark: m.epoch, val: v}
	m.live++
}

// grow doubles the table, reinserting the current epoch's entries.
func (m *scoreMemo) grow() {
	old := *m
	m.init(len(old.ents) * 2)
	m.epoch = old.epoch
	for i := range old.ents {
		if old.ents[i].mark == old.epoch {
			m.put(old.ents[i].key, old.ents[i].val)
		}
	}
}

// fitMemo caches per-candidate least-squares fits keyed by range: the
// fitted slope and its atan (every Table 5 pattern score is a function of
// that angle). Same epoch-stamped open-addressing scheme as scoreMemo, one
// 32-byte record per entry. A degenerate fit (rangeSlope !ok) stores a NaN
// angle.
type fitMemo struct {
	ents  []fitEnt
	epoch uint32
	live  int
	shift uint
}

type fitEnt struct {
	key   uint64
	mark  uint32
	slope float64
	angle float64
}

func (m *fitMemo) init(size int) {
	m.ents = make([]fitEnt, size)
	m.shift = uint(64 - bits.TrailingZeros(uint(size)))
	if m.epoch == 0 {
		m.epoch = 1
	}
	m.live = 0
}

func (m *fitMemo) reset() {
	m.epoch++
	m.live = 0
	if m.epoch == 0 {
		for i := range m.ents {
			m.ents[i].mark = 0
		}
		m.epoch = 1
	}
}

// fit returns the fitted slope and angle over inclusive range [i, j] of v,
// computing and caching on first sight.
func (m *fitMemo) fit(v *Viz, i, j int) (slope, angle float64, ok bool) {
	key := uint64(i)<<24 | uint64(j)
	if len(m.ents) == 0 {
		m.init(memoMinSize)
	}
	mask := len(m.ents) - 1
	s := int(memoHash(key) >> m.shift)
	for {
		e := &m.ents[s]
		if e.mark != m.epoch {
			break
		}
		if e.key == key {
			return e.slope, e.angle, !math.IsNaN(e.angle)
		}
		s = (s + 1) & mask
	}
	slope, ok = v.rangeSlope(i, j)
	angle = math.NaN()
	if ok {
		angle = math.Atan(slope)
	}
	if m.live >= len(m.ents)-len(m.ents)/4 {
		m.grow()
		mask = len(m.ents) - 1
		s = int(memoHash(key) >> m.shift)
		for m.ents[s].mark == m.epoch {
			if m.ents[s].key == key {
				return slope, angle, ok
			}
			s = (s + 1) & mask
		}
	}
	m.ents[s] = fitEnt{key: key, mark: m.epoch, slope: slope, angle: angle}
	m.live++
	return slope, angle, ok
}

func (m *fitMemo) grow() {
	old := *m
	m.init(len(old.ents) * 2)
	m.epoch = old.epoch
	for i := range old.ents {
		e := &old.ents[i]
		if e.mark == old.epoch {
			m.reinsert(e.key, e.slope, e.angle)
		}
	}
}

func (m *fitMemo) reinsert(key uint64, slope, angle float64) {
	mask := len(m.ents) - 1
	s := int(memoHash(key) >> m.shift)
	for m.ents[s].mark == m.epoch {
		if m.ents[s].key == key {
			return
		}
		s = (s + 1) & mask
	}
	m.ents[s] = fitEnt{key: key, mark: m.epoch, slope: slope, angle: angle}
	m.live++
}

// gridCache memoizes one break-point candidate grid keyed by
// (lo, hi, stride, merged). Grids are viz-independent arithmetic, so a
// cached grid stays valid across alternatives and across candidates until
// the key changes; callers must treat the returned slice as read-only.
type gridCache struct {
	lo, hi, stride int
	merged         bool
	valid          bool
	cands          []int
}

// grid returns the plain candidate grid for the key (the DP's form).
func (g *gridCache) grid(lo, hi, stride int) []int {
	if g.valid && !g.merged && g.lo == lo && g.hi == hi && g.stride == stride {
		return g.cands
	}
	g.cands = appendCandidates(g.cands[:0], lo, hi, stride)
	g.lo, g.hi, g.stride, g.merged, g.valid = lo, hi, stride, false, true
	return g.cands
}

// gridMerged returns the grid with the SegmentTree's trailing-gap merge: a
// final gap narrower than the width floor folds into the previous leaf.
func (g *gridCache) gridMerged(lo, hi, stride int) []int {
	if g.valid && g.merged && g.lo == lo && g.hi == hi && g.stride == stride {
		return g.cands
	}
	g.cands = appendCandidates(g.cands[:0], lo, hi, stride)
	for len(g.cands) >= 3 && hi-g.cands[len(g.cands)-2] < stride {
		g.cands = append(g.cands[:len(g.cands)-2], hi)
	}
	g.lo, g.hi, g.stride, g.merged, g.valid = lo, hi, stride, true, true
	return g.cands
}
