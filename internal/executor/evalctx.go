package executor

import "sync"

// evalCtx is the per-worker, reusable evaluation state of the scoring
// kernel. Every buffer the SEGMENT → SCORE inner loop used to allocate per
// candidate — the chainEval and its compiled units, the DP's best/from
// tables and candidate grid, the SegmentTree's node/entry/break arenas, and
// the quantifier/sketch scratch — lives here and is resized, never
// reallocated, so steady-state scoring performs near-zero heap allocations
// (pinned by TestSteadyStateAllocs).
//
// An evalCtx is owned by exactly one pipeline worker at a time (Plan keeps
// a sync.Pool of them across runs) and is not safe for concurrent use.
// Nested sub-query evaluation borrows a child context so the outer solver's
// scratch is never clobbered mid-run.
type evalCtx struct {
	// ce is the single chainEval reused across (viz, alternative) pairs.
	ce chainEval
	// units backs ce.units, truncated and refilled per compile.
	units []compiledUnit

	// qyBuf holds sketch query-y values for segments not hoisted at plan
	// compile time (dynamically built or copied nodes).
	qyBuf []float64

	// DP scratch (dpRunStride): flat (k+1)×m tables and the candidate grid.
	dpCands []int
	dpBest  []float64
	dpFrom  []int

	// rangesOut is the runResult out-buffer shared by the DP, the
	// SegmentTree and infeasibleRunCtx; solveChain copies it before the
	// next solver call.
	rangesOut [][2]int
	// chainRanges is solveChain's full-chain assignment; evalViz copies the
	// winning alternative's ranges out of it.
	chainRanges [][2]int
	// slopes is scoreRanges' fitted-slope scratch.
	slopes []float64

	// Quantifier scratch: per-pair scores, detected runs, per-run scores.
	pairScores []float64
	runsBuf    [][2]int
	runScores  []float64

	// Sound-pruning-bound scratch (soundUpperBound): per-unit pin indices
	// and pin-validity flags for the alternative under inspection.
	ubPinS, ubPinE []int
	ubPinBad       []bool

	// SegmentTree arenas and level buffers (reset per treeRun).
	treeNodes     nodeArena
	treeEntries   entryArena
	treeInts      intArena
	treeSlabs     slabArena
	treeCands     []int
	treeLevel     []*treeNode
	treeLevelNext []*treeNode
	breaksBuf     []int

	// child serves nested sub-query evaluation (one level per depth).
	child *evalCtx
}

func newEvalCtx() *evalCtx { return &evalCtx{} }

// childCtx returns the context nested sub-query evaluation runs in,
// creating it on first use.
func (ec *evalCtx) childCtx() *evalCtx {
	if ec.child == nil {
		ec.child = newEvalCtx()
	}
	return ec.child
}

// ctxPool recycles evaluation contexts across runs of one plan.
var ctxPool = sync.Pool{New: func() any { return newEvalCtx() }}

func getEvalCtx() *evalCtx { return ctxPool.Get().(*evalCtx) }

func putEvalCtx(ec *evalCtx) {
	// Drop the viz/options/query references so a pooled context does not
	// pin a finished run's data; the scratch buffers are the whole point
	// and stay.
	for c := ec; c != nil; c = c.child {
		c.ce = chainEval{}
		for i := range c.units {
			c.units[i] = compiledUnit{}
		}
		c.units = c.units[:0]
	}
	ctxPool.Put(ec)
}

// growFloats resizes *buf to n elements without shrinking its capacity.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growRanges(buf *[][2]int, n int) [][2]int {
	if cap(*buf) < n {
		*buf = make([][2]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// arenaPage is the element count of one arena page. Pages never move, so
// pointers into them stay valid for the whole run; reset reuses the pages.
const arenaPage = 1024

// nodeArena hands out treeNodes with stable addresses.
type nodeArena struct {
	pages [][]treeNode
	used  int
}

func (a *nodeArena) alloc() *treeNode {
	page, off := a.used/arenaPage, a.used%arenaPage
	if page == len(a.pages) {
		a.pages = append(a.pages, make([]treeNode, arenaPage))
	}
	a.used++
	n := &a.pages[page][off]
	*n = treeNode{}
	return n
}

func (a *nodeArena) reset() { a.used = 0 }

// entryArena hands out treeEntries with stable addresses.
type entryArena struct {
	pages [][]treeEntry
	used  int
}

func (a *entryArena) alloc() *treeEntry {
	page, off := a.used/arenaPage, a.used%arenaPage
	if page == len(a.pages) {
		a.pages = append(a.pages, make([]treeEntry, arenaPage))
	}
	a.used++
	e := &a.pages[page][off]
	*e = treeEntry{}
	return e
}

func (a *entryArena) reset() { a.used = 0 }

// intArena bump-allocates small int slices (treeEntry breaks). A request
// that does not fit the current page's remainder starts a new page; the
// waste is bounded by the largest request.
type intArena struct {
	pages [][]int
	page  int
	used  int
}

func (a *intArena) alloc(n int) []int {
	if n == 0 {
		return nil
	}
	size := arenaPage
	if n > size {
		size = n
	}
	for {
		if a.page == len(a.pages) {
			a.pages = append(a.pages, make([]int, size))
		}
		if a.used+n <= len(a.pages[a.page]) {
			s := a.pages[a.page][a.used : a.used : a.used+n]
			a.used += n
			return s
		}
		a.page++
		a.used = 0
	}
}

func (a *intArena) reset() { a.page, a.used = 0, 0 }

// slabArena bump-allocates the k×k entry-pointer slabs of treeNodes,
// zeroing each slab on handout (arena reuse leaves stale pointers behind).
type slabArena struct {
	pages [][]*treeEntry
	page  int
	used  int
}

func (a *slabArena) alloc(n int) []*treeEntry {
	if n == 0 {
		return nil
	}
	size := arenaPage
	if n > size {
		size = n
	}
	for {
		if a.page == len(a.pages) {
			a.pages = append(a.pages, make([]*treeEntry, size))
		}
		if a.used+n <= len(a.pages[a.page]) {
			s := a.pages[a.page][a.used : a.used+n]
			a.used += n
			for i := range s {
				s[i] = nil
			}
			return s
		}
		a.page++
		a.used = 0
	}
}

func (a *slabArena) reset() { a.page, a.used = 0, 0 }

// resetTree clears the SegmentTree arenas for the next treeRun.
func (ec *evalCtx) resetTree() {
	ec.treeNodes.reset()
	ec.treeEntries.reset()
	ec.treeInts.reset()
	ec.treeSlabs.reset()
}
