package executor

import (
	"fmt"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shapeindex"
)

// perturb extends a series with extra points (an append) and returns the
// re-grouped replacement the update path would install.
func perturb(rng *rand.Rand, s dataset.Series, extra int) dataset.Series {
	xs := append([]float64(nil), s.X...)
	ys := append([]float64(nil), s.Y...)
	last := xs[len(xs)-1]
	for i := 0; i < extra; i++ {
		last++
		xs = append(xs, last)
		ys = append(ys, ys[len(ys)-1]+rng.NormFloat64())
	}
	return dataset.Series{Z: s.Z, X: xs, Y: ys}
}

// TestIndexUpdateEnvelopeDominance extends the PR 7 dominance suite to
// patched envelopes: after random sequences of VizIndex.Update calls —
// replacements (grown series), appended candidates, ungroupable slots —
// every node envelope of the patched index must still dominate every member
// beneath it for every query, and indexed search over the patched index
// must stay byte-identical to the flat unpruned scan over the same slice.
func TestIndexUpdateEnvelopeDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var plans []*Plan
	for _, query := range indexedQueries {
		opts := DefaultOptions()
		opts.Algorithm = AlgSegmentTree
		opts.Pruning = true
		plan, err := Compile(regexlang.MustParse(query), opts)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, plan)
	}
	series := mixedCorpus(rng, 90, 48+rng.Intn(32))
	for _, shards := range []int{1, 3} {
		vizs := plans[0].GroupSeries(series)
		ix := BuildVizIndex(vizs, shards)
		for step := 0; step < 3; step++ {
			next := append([]*Viz(nil), ix.Vizs()...)
			var changed []int
			gcfg := groupConfig{zNormalize: true}
			for i := rng.Intn(6); i >= 0; i-- {
				id := rng.Intn(len(next))
				if next[id] == nil {
					continue
				}
				next[id] = group(perturb(rng, next[id].Series, 1+rng.Intn(8)), gcfg)
				changed = append(changed, id)
			}
			if rng.Intn(3) == 0 && len(changed) > 0 {
				next[changed[0]] = nil // group shrank below the viz minimum
			}
			for i := rng.Intn(4); i > 0; i-- {
				s := randomSeries(rng, 40+rng.Intn(20))
				s.Z = fmt.Sprintf("new-%d-%d-%d", shards, step, i)
				changed = append(changed, len(next))
				next = append(next, group(s, gcfg))
			}
			upd := ix.Update(next, changed)
			if upd.Staleness() <= ix.Staleness() {
				t.Fatalf("shards=%d step %d: staleness did not grow", shards, step)
			}
			ec := newEvalCtx()
			for qi, plan := range plans {
				o := plan.opts
				upd.ix.Walk(func(env *shapeindex.Summary, members []int32) {
					envUB := envelopeUpperBound(ec, env, plan.norm, o)
					for _, id := range members {
						if upd.vizs[id] == nil {
							continue // folds unboundable; nothing to dominate
						}
						mUB := soundUpperBound(ec, upd.vizs[id], plan.norm, o)
						if envUB < mUB-boundEps {
							t.Fatalf("q=%q shards=%d step %d: patched envelope bound %.12f < member %d sound bound %.12f",
								indexedQueries[qi], shards, step, envUB, id, mUB)
						}
					}
				})
				got, err := plan.RunIndexed(upd)
				if err != nil {
					t.Fatal(err)
				}
				scanOpts := *o
				scanOpts.Pruning = false
				scanPlan, err := Compile(regexlang.MustParse(indexedQueries[qi]), scanOpts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := scanPlan.RunGrouped(upd.Vizs())
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, fmt.Sprintf("q=%q shards=%d step=%d", indexedQueries[qi], shards, step), want, got)
			}
			ix = upd
		}
	}
}
