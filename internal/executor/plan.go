package executor

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"shapesearch/internal/dataset"
	"shapesearch/internal/dtw"
	"shapesearch/internal/shape"
	"shapesearch/internal/topk"
)

// Plan is a compiled query: validation, normalization, solver selection and
// nested sub-query compilation are done once at Compile time, so the same
// plan can be executed against many series collections (and from many
// goroutines) without repeating that work. Plans are immutable after
// Compile and safe for concurrent use.
type Plan struct {
	opts *Options
	norm shape.Normalized
	// solver segments fuzzy unit runs; nil for distance rankings.
	solver runSolver
	// distance marks the DTW/Euclidean value-based baselines.
	distance bool
	// prune enables the two-stage collective pruning pipeline.
	prune bool
	// pinned holds the query's pinned x windows; allPinned reports whether
	// every segment is pinned (the non-fuzzy push-down case).
	pinned    [][2]float64
	allPinned bool
	// yConstrained disables z-normalization in GROUP (Section 5.3).
	yConstrained bool
}

// Compile prepares a query for repeated execution: it validates the query,
// normalizes it into alternative chains, selects the segmentation solver,
// pre-normalizes nested sub-queries, and checks user-defined pattern
// references — everything that previously ran per SearchSeries call.
func Compile(q shape.Query, opts Options) (*Plan, error) {
	o := opts.normalized()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	norm, err := shape.Normalize(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{opts: o, norm: norm}
	p.pinned, p.allPinned = q.XRanges()
	p.yConstrained = q.HasYConstraints()
	switch o.Algorithm {
	case AlgDTW, AlgEuclidean:
		p.distance = true
	default:
		p.solver, err = o.solver(norm)
		if err != nil {
			return nil, err
		}
		p.prune = o.Pruning && (o.Algorithm == AlgAuto || o.Algorithm == AlgSegmentTree)
	}
	// Hoist everything query-static out of the per-visualization chain
	// compilation and the per-range scoring hot path: nested sub-query
	// normalization and UDP resolution (validated once, plan-wide), the
	// ITERATOR's inner segment node, and sketch query-y extraction. The
	// worklist covers nested sub-queries' own chains (and their nested
	// sub-queries, transitively) so nested evaluation hits the same hoists.
	pre := make(map[*shape.Node]shape.Normalized)
	iterInner := make(map[*shape.Node]*shape.Node)
	sketchQY := make(map[*shape.Node][]float64)
	var compileErr error
	work := []shape.Normalized{norm}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for _, alt := range cur.Alternatives {
			for _, u := range alt.Units {
				u.Node.Walk(func(m *shape.Node) {
					if compileErr != nil || m.Kind != shape.NodeSegment {
						return
					}
					seg := m.Seg
					if seg.Pat.Kind == shape.PatUDP {
						if _, ok := o.UDPs.Lookup(seg.Pat.Name); !ok {
							compileErr = fmt.Errorf("executor: unknown user-defined pattern %q", seg.Pat.Name)
						}
					}
					if seg.Pat.Kind == shape.PatNested {
						if _, done := pre[seg.Pat.Sub]; !done {
							sub, err := shape.Normalize(shape.Query{Root: seg.Pat.Sub})
							if err != nil {
								compileErr = err
								return
							}
							pre[seg.Pat.Sub] = sub
							work = append(work, sub)
						}
					}
					var qy []float64
					if len(seg.Sketch) > 0 {
						qy = make([]float64, len(seg.Sketch))
						for k, pt := range seg.Sketch {
							qy[k] = pt.Y
						}
						sketchQY[m] = qy
					}
					if seg.Loc.HasIterator() {
						inner := *seg
						inner.Loc = shape.Location{YS: seg.Loc.YS, YE: seg.Loc.YE}
						innerNode := &shape.Node{Kind: shape.NodeSegment, Seg: &inner}
						iterInner[m] = innerNode
						if qy != nil {
							// The inner segment shares the sketch; key the
							// hoisted y values under its node too.
							sketchQY[innerNode] = qy
						}
					}
				})
			}
		}
	}
	if compileErr != nil {
		return nil, compileErr
	}
	if len(pre) > 0 {
		o.nestedPre = pre
	}
	if len(iterInner) > 0 {
		o.iterInner = iterInner
	}
	if len(sketchQY) > 0 {
		o.sketchQY = sketchQY
	}
	o.compiled = true
	o.chainMeta = buildChainMeta(norm)
	return p, nil
}

// Options returns a copy of the plan's normalized options.
func (p *Plan) Options() Options { return *p.opts }

// Fingerprint returns the plan's canonical query fingerprint: the
// normalized alternative chains' signatures in order (see
// shape.Normalized.Fingerprint). Two plans compiled from queries with equal
// fingerprints and equal effective Options are interchangeable — identical
// scores, ranking and assignments on every input — which is the keying
// contract of the server-side compiled-plan cache.
func (p *Plan) Fingerprint() string { return p.norm.Fingerprint() }

// WithParallelism returns a plan identical to p but scoring with n workers
// (n <= 0 keeps p's setting). The copy is shallow: the normalized query,
// solver, chain metadata and hoisted compile state are shared read-only, so
// the call is allocation-cheap — this is how a cached plan serves requests
// with per-request worker budgets without recompiling or mutating the
// shared entry.
func (p *Plan) WithParallelism(n int) *Plan {
	if n <= 0 || n == p.opts.Parallelism {
		return p
	}
	o := *p.opts
	o.Parallelism = n
	q := *p
	q.opts = &o
	return &q
}

// EffectiveSpec applies the LOCATION push-down of Section 5.4 (a)/(c) to an
// extraction spec: when every segment is pinned, rows outside the referenced
// x windows are never materialized.
func (p *Plan) EffectiveSpec(spec dataset.ExtractSpec) dataset.ExtractSpec {
	if p.opts.Pushdown && p.allPinned && len(p.pinned) > 0 {
		pad := 0.0
		for _, r := range p.pinned {
			if w := (r[1] - r[0]) * 0.05; w > pad {
				pad = w
			}
		}
		spec.XRanges = padRanges(p.pinned, pad)
	}
	return spec
}

// CandidateKey fingerprints everything that determines the plan's grouped
// candidate set for a spec: the effective extraction spec plus the GROUP
// configuration (z-normalization and push-down skip windows). Two plans
// with equal keys over the same table produce identical GroupSeries output,
// which is the server-side candidate cache's keying contract. The dataset
// identity itself is NOT part of the key; cache owners must scope keys by
// dataset (and invalidate on upload).
func (p *Plan) CandidateKey(spec dataset.ExtractSpec) string {
	espec := p.EffectiveSpec(spec)
	var sb strings.Builder
	// Variable-length string fields are %q-escaped so crafted values (e.g.
	// embedded NULs in a filter string) cannot forge another spec's key.
	fmt.Fprintf(&sb, "z=%q\x00x=%q\x00y=%q\x00agg=%d", espec.Z, espec.X, espec.Y, int(espec.Agg))
	for _, f := range espec.Filters {
		fmt.Fprintf(&sb, "\x00f=%q|%d|%g|%q", f.Col, int(f.Op), f.Num, f.Str)
	}
	for _, r := range espec.XRanges {
		fmt.Fprintf(&sb, "\x00xr=%g:%g", r[0], r[1])
	}
	fmt.Fprintf(&sb, "\x00znorm=%v", !p.yConstrained)
	if p.opts.Pushdown && len(p.pinned) > 0 {
		// Push-down (a) filtering and (c) skip windows shape the grouped
		// candidates; both derive deterministically from the pinned ranges.
		fmt.Fprintf(&sb, "\x00pd=%v", p.allPinned)
		for _, r := range p.pinned {
			fmt.Fprintf(&sb, "\x00pin=%g:%g", r[0], r[1])
		}
	}
	return sb.String()
}

// PinFree reports whether the plan's grouped candidate set is per-series
// local: no push-down pinned windows filter series in or out of the
// collection, and no skip-window padding depends on the collection's
// sampling interval. Exactly these plans admit per-group cache patching on
// append — GroupSeries over any one series is independent of the others, so
// a touched group can be regrouped alone and spliced into a cached slice.
// Pinned push-down plans must be dropped and rebuilt instead.
func (p *Plan) PinFree() bool {
	return !p.opts.Pushdown || len(p.pinned) == 0
}

// groupCfg builds the GROUP configuration for a series collection (the
// skip-window padding depends on the collection's sampling interval).
func (p *Plan) groupCfg(series []dataset.Series) groupConfig {
	gcfg := groupConfig{zNormalize: !p.yConstrained}
	if p.opts.Pushdown && p.allPinned && len(p.pinned) > 0 {
		gcfg.keepRanges = padRanges(p.pinned, xStep(series)*1.5)
	}
	return gcfg
}

// GroupSeries runs the push-down filter and the GROUP operator over a
// series collection, returning the candidate visualizations RunGrouped
// scores. The result is what a serving layer caches to skip EXTRACT +
// GROUP on repeated queries with the same visual parameters.
func (p *Plan) GroupSeries(series []dataset.Series) []*Viz {
	if p.opts.Pushdown && len(p.pinned) > 0 {
		series = filterSeriesWithData(series, p.pinned)
	}
	gcfg := p.groupCfg(series)
	vizs := make([]*Viz, 0, len(series))
	for _, s := range series {
		if v := group(s, gcfg); v != nil {
			vizs = append(vizs, v)
		}
	}
	return vizs
}

// Search runs the full EXTRACT → GROUP → SEGMENT → SCORE pipeline over a
// data source: a bare *dataset.Table (legacy row-at-a-time extraction) or a
// *dataset.Index (columnar extraction with dictionary-encoded grouping and
// vectorized filters). Filter validation happens once, up front, inside the
// source's Extract — never per row.
func (p *Plan) Search(src dataset.Source, spec dataset.ExtractSpec) ([]Result, error) {
	return p.SearchContext(context.Background(), src, spec)
}

// SearchContext is Search with cooperative cancellation: once ctx is done,
// workers stop pulling candidates, the pool drains, and the call returns
// ctx.Err(). Cancellation is checked between candidates (and between
// bounding-pass candidates), so an abandoned request frees its workers
// within one candidate's scoring time.
func (p *Plan) SearchContext(ctx context.Context, src dataset.Source, spec dataset.ExtractSpec) ([]Result, error) {
	// Extraction itself is not interruptible, but never start it for a
	// request that is already dead — on large tables EXTRACT is the most
	// expensive phase before scoring.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	series, err := src.Extract(p.EffectiveSpec(spec))
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, series)
}

// Run ranks pre-extracted series against the compiled query.
func (p *Plan) Run(series []dataset.Series) ([]Result, error) {
	return p.RunContext(context.Background(), series)
}

// RunContext is Run with cooperative cancellation (see SearchContext).
func (p *Plan) RunContext(ctx context.Context, series []dataset.Series) ([]Result, error) {
	if p.opts.Pushdown && len(p.pinned) > 0 {
		series = filterSeriesWithData(series, p.pinned)
	}
	gcfg := p.groupCfg(series)
	return p.run(ctx, len(series), func(i int) *Viz { return group(series[i], gcfg) })
}

// RunGrouped ranks pre-grouped candidate visualizations (from GroupSeries,
// possibly served from a cache) against the compiled query, skipping the
// EXTRACT and GROUP stages entirely.
func (p *Plan) RunGrouped(vizs []*Viz) ([]Result, error) {
	return p.RunGroupedContext(context.Background(), vizs)
}

// RunGroupedContext is RunGrouped with cooperative cancellation (see
// SearchContext).
func (p *Plan) RunGroupedContext(ctx context.Context, vizs []*Viz) ([]Result, error) {
	return p.run(ctx, len(vizs), func(i int) *Viz { return vizs[i] })
}

// sharedTopK is the mutex-guarded heap every pipeline worker feeds; its
// floor (the current k-th best score) is the live pruning threshold. The
// floor is additionally published as an atomic float64 bit pattern, updated
// under the lock in add and read lock-free in the per-candidate hot path —
// the floor is consulted once per candidate per worker, and a monotone,
// possibly slightly stale threshold only affects how much is pruned, never
// what the final top-k is (pruned candidates are verified against the exact
// final floor).
type sharedTopK struct {
	mu        sync.Mutex
	heap      *topk.Heap[float64]
	floorBits atomic.Uint64
}

func newSharedTopK(k int) *sharedTopK {
	s := &sharedTopK{heap: topk.New[float64](k)}
	// −Inf means "no floor yet": it never raises a pruning threshold.
	s.floorBits.Store(math.Float64bits(math.Inf(-1)))
	return s
}

func (s *sharedTopK) add(score float64) {
	s.mu.Lock()
	s.heap.Add(score, score)
	if f, ok := s.heap.Floor(); ok {
		s.floorBits.Store(math.Float64bits(f))
	}
	s.mu.Unlock()
}

// fastFloor returns the last published floor without locking (−Inf until
// the heap fills). The floor only rises, so a stale read is merely a looser
// threshold.
func (s *sharedTopK) fastFloor() float64 {
	return math.Float64frombits(s.floorBits.Load())
}

func (s *sharedTopK) floor() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Floor()
}

// slot is one candidate's pipeline outcome, indexed by input position.
// Evaluated candidates carry their result; pruned candidates are never
// discarded — they carry their grouped viz and sound upper bound so the
// deferred verification stage can exactly re-score any of them that the
// final top-k floor fails to dominate.
type slot struct {
	res    Result
	ok     bool
	v      *Viz
	ub     float64
	pruned bool
}

// topKSlots selects the top-k results from the filled slots by
// (score descending, input index ascending) — the deterministic tie rule
// every engine shares, so pruned, parallel and sequential runs rank
// identically.
func topKSlots(slots []slot, k int) []Result {
	idx := make([]int, 0, len(slots))
	for i := range slots {
		if slots[i].ok {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := slots[idx[a]].res.Score, slots[idx[b]].res.Score
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]Result, len(idx))
	for i, j := range idx {
		out[i] = slots[j].res
	}
	return out
}

// run is the unified scoring pipeline: a pool of Parallelism workers pulls
// candidate indices, groups/evaluates them, and shares one top-k heap whose
// floor is the collective pruning threshold fed to soundUpperBound (Section
// 6.3). Pruning and parallelism compose: with one worker the pipeline
// degenerates to a sequential pruned scan; with many, every worker both
// benefits from and tightens the shared threshold.
//
// Lossless pruning: a candidate is pruned only when a provable upper bound
// on its score (soundUpperBound) trails the live threshold, and even then
// it is recorded, not discarded. After the main pass, any pruned candidate
// whose bound reaches the final top-k floor is exactly re-scored on the
// same worker pool before results are rebuilt. The returned top-k is
// therefore identical — scores and ranking — to the unpruned scan: a
// candidate absent from it either scored below the floor, or carried a
// sound bound (hence an exact score) below the floor. The verification
// stage normally re-scores nothing (the floor comes only from exact scores
// and only rises, so a pruned candidate's bound stays below the final
// floor); it exists so that any future bound regression degrades to wasted
// work, never to a wrong answer.
//
// Determinism: workers fill per-index slots and the final top-k is selected
// by (score, input index), so results are identical under any worker
// interleaving, pruned or not.
func (p *Plan) run(ctx context.Context, n int, viz func(int) *Viz) ([]Result, error) {
	o := p.opts
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.distance {
		return p.distanceRun(ctx, n, viz)
	}

	workers := o.Parallelism
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	if p.prune && !o.DisableAutoIndex && n >= lazyIndexMinCorpus {
		// Corpus-scale inputs route through the shape index even without a
		// prebuilt one: materialize the grouped candidates once (positions
		// preserved — they are the ranking tie-break), build the sharded
		// envelope index over them, and traverse best-first instead of
		// bounding all n. Below the threshold the flat scan stays cheaper
		// than the build.
		vizs := make([]*Viz, n)
		if ctxErr := forEachIndex(ctx, workers, n, func(_, i int) { vizs[i] = viz(i) }); ctxErr != nil {
			return nil, ctxErr
		}
		ix, ixErr := BuildVizIndexContext(ctx, vizs, 0)
		if ixErr != nil {
			return nil, ixErr
		}
		return p.runIndexed(ctx, ix, nil)
	}

	// Per-worker evaluation contexts: every buffer the scoring kernel
	// needs, pooled across runs so steady-state scoring allocates nothing.
	ecs := make([]*evalCtx, workers)
	for i := range ecs {
		ecs[i] = getEvalCtx()
	}
	defer func() {
		for _, ec := range ecs {
			putEvalCtx(ec)
		}
	}()

	var (
		errMu    sync.Mutex
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}

	slots := make([]slot, n)
	shared := newSharedTopK(o.K)

	// Bound-first ordering: with pruning on, every candidate is grouped and
	// bounded up front (the bounds must be recorded anyway for the deferred
	// verification stage), and the scoring pass visits candidates in
	// descending-bound order. Likely-strong candidates score first, so the
	// shared floor tightens almost immediately and pruning stays effective
	// even when the strong candidates are rare and late in input order.
	// Order never affects soundness — only how fast the threshold rises.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if p.prune {
		ctxErr := forEachIndex(ctx, workers, n, func(worker, i int) {
			v := viz(i)
			if v == nil {
				return
			}
			slots[i] = slot{v: v, ub: soundUpperBound(ecs[worker], v, p.norm, o), pruned: true}
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		sort.Slice(order, func(a, b int) bool {
			ua, ub := slots[order[a]].ub, slots[order[b]].ub
			if ua != ub {
				return ua > ub
			}
			return order[a] < order[b]
		})
	}

	ctxErr := forEachIndex(ctx, workers, n, func(worker, j int) {
		if abort.Load() {
			return
		}
		i := order[j]
		var v *Viz
		if p.prune {
			v = slots[i].v
		} else {
			v = viz(i)
		}
		if v == nil {
			return
		}
		if o.Algorithm == AlgExhaustive && v.N() > o.MaxExhaustivePoints {
			fail(fmt.Errorf("executor: exhaustive search limited to %d points, series %q has %d",
				o.MaxExhaustivePoints, v.Series.Z, v.N()))
			return
		}
		if p.prune {
			// The floor is seeded by the bound-first scan itself: the first
			// K exactly-scored candidates are the highest-bound ones, which
			// is what the deleted stage-1 coarse sampling approximated at
			// extra cost (it lost 3–50% end-to-end on every measured
			// workload once this ordering existed).
			threshold := shared.fastFloor() + o.pruneThresholdBias
			if !math.IsInf(threshold, -1) && slots[i].ub < threshold {
				return // stays recorded as pruned, with its bound
			}
		}
		sc, ranges, err := evalViz(ecs[worker], v, p.norm, o, p.solver)
		if err != nil {
			fail(err)
			return
		}
		if p.prune {
			// Tighten the live threshold. Without pruning nothing reads the
			// shared floor, so skip the lock; the final top-k is rebuilt
			// from slots either way.
			shared.add(sc)
		}
		slots[i] = slot{res: makeResult(v, sc, ranges), ok: true}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	if p.prune {
		// The shared heap saw every exactly-scored candidate, so its floor
		// is the final top-k floor the verification stage compares against.
		floor, full := shared.floor()
		if err := p.verifyPruned(ctx, workers, ecs, slots, floor, full, fail, &abort); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}

	return topKSlots(slots, o.K), nil
}

// verifyPruned is the deferred exact-verification stage (stage 3 of the
// lossless pruning): every pruned candidate whose sound upper bound is not
// strictly dominated by the final top-k floor (the shared heap's floor
// after the main pass; full is false while fewer than k candidates scored,
// and then every pruned candidate is verified) is re-scored exactly on the
// worker pool, in place. Rescoring can only add results at or above the
// floor, so a single pass suffices: candidates it leaves pruned carry a
// bound — and therefore an exact score — provably below the floor.
func (p *Plan) verifyPruned(ctx context.Context, workers int, ecs []*evalCtx, slots []slot, floor float64, full bool, fail func(error), abort *atomic.Bool) error {
	rescue := make([]int, 0, 16)
	for i := range slots {
		if slots[i].pruned && (!full || slots[i].ub >= floor-boundEps) {
			rescue = append(rescue, i)
		}
	}
	if len(rescue) == 0 {
		return nil
	}
	return forEachIndex(ctx, workers, len(rescue), func(worker, j int) {
		if abort.Load() {
			return
		}
		i := rescue[j]
		sc, ranges, err := evalViz(ecs[worker], slots[i].v, p.norm, p.opts, p.solver)
		if err != nil {
			fail(err)
			return
		}
		slots[i] = slot{res: makeResult(slots[i].v, sc, ranges), ok: true}
	})
}

// forEachIndex runs fn over [0, n) on the given number of worker
// goroutines (inline when one suffices), returning once all calls finish.
// fn receives its worker's index (always < workers) so callers can hand
// each worker private state. Cancellation is cooperative: once ctx is done
// no further indices are dispatched, in-flight calls finish, and the
// context's error is returned.
func forEachIndex(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain the channel without scoring
				}
				fn(worker, i)
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// distanceRun ranks visualizations by DTW or Euclidean distance to a
// reference trendline synthesized from the query — the value-based matching
// of visual query systems that Section 9 compares against. The scan runs on
// the same worker pool as the segmentation engines; the per-(alternative,
// length) reference memo is shared under a read-favoring lock, and the
// top-k is selected from per-index slots with the pipeline's (score, index)
// tie rule so the ranking is identical to the sequential scan under any
// interleaving.
func (p *Plan) distanceRun(ctx context.Context, n int, viz func(int) *Viz) ([]Result, error) {
	o := p.opts
	workers := o.Parallelism
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	type refKey struct{ alt, n int }
	var (
		refMu sync.RWMutex
		refs  = make(map[refKey][]float64) // reference per alternative index and length
	)
	refFor := func(ai int, alt shape.Chain, length int) []float64 {
		key := refKey{ai, length}
		refMu.RLock()
		ref, ok := refs[key]
		refMu.RUnlock()
		if ok {
			return ref
		}
		computed := dtw.ZNormalized(renderReference(alt, length))
		refMu.Lock()
		if prev, ok := refs[key]; ok {
			computed = prev // lost the race; keep the first
		} else {
			refs[key] = computed
		}
		refMu.Unlock()
		return computed
	}
	slots := make([]slot, n)
	err := forEachIndex(ctx, workers, n, func(_, i int) {
		v := viz(i)
		if v == nil {
			return
		}
		target := dtw.ZNormalized(v.Series.Y)
		best := math.Inf(-1)
		for ai, alt := range p.norm.Alternatives {
			ref := refFor(ai, alt, v.N())
			var d float64
			if o.Algorithm == AlgDTW {
				d = dtw.BandDistance(ref, target, o.DTWBand)
			} else {
				d = dtw.Euclidean(ref, target)
			}
			if sc := dtw.Similarity(d, v.N(), 2.0); sc > best {
				best = sc
			}
		}
		slots[i] = slot{res: Result{Z: v.Series.Z, Score: best, Series: v.Series}, ok: true}
	})
	if err != nil {
		return nil, err
	}
	return topKSlots(slots, o.K), nil
}
