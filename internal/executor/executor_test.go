package executor

import (
	"math"
	"strings"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// mkSeries builds a series with x = 0..len-1.
func mkSeries(z string, ys ...float64) dataset.Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return dataset.Series{Z: z, X: xs, Y: ys}
}

// ramp produces a piecewise linear series from leg deltas: each leg is
// (pointCount, perPointDelta).
func ramp(z string, start float64, legs ...[2]float64) dataset.Series {
	ys := []float64{start}
	y := start
	for _, leg := range legs {
		for i := 0; i < int(leg[0]); i++ {
			y += leg[1]
			ys = append(ys, y)
		}
	}
	return mkSeries(z, ys...)
}

func seqOpts() Options {
	o := DefaultOptions()
	o.Parallelism = 1
	return o
}

func search(t *testing.T, series []dataset.Series, q string, opts Options) []Result {
	t.Helper()
	res, err := SearchSeries(series, regexlang.MustParse(q), opts)
	if err != nil {
		t.Fatalf("SearchSeries(%q): %v", q, err)
	}
	return res
}

func TestGroupNormalization(t *testing.T) {
	s := mkSeries("a", 10, 20, 30, 40, 50)
	v := group(s, groupConfig{zNormalize: true})
	if v == nil {
		t.Fatal("nil viz")
	}
	if v.NX[0] != 0 || math.Abs(v.NX[4]-normXSpan) > 1e-12 {
		t.Fatalf("NX = %v", v.NX)
	}
	var mean float64
	for _, y := range v.NY {
		mean += y
	}
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("z-normalized mean = %v", mean)
	}
	// Slope over the full range should be positive and ~40-50 degrees in
	// normalized chart space.
	slope, ok := v.rangeSlope(0, 4)
	if !ok || slope <= 0 {
		t.Fatalf("slope = %v, %v", slope, ok)
	}
	deg := math.Atan(slope) * 180 / math.Pi
	if deg < 20 || deg > 60 {
		t.Fatalf("full-chart steady rise fits %v degrees; expected chart-like 20-60", deg)
	}
}

func TestGroupDegenerate(t *testing.T) {
	if v := group(mkSeries("a", 5), groupConfig{}); v != nil {
		t.Fatal("single-point series should yield nil viz")
	}
	if v := group(dataset.Series{}, groupConfig{}); v != nil {
		t.Fatal("empty series should yield nil viz")
	}
}

func TestIndexOfX(t *testing.T) {
	v := group(mkSeries("a", 1, 2, 3, 4, 5, 6), groupConfig{})
	if i := v.indexOfX(2.0); i != 2 {
		t.Fatalf("indexOfX(2) = %d", i)
	}
	if i := v.indexOfX(2.5); i != 3 {
		t.Fatalf("indexOfX(2.5) = %d", i)
	}
	if i := v.indexAtOrBefore(2.5); i != 2 {
		t.Fatalf("indexAtOrBefore(2.5) = %d", i)
	}
	if i := v.indexOfX(99); i != 5 {
		t.Fatalf("indexOfX(99) = %d", i)
	}
}

func peakValleySeries() []dataset.Series {
	return []dataset.Series{
		ramp("peak", 0, [2]float64{10, 1}, [2]float64{10, -1}),
		ramp("valley", 10, [2]float64{10, -1}, [2]float64{10, 1}),
		ramp("rise", 0, [2]float64{20, 1}),
		ramp("fall", 20, [2]float64{20, -1}),
		ramp("flat", 5, [2]float64{20, 0.001}),
	}
}

func TestSearchUpDown(t *testing.T) {
	for _, alg := range []Algorithm{AlgDP, AlgSegmentTree, AlgGreedy} {
		opts := seqOpts()
		opts.Algorithm = alg
		res := search(t, peakValleySeries(), "u ; d", opts)
		if len(res) != 5 {
			t.Fatalf("%v: %d results", alg, len(res))
		}
		if res[0].Z != "peak" {
			t.Fatalf("%v: top = %s (score %v), want peak", alg, res[0].Z, res[0].Score)
		}
		if res[0].Score < 0.5 {
			t.Fatalf("%v: peak score = %v, want strong", alg, res[0].Score)
		}
		// The worst match for up-down should be the valley.
		if res[len(res)-1].Z != "valley" {
			t.Fatalf("%v: bottom = %s, want valley", alg, res[len(res)-1].Z)
		}
	}
}

func TestSearchDownUp(t *testing.T) {
	res := search(t, peakValleySeries(), "d ; u", seqOpts())
	if res[0].Z != "valley" {
		t.Fatalf("top = %s, want valley", res[0].Z)
	}
}

func TestSearchBreaksAtTurn(t *testing.T) {
	series := []dataset.Series{ramp("peak", 0, [2]float64{12, 1}, [2]float64{8, -1})}
	opts := seqOpts()
	opts.Algorithm = AlgDP
	res := search(t, series, "u ; d", opts)
	if len(res[0].Ranges) != 2 {
		t.Fatalf("ranges = %v", res[0].Ranges)
	}
	// The break should land at the turning point (index 12).
	br := res[0].Ranges[0][1]
	if br < 11 || br > 13 {
		t.Fatalf("break at %d, want ~12", br)
	}
	if len(res[0].BreakXs) != 3 {
		t.Fatalf("BreakXs = %v", res[0].BreakXs)
	}
}

func TestTopKLimit(t *testing.T) {
	opts := seqOpts()
	opts.K = 2
	res := search(t, peakValleySeries(), "u ; d", opts)
	if len(res) != 2 {
		t.Fatalf("K=2 gave %d results", len(res))
	}
	if res[0].Score < res[1].Score {
		t.Fatal("results must be sorted descending")
	}
}

func TestNonFuzzyPinned(t *testing.T) {
	// down on [0..10], up on [10..20]: matches "down 0-10".
	series := []dataset.Series{
		ramp("match", 10, [2]float64{10, -1}, [2]float64{10, 1}),
		ramp("anti", 0, [2]float64{10, 1}, [2]float64{10, -1}),
	}
	res := search(t, series, "[p=down, x.s=0, x.e=10]", seqOpts())
	if res[0].Z != "match" || res[0].Score < 0.4 {
		t.Fatalf("top = %+v", res[0])
	}
	if res[1].Score > 0 {
		t.Fatalf("anti should score negative, got %v", res[1].Score)
	}
}

func TestNonFuzzyGapPins(t *testing.T) {
	// Pinned segments with a gap between them (like the 50Words Table 11
	// query): down on [0..10], anything, up on [30..40].
	series := []dataset.Series{
		ramp("match", 20, [2]float64{10, -1}, [2]float64{20, 0}, [2]float64{10, 1}),
		ramp("wrong", 0, [2]float64{10, 1}, [2]float64{20, 0}, [2]float64{10, -1}),
	}
	q := "[p=down, x.s=0, x.e=10][p=up, x.s=30, x.e=40]"
	res := search(t, series, q, seqOpts())
	if res[0].Z != "match" || res[0].Score < 0.4 {
		t.Fatalf("top = %s score %v", res[0].Z, res[0].Score)
	}
	if res[1].Score > -0.4 {
		t.Fatalf("wrong should score badly, got %v", res[1].Score)
	}
}

func TestHybridQuery(t *testing.T) {
	// Pinned up at [0..10] followed by fuzzy down then up.
	series := []dataset.Series{
		ramp("good", 0, [2]float64{10, 1}, [2]float64{8, -1}, [2]float64{8, 1}),
		ramp("bad", 10, [2]float64{10, -1}, [2]float64{8, 1}, [2]float64{8, -1}),
	}
	q := "[p=up, x.s=0, x.e=10] ; d ; u"
	res := search(t, series, q, seqOpts())
	if res[0].Z != "good" || res[0].Score < 0.4 {
		t.Fatalf("top = %s score %v", res[0].Z, res[0].Score)
	}
}

func TestPushdownEquivalence(t *testing.T) {
	series := peakValleySeries()
	q := "[p=up, x.s=0, x.e=10]"
	on := seqOpts()
	off := seqOpts()
	off.Pushdown = false
	ron := search(t, series, q, on)
	roff := search(t, series, q, off)
	if len(ron) == 0 || len(roff) == 0 {
		t.Fatal("no results")
	}
	// Push-down must not change the top result or its score materially.
	if ron[0].Z != roff[0].Z || math.Abs(ron[0].Score-roff[0].Score) > 1e-9 {
		t.Fatalf("pushdown changed results: %+v vs %+v", ron[0], roff[0])
	}
}

func TestPushdownDropsNoDataSeries(t *testing.T) {
	far := mkSeries("far", 1, 2, 3)
	// Shift x far from the pinned window.
	for i := range far.X {
		far.X[i] += 1000
	}
	series := []dataset.Series{ramp("near", 0, [2]float64{20, 1}), far}
	res := search(t, series, "[p=up, x.s=0, x.e=10]", seqOpts())
	for _, r := range res {
		if r.Z == "far" {
			t.Fatal("series with no data in the pinned window should be pruned")
		}
	}
}

func TestOrAlternatives(t *testing.T) {
	series := []dataset.Series{
		ramp("peak", 0, [2]float64{10, 1}, [2]float64{10, -1}),
		ramp("downup", 10, [2]float64{10, -1}, [2]float64{10, 1}),
	}
	// (u⊗d) ⊕ (d⊗u): both should score highly via different alternatives.
	res := search(t, series, "(u ; d) | (d ; u)", seqOpts())
	if res[0].Score < 0.5 || res[1].Score < 0.5 {
		t.Fatalf("scores = %v, %v", res[0].Score, res[1].Score)
	}
}

func TestAndOpposite(t *testing.T) {
	series := []dataset.Series{
		ramp("rise", 0, [2]float64{20, 1}),
		ramp("flat", 5, [2]float64{20, 0}),
	}
	// up AND not flat.
	res := search(t, series, "[p=up] & ![p=flat]", seqOpts())
	if res[0].Z != "rise" {
		t.Fatalf("top = %s", res[0].Z)
	}
	if res[1].Score > 0 {
		t.Fatalf("flat series should fail 'up and not flat', got %v", res[1].Score)
	}
}

func TestQuantifierTwoPeaks(t *testing.T) {
	series := []dataset.Series{
		ramp("twopeaks", 0, [2]float64{5, 1}, [2]float64{5, -1}, [2]float64{5, 1}, [2]float64{5, -1}),
		ramp("onepeak", 0, [2]float64{10, 1}, [2]float64{10, -1}),
		ramp("fall", 20, [2]float64{20, -1}),
	}
	res := search(t, series, "[p=up, m={2,}]", seqOpts())
	if res[0].Z != "twopeaks" {
		t.Fatalf("top = %s", res[0].Z)
	}
	scores := map[string]float64{}
	for _, r := range res {
		scores[r.Z] = r.Score
	}
	if scores["onepeak"] != score.WorstScore {
		t.Fatalf("one rise under {2,} should be -1, got %v", scores["onepeak"])
	}
	// At most one rise: twopeaks must now fail.
	res = search(t, series, "[p=up, m={,1}]", seqOpts())
	scores = map[string]float64{}
	for _, r := range res {
		scores[r.Z] = r.Score
	}
	if scores["twopeaks"] != score.WorstScore {
		t.Fatalf("two rises under {,1} should be -1, got %v", scores["twopeaks"])
	}
	if scores["onepeak"] <= 0 {
		t.Fatalf("one rise under {,1} should be positive, got %v", scores["onepeak"])
	}
}

func TestIteratorWindow(t *testing.T) {
	// Sharpest 5-wide rise lives in "sharp", which rises 5 in 5 points;
	// "gentle" rises 5 over 20 points.
	series := []dataset.Series{
		ramp("sharp", 0, [2]float64{10, 0}, [2]float64{5, 1}, [2]float64{10, 0}),
		ramp("gentle", 0, [2]float64{25, 0.2}),
	}
	res := search(t, series, "[x.s=., x.e=.+5, p=up]", seqOpts())
	if res[0].Z != "sharp" {
		t.Fatalf("top = %s (scores %v, %v)", res[0].Z, res[0].Score, res[1].Score)
	}
}

func TestPositionReference(t *testing.T) {
	// Query: up, then up with smaller slope than segment 0.
	series := []dataset.Series{
		ramp("slowing", 0, [2]float64{10, 2}, [2]float64{10, 0.3}),
		ramp("speeding", 0, [2]float64{10, 0.3}, [2]float64{10, 2}),
	}
	res := search(t, series, "[p=up][p=$0, m=<]", seqOpts())
	if res[0].Z != "slowing" {
		t.Fatalf("top = %s (scores: %v vs %v)", res[0].Z, res[0].Score, res[1].Score)
	}
}

func TestNestedPattern(t *testing.T) {
	series := []dataset.Series{
		ramp("peak", 0, [2]float64{10, 1}, [2]float64{10, -1}),
		ramp("rise", 0, [2]float64{20, 1}),
	}
	res := search(t, series, "[p=[[p=up][p=down]]]", seqOpts())
	if res[0].Z != "peak" {
		t.Fatalf("top = %s", res[0].Z)
	}
}

func TestUDP(t *testing.T) {
	opts := seqOpts()
	opts.UDPs = score.NewRegistry()
	opts.UDPs.Register("endshigh", func(xs, ys []float64) float64 {
		if len(ys) == 0 {
			return -1
		}
		max := ys[0]
		for _, y := range ys {
			if y > max {
				max = y
			}
		}
		if ys[len(ys)-1] >= max-1e-9 {
			return 1
		}
		return -1
	})
	series := []dataset.Series{
		ramp("climber", 0, [2]float64{20, 1}),
		ramp("peak", 0, [2]float64{10, 1}, [2]float64{10, -1}),
	}
	res := search(t, series, "[p=endshigh]", opts)
	if res[0].Z != "climber" || res[0].Score != 1 {
		t.Fatalf("top = %+v", res[0])
	}
	// Unknown UDP is a compile error.
	if _, err := SearchSeries(series, regexlang.MustParse("[p=ghost]"), seqOpts()); err == nil ||
		!strings.Contains(err.Error(), "user-defined pattern") {
		t.Fatalf("expected unknown-UDP error, got %v", err)
	}
}

func TestSketchSegment(t *testing.T) {
	series := []dataset.Series{
		ramp("vshape", 10, [2]float64{10, -1}, [2]float64{10, 1}),
		ramp("rise", 0, [2]float64{20, 1}),
	}
	// Sketch of a V shape.
	res := search(t, series, "[v=(0:10,5:5,10:0,15:5,20:10)]", seqOpts())
	if res[0].Z != "vshape" {
		t.Fatalf("top = %s", res[0].Z)
	}
	if res[0].Score < 0.5 {
		t.Fatalf("sketch match score = %v", res[0].Score)
	}
}

func TestYConstraints(t *testing.T) {
	series := []dataset.Series{
		ramp("anchored", 10, [2]float64{10, 9}),   // 10 → 100 over x 0..10
		ramp("offtarget", 50, [2]float64{10, 10}), // 50 → 150
	}
	q := "[x.s=0, x.e=10, y.s=10, y.e=100]"
	res := search(t, series, q, seqOpts())
	if res[0].Z != "anchored" || res[0].Score < 0.5 {
		t.Fatalf("top = %+v", res[0])
	}
	if res[1].Score != score.WorstScore {
		t.Fatalf("offtarget should fail location check, got %v", res[1].Score)
	}
}

func TestDTWAndEuclideanSearch(t *testing.T) {
	series := peakValleySeries()
	for _, alg := range []Algorithm{AlgDTW, AlgEuclidean} {
		opts := seqOpts()
		opts.Algorithm = alg
		res := search(t, series, "u ; d", opts)
		if len(res) != 5 {
			t.Fatalf("%v: %d results", alg, len(res))
		}
		if res[0].Z != "peak" {
			t.Fatalf("%v: top = %s", alg, res[0].Z)
		}
	}
}

func TestParallelismEquivalence(t *testing.T) {
	series := peakValleySeries()
	seq := seqOpts()
	par := seqOpts()
	par.Parallelism = 4
	a := search(t, series, "u ; d", seq)
	b := search(t, series, "u ; d", par)
	if len(a) != len(b) {
		t.Fatal("result count mismatch")
	}
	for i := range a {
		if a[i].Z != b[i].Z || a[i].Score != b[i].Score {
			t.Fatalf("parallel mismatch at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExhaustiveGuard(t *testing.T) {
	big := make([]float64, 200)
	for i := range big {
		big[i] = float64(i)
	}
	opts := seqOpts()
	opts.Algorithm = AlgExhaustive
	_, err := SearchSeries([]dataset.Series{mkSeries("big", big...)}, regexlang.MustParse("u;d"), opts)
	if err == nil || !strings.Contains(err.Error(), "exhaustive") {
		t.Fatalf("expected exhaustive guard error, got %v", err)
	}
}

func TestSearchFromTable(t *testing.T) {
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: []string{"a", "a", "a", "b", "b", "b"}},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: []float64{0, 1, 2, 0, 1, 2}},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: []float64{0, 1, 2, 2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(tbl, dataset.ExtractSpec{Z: "z", X: "x", Y: "y"}, regexlang.MustParse("u"), seqOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Z != "a" {
		t.Fatalf("top = %s", res[0].Z)
	}
}

func TestInvalidQuerySurfaces(t *testing.T) {
	q := shape.Query{Root: shape.Seg(shape.Segment{})}
	if _, err := SearchSeries(peakValleySeries(), q, seqOpts()); err == nil {
		t.Fatal("invalid query should error")
	}
	andChain := shape.Query{Root: shape.And(
		shape.PatternSeg(shape.PatUp),
		shape.Concat(shape.PatternSeg(shape.PatUp), shape.PatternSeg(shape.PatDown)),
	)}
	if _, err := SearchSeries(peakValleySeries(), andChain, seqOpts()); err == nil {
		t.Fatal("AND-over-chain should error")
	}
}
