package executor

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"shapesearch/internal/shape"
	"shapesearch/internal/shapeindex"
)

// This file wires the corpus shape index (internal/shapeindex) into the
// scoring pipeline. The flat pruned scan (Plan.run) still bounds every
// candidate once per query — O(N) even when the bound would let it skip the
// whole corpus. The index precomputes the bound's query-independent per-viz
// ingredients (Viz.boundSummary) once, merges them into bucket envelopes
// whose capped-extreme intervals dominate every member's, and lets a query
// traverse buckets best-first: a subtree whose envelope bound trails the
// live top-k floor is skipped without ever touching its members.
//
// Soundness reduces to one property, envelopeUpperBound(env) ≥
// soundUpperBound(member) for every member beneath env (pinned by
// TestIndexedBoundDominatesSound), which in turn rests on three monotone
// pieces: the envelope's merged slope extremes dominate each member's
// elementwise (shapeindex merge rules), maxSlopeWeight is nonincreasing in
// the width floor and nondecreasing in the grid ratio (so the envelope's
// min-N/max-ratio evaluation receives the loosest cap), and
// score.BoundsInterval/unitBounds compose monotonically under interval
// widening. A skipped subtree therefore provably contains no top-k member:
// member score ≤ member bound ≤ envelope bound < floor at skip time ≤ final
// floor (the floor only rises). Everything visited flows through the
// existing slot machinery — exact scoring, deferred verification, (score
// desc, index asc) selection — so indexed results are byte-identical to the
// flat scan's (TestIndexedSearchMatchesScan).

// lazyIndexMinCorpus is the corpus size at which Plan.run builds a
// throwaway index instead of flat-scanning: below it the build (summaries +
// sort) costs more than the skipped bounds save.
const lazyIndexMinCorpus = 4096

// VizIndex pairs grouped candidate visualizations with the corpus shape
// index built over their bound summaries. Positions in the vizs slice are
// the member ids the index reports — and the tie-break indices of the final
// ranking, so an indexed run ranks exactly like a scan over the same slice.
// Immutable after build; safe for concurrent searches.
type VizIndex struct {
	vizs []*Viz
	sums []*shapeindex.Summary
	ix   *shapeindex.Index
}

// BuildVizIndex precomputes each candidate's bound summary (in parallel —
// the per-viz slope-extreme scan is the dominant cost) and builds the
// sharded envelope index over them. Nil entries are tolerated and never
// surface in traversal. shards <= 0 picks GOMAXPROCS. Uncancellable
// compatibility wrapper for BuildVizIndexContext.
func BuildVizIndex(vizs []*Viz, shards int) *VizIndex {
	ix, _ := BuildVizIndexContext(context.Background(), vizs, shards)
	return ix
}

// BuildVizIndexContext is BuildVizIndex under the caller's cancellation:
// ctx aborts the parallel summary pass between candidates and the build
// returns ctx's error with a nil index.
func BuildVizIndexContext(ctx context.Context, vizs []*Viz, shards int) (*VizIndex, error) {
	sums := make([]*shapeindex.Summary, len(vizs))
	workers := runtime.GOMAXPROCS(0)
	if err := forEachIndex(ctx, workers, len(vizs), func(_, i int) {
		if vizs[i] != nil {
			sums[i] = vizs[i].boundSummary()
		}
	}); err != nil {
		return nil, err
	}
	return &VizIndex{vizs: vizs, sums: sums, ix: shapeindex.Build(sums, shards)}, nil
}

// Update absorbs an append delta: vizs is the FULL new candidate slice
// (same positions as before, possibly longer at the end), and changed lists
// the positions whose Viz objects were replaced or appended. Only those
// positions are re-summarized and patched into the envelope hierarchy
// (shapeindex.Index.Update) — O(|changed| · leaf + dirtyLeaves · log N),
// never O(corpus). The receiver is left untouched, so searches running
// against the old index stay correct; and because indexed search results
// are byte-identical to a flat scan for ANY sound index, the patched
// index's different bucket composition cannot change what a query returns.
//
// Positions must be stable: the ids the index reports are ranking
// tie-breaks, so callers that insert mid-slice must rebuild instead.
func (x *VizIndex) Update(vizs []*Viz, changed []int) *VizIndex {
	sums := make([]*shapeindex.Summary, len(vizs))
	copy(sums, x.sums)
	ids := make([]int32, 0, len(changed))
	for _, i := range changed {
		if i < 0 || i >= len(vizs) {
			continue
		}
		if vizs[i] != nil {
			sums[i] = vizs[i].boundSummary()
		} else {
			sums[i] = nil
		}
		ids = append(ids, int32(i))
	}
	for i := len(x.sums); i < len(vizs); i++ {
		if sums[i] == nil && vizs[i] != nil {
			sums[i] = vizs[i].boundSummary()
		}
	}
	return &VizIndex{vizs: vizs, sums: sums, ix: x.ix.Update(sums, ids)}
}

// Staleness reports how many candidate positions Update has patched since
// the index was last fully built — the signal rebuild policies threshold
// on, since patched buckets lose clustering tightness over time.
func (x *VizIndex) Staleness() int { return x.ix.Staleness() }

// Vizs returns the indexed candidate slice (shared, read-only).
func (x *VizIndex) Vizs() []*Viz { return x.vizs }

// Len reports the number of indexed (non-nil) candidates.
func (x *VizIndex) Len() int { return x.ix.Len() }

// IndexStats reports how much of the corpus an indexed search touched.
type IndexStats struct {
	// Candidates is the indexed corpus size.
	Candidates int
	// Leaves counts leaf buckets whose envelope bound survived the floor.
	Leaves int
	// Visited counts members bounded individually (members of surviving
	// leaves); Candidates − Visited were skipped by envelope bounds alone.
	Visited int
	// Scored counts exact evaluations, including deferred verification.
	Scored int
}

// envelopeUpperBound bounds every member's query score from the bucket
// envelope alone: soundUpperBoundShared's interval composition evaluated at
// the envelope's merged extremes, minimum point count and maximum grid
// ratio. resetBoundCaches must precede it (the convenience wrapper below
// does); the caches compose across queries exactly as for members.
func envelopeUpperBound(ec *evalCtx, s *shapeindex.Summary, norm shape.Normalized, o *Options) float64 {
	ec.resetBoundCaches(o.chainMeta)
	return envelopeUpperBoundShared(ec, s, norm, o)
}

func envelopeUpperBoundShared(ec *evalCtx, s *shapeindex.Summary, norm shape.Normalized, o *Options) float64 {
	if !s.Boundable() {
		return math.Inf(1) // some member is unboundable: never skip the bucket
	}
	ps := pruneStats{
		nPairs: s.NPairs,
		low:    s.Low, lowPrefix: s.LowPrefix,
		high: s.High, highPrefix: s.HighPrefix,
		ratio: s.Ratio,
	}
	meta := o.chainMeta
	ub := math.Inf(-1)
	for ai, alt := range norm.Alternatives {
		var am *altMeta
		if meta != nil {
			am = &meta.alts[ai]
			if g := am.boundGroup; g >= 0 && ec.ubChainSet[g] {
				if c := ec.ubChainUB[g]; c > ub {
					ub = c
				}
				continue
			}
		}
		chainUB := envChainUpperBound(ec, s, &ps, alt, o, am)
		if am != nil && am.boundGroup >= 0 {
			ec.ubChainSet[am.boundGroup] = true
			ec.ubChainUB[am.boundGroup] = chainUB
		}
		if chainUB > ub {
			ub = chainUB
		}
	}
	return ub
}

// envChainUpperBound bounds one alternative over a bucket envelope. Two
// regimes mirror chainUpperBound's member reconstruction without per-viz
// anchors:
//
//   - Pin-free chains (exactly the chains bound groups cover): the whole
//     chart is one fuzzy run. The width floor is evaluated at the
//     envelope's minimum point count — minSpanWidth is monotone
//     nondecreasing in n, so the envelope's floor is ≤ every feasible
//     member's, its capped-extreme interval ⊇ theirs, its unit bounds ≥
//     theirs. Members too short for the run (N < units+1) score Worst per
//     unit, which any unit upper bound dominates; the max(N, k+1) below
//     keeps the envelope on the feasible regime for everyone else.
//   - Chains with pins: anchors resolve per member (tolerance windows, pin
//     errors, anchored exact slopes), so the envelope falls back to the
//     widest slope statement it can make — the raw pair-slope extremes
//     [Low[0], High[0]], which contain every member's capped-extreme
//     interval and every anchored range's fitted slope (a convex
//     combination of valid pair slopes) — or (−Inf, +Inf) when MayFail
//     marks a member that may anchor a degenerate or skip-crossing range.
//     Member Worst outcomes (pin errors, infeasible runs) are dominated by
//     any unit upper bound. Span key 0 is never used by run bounds (real
//     spans are ≥ 1), so the pinned interval gets its own unitHi cache
//     slot.
func envChainUpperBound(ec *evalCtx, s *shapeindex.Summary, ps *pruneStats, alt shape.Chain, o *Options, am *altMeta) float64 {
	k := len(alt.Units)
	pinned := false
	if am != nil {
		pinned = am.boundGroup < 0
	} else {
		for _, u := range alt.Units {
			if _, has := u.PinnedStart(); has {
				pinned = true
				break
			}
			if _, has := u.PinnedEnd(); has {
				pinned = true
				break
			}
		}
	}
	var chainUB float64
	if pinned {
		sLo, sHi := ps.low[0], ps.high[0]
		if s.MayFail {
			sLo, sHi = math.Inf(-1), math.Inf(1)
		}
		for t, u := range alt.Units {
			bsig := -1
			if am != nil {
				bsig = am.bsigs[t]
			}
			chainUB += u.Weight * ec.unitHi(u.Node, bsig, 0, sLo, sHi, s.MayFail)
		}
		return chainUB
	}
	n := s.N
	if n < k+1 {
		n = k + 1
	}
	span := minSpanWidth(o, n, k, 0, n-1)
	sLo, sHi := ec.spanInterval(ps, span+1)
	for t, u := range alt.Units {
		bsig := -1
		if am != nil {
			bsig = am.bsigs[t]
		}
		chainUB += u.Weight * ec.unitHi(u.Node, bsig, span, sLo, sHi, s.MayFail)
	}
	return chainUB
}

// RunIndexed ranks the indexed candidates against the compiled query.
func (p *Plan) RunIndexed(ix *VizIndex) ([]Result, error) {
	return p.RunIndexedContext(context.Background(), ix)
}

// RunIndexedContext is RunIndexed with cooperative cancellation (see
// SearchContext).
func (p *Plan) RunIndexedContext(ctx context.Context, ix *VizIndex) ([]Result, error) {
	return p.RunIndexedStatsContext(ctx, ix, nil)
}

// RunIndexedStatsContext additionally fills st (when non-nil) with traversal
// statistics. Engines without a sound bound to traverse by (distance
// baselines, pruning disabled) fall back to the flat pipeline over the
// indexed slice — same results, no skipping.
func (p *Plan) RunIndexedStatsContext(ctx context.Context, ix *VizIndex, st *IndexStats) ([]Result, error) {
	if !p.prune || p.distance {
		if st != nil {
			*st = IndexStats{Candidates: ix.Len(), Visited: ix.Len(), Scored: ix.Len()}
		}
		return p.run(ctx, len(ix.vizs), func(i int) *Viz { return ix.vizs[i] })
	}
	return p.runIndexed(ctx, ix, st)
}

// idxRec is one visited candidate's pipeline outcome, tagged with its
// corpus id. The indexed pipeline records only visited members — sparse,
// unlike the flat scan's dense slot array — so skipped corpus stays
// untouched in memory too.
type idxRec struct {
	id int32
	s  slot
}

// runIndexed is the indexed counterpart of Plan.run: per-shard best-first
// traversal on the worker pool, one worker per shard slot, all shards
// feeding one atomic top-k floor (the PR 5 broadcast — a floor raised by
// any shard prunes subtrees in every other). Within a surviving leaf,
// members are bounded individually and scored in descending-bound order,
// exactly the flat scan's bound-first discipline at bucket granularity.
// Deferred verification then re-scores any visited-but-pruned member whose
// bound reaches the final floor; unvisited members need no verification —
// their envelope bound, which dominates their exact score, was below a
// floor that only rose.
func (p *Plan) runIndexed(ctx context.Context, ix *VizIndex, st *IndexStats) ([]Result, error) {
	o := p.opts
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nShards := ix.ix.NumShards()
	if nShards == 0 {
		return topKSlots(nil, o.K), nil
	}
	workers := o.Parallelism
	if workers > nShards {
		workers = nShards
	}
	if workers < 1 {
		workers = 1
	}
	ecs := make([]*evalCtx, workers)
	for i := range ecs {
		ecs[i] = getEvalCtx()
	}
	defer func() {
		for _, ec := range ecs {
			putEvalCtx(ec)
		}
	}()

	var (
		errMu    sync.Mutex
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}

	shared := newSharedTopK(o.K)
	perShard := make([][]idxRec, nShards)
	var leaves, visited, scored atomic.Int64

	ctxErr := forEachIndex(ctx, workers, nShards, func(worker, si int) {
		ec := ecs[worker]
		var recs []idxRec
		ix.ix.Traverse(si,
			func(env *shapeindex.Summary) float64 { return envelopeUpperBound(ec, env, p.norm, o) },
			shared.fastFloor,
			boundEps,
			func(members []int32, _ float64) bool {
				if abort.Load() || ctx.Err() != nil {
					return false
				}
				leaves.Add(1)
				visited.Add(int64(len(members)))
				base := len(recs)
				for _, id := range members {
					v := ix.vizs[id]
					if v == nil {
						continue // update-nilled slot: folds unboundable, nothing to score
					}
					recs = append(recs, idxRec{id: id, s: slot{v: v, ub: soundUpperBound(ec, v, p.norm, o), pruned: true}})
				}
				bucket := recs[base:]
				sort.Slice(bucket, func(a, b int) bool {
					if bucket[a].s.ub != bucket[b].s.ub {
						return bucket[a].s.ub > bucket[b].s.ub
					}
					return bucket[a].id < bucket[b].id
				})
				for bi := range bucket {
					r := &bucket[bi]
					threshold := shared.fastFloor() + o.pruneThresholdBias
					if !math.IsInf(threshold, -1) && r.s.ub < threshold {
						continue // stays recorded as pruned, with its bound
					}
					sc, ranges, err := evalViz(ec, r.s.v, p.norm, o, p.solver)
					if err != nil {
						fail(err)
						return false
					}
					shared.add(sc)
					scored.Add(1)
					r.s = slot{res: makeResult(r.s.v, sc, ranges), ok: true}
				}
				return true
			})
		perShard[si] = recs
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	all := mergeRecs(perShard)
	floor, full := shared.floor()
	if err := p.verifyRecs(ctx, workers, ecs, all, floor, full, fail, &abort, &scored); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if st != nil {
		*st = IndexStats{
			Candidates: ix.Len(),
			Leaves:     int(leaves.Load()),
			Visited:    int(visited.Load()),
			Scored:     int(scored.Load()),
		}
	}
	return topKRecs(all, o.K), nil
}

func mergeRecs(perShard [][]idxRec) []idxRec {
	total := 0
	for _, recs := range perShard {
		total += len(recs)
	}
	all := make([]idxRec, 0, total)
	for _, recs := range perShard {
		all = append(all, recs...)
	}
	return all
}

// verifyRecs is verifyPruned over sparse records: every visited member left
// pruned whose bound is not strictly dominated by the final floor is
// re-scored exactly, in place.
func (p *Plan) verifyRecs(ctx context.Context, workers int, ecs []*evalCtx, all []idxRec, floor float64, full bool, fail func(error), abort *atomic.Bool, scored *atomic.Int64) error {
	rescue := make([]int, 0, 16)
	for i := range all {
		if all[i].s.pruned && (!full || all[i].s.ub >= floor-boundEps) {
			rescue = append(rescue, i)
		}
	}
	if len(rescue) == 0 {
		return nil
	}
	return forEachIndex(ctx, workers, len(rescue), func(worker, j int) {
		if abort.Load() {
			return
		}
		i := rescue[j]
		sc, ranges, err := evalViz(ecs[worker], all[i].s.v, p.norm, p.opts, p.solver)
		if err != nil {
			fail(err)
			return
		}
		if scored != nil {
			scored.Add(1)
		}
		all[i].s = slot{res: makeResult(all[i].s.v, sc, ranges), ok: true}
	})
}

// topKRecs selects the top-k from sparse records by (score desc, corpus id
// asc) — the same deterministic rule topKSlots applies by input position,
// so indexed and flat rankings agree bit for bit.
func topKRecs(all []idxRec, k int) []Result {
	idx := make([]int, 0, len(all))
	for i := range all {
		if all[i].s.ok {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := all[idx[a]].s.res.Score, all[idx[b]].s.res.Score
		if sa != sb {
			return sa > sb
		}
		return all[idx[a]].id < all[idx[b]].id
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]Result, len(idx))
	for i, j := range idx {
		out[i] = all[j].s.res
	}
	return out
}

// RunIndexed ranks the indexed candidates for every query in the batch.
func (mp *MultiPlan) RunIndexed(ix *VizIndex) ([][]Result, error) {
	return mp.RunIndexedContext(context.Background(), ix)
}

// RunIndexedContext is the batch counterpart of Plan.RunIndexedContext: one
// traversal serves every query, descending by the max-over-queries envelope
// bound (a subtree is skipped only when every query's floor dominates its
// bound for that query — the same max runMulti orders candidates by) and
// sharing each visited member's bound caches and score/fit memos across the
// batch exactly as runMulti does. Per-query floors, pruning, verification
// and selection stay independent, so per-query results are byte-identical
// to running each plan alone.
func (mp *MultiPlan) RunIndexedContext(ctx context.Context, ix *VizIndex) ([][]Result, error) {
	if mp.distance || !mp.prune {
		return mp.RunGroupedContext(ctx, ix.vizs)
	}
	if len(mp.plans) == 1 {
		res, err := mp.plans[0].runIndexed(ctx, ix, nil)
		if err != nil {
			return nil, err
		}
		return [][]Result{res}, nil
	}
	return mp.runMultiIndexed(ctx, mp.plans, ix)
}

// runMultiIndexed is runMulti at index granularity; results are indexed
// like plans.
func (mp *MultiPlan) runMultiIndexed(ctx context.Context, plans []*Plan, ix *VizIndex) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o0 := plans[0].opts
	Q := len(plans)
	nShards := ix.ix.NumShards()
	out := make([][]Result, Q)
	if nShards == 0 {
		for qi, p := range plans {
			out[qi] = topKSlots(nil, p.opts.K)
		}
		return out, nil
	}
	workers := o0.Parallelism
	if workers > nShards {
		workers = nShards
	}
	if workers < 1 {
		workers = 1
	}
	ecs := make([]*evalCtx, workers)
	for i := range ecs {
		ecs[i] = getEvalCtx()
	}
	defer func() {
		for _, ec := range ecs {
			putEvalCtx(ec)
		}
	}()

	var (
		errMu    sync.Mutex
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}

	shared := make([]*sharedTopK, Q)
	for qi, p := range plans {
		shared[qi] = newSharedTopK(p.opts.K)
	}
	// The traversal floor is the weakest query's: a subtree survives while
	// any query might still want it. −Inf until every heap fills, so nothing
	// is skipped before each query has k exact scores.
	minFloor := func() float64 {
		f := math.Inf(1)
		for _, s := range shared {
			if v := s.fastFloor(); v < f {
				f = v
			}
		}
		return f
	}
	perShard := make([][][]idxRec, nShards) // [shard][query] records

	ctxErr := forEachIndex(ctx, workers, nShards, func(worker, si int) {
		ec := ecs[worker]
		recs := make([][]idxRec, Q)
		ix.ix.Traverse(si,
			func(env *shapeindex.Summary) float64 {
				// One reset serves the whole batch (batch-global ids), as in
				// runMulti's bound pass.
				ec.resetBoundCaches(o0.chainMeta)
				ub := math.Inf(-1)
				for _, p := range plans {
					if b := envelopeUpperBoundShared(ec, env, p.norm, p.opts); b > ub {
						ub = b
					}
				}
				return ub
			},
			minFloor,
			boundEps,
			func(members []int32, _ float64) bool {
				if abort.Load() || ctx.Err() != nil {
					return false
				}
				base := len(recs[0])
				maxUB := make([]float64, 0, len(members))
				for _, id := range members {
					v := ix.vizs[id]
					if v == nil {
						continue // update-nilled slot: folds unboundable, nothing to score
					}
					ec.resetBoundCaches(o0.chainMeta)
					ub0 := math.Inf(-1)
					for qi, p := range plans {
						ub := soundUpperBoundShared(ec, v, p.norm, p.opts)
						recs[qi] = append(recs[qi], idxRec{id: id, s: slot{v: v, ub: ub, pruned: true}})
						if ub > ub0 {
							ub0 = ub
						}
					}
					maxUB = append(maxUB, ub0)
				}
				m := len(maxUB)
				// Score in descending max-over-queries bound order (members
				// arrive id-ascending, so index order breaks ties like
				// runMulti's input order does).
				order := make([]int, m)
				for i := range order {
					order[i] = i
				}
				sort.Slice(order, func(a, b int) bool {
					if maxUB[order[a]] != maxUB[order[b]] {
						return maxUB[order[a]] > maxUB[order[b]]
					}
					return order[a] < order[b]
				})
				for _, mi := range order {
					resetMemo := true
					for qi, p := range plans {
						r := &recs[qi][base+mi]
						threshold := shared[qi].fastFloor() + p.opts.pruneThresholdBias
						if !math.IsInf(threshold, -1) && r.s.ub < threshold {
							continue // pruned for this query only; stays recorded
						}
						sc, ranges, err := evalVizShared(ec, r.s.v, p.norm, p.opts, p.solver, resetMemo)
						if err != nil {
							fail(err)
							return false
						}
						resetMemo = false
						shared[qi].add(sc)
						r.s = slot{res: makeResult(r.s.v, sc, ranges), ok: true}
					}
				}
				return true
			})
		perShard[si] = recs
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	for qi, p := range plans {
		perQuery := make([][]idxRec, 0, nShards)
		for _, recs := range perShard {
			if recs != nil {
				perQuery = append(perQuery, recs[qi])
			}
		}
		all := mergeRecs(perQuery)
		floor, full := shared[qi].floor()
		if err := p.verifyRecs(ctx, workers, ecs, all, floor, full, fail, &abort, nil); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		out[qi] = topKRecs(all, p.opts.K)
	}
	return out, nil
}
