package executor

import "math"

// treeRun is the SegmentTree pattern-aware segmenter of Section 6.2
// (Theorem 6.3). It builds a balanced binary tree over atomic candidate
// gaps and computes, bottom-up at every node, the best segmentation of the
// node's full range for every contiguous interval [a..b] of chain units.
//
// A parent combines child entries two ways for each split unit c:
//
//   - disjoint:  left[a..c] + right[c+1..b] — the break sits exactly at the
//     child boundary; the combined score is the sum of the child scores.
//   - shared:    left[a..c] + right[c..b] — unit c spans the boundary; its
//     two partial visual segments merge via the additivity of summarized
//     statistics (Theorem 5.1) and only unit c is re-scored. This is what
//     lets break points retained in small regions survive into larger ones
//     (the Closure assumption) at non-dyadic positions.
//
// Per node: O(k²) intervals × O(k) splits with O(1) rescoring plus O(k)
// break bookkeeping = O(k⁴); O(n) nodes total gives O(nk⁴), linear in the
// number of points.
func treeRun(ce *chainEval, t1, t2, lo, hi int) runResult {
	ctx := ce.ctx
	ctx.resetTree()
	k := t2 - t1 + 1
	// Leaves are at least the minimum segment width wide — the paper's
	// "smallest possible VisualSegment" is a bin of width b, and the bin
	// width doubles as the perceptibility floor.
	stride := ce.opts.Stride
	if s := minSpan(ce, k, lo, hi); s > stride {
		stride = s
	}
	// The stride grid (with the trailing-gap merge folded in: a final gap
	// narrower than the width floor merges into the previous leaf so no
	// leaf violates the floor the other engines honor) is cached on the
	// context keyed by (lo, hi, stride): every same-k alternative of this
	// candidate — and every same-shape candidate after it — reuses the
	// grid and the leaf skeleton it determines instead of rebuilding them.
	cands := ctx.treeGrid.gridMerged(lo, hi, stride)
	if len(cands) < 2 {
		return infeasibleRunCtx(ctx, t1, t2, lo)
	}
	nodes := ctx.treeLevel[:0]
	for i := 0; i+1 < len(cands); i++ {
		nodes = append(nodes, newLeaf(ce, t1, k, cands[i], cands[i+1]))
	}
	next := ctx.treeLevelNext[:0]
	for len(nodes) > 1 {
		next = next[:0]
		for i := 0; i+1 < len(nodes); i += 2 {
			next = append(next, combine(ce, t1, k, nodes[i], nodes[i+1]))
		}
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes, next = next, nodes
	}
	ctx.treeLevel, ctx.treeLevelNext = nodes, next
	root := nodes[0]
	e := root.entry(0, k-1)
	if e == nil {
		return infeasibleRunCtx(ctx, t1, t2, lo)
	}
	breaks := append(ctx.breaksBuf[:0], e.breaks...)
	ctx.breaksBuf = breaks
	score := refineBreaks(ce, t1, lo, hi, stride, breaks, e.score)
	ctx.rangesOut = appendBreaksToRanges(ctx.rangesOut[:0], lo, hi, breaks)
	return runResult{score: score, ranges: ctx.rangesOut}
}

// refineBreaks polishes the SegmentTree's leaf-aligned break points on the
// fine candidate grid: each break slides within one leaf width to the
// position maximizing its two adjacent unit scores, respecting the width
// floor. The search space stays a subset of the DP's, so the result never
// exceeds the optimum; it recovers most of the resolution lost to
// leaf-aligned breaks at negligible cost (O(k · leafWidth) unit scores).
func refineBreaks(ce *chainEval, t1, lo, hi, leafWidth int, breaks []int, cur float64) float64 {
	if len(breaks) == 0 {
		return cur
	}
	span := minSpan(ce, len(breaks)+1, lo, hi)
	fine := ce.opts.Stride
	for pass := 0; pass < 2; pass++ {
		improved := false
		for i := range breaks {
			left := lo
			if i > 0 {
				left = breaks[i-1]
			}
			right := hi
			if i+1 < len(breaks) {
				right = breaks[i+1]
			}
			wL := ce.chain.Units[t1+i].Weight
			wR := ce.chain.Units[t1+i+1].Weight
			origS := wL*ce.unitScore(t1+i, left, breaks[i]) + wR*ce.unitScore(t1+i+1, breaks[i], right)
			bestB, bestS := breaks[i], origS
			loB, hiB := breaks[i]-leafWidth, breaks[i]+leafWidth
			for b := loB; b <= hiB; b += fine {
				if b == breaks[i] || b-left < span || right-b < span {
					continue
				}
				s := wL*ce.unitScore(t1+i, left, b) + wR*ce.unitScore(t1+i+1, b, right)
				if s > bestS {
					bestB, bestS = b, s
				}
			}
			if bestB != breaks[i] {
				cur += bestS - origS
				breaks[i] = bestB
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// treeEntry is the best segmentation of a node's full range by one
// contiguous unit interval.
type treeEntry struct {
	score float64
	// breaks are the interior unit boundaries (point indices), one fewer
	// than the interval's unit count.
	breaks []int
	// firstScore and lastScore are the unweighted scores of the interval's
	// first and last unit, needed to re-score a shared unit on merge.
	firstScore, lastScore float64
}

type treeNode struct {
	lo, hi int // inclusive point range
	leaves int // number of atomic gaps underneath
	k      int
	// entries[a*k+b] is the best segmentation for units [a..b]; nil if
	// infeasible or not applicable.
	entries []*treeEntry
}

func (n *treeNode) entry(a, b int) *treeEntry { return n.entries[a*n.k+b] }

func (n *treeNode) setEntry(a, b int, e *treeEntry) { n.entries[a*n.k+b] = e }

// newLeaf scores every single unit over one atomic gap. Nodes, entries and
// entry slabs come from the context's arenas (reset per treeRun).
func newLeaf(ce *chainEval, t1, k, lo, hi int) *treeNode {
	ctx := ce.ctx
	n := ctx.treeNodes.alloc()
	*n = treeNode{lo: lo, hi: hi, leaves: 1, k: k, entries: ctx.treeSlabs.alloc(k * k)}
	for a := 0; a < k; a++ {
		sc := ce.unitScore(t1+a, lo, hi)
		w := ce.chain.Units[t1+a].Weight
		e := ctx.treeEntries.alloc()
		*e = treeEntry{score: w * sc, firstScore: sc, lastScore: sc}
		n.setEntry(a, a, e)
	}
	return n
}

// combine builds the parent of two adjacent nodes.
func combine(ce *chainEval, t1, k int, l, r *treeNode) *treeNode {
	ctx := ce.ctx
	p := ctx.treeNodes.alloc()
	*p = treeNode{lo: l.lo, hi: r.hi, leaves: l.leaves + r.leaves, k: k, entries: ctx.treeSlabs.alloc(k * k)}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			units := b - a + 1
			// Feasibility: every unit needs at least one atomic gap.
			if units > p.leaves {
				continue
			}
			// Select the best split first (same comparison order and strict
			// > as building eagerly, so the winning split is identical);
			// materialize the entry and its break list exactly once.
			bestScore := math.Inf(-1)
			bestC := -1
			bestShared := false
			var bestMerged float64
			found := false
			for c := a; c <= b; c++ {
				// Disjoint split: break at the child boundary.
				if c < b {
					le, re := l.entry(a, c), r.entry(c+1, b)
					if le != nil && re != nil {
						if s := le.score + re.score; !found || s > bestScore {
							bestScore, bestC, bestShared, found = s, c, false, true
						}
					}
				}
				// Shared unit c: merge its partial segments across the
				// boundary and re-score only unit c.
				le, re := l.entry(a, c), r.entry(c, b)
				if le == nil || re == nil {
					continue
				}
				w := ce.chain.Units[t1+c].Weight
				mergedStart := l.lo
				if len(le.breaks) > 0 {
					mergedStart = le.breaks[len(le.breaks)-1]
				}
				mergedEnd := r.hi
				if len(re.breaks) > 0 {
					mergedEnd = re.breaks[0]
				}
				mergedScore := ce.unitScore(t1+c, mergedStart, mergedEnd)
				s := le.score - w*le.lastScore + re.score - w*re.firstScore + w*mergedScore
				if !found || s > bestScore {
					bestScore, bestC, bestShared, bestMerged, found = s, c, true, mergedScore, true
				}
			}
			if !found || !(bestScore > -math.MaxFloat64) {
				continue
			}
			breaks := ctx.treeInts.alloc(units - 1)
			best := ctx.treeEntries.alloc()
			if bestShared {
				le, re := l.entry(a, bestC), r.entry(bestC, b)
				breaks = append(breaks, le.breaks...)
				breaks = append(breaks, re.breaks...)
				first := le.firstScore
				if a == bestC {
					first = bestMerged
				}
				last := re.lastScore
				if b == bestC {
					last = bestMerged
				}
				*best = treeEntry{score: bestScore, breaks: breaks, firstScore: first, lastScore: last}
			} else {
				le, re := l.entry(a, bestC), r.entry(bestC+1, b)
				breaks = append(breaks, le.breaks...)
				breaks = append(breaks, l.hi)
				breaks = append(breaks, re.breaks...)
				*best = treeEntry{score: bestScore, breaks: breaks, firstScore: le.firstScore, lastScore: re.lastScore}
			}
			p.setEntry(a, b, best)
		}
	}
	return p
}

// breaksToRanges converts interior break positions into per-unit inclusive
// ranges (adjacent units share the break point).
func breaksToRanges(lo, hi int, breaks []int) [][2]int {
	return appendBreaksToRanges(make([][2]int, 0, len(breaks)+1), lo, hi, breaks)
}

// appendBreaksToRanges is breaksToRanges into a reusable buffer.
func appendBreaksToRanges(ranges [][2]int, lo, hi int, breaks []int) [][2]int {
	start := lo
	for _, b := range breaks {
		ranges = append(ranges, [2]int{start, b})
		start = b
	}
	return append(ranges, [2]int{start, hi})
}
