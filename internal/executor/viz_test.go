package executor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

func TestGroupSkipRanges(t *testing.T) {
	s := mkSeries("a", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	v := group(s, groupConfig{zNormalize: true, keepRanges: [][2]float64{{3, 6}}})
	if v.Skipped == nil {
		t.Fatal("expected skip mask")
	}
	for i, skipped := range v.Skipped {
		x := s.X[i]
		want := x < 3 || x > 6
		if skipped != want {
			t.Fatalf("point %d (x=%v) skipped=%v, want %v", i, x, skipped, want)
		}
	}
	// A fit over skipped points must be rejected by the evaluator.
	q := regexlang.MustParse("[p=up]")
	norm, _ := shape.Normalize(q)
	o := seqOpts().normalized()
	ce, err := compileChain(v, norm.Alternatives[0], o)
	if err != nil {
		t.Fatal(err)
	}
	if sc := ce.unitScore(0, 0, 9); sc != -1 {
		t.Fatalf("fit over skipped points = %v, want -1", sc)
	}
	if sc := ce.unitScore(0, 3, 6); sc <= 0 {
		t.Fatalf("fit inside kept range = %v, want positive", sc)
	}
}

// TestGroupNormalizedSlopeInvariance: after normalization, the fitted slope
// over the full chart is invariant to affine transforms of y and to the
// absolute x scale — the property that makes θ=45° mean the same thing on
// every chart.
func TestGroupNormalizedSlopeInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(50)
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = float64(i) + r.NormFloat64()
		}
		base := mkSeries("a", ys...)
		scaled := dataset.Series{Z: "b", X: make([]float64, n), Y: make([]float64, n)}
		a := 0.5 + r.Float64()*20
		bOff := r.NormFloat64() * 100
		for i := range ys {
			scaled.X[i] = base.X[i]*37 + 5 // different x units
			scaled.Y[i] = a*ys[i] + bOff   // affine y
		}
		v1 := group(base, groupConfig{zNormalize: true})
		v2 := group(scaled, groupConfig{zNormalize: true})
		s1, ok1 := v1.rangeSlope(0, n-1)
		s2, ok2 := v2.rangeSlope(0, n-1)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitBoundsComposition(t *testing.T) {
	slopes := []float64{-1, 0.5, 2}
	up := shape.PatternSeg(shape.PatUp)
	down := shape.PatternSeg(shape.PatDown)
	lo, hi := unitBounds(up, slopes)
	if lo >= hi {
		t.Fatalf("up bounds [%v, %v]", lo, hi)
	}
	// AND bounds: min composition.
	alo, ahi := unitBounds(shape.And(up, down), slopes)
	ulo, uhi := unitBounds(up, slopes)
	dlo, dhi := unitBounds(down, slopes)
	if ahi != math.Min(uhi, dhi) || alo != math.Min(ulo, dlo) {
		t.Fatalf("AND bounds [%v, %v]", alo, ahi)
	}
	// OR bounds: max composition.
	olo, ohi := unitBounds(shape.Or(up, down), slopes)
	if ohi != math.Max(uhi, dhi) || olo != math.Max(ulo, dlo) {
		t.Fatalf("OR bounds [%v, %v]", olo, ohi)
	}
	// NOT flips and negates.
	nlo, nhi := unitBounds(shape.Not(up), slopes)
	if nlo != -uhi || nhi != -ulo {
		t.Fatalf("NOT bounds [%v, %v]", nlo, nhi)
	}
	// Quantifiers and sketches are conservatively unbounded.
	quant := shape.Seg(shape.Segment{Pat: shape.Pattern{Kind: shape.PatUp},
		Mod: shape.Modifier{Kind: shape.ModQuantifier, Min: 2, HasMin: true}})
	qlo, qhi := unitBounds(quant, slopes)
	if qlo != -1 || qhi != 1 {
		t.Fatalf("quantifier bounds [%v, %v]", qlo, qhi)
	}
}

// TestUpperBoundSoundOnCleanData: the level-bound upper estimate must not
// fall below the SegmentTree's actual score (otherwise pruning would drop
// true positives).
func TestUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	o := seqOpts().normalized()
	q := regexlang.MustParse("u ; d")
	norm, _ := shape.Normalize(q)
	violations := 0
	trials := 0
	for i := 0; i < 60; i++ {
		v := group(randomSeries(rng, 64), groupConfig{zNormalize: true})
		ce, err := compileChain(v, norm.Alternatives[0], o)
		if err != nil {
			t.Fatal(err)
		}
		res := solveChain(ce, treeRun)
		levels := levelSlopes(&chainEval{viz: v, opts: o}, 0, v.N()-1)
		for _, li := range []int{len(levels) / 2, (2 * len(levels)) / 3} {
			if li < 0 || li >= len(levels) || len(levels[li]) == 0 {
				continue
			}
			var ub float64
			for _, u := range norm.Alternatives[0].Units {
				_, hi := unitBounds(u.Node, levels[li])
				ub += u.Weight * hi
			}
			trials++
			// Pruning compares against ub + pruneSafetyMargin; that
			// margined bound is what must hold.
			if ub+pruneSafetyMargin < res.score-1e-9 {
				violations++
			}
		}
	}
	if trials == 0 {
		t.Skip("no bound trials")
	}
	// The Table 7 bound argument assumes unit ranges are unions of whole
	// nodes; real breaks split nodes, so rare small violations can occur
	// even with the safety margin. They must stay rare or pruning would
	// visibly hurt accuracy.
	if rate := float64(violations) / float64(trials); rate > 0.05 {
		t.Fatalf("margined bound violated in %.1f%% of trials", rate*100)
	}
}

func TestRenderReference(t *testing.T) {
	q := regexlang.MustParse("u ; d")
	norm, _ := shape.Normalize(q)
	ref := renderReference(norm.Alternatives[0], 40)
	if len(ref) != 40 {
		t.Fatalf("len = %d", len(ref))
	}
	maxAt := 0
	for i, y := range ref {
		if y > ref[maxAt] {
			maxAt = i
		}
	}
	if maxAt < 15 || maxAt > 25 {
		t.Fatalf("peak at %d, want ~20", maxAt)
	}
	if out := renderReference(norm.Alternatives[0], 1); len(out) != 1 {
		t.Fatal("degenerate length")
	}
}

func TestNominalAngle(t *testing.T) {
	if a := nominalAngle(shape.PatternSeg(shape.PatUp)); a != 50 {
		t.Fatalf("up angle = %v", a)
	}
	if a := nominalAngle(shape.Not(shape.PatternSeg(shape.PatUp))); a != -50 {
		t.Fatalf("not-up angle = %v", a)
	}
	if a := nominalAngle(shape.SlopeSeg(33)); a != 33 {
		t.Fatalf("slope angle = %v", a)
	}
	if a := nominalAngle(shape.Or(shape.PatternSeg(shape.PatDown), shape.PatternSeg(shape.PatUp))); a != -50 {
		t.Fatalf("or angle = %v (first branch)", a)
	}
}

func TestMinSpanRelaxes(t *testing.T) {
	s := mkSeries("a", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	v := group(s, groupConfig{zNormalize: true})
	o := seqOpts().normalized()
	o.MinSegmentFrac = 0.5 // absurd floor: 5-6 points per unit
	q := regexlang.MustParse("u ; d ; u ; d")
	norm, _ := shape.Normalize(q)
	ce, err := compileChain(v, norm.Alternatives[0], o)
	if err != nil {
		t.Fatal(err)
	}
	// Four units over 11 gaps cannot all span 5: the floor must relax so a
	// segmentation still exists.
	if got := minSpan(ce, 4, 0, 11); got > 2 {
		t.Fatalf("minSpan = %d, want relaxed <= 2", got)
	}
	res := solveChain(ce, dpRun)
	if res.score == -1 {
		t.Fatal("relaxed floor should keep the query feasible")
	}
}

func TestFilterSeriesWithData(t *testing.T) {
	near := mkSeries("near", 1, 2, 3)
	far := mkSeries("far", 1, 2, 3)
	for i := range far.X {
		far.X[i] += 100
	}
	out := filterSeriesWithData([]dataset.Series{near, far}, [][2]float64{{0, 5}})
	if len(out) != 1 || out[0].Z != "near" {
		t.Fatalf("out = %+v", out)
	}
	// Two windows: must have data in both.
	out = filterSeriesWithData([]dataset.Series{near, far}, [][2]float64{{0, 5}, {100, 105}})
	if len(out) != 0 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSearchPrunedMatchesPlainOnSearch(t *testing.T) {
	series := peakValleySeries()
	q := regexlang.MustParse("u ; d")
	plain := seqOpts()
	plain.Algorithm = AlgSegmentTree
	pruned := plain
	pruned.Pruning = true
	a, err := SearchSeries(series, q, plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchSeries(series, q, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0].Z != b[0].Z {
		t.Fatalf("pruned top mismatch: %v vs %v", a[0].Z, b[0].Z)
	}
}
