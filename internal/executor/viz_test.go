package executor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shapesearch/internal/dataset"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

func TestGroupSkipRanges(t *testing.T) {
	s := mkSeries("a", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	v := group(s, groupConfig{zNormalize: true, keepRanges: [][2]float64{{3, 6}}})
	if v.Skipped == nil {
		t.Fatal("expected skip mask")
	}
	for i, skipped := range v.Skipped {
		x := s.X[i]
		want := x < 3 || x > 6
		if skipped != want {
			t.Fatalf("point %d (x=%v) skipped=%v, want %v", i, x, skipped, want)
		}
	}
	// A fit over skipped points must be rejected by the evaluator.
	q := regexlang.MustParse("[p=up]")
	norm, _ := shape.Normalize(q)
	o := seqOpts().normalized()
	ce, err := compileChain(v, norm.Alternatives[0], o)
	if err != nil {
		t.Fatal(err)
	}
	if sc := ce.unitScore(0, 0, 9); sc != -1 {
		t.Fatalf("fit over skipped points = %v, want -1", sc)
	}
	if sc := ce.unitScore(0, 3, 6); sc <= 0 {
		t.Fatalf("fit inside kept range = %v, want positive", sc)
	}
}

// TestGroupNormalizedSlopeInvariance: after normalization, the fitted slope
// over the full chart is invariant to affine transforms of y and to the
// absolute x scale — the property that makes θ=45° mean the same thing on
// every chart.
func TestGroupNormalizedSlopeInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(50)
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = float64(i) + r.NormFloat64()
		}
		base := mkSeries("a", ys...)
		scaled := dataset.Series{Z: "b", X: make([]float64, n), Y: make([]float64, n)}
		a := 0.5 + r.Float64()*20
		bOff := r.NormFloat64() * 100
		for i := range ys {
			scaled.X[i] = base.X[i]*37 + 5 // different x units
			scaled.Y[i] = a*ys[i] + bOff   // affine y
		}
		v1 := group(base, groupConfig{zNormalize: true})
		v2 := group(scaled, groupConfig{zNormalize: true})
		s1, ok1 := v1.rangeSlope(0, n-1)
		s2, ok2 := v2.rangeSlope(0, n-1)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitBoundsComposition(t *testing.T) {
	sLo, sHi := -1.0, 2.0
	up := shape.PatternSeg(shape.PatUp)
	down := shape.PatternSeg(shape.PatDown)
	lo, hi := unitBounds(up, sLo, sHi, false)
	if lo >= hi {
		t.Fatalf("up bounds [%v, %v]", lo, hi)
	}
	// AND bounds: min composition.
	alo, ahi := unitBounds(shape.And(up, down), sLo, sHi, false)
	ulo, uhi := unitBounds(up, sLo, sHi, false)
	dlo, dhi := unitBounds(down, sLo, sHi, false)
	if ahi != math.Min(uhi, dhi) || alo != math.Min(ulo, dlo) {
		t.Fatalf("AND bounds [%v, %v]", alo, ahi)
	}
	// OR bounds: max composition.
	olo, ohi := unitBounds(shape.Or(up, down), sLo, sHi, false)
	if ohi != math.Max(uhi, dhi) || olo != math.Max(ulo, dlo) {
		t.Fatalf("OR bounds [%v, %v]", olo, ohi)
	}
	// NOT flips and negates.
	nlo, nhi := unitBounds(shape.Not(up), sLo, sHi, false)
	if nlo != -uhi || nhi != -ulo {
		t.Fatalf("NOT bounds [%v, %v]", nlo, nhi)
	}
	// When evaluation-failure paths exist (skip masks, degenerate fits),
	// the lower bound collapses to −1 so NOT stays sound.
	flo, fhi := unitBounds(up, sLo, sHi, true)
	if flo != -1 || fhi != uhi {
		t.Fatalf("mayFail bounds [%v, %v]", flo, fhi)
	}
	// Quantifiers and sketches are conservatively unbounded.
	quant := shape.Seg(shape.Segment{Pat: shape.Pattern{Kind: shape.PatUp},
		Mod: shape.Modifier{Kind: shape.ModQuantifier, Min: 2, HasMin: true}})
	qlo, qhi := unitBounds(quant, sLo, sHi, false)
	if qlo != -1 || qhi != 1 {
		t.Fatalf("quantifier bounds [%v, %v]", qlo, qhi)
	}
}

// TestSoundBoundDominatesExact: the pruning upper bound must dominate the
// solver's exact score outright — no safety margin, no tolerated violation
// rate (only float-noise epsilon). This is the property that makes pruning
// lossless; the old mid-tree-level bound failed it on two thirds of real
// candidates and hid behind pruneSafetyMargin = 0.05.
func TestSoundBoundDominatesExact(t *testing.T) {
	queries := []string{
		"u ; d",
		"u ; d ; u ; d",
		"f ; u ; d",
		"u ; (d | f)",
		"u ; [p=down, x.s=20, x.e=40] ; u",
		"[p=up, m=>>] ; d",
	}
	rng := rand.New(rand.NewSource(17))
	ec := newEvalCtx()
	o := seqOpts().normalized()
	for _, query := range queries {
		q := regexlang.MustParse(query)
		norm, err := shape.Normalize(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			var v *Viz
			if i%3 == 0 {
				// Clean ramps: the regime where the bound is tight.
				up := 16 + rng.Intn(32)
				v = group(ramp("r", 0,
					[2]float64{float64(up), 1 + rng.Float64()},
					[2]float64{float64(63 - up), -1 - rng.Float64()}), groupConfig{zNormalize: true})
			} else {
				v = group(randomSeries(rng, 64), groupConfig{zNormalize: true})
			}
			exact, _, err := evalViz(ec, v, norm, o, treeRun)
			if err != nil {
				t.Fatal(err)
			}
			ub := soundUpperBound(ec, v, norm, o)
			if ub < exact-1e-9 {
				t.Fatalf("%q trial %d: sound bound %.12f below exact score %.12f", query, i, ub, exact)
			}
		}
	}
}

func TestRenderReference(t *testing.T) {
	q := regexlang.MustParse("u ; d")
	norm, _ := shape.Normalize(q)
	ref := renderReference(norm.Alternatives[0], 40)
	if len(ref) != 40 {
		t.Fatalf("len = %d", len(ref))
	}
	maxAt := 0
	for i, y := range ref {
		if y > ref[maxAt] {
			maxAt = i
		}
	}
	if maxAt < 15 || maxAt > 25 {
		t.Fatalf("peak at %d, want ~20", maxAt)
	}
	if out := renderReference(norm.Alternatives[0], 1); len(out) != 1 {
		t.Fatal("degenerate length")
	}
}

func TestNominalAngle(t *testing.T) {
	if a := nominalAngle(shape.PatternSeg(shape.PatUp)); a != 50 {
		t.Fatalf("up angle = %v", a)
	}
	if a := nominalAngle(shape.Not(shape.PatternSeg(shape.PatUp))); a != -50 {
		t.Fatalf("not-up angle = %v", a)
	}
	if a := nominalAngle(shape.SlopeSeg(33)); a != 33 {
		t.Fatalf("slope angle = %v", a)
	}
	if a := nominalAngle(shape.Or(shape.PatternSeg(shape.PatDown), shape.PatternSeg(shape.PatUp))); a != -50 {
		t.Fatalf("or angle = %v (first branch)", a)
	}
}

func TestMinSpanRelaxes(t *testing.T) {
	s := mkSeries("a", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	v := group(s, groupConfig{zNormalize: true})
	o := seqOpts().normalized()
	o.MinSegmentFrac = 0.5 // absurd floor: 5-6 points per unit
	q := regexlang.MustParse("u ; d ; u ; d")
	norm, _ := shape.Normalize(q)
	ce, err := compileChain(v, norm.Alternatives[0], o)
	if err != nil {
		t.Fatal(err)
	}
	// Four units over 11 gaps cannot all span 5: the floor must relax so a
	// segmentation still exists.
	if got := minSpan(ce, 4, 0, 11); got > 2 {
		t.Fatalf("minSpan = %d, want relaxed <= 2", got)
	}
	res := solveChain(ce, dpRun)
	if res.score == -1 {
		t.Fatal("relaxed floor should keep the query feasible")
	}
}

func TestFilterSeriesWithData(t *testing.T) {
	near := mkSeries("near", 1, 2, 3)
	far := mkSeries("far", 1, 2, 3)
	for i := range far.X {
		far.X[i] += 100
	}
	out := filterSeriesWithData([]dataset.Series{near, far}, [][2]float64{{0, 5}})
	if len(out) != 1 || out[0].Z != "near" {
		t.Fatalf("out = %+v", out)
	}
	// Two windows: must have data in both.
	out = filterSeriesWithData([]dataset.Series{near, far}, [][2]float64{{0, 5}, {100, 105}})
	if len(out) != 0 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSearchPrunedMatchesPlainOnSearch(t *testing.T) {
	series := peakValleySeries()
	q := regexlang.MustParse("u ; d")
	plain := seqOpts()
	plain.Algorithm = AlgSegmentTree
	pruned := plain
	pruned.Pruning = true
	a, err := SearchSeries(series, q, plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchSeries(series, q, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("pruned returned %d results, plain %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Z != b[i].Z || a[i].Score != b[i].Score {
			t.Fatalf("rank %d: pruned %s %.12f != plain %s %.12f", i, b[i].Z, b[i].Score, a[i].Z, a[i].Score)
		}
	}
}
