package executor

import (
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
)

// TestPruningLossinessRegression pins the ROADMAP "pruning bound lossiness"
// open item so any change to the margin or the bound is observable.
//
// The Table 7 bound argument assumes unit ranges are unions of whole
// SegmentTree nodes; real breaks can split a node, so upperBoundBelow
// under-estimates some candidates and pruneSafetyMargin = 0.05 absorbs only
// part of the gap. On the luminosity demo, "transit024" is a true top-5
// member for "u;d;u" whose exact score beats the unpruned k-th score by
// MORE than the margin, yet the pruned scan drops it. This test asserts
// that exact behavior: if a future change to the margin or to the mid-tree
// level selection fixes (or shifts) the lossiness, this test fails and must
// be updated alongside the ROADMAP entry.
func TestPruningLossinessRegression(t *testing.T) {
	if pruneSafetyMargin != 0.05 {
		t.Fatalf("pruneSafetyMargin = %v; this regression test pins behavior at 0.05 — "+
			"re-derive the pinned candidate and update the ROADMAP open item", pruneSafetyMargin)
	}
	lum := gen.Luminosity(40, 300, 1)
	series, err := dataset.Extract(lum, dataset.ExtractSpec{Z: "star", X: "time", Y: "luminosity"})
	if err != nil {
		t.Fatal(err)
	}
	q := regexlang.MustParse("u;d;u")
	opts := DefaultOptions()
	opts.Algorithm = AlgSegmentTree
	opts.Parallelism = 1 // sequential: the pruned scan is deterministic
	opts.K = 5

	opts.Pruning = false
	exact, err := SearchSeries(series, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != opts.K {
		t.Fatalf("exact top-k has %d results, want %d", len(exact), opts.K)
	}
	const victim = "transit024"
	var victimScore float64
	found := false
	for _, r := range exact {
		if r.Z == victim {
			victimScore, found = r.Score, true
		}
	}
	if !found {
		t.Fatalf("%q not in the exact top-%d; the planted dataset or scoring changed — re-derive the pinned candidate", victim, opts.K)
	}
	floor := exact[len(exact)-1].Score
	if victimScore-floor <= pruneSafetyMargin {
		t.Fatalf("%q beats the floor by %.4f <= margin %.2f; no longer demonstrates over-pruning beyond the margin",
			victim, victimScore-floor, pruneSafetyMargin)
	}

	opts.Pruning = true
	pruned, err := SearchSeries(series, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pruned {
		if r.Z == victim {
			t.Fatalf("%q survived pruning (score %.4f): the Table-7 bound or margin changed — "+
				"update this pin and the ROADMAP open item", victim, r.Score)
		}
	}
}
