package executor

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"shapesearch/internal/regexlang"
)

// TestBuildVizIndexContextCancel pins the regression the ctxpropagate
// analyzer caught: the parallel summary pass inside the index build used to
// run under context.Background(), so a caller whose ctx was already dead
// still paid for summarizing the whole corpus. A cancelled ctx must abort
// the build with the ctx's error and no index.
func TestBuildVizIndexContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	series := mixedCorpus(rng, 64, 48)
	opts := DefaultOptions()
	opts.Pruning = true
	plan, err := Compile(regexlang.MustParse("u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	vizs := plan.GroupSeries(series)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ix, err := BuildVizIndexContext(ctx, vizs, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildVizIndexContext(cancelled ctx) err = %v, want context.Canceled", err)
	}
	if ix != nil {
		t.Fatalf("BuildVizIndexContext(cancelled ctx) returned an index")
	}

	// The live path must still build, and identically to the wrapper.
	ix, err = BuildVizIndexContext(context.Background(), vizs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix == nil || ix.Len() == 0 {
		t.Fatal("BuildVizIndexContext(live ctx) built nothing")
	}
	if got, want := ix.Len(), BuildVizIndex(vizs, 0).Len(); got != want {
		t.Fatalf("context build indexed %d candidates, wrapper indexed %d", got, want)
	}
}
