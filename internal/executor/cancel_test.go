package executor

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"shapesearch/internal/regexlang"
)

// TestRunContextPreCanceled: an already-canceled context returns before any
// scoring happens.
func TestRunContextPreCanceled(t *testing.T) {
	series := allocSeries(4, 50)
	plan, err := Compile(regexlang.MustParse("u ; d"), seqOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.RunContext(ctx, series); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx = %v, want context.Canceled", err)
	}
	// The pruning pipeline's bounding pass must also observe the context.
	opts := DefaultOptions()
	opts.Pruning = true
	opts.Algorithm = AlgSegmentTree
	pruned, err := Compile(regexlang.MustParse("u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.RunContext(ctx, series); !errors.Is(err, context.Canceled) {
		t.Fatalf("pruned RunContext on canceled ctx = %v, want context.Canceled", err)
	}
	// The distance baselines run on the same cancellable pool.
	opts = DefaultOptions()
	opts.Algorithm = AlgDTW
	dist, err := Compile(regexlang.MustParse("u ; d"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.RunContext(ctx, series); !errors.Is(err, context.Canceled) {
		t.Fatalf("distance RunContext on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidFlight: canceling a slow multi-worker search stops
// the pipeline promptly (bounded by a few candidates' scoring time, far
// below the full run) and leaks no goroutines.
func TestRunContextCancelMidFlight(t *testing.T) {
	// A full DP run over this collection takes tens of seconds; the test
	// cancels ~10ms in and requires completion within a generous bound
	// that still proves almost all work was skipped.
	series := allocSeries(400, 1000)
	opts := DefaultOptions()
	opts.Algorithm = AlgDP
	opts.Parallelism = 4
	plan, err := Compile(regexlang.MustParse("u ; d ; u"), opts)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := plan.RunContext(ctx, series)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled search did not return within 30s")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// All worker goroutines must exit once the pipeline drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDistanceBaselineParallelMatchesSequential: the parallelized
// DTW/Euclidean scan must reproduce the sequential ranking exactly (slots
// are rebuilt in index order, and the reference memo is worker-shared).
func TestDistanceBaselineParallelMatchesSequential(t *testing.T) {
	series := allocSeries(40, 80)
	for _, alg := range []Algorithm{AlgDTW, AlgEuclidean} {
		seq := DefaultOptions()
		seq.Algorithm = alg
		seq.Parallelism = 1
		par := seq
		par.Parallelism = 4
		want, err := SearchSeries(series, regexlang.MustParse("u ; d"), seq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchSeries(series, regexlang.MustParse("u ; d"), par)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("alg %v: %d results parallel vs %d sequential", alg, len(got), len(want))
		}
		for i := range want {
			if want[i].Z != got[i].Z || want[i].Score != got[i].Score {
				t.Fatalf("alg %v result %d: parallel (%s, %v) != sequential (%s, %v)",
					alg, i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
			}
		}
	}
}
