package executor

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"shapesearch/internal/dataset"
	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// Algorithm selects the segmentation strategy for fuzzy queries.
type Algorithm int

const (
	// AlgAuto picks SegmentTree for fuzzy queries (the system default).
	AlgAuto Algorithm = iota
	// AlgDP is the optimal O(n²k) dynamic program (Section 6.1).
	AlgDP
	// AlgSegmentTree is the O(nk⁴) pattern-aware segmenter (Section 6.2).
	AlgSegmentTree
	// AlgGreedy is the local-search baseline (Section 9).
	AlgGreedy
	// AlgExhaustive enumerates all segmentations; small inputs only.
	AlgExhaustive
	// AlgDTW ranks by Dynamic Time Warping distance to a reference
	// trendline synthesized from the query (the VQS baseline).
	AlgDTW
	// AlgEuclidean ranks by z-normalized Euclidean distance to the same
	// reference.
	AlgEuclidean
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgDP:
		return "dp"
	case AlgSegmentTree:
		return "segmenttree"
	case AlgGreedy:
		return "greedy"
	case AlgExhaustive:
		return "exhaustive"
	case AlgDTW:
		return "dtw"
	case AlgEuclidean:
		return "euclidean"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a search.
type Options struct {
	// Algorithm is the segmentation strategy (default AlgAuto).
	Algorithm Algorithm
	// K is how many top visualizations to return (default 10).
	K int
	// Stride is the break-point candidate granularity in points: 1
	// considers every adjacent point boundary (the paper's b defaults to
	// one bin per discernible pixel; stride generalizes binning width).
	Stride int
	// MinSegmentFrac is the minimum visual-segment width as a fraction of
	// the trendline (default 0.05). It plays the role of the paper's
	// binning width b tied to rendered pixels: a "trend" spanning under a
	// few percent of the chart is imperceptible noise, and without a floor
	// the optimal segmenter happily matches patterns against two-point
	// noise wiggles. Set a tiny value (e.g. 1e-9) to allow arbitrarily
	// narrow segments. When a chain has too many units for the floor, the
	// floor relaxes to fit.
	MinSegmentFrac float64
	// Pushdown enables the Section 5.4 push-down optimizations.
	Pushdown bool
	// Pruning enables the Section 6.3 two-stage collective pruning
	// (effective with AlgSegmentTree / AlgAuto on fuzzy queries).
	Pruning bool
	// Parallelism is the number of worker goroutines scoring
	// visualizations (default 0: auto, meaning GOMAXPROCS). All engines
	// honor it, the DTW/Euclidean distance baselines included.
	Parallelism int
	// QuantifierThreshold overrides the zero score threshold above which a
	// sub-segment counts as a pattern occurrence.
	QuantifierThreshold float64
	// UDPs holds user-defined patterns referenced by the query.
	UDPs *score.Registry
	// SketchConfig tunes precise sketch matching.
	SketchConfig score.SketchConfig
	// MaxExhaustivePoints caps AlgExhaustive input size (default 64).
	MaxExhaustivePoints int
	// DTWBand is the Sakoe–Chiba band half-width for AlgDTW
	// (default −1: unconstrained).
	DTWBand int
	// DisableAutoIndex keeps large pruned scans on the flat bound-first
	// path instead of building a throwaway corpus shape index per run (see
	// internal/shapeindex). Results are identical either way; the flag
	// exists for benchmarking the flat scan and for corpora where the
	// caller knows bound separation is poor.
	DisableAutoIndex bool

	// nestedPre holds nested sub-queries pre-normalized at Compile time,
	// keyed by sub-query root. Read-only after Compile; chain compilation
	// consults it before normalizing lazily.
	nestedPre map[*shape.Node]shape.Normalized
	// iterInner holds, per ITERATOR segment node, the pre-built inner
	// segment node the sliding window evaluates (LOCATION reduced to the y
	// pins) — hoisted out of the per-range hot path. Read-only after
	// Compile.
	iterInner map[*shape.Node]*shape.Node
	// sketchQY holds, per sketch segment node, the query's y values —
	// query-static, hoisted out of evalSegment. Read-only after Compile.
	sketchQY map[*shape.Node][]float64
	// compiled marks options that went through Compile: per-viz chain
	// compilation skips the validation walk (UDP resolution and nested
	// normalization already ran once, plan-wide).
	compiled bool
	// chainMeta is the plan-wide alternative analysis (interned unit
	// signatures, hoisted pins, k-grouped order, bound groups) driving
	// shared-segmentation evaluation; nil for options built outside Compile,
	// which fall back to the naive per-alternative loop. Read-only after
	// Compile.
	chainMeta *chainMeta
	// pruneThresholdBias artificially inflates the stage-2 pruning
	// threshold. Test-only: it forces over-pruning so the deferred
	// verification stage's rescue path can be exercised deterministically;
	// zero in production. Losslessness must hold for any value.
	pruneThresholdBias float64
}

// DefaultOptions returns the system defaults.
func DefaultOptions() Options {
	return Options{
		Algorithm:           AlgAuto,
		K:                   10,
		Stride:              1,
		MinSegmentFrac:      0.05,
		Pushdown:            true,
		Parallelism:         0, // auto: GOMAXPROCS workers
		SketchConfig:        score.DefaultSketchConfig(),
		MaxExhaustivePoints: 64,
		DTWBand:             -1,
	}
}

func (o Options) normalized() *Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Stride < 1 {
		o.Stride = 1
	}
	if o.MinSegmentFrac <= 0 {
		o.MinSegmentFrac = 0.05
	}
	if o.UDPs == nil {
		o.UDPs = score.NewRegistry()
	}
	if o.SketchConfig.Tau <= 0 {
		o.SketchConfig = score.DefaultSketchConfig()
	}
	if o.MaxExhaustivePoints <= 0 {
		o.MaxExhaustivePoints = 64
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &o
}

// Result is one matched visualization.
type Result struct {
	// Z identifies the visualization (the z attribute value).
	Z string
	// Score is the final ShapeQuery score in [−1, 1].
	Score float64
	// Ranges holds the inclusive point range each chain unit matched, for
	// the best-scoring alternative. Empty for DTW/Euclidean rankings.
	Ranges [][2]int
	// BreakXs are the domain-x values of the unit boundaries.
	BreakXs []float64
	// Series is the matched trendline's raw data.
	Series dataset.Series
}

// Search extracts candidate visualizations from a data source (a bare
// *dataset.Table or a *dataset.Index) per the visual parameters and ranks
// them against the query: the full EXTRACT → GROUP → SEGMENT → SCORE
// pipeline. For non-fuzzy queries with push-down enabled, LOCATION windows
// are pushed into EXTRACT so rows outside every referenced x range are
// never materialized (Section 5.4 (a)/(c); the paper re-adds the ignored
// ranges only when plotting the top-k).
//
// Search is a thin compatibility wrapper over Compile + Plan.Search;
// callers issuing the same query repeatedly should compile once and reuse
// the plan.
func Search(src dataset.Source, spec dataset.ExtractSpec, q shape.Query, opts Options) ([]Result, error) {
	return SearchContext(context.Background(), src, spec, q, opts)
}

// SearchContext is Search with cooperative cancellation: the worker pool
// checks ctx between candidates and the call returns ctx.Err() once every
// worker has stopped.
func SearchContext(ctx context.Context, src dataset.Source, spec dataset.ExtractSpec, q shape.Query, opts Options) ([]Result, error) {
	p, err := Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return p.SearchContext(ctx, src, spec)
}

// SearchSeries ranks pre-extracted series against the query. It is a thin
// compatibility wrapper over Compile + Plan.Run.
func SearchSeries(series []dataset.Series, q shape.Query, opts Options) ([]Result, error) {
	return SearchSeriesContext(context.Background(), series, q, opts)
}

// SearchSeriesContext is SearchSeries with cooperative cancellation.
func SearchSeriesContext(ctx context.Context, series []dataset.Series, q shape.Query, opts Options) ([]Result, error) {
	p, err := Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, series)
}

// solver picks the runSolver for the configured algorithm.
func (o *Options) solver(norm shape.Normalized) (runSolver, error) {
	switch o.Algorithm {
	case AlgAuto, AlgSegmentTree:
		return treeRun, nil
	case AlgDP:
		return dpRun, nil
	case AlgGreedy:
		return greedyRun, nil
	case AlgExhaustive:
		return exhaustiveRun, nil
	default:
		return nil, fmt.Errorf("executor: no segmentation solver for algorithm %v", o.Algorithm)
	}
}

// evalViz scores one visualization in the worker's evaluation context:
// each alternative chain is segmented independently and the best
// alternative wins (OR distributes over per-alternative optimal
// segmentation). The winning assignment is copied out of the context's
// scratch — it outlives the next candidate.
//
// With a compiled plan (o.chainMeta non-nil) the alternatives are evaluated
// under shared-segmentation: unit scores memoize per candidate by interned
// signature, alternatives run in unit-count groups so each (viz, k) group
// shares one candidate grid / SegmentTree skeleton, and chain compilation
// reads hoisted pins. Every alternative still gets its own exact solve —
// only repeated sub-computations are shared — and ties between alternatives
// resolve to the earliest in declaration order, so the result is
// byte-identical to the naive per-alternative loop (the meta-nil path,
// pinned by TestSharedEvalMatchesNaive).
func evalViz(ec *evalCtx, v *Viz, norm shape.Normalized, o *Options, solve runSolver) (float64, [][2]int, error) {
	return evalVizShared(ec, v, norm, o, solve, true)
}

// evalVizShared is evalViz with explicit memo-reset control: the score/fit
// memos are bump-reset only when resetMemo is true. Single-query execution
// always resets (the memos belong to the (candidate, query) evaluation);
// batch execution (runMulti) resets on the candidate's first evaluated
// query only, so later queries of the same candidate share every
// (signature, range) score and every range fit already computed — signature
// ids are batch-global, so shared entries are exact for every query.
func evalVizShared(ec *evalCtx, v *Viz, norm shape.Normalized, o *Options, solve runSolver, resetMemo bool) (float64, [][2]int, error) {
	meta := o.chainMeta
	best := math.Inf(-1)
	var bestRanges [][2]int
	if meta == nil {
		for _, alt := range norm.Alternatives {
			ce, err := ec.compile(v, alt, o)
			if err != nil {
				return 0, nil, err
			}
			res := solveChain(ce, solve)
			if res.score > best {
				best = res.score
				bestRanges = append(bestRanges[:0], res.ranges...)
			}
		}
		return best, bestRanges, nil
	}
	memoOK := meta.memoUsable(v.N())
	if memoOK && resetMemo {
		ec.memo.reset()
		ec.fitMemo.reset()
	}
	bestAi := -1
	for _, ai := range meta.order {
		ce, err := ec.compileAlt(v, norm.Alternatives[ai], o, &meta.alts[ai])
		if err != nil {
			return 0, nil, err
		}
		if !memoOK {
			ce.sigs = nil
		}
		res := solveChain(ce, solve)
		// Scoring order is grouped by unit count, so the naive loop's
		// first-wins tie rule becomes lowest-alternative-index-wins.
		if res.score > best || (res.score == best && bestAi >= 0 && ai < bestAi) {
			best = res.score
			bestAi = ai
			bestRanges = append(bestRanges[:0], res.ranges...)
		}
	}
	return best, bestRanges, nil
}

func makeResult(v *Viz, sc float64, ranges [][2]int) Result {
	r := Result{Z: v.Series.Z, Score: sc, Ranges: ranges, Series: v.Series}
	if len(ranges) > 0 {
		r.BreakXs = make([]float64, 0, len(ranges)+1)
		r.BreakXs = append(r.BreakXs, v.Series.X[ranges[0][0]])
		for _, rg := range ranges {
			r.BreakXs = append(r.BreakXs, v.Series.X[rg[1]])
		}
	}
	return r
}

// filterSeriesWithData keeps series that have at least one point inside
// every pinned window (push-down (a), Section 5.4). Extraction emits X
// sorted ascending, so the common path binary-searches each window; series
// with unsorted X (hand-built inputs) fall back to a linear scan.
func filterSeriesWithData(series []dataset.Series, ranges [][2]float64) []dataset.Series {
	out := series[:0:0]
	for _, s := range series {
		sorted := sort.Float64sAreSorted(s.X)
		keep := true
		for _, r := range ranges {
			if !hasPointInRange(s.X, r, sorted) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

// hasPointInRange reports whether any x lies inside the inclusive window.
func hasPointInRange(xs []float64, r [2]float64, sorted bool) bool {
	if sorted {
		i := sort.SearchFloat64s(xs, r[0])
		return i < len(xs) && xs[i] <= r[1]
	}
	for _, x := range xs {
		if x >= r[0] && x <= r[1] {
			return true
		}
	}
	return false
}

// xStep estimates the sampling interval of the data.
func xStep(series []dataset.Series) float64 {
	for _, s := range series {
		if s.Len() >= 2 {
			return (s.X[s.Len()-1] - s.X[0]) / float64(s.Len()-1)
		}
	}
	return 1
}

// renderReference synthesizes the piecewise-linear trendline a chain
// describes: each unit contributes a leg at its pattern's nominal angle,
// with width proportional to its CONCAT weight.
func renderReference(chain shape.Chain, length int) []float64 {
	if length < 2 {
		return make([]float64, length)
	}
	ys := make([]float64, length)
	dx := normXSpan / float64(length-1)
	var wsum float64
	for _, u := range chain.Units {
		wsum += u.Weight
	}
	if wsum <= 0 {
		wsum = 1
	}
	pos := 0
	var y float64
	for ui, u := range chain.Units {
		angle := nominalAngle(u.Node)
		slope := math.Tan(angle * math.Pi / 180)
		end := pos + int(u.Weight/wsum*float64(length))
		if ui == len(chain.Units)-1 || end > length {
			end = length
		}
		for ; pos < end; pos++ {
			ys[pos] = y
			y += slope * dx
		}
	}
	for ; pos < length; pos++ {
		ys[pos] = y
	}
	return ys
}

// nominalAngle maps a unit's pattern to a representative angle in degrees.
func nominalAngle(n *shape.Node) float64 {
	switch n.Kind {
	case shape.NodeSegment:
		switch n.Seg.Pat.Kind {
		case shape.PatUp:
			return 50
		case shape.PatDown:
			return -50
		case shape.PatSlope:
			return n.Seg.Pat.Slope
		default:
			return 0
		}
	case shape.NodeNot:
		return -nominalAngle(n.Children[0])
	default:
		if len(n.Children) > 0 {
			return nominalAngle(n.Children[0])
		}
		return 0
	}
}
