package executor

import (
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/shape"
)

// runResult is a fuzzy solver's answer for a run of units tiling an
// inclusive point window: the weighted score sum over the run's units and
// the inclusive range assigned to each.
type runResult struct {
	score  float64
	ranges [][2]int
}

// segResult is a full-chain segmentation: the final chain score (with
// POSITION references resolved) and each unit's inclusive point range.
type segResult struct {
	score  float64
	ranges [][2]int
}

func infeasibleRun(t1, t2, lo int) runResult {
	k := t2 - t1 + 1
	r := runResult{score: float64(k) * score.WorstScore, ranges: make([][2]int, k)}
	for i := range r.ranges {
		r.ranges[i] = [2]int{lo, lo} // invalid on purpose: scores −1
	}
	return r
}

// infeasibleRunCtx is infeasibleRun writing into the context's shared
// ranges out-buffer (solveChain copies it before the next solver call).
func infeasibleRunCtx(ctx *evalCtx, t1, t2, lo int) runResult {
	k := t2 - t1 + 1
	ranges := growRanges(&ctx.rangesOut, k)
	for i := range ranges {
		ranges[i] = [2]int{lo, lo} // invalid on purpose: scores −1
	}
	return runResult{score: float64(k) * score.WorstScore, ranges: ranges}
}

// runSolver segments units [t1, t2] of the chain over inclusive point
// window [lo, hi].
type runSolver func(ce *chainEval, t1, t2, lo, hi int) runResult

// solveChain assigns point ranges to every unit of the chain: fully pinned
// units anchor at their pinned windows (gaps between pins are legal and
// simply ignored, mirroring Table 11's non-fuzzy queries), and each maximal
// run of fuzzy units tiles the window between its surrounding anchors using
// the given solver (Section 6, hybrid queries). The final score re-resolves
// POSITION references over the chosen segmentation.
func solveChain(ce *chainEval, solve runSolver) segResult {
	n := ce.viz.N()
	k := len(ce.units)
	// The assignment lives in context scratch; callers that keep it past
	// the next solveChain on this context (evalViz) copy the winner out.
	ranges := growRanges(&ce.ctx.chainRanges, k)

	// Push-down (b): eagerly test pinned up/down units first and bail out
	// before any fuzzy segmentation work if one fails (Section 5.4).
	if ce.opts.Pushdown {
		for t := range ce.units {
			cu := &ce.units[t]
			if !cu.pinned() || !eagerCheckable(cu) {
				continue
			}
			if ce.unitScore(t, cu.pinStart, cu.pinEnd) < 0 {
				for i := range ranges {
					ranges[i] = [2]int{0, 0}
				}
				return segResult{score: score.WorstScore, ranges: ranges}
			}
		}
	}

	t := 0
	for t < k {
		cu := &ce.units[t]
		if cu.pinned() {
			ranges[t] = [2]int{cu.pinStart, cu.pinEnd}
			t++
			continue
		}
		// Maximal fuzzy run [t, t2].
		t2 := t
		for t2+1 < k && !ce.units[t2+1].pinned() {
			t2++
		}
		lo := 0
		if t > 0 {
			lo = ranges[t-1][1]
		}
		hi := n - 1
		if t2+1 < k {
			next := &ce.units[t2+1]
			if next.pinErr {
				hi = lo // force infeasible
			} else {
				hi = next.pinStart
			}
		}
		if hi-lo < t2-t+1 {
			res := infeasibleRunCtx(ce.ctx, t, t2, lo)
			copy(ranges[t:], res.ranges)
		} else {
			res := solve(ce, t, t2, lo, hi)
			copy(ranges[t:], res.ranges)
		}
		t = t2 + 1
	}
	return segResult{score: ce.scoreRanges(ranges), ranges: ranges}
}

// eagerCheckable reports whether a pinned unit qualifies for the eager
// negative-score check: a single segment with an up or down pattern
// (Section 5.4 (b)).
func eagerCheckable(cu *compiledUnit) bool {
	n := cu.unit.Node
	if n.Kind != shape.NodeSegment {
		return false
	}
	k := n.Seg.Pat.Kind
	return k == shape.PatUp || k == shape.PatDown
}

// minSpan returns the minimum unit width in points for a run of k units
// over [lo, hi]: the configured MinSegmentFrac floor, relaxed when the run
// has too many units to honor it.
func minSpan(ce *chainEval, k, lo, hi int) int {
	return minSpanWidth(ce.opts, ce.viz.N(), k, lo, hi)
}

// minSpanWidth is minSpan without a chainEval: the sound pruning bound
// reconstructs the solver's width floor per fuzzy run from the same inputs,
// so the two must never diverge.
func minSpanWidth(o *Options, n, k, lo, hi int) int {
	m := int(o.MinSegmentFrac * float64(n-1))
	if m < 1 {
		m = 1
	}
	if k > 0 {
		if cap := (hi - lo) / k; m > cap {
			m = cap
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// candidates builds the break-point candidate list over [lo, hi] with the
// given stride, always including both endpoints.
func candidates(lo, hi, stride int) []int {
	return appendCandidates(make([]int, 0, (hi-lo)/max(stride, 1)+2), lo, hi, stride)
}

// appendCandidates is candidates into a reusable buffer.
func appendCandidates(out []int, lo, hi, stride int) []int {
	if stride < 1 {
		stride = 1
	}
	for c := lo; c < hi; c += stride {
		out = append(out, c)
	}
	return append(out, hi)
}

// dpRun is the optimal dynamic-programming segmenter of Section 6.1
// (Theorems 6.1–6.2): OPT(1,i,[1:j]) is built from optimal sub-segmentations
// over shorter prefixes. CONCAT's weighted mean is monotone in the weighted
// score sum for a fixed chain, so the DP maximizes the sum directly.
// Complexity O(k·m²) for m candidate break points — O(n²k) at full
// granularity, matching Theorem 6.2.
func dpRun(ce *chainEval, t1, t2, lo, hi int) runResult {
	return dpRunStride(ce, t1, t2, lo, hi, ce.opts.Stride)
}

func dpRunStride(ce *chainEval, t1, t2, lo, hi, stride int) runResult {
	ctx := ce.ctx
	// Cached per (lo, hi, stride): same-k alternatives and same-shape
	// candidates share the grid (see gridCache).
	cands := ctx.dpGrid.grid(lo, hi, stride)
	m := len(cands)
	k := t2 - t1 + 1
	if m < 2 {
		return infeasibleRunCtx(ctx, t1, t2, lo)
	}
	const neg = math.MaxFloat64
	// best[t*m+p]: max weighted sum placing units t1..t1+t-1 with the t-th
	// boundary at cands[p]. from[t*m+p] reconstructs the previous boundary.
	// Both tables are flat context scratch, resized not reallocated.
	size := (k + 1) * m
	best := growFloats(&ctx.dpBest, size)
	from := growInts(&ctx.dpFrom, size)
	for i := 0; i < size; i++ {
		best[i] = -neg
		from[i] = -1
	}
	span := minSpan(ce, k, lo, hi)
	best[0] = 0 // best[0][0]
	for t := 1; t <= k; t++ {
		w := ce.chain.Units[t1+t-1].Weight
		row, prev := best[t*m:(t+1)*m], best[(t-1)*m:t*m]
		fr := from[t*m : (t+1)*m]
		for p := t; p < m; p++ {
			b := -neg
			arg := -1
			for q := t - 1; q < p; q++ {
				if prev[q] == -neg || cands[p]-cands[q] < span {
					continue
				}
				s := prev[q] + w*ce.unitScore(t1+t-1, cands[q], cands[p])
				if s > b {
					b, arg = s, q
				}
			}
			row[p] = b
			fr[p] = arg
		}
	}
	if best[k*m+m-1] == -neg {
		return infeasibleRunCtx(ctx, t1, t2, lo)
	}
	ranges := growRanges(&ctx.rangesOut, k)
	p := m - 1
	for t := k; t >= 1; t-- {
		q := from[t*m+p]
		ranges[t-1] = [2]int{cands[q], cands[p]}
		p = q
	}
	return runResult{score: best[k*m+m-1], ranges: ranges}
}
