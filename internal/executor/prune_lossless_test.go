package executor

import (
	"fmt"
	"math/rand"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

// assertSameResults fails unless both rankings are identical in length,
// order, identity and exact score — the lossless-pruning contract.
func assertSameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Z != want[i].Z || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d: got %s %.12f, want %s %.12f",
				label, i, got[i].Z, got[i].Score, want[i].Z, want[i].Score)
		}
	}
}

// mixedCorpus builds a randomized corpus mixing the regimes pruning sees in
// the wild: noisy series (bounds stay above the floor, little pruning),
// monotone drifts (bounds fall below a separated floor, heavy pruning), and
// planted peaks that set the floor.
func mixedCorpus(rng *rand.Rand, n, points int) []dataset.Series {
	series := make([]dataset.Series, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			s := randomSeries(rng, points)
			s.Z = fmt.Sprintf("noise%03d", i)
			series = append(series, s)
		case 1, 2:
			dir := float64(1 - 2*(i%2))
			ys := make([]float64, points)
			y := 0.0
			for j := range ys {
				y += dir * (0.5 + rng.Float64())
				ys[j] = y + rng.NormFloat64()*0.05
			}
			series = append(series, mkSeries(fmt.Sprintf("drift%03d", i), ys...))
		default:
			up := points/2 + rng.Intn(points/4) - points/8
			series = append(series, ramp(fmt.Sprintf("peak%03d", i), 0,
				[2]float64{float64(up), 1 + rng.Float64()},
				[2]float64{float64(points - 1 - up), -1 - rng.Float64()}))
		}
	}
	return series
}

// TestPruningIsLossless is the negation of the old
// TestPruningLossinessRegression: with Pruning on, the top-k — scores and
// ranking — must be identical to the unpruned sequential scan. The pinned
// sub-test reproduces the exact case the old margin-based bound lost
// ("transit024" on the luminosity demo, query u;d;u, K=5: a true top-5
// member whose exact score beat the unpruned floor by ~0.058, more than the
// 0.05 margin, yet was pruned); the randomized sub-test sweeps corpora,
// k values, chain shapes and worker counts.
func TestPruningIsLossless(t *testing.T) {
	t.Run("luminosity-transit024", func(t *testing.T) {
		lum := gen.Luminosity(40, 300, 1)
		series, err := dataset.Extract(lum, dataset.ExtractSpec{Z: "star", X: "time", Y: "luminosity"})
		if err != nil {
			t.Fatal(err)
		}
		q := regexlang.MustParse("u;d;u")
		opts := DefaultOptions()
		opts.Algorithm = AlgSegmentTree
		opts.Parallelism = 1
		opts.K = 5

		opts.Pruning = false
		exact, err := SearchSeries(series, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		const victim = "transit024"
		found := false
		for _, r := range exact {
			if r.Z == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q not in the exact top-%d; the planted dataset or scoring changed — re-derive the pinned candidate", victim, opts.K)
		}

		for _, workers := range []int{1, 4} {
			pruned := opts
			pruned.Pruning = true
			pruned.Parallelism = workers
			got, err := SearchSeries(series, q, pruned)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fmt.Sprintf("workers=%d", workers), exact, got)
		}
	})

	t.Run("randomized", func(t *testing.T) {
		queries := []string{"u ; d", "u ; d ; u", "u ; d ; u ; d", "f ; u ; d", "(u ; d) | (d ; u)", "u ; (d | f)"}
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			series := mixedCorpus(rng, 80, 96+rng.Intn(64))
			query := queries[int(seed)%len(queries)]
			q := regexlang.MustParse(query)
			for _, k := range []int{1, 3, 10} {
				base := DefaultOptions()
				base.Algorithm = AlgSegmentTree
				base.Parallelism = 1
				base.K = k
				base.Pruning = false
				want, err := SearchSeries(series, q, base)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					pruned := base
					pruned.Pruning = true
					pruned.Parallelism = workers
					got, err := SearchSeries(series, q, pruned)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, fmt.Sprintf("seed=%d q=%q k=%d workers=%d", seed, query, k, workers), want, got)
				}
			}
			// Remaining queries on the same corpus, default k.
			for qi, query := range queries {
				if qi == int(seed)%len(queries) {
					continue
				}
				q := regexlang.MustParse(query)
				base := DefaultOptions()
				base.Algorithm = AlgSegmentTree
				base.Parallelism = 1
				base.K = 5
				base.Pruning = false
				want, err := SearchSeries(series, q, base)
				if err != nil {
					t.Fatal(err)
				}
				pruned := base
				pruned.Pruning = true
				got, err := SearchSeries(series, q, pruned)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, fmt.Sprintf("seed=%d q=%q", seed, query), want, got)
			}
		}
	})
}

// TestDeferredVerificationRescues forces gross over-pruning through the
// test-only threshold bias: stage 2 then prunes candidates whose sound
// bound exceeds the true floor, and only the deferred exact-verification
// stage can restore the top-k. If a bound or threshold regression ever
// reintroduces over-pruning, this is the stage that turns it into wasted
// work instead of a wrong answer — exactly what this test simulates.
func TestDeferredVerificationRescues(t *testing.T) {
	tbl := gen.DriftPeaks(200, 128, 3)
	series, err := dataset.Extract(tbl, dataset.ExtractSpec{Z: "series", X: "t", Y: "v"})
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{"u ; d", "u ; d ; u ; d"} {
		q := regexlang.MustParse(query)
		base := DefaultOptions()
		base.Algorithm = AlgSegmentTree
		base.Parallelism = 1
		base.K = 10
		base.Pruning = false
		want, err := SearchSeries(series, q, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, bias := range []float64{0.25, 2.5} {
			for _, workers := range []int{1, 4} {
				pruned := base
				pruned.Pruning = true
				pruned.Parallelism = workers
				pruned.pruneThresholdBias = bias
				got, err := SearchSeries(series, q, pruned)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, fmt.Sprintf("q=%q bias=%v workers=%d", query, bias, workers), want, got)
			}
		}
	}
}

// TestEvalVizPropagatesCompileErrors: a chain-compile error during scoring
// must surface instead of being swallowed. (Plan-compiled options validate
// at Compile time, so this drives evalViz directly with uncompiled options,
// the path where per-chain validation still runs; stage-1 coarse scoring,
// the old uncompiled path, was deleted with the sampling stage.)
func TestEvalVizPropagatesCompileErrors(t *testing.T) {
	v := group(mkSeries("s", 1, 2, 3, 4, 5, 4, 3, 2, 1), groupConfig{zNormalize: true})
	q := regexlang.MustParse("[p{ghost}] ; d")
	norm, err := shape.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	o := seqOpts().normalized() // not plan-compiled: validation runs per chain
	if _, _, err := evalViz(newEvalCtx(), v, norm, o, treeRun); err == nil {
		t.Fatal("evalViz must propagate the unknown-UDP compile error")
	}
}
