package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Quick: true, Trials: 1, K: 5} }

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note"},
	}
	out := tbl.Render()
	for _, want := range []string{"## x — demo", "| A ", "| Blong |", "| 333 |", "> note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	mean, min, max := timeIt(3, func() {
		calls++
		time.Sleep(time.Millisecond)
	})
	if calls != 4 { // warm-up + 3 trials
		t.Fatalf("calls = %d, want 4", calls)
	}
	if mean < time.Millisecond || min > max || mean > max {
		t.Fatalf("mean %v min %v max %v", mean, min, max)
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTaskSuitesStructure(t *testing.T) {
	tasks := taskSuites(tiny())
	if len(tasks) != 7 {
		t.Fatalf("tasks = %d, want 7 (Table 10)", len(tasks))
	}
	seen := map[string]bool{}
	for _, tk := range tasks {
		seen[tk.id] = true
		if len(tk.series) == 0 || len(tk.truth) == 0 || len(tk.reference) == 0 {
			t.Errorf("task %s incomplete", tk.id)
		}
		// Ground truth must be a subset of the series.
		zs := map[string]bool{}
		for _, s := range tk.series {
			if zs[s.Z] {
				t.Errorf("task %s has duplicate series id %s", tk.id, s.Z)
			}
			zs[s.Z] = true
		}
		for z := range tk.truth {
			if !zs[z] {
				t.Errorf("task %s truth id %s not in series", tk.id, z)
			}
		}
	}
	for _, id := range []string{"ET", "SQ", "SP", "WS", "MXY", "TC", "CS"} {
		if !seen[id] {
			t.Errorf("missing task %s", id)
		}
	}
}

func TestTable8AndFig9(t *testing.T) {
	cfg := tiny()
	t8 := Table8(cfg)
	if len(t8.Rows) != 2 {
		t.Fatalf("table8 rows = %d", len(t8.Rows))
	}
	ss, err := strconv.ParseFloat(t8.Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: ShapeSearch accuracy is high on these tasks.
	if ss < 75 {
		t.Errorf("ShapeSearch accuracy = %v, want >= 75", ss)
	}
	f9a := Fig9a(cfg)
	if len(f9a.Rows) != 7 {
		t.Fatalf("fig9a rows = %d", len(f9a.Rows))
	}
	f9b := Fig9b(cfg)
	if len(f9b.Rows) != 7 {
		t.Fatalf("fig9b rows = %d", len(f9b.Rows))
	}
}

func TestPrecisionAt(t *testing.T) {
	truth := map[string]bool{"a": true, "b": true}
	if p := precisionAt([]string{"a", "b", "c"}, truth); p != 100 {
		t.Errorf("precision = %v", p)
	}
	if p := precisionAt([]string{"a", "c", "b"}, truth); p != 50 {
		t.Errorf("precision = %v", p)
	}
	if p := precisionAt(nil, truth); p != 0 {
		t.Errorf("precision = %v", p)
	}
}

func TestTopKOverlap(t *testing.T) {
	truth := map[string]float64{"a": 1.0, "b": 0.8, "c": 0.6, "d": 0.4}
	dpRank := []string{"a", "b", "c", "d"}
	acc, dev := topKOverlap(dpRank, []string{"a", "b", "c", "d"}, truth, 2)
	if acc != 100 || dev != 0 {
		t.Fatalf("acc %v dev %v", acc, dev)
	}
	acc, dev = topKOverlap(dpRank, []string{"a", "d", "c", "b"}, truth, 2)
	if acc != 50 {
		t.Fatalf("acc = %v", acc)
	}
	// Deviation: DP 2nd = b (0.8); alg 2nd = d (0.4) → 50%.
	if dev != 50 {
		t.Fatalf("dev = %v", dev)
	}
}

func TestFig11RunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Fig11(tiny())
	if len(tbl.Rows) != 5 {
		t.Fatalf("fig11 rows = %d, want 5 datasets", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 4 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestCRFQualityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := CRFQuality(tiny())
	f1Row := tbl.Rows[2]
	f1, err := strconv.ParseFloat(f1Row[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 70 {
		t.Errorf("F1 = %v, want >= 70", f1)
	}
}

func TestTable11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Table11(tiny())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every query must have at least a handful of positive matches even in
	// the 4× subsample (the paper's ≥20 criterion scaled).
	for _, row := range tbl.Rows {
		for _, c := range strings.Split(row[4], " / ") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				t.Fatalf("bad count %q", c)
			}
			if n < 5 {
				t.Errorf("dataset %s query matched only %d positives", row[0], n)
			}
		}
	}
}
