package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"shapesearch/internal/dataset"
	"shapesearch/internal/dtw"
	"shapesearch/internal/executor"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
	"shapesearch/internal/topk"
)

// task is one Table 10 pattern-matching task with programmatic ground
// truth: the machine-measurable analog of the user-study tasks (the human
// preference/usability numbers of Table 9 and Fig 9c cannot be reproduced
// computationally; see EXPERIMENTS.md).
type task struct {
	id, name  string
	series    []dataset.Series
	query     shape.Query
	reference []float64       // the trendline a VQS user would sketch
	truth     map[string]bool // ground-truth positives
}

// buildSeries renders count series from a template with sequential ids.
func buildSeries(rng *rand.Rand, tpl gen.Template, prefix string, count, length int, noise float64) []dataset.Series {
	return buildSeriesBlur(rng, tpl, prefix, count, length, noise, 0)
}

// buildSeriesBlur renders series with additional structural blur: segment
// widths jittered by ±blur (relative) per instance, the "approximate
// pattern" variation that motivates blurry matching — positions and widths
// vary, only the structure stays.
func buildSeriesBlur(rng *rand.Rand, tpl gen.Template, prefix string, count, length int, noise, blur float64) []dataset.Series {
	out := make([]dataset.Series, 0, count)
	for i := 0; i < count; i++ {
		inst := tpl
		if blur > 0 {
			inst = gen.Template{Name: tpl.Name, Segs: append([]gen.TemplateSeg(nil), tpl.Segs...)}
			for s := range inst.Segs {
				inst.Segs[s].Width *= 1 + (rng.Float64()*2-1)*blur
				if inst.Segs[s].Width < 0.1 {
					inst.Segs[s].Width = 0.1
				}
			}
		}
		trend := gen.RenderTemplate(inst, length, rng)
		amp := amplitudeOf(trend)
		if amp == 0 {
			amp = 1
		}
		xs := make([]float64, length)
		ys := make([]float64, length)
		for j := 0; j < length; j++ {
			xs[j] = float64(j)
			ys[j] = trend[j] + rng.NormFloat64()*noise*amp
		}
		out = append(out, dataset.Series{Z: fmt.Sprintf("%s%02d", prefix, i), X: xs, Y: ys})
	}
	return out
}

func amplitudeOf(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return max - min
}

func markTruth(t *task, prefix string) {
	if t.truth == nil {
		t.truth = map[string]bool{}
	}
	for _, s := range t.series {
		if len(s.Z) >= len(prefix) && s.Z[:len(prefix)] == prefix {
			t.truth[s.Z] = true
		}
	}
}

// taskSuites builds the seven Table 10 task categories on synthetic data.
func taskSuites(cfg Config) []task {
	length := 120
	pos, neg := 8, 40
	if cfg.Quick {
		pos, neg = 6, 20
	}
	noise := 0.06
	rng := rand.New(rand.NewSource(777))
	distractors := func(count int) []dataset.Series {
		var out []dataset.Series
		mix := []gen.Template{
			gen.T("bull", 48, 1),
			gen.T("bear", -48, 1),
			gen.T("flatline", 2, 1),
			gen.T("latepeak", 10, 2, 55, 1, -55, 1),
			gen.T("earlydip", -55, 1, 55, 1, 8, 2),
		}
		per := count / len(mix)
		if per == 0 {
			per = 1
		}
		for i, tpl := range mix {
			out = append(out, buildSeries(rng, tpl, fmt.Sprintf("noise%d-", i), per, length, noise)...)
		}
		return out
	}

	var tasks []task

	// ET — exact trend matching: clones of a specific W-shaped reference.
	et := task{id: "ET", name: "Exact trend matching"}
	wTpl := gen.T("w", -50, 1, 45, 0.8, -45, 0.8, 50, 1)
	positives := buildSeries(rng, wTpl, "target", pos, length, noise)
	et.series = append(positives, distractors(neg)...)
	et.reference = append([]float64(nil), positives[0].Y...)
	sketchPts := make([]shape.Point, length)
	for i, y := range et.reference {
		sketchPts[i] = shape.Point{X: float64(i), Y: y}
	}
	et.query = shape.Query{Root: shape.Seg(shape.Segment{Sketch: sketchPts})}
	markTruth(&et, "target")
	tasks = append(tasks, et)

	// SQ — sequence matching: rise, flat, fall.
	sq := task{id: "SQ", name: "Sequence matching", query: regexlang.MustParse("u ; f ; d")}
	sqTpl := gen.T("ufd", 55, 1, 2, 1, -55, 1)
	sq.series = append(buildSeriesBlur(rng, sqTpl, "seq", pos, length, noise, 0.5), distractors(neg)...)
	sq.reference = renderTemplateOnce(sqTpl, length)
	markTruth(&sq, "seq")
	tasks = append(tasks, sq)

	// SP — sub-pattern matching: at least two peaks.
	sp := task{id: "SP", name: "Sub-pattern matching", query: regexlang.MustParse("[p=up, m={2,}] & [p=down, m={2,}]")}
	spTpl := gen.T("twopeaks", 55, 1, -55, 1, 55, 1, -55, 1)
	spOne := gen.T("onepeak", 55, 2, -55, 2)
	sp.series = append(buildSeriesBlur(rng, spTpl, "motif", pos, length, noise, 0.5),
		append(buildSeriesBlur(rng, spOne, "single", neg/2, length, noise, 0.5), distractors(neg/2)...)...)
	sp.reference = renderTemplateOnce(spTpl, length)
	markTruth(&sp, "motif")
	tasks = append(tasks, sp)

	// WS — width-specific matching: the sharpest rise within a 12-point
	// window; gentle full-chart rises must not match.
	ws := task{id: "WS", name: "Width-specific matching", query: regexlang.MustParse("[x.s=., x.e=.+12, p=up, m=>>]")}
	wsTpl := gen.T("burst", 1, 2, 80, 0.25, 1, 2)
	wsGentle := gen.T("gentle", 30, 1)
	ws.series = append(buildSeriesBlur(rng, wsTpl, "burst", pos, length, noise, 0.6),
		append(buildSeries(rng, wsGentle, "gentle", neg/2, length, noise), distractors(neg/2)...)...)
	ws.reference = renderTemplateOnce(wsTpl, length)
	markTruth(&ws, "burst")
	tasks = append(tasks, ws)

	// MXY — multiple disjoint x constraints: down in [10,40], up in
	// [70,110].
	mxy := task{id: "MXY", name: "Multiple X/Y constraints",
		query: regexlang.MustParse("[p=down, x.s=10, x.e=40] ; [p=up, x.s=70, x.e=110]")}
	mxyTpl := gen.T("dthenu", 2, 0.6, -55, 1.8, 2, 1.8, 55, 2.4, 2, 0.6)
	mxyFlip := gen.T("uthend", 2, 0.6, 55, 1.8, 2, 1.8, -55, 2.4, 2, 0.6)
	mxyShift := gen.T("shifted", 2, 2.4, -55, 1.8, 2, 1.8, 55, 0.6, 2, 0.6)
	mxy.series = append(buildSeries(rng, mxyTpl, "window", pos, length, noise),
		append(buildSeries(rng, mxyFlip, "flip", neg/3, length, noise),
			append(buildSeries(rng, mxyShift, "shift", neg/3, length, noise), distractors(neg/3)...)...)...)
	mxy.reference = renderTemplateOnce(mxyTpl, length)
	markTruth(&mxy, "window")
	tasks = append(tasks, mxy)

	// TC — trend characterization: the dominant seasonal shape.
	tc := task{id: "TC", name: "Trend characterization", query: regexlang.MustParse("f ; u ; d ; f")}
	tcTpl := gen.T("seasonal", 2, 1, 55, 1, -55, 1, -2, 1)
	tc.series = append(buildSeriesBlur(rng, tcTpl, "typical", pos*2, length, noise, 0.5), distractors(neg)...)
	tc.reference = renderTemplateOnce(tcTpl, length)
	markTruth(&tc, "typical")
	tasks = append(tasks, tc)

	// CS — complex shape matching: head and shoulders.
	cs := task{id: "CS", name: "Complex shape matching", query: regexlang.MustParse("u ; d ; u ; d ; u ; d")}
	csTpl := gen.T("hns", 50, 1, -40, 0.7, 65, 1, -65, 1, 40, 0.7, -50, 1)
	wsW := gen.T("wshape", -50, 1, 50, 0.8, -50, 0.8, 50, 1)
	cs.series = append(buildSeriesBlur(rng, csTpl, "hns", pos, length, noise, 0.45),
		append(buildSeriesBlur(rng, wsW, "wshape", neg/2, length, noise, 0.45), distractors(neg/2)...)...)
	cs.reference = renderTemplateOnce(csTpl, length)
	markTruth(&cs, "hns")
	tasks = append(tasks, cs)

	return tasks
}

func renderTemplateOnce(tpl gen.Template, length int) []float64 {
	rng := rand.New(rand.NewSource(1))
	return gen.RenderTemplate(tpl, length, rng)
}

// precisionAt computes |top-m ∩ truth| / m × 100 with m = min(|truth|, 10).
func precisionAt(rank []string, truth map[string]bool) float64 {
	m := len(truth)
	if m > 10 {
		m = 10
	}
	if m > len(rank) {
		m = len(rank)
	}
	if m == 0 {
		return 0
	}
	hits := 0
	for _, z := range rank[:m] {
		if truth[z] {
			hits++
		}
	}
	return float64(hits) / float64(m) * 100
}

// baselineRank ranks series by distance to the reference trendline, the
// way a visual query system matches a sketch.
func baselineRank(series []dataset.Series, reference []float64, useDTW bool) []string {
	ref := dtw.ZNormalized(reference)
	h := topk.New[string](len(series))
	for _, s := range series {
		target := dtw.ZNormalized(s.Y)
		var d float64
		if useDTW {
			d = dtw.Distance(ref, target)
		} else {
			d = dtw.Euclidean(ref, target)
		}
		h.Add(dtw.Similarity(d, s.Len(), 2.0), s.Z)
	}
	items := h.Sorted()
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}

// taskResults evaluates every tool on every task.
type taskResult struct {
	task            task
	ssAcc, dpAcc    float64 // SegmentTree / DP-scoring accuracy
	dtwAcc, eucAcc  float64
	ssTime, dtwTime time.Duration
}

func runTasks(cfg Config) []taskResult {
	cfg = cfg.normalized()
	var out []taskResult
	for _, tk := range taskSuites(cfg) {
		opts := baseOptions(cfg)
		opts.K = len(tk.series)

		var ssRank []string
		ssMean, _, _ := timeIt(cfg.Trials, func() {
			ssRank = ranking(tk.series, tk.query, withAlg(opts, executor.AlgSegmentTree))
		})
		dpRank := ranking(tk.series, tk.query, withAlg(opts, executor.AlgDP))

		var dtwRank []string
		dtwMean, _, _ := timeIt(cfg.Trials, func() {
			dtwRank = baselineRank(tk.series, tk.reference, true)
		})
		eucRank := baselineRank(tk.series, tk.reference, false)

		out = append(out, taskResult{
			task:    tk,
			ssAcc:   precisionAt(ssRank, tk.truth),
			dpAcc:   precisionAt(dpRank, tk.truth),
			dtwAcc:  precisionAt(dtwRank, tk.truth),
			eucAcc:  precisionAt(eucRank, tk.truth),
			ssTime:  ssMean,
			dtwTime: dtwMean,
		})
	}
	return out
}

// Table8 reproduces the machine-measurable analog of Table 8: overall
// accuracy and time for ShapeSearch vs a visual query system (best of
// DTW/Euclidean sketch matching) across the seven Table 10 tasks.
func Table8(cfg Config) Table {
	results := runTasks(cfg)
	var ssAcc, vqsAcc float64
	var ssTime, vqsTime time.Duration
	for _, r := range results {
		ssAcc += r.ssAcc
		best := r.dtwAcc
		if r.eucAcc > best {
			best = r.eucAcc
		}
		vqsAcc += best
		ssTime += r.ssTime
		vqsTime += r.dtwTime
	}
	n := float64(len(results))
	t := Table{
		ID:     "table8",
		Title:  "Overall results: ShapeSearch vs VQS sketch matching (machine analog)",
		Header: []string{"Tool", "Average accuracy (%)", "Average query time (s)"},
		Rows: [][]string{
			{"VQS (sketch, best of DTW/Euclidean)", pct(vqsAcc / n), seconds(vqsTime / time.Duration(len(results)))},
			{"ShapeSearch (algebra queries)", pct(ssAcc / n), seconds(ssTime / time.Duration(len(results)))},
		},
		Notes: []string{
			"paper (human study): VQS 71% accuracy / 184s per task; ShapeSearch* 88% / 105s — human task times are not machine-reproducible, so the time column here is query latency",
			"expected shape: ShapeSearch accuracy exceeds VQS accuracy",
		},
	}
	return t
}

// Fig9a reproduces Figure 9a's machine-measurable content: per-task
// accuracy of ShapeSearch (SegmentTree during the study; DP scoring as the
// red 'Scoring Function' bars of §7.3) versus the VQS baselines.
func Fig9a(cfg Config) Table {
	results := runTasks(cfg)
	t := Table{
		ID:     "fig9a",
		Title:  "Per-task accuracy (%): ShapeSearch vs VQS baselines",
		Header: []string{"Task", "ShapeSearch (SegmentTree)", "Scoring function (DP)", "VQS (DTW)", "VQS (Euclidean)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.task.id, pct(r.ssAcc), pct(r.dpAcc), pct(r.dtwAcc), pct(r.eucAcc),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape (paper §7.3): DP scoring ≥ 89% on ~6 of 7 tasks, ~81% on CS; VQS ~71% average, stronger on ET, weaker on blurry tasks (SQ, SP, WS, MXY, TC)")
	return t
}

// Fig9b reproduces Figure 9b's machine analog: per-task query latency.
func Fig9b(cfg Config) Table {
	results := runTasks(cfg)
	t := Table{
		ID:     "fig9b",
		Title:  "Per-task query latency (s): ShapeSearch vs VQS (DTW)",
		Header: []string{"Task", "ShapeSearch (s)", "VQS DTW (s)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{r.task.id, seconds(r.ssTime), seconds(r.dtwTime)})
	}
	t.Notes = append(t.Notes,
		"paper's Fig 9b measures human task completion time (ShapeSearch ~40% faster); the machine analog reported here is engine latency only",
		"fig9c / Table 9 (user preferences) are human judgments with no machine analog — not reproduced; see EXPERIMENTS.md")
	return t
}
