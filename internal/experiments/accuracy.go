package experiments

import (
	"fmt"
	"math"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

// Table11 lists the evaluation datasets and queries — the reproduction of
// Table 11 itself, with a verification column: the paper required every
// fuzzy query to match at least 20 visualizations with score > 0.
func Table11(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:     "table11",
		Title:  "Datasets and query characteristics (synthetic substitutes)",
		Header: []string{"Dataset", "Visualizations", "Length", "Fuzzy queries", "Positive matches per query"},
	}
	for _, ds := range gen.EvalDatasets() {
		series, err := dataset.Extract(ds.Table, ds.Spec)
		if err != nil {
			panic(err)
		}
		check := series
		if cfg.Quick {
			check = subsample(series, 4)
		}
		var counts []string
		for _, qs := range ds.FuzzyQueries {
			q := regexlang.MustParse(qs)
			opts := baseOptions(cfg)
			opts.Algorithm = executor.AlgSegmentTree
			opts.K = len(check)
			res, err := executor.SearchSeries(check, q, opts)
			if err != nil {
				panic(err)
			}
			positive := 0
			for _, r := range res {
				if r.Score > 0 {
					positive++
				}
			}
			counts = append(counts, fmt.Sprintf("%d", positive))
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("%d", len(series)),
			fmt.Sprintf("%d", series[0].Len()),
			joinWith(ds.FuzzyQueries, " ; "),
			joinWith(counts, " / "),
		})
	}
	t.Notes = append(t.Notes, "paper criterion: every fuzzy query matches ≥ 20 visualizations with score > 0 (≥ 5 in quick mode's 4× subsample)")
	return t
}

// dpScores computes the optimal (DP) score of every visualization — the
// ground truth for Figure 12.
func dpScores(series []dataset.Series, q shape.Query, cfg Config) map[string]float64 {
	opts := baseOptions(cfg)
	opts.Algorithm = executor.AlgDP
	opts.K = len(series)
	res, err := executor.SearchSeries(series, q, opts)
	if err != nil {
		panic(err)
	}
	scores := make(map[string]float64, len(res))
	for _, r := range res {
		scores[r.Z] = r.Score
	}
	return scores
}

func ranking(series []dataset.Series, q shape.Query, opts executor.Options) []string {
	res, err := executor.SearchSeries(series, q, opts)
	if err != nil {
		panic(err)
	}
	zs := make([]string, len(res))
	for i, r := range res {
		zs[i] = r.Z
	}
	return zs
}

// Fig12 reproduces Figure 12: top-k overlap accuracy of Greedy, SegmentTree
// and DTW against the DP ground truth, for k in {5, 10, 15, 20}, with the
// paper's score-deviation annotation (the relative gap between the optimal
// score of the k-th visualization chosen by the algorithm and by DP).
func Fig12(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:     "fig12",
		Title:  "Top-k accuracy vs DP ground truth (%; parentheses: score deviation of the k-th pick, %)",
		Header: []string{"Dataset", "k", "Greedy", "SegmentTree", "DTW"},
	}
	ks := []int{5, 10, 15, 20}
	for _, set := range prepare(cfg) {
		type perAlg struct{ acc, dev float64 }
		sums := map[string]map[int]*perAlg{}
		algs := []struct {
			name string
			opts func(executor.Options) executor.Options
		}{
			{"Greedy", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgGreedy; return o }},
			{"SegmentTree", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgSegmentTree; return o }},
			{"DTW", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgDTW; return o }},
		}
		for _, a := range algs {
			sums[a.name] = map[int]*perAlg{}
			for _, k := range ks {
				sums[a.name][k] = &perAlg{}
			}
		}
		for _, q := range set.fuzzy {
			truth := dpScores(set.series, q, cfg)
			opts := baseOptions(cfg)
			opts.K = maxInt(ks)
			dpRank := ranking(set.series, q, withAlg(opts, executor.AlgDP))
			for _, a := range algs {
				algRank := ranking(set.series, q, a.opts(opts))
				for _, k := range ks {
					acc, dev := topKOverlap(dpRank, algRank, truth, k)
					sums[a.name][k].acc += acc
					sums[a.name][k].dev += dev
				}
			}
		}
		nq := float64(len(set.fuzzy))
		for _, k := range ks {
			row := []string{set.name, fmt.Sprintf("%d", k)}
			for _, a := range algs {
				s := sums[a.name][k]
				row = append(row, fmt.Sprintf("%s (%s)", pct(s.acc/nq), pct(s.dev/nq)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): SegmentTree > 85% accuracy with small deviations; Greedy lowest; DTW moderate (40–60%)")
	return t
}

func withAlg(o executor.Options, a executor.Algorithm) executor.Options {
	o.Algorithm = a
	return o
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// topKOverlap returns the percentage of the algorithm's top-k that appears
// in DP's top-k, and the relative deviation (%) between the optimal scores
// of the two k-th picks.
func topKOverlap(dpRank, algRank []string, truth map[string]float64, k int) (acc, dev float64) {
	if k > len(dpRank) {
		k = len(dpRank)
	}
	if k == 0 {
		return 0, 0
	}
	inDP := make(map[string]bool, k)
	for _, z := range dpRank[:k] {
		inDP[z] = true
	}
	match := 0
	algK := k
	if algK > len(algRank) {
		algK = len(algRank)
	}
	for _, z := range algRank[:algK] {
		if inDP[z] {
			match++
		}
	}
	acc = float64(match) / float64(k) * 100

	dpKth := truth[dpRank[k-1]]
	algKth := dpKth
	if algK > 0 {
		algKth = truth[algRank[algK-1]]
	}
	if math.Abs(dpKth) > 1e-9 {
		dev = math.Abs(dpKth-algKth) / math.Abs(dpKth) * 100
	}
	return acc, dev
}
