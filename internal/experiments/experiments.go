// Package experiments regenerates every table and figure of the
// ShapeSearch paper's evaluation (Sections 7.3 and 9) on the synthetic
// dataset substitutes, plus the Section 4 CRF quality measurement. Each
// experiment returns a renderable Table; cmd/experiments prints them and
// bench_test.go wraps them as benchmarks. EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Config scales the experiments.
type Config struct {
	// Quick subsamples the visualization collections (roughly 4×) and
	// reduces trial counts so the full suite finishes in a couple of
	// minutes. Full mode uses the published dataset dimensions.
	Quick bool
	// Trials is how many timed trials to average after one warm-up
	// (the paper ran five after one warm-up). Default: 3, or 1 in Quick.
	Trials int
	// K is the top-k size for runtime experiments (default 10).
	K int
}

// DefaultConfig returns full-scale settings.
func DefaultConfig() Config { return Config{Trials: 3, K: 10} }

// QuickConfig returns CI-friendly settings.
func QuickConfig() Config { return Config{Quick: true, Trials: 1, K: 10} }

func (c Config) normalized() Config {
	if c.Trials <= 0 {
		if c.Quick {
			c.Trials = 1
		} else {
			c.Trials = 3
		}
	}
	if c.K <= 0 {
		c.K = 10
	}
	return c
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as markdown.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&sb, " %-*s |", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sb.WriteString("|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2) + "|")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	return sb.String()
}

// timeIt runs fn once for warm-up, then cfg.Trials timed trials, returning
// the mean, min and max trial durations (the paper's protocol: six trials,
// first discarded, rest averaged).
func timeIt(trials int, fn func()) (mean, min, max time.Duration) {
	fn() // warm-up
	min = time.Duration(1<<63 - 1)
	var total time.Duration
	for i := 0; i < trials; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		total += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return total / time.Duration(trials), min, max
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func pct(f float64) string { return fmt.Sprintf("%.1f", f) }

// All runs every experiment in paper order.
func All(cfg Config) []Table {
	return []Table{
		Table11(cfg),
		Table8(cfg),
		Fig9a(cfg),
		Fig9b(cfg),
		Fig10(cfg),
		Fig11(cfg),
		Fig12(cfg),
		Fig13a(cfg),
		Fig13b(cfg),
		Fig13c(cfg),
		CRFQuality(cfg),
	}
}

// ByID returns the experiment runner for an id, or false.
func ByID(id string) (func(Config) Table, bool) {
	m := map[string]func(Config) Table{
		"table11": Table11,
		"table8":  Table8,
		"fig9a":   Fig9a,
		"fig9b":   Fig9b,
		"fig10":   Fig10,
		"fig11":   Fig11,
		"fig12":   Fig12,
		"fig13a":  Fig13a,
		"fig13b":  Fig13b,
		"fig13c":  Fig13c,
		"crf":     CRFQuality,
	}
	fn, ok := m[id]
	return fn, ok
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	return []string{"table11", "table8", "fig9a", "fig9b", "fig10", "fig11",
		"fig12", "fig13a", "fig13b", "fig13c", "crf"}
}
