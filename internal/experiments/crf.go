package experiments

import (
	"fmt"

	"shapesearch/internal/crf"
	"shapesearch/internal/nlparser"
)

// CRFQuality reproduces the Section 4 measurement: train the linear-chain
// CRF entity tagger on a 250-query corpus with the Table 3 features and
// report cross-validated precision, recall and F1. The paper reports
// F1 = 81% (precision 73%, recall 90%) on its Mechanical Turk corpus; the
// synthetic corpus is cleaner, so scores here run higher.
func CRFQuality(cfg Config) Table {
	cfg = cfg.normalized()
	size := 250
	folds := 5
	tcfg := crf.DefaultTrainConfig()
	if cfg.Quick {
		size = 120
		folds = 3
		tcfg.Iterations = 15
	}
	corpus := nlparser.GenerateCorpus(size, 42)
	metrics, err := nlparser.CrossValidate(corpus, folds, tcfg)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "crf",
		Title:  fmt.Sprintf("CRF shape-entity tagging, %d-fold cross validation on %d queries", folds, size),
		Header: []string{"Metric", "Measured (%)", "Paper (%)"},
		Rows: [][]string{
			{"Precision", pct(metrics.Precision * 100), "73"},
			{"Recall", pct(metrics.Recall * 100), "90"},
			{"F1", pct(metrics.F1 * 100), "81"},
			{"Token accuracy", pct(metrics.Accuracy * 100), "—"},
		},
		Notes: []string{
			"the synthetic template corpus is cleaner than crowd-worker text, so measured scores exceed the paper's",
		},
	}
	return t
}
