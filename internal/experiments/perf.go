package experiments

import (
	"fmt"
	"time"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/shape"
)

// evalSet is one prepared dataset: extracted series plus its queries.
type evalSet struct {
	name     string
	table    *dataset.Table
	spec     dataset.ExtractSpec
	series   []dataset.Series
	fuzzy    []shape.Query
	nonFuzzy shape.Query
}

// prepare extracts the five Table 11 dataset substitutes, subsampling the
// visualization collections in Quick mode.
func prepare(cfg Config) []evalSet {
	var sets []evalSet
	for _, ds := range gen.EvalDatasets() {
		series, err := dataset.Extract(ds.Table, ds.Spec)
		if err != nil {
			panic(fmt.Sprintf("experiments: extracting %s: %v", ds.Name, err))
		}
		if cfg.Quick {
			series = subsample(series, 4)
		}
		set := evalSet{name: ds.Name, table: ds.Table, spec: ds.Spec, series: series}
		for _, q := range ds.FuzzyQueries {
			set.fuzzy = append(set.fuzzy, regexlang.MustParse(q))
		}
		set.nonFuzzy = regexlang.MustParse(ds.NonFuzzyQuery)
		sets = append(sets, set)
	}
	return sets
}

func subsample(series []dataset.Series, factor int) []dataset.Series {
	if factor <= 1 {
		return series
	}
	out := make([]dataset.Series, 0, len(series)/factor+1)
	for i := 0; i < len(series); i += factor {
		out = append(out, series[i])
	}
	return out
}

// algorithmsUnderTest is the Figure 10 lineup.
func algorithmsUnderTest() []struct {
	name string
	opts func(executor.Options) executor.Options
} {
	return []struct {
		name string
		opts func(executor.Options) executor.Options
	}{
		{"DP", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgDP; return o }},
		{"DTW", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgDTW; return o }},
		{"Greedy", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgGreedy; return o }},
		{"SegmentTree", func(o executor.Options) executor.Options { o.Algorithm = executor.AlgSegmentTree; return o }},
		{"SegmentTree+Pruning", func(o executor.Options) executor.Options {
			o.Algorithm = executor.AlgSegmentTree
			o.Pruning = true
			return o
		}},
	}
}

func baseOptions(cfg Config) executor.Options {
	o := executor.DefaultOptions()
	o.K = cfg.K
	o.Parallelism = 1 // isolate algorithmic cost, as the paper's runtimes do
	return o
}

// mustCompile builds a reusable query plan; the experiments compile once
// outside the timed region so the runtimes isolate execution cost, as the
// paper's figures do.
func mustCompile(q shape.Query, opts executor.Options) *executor.Plan {
	p, err := executor.Compile(q, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Fig10 reproduces Figure 10: average running time of each algorithm over
// the fuzzy queries of each dataset (error bounds are the min/max across
// queries and trials).
func Fig10(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:     "fig10",
		Title:  "Average running time per fuzzy query (seconds)",
		Header: []string{"Dataset", "Algorithm", "Mean (s)", "Min (s)", "Max (s)"},
	}
	for _, set := range prepare(cfg) {
		for _, alg := range algorithmsUnderTest() {
			opts := alg.opts(baseOptions(cfg))
			var mean, min, max time.Duration
			min = time.Duration(1<<63 - 1)
			var total time.Duration
			n := 0
			for _, q := range set.fuzzy {
				plan := mustCompile(q, opts)
				m, lo, hi := timeIt(cfg.Trials, func() {
					if _, err := plan.Run(set.series); err != nil {
						panic(err)
					}
				})
				total += m
				n++
				if lo < min {
					min = lo
				}
				if hi > max {
					max = hi
				}
			}
			mean = total / time.Duration(n)
			t.Rows = append(t.Rows, []string{set.name, alg.name, seconds(mean), seconds(min), seconds(max)})
		}
	}
	if cfg.Quick {
		t.Notes = append(t.Notes, "quick mode: visualization collections subsampled 4×")
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): SegmentTree 2–40× faster than DP; pruning adds 10–30%; Greedy fastest; DTW between SegmentTree and DP")
	return t
}

// Fig11 reproduces Figure 11: end-to-end non-fuzzy query runtime (EXTRACT
// through SCORE) with and without the push-down optimizations of Section
// 5.4. Push-down (a)/(c) prunes rows outside referenced x windows at
// EXTRACT, so the pipeline never materializes or summarizes them.
func Fig11(cfg Config) Table {
	cfg = cfg.normalized()
	t := Table{
		ID:     "fig11",
		Title:  "End-to-end non-fuzzy query runtime before/after push-down (seconds)",
		Header: []string{"Dataset", "Without push-down (s)", "With push-down (s)", "Speed-up"},
	}
	for _, set := range prepare(cfg) {
		on := baseOptions(cfg)
		off := baseOptions(cfg)
		off.Pushdown = false
		q := set.nonFuzzy
		run := func(opts executor.Options) time.Duration {
			plan := mustCompile(q, opts)
			mean, _, _ := timeIt(cfg.Trials, func() {
				if _, err := plan.Search(set.table, set.spec); err != nil {
					panic(err)
				}
			})
			return mean
		}
		dOff := run(off)
		dOn := run(on)
		speedup := float64(dOff) / float64(dOn)
		t.Rows = append(t.Rows, []string{set.name, seconds(dOff), seconds(dOn), fmt.Sprintf("%.2fx", speedup)})
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): push-down reduces runtime in proportion to LOCATION selectivity (e.g. Haptics 3s → <1.2s)")
	return t
}

// Fig13a reproduces Figure 13a: runtime vs trendline length on Worms
// prefixes, query u⊗d⊗u⊗d.
func Fig13a(cfg Config) Table {
	cfg = cfg.normalized()
	worms := gen.Worms()
	series, err := dataset.Extract(worms.Table, worms.Spec)
	if err != nil {
		panic(err)
	}
	if cfg.Quick {
		series = subsample(series, 4)
	}
	q := regexlang.MustParse("u ; d ; u ; d")
	t := Table{
		ID:     "fig13a",
		Title:  "Runtime vs points per trendline (Worms prefixes, u⊗d⊗u⊗d)",
		Header: []string{"Points", "DP (s)", "SegmentTree (s)", "SegmentTree+Pruning (s)"},
	}
	lengths := []int{50, 100, 200, 300, 400, 500, 600, 700, 800, 900}
	if cfg.Quick {
		lengths = []int{50, 100, 300, 500, 900}
	}
	for _, n := range lengths {
		prefixes := make([]dataset.Series, len(series))
		for i, s := range series {
			m := n
			if m > s.Len() {
				m = s.Len()
			}
			prefixes[i] = dataset.Series{Z: s.Z, X: s.X[:m], Y: s.Y[:m]}
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []struct {
			a       executor.Algorithm
			pruning bool
		}{{executor.AlgDP, false}, {executor.AlgSegmentTree, false}, {executor.AlgSegmentTree, true}} {
			opts := baseOptions(cfg)
			opts.Algorithm = alg.a
			opts.Pruning = alg.pruning
			plan := mustCompile(q, opts)
			mean, _, _ := timeIt(cfg.Trials, func() {
				if _, err := plan.Run(prefixes); err != nil {
					panic(err)
				}
			})
			row = append(row, seconds(mean))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): DP grows quadratically in points, SegmentTree linearly; they cross near ~100 points")
	return t
}

// Fig13b reproduces Figure 13b: runtime vs number of ShapeSegments on
// Weather, alternating up/down chains of length 2–6.
func Fig13b(cfg Config) Table {
	cfg = cfg.normalized()
	weather := gen.Weather()
	series, err := dataset.Extract(weather.Table, weather.Spec)
	if err != nil {
		panic(err)
	}
	if cfg.Quick {
		series = subsample(series, 4)
	}
	t := Table{
		ID:     "fig13b",
		Title:  "Runtime vs ShapeSegments in the query (Weather, alternating u/d)",
		Header: []string{"Segments", "DP (s)", "SegmentTree (s)", "SegmentTree+Pruning (s)"},
	}
	for k := 2; k <= 6; k++ {
		parts := make([]string, k)
		for i := range parts {
			if i%2 == 0 {
				parts[i] = "u"
			} else {
				parts[i] = "d"
			}
		}
		q := regexlang.MustParse(joinWith(parts, " ; "))
		row := []string{fmt.Sprintf("%d", k)}
		for _, alg := range []struct {
			a       executor.Algorithm
			pruning bool
		}{{executor.AlgDP, false}, {executor.AlgSegmentTree, false}, {executor.AlgSegmentTree, true}} {
			opts := baseOptions(cfg)
			opts.Algorithm = alg.a
			opts.Pruning = alg.pruning
			plan := mustCompile(q, opts)
			mean, _, _ := timeIt(cfg.Trials, func() {
				if _, err := plan.Run(series); err != nil {
					panic(err)
				}
			})
			row = append(row, seconds(mean))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): SegmentTree cost grows faster in k (k⁴) than DP (k), but DP's n² term keeps it slower overall on 366-point trendlines")
	return t
}

// Fig13c reproduces Figure 13c: runtime vs number of visualizations on
// Real Estate subsets, query u⊗d⊗u⊗d.
func Fig13c(cfg Config) Table {
	cfg = cfg.normalized()
	estate := gen.RealEstate()
	series, err := dataset.Extract(estate.Table, estate.Spec)
	if err != nil {
		panic(err)
	}
	q := regexlang.MustParse("u ; d ; u ; d")
	t := Table{
		ID:     "fig13c",
		Title:  "Runtime vs number of visualizations (Real Estate, u⊗d⊗u⊗d)",
		Header: []string{"Visualizations", "DP (s)", "SegmentTree (s)", "SegmentTree+Pruning (s)"},
	}
	counts := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	if cfg.Quick {
		counts = []int{100, 300, 500, 1000}
	}
	for _, n := range counts {
		if n > len(series) {
			n = len(series)
		}
		sub := series[:n]
		row := []string{fmt.Sprintf("%d", n)}
		for _, alg := range []struct {
			a       executor.Algorithm
			pruning bool
		}{{executor.AlgDP, false}, {executor.AlgSegmentTree, false}, {executor.AlgSegmentTree, true}} {
			opts := baseOptions(cfg)
			opts.Algorithm = alg.a
			opts.Pruning = alg.pruning
			plan := mustCompile(q, opts)
			mean, _, _ := timeIt(cfg.Trials, func() {
				if _, err := plan.Run(sub); err != nil {
					panic(err)
				}
			})
			row = append(row, seconds(mean))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape (paper): all approaches scale linearly with collection size; the gap between SegmentTree and SegmentTree+Pruning widens as more visualizations can be pruned",
		"note: pruning here is lossless (exact top-k); on this dataset the top-k floor sits inside the bulk's sound-bound band, so little can be pruned and the bound pass is visible as overhead — see BenchmarkSearchPruned for the separated regime the optimization targets")
	return t
}

func joinWith(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
