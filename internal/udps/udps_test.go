package udps

import (
	"math"
	"testing"

	"shapesearch/internal/score"
)

func curve(n int, f func(t float64) float64) ([]float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		xs[i] = float64(i)
		ys[i] = f(t)
	}
	return xs, ys
}

func TestRegisterAndNames(t *testing.T) {
	r := score.NewRegistry()
	if err := Register(r); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("pattern %q not registered", name)
		}
	}
}

func TestConcaveConvex(t *testing.T) {
	xs, dome := curve(60, func(t float64) float64 { return -4 * (t - 0.5) * (t - 0.5) })
	_, bowl := curve(60, func(t float64) float64 { return 4 * (t - 0.5) * (t - 0.5) })
	_, line := curve(60, func(t float64) float64 { return t })

	if s := Concave(xs, dome); s < 0.3 {
		t.Errorf("dome concavity = %v, want strongly positive", s)
	}
	if s := Concave(xs, bowl); s > -0.3 {
		t.Errorf("bowl concavity = %v, want strongly negative", s)
	}
	if s := Convex(xs, bowl); s < 0.3 {
		t.Errorf("bowl convexity = %v, want strongly positive", s)
	}
	if s := math.Abs(Concave(xs, line)); s > 0.2 {
		t.Errorf("line concavity = %v, want near zero", s)
	}
	if s := Concave(xs[:2], dome[:2]); s != score.WorstScore {
		t.Errorf("two points should be worst score, got %v", s)
	}
}

func TestExponentialLogarithmic(t *testing.T) {
	xs, expo := curve(60, func(t float64) float64 { return math.Exp(3 * t) })
	_, loga := curve(60, func(t float64) float64 { return math.Log(1 + 20*t) })
	_, falling := curve(60, func(t float64) float64 { return -t })

	if s := Exponential(xs, expo); s < 0.3 {
		t.Errorf("exp(x) scored %v on exponential, want strong", s)
	}
	if s := Exponential(xs, loga); s > 0 {
		t.Errorf("log(x) scored %v on exponential, want non-positive", s)
	}
	if s := Logarithmic(xs, loga); s < 0.3 {
		t.Errorf("log(x) scored %v on logarithmic, want strong", s)
	}
	if s := Exponential(xs, falling); s > 0 {
		t.Errorf("falling series scored %v on exponential", s)
	}
}

func TestVShape(t *testing.T) {
	xs, v := curve(60, func(t float64) float64 { return math.Abs(t-0.5) * 2 })
	_, rise := curve(60, func(t float64) float64 { return t })
	_, skew := curve(60, func(t float64) float64 { return math.Abs(t-0.05) * 2 })

	if s := VShape(xs, v); s < 0.3 {
		t.Errorf("V scored %v, want strong", s)
	}
	if s := VShape(xs, rise); s > 0 {
		t.Errorf("monotone rise scored %v on vshape", s)
	}
	if s := VShape(xs, skew); s != score.WorstScore {
		t.Errorf("minimum at the edge should fail, got %v", s)
	}
}

func TestEntropyAndVolatility(t *testing.T) {
	xs, clean := curve(80, func(t float64) float64 { return t })
	_, choppy := curve(80, func(t float64) float64 {
		return math.Sin(t*40) + math.Sin(t*23+1)*0.7
	})
	if Entropy(xs, choppy) <= Entropy(xs, clean) {
		t.Error("choppy series should have higher entropy than a clean trend")
	}
	if Volatile(xs, choppy) <= Volatile(xs, clean) {
		t.Error("choppy series should be more volatile")
	}
	if Smooth(xs, clean) <= Smooth(xs, choppy) {
		t.Error("clean trend should be smoother")
	}
	if s := Volatile(xs[:2], clean[:2]); s != score.WorstScore {
		t.Errorf("degenerate volatility = %v", s)
	}
}

// TestAllBounded: every built-in stays within the UDP contract [−1, 1] on
// assorted inputs.
func TestAllBounded(t *testing.T) {
	inputs := [][]float64{}
	for _, f := range []func(float64) float64{
		func(t float64) float64 { return t },
		func(t float64) float64 { return -t * t },
		func(t float64) float64 { return math.Sin(t * 30) },
		func(t float64) float64 { return 0 },
		func(t float64) float64 { return math.Exp(5 * t) },
	} {
		_, ys := curve(50, f)
		inputs = append(inputs, ys)
	}
	xs, _ := curve(50, func(t float64) float64 { return t })
	for name, fn := range builtins() {
		for i, ys := range inputs {
			s := fn(xs, ys)
			if math.IsNaN(s) || s < -1 || s > 1 {
				t.Errorf("%s on input %d returned %v, outside [-1, 1]", name, i, s)
			}
		}
	}
}
