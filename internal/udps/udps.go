// Package udps provides a library of ready-made user-defined patterns —
// the mathematical shapes the paper's study participants asked for beyond
// the core algebra ("concave, convex, exponential, or statistical measures
// such as entropy", Section 7.2). Install them into a registry and use
// them like any pattern: [p=concave], [p=volatile] & [p=up], and so on.
//
// Every scorer receives a visual segment's raw x and y values and returns
// a score in [−1, 1], matching the UDP contract of Section 5.2.
package udps

import (
	"math"

	"shapesearch/internal/score"
	"shapesearch/internal/segstat"
)

// Register installs every built-in pattern into the registry. Names:
// concave, convex, exponential, logarithmic, vshape, entropy, volatile,
// smooth.
func Register(r *score.Registry) error {
	for name, fn := range builtins() {
		if err := r.Register(name, fn); err != nil {
			return err
		}
	}
	return nil
}

// Names lists the built-in pattern names.
func Names() []string {
	return []string{"concave", "convex", "exponential", "logarithmic",
		"vshape", "entropy", "volatile", "smooth"}
}

func builtins() map[string]score.UDPFunc {
	return map[string]score.UDPFunc{
		"concave":     Concave,
		"convex":      Convex,
		"exponential": Exponential,
		"logarithmic": Logarithmic,
		"vshape":      VShape,
		"entropy":     Entropy,
		"volatile":    Volatile,
		"smooth":      Smooth,
	}
}

// curvature fits y ≈ a·x² + b·x + c by least squares and returns the
// normalized quadratic coefficient: the sign carries convexity, the
// magnitude how pronounced it is relative to the segment's scale.
func curvature(xs, ys []float64) (float64, bool) {
	n := len(xs)
	if n < 3 {
		return 0, false
	}
	// Normalize x to [0, 1] and z-score y for scale invariance.
	x0, x1 := xs[0], xs[n-1]
	span := x1 - x0
	if span <= 0 {
		return 0, false
	}
	ny := append([]float64(nil), ys...)
	segstat.ZNormalize(ny)
	// Solve the 3x3 normal equations for the quadratic fit.
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	for i := 0; i < n; i++ {
		x := (xs[i] - x0) / span
		x2 := x * x
		s0++
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		t0 += ny[i]
		t1 += x * ny[i]
		t2 += x2 * ny[i]
	}
	// Cramer's rule on [[s4 s3 s2][s3 s2 s1][s2 s1 s0]] · [a b c] = [t2 t1 t0].
	det := s4*(s2*s0-s1*s1) - s3*(s3*s0-s1*s2) + s2*(s3*s1-s2*s2)
	if math.Abs(det) < 1e-12 {
		return 0, false
	}
	a := (t2*(s2*s0-s1*s1) - s3*(t1*s0-t0*s1) + s2*(t1*s1-t0*s2)) / det
	return a, true
}

// Concave scores shapes curving downward (rises then levels or falls, like
// a saturating process): +1 for strong concavity, −1 for strong convexity.
func Concave(xs, ys []float64) float64 {
	a, ok := curvature(xs, ys)
	if !ok {
		return score.WorstScore
	}
	// a is in z-units over the unit square; tan⁻¹ maps it perceptually.
	return score.Clamp(-2 * math.Atan(a) / math.Pi * 2)
}

// Convex is the opposite of Concave: +1 for bowls, −1 for domes.
func Convex(xs, ys []float64) float64 {
	return -Concave(xs, ys)
}

// Exponential scores accelerating growth: increasing and convex.
func Exponential(xs, ys []float64) float64 {
	st := segstat.FromPoints(normalizedXY(xs, ys))
	slope, ok := st.Slope()
	if !ok {
		return score.WorstScore
	}
	return score.And(score.Up(slope), Convex(xs, ys))
}

// Logarithmic scores decelerating growth: increasing and concave.
func Logarithmic(xs, ys []float64) float64 {
	st := segstat.FromPoints(normalizedXY(xs, ys))
	slope, ok := st.Slope()
	if !ok {
		return score.WorstScore
	}
	return score.And(score.Up(slope), Concave(xs, ys))
}

// VShape scores a fall followed by a symmetric rise: the minimum near the
// middle with both halves steep. It is the UDP twin of the nested query
// [p=down][p=up] with an added symmetry preference.
func VShape(xs, ys []float64) float64 {
	n := len(ys)
	if n < 5 {
		return score.WorstScore
	}
	nx, ny := normalizedXY(xs, ys)
	minAt := 0
	for i, y := range ny {
		if y < ny[minAt] {
			minAt = i
		}
	}
	if minAt < n/5 || minAt > 4*n/5 {
		return score.WorstScore
	}
	left := segstat.FromPoints(nx[:minAt+1], ny[:minAt+1])
	right := segstat.FromPoints(nx[minAt:], ny[minAt:])
	ls, ok1 := left.Slope()
	rs, ok2 := right.Slope()
	if !ok1 || !ok2 {
		return score.WorstScore
	}
	fall := score.Down(ls)
	rise := score.Up(rs)
	symmetry := 1 - math.Abs(math.Atan(-ls)-math.Atan(rs))*2/math.Pi
	return score.And(fall, rise, score.Clamp(symmetry))
}

// Entropy scores how uniformly the segment's value changes spread across
// magnitude buckets — a rough busyness measure. High entropy (erratic
// movement) scores +1; a clean single-direction trend scores low.
func Entropy(xs, ys []float64) float64 {
	n := len(ys)
	if n < 3 {
		return score.WorstScore
	}
	ny := append([]float64(nil), ys...)
	segstat.ZNormalize(ny)
	const buckets = 8
	counts := make([]float64, buckets)
	var maxAbs float64
	diffs := make([]float64, n-1)
	for i := 1; i < n; i++ {
		diffs[i-1] = ny[i] - ny[i-1]
		if a := math.Abs(diffs[i-1]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return score.WorstScore
	}
	for _, d := range diffs {
		b := int((d/maxAbs + 1) / 2 * (buckets - 1))
		counts[b]++
	}
	var h float64
	total := float64(len(diffs))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	hmax := math.Log2(buckets)
	return score.Clamp(2*h/hmax - 1)
}

// Volatile scores segments whose point-to-point movement is large relative
// to their net trend — choppy series score +1, clean trends −1.
func Volatile(xs, ys []float64) float64 {
	n := len(ys)
	if n < 3 {
		return score.WorstScore
	}
	var travel float64
	for i := 1; i < n; i++ {
		travel += math.Abs(ys[i] - ys[i-1])
	}
	net := math.Abs(ys[n-1] - ys[0])
	if travel == 0 {
		return score.WorstScore
	}
	// travel == net for a monotone series; travel ≫ net for choppy ones.
	ratio := travel / (net + travel/float64(n))
	return score.Clamp(2*math.Atan(ratio-1)/math.Pi*2 - 1 + 0.5*math.Min(ratio-1, 1))
}

// Smooth is the opposite of Volatile.
func Smooth(xs, ys []float64) float64 {
	return -Volatile(xs, ys)
}

// normalizedXY maps x onto [0, 4] and z-scores y, the executor's chart
// normalization, so slopes read like on-screen angles.
func normalizedXY(xs, ys []float64) ([]float64, []float64) {
	n := len(xs)
	nx := make([]float64, n)
	ny := append([]float64(nil), ys...)
	if n == 0 {
		return nx, ny
	}
	span := xs[n-1] - xs[0]
	if span <= 0 {
		span = 1
	}
	for i := range xs {
		nx[i] = (xs[i] - xs[0]) / span * 4
	}
	segstat.ZNormalize(ny)
	return nx, ny
}
