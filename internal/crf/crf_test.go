package crf

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// toySequences builds a simple synthetic tagging task: tokens carry a
// feature that mostly reveals their label, plus transition structure
// (label B never follows A directly).
func toySequences(n int, seed int64) []Sequence {
	rng := rand.New(rand.NewSource(seed))
	var seqs []Sequence
	for s := 0; s < n; s++ {
		T := 3 + rng.Intn(8)
		var feats [][]string
		var labels []string
		prev := ""
		for t := 0; t < T; t++ {
			label := []string{"X", "Y", "O"}[rng.Intn(3)]
			if prev == "X" && label == "Y" {
				label = "O" // forbidden transition, learnable
			}
			f := []string{"bias"}
			if rng.Float64() < 0.9 {
				f = append(f, "hint="+label)
			} else {
				f = append(f, "hint=none")
			}
			f = append(f, fmt.Sprintf("pos=%d", t%3))
			feats = append(feats, f)
			labels = append(labels, label)
			prev = label
		}
		seqs = append(seqs, Sequence{Features: feats, Labels: labels})
	}
	return seqs
}

func TestTrainAndDecode(t *testing.T) {
	train := toySequences(120, 1)
	test := toySequences(40, 2)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 20
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := model.Evaluate(test, "O")
	if m.Accuracy < 0.85 {
		t.Fatalf("accuracy = %v, want >= 0.85", m.Accuracy)
	}
	if m.F1 < 0.8 {
		t.Fatalf("F1 = %v, want >= 0.8", m.F1)
	}
}

func TestTrainingImprovesLikelihood(t *testing.T) {
	seqs := toySequences(60, 3)
	short := DefaultTrainConfig()
	short.Iterations = 1
	long := DefaultTrainConfig()
	long.Iterations = 15
	m1, err := Train(seqs, short)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(seqs, long)
	if err != nil {
		t.Fatal(err)
	}
	ll1 := m1.LogLikelihood(seqs)
	ll2 := m2.LogLikelihood(seqs)
	if ll2 <= ll1 {
		t.Fatalf("more training should improve likelihood: %v vs %v", ll1, ll2)
	}
	if ll2 > 0 {
		t.Fatalf("log likelihood must be non-positive, got %v", ll2)
	}
}

func TestLearnsTransitions(t *testing.T) {
	// Sequences where the feature is useless and only transitions matter:
	// the label alternates A, B, A, B...
	var seqs []Sequence
	for s := 0; s < 50; s++ {
		T := 6
		var feats [][]string
		var labels []string
		for t := 0; t < T; t++ {
			feats = append(feats, []string{"bias"})
			if t%2 == 0 {
				labels = append(labels, "A")
			} else {
				labels = append(labels, "B")
			}
		}
		seqs = append(seqs, Sequence{Features: feats, Labels: labels})
	}
	model, err := Train(seqs, TrainConfig{Iterations: 25, LearningRate: 0.5, L2: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	pred := model.Decode([][]string{{"bias"}, {"bias"}, {"bias"}, {"bias"}})
	// Alternation must be reproduced (phase may start at A since A always
	// begins the training sequences).
	if pred[0] != "A" || pred[1] != "B" || pred[2] != "A" || pred[3] != "B" {
		t.Fatalf("decoded %v, want alternating A B A B", pred)
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	seqs := toySequences(30, 5)
	model, err := Train(seqs, TrainConfig{Iterations: 5, LearningRate: 0.5, L2: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// For short feature sequences, compare Viterbi with brute force.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		T := 1 + rng.Intn(4)
		feats := make([][]string, T)
		for t := range feats {
			feats[t] = []string{"bias", fmt.Sprintf("hint=%s", []string{"X", "Y", "O", "none"}[rng.Intn(4)])}
		}
		got := model.Decode(feats)
		want, wantScore := bruteForceBest(model, feats)
		gotScore := pathScore(model, feats, got)
		if math.Abs(gotScore-wantScore) > 1e-9 {
			t.Fatalf("viterbi path %v (%v) != brute force %v (%v)", got, gotScore, want, wantScore)
		}
	}
}

func bruteForceBest(m *Model, feats [][]string) ([]string, float64) {
	T := len(feats)
	L := len(m.Labels)
	best := math.Inf(-1)
	var bestPath []string
	path := make([]string, T)
	var rec func(t int)
	rec = func(t int) {
		if t == T {
			if s := pathScore(m, feats, path); s > best {
				best = s
				bestPath = append([]string(nil), path...)
			}
			return
		}
		for y := 0; y < L; y++ {
			path[t] = m.Labels[y]
			rec(t + 1)
		}
	}
	rec(0)
	return bestPath, best
}

func pathScore(m *Model, feats [][]string, path []string) float64 {
	scores := m.positionScores(feats)
	total := scores[0][m.labelIdx[path[0]]]
	for t := 1; t < len(path); t++ {
		total += m.trans[m.labelIdx[path[t-1]]][m.labelIdx[path[t]]] + scores[t][m.labelIdx[path[t]]]
	}
	return total
}

func TestForwardBackwardConsistency(t *testing.T) {
	// logZ from alpha must match an explicit sum over all paths.
	seqs := toySequences(20, 9)
	model, err := Train(seqs, TrainConfig{Iterations: 3, LearningRate: 0.5, L2: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]string{{"bias", "hint=X"}, {"bias"}, {"bias", "hint=Y"}}
	scores := model.positionScores(feats)
	_, _, logZ := model.forwardBackward(scores)
	// Brute force partition.
	L := len(model.Labels)
	var total float64
	path := make([]string, len(feats))
	var rec func(t int)
	rec = func(t int) {
		if t == len(feats) {
			total += math.Exp(pathScore(model, feats, path))
			return
		}
		for y := 0; y < L; y++ {
			path[t] = model.Labels[y]
			rec(t + 1)
		}
	}
	rec(0)
	if math.Abs(logZ-math.Log(total)) > 1e-6 {
		t.Fatalf("logZ = %v, brute force = %v", logZ, math.Log(total))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultTrainConfig()); err == nil {
		t.Fatal("no data should error")
	}
	bad := []Sequence{{Features: [][]string{{"a"}}, Labels: []string{"X", "Y"}}}
	if _, err := Train(bad, DefaultTrainConfig()); err == nil {
		t.Fatal("misaligned sequence should error")
	}
}

func TestDecodeEmpty(t *testing.T) {
	seqs := toySequences(5, 11)
	model, _ := Train(seqs, TrainConfig{Iterations: 1, LearningRate: 0.5})
	if out := model.Decode(nil); out != nil {
		t.Fatal("empty decode should be nil")
	}
}
