// Package crf implements a linear-chain conditional random field [25] for
// sequence labeling, trained by maximum likelihood with forward–backward
// gradients and AdaGrad updates, and decoded with Viterbi. The
// natural-language parser uses it to tag non-noise words with shape
// entities (Section 4 of the paper). Only the standard library is used.
package crf

import (
	"fmt"
	"math"
)

// Sequence is one training or decoding instance: per-position sparse binary
// features, and gold labels when training.
type Sequence struct {
	Features [][]string
	Labels   []string
}

// Model is a trained linear-chain CRF.
type Model struct {
	Labels   []string
	labelIdx map[string]int
	// unary[feature][label] are state feature weights.
	unary map[string][]float64
	// trans[from][to] are transition weights.
	trans [][]float64
}

// TrainConfig controls training. The defaults mirror the paper's CRFSuite
// settings in spirit (L2 regularization, bounded iterations).
type TrainConfig struct {
	// Iterations over the full training set (default 50, the paper's
	// max-iterations).
	Iterations int
	// LearningRate is the AdaGrad base step (default 0.5).
	LearningRate float64
	// L2 is the ridge penalty (default 0.001, the paper's L2).
	L2 float64
	// Seedless: training is deterministic (fixed visit order).
}

// DefaultTrainConfig returns the standard settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Iterations: 50, LearningRate: 0.5, L2: 0.001}
}

// Train fits a model on labeled sequences.
func Train(seqs []Sequence, cfg TrainConfig) (*Model, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	labelSet := map[string]int{}
	var labels []string
	for _, s := range seqs {
		if len(s.Features) != len(s.Labels) {
			return nil, fmt.Errorf("crf: sequence has %d feature positions but %d labels", len(s.Features), len(s.Labels))
		}
		for _, l := range s.Labels {
			if _, ok := labelSet[l]; !ok {
				labelSet[l] = len(labels)
				labels = append(labels, l)
			}
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("crf: no labeled data")
	}
	L := len(labels)
	m := &Model{Labels: labels, labelIdx: labelSet, unary: map[string][]float64{}, trans: mat(L, L)}
	// AdaGrad accumulators.
	unaryG := map[string][]float64{}
	transG := mat(L, L)

	for iter := 0; iter < cfg.Iterations; iter++ {
		for _, s := range seqs {
			m.sgdStep(s, cfg, unaryG, transG)
		}
	}
	return m, nil
}

func mat(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// sgdStep performs one AdaGrad update on the negative log-likelihood of a
// single sequence.
func (m *Model) sgdStep(s Sequence, cfg TrainConfig, unaryG map[string][]float64, transG [][]float64) {
	T := len(s.Features)
	if T == 0 {
		return
	}
	L := len(m.Labels)
	scores := m.positionScores(s.Features)
	alpha, beta, logZ := m.forwardBackward(scores)

	// Gradient of NLL = expected feature counts − empirical counts.
	// Unary updates.
	for t := 0; t < T; t++ {
		gold := m.labelIdx[s.Labels[t]]
		for y := 0; y < L; y++ {
			p := math.Exp(alpha[t][y] + beta[t][y] - logZ)
			g := p
			if y == gold {
				g -= 1
			}
			if g == 0 {
				continue
			}
			for _, f := range s.Features[t] {
				w := m.unary[f]
				if w == nil {
					w = make([]float64, L)
					m.unary[f] = w
				}
				acc := unaryG[f]
				if acc == nil {
					acc = make([]float64, L)
					unaryG[f] = acc
				}
				grad := g + cfg.L2*w[y]
				acc[y] += grad * grad
				w[y] -= cfg.LearningRate * grad / (1e-8 + math.Sqrt(acc[y]))
			}
		}
	}
	// Transition updates.
	for t := 1; t < T; t++ {
		goldA := m.labelIdx[s.Labels[t-1]]
		goldB := m.labelIdx[s.Labels[t]]
		for a := 0; a < L; a++ {
			for b := 0; b < L; b++ {
				p := math.Exp(alpha[t-1][a] + m.trans[a][b] + scores[t][b] + beta[t][b] - logZ)
				g := p
				if a == goldA && b == goldB {
					g -= 1
				}
				if g == 0 {
					continue
				}
				grad := g + cfg.L2*m.trans[a][b]
				transG[a][b] += grad * grad
				m.trans[a][b] -= cfg.LearningRate * grad / (1e-8 + math.Sqrt(transG[a][b]))
			}
		}
	}
}

// positionScores sums unary feature weights per position and label.
func (m *Model) positionScores(features [][]string) [][]float64 {
	L := len(m.Labels)
	scores := mat(len(features), L)
	for t, fs := range features {
		for _, f := range fs {
			if w := m.unary[f]; w != nil {
				for y := 0; y < L; y++ {
					scores[t][y] += w[y]
				}
			}
		}
	}
	return scores
}

// forwardBackward computes log-space alpha, beta and the log partition.
func (m *Model) forwardBackward(scores [][]float64) (alpha, beta [][]float64, logZ float64) {
	T := len(scores)
	L := len(m.Labels)
	alpha = mat(T, L)
	beta = mat(T, L)
	copy(alpha[0], scores[0])
	buf := make([]float64, L)
	for t := 1; t < T; t++ {
		for b := 0; b < L; b++ {
			for a := 0; a < L; a++ {
				buf[a] = alpha[t-1][a] + m.trans[a][b]
			}
			alpha[t][b] = logSumExp(buf) + scores[t][b]
		}
	}
	for b := 0; b < L; b++ {
		beta[T-1][b] = 0
	}
	for t := T - 2; t >= 0; t-- {
		for a := 0; a < L; a++ {
			for b := 0; b < L; b++ {
				buf[b] = m.trans[a][b] + scores[t+1][b] + beta[t+1][b]
			}
			beta[t][a] = logSumExp(buf)
		}
	}
	logZ = logSumExp(alpha[T-1])
	return alpha, beta, logZ
}

// Decode returns the Viterbi-optimal label sequence for the features.
func (m *Model) Decode(features [][]string) []string {
	T := len(features)
	if T == 0 {
		return nil
	}
	L := len(m.Labels)
	scores := m.positionScores(features)
	delta := mat(T, L)
	back := make([][]int, T)
	for t := range back {
		back[t] = make([]int, L)
	}
	copy(delta[0], scores[0])
	for t := 1; t < T; t++ {
		for b := 0; b < L; b++ {
			best, arg := math.Inf(-1), 0
			for a := 0; a < L; a++ {
				if s := delta[t-1][a] + m.trans[a][b]; s > best {
					best, arg = s, a
				}
			}
			delta[t][b] = best + scores[t][b]
			back[t][b] = arg
		}
	}
	bestEnd, arg := math.Inf(-1), 0
	for y := 0; y < L; y++ {
		if delta[T-1][y] > bestEnd {
			bestEnd, arg = delta[T-1][y], y
		}
	}
	out := make([]string, T)
	for t := T - 1; t >= 0; t-- {
		out[t] = m.Labels[arg]
		arg = back[t][arg]
	}
	return out
}

// LogLikelihood returns the per-sequence average log-likelihood of gold
// labels under the model, useful for monitoring training.
func (m *Model) LogLikelihood(seqs []Sequence) float64 {
	var total float64
	var count int
	for _, s := range seqs {
		T := len(s.Features)
		if T == 0 {
			continue
		}
		scores := m.positionScores(s.Features)
		_, _, logZ := m.forwardBackward(scores)
		path := scores[0][m.labelIdx[s.Labels[0]]]
		for t := 1; t < T; t++ {
			a := m.labelIdx[s.Labels[t-1]]
			b := m.labelIdx[s.Labels[t]]
			path += m.trans[a][b] + scores[t][b]
		}
		total += path - logZ
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Metrics holds tagging quality measured against gold labels: precision,
// recall and F1 computed over non-noise labels (micro-averaged), matching
// how the paper reports its CRF quality.
type Metrics struct {
	Precision, Recall, F1 float64
	// Accuracy is plain per-token accuracy over all labels.
	Accuracy float64
}

// Evaluate decodes each sequence and scores it against the gold labels.
// noiseLabel identifies the background class excluded from P/R/F1.
func (m *Model) Evaluate(seqs []Sequence, noiseLabel string) Metrics {
	var tp, fp, fn, correct, total int
	for _, s := range seqs {
		pred := m.Decode(s.Features)
		for t := range pred {
			total++
			if pred[t] == s.Labels[t] {
				correct++
			}
			predEntity := pred[t] != noiseLabel
			goldEntity := s.Labels[t] != noiseLabel
			switch {
			case predEntity && goldEntity && pred[t] == s.Labels[t]:
				tp++
			case predEntity && (!goldEntity || pred[t] != s.Labels[t]):
				fp++
			}
			if goldEntity && pred[t] != s.Labels[t] {
				fn++
			}
		}
	}
	var mtr Metrics
	if tp+fp > 0 {
		mtr.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		mtr.Recall = float64(tp) / float64(tp+fn)
	}
	if mtr.Precision+mtr.Recall > 0 {
		mtr.F1 = 2 * mtr.Precision * mtr.Recall / (mtr.Precision + mtr.Recall)
	}
	if total > 0 {
		mtr.Accuracy = float64(correct) / float64(total)
	}
	return mtr
}

func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
