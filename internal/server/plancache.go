package server

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"shapesearch/internal/executor"
)

// defaultPlanCacheCapacity bounds the number of cached compiled plans. A
// plan is a few kilobytes of interned metadata, so the bound is generous;
// it exists to keep adversarial query streams from growing the map without
// limit.
const defaultPlanCacheCapacity = 128

// planKey keys a compiled plan by everything that shapes it: the
// normalized query fingerprint (shape.Normalized.Fingerprint — exact
// structure, exact weights, alternative order) plus the effective
// score-relevant request options. Every other executor option the server
// uses is a process-wide constant (DefaultOptions), so it needs no key
// component; Parallelism is deliberately absent — it is per-request
// (Plan.WithParallelism wraps the cached plan without recompiling).
func planKey(fingerprint string, alg executor.Algorithm, k int, pruning bool) string {
	return fmt.Sprintf("%d\x00%d\x00%t\x00%s", alg, k, pruning, fingerprint)
}

// planCache memoizes executor.Compile across requests. Plans are immutable
// and dataset-independent, so entries are never invalidated — only evicted
// (LRU) when capacity is exceeded. Concurrent misses on one key coalesce:
// a single leader compiles while the rest wait and share the result
// (counted as hits — the work is shared, not repeated). Compile errors are
// returned to everyone in the flight but never stored: error outcomes are
// deterministic per key, yet caching them would spend cache slots on
// garbage queries.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // value: *planEntry
	// order is the recency list: front = most recently used.
	order   *list.List
	flights map[string]*planFlight
	// hits and misses instrument the cache for the response debug block
	// and tests.
	hits, misses uint64
}

type planEntry struct {
	key  string
	plan *executor.Plan
}

type planFlight struct {
	done chan struct{}
	plan *executor.Plan
	err  error
}

// errCompileAbandoned is what flight waiters observe when the leader's
// compile panicked instead of returning.
var errCompileAbandoned = errors.New("server: plan compile did not complete")

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		flights:  make(map[string]*planFlight),
	}
}

// get returns the compiled plan for key, compiling on a miss. hit reports
// whether this call reused existing or in-flight work (false only for the
// leader of a fresh compile).
func (c *planCache) get(key string, compile func() (*executor.Plan, error)) (plan *executor.Plan, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		plan := el.Value.(*planEntry).plan
		c.mu.Unlock()
		return plan, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		// Compile is pure CPU and fast (no I/O); waiting unconditionally is
		// fine — there is nothing to cancel.
		<-f.done
		return f.plan, true, f.err
	}
	c.misses++
	f := &planFlight{done: make(chan struct{}), err: errCompileAbandoned}
	c.flights[key] = f
	// Bookkeeping in a defer so a panicking compile (net/http recovers per
	// request) still unregisters the flight and releases waiters with
	// errCompileAbandoned instead of wedging the key forever.
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.entries[key] = c.order.PushFront(&planEntry{key: key, plan: f.plan})
			for len(c.entries) > c.capacity {
				back := c.order.Back()
				c.order.Remove(back)
				delete(c.entries, back.Value.(*planEntry).key)
			}
		}
		c.mu.Unlock()
		close(f.done)
	}()
	c.mu.Unlock()

	plan, err = compile()
	f.plan, f.err = plan, err
	return plan, false, err
}

// stats reports (hits, misses) for the debug block and tests.
func (c *planCache) stats() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
