package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shapesearch/internal/executor"
)

func searchDemo(t *testing.T, s *Server, query, dataset string) searchResponse {
	t.Helper()
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: query},
		Dataset:      dataset, Z: "z", X: "x", Y: "y", K: 3,
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search %q on %q: status = %d: %s", query, dataset, rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func uploadCSV(t *testing.T, s *Server, name, csv string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/datasets/"+name, strings.NewReader(csv))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload %q: status = %d: %s", name, rec.Code, rec.Body.String())
	}
}

// risingCSV builds a dataset where series "best" matches u;d most strongly.
func risingCSV(best string) string {
	var sb strings.Builder
	sb.WriteString("z,x,y\n")
	for i := 0; i < 9; i++ {
		y := i
		if i > 4 {
			y = 8 - i
		}
		fmt.Fprintf(&sb, "%s,%d,%d\n", best, i, y*2)
	}
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, "flatline,%d,%d\n", i, 1)
	}
	return sb.String()
}

// TestConcurrentSearch hammers /api/search from many goroutines against
// the same and different datasets; run under -race this exercises the
// shared top-k heap, the plan reuse inside a request, and the candidate
// cache's locking.
func TestConcurrentSearch(t *testing.T) {
	s := testServer(t)
	uploadCSV(t, s, "second", risingCSV("apex"))

	queries := []string{"u ; d", "d ; u", "u", "[p=up, m={1,}]"}
	datasets := []string{"demo", "second"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				req := searchRequest{
					parseRequest: parseRequest{Kind: "regex", Query: queries[(g+it)%len(queries)]},
					Dataset:      datasets[g%len(datasets)], Z: "z", X: "x", Y: "y", K: 2,
					Parallelism: 1 + g%3,
				}
				rec := doJSON(t, s, http.MethodPost, "/api/search", req)
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d: status = %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := s.cache.stats()
	if hits == 0 {
		t.Fatalf("expected cache hits under repeated specs, got hits=%d misses=%d", hits, misses)
	}
}

// TestConcurrentSearchWithUploads interleaves searches with dataset
// re-uploads; every response must be consistent (HTTP 200 with results
// from either the old or new version, never a torn state).
func TestConcurrentSearchWithUploads(t *testing.T) {
	s := testServer(t)
	uploadCSV(t, s, "churn", risingCSV("v0"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				req := searchRequest{
					parseRequest: parseRequest{Kind: "regex", Query: "u ; d"},
					Dataset:      "churn", Z: "z", X: "x", Y: "y", K: 1,
				}
				rec := doJSON(t, s, http.MethodPost, "/api/search", req)
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d: status = %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 8; it++ {
			uploadCSV(t, s, "churn", risingCSV(fmt.Sprintf("v%d", it+1)))
		}
	}()
	wg.Wait()
}

// TestCacheInvalidationOnReupload: after a dataset is replaced, searches
// must reflect the new data — cached candidates from the old version must
// not be served.
func TestCacheInvalidationOnReupload(t *testing.T) {
	s := testServer(t)
	uploadCSV(t, s, "live", risingCSV("first"))

	resp := searchDemo(t, s, "u ; d", "live")
	if resp.Results[0].Z != "first" {
		t.Fatalf("top = %q, want first", resp.Results[0].Z)
	}
	// Warm the cache and confirm a hit.
	_, missesBefore := s.cache.stats()
	searchDemo(t, s, "d ; u", "live")
	hits, misses := s.cache.stats()
	if hits == 0 || misses != missesBefore {
		t.Fatalf("second query over the same spec should hit the cache (hits=%d, misses=%d)", hits, misses)
	}

	uploadCSV(t, s, "live", risingCSV("second"))
	resp = searchDemo(t, s, "u ; d", "live")
	if resp.Results[0].Z != "second" {
		t.Fatalf("after re-upload top = %q, want second (stale cache?)", resp.Results[0].Z)
	}
}

// TestColdMissCoalescing: concurrent identical queries against a cold
// cache must run EXTRACT + GROUP once (singleflight), not once per caller.
func TestColdMissCoalescing(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := searchRequest{
				parseRequest: parseRequest{Kind: "regex", Query: "u ; d"},
				Dataset:      "demo", Z: "z", X: "x", Y: "y", K: 1,
			}
			rec := doJSON(t, s, http.MethodPost, "/api/search", req)
			if rec.Code != http.StatusOK {
				t.Errorf("status = %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()
	hits, misses := s.cache.stats()
	if misses != 1 {
		t.Fatalf("cold burst must build once, got misses=%d (hits=%d)", misses, hits)
	}
	if hits != 7 {
		t.Fatalf("7 callers should reuse the build, got hits=%d", hits)
	}
}

// TestCacheDistinctSpecs: changing any visual parameter must miss the
// cache rather than serve candidates grouped under different parameters.
func TestCacheDistinctSpecs(t *testing.T) {
	s := testServer(t)
	searchDemo(t, s, "u ; d", "demo")
	hits0, _ := s.cache.stats()

	// Same spec, different query: hit.
	searchDemo(t, s, "d ; u", "demo")
	hits1, _ := s.cache.stats()
	if hits1 != hits0+1 {
		t.Fatalf("same-spec query should hit (hits %d -> %d)", hits0, hits1)
	}

	// Different K only: still a hit (K is not a grouping parameter).
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: "u"},
		Dataset:      "demo", Z: "z", X: "x", Y: "y", K: 1,
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	hits2, _ := s.cache.stats()
	if hits2 != hits1+1 {
		t.Fatalf("K change should still hit (hits %d -> %d)", hits1, hits2)
	}

	// Different filter: miss.
	req.Filters = []filterSpec{{Col: "y", Op: "<=", Num: 100}}
	rec = doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	hits3, _ := s.cache.stats()
	if hits3 != hits2 {
		t.Fatalf("filtered query must miss the cache (hits %d -> %d)", hits2, hits3)
	}
}

// TestFetchPanicSafety: a panicking build must release the flight so the
// key is not wedged for every later request (waiters see an error, the
// next caller rebuilds).
func TestFetchPanicSafety(t *testing.T) {
	c := newCandidateCache(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build panic must propagate to the leader")
			}
		}()
		c.fetch(context.Background(), "d", "k", 0, nil, func() (cachedCandidates, error) { panic("boom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cands, hit, err := c.fetch(context.Background(), "d", "k", 0, nil, func() (cachedCandidates, error) {
			return cachedCandidates{vizs: []*executor.Viz{}}, nil
		})
		if err != nil || hit || cands.vizs == nil {
			t.Errorf("rebuild after panic: cands=%v hit=%v err=%v", cands, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after build panic")
	}
}
