package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitSnapshot polls the admission gauges until cond holds or the test
// deadline nears; enqueueing happens on other goroutines, so tests
// sequence against it by observing the gauges rather than by sleeping.
func waitSnapshot(t *testing.T, a *admission, cond func(admitted, queued, workers int) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		adm, q, w := a.snapshot()
		if cond(adm, q, w) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission gauges stuck at (%d,%d,%d)", adm, q, w)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmitImmediate(t *testing.T) {
	a := newAdmission(4)
	tk, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk.budget != 4 {
		t.Fatalf("lone request budget = %d, want the whole pool (4)", tk.budget)
	}
	if adm, q, w := a.snapshot(); adm != 1 || q != 0 || w != 4 {
		t.Fatalf("gauges = (%d,%d,%d), want (1,0,4)", adm, q, w)
	}
	tk.release()
	tk.release() // idempotent: a second release must not skew the gauges
	if adm, q, w := a.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges after release = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// TestWorkerBudgetClamped: a request admitted while an earlier one holds a
// wide budget gets the leftovers (floored at one), never a fresh full
// share — the fix for the old fixed-at-admission oversubscription.
func TestWorkerBudgetClamped(t *testing.T) {
	a := newAdmission(8)
	t1, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1.budget != 8 {
		t.Fatalf("first budget = %d, want 8", t1.budget)
	}
	t2, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if t2.budget != 1 {
		t.Fatalf("budget with the pool drained = %d, want the floor grant 1", t2.budget)
	}
	t1.release()
	t3, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fair share at admitted=2 is 4, and 7 tokens are free: no clamp.
	if t3.budget != 4 {
		t.Fatalf("budget after release = %d, want fair share 4", t3.budget)
	}
	// An explicit ask only ever lowers the grant.
	t3.release()
	t4, err := a.admit(context.Background(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if t4.budget != 2 {
		t.Fatalf("requested-2 budget = %d, want 2", t4.budget)
	}
	t2.release()
	t4.release()
	if adm, q, w := a.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// TestAdmitFIFO: waiters are granted in arrival order.
func TestAdmitFIFO(t *testing.T) {
	a := newAdmission(1)
	hold, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	enqueue := func(id, wantQueued int) {
		go func() {
			tk, err := a.admit(context.Background(), "", 0)
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			tk.release()
		}()
		waitSnapshot(t, a, func(_, q, _ int) bool { return q == wantQueued })
	}
	enqueue(1, 1)
	enqueue(2, 2)
	hold.release()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order = %d,%d, want FIFO 1,2", first, second)
	}
	waitSnapshot(t, a, func(adm, q, w int) bool { return adm == 0 && q == 0 && w == 0 })
}

// TestAdmitShedsWhenQueueFull: arrivals past a full queue are refused
// immediately with a retry hint, without joining the queue.
func TestAdmitShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(1)
	a.queueDepth = 1
	hold, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	go func() {
		tk, err := a.admit(context.Background(), "", 0)
		if err != nil {
			t.Errorf("queued waiter: %v", err)
			return
		}
		<-release
		tk.release()
	}()
	waitSnapshot(t, a, func(_, q, _ int) bool { return q == 1 })

	_, err = a.admit(context.Background(), "", 0)
	var oe *overloadError
	if !errors.As(err, &oe) {
		t.Fatalf("queue-full admit err = %v, want *overloadError", err)
	}
	if oe.retryAfter < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", oe.retryAfter)
	}
	if _, shed := a.counters(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
	hold.release()
	close(release)
	waitSnapshot(t, a, func(adm, q, w int) bool { return adm == 0 && q == 0 && w == 0 })
}

// TestAdmitShedsOnQueueWait: a request still queued when its queue-time
// budget runs out is shed rather than admitted late.
func TestAdmitShedsOnQueueWait(t *testing.T) {
	a := newAdmission(1)
	a.queueWait = 20 * time.Millisecond
	hold, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.admit(context.Background(), "", 0)
	var oe *overloadError
	if !errors.As(err, &oe) {
		t.Fatalf("queue-wait admit err = %v, want *overloadError", err)
	}
	if !strings.Contains(err.Error(), "queue wait") {
		t.Fatalf("err = %v, want the queue-wait reason", err)
	}
	hold.release()
	if adm, q, w := a.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// TestAdmitContextErrors: an expired deadline keeps its identity (503 at
// the HTTP layer); a cancellation means the client left (dropped).
func TestAdmitContextErrors(t *testing.T) {
	a := newAdmission(1)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := a.admit(expired, "", 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired admit err = %v, want DeadlineExceeded", err)
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := a.admit(canceled, "", 0); !errors.Is(err, errClientGone) {
		t.Fatalf("canceled admit err = %v, want errClientGone", err)
	}

	// A waiter whose deadline expires in the queue is answered from the
	// queue: DeadlineExceeded, and the queue empties.
	hold, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel3 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel3()
	if _, err := a.admit(ctx, "", 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-expiry err = %v, want DeadlineExceeded", err)
	}
	hold.release()
	if adm, q, w := a.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// TestTenantFairness: freed slots round-robin across tenants with waiters,
// so one tenant's deep queue cannot starve another's single request.
func TestTenantFairness(t *testing.T) {
	a := newAdmission(1)
	hold, err := a.admit(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 3)
	enqueue := func(tenant string, wantQueued int) {
		go func() {
			tk, err := a.admit(context.Background(), tenant, 0)
			if err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
				return
			}
			order <- tenant
			tk.release()
		}()
		waitSnapshot(t, a, func(_, q, _ int) bool { return q == wantQueued })
	}
	enqueue("a", 1)
	enqueue("a", 2)
	enqueue("b", 3)
	hold.release()
	got := []string{<-order, <-order, <-order}
	// Strict FIFO would drain a,a,b; round-robin interleaves b after a's
	// first grant.
	want := []string{"a", "b", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
	waitSnapshot(t, a, func(adm, q, w int) bool { return adm == 0 && q == 0 && w == 0 })
}

// TestTenantCap: a capped tenant queues behind its own cap while other
// tenants use the free global slots.
func TestTenantCap(t *testing.T) {
	a := newAdmission(4)
	a.tenantCap = 1
	a1, err := a.admit(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		tk, err := a.admit(context.Background(), "a", 0)
		if err != nil {
			t.Errorf("capped waiter: %v", err)
			return
		}
		close(granted)
		tk.release()
	}()
	waitSnapshot(t, a, func(_, q, _ int) bool { return q == 1 })
	select {
	case <-granted:
		t.Fatal("tenant a's second request admitted past its cap")
	default:
	}
	// Another tenant sails through the free global slots.
	b1, err := a.admit(context.Background(), "b", 0)
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a's cap: %v", err)
	}
	b1.release()
	a1.release()
	<-granted
	waitSnapshot(t, a, func(adm, q, w int) bool { return adm == 0 && q == 0 && w == 0 })
}

// TestAwaitCalm: background work parks while the server is at or above the
// load watermark and wakes when load drains; the bound caps the wait.
func TestAwaitCalm(t *testing.T) {
	a := newAdmission(1)
	hold, err := a.admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded: sustained load cannot park background work forever.
	start := time.Now()
	a.awaitCalm(20 * time.Millisecond)
	if since := time.Since(start); since < 20*time.Millisecond {
		t.Fatalf("awaitCalm returned after %v with load held, want the full bound", since)
	}
	// Wakes on calm: a parked waiter resumes when the slot frees.
	woke := make(chan struct{})
	go func() {
		a.awaitCalm(5 * time.Second)
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-woke:
		t.Fatal("awaitCalm returned while the server was saturated")
	default:
	}
	hold.release()
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("awaitCalm did not wake on calm")
	}
}

// TestGaugesPairedOnErrorPaths is the slot-leak regression: every
// early-return path through the search and append handlers — bad request,
// unknown dataset, parse failure, compile failure, canceled context,
// expired deadline — must leave the admission gauges at zero. A single
// unpaired path here once meant the server's capacity ratcheted down
// under client errors.
func TestGaugesPairedOnErrorPaths(t *testing.T) {
	s := testServer(t)
	registerBig(t, s)
	s.logf = func(string, ...any) {} // the disconnect path logs; keep the test quiet
	search := func(body any) *httptest.ResponseRecorder {
		return doJSON(t, s, http.MethodPost, "/api/search", body)
	}
	base := map[string]any{"dataset": "demo", "z": "z", "x": "x", "y": "y"}
	with := func(kv map[string]any) map[string]any {
		m := map[string]any{}
		for k, v := range base {
			m[k] = v
		}
		for k, v := range kv {
			m[k] = v
		}
		return m
	}
	cases := []struct {
		name string
		run  func() int
		want int
	}{
		{"method not allowed", func() int {
			return doJSON(t, s, http.MethodGet, "/api/search", nil).Code
		}, http.StatusMethodNotAllowed},
		{"invalid JSON", func() int {
			req := httptest.NewRequest(http.MethodPost, "/api/search", strings.NewReader("{"))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			return rec.Code
		}, http.StatusBadRequest},
		{"batch and single mixed", func() int {
			return search(with(map[string]any{
				"query": "u", "kind": "regex",
				"queries": []map[string]any{{"kind": "regex", "query": "u"}},
			})).Code
		}, http.StatusBadRequest},
		{"unknown dataset", func() int {
			return search(map[string]any{"kind": "regex", "query": "u",
				"dataset": "nope", "z": "z", "x": "x", "y": "y"}).Code
		}, http.StatusNotFound},
		{"bad aggregation", func() int {
			return search(with(map[string]any{"kind": "regex", "query": "u", "agg": "median"})).Code
		}, http.StatusBadRequest},
		{"bad algorithm", func() int {
			return search(with(map[string]any{"kind": "regex", "query": "u", "algorithm": "quantum"})).Code
		}, http.StatusBadRequest},
		{"parse failure after admission", func() int {
			return search(with(map[string]any{"kind": "bogus", "query": "u"})).Code
		}, http.StatusUnprocessableEntity},
		{"batch parse failure after admission", func() int {
			return search(with(map[string]any{
				"queries": []map[string]any{{"kind": "bogus", "query": "u"}},
			})).Code
		}, http.StatusUnprocessableEntity},
		{"compile failure after admission", func() int {
			return search(with(map[string]any{"kind": "regex", "query": "[p=foo_pattern]"})).Code
		}, http.StatusBadRequest},
		{"append bad body", func() int {
			req := httptest.NewRequest(http.MethodPost, "/api/append?dataset=demo",
				strings.NewReader("not,the\nschema,1\n"))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			return rec.Code
		}, http.StatusBadRequest},
		{"success for contrast", func() int {
			return search(with(map[string]any{"kind": "regex", "query": "u ; d"})).Code
		}, http.StatusOK},
	}
	for _, tc := range cases {
		if code := tc.run(); code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, code, tc.want)
		}
		if adm, q, w := s.adm.snapshot(); adm != 0 || q != 0 || w != 0 {
			t.Fatalf("%s: gauges = (%d,%d,%d), want zeros", tc.name, adm, q, w)
		}
	}

	// Canceled context (client disconnect): dropped, gauges zero.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/search", searchBody(t)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if adm, q, w := s.adm.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("canceled context: gauges = (%d,%d,%d), want zeros", adm, q, w)
	}

	// Expired deadline mid-scoring: 503, gauges zero.
	s.SetSearchTimeout(2 * time.Millisecond)
	code := search(map[string]any{"kind": "regex", "query": "u ; d ; u ; d",
		"dataset": "big", "z": "z", "x": "x", "y": "y", "algorithm": "dp"}).Code
	s.SetSearchTimeout(0)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", code)
	}
	if adm, q, w := s.adm.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("timeout: gauges = (%d,%d,%d), want zeros", adm, q, w)
	}
}
