package server

import (
	"context"
	"fmt"
	"testing"

	"shapesearch/internal/executor"
)

func fill(t *testing.T, c *candidateCache, key string) {
	t.Helper()
	_, _, err := c.fetch(context.Background(), "ds", key, func() ([]*executor.Viz, error) {
		return []*executor.Viz{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCandidateCacheLRU asserts the eviction policy: a hot entry that keeps
// getting hits survives a burst of one-off keys that overflows capacity,
// while the coldest entry is evicted.
func TestCandidateCacheLRU(t *testing.T) {
	c := newCandidateCache(3)
	fill(t, c, "hot")
	fill(t, c, "cold")
	fill(t, c, "warm")
	// Touch hot and warm so cold is the LRU entry.
	fill(t, c, "hot")
	fill(t, c, "warm")
	// A burst of one-off keys, with the hot key re-touched between them.
	for i := 0; i < 5; i++ {
		fill(t, c, fmt.Sprintf("one-off-%d", i))
		fill(t, c, "hot")
	}
	hitsBefore, _ := c.stats()
	fill(t, c, "hot")
	hitsAfter, _ := c.stats()
	if hitsAfter != hitsBefore+1 {
		t.Fatalf("hot key was evicted despite constant hits (hits %d -> %d)", hitsBefore, hitsAfter)
	}
	_, missesBefore := c.stats()
	fill(t, c, "cold")
	_, missesAfter := c.stats()
	if missesAfter != missesBefore+1 {
		t.Fatal("cold key should have been evicted by the one-off burst")
	}
	if len(c.entries) > 3 || c.order.Len() != len(c.entries) {
		t.Fatalf("bookkeeping drift: %d entries, %d list nodes", len(c.entries), c.order.Len())
	}
}

// TestCandidateCacheInvalidateDataset asserts per-dataset invalidation
// removes entries from both the map and the recency list.
func TestCandidateCacheInvalidateDataset(t *testing.T) {
	c := newCandidateCache(8)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("a-%d", i)
		if _, _, err := c.fetch(context.Background(), "a", key, func() ([]*executor.Viz, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.fetch(context.Background(), "b", "b-0", func() ([]*executor.Viz, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	c.invalidateDataset("a")
	if len(c.entries) != 1 || c.order.Len() != 1 {
		t.Fatalf("after invalidate: %d entries, %d list nodes, want 1", len(c.entries), c.order.Len())
	}
	if _, ok := c.entries["b-0"]; !ok {
		t.Fatal("other dataset's entry must survive")
	}
}
