package server

import (
	"context"
	"fmt"
	"testing"
)

func fill(t *testing.T, c *candidateCache, key string) {
	t.Helper()
	_, _, err := c.fetch(context.Background(), "ds", key, 0, nil, func() (cachedCandidates, error) {
		return cachedCandidates{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCandidateCacheLRU asserts the eviction policy at several capacities
// (the capacity is a server.Option now, so the policy must hold for any
// configured bound): a hot entry that keeps getting hits survives a burst
// of one-off keys that overflows capacity, while the coldest entry is
// evicted.
func TestCandidateCacheLRU(t *testing.T) {
	for _, capacity := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			c := newCandidateCache(capacity)
			fill(t, c, "hot")
			fill(t, c, "cold")
			fill(t, c, "warm")
			// Touch hot and warm so cold is the LRU entry.
			fill(t, c, "hot")
			fill(t, c, "warm")
			// A burst of one-off keys overflowing any capacity under test,
			// with the hot key re-touched between them.
			for i := 0; i < capacity+5; i++ {
				fill(t, c, fmt.Sprintf("one-off-%d", i))
				fill(t, c, "hot")
			}
			hitsBefore, _ := c.stats()
			fill(t, c, "hot")
			hitsAfter, _ := c.stats()
			if hitsAfter != hitsBefore+1 {
				t.Fatalf("hot key was evicted despite constant hits (hits %d -> %d)", hitsBefore, hitsAfter)
			}
			_, missesBefore := c.stats()
			fill(t, c, "cold")
			_, missesAfter := c.stats()
			if missesAfter != missesBefore+1 {
				t.Fatal("cold key should have been evicted by the one-off burst")
			}
			if len(c.entries) > capacity || c.order.Len() != len(c.entries) {
				t.Fatalf("bookkeeping drift: %d entries (cap %d), %d list nodes",
					len(c.entries), capacity, c.order.Len())
			}
		})
	}
}

// TestCandidateCacheInvalidateDataset asserts per-dataset invalidation
// removes entries from both the map and the recency list.
func TestCandidateCacheInvalidateDataset(t *testing.T) {
	c := newCandidateCache(8)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("a-%d", i)
		if _, _, err := c.fetch(context.Background(), "a", key, 0, nil, func() (cachedCandidates, error) { return cachedCandidates{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.fetch(context.Background(), "b", "b-0", 0, nil, func() (cachedCandidates, error) { return cachedCandidates{}, nil }); err != nil {
		t.Fatal(err)
	}
	c.invalidateDataset("a")
	if len(c.entries) != 1 || c.order.Len() != 1 {
		t.Fatalf("after invalidate: %d entries, %d list nodes, want 1", len(c.entries), c.order.Len())
	}
	if _, ok := c.entries["b-0"]; !ok {
		t.Fatal("other dataset's entry must survive")
	}
}

// TestCacheCapacityOptions asserts the server.Options actually resize the
// caches and that the zero/negative values keep the defaults.
func TestCacheCapacityOptions(t *testing.T) {
	s := New(WithCandidateCacheCapacity(5), WithPlanCacheCapacity(7))
	if got := s.cache.capacity; got != 5 {
		t.Fatalf("candidate cache capacity = %d, want 5", got)
	}
	if got := s.plans.capacity; got != 7 {
		t.Fatalf("plan cache capacity = %d, want 7", got)
	}
	d := New(WithCandidateCacheCapacity(0), WithPlanCacheCapacity(-1))
	if got := d.cache.capacity; got != defaultCacheCapacity {
		t.Fatalf("candidate cache capacity = %d, want default %d", got, defaultCacheCapacity)
	}
	if got := d.plans.capacity; got != defaultPlanCacheCapacity {
		t.Fatalf("plan cache capacity = %d, want default %d", got, defaultPlanCacheCapacity)
	}
}
