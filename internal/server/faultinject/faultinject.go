// Package faultinject provides in-process fault-injection hook points for
// the server's robustness tests: named places in the serving path (slot
// admission, candidate extraction, scoring, append patching, index
// rebuilds) where a test can splice in a delay, a block, or an
// interleaving barrier and then assert the admission/queue invariants
// under exactly the schedule it forced.
//
// Production cost is one atomic pointer load per hook point: with no hook
// registered, Fire returns immediately. Hooks are process-global — tests
// that register them must not run in parallel with each other and must
// restore (or Reset) before finishing.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// hooks is the active point→hook map. It is replaced wholesale on every
// Set/restore (copy-on-write under mu) and read with a single atomic load
// in Fire; nil means no hook is active anywhere.
var hooks atomic.Pointer[map[string]func()]

// mu serializes writers (Set, restore, Reset). Readers never take it.
var mu sync.Mutex

// Fire invokes the hook registered for point, if any. The hook runs on the
// caller's goroutine: a blocking hook stalls exactly the code path that
// fired it, which is the point.
func Fire(point string) {
	m := hooks.Load()
	if m == nil {
		return
	}
	if fn := (*m)[point]; fn != nil {
		fn()
	}
}

// Set registers fn at point, replacing any previous hook there, and
// returns a function restoring the previous state. Typical use:
//
//	defer faultinject.Set("server.search.score", func() { <-gate })()
func Set(point string, fn func()) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	var prev func()
	var had bool
	if m := hooks.Load(); m != nil {
		prev, had = (*m)[point]
	}
	install(point, fn)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if had {
			install(point, prev)
		} else {
			install(point, nil)
		}
	}
}

// Reset removes every registered hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks.Store(nil)
}

// install writes a copy of the current map with point set (or removed, for
// a nil fn). Caller holds mu.
func install(point string, fn func()) {
	next := make(map[string]func())
	if m := hooks.Load(); m != nil {
		for k, v := range *m {
			next[k] = v
		}
	}
	if fn == nil {
		delete(next, point)
	} else {
		next[point] = fn
	}
	if len(next) == 0 {
		hooks.Store(nil)
		return
	}
	hooks.Store(&next)
}
