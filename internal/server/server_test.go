package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shapesearch/internal/dataset"
)

func testServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	s := New(opts...)
	// A tiny dataset: "peak" rises then falls, "rise" only rises.
	var zs []string
	var xs, ys []float64
	add := func(z string, vals ...float64) {
		for i, v := range vals {
			zs = append(zs, z)
			xs = append(xs, float64(i))
			ys = append(ys, v)
		}
	}
	add("peak", 0, 2, 4, 6, 8, 6, 4, 2, 0)
	add("rise", 0, 1, 2, 3, 4, 5, 6, 7, 8)
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Register("demo", tbl)
	return s
}

func doJSON(t testing.TB, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealth(t *testing.T) {
	rec := doJSON(t, testServer(t), http.MethodGet, "/api/health", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestListDatasets(t *testing.T) {
	rec := doJSON(t, testServer(t), http.MethodGet, "/api/datasets", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var infos []datasetInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "demo" || infos[0].Rows != 18 {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestUploadDataset(t *testing.T) {
	s := testServer(t)
	csv := "city,month,temp\nnyc,1,30\nnyc,2,40\nsf,1,50\nsf,2,55\n"
	req := httptest.NewRequest(http.MethodPost, "/api/datasets/weather", strings.NewReader(csv))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	rec = doJSON(t, s, http.MethodGet, "/api/datasets", nil)
	if !strings.Contains(rec.Body.String(), "weather") {
		t.Fatalf("datasets = %s", rec.Body.String())
	}
	// Bad upload.
	req = httptest.NewRequest(http.MethodPost, "/api/datasets/bad", strings.NewReader(""))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty CSV upload status = %d", rec.Code)
	}
}

func TestParseRegex(t *testing.T) {
	rec := doJSON(t, testServer(t), http.MethodPost, "/api/parse",
		parseRequest{Kind: "regex", Query: "u ; d"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp parseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Canonical != "[p=up][p=down]" || !resp.Fuzzy {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestParseNLWithEntities(t *testing.T) {
	rec := doJSON(t, testServer(t), http.MethodPost, "/api/parse",
		parseRequest{Kind: "nl", Query: "rising then falling"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp parseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Canonical != "[p=up][p=down]" {
		t.Fatalf("canonical = %q", resp.Canonical)
	}
	if len(resp.Entities) != 3 {
		t.Fatalf("entities = %+v", resp.Entities)
	}
}

func TestParseSketch(t *testing.T) {
	body := map[string]any{
		"kind": "sketch",
		"sketch": []map[string]float64{
			{"X": 0, "Y": 0}, {"X": 1, "Y": 2}, {"X": 2, "Y": 4},
			{"X": 3, "Y": 2}, {"X": 4, "Y": 0},
		},
	}
	rec := doJSON(t, testServer(t), http.MethodPost, "/api/parse", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp parseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Canonical != "[p=up][p=down]" {
		t.Fatalf("canonical = %q", resp.Canonical)
	}
}

func TestParseErrors(t *testing.T) {
	s := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/parse", parseRequest{Kind: "regex", Query: "["})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rec.Code)
	}
	rec = doJSON(t, s, http.MethodPost, "/api/parse", parseRequest{Kind: "martian", Query: "x"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/parse", strings.NewReader("{bad json"))
	recBad := httptest.NewRecorder()
	s.ServeHTTP(recBad, req)
	if recBad.Code != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", recBad.Code)
	}
}

func TestSearchEndToEnd(t *testing.T) {
	s := testServer(t)
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: "u ; d"},
		Dataset:      "demo", Z: "z", X: "x", Y: "y", K: 2,
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Results[0].Z != "peak" {
		t.Fatalf("top = %s", resp.Results[0].Z)
	}
	if len(resp.Results[0].X) == 0 || len(resp.Results[0].BreakXs) == 0 {
		t.Fatal("series data missing")
	}
}

func TestSearchNLQuery(t *testing.T) {
	s := testServer(t)
	req := searchRequest{
		parseRequest: parseRequest{Kind: "nl", Query: "rising then falling"},
		Dataset:      "demo", Z: "z", X: "x", Y: "y",
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Z != "peak" {
		t.Fatalf("top = %s", resp.Results[0].Z)
	}
}

func TestSearchErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name string
		req  searchRequest
		code int
	}{
		{
			"missing dataset",
			searchRequest{parseRequest: parseRequest{Query: "u"}, Dataset: "ghost", Z: "z", X: "x", Y: "y"},
			http.StatusNotFound,
		},
		{
			"bad query",
			searchRequest{parseRequest: parseRequest{Query: "["}, Dataset: "demo", Z: "z", X: "x", Y: "y"},
			http.StatusUnprocessableEntity,
		},
		{
			"bad column",
			searchRequest{parseRequest: parseRequest{Query: "u"}, Dataset: "demo", Z: "ghost", X: "x", Y: "y"},
			http.StatusBadRequest,
		},
		{
			"bad algorithm",
			searchRequest{parseRequest: parseRequest{Query: "u"}, Dataset: "demo", Z: "z", X: "x", Y: "y", Algorithm: "quantum"},
			http.StatusBadRequest,
		},
		{
			"bad agg",
			searchRequest{parseRequest: parseRequest{Query: "u"}, Dataset: "demo", Z: "z", X: "x", Y: "y", Agg: "median"},
			http.StatusBadRequest,
		},
	}
	for _, c := range cases {
		rec := doJSON(t, s, http.MethodPost, "/api/search", c.req)
		if rec.Code != c.code {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body.String())
		}
	}
}

func TestSearchWithFilterAndAlgorithms(t *testing.T) {
	s := testServer(t)
	for _, alg := range []string{"auto", "dp", "segmenttree", "greedy", "dtw", "euclidean"} {
		req := searchRequest{
			parseRequest: parseRequest{Kind: "regex", Query: "u ; d"},
			Dataset:      "demo", Z: "z", X: "x", Y: "y",
			Algorithm: alg,
			Filters:   []filterSpec{{Col: "y", Op: "<=", Num: 100}},
		}
		rec := doJSON(t, s, http.MethodPost, "/api/search", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", alg, rec.Code, rec.Body.String())
		}
	}
}

func TestDownsample(t *testing.T) {
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) * 2
	}
	dx, dy := downsample(x, y, 100)
	if len(dx) != 100 || len(dy) != 100 {
		t.Fatalf("len = %d, %d", len(dx), len(dy))
	}
	if dx[0] != 0 {
		t.Fatal("first point must be kept")
	}
	sx, sy := downsample(x[:50], y[:50], 100)
	if len(sx) != 50 || len(sy) != 50 {
		t.Fatal("short series should pass through")
	}
	_ = fmt.Sprintf("%v", dy)
}
