package server

import (
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/gen"
	"shapesearch/internal/regexlang"
)

// appendBenchSeries sizes the benchmark corpus at shape-index scale: well
// past indexMinVizs, so the cached entry carries a shape index and the
// append path has every layer to maintain.
const appendBenchSeries = 100_000

// serveTickSearch issues one cached-path search against the bench corpus.
// Aggregation is avg so benchmark deltas can cycle (repeated x per series
// folds into the aggregate instead of erroring under AggNone).
func serveTickSearch(b *testing.B, s *Server) {
	b.Helper()
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: "u"},
		Dataset:      "ticks", Z: "z", X: "x", Y: "y", Agg: "avg", K: 5,
		Pruning: true,
	}
	rec := doJSON(b, s, "POST", "/api/search", req)
	if rec.Code != 200 {
		b.Fatalf("search: status = %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkAppend measures the incremental maintenance cost of streaming
// appends into a 10^5-series indexed corpus: one timed op is AppendRows —
// the dataset-index delta merge, the per-group candidate patch and the
// shape-index leaf update — with a post-loop search asserting the patched
// entry still serves (cache hit, no rebuild). OnePoint appends single
// rows; KiloPoint appends 1000-row batches.
//
// ReRegister is the freshness-equivalent baseline: what the same update
// costs without the incremental path — rebuild the dataset index from the
// full table, re-extract, re-group and rebuild the shape index. Scoring is
// excluded on both sides; the comparison is maintenance vs maintenance.
func BenchmarkAppend(b *testing.B) {
	for _, tc := range []struct {
		name     string
		batchPts int
	}{{"OnePoint", 1}, {"KiloPoint", 1000}} {
		b.Run(tc.name, func(b *testing.B) {
			base, batches := gen.StreamTicks(appendBenchSeries, 8, 64, tc.batchPts, 5, true)
			s := New()
			s.Register("ticks", base)
			serveTickSearch(b, s) // warm: build and cache the candidate set + shape index
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.AppendRows("ticks", batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s.rebuildWG.Wait()
			// The appends must have kept the cached entry alive and patched:
			// a follow-up search has to hit, not rebuild.
			_, missesBefore := s.cache.stats()
			serveTickSearch(b, s)
			if _, missesAfter := s.cache.stats(); missesAfter != missesBefore {
				b.Fatalf("post-append search missed the cache (%d -> %d misses): entry was dropped, not patched", missesBefore, missesAfter)
			}
		})
	}
	b.Run("ReRegister", func(b *testing.B) {
		base, _ := gen.StreamTicks(appendBenchSeries, 8, 0, 0, 5, true)
		opts := executor.DefaultOptions()
		opts.K = 5
		opts.Pruning = true
		plan, err := executor.Compile(regexlang.MustParse("u"), opts)
		if err != nil {
			b.Fatal(err)
		}
		espec := plan.EffectiveSpec(dataset.ExtractSpec{Z: "z", X: "x", Y: "y", Agg: dataset.AggAvg})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix := dataset.BuildIndex(base)
			series, err := ix.Extract(espec)
			if err != nil {
				b.Fatal(err)
			}
			vizs := plan.GroupSeries(series)
			if executor.BuildVizIndex(vizs, 0) == nil {
				b.Fatal("expected a shape index at this corpus size")
			}
		}
	})
}
