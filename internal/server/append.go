package server

import (
	"errors"
	"fmt"
	"net/http"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/server/faultinject"
)

// ErrNoDataset is returned by AppendRows for an unregistered dataset name.
var ErrNoDataset = errors.New("server: no such dataset")

// AppendRows appends delta's rows to a registered dataset and repairs every
// derived structure incrementally — O(delta), never O(corpus):
//
//  1. The columnar dataset index absorbs the rows (dictionaries grow, each
//     memoized sort permutation sorts only the appended tail and merges).
//  2. The dataset's delta version is bumped, which fences in-flight
//     candidate builds: a build admitted before the append can no longer
//     store its (possibly pre-append) result.
//  3. Cached candidate sets are patched in place: only the z groups the
//     delta touches are re-extracted and regrouped; untouched vizs — and
//     their memoized scoring state — are reused as-is. Entries whose plans
//     pin push-down windows (collection-dependent grouping) are dropped
//     instead.
//  4. Patched shape indexes absorb the changed ids leaf-by-leaf; once an
//     index's staleness crosses the rebuild threshold, a background full
//     rebuild restores clustering quality without blocking the append.
//
// After AppendRows returns, searches are byte-identical to those against a
// fresh Register of the concatenated table. Appends are serialized with
// each other but never block searches.
func (s *Server) AppendRows(name string, delta *dataset.Table) (appended, total int, err error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	s.mu.RLock()
	ix, ok := s.indexes[name]
	version := s.versions[name]
	s.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoDataset, name)
	}
	if delta == nil || delta.NumRows() == 0 {
		return 0, ix.NumRows(), nil
	}
	if err := ix.Append(delta); err != nil {
		return 0, ix.NumRows(), err
	}
	s.mu.Lock()
	s.deltaVersions[name]++
	s.mu.Unlock()
	faultinject.Fire("server.append.prepatch")
	s.patchEntries(name, version, ix, delta)
	return delta.NumRows(), ix.NumRows(), nil
}

// patchEntries repairs the cached candidate sets built from this dataset
// registration. It runs under appendMu (patchers never interleave) but off
// the cache lock; each entry is written back optimistically, so a search
// that stored a fresh post-append build concurrently simply wins.
func (s *Server) patchEntries(name string, version uint64, ix *dataset.Index, delta *dataset.Table) {
	prefix := cacheKeyPrefix(name, version)
	for _, snap := range s.cache.snapshotDataset(name, prefix) {
		// Optimistic-concurrency loop: if the write-back loses the entry
		// generation race (a background index install or a concurrent fresh
		// store landed first), re-read and re-apply. The patch recomputes
		// touched groups from the live dataset index, so applying it to an
		// already-fresh payload is idempotent — the loop converges as soon
		// as no other writer interleaves.
		for attempt := snap; ; {
			ok, retry := s.patchOne(attempt, ix, delta)
			if ok || !retry {
				break
			}
			next, live := s.cache.snapshotOne(attempt.key)
			if !live {
				break
			}
			attempt = next
		}
	}
}

// patchOne applies one append delta to one cached entry. The touched z
// groups are re-extracted through the incremental ExtractGroups path
// (bit-identical to the corresponding slices of a full Extract) and
// regrouped one series at a time — sound exactly because the entry's plan
// is PinFree, making GROUP per-series local. The patched viz slice keeps
// the full extraction's z-ascending order, so ranking tie-breaks (score
// then input index) match a fresh build byte for byte.
//
// It reports whether the entry ended up consistent with the appended data
// (patched, removed, or untouched by the delta) and, when not, whether
// re-reading the entry and retrying can help (the generation-guarded
// write-back lost to a concurrent writer).
func (s *Server) patchOne(snap entrySnapshot, ix *dataset.Index, delta *dataset.Table) (ok, retry bool) {
	if !snap.cands.patchable || snap.cands.plan == nil {
		s.cache.remove(snap.key)
		return true, false
	}
	espec, plan := snap.cands.espec, snap.cands.plan
	touched, err := delta.DistinctValues(espec.Z)
	if err != nil {
		s.cache.remove(snap.key)
		return true, false
	}
	series, err := ix.ExtractGroups(espec, touched)
	if err != nil {
		// The appended rows made this spec unextractable (e.g. a duplicate
		// x under AggNone); drop the entry so the next search re-extracts
		// and surfaces the error.
		s.cache.remove(snap.key)
		return true, false
	}
	fresh := make(map[string]*executor.Viz, len(series))
	for _, sr := range series {
		if vs := plan.GroupSeries([]dataset.Series{sr}); len(vs) == 1 {
			fresh[sr.Z] = vs[0]
		} else {
			fresh[sr.Z] = nil
		}
	}

	old := snap.cands.vizs
	pos := snap.cands.zpos
	if pos == nil {
		pos = buildZPos(old)
	}
	lastZ := ""
	for i := len(old) - 1; i >= 0; i-- {
		if old[i] != nil {
			lastZ = old[i].Series.Z
			break
		}
	}
	var (
		changed   []int
		inserts   []*executor.Viz
		needMerge bool
	)
	newVizs := append([]*executor.Viz(nil), old...)
	for _, z := range touched {
		nv := fresh[z]
		p, existed := pos[z]
		switch {
		case existed && nv != nil:
			newVizs[p] = nv
			changed = append(changed, p)
		case existed:
			// The group vanished or became ungroupable. Pure appends cannot
			// do that, but rebuild the slice conservatively if it happens.
			needMerge = true
		case nv != nil:
			// A brand-new group. New z values sorting after every existing
			// one extend the slice in place (shape-index ids are positions,
			// so they must not shift); a mid-slice insertion forces a merge
			// and an index rebuild.
			inserts = append(inserts, nv)
			if z <= lastZ {
				needMerge = true
			}
		}
	}
	if len(changed) == 0 && len(inserts) == 0 && !needMerge {
		return true, false // the delta's rows are invisible to this entry's spec
	}

	cc := snap.cands
	if needMerge {
		touchedSet := make(map[string]bool, len(touched))
		for _, z := range touched {
			touchedSet[z] = true
		}
		freshList := make([]*executor.Viz, 0, len(fresh))
		for _, z := range touched {
			if v := fresh[z]; v != nil {
				freshList = append(freshList, v)
			}
		}
		merged := make([]*executor.Viz, 0, len(old)+len(freshList))
		fi := 0
		for _, v := range old {
			if v == nil || touchedSet[v.Series.Z] {
				continue
			}
			for fi < len(freshList) && freshList[fi].Series.Z < v.Series.Z {
				merged = append(merged, freshList[fi])
				fi++
			}
			merged = append(merged, v)
		}
		merged = append(merged, freshList[fi:]...)
		cc.vizs, cc.index = merged, nil
		cc.zpos = buildZPos(merged)
	} else {
		for _, nv := range inserts {
			// Mutating the shared zpos map is safe: patchers serialize on
			// appendMu and nothing else reads it.
			pos[nv.Series.Z] = len(newVizs)
			changed = append(changed, len(newVizs))
			newVizs = append(newVizs, nv)
		}
		cc.vizs = newVizs
		cc.zpos = pos
		if snap.cands.index != nil {
			cc.index = snap.cands.index.Update(newVizs, changed)
		}
	}
	landed, gen := s.cache.replace(snap.key, snap.gen, cc)
	if !landed {
		// A background index install or a concurrent fresh store moved the
		// generation under us; the caller re-reads and retries.
		return false, true
	}
	if len(cc.vizs) >= indexMinVizs && (cc.index == nil || cc.index.Staleness() >= s.rebuildThreshold) {
		s.scheduleRebuild(snap.key, gen, cc)
	}
	return true, false
}

// scheduleRebuild rebuilds a cached entry's shape index from scratch in the
// background — restoring clustering quality after repeated patches decay it
// — and installs it only if the entry has not been rewritten meanwhile (the
// generation check; a newer write already reflects newer data).
func (s *Server) scheduleRebuild(key string, gen uint64, cc cachedCandidates) {
	s.rebuildWG.Add(1)
	go func() {
		defer s.rebuildWG.Done()
		faultinject.Fire("server.rebuild.start")
		// Rebuilds yield to interactive traffic: above the load watermark
		// (queued searches, or no free admission slot) the rebuild parks
		// until a calm window — bounded by rebuildPauseMax so sustained
		// overload delays the rebuild rather than starving it. A patched
		// index stays sound at any staleness, so waiting costs pruning
		// quality only.
		s.adm.awaitCalm(s.rebuildPauseMax)
		faultinject.Fire("server.rebuild.build")
		vizs := make([]*executor.Viz, 0, len(cc.vizs))
		for _, v := range cc.vizs {
			if v != nil {
				vizs = append(vizs, v)
			}
		}
		nc := cc
		nc.vizs = vizs
		nc.index = executor.BuildVizIndex(vizs, 0)
		nc.zpos = buildZPos(vizs)
		s.cache.replace(key, gen, nc)
	}()
}

// appendResponse is the /api/append reply.
type appendResponse struct {
	Dataset  string `json:"dataset"`
	Appended int    `json:"appended"`
	Rows     int    `json:"rows"`
}

// handleAppend serves POST /api/append?dataset=name: the CSV body (same
// columns as the registered dataset, any order) is appended through
// AppendRows, maintaining the dataset index, cached candidate sets and
// shape indexes incrementally.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST with a CSV body")
		return
	}
	name := r.URL.Query().Get("dataset")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing dataset query parameter")
		return
	}
	s.mu.RLock()
	ix, ok := s.indexes[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no dataset %q", name))
		return
	}
	delta, err := dataset.FromCSVSchema(r.Body, ix.Table())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Appends yield to interactive searches: under load the append waits
	// for a calm window, bounded by appendYieldMax so sustained overload
	// slows ingestion without starving it. Correctness is unaffected — the
	// append is byte-identical whenever it runs.
	s.adm.awaitCalm(s.appendYieldMax)
	appended, total, err := s.AppendRows(name, delta)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNoDataset) {
			code = http.StatusNotFound
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{Dataset: name, Appended: appended, Rows: total})
}
