package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shapesearch/internal/dataset"
	"shapesearch/internal/server/faultinject"
)

// demoSearch is the request every overload test hammers with; identical
// requests make the byte-identical-results comparison meaningful.
func demoSearch() map[string]any {
	return map[string]any{
		"kind": "regex", "query": "u ; d",
		"dataset": "demo", "z": "z", "x": "x", "y": "y", "k": 3,
	}
}

// resultsJSON re-marshals just the Results of a search response. The full
// body carries lifetime plan-cache counters that legitimately differ
// between runs, so identity is asserted on the ranked results alone.
func resultsJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var resp searchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal search response: %v (body %s)", err, body)
	}
	out, err := json.Marshal(resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOverloadBurst pins the shedding contract under a schedule forced by
// the fault-injection harness: with concurrency 4 and queue depth 2, a
// 64-way burst against a gated scorer yields exactly 6 × 200 and 58 × 429
// — every 429 carrying a parseable Retry-After, every 200 byte-identical
// to an unloaded run, no shed request ever reaching the scorer, and the
// gauges back at zero afterwards.
func TestOverloadBurst(t *testing.T) {
	s := testServer(t,
		WithSearchConcurrency(4),
		WithSearchQueueDepth(2),
		WithSearchQueueWait(30*time.Second))
	gate := make(chan struct{})
	var scoreFires atomic.Int64
	restore := faultinject.Set("server.search.score", func() {
		scoreFires.Add(1)
		<-gate
	})
	defer restore()

	const n, slots = 64, 6 // 4 admitted + 2 queued
	type outcome struct {
		code       int
		retryAfter string
		body       []byte
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(demoSearch()); err != nil {
				t.Error(err)
				return
			}
			req := httptest.NewRequest(http.MethodPost, "/api/search", &buf)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			outcomes[i] = outcome{
				code:       rec.Code,
				retryAfter: rec.Header().Get("Retry-After"),
				body:       rec.Body.Bytes(),
			}
		}(i)
	}
	// The queue is full once n−slots requests have been refused; only then
	// is the schedule pinned and the gate may open.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, shed := s.adm.counters(); shed == n-slots {
			break
		}
		if time.Now().After(deadline) {
			_, shed := s.adm.counters()
			t.Fatalf("shed count stuck at %d, want %d", shed, n-slots)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	restore() // the hook is process-global; the baseline below must not fire it

	baseline := doJSON(t, testServer(t), http.MethodPost, "/api/search", demoSearch())
	if baseline.Code != http.StatusOK {
		t.Fatalf("baseline status = %d", baseline.Code)
	}
	want := resultsJSON(t, baseline.Body.Bytes())

	var oks, sheds int
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			oks++
			if got := resultsJSON(t, o.body); !bytes.Equal(got, want) {
				t.Errorf("request %d: loaded results differ from unloaded run:\n got %s\nwant %s", i, got, want)
			}
		case http.StatusTooManyRequests:
			sheds++
			if ra, err := strconv.Atoi(o.retryAfter); err != nil || ra < 1 {
				t.Errorf("request %d: 429 Retry-After = %q, want a positive integer", i, o.retryAfter)
			}
		default:
			t.Errorf("request %d: status = %d, want 200 or 429", i, o.code)
		}
	}
	if oks != slots || sheds != n-slots {
		t.Fatalf("burst outcome = %d OK + %d shed, want %d + %d", oks, sheds, slots, n-slots)
	}
	if fires := scoreFires.Load(); fires != slots {
		t.Fatalf("scorer entered %d times, want %d: shed requests must never consume a scoring worker", fires, slots)
	}
	if adm, shed := s.adm.counters(); adm != slots || shed != n-slots {
		t.Fatalf("lifetime counters = (%d admitted, %d shed), want (%d, %d)", adm, shed, slots, n-slots)
	}
	if adm, q, w := s.adm.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges after burst = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// TestOverloadBurstNaturalTiming runs the same burst without any forced
// schedule: whatever the interleaving, every request resolves to 200 or
// 429, the admitted/shed split accounts for all of them, every success
// carries correct results, and the gauges drain to zero.
func TestOverloadBurstNaturalTiming(t *testing.T) {
	s := testServer(t,
		WithSearchConcurrency(2),
		WithSearchQueueDepth(2),
		WithSearchQueueWait(50*time.Millisecond))
	const n = 64
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(demoSearch()); err != nil {
				t.Error(err)
				return
			}
			req := httptest.NewRequest(http.MethodPost, "/api/search", &buf)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()

	want := resultsJSON(t, doJSON(t, testServer(t), http.MethodPost, "/api/search", demoSearch()).Body.Bytes())
	var oks, sheds uint64
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			oks++
			if got := resultsJSON(t, bodies[i]); !bytes.Equal(got, want) {
				t.Errorf("request %d: results differ under load", i)
			}
		case http.StatusTooManyRequests:
			sheds++
		default:
			t.Errorf("request %d: status = %d, want 200 or 429", i, code)
		}
	}
	if oks+sheds != n {
		t.Fatalf("outcomes = %d OK + %d shed, want %d total", oks, sheds, n)
	}
	adm, shed := s.adm.counters()
	if adm != oks || shed != sheds {
		t.Fatalf("counters = (%d,%d), responses say (%d,%d)", adm, shed, oks, sheds)
	}
	if a, q, w := s.adm.snapshot(); a != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges after burst = (%d,%d,%d), want zeros", a, q, w)
	}
}

// TestQueuedDeadlineAnsweredFromQueue: a request whose deadline expires
// while it waits for a slot gets its 503 + Retry-After straight from the
// queue — the scorer never sees it.
func TestQueuedDeadlineAnsweredFromQueue(t *testing.T) {
	s := testServer(t,
		WithSearchConcurrency(1),
		WithSearchQueueDepth(4),
		WithSearchQueueWait(30*time.Second))
	gate := make(chan struct{})
	var scoreFires atomic.Int64
	restore := faultinject.Set("server.search.score", func() {
		scoreFires.Add(1)
		<-gate
	})
	defer restore()

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(demoSearch()); err != nil {
			t.Error(err)
			return
		}
		req := httptest.NewRequest(http.MethodPost, "/api/search", &buf)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		first <- rec
	}()
	waitSnapshot(t, s.adm, func(adm, _, _ int) bool { return adm == 1 && scoreFires.Load() == 1 })

	s.SetSearchTimeout(30 * time.Millisecond)
	rec := doJSON(t, s, http.MethodPost, "/api/search", demoSearch())
	s.SetSearchTimeout(0)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued-expiry status = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("503 Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if fires := scoreFires.Load(); fires != 1 {
		t.Fatalf("scorer entered %d times: the expired waiter must be answered from the queue", fires)
	}
	close(gate)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("slot holder status = %d, want 200", rec.Code)
	}
	if adm, q, w := s.adm.snapshot(); adm != 0 || q != 0 || w != 0 {
		t.Fatalf("gauges = (%d,%d,%d), want zeros", adm, q, w)
	}
}

// appendCSV posts CSV rows to /api/append and returns the recorder.
func appendCSV(t *testing.T, s *Server, name, csv string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/append?dataset="+name, strings.NewReader(csv))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestSearchDuringAppendPatch wedges an append mid-patch (after the index
// absorbed the rows, before the cached candidates were repaired) and
// proves a concurrent search still completes — appends never block
// searches — and that searches after the append reflect the new rows.
func TestSearchDuringAppendPatch(t *testing.T) {
	s := testServer(t)
	searchDemo(t, s, "u ; d", "demo") // warm the candidate cache

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faultinject.Set("server.append.prepatch", func() {
		close(entered)
		<-gate
	})
	defer restore()

	var spike strings.Builder
	spike.WriteString("z,x,y\n")
	for i, y := range []int{0, 4, 8, 12, 16, 12, 8, 4, 0} {
		fmt.Fprintf(&spike, "spike,%d,%d\n", i, y)
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- appendCSV(t, s, "demo", spike.String()) }()
	<-entered

	// Mid-patch: the search must complete (serving pre- or post-append
	// candidates, both consistent states), never block on the appender.
	if resp := searchDemo(t, s, "u ; d", "demo"); len(resp.Results) == 0 {
		t.Fatal("search during append returned no results")
	}
	close(gate)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := searchDemo(t, s, "u ; d", "demo")
	found := false
	for _, r := range resp.Results {
		found = found || r.Z == "spike"
	}
	if !found {
		t.Fatalf("post-append results = %+v, want the appended spike series visible", resp.Results)
	}
}

// registerMany registers a dataset with enough series to cross
// indexMinVizs, so its cached candidate set carries a shape index and
// appends schedule background rebuilds.
func registerMany(t *testing.T, s *Server, name string, series int) {
	t.Helper()
	var zs []string
	var xs, ys []float64
	for i := 0; i < series; i++ {
		z := fmt.Sprintf("s%04d", i)
		for j := 0; j < 9; j++ {
			y := j
			if j > 4 {
				y = 8 - j
			}
			zs = append(zs, z)
			xs = append(xs, float64(j))
			ys = append(ys, float64(y*(1+i%5)))
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Register(name, tbl)
}

// TestRebuildPausesUnderLoad: a background shape-index rebuild scheduled
// by an append parks while the server is saturated and proceeds once load
// drains — graceful degradation of background work, pinned through the
// rebuild hook points.
func TestRebuildPausesUnderLoad(t *testing.T) {
	s := testServer(t, WithSearchConcurrency(1), WithIndexRebuildThreshold(1))
	s.appendYieldMax = time.Millisecond // keep the append's own yield out of the way
	registerMany(t, s, "many", indexMinVizs+8)
	searchDemo(t, s, "u ; d", "many") // build the cached entry + shape index

	started := make(chan struct{})
	built := make(chan struct{})
	restore1 := faultinject.Set("server.rebuild.start", func() { close(started) })
	defer restore1()
	restore2 := faultinject.Set("server.rebuild.build", func() { close(built) })
	defer restore2()

	hold, err := s.adm.admit(t.Context(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	release := func() { hold.release() }
	defer release()

	if rec := appendCSV(t, s, "many", "z,x,y\ns0000,9,7\n"); rec.Code != http.StatusOK {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body.String())
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not schedule a rebuild")
	}
	select {
	case <-built:
		t.Fatal("rebuild ran while the server was saturated")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case <-built:
	case <-time.After(5 * time.Second):
		t.Fatal("rebuild did not resume after load drained")
	}
	s.rebuildWG.Wait()
	if resp := searchDemo(t, s, "u ; d", "many"); len(resp.Results) == 0 {
		t.Fatal("search after rebuild returned no results")
	}
}
