package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shapesearch/internal/dataset"
)

// searchBody is the minimal /api/search request the cancellation tests use.
func searchBody(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	err := json.NewEncoder(&buf).Encode(map[string]any{
		"kind": "regex", "query": "u ; d",
		"dataset": "demo", "z": "z", "x": "x", "y": "y",
	})
	if err != nil {
		t.Fatal(err)
	}
	return &buf
}

// registerBig adds a dataset whose exact-DP search takes far longer than
// any timer granularity, so a short per-request deadline deterministically
// expires mid-scoring (the cooperative per-candidate check observes it).
func registerBig(t *testing.T, s *Server) {
	t.Helper()
	const series, points = 48, 240
	rng := rand.New(rand.NewSource(11))
	var zs []string
	var xs, ys []float64
	for i := 0; i < series; i++ {
		z := string(rune('a'+i%26)) + string(rune('a'+i/26))
		y := 0.0
		for j := 0; j < points; j++ {
			y += rng.NormFloat64()
			zs = append(zs, z)
			xs = append(xs, float64(j))
			ys = append(ys, y)
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Register("big", tbl)
}

// TestSearchTimeoutReturns503: a configured per-request deadline that
// expires mid-search returns 503 promptly, not a partial or hung response.
func TestSearchTimeoutReturns503(t *testing.T) {
	s := testServer(t)
	registerBig(t, s)
	s.SetSearchTimeout(2 * time.Millisecond)
	body := func() *bytes.Buffer {
		var buf bytes.Buffer
		err := json.NewEncoder(&buf).Encode(map[string]any{
			"kind": "regex", "query": "u ; d ; u ; d",
			"dataset": "big", "z": "z", "x": "x", "y": "y",
			"algorithm": "dp",
		})
		if err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	req := httptest.NewRequest(http.MethodPost, "/api/search", body())
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired search status = %d, want %d (body %s)",
			rec.Code, http.StatusServiceUnavailable, rec.Body.String())
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("503 Retry-After = %q, want a positive integer (err %v)",
			rec.Header().Get("Retry-After"), err)
	}

	// Clearing the timeout restores normal service (on the small dataset,
	// to keep the test fast).
	s.SetSearchTimeout(0)
	req = httptest.NewRequest(http.MethodPost, "/api/search", searchBody(t))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("unbounded search status = %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
}

// TestCacheWaiterHonorsContext: a request coalesced onto another request's
// in-flight extraction stops waiting when its own context expires — the
// leader's build continues and still populates the cache.
func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newCandidateCache(4)
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.fetch(context.Background(), "d", "k", 0, nil, func() (cachedCandidates, error) {
			close(started)
			<-release
			return cachedCandidates{}, nil
		})
		leaderDone <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.fetch(ctx, "d", "k", 0, nil, func() (cachedCandidates, error) {
		t.Error("waiter must join the flight, not rebuild")
		return cachedCandidates{}, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	// The abandoned waiter must not have disturbed the stored entry.
	if _, hit, err := c.fetch(context.Background(), "d", "k", 0, nil, func() (cachedCandidates, error) {
		t.Error("entry should be cached")
		return cachedCandidates{}, nil
	}); err != nil || !hit {
		t.Fatalf("post-flight fetch hit=%v err=%v, want cached hit", hit, err)
	}
}

// TestSearchClientDisconnectDropped: an abandoned request (canceled request
// context, as net/http delivers on client disconnect) cancels the scoring
// pipeline and is logged and dropped without a status — there is nobody
// left to read one, and a synthesized 503 would count an abandoned request
// as a server failure. Server-side deadlines (above) stay 503.
func TestSearchClientDisconnectDropped(t *testing.T) {
	s := testServer(t)
	var mu sync.Mutex
	var logged []string
	s.logf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/search", searchBody(t)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	// httptest.NewRecorder starts at 200 and only changes if a status is
	// written; a dropped request writes neither a status nor a body.
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("disconnected search wrote status %d body %q, want nothing written",
			rec.Code, rec.Body.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "client disconnected") {
		t.Fatalf("dropped request log = %q, want one 'client disconnected' line", logged)
	}
	if adm, queued, workers := s.adm.snapshot(); adm != 0 || queued != 0 || workers != 0 {
		t.Fatalf("gauges after drop = (%d,%d,%d), want zeros", adm, queued, workers)
	}
}
