package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
)

// defaultCacheCapacity bounds the number of cached candidate sets. Each
// entry holds the grouped Viz slices for one (dataset version, effective
// extract spec, group config) combination; a handful of visual-parameter
// combinations per dataset is typical, so a small bound suffices.
const defaultCacheCapacity = 64

// cacheKey scopes a plan's candidate key by dataset identity and version;
// bumping the version on upload makes every stale entry unreachable.
func cacheKey(dataset string, version uint64, planKey string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dataset, version, planKey)
}

// cacheKeyPrefix is the shared prefix of every cacheKey for one dataset
// registration; the append patcher uses it to skip entries from an older
// registration that a concurrent Register has already made unreachable.
func cacheKeyPrefix(dataset string, version uint64) string {
	return fmt.Sprintf("%s\x00%d\x00", dataset, version)
}

// cachedCandidates is one candidate-cache entry's payload: the grouped
// candidate visualizations plus — for corpus-scale entries — the prebuilt
// shape index over their bound summaries, so repeated queries pay the index
// build once alongside EXTRACT + GROUP, not per search. index is nil for
// small corpora (below indexMinVizs) and when the engine cannot use it.
//
// espec, plan and patchable are the append path's repair metadata: the
// effective extract spec the vizs were built from, one plan whose GROUP
// configuration produced them (any plan sharing the candidate key works),
// and whether that configuration is per-series local (Plan.PinFree) so a
// touched group can be regrouped alone and spliced in place. Searches
// ignore them.
type cachedCandidates struct {
	vizs      []*executor.Viz
	index     *executor.VizIndex
	espec     dataset.ExtractSpec
	plan      *executor.Plan
	patchable bool
	// zpos maps each viz's z value to its position in vizs, so a patch
	// locates a delta's touched groups in O(|delta|) instead of scanning
	// the corpus. Only append patchers (serialized on Server.appendMu)
	// touch it after construction; searches never read it.
	zpos map[string]int
}

// buildZPos indexes a viz slice by z value.
func buildZPos(vizs []*executor.Viz) map[string]int {
	zpos := make(map[string]int, len(vizs))
	for i, v := range vizs {
		if v != nil {
			zpos[v.Series.Z] = i
		}
	}
	return zpos
}

// candidateCache memoizes the EXTRACT + GROUP stages of the pipeline: the
// grouped candidate visualizations for one dataset version and one set of
// visual parameters. Entries are immutable once stored (executor.Viz is
// read-only during scoring), so concurrent readers share them safely.
// Eviction is LRU — hits move an entry to the front of the recency list,
// and a store past capacity evicts from the back — so hot specs survive
// bursts of one-off queries.
type candidateCache struct {
	mu       sync.Mutex
	enabled  bool
	capacity int
	entries  map[string]*list.Element // value: *cacheEntry
	// order is the recency list: front = most recently used.
	order *list.List
	// flights coalesces concurrent misses on one key: a single leader
	// builds the candidate set while the rest wait and share the result.
	flights map[string]*flight
	// hits and misses instrument the cache for tests and expvar-style
	// debugging. Joining an in-progress flight counts as a hit (the work
	// is shared, not repeated).
	hits, misses uint64
}

type cacheEntry struct {
	key     string
	dataset string
	cands   cachedCandidates
	// gen counts in-place rewrites of this entry (append patches, index
	// installs). Asynchronous writers snapshot it and give up when it moved
	// — optimistic concurrency instead of holding mu across regrouping.
	gen uint64
}

type flight struct {
	done  chan struct{}
	cands cachedCandidates
	err   error
}

func newCandidateCache(capacity int) *candidateCache {
	return &candidateCache{
		enabled:  true,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		flights:  make(map[string]*flight),
	}
}

func (c *candidateCache) disable() {
	c.mu.Lock()
	c.enabled = false
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
	c.mu.Unlock()
}

// fetch returns the candidates for key, building them on a miss.
// Concurrent misses on the same key coalesce (singleflight): one leader
// runs build while the rest wait on its result, so a cold cache under a
// burst of identical queries extracts and groups once, not N times.
// hit reports whether this call reused existing or in-flight work (false
// only for the leader of a fresh build). A waiter whose ctx expires stops
// waiting and returns ctx.Err(); the leader's build is never canceled —
// its result still lands in the cache for live requests.
//
// dv is the dataset's delta version as the caller observed it. It scopes
// the singleflight — requests admitted across an append must not share a
// build, since the earlier leader's extraction may predate the appended
// rows — while the cache key stays dv-free so stored entries survive
// appends and are patched in place.
//
// validate is consulted under mu at store time and the result is kept only
// if it returns true. The caller passes a closure re-checking both the
// dataset version and the delta version, which closes the
// register/append-vs-store race with no window at all: stores, append
// patches and invalidation all serialize on mu, so a build that raced a
// data change is discarded atomically rather than reaped after the fact.
func (c *candidateCache) fetch(ctx context.Context, dataset, key string, dv uint64, validate func() bool, build func() (cachedCandidates, error)) (cands cachedCandidates, hit bool, err error) {
	fkey := fmt.Sprintf("%s\x00dv=%d", key, dv)
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		cands, err = build()
		return cands, false, err
	}
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		cands := el.Value.(*cacheEntry).cands
		c.mu.Unlock()
		return cands, true, nil
	}
	if f, ok := c.flights[fkey]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.cands, true, f.err
		case <-ctx.Done():
			return cachedCandidates{}, true, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{}), err: errBuildAbandoned}
	c.flights[fkey] = f
	// The bookkeeping runs in a defer so a panicking build (which net/http
	// recovers per request) still unregisters the flight and releases its
	// waiters — with errBuildAbandoned, since f.err was never overwritten —
	// instead of wedging the key forever.
	defer func() {
		c.mu.Lock()
		delete(c.flights, fkey)
		if f.err == nil && c.enabled && (validate == nil || validate()) {
			if el, ok := c.entries[key]; ok {
				// A concurrent store beat us (e.g. cache re-enabled
				// mid-flight); refresh in place.
				e := el.Value.(*cacheEntry)
				e.cands = f.cands
				e.gen++
				c.order.MoveToFront(el)
			} else {
				c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dataset: dataset, cands: f.cands})
				for len(c.entries) > c.capacity {
					c.evictOldestLocked()
				}
			}
		}
		c.mu.Unlock()
		close(f.done)
	}()
	c.mu.Unlock()

	cands, err = build()
	f.cands, f.err = cands, err
	return cands, false, err
}

// errBuildAbandoned is what flight waiters observe when the leader's build
// panicked instead of returning.
var errBuildAbandoned = errors.New("server: candidate build did not complete")

// evictOldestLocked removes the least recently used entry. Caller holds mu.
func (c *candidateCache) evictOldestLocked() {
	back := c.order.Back()
	if back == nil {
		return
	}
	c.order.Remove(back)
	delete(c.entries, back.Value.(*cacheEntry).key)
}

// remove drops one entry (used to reap a store that raced an upload).
func (c *candidateCache) remove(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// invalidateDataset drops every entry built from the named dataset. The
// version bump in the key already makes stale entries unreachable; dropping
// them too returns the memory immediately.
func (c *candidateCache) invalidateDataset(dataset string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*cacheEntry); e.dataset == dataset {
			c.order.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

// stats reports (hits, misses) so tests can assert cache behavior.
func (c *candidateCache) stats() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// entrySnapshot is one cached entry as an append patcher observed it: the
// payload plus the generation to hand back to replace.
type entrySnapshot struct {
	key   string
	gen   uint64
	cands cachedCandidates
}

// snapshotDataset captures the entries built from one dataset whose keys
// carry the given prefix (dataset name + version — entries from an older
// registration must not be patched with the new index's data). The append
// patcher works off the snapshot outside mu and writes back through
// replace, so regrouping cost is never paid under the cache lock.
func (c *candidateCache) snapshotDataset(dataset, keyPrefix string) []entrySnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []entrySnapshot
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.dataset == dataset && strings.HasPrefix(e.key, keyPrefix) {
			out = append(out, entrySnapshot{key: e.key, gen: e.gen, cands: e.cands})
		}
	}
	return out
}

// snapshotOne re-reads a single entry by key, for a patcher whose
// generation-guarded write-back lost a race and needs fresh state to retry.
func (c *candidateCache) snapshotOne(key string) (entrySnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return entrySnapshot{}, false
	}
	e := el.Value.(*cacheEntry)
	return entrySnapshot{key: e.key, gen: e.gen, cands: e.cands}, true
}

// replace installs a rewritten payload for key iff the entry still exists
// and its generation is still gen (optimistic concurrency: a concurrent
// fresh store already reflects the post-append data, so losing the race
// means there is nothing left to patch). It reports whether the write
// landed and, if so, the entry's new generation.
func (c *candidateCache) replace(key string, gen uint64, cands cachedCandidates) (bool, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false, 0
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		return false, 0
	}
	e.cands = cands
	e.gen++
	return true, e.gen
}
