package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"shapesearch/internal/executor"
)

// defaultCacheCapacity bounds the number of cached candidate sets. Each
// entry holds the grouped Viz slices for one (dataset version, effective
// extract spec, group config) combination; a handful of visual-parameter
// combinations per dataset is typical, so a small bound suffices.
const defaultCacheCapacity = 64

// cacheKey scopes a plan's candidate key by dataset identity and version;
// bumping the version on upload makes every stale entry unreachable.
func cacheKey(dataset string, version uint64, planKey string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dataset, version, planKey)
}

// cachedCandidates is one candidate-cache entry's payload: the grouped
// candidate visualizations plus — for corpus-scale entries — the prebuilt
// shape index over their bound summaries, so repeated queries pay the index
// build once alongside EXTRACT + GROUP, not per search. index is nil for
// small corpora (below indexMinVizs) and when the engine cannot use it.
type cachedCandidates struct {
	vizs  []*executor.Viz
	index *executor.VizIndex
}

// candidateCache memoizes the EXTRACT + GROUP stages of the pipeline: the
// grouped candidate visualizations for one dataset version and one set of
// visual parameters. Entries are immutable once stored (executor.Viz is
// read-only during scoring), so concurrent readers share them safely.
// Eviction is LRU — hits move an entry to the front of the recency list,
// and a store past capacity evicts from the back — so hot specs survive
// bursts of one-off queries.
type candidateCache struct {
	mu       sync.Mutex
	enabled  bool
	capacity int
	entries  map[string]*list.Element // value: *cacheEntry
	// order is the recency list: front = most recently used.
	order *list.List
	// flights coalesces concurrent misses on one key: a single leader
	// builds the candidate set while the rest wait and share the result.
	flights map[string]*flight
	// hits and misses instrument the cache for tests and expvar-style
	// debugging. Joining an in-progress flight counts as a hit (the work
	// is shared, not repeated).
	hits, misses uint64
}

type cacheEntry struct {
	key     string
	dataset string
	cands   cachedCandidates
}

type flight struct {
	done  chan struct{}
	cands cachedCandidates
	err   error
}

func newCandidateCache(capacity int) *candidateCache {
	return &candidateCache{
		enabled:  true,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		flights:  make(map[string]*flight),
	}
}

func (c *candidateCache) disable() {
	c.mu.Lock()
	c.enabled = false
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
	c.mu.Unlock()
}

// fetch returns the candidates for key, building them on a miss.
// Concurrent misses on the same key coalesce (singleflight): one leader
// runs build while the rest wait on its result, so a cold cache under a
// burst of identical queries extracts and groups once, not N times.
// hit reports whether this call reused existing or in-flight work (false
// only for the leader of a fresh build). A waiter whose ctx expires stops
// waiting and returns ctx.Err(); the leader's build is never canceled —
// its result still lands in the cache for live requests.
func (c *candidateCache) fetch(ctx context.Context, dataset, key string, build func() (cachedCandidates, error)) (cands cachedCandidates, hit bool, err error) {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		cands, err = build()
		return cands, false, err
	}
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		cands := el.Value.(*cacheEntry).cands
		c.mu.Unlock()
		return cands, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.cands, true, f.err
		case <-ctx.Done():
			return cachedCandidates{}, true, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{}), err: errBuildAbandoned}
	c.flights[key] = f
	// The bookkeeping runs in a defer so a panicking build (which net/http
	// recovers per request) still unregisters the flight and releases its
	// waiters — with errBuildAbandoned, since f.err was never overwritten —
	// instead of wedging the key forever.
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil && c.enabled {
			if el, ok := c.entries[key]; ok {
				// A concurrent store beat us (e.g. cache re-enabled
				// mid-flight); refresh in place.
				el.Value.(*cacheEntry).cands = f.cands
				c.order.MoveToFront(el)
			} else {
				c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dataset: dataset, cands: f.cands})
				for len(c.entries) > c.capacity {
					c.evictOldestLocked()
				}
			}
		}
		c.mu.Unlock()
		close(f.done)
	}()
	c.mu.Unlock()

	cands, err = build()
	f.cands, f.err = cands, err
	return cands, false, err
}

// errBuildAbandoned is what flight waiters observe when the leader's build
// panicked instead of returning.
var errBuildAbandoned = errors.New("server: candidate build did not complete")

// evictOldestLocked removes the least recently used entry. Caller holds mu.
func (c *candidateCache) evictOldestLocked() {
	back := c.order.Back()
	if back == nil {
		return
	}
	c.order.Remove(back)
	delete(c.entries, back.Value.(*cacheEntry).key)
}

// remove drops one entry (used to reap a store that raced an upload).
func (c *candidateCache) remove(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// invalidateDataset drops every entry built from the named dataset. The
// version bump in the key already makes stale entries unreachable; dropping
// them too returns the memory immediately.
func (c *candidateCache) invalidateDataset(dataset string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*cacheEntry); e.dataset == dataset {
			c.order.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

// stats reports (hits, misses) so tests can assert cache behavior.
func (c *candidateCache) stats() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
