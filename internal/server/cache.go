package server

import (
	"errors"
	"fmt"
	"sync"

	"shapesearch/internal/executor"
)

// defaultCacheCapacity bounds the number of cached candidate sets. Each
// entry holds the grouped Viz slices for one (dataset version, effective
// extract spec, group config) combination; a handful of visual-parameter
// combinations per dataset is typical, so a small bound suffices.
const defaultCacheCapacity = 64

// cacheKey scopes a plan's candidate key by dataset identity and version;
// bumping the version on upload makes every stale entry unreachable.
func cacheKey(dataset string, version uint64, planKey string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dataset, version, planKey)
}

// candidateCache memoizes the EXTRACT + GROUP stages of the pipeline: the
// grouped candidate visualizations for one dataset version and one set of
// visual parameters. Entries are immutable once stored (executor.Viz is
// read-only during scoring), so concurrent readers share them safely.
type candidateCache struct {
	mu       sync.Mutex
	enabled  bool
	capacity int
	entries  map[string]cacheEntry
	// flights coalesces concurrent misses on one key: a single leader
	// builds the candidate set while the rest wait and share the result.
	flights map[string]*flight
	// hits and misses instrument the cache for tests and expvar-style
	// debugging. Joining an in-progress flight counts as a hit (the work
	// is shared, not repeated).
	hits, misses uint64
}

type cacheEntry struct {
	dataset string
	vizs    []*executor.Viz
}

type flight struct {
	done chan struct{}
	vizs []*executor.Viz
	err  error
}

func newCandidateCache(capacity int) *candidateCache {
	return &candidateCache{
		enabled:  true,
		capacity: capacity,
		entries:  make(map[string]cacheEntry),
		flights:  make(map[string]*flight),
	}
}

func (c *candidateCache) disable() {
	c.mu.Lock()
	c.enabled = false
	c.entries = make(map[string]cacheEntry)
	c.mu.Unlock()
}

// fetch returns the candidates for key, building them on a miss.
// Concurrent misses on the same key coalesce (singleflight): one leader
// runs build while the rest wait on its result, so a cold cache under a
// burst of identical queries extracts and groups once, not N times.
// hit reports whether this call reused existing or in-flight work (false
// only for the leader of a fresh build).
func (c *candidateCache) fetch(dataset, key string, build func() ([]*executor.Viz, error)) (vizs []*executor.Viz, hit bool, err error) {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		vizs, err = build()
		return vizs, false, err
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e.vizs, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.vizs, true, f.err
	}
	c.misses++
	f := &flight{done: make(chan struct{}), err: errBuildAbandoned}
	c.flights[key] = f
	// The bookkeeping runs in a defer so a panicking build (which net/http
	// recovers per request) still unregisters the flight and releases its
	// waiters — with errBuildAbandoned, since f.err was never overwritten —
	// instead of wedging the key forever.
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil && c.enabled {
			if _, ok := c.entries[key]; !ok && len(c.entries) >= c.capacity {
				// Evict an arbitrary entry; the cache is a small working
				// set and precise LRU bookkeeping is not worth the extra
				// state.
				for k := range c.entries {
					delete(c.entries, k)
					break
				}
			}
			c.entries[key] = cacheEntry{dataset: dataset, vizs: f.vizs}
		}
		c.mu.Unlock()
		close(f.done)
	}()
	c.mu.Unlock()

	vizs, err = build()
	f.vizs, f.err = vizs, err
	return vizs, false, err
}

// errBuildAbandoned is what flight waiters observe when the leader's build
// panicked instead of returning.
var errBuildAbandoned = errors.New("server: candidate build did not complete")

// remove drops one entry (used to reap a store that raced an upload).
func (c *candidateCache) remove(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// invalidateDataset drops every entry built from the named dataset. The
// version bump in the key already makes stale entries unreachable; dropping
// them too returns the memory immediately.
func (c *candidateCache) invalidateDataset(dataset string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.dataset == dataset {
			delete(c.entries, k)
		}
	}
}

// stats reports (hits, misses) so tests can assert cache behavior.
func (c *candidateCache) stats() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
