// Package server implements ShapeSearch's REST back-end (Section 2: "All
// queries are issued to the back-end using a REST protocol"): dataset
// upload and listing, query parsing with correction-panel feedback, and
// shape search.
//
// Endpoints:
//
//	GET  /api/health                     liveness probe
//	GET  /api/datasets                   list registered datasets
//	POST /api/datasets/{name}            upload a CSV body as a dataset
//	POST /api/parse                      parse a query (regex, nl, sketch)
//	POST /api/search                     parse + execute, returning top-k
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shapesearch/internal/dataset"
	"shapesearch/internal/executor"
	"shapesearch/internal/nlparser"
	"shapesearch/internal/regexlang"
	"shapesearch/internal/server/faultinject"
	"shapesearch/internal/shape"
	"shapesearch/internal/sketch"
)

// Server hosts datasets and serves shape queries. Safe for concurrent use.
type Server struct {
	mu sync.RWMutex
	// indexes holds one columnar dataset.Index per registered dataset;
	// Register builds it once at upload so every search extracts through
	// dictionary-encoded grouping and vectorized filters.
	indexes  map[string]*dataset.Index
	versions map[string]uint64
	// deltaVersions counts appends per dataset. Unlike versions it is NOT
	// part of the candidate-cache key: cached entries survive appends and
	// are patched in place, and the delta version scopes the fetch
	// singleflight and the validate-at-store check instead.
	deltaVersions map[string]uint64
	// appendMu serializes AppendRows end to end (index append, delta-version
	// bump, cache patching) so patchers never interleave. Searches are not
	// blocked by it.
	appendMu sync.Mutex
	// rebuildThreshold is the shape-index staleness (ids touched since the
	// last full build) past which an append schedules a background rebuild
	// of a cached entry's index.
	rebuildThreshold int
	// rebuildWG tracks in-flight background index rebuilds; tests wait on
	// it to make rebuild completion deterministic.
	rebuildWG sync.WaitGroup
	nl        *nlparser.Parser
	mux       *http.ServeMux
	cache     *candidateCache
	// plans caches compiled executor plans across requests, keyed by the
	// normalized query fingerprint plus score-relevant options. Plans are
	// dataset-independent and immutable, so the cache is never invalidated.
	plans *planCache
	// adm is the bounded search queue in front of scoring (admission.go):
	// it caps concurrent searches, queues arrivals FIFO per tenant with a
	// queue-time budget, sheds the rest with 429 + Retry-After, and hands
	// every admitted request its scoring-worker budget from a fixed pool.
	adm *admission
	// searchTimeout bounds one search's end-to-end time in nanoseconds
	// (0 = unbounded), queueing included: the deadline starts before
	// admission, so a request that would expire before a slot frees is
	// answered from the queue without consuming a scoring worker.
	searchTimeout atomic.Int64
	// appendYieldMax bounds how long an HTTP append yields to interactive
	// searches before proceeding anyway (graceful degradation: ingestion
	// slows under overload, but is never starved).
	appendYieldMax time.Duration
	// rebuildPauseMax likewise bounds how long a background shape-index
	// rebuild waits for a calm window. Patched indexes stay sound at any
	// staleness, so pausing the rebuild costs pruning quality only.
	rebuildPauseMax time.Duration
	// logf sinks serving-path log lines (dropped requests, yields);
	// overridable so tests can capture or silence it.
	logf func(format string, args ...any)
}

// indexMinVizs is the corpus size at which a candidate-cache entry also
// carries a prebuilt shape index: repeated queries then traverse the corpus
// best-first instead of bounding every candidate. Below it the index build
// costs more than the first few searches save.
const indexMinVizs = 256

// Option configures a Server at construction.
type Option func(*Server)

// WithCandidateCacheCapacity bounds the number of cached candidate sets
// (default 64). n <= 0 keeps the default.
func WithCandidateCacheCapacity(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.cache = newCandidateCache(n)
		}
	}
}

// WithPlanCacheCapacity bounds the number of cached compiled plans
// (default 128). n <= 0 keeps the default.
func WithPlanCacheCapacity(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.plans = newPlanCache(n)
		}
	}
}

// defaultRebuildThreshold is the shape-index staleness at which an append
// schedules a background full rebuild of a cached entry's index. Patched
// indexes stay sound at any staleness — the threshold only bounds
// clustering decay (and hence pruning quality), so it can sit well above
// the typical delta size.
const defaultRebuildThreshold = 1024

// WithIndexRebuildThreshold sets the shape-index staleness past which an
// append triggers a background full rebuild of a cached candidate set's
// index (default 1024 touched ids). n <= 0 keeps the default.
func WithIndexRebuildThreshold(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.rebuildThreshold = n
		}
	}
}

// WithSearchConcurrency caps the number of concurrently admitted searches
// (default: the core count). Arrivals beyond it queue, then shed.
// n <= 0 keeps the default.
func WithSearchConcurrency(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.adm.concurrency = n
		}
	}
}

// WithSearchQueueDepth bounds the admission queue across all tenants
// (default 64); arrivals past a full queue are shed immediately with
// 429 + Retry-After. n <= 0 keeps the default.
func WithSearchQueueDepth(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.adm.queueDepth = n
		}
	}
}

// WithSearchQueueWait sets the queue-time budget: a request still queued
// after d is shed with 429 + Retry-After rather than admitted late
// (default 2s). d <= 0 keeps the default.
func WithSearchQueueWait(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.adm.queueWait = d
		}
	}
}

// WithTenantConcurrency caps one tenant's concurrently admitted searches
// (default: no per-tenant cap beyond the global concurrency). With a cap
// set, a hot tenant's burst queues behind its own cap while other
// tenants' requests keep flowing — freed slots are granted round-robin
// across tenants. n <= 0 keeps the default.
func WithTenantConcurrency(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.adm.tenantCap = n
		}
	}
}

// New returns a server with no datasets registered.
func New(opts ...Option) *Server {
	s := &Server{
		indexes:          make(map[string]*dataset.Index),
		versions:         make(map[string]uint64),
		deltaVersions:    make(map[string]uint64),
		rebuildThreshold: defaultRebuildThreshold,
		nl:               nlparser.NewParser(),
		cache:            newCandidateCache(defaultCacheCapacity),
		plans:            newPlanCache(defaultPlanCacheCapacity),
		adm:              newAdmission(runtime.GOMAXPROCS(0)),
		appendYieldMax:   defaultAppendYieldMax,
		rebuildPauseMax:  defaultRebuildPauseMax,
		logf:             log.Printf,
	}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", s.handleHealth)
	mux.HandleFunc("/api/datasets", s.handleDatasets)
	mux.HandleFunc("/api/datasets/", s.handleDatasetUpload)
	mux.HandleFunc("/api/parse", s.handleParse)
	mux.HandleFunc("/api/search", s.handleSearch)
	mux.HandleFunc("/api/append", s.handleAppend)
	s.mux = mux
	return s
}

// Register adds (or replaces) a named dataset. The columnar index is built
// here, once per upload — before the version bump publishes the dataset —
// so no search ever pays the dictionary-encoding cost. Replacing a dataset
// bumps its version, invalidating every cached candidate set built from
// the old data.
//
// The server takes ownership of t: AppendRows grows its columns in place,
// so callers must not retain or mutate the table after registering it.
func (s *Server) Register(name string, t *dataset.Table) {
	ix := dataset.BuildIndex(t)
	s.mu.Lock()
	s.indexes[name] = ix
	s.versions[name]++
	s.mu.Unlock()
	s.cache.invalidateDataset(name)
}

// DisableCache turns the candidate cache off (used by benchmarks to
// measure the uncached serving path).
func (s *Server) DisableCache() { s.cache.disable() }

// SetSearchTimeout bounds the end-to-end time of each /api/search request
// (queue wait plus scoring); d <= 0 removes the bound. A request whose
// deadline expires gets 503 + Retry-After and its workers return to the
// pool within one candidate's scoring time; a disconnected client is
// logged and dropped without a response.
func (s *Server) SetSearchTimeout(d time.Duration) { s.searchTimeout.Store(int64(d)) }

// defaultAppendYieldMax and defaultRebuildPauseMax bound how long
// background work (HTTP appends, shape-index rebuilds) yields to
// interactive searches under load before proceeding anyway. Both are
// graceful-degradation knobs, not correctness: appends and patched
// indexes are sound regardless of when they run.
const (
	defaultAppendYieldMax  = 500 * time.Millisecond
	defaultRebuildPauseMax = 30 * time.Second
)

// tenantID extracts the quota dimension for admission control: the
// X-Tenant header, falling back to the API key (Authorization header),
// then the anonymous tenant "".
func tenantID(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.Header.Get("Authorization")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// datasetInfo describes a registered dataset.
type datasetInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Columns []string `json:"columns"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.RLock()
	infos := make([]datasetInfo, 0, len(s.indexes))
	for name, ix := range s.indexes {
		// ix.NumRows, not ix.Table().NumRows: the row count moves under the
		// index's data lock when appends are in flight.
		infos = append(infos, datasetInfo{Name: name, Rows: ix.NumRows(), Columns: ix.Table().ColumnNames()})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST with a CSV body")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/api/datasets/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusBadRequest, "dataset name must be a single path segment")
		return
	}
	t, err := dataset.FromCSV(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.Register(name, t)
	writeJSON(w, http.StatusCreated, datasetInfo{Name: name, Rows: t.NumRows(), Columns: t.ColumnNames()})
}

// parseRequest is the body of /api/parse and the query part of /api/search.
type parseRequest struct {
	// Kind is "regex", "nl" or "sketch".
	Kind  string `json:"kind"`
	Query string `json:"query,omitempty"`
	// Sketch points (domain coordinates) for kind "sketch".
	Sketch []shape.Point `json:"sketch,omitempty"`
	// Exact selects precise L2 matching for sketches; the default infers a
	// blurry pattern sequence.
	Exact bool `json:"exact,omitempty"`
}

// parseResponse echoes the structured interpretation for the correction
// panel (Section 4, "Parsed ShapeQuery Validation").
type parseResponse struct {
	Canonical   string        `json:"canonical"`
	Fuzzy       bool          `json:"fuzzy"`
	Entities    []taggedToken `json:"entities,omitempty"`
	Resolutions []string      `json:"resolutions,omitempty"`
}

type taggedToken struct {
	Word   string `json:"word"`
	POS    string `json:"pos"`
	Entity string `json:"entity"`
}

func (s *Server) parseQuery(req parseRequest) (shape.Query, *parseResponse, error) {
	switch req.Kind {
	case "regex", "":
		q, err := regexlang.Parse(req.Query)
		if err != nil {
			return shape.Query{}, nil, err
		}
		return q, &parseResponse{Canonical: q.String(), Fuzzy: q.IsFuzzy()}, nil
	case "nl":
		q, info, err := s.nl.Parse(req.Query)
		resp := &parseResponse{}
		if info != nil {
			for _, tt := range info.Tagged {
				resp.Entities = append(resp.Entities, taggedToken{
					Word: tt.Token.Text, POS: string(tt.POS), Entity: tt.Entity,
				})
			}
			resp.Resolutions = info.Resolutions
		}
		if err != nil {
			return shape.Query{}, resp, err
		}
		resp.Canonical = q.String()
		resp.Fuzzy = q.IsFuzzy()
		return q, resp, nil
	case "sketch":
		var q shape.Query
		var err error
		if req.Exact {
			q, err = sketch.ExactQuery(req.Sketch)
		} else {
			q, err = sketch.BlurryQuery(req.Sketch, sketch.DefaultConfig())
		}
		if err != nil {
			return shape.Query{}, nil, err
		}
		return q, &parseResponse{Canonical: q.String(), Fuzzy: q.IsFuzzy()}, nil
	default:
		return shape.Query{}, nil, fmt.Errorf("unknown query kind %q (want regex, nl, or sketch)", req.Kind)
	}
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req parseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	_, resp, err := s.parseQuery(req)
	if err != nil {
		// Parse errors still carry the partial interpretation so the
		// correction panel can show what was understood.
		payload := map[string]any{"error": err.Error()}
		if resp != nil {
			payload["partial"] = resp
		}
		writeJSON(w, http.StatusUnprocessableEntity, payload)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// searchRequest is the body of /api/search. A request carries either one
// query (the embedded parseRequest fields) or a batch (Queries); the
// visual parameters — dataset, z/x/y, agg, filters — and the execution
// options apply to every query in a batch, and the batch executes in one
// pass over the candidates (see executor.MultiPlan).
type searchRequest struct {
	parseRequest
	// Queries is the batch form: each entry is parsed like the top-level
	// query fields. Mutually exclusive with them.
	Queries []parseRequest `json:"queries,omitempty"`
	Dataset string         `json:"dataset"`
	Z       string         `json:"z"`
	X       string         `json:"x"`
	Y       string         `json:"y"`
	Agg     string         `json:"agg,omitempty"`
	Filters []filterSpec   `json:"filters,omitempty"`
	K       int            `json:"k,omitempty"`
	// Algorithm: auto, dp, segmenttree, greedy, dtw, euclidean.
	Algorithm string `json:"algorithm,omitempty"`
	Pruning   bool   `json:"pruning,omitempty"`
	// Parallelism caps the scoring workers for this request. It is an
	// upper bound, not a guarantee: admission control grants each admitted
	// request a fair share of the worker pool at the admitted concurrency,
	// and an explicit value only ever lowers that grant (0, the default,
	// accepts the full grant).
	Parallelism int `json:"parallelism,omitempty"`
	// MaxPoints caps the number of series points echoed per result
	// (downsampled for plotting); 0 means 200.
	MaxPoints int `json:"maxPoints,omitempty"`
}

type filterSpec struct {
	Col   string  `json:"col"`
	Op    string  `json:"op"`
	Num   float64 `json:"num,omitempty"`
	Str   string  `json:"str,omitempty"`
	IsStr bool    `json:"isStr,omitempty"`
}

// searchResponse is the /api/search reply. Single-query requests populate
// Parse and Results; batch requests populate Queries (one entry per input
// query, in input order).
type searchResponse struct {
	Parse   parseResponse      `json:"parse,omitzero"`
	Results []searchResult     `json:"results,omitempty"`
	Queries []batchQueryResult `json:"queries,omitempty"`
	Debug   *searchDebug       `json:"debug,omitempty"`
}

// batchQueryResult is one query's slice of a batch reply.
type batchQueryResult struct {
	Parse   parseResponse  `json:"parse"`
	Results []searchResult `json:"results"`
}

// searchDebug carries serving-layer instrumentation.
type searchDebug struct {
	PlanCache planCacheDebug `json:"plan_cache"`
}

// planCacheDebug reports whether this request's plan(s) came from the
// compiled-plan cache (Hit = every plan in the request was cached or
// coalesced) plus the server-lifetime counters.
type planCacheDebug struct {
	Hit    bool   `json:"hit"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type searchResult struct {
	Z       string    `json:"z"`
	Score   float64   `json:"score"`
	BreakXs []float64 `json:"breakXs,omitempty"`
	X       []float64 `json:"x"`
	Y       []float64 `json:"y"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	batch := len(req.Queries) > 0
	if batch && (req.Kind != "" || req.Query != "" || len(req.Sketch) > 0) {
		writeError(w, http.StatusBadRequest, "use either the top-level query fields or queries, not both")
		return
	}
	s.mu.RLock()
	ix, ok := s.indexes[req.Dataset]
	version := s.versions[req.Dataset]
	dv := s.deltaVersions[req.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no dataset %q", req.Dataset))
		return
	}
	spec, err := buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// opts is the compile-time option set shared by every query in the
	// request. Parallelism stays at its default here: plans are cached
	// across requests, so the per-request worker budget is applied by
	// wrapping the cached plan (WithParallelism), not baked in at compile.
	opts := executor.DefaultOptions()
	if req.K > 0 {
		opts.K = req.K
	}
	opts.Pruning = req.Pruning
	if alg, err := algorithmByName(req.Algorithm); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	} else {
		opts.Algorithm = alg
	}
	// The request's context governs queueing and the whole data path: with
	// a per-request timeout configured, the deadline starts before
	// admission, so time spent waiting for a slot counts against it and a
	// request that would expire before a slot frees is answered from the
	// queue (503 + Retry-After) without ever consuming a scoring worker.
	ctx := r.Context()
	if d := time.Duration(s.searchTimeout.Load()); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// One admission per request: a batch shares one slot and one worker
	// budget, since MultiPlan scores all its queries in a single pass over
	// the corpus. The deferred release pairs with every return below —
	// enforced by the admissionpair analyzer.
	tk, err := s.adm.admit(ctx, tenantID(r), req.Parallelism)
	if err != nil {
		s.writeSearchErr(w, r, err)
		return
	}
	defer tk.release()
	faultinject.Fire("server.search.admitted")
	if batch {
		s.searchBatch(ctx, w, r, req, ix, version, dv, spec, opts, tk.budget)
		return
	}
	q, parseResp, err := s.parseQuery(req.parseRequest)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	plan, planHit, err := s.compilePlan(q, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	plan = plan.WithParallelism(tk.budget)
	cands, err := s.fetchCandidates(ctx, w, r, req.Dataset, version, dv, ix, plan, spec)
	if err != nil {
		return // fetchCandidates wrote the error response
	}
	// Score under the same context: a disconnecting client (or the
	// configured per-request timeout) cancels the worker pool instead of
	// letting an abandoned query keep burning cores. A cached shape index
	// routes the search through the best-first traversal (engines it cannot
	// serve fall back to the flat pipeline inside RunIndexedContext).
	faultinject.Fire("server.search.score")
	var results []executor.Result
	if cands.index != nil {
		results, err = plan.RunIndexedContext(ctx, cands.index)
	} else {
		results, err = plan.RunGroupedContext(ctx, cands.vizs)
	}
	if err != nil {
		s.writeSearchErr(w, r, err)
		return
	}
	resp := searchResponse{
		Parse:   *parseResp,
		Results: renderResults(results, req.MaxPoints),
		Debug:   s.planDebug(planHit),
	}
	writeJSON(w, http.StatusOK, resp)
}

// compilePlan serves a compiled plan through the plan cache: the query is
// normalized once to derive its fingerprint, and structurally identical
// queries — however they were spelled, whatever front end parsed them —
// share one compilation.
func (s *Server) compilePlan(q shape.Query, opts executor.Options) (*executor.Plan, bool, error) {
	norm, err := shape.Normalize(q)
	if err != nil {
		return nil, false, err
	}
	key := planKey(norm.Fingerprint(), opts.Algorithm, opts.K, opts.Pruning)
	return s.plans.get(key, func() (*executor.Plan, error) {
		return executor.Compile(q, opts)
	})
}

// fetchCandidates runs the candidate cache fetch for one plan + spec and
// handles the surrounding protocol: the pre-fetch expiry check and error
// status mapping. On failure it writes the error response and returns nil.
//
// Repeated queries over the same visual parameters (dataset version +
// effective extract spec + group config) reuse the grouped Viz slices and
// skip EXTRACT + GROUP entirely; concurrent cold misses coalesce into one
// extraction. The expiry check sits outside the fetch closure on purpose:
// a dead request must not start an extraction, but a request dying
// mid-fetch must not poison coalesced waiters sharing the singleflight —
// their extraction completes and populates the cache regardless.
//
// The validate closure closes the build-vs-data-change race: a result is
// stored only if, atomically under the cache lock, both the dataset
// version (bumped by Register) and the delta version (bumped by
// AppendRows) still match what this request observed at admission. A build
// that raced a replacement would occupy an unreachable slot forever; one
// that raced an append could have extracted pre-append rows yet be written
// after the patcher ran, silently serving stale candidates from then on.
// Both interleavings now die at the store instead.
func (s *Server) fetchCandidates(ctx context.Context, w http.ResponseWriter, r *http.Request, ds string, version, dv uint64, ix *dataset.Index, plan *executor.Plan, spec dataset.ExtractSpec) (cachedCandidates, error) {
	if err := ctx.Err(); err != nil {
		s.writeSearchErr(w, r, err)
		return cachedCandidates{}, err
	}
	key := cacheKey(ds, version, plan.CandidateKey(spec))
	validate := func() bool {
		s.mu.RLock()
		ok := s.versions[ds] == version && s.deltaVersions[ds] == dv
		s.mu.RUnlock()
		return ok
	}
	cands, _, err := s.cache.fetch(ctx, ds, key, dv, validate, func() (cachedCandidates, error) {
		faultinject.Fire("server.extract")
		espec := plan.EffectiveSpec(spec)
		series, err := ix.Extract(espec)
		if err != nil {
			return cachedCandidates{}, err
		}
		vizs := plan.GroupSeries(series)
		cc := cachedCandidates{vizs: vizs, espec: espec, plan: plan, patchable: plan.PinFree(), zpos: buildZPos(vizs)}
		if len(vizs) >= indexMinVizs {
			// The index is query-independent (built from the vizs alone), so
			// every plan sharing this candidate key shares it too.
			cc.index = executor.BuildVizIndex(vizs, 0)
		}
		return cc, nil
	})
	if err != nil {
		s.writeSearchErr(w, r, err)
		return cachedCandidates{}, err
	}
	return cands, nil
}

// searchBatch executes the batch form of /api/search: every query is
// served through the plan cache, queries whose candidate sets provably
// coincide (equal Plan.CandidateKey — same effective extract spec and
// group config) share one candidate-cache entry, and each such group is
// scored in a single pass over its candidates by executor.MultiPlan.
// Results come back in input-query order.
func (s *Server) searchBatch(ctx context.Context, w http.ResponseWriter, r *http.Request, req searchRequest, ix *dataset.Index, version, dv uint64, spec dataset.ExtractSpec, opts executor.Options, budget int) {
	parses := make([]parseResponse, len(req.Queries))
	plans := make([]*executor.Plan, len(req.Queries))
	allHit := true
	for i, pr := range req.Queries {
		q, presp, err := s.parseQuery(pr)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("query %d: %s", i, err))
			return
		}
		parses[i] = *presp
		plan, hit, err := s.compilePlan(q, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %s", i, err))
			return
		}
		allHit = allHit && hit
		plans[i] = plan.WithParallelism(budget)
	}
	// Group queries by candidate key: one EXTRACT + GROUP (or one cache
	// hit) and one multi-query scoring pass per distinct key.
	groups := make(map[string][]int, len(plans))
	order := make([]string, 0, len(plans))
	for i, p := range plans {
		k := p.CandidateKey(spec)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	results := make([][]executor.Result, len(plans))
	for _, k := range order {
		idxs := groups[k]
		group := make([]*executor.Plan, len(idxs))
		for gi, qi := range idxs {
			group[gi] = plans[qi]
		}
		mp, err := executor.NewMultiPlan(group)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cands, err := s.fetchCandidates(ctx, w, r, req.Dataset, version, dv, ix, group[0], spec)
		if err != nil {
			return // fetchCandidates wrote the error response
		}
		faultinject.Fire("server.search.score")
		var res [][]executor.Result
		if cands.index != nil {
			res, err = mp.RunIndexedContext(ctx, cands.index)
		} else {
			res, err = mp.RunGroupedContext(ctx, cands.vizs)
		}
		if err != nil {
			s.writeSearchErr(w, r, err)
			return
		}
		for gi, qi := range idxs {
			results[qi] = res[gi]
		}
	}
	resp := searchResponse{Debug: s.planDebug(allHit)}
	resp.Queries = make([]batchQueryResult, len(plans))
	for i := range plans {
		resp.Queries[i] = batchQueryResult{
			Parse:   parses[i],
			Results: renderResults(results[i], req.MaxPoints),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// planDebug snapshots the plan-cache counters for the response debug
// block. hit reports whether every plan in this request was served from
// cache (or coalesced onto an in-flight compile).
func (s *Server) planDebug(hit bool) *searchDebug {
	hits, misses := s.plans.stats()
	return &searchDebug{PlanCache: planCacheDebug{Hit: hit, Hits: hits, Misses: misses}}
}

// renderResults converts executor results to the wire form, downsampling
// each series to maxPts points (<=0 means 200) for plotting.
func renderResults(results []executor.Result, maxPts int) []searchResult {
	if maxPts <= 0 {
		maxPts = 200
	}
	out := make([]searchResult, 0, len(results))
	for _, res := range results {
		x, y := downsample(res.Series.X, res.Series.Y, maxPts)
		out = append(out, searchResult{
			Z: res.Z, Score: res.Score, BreakXs: res.BreakXs, X: x, Y: y,
		})
	}
	return out
}

// writeSearchErr maps a search-path error — from admission, extraction, or
// scoring — to the wire:
//
//   - shed by admission control → 429 Too Many Requests + Retry-After
//     (the request never consumed a scoring worker; retrying is the right
//     move once load drains);
//   - expired deadline (the configured search timeout, or the client's
//     own) → 503 Service Unavailable + Retry-After: the query was valid,
//     the server just could not finish it in time;
//   - disconnected client → logged and dropped without writing a status:
//     there is nobody left to read one, and synthesizing a 503 would count
//     an abandoned request as a server failure;
//   - anything else → 400.
func (s *Server) writeSearchErr(w http.ResponseWriter, r *http.Request, err error) {
	var oe *overloadError
	switch {
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(oe.retryAfter))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "search deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, errClientGone):
		s.logf("server: dropped %s %s: client disconnected (%v)", r.Method, r.URL.Path, err)
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func buildSpec(req searchRequest) (dataset.ExtractSpec, error) {
	spec := dataset.ExtractSpec{Z: req.Z, X: req.X, Y: req.Y}
	switch req.Agg {
	case "", "none":
		spec.Agg = dataset.AggNone
	case "avg":
		spec.Agg = dataset.AggAvg
	case "sum":
		spec.Agg = dataset.AggSum
	case "min":
		spec.Agg = dataset.AggMin
	case "max":
		spec.Agg = dataset.AggMax
	case "count":
		spec.Agg = dataset.AggCount
	default:
		return spec, fmt.Errorf("unknown aggregation %q", req.Agg)
	}
	for _, f := range req.Filters {
		op, err := opByName(f.Op)
		if err != nil {
			return spec, err
		}
		spec.Filters = append(spec.Filters, dataset.Filter{Col: f.Col, Op: op, Num: f.Num, Str: f.Str})
	}
	return spec, nil
}

func opByName(name string) (dataset.FilterOp, error) {
	switch name {
	case "=", "eq", "":
		return dataset.Eq, nil
	case "!=", "ne":
		return dataset.Ne, nil
	case "<", "lt":
		return dataset.Lt, nil
	case "<=", "le":
		return dataset.Le, nil
	case ">", "gt":
		return dataset.Gt, nil
	case ">=", "ge":
		return dataset.Ge, nil
	default:
		return dataset.Eq, fmt.Errorf("unknown filter operator %q", name)
	}
}

func algorithmByName(name string) (executor.Algorithm, error) {
	switch name {
	case "", "auto":
		return executor.AlgAuto, nil
	case "dp":
		return executor.AlgDP, nil
	case "segmenttree", "tree":
		return executor.AlgSegmentTree, nil
	case "greedy":
		return executor.AlgGreedy, nil
	case "exhaustive":
		return executor.AlgExhaustive, nil
	case "dtw":
		return executor.AlgDTW, nil
	case "euclidean":
		return executor.AlgEuclidean, nil
	default:
		return executor.AlgAuto, fmt.Errorf("unknown algorithm %q", name)
	}
}

// downsample thins a series to at most n points, keeping endpoints.
func downsample(x, y []float64, n int) ([]float64, []float64) {
	if len(x) <= n {
		return x, y
	}
	ox := make([]float64, 0, n)
	oy := make([]float64, 0, n)
	step := float64(len(x)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(float64(i) * step)
		ox = append(ox, x[j])
		oy = append(oy, y[j])
	}
	return ox, oy
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
