package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"shapesearch/internal/gen"
)

// benchServer hosts one sizeable dataset so that EXTRACT + GROUP dominate
// per-request cost, which is exactly what the candidate cache elides.
func benchServer(b *testing.B, cached bool) *Server {
	b.Helper()
	s := New()
	if !cached {
		s.DisableCache()
	}
	s.Register("stocks", gen.Stocks(120, 250, 1))
	return s
}

// serveSearch issues one /api/search request through the full HTTP stack.
func serveSearch(b *testing.B, s *Server, query string) {
	b.Helper()
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: query},
		Dataset:      "stocks", Z: "symbol", X: "day", Y: "price", K: 5,
		Algorithm: "euclidean",
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		b.Fatal(err)
	}
	hreq := httptest.NewRequest(http.MethodPost, "/api/search", &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, hreq)
	if rec.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
}

// benchQueries vary the shape query while keeping the visual parameters
// fixed — the repeated-query serving pattern the cache is built for.
var benchQueries = []string{"u ; d", "d ; u", "u ; d ; u"}

// BenchmarkServeSearch compares repeated-query serving with the candidate
// cache on (EXTRACT + GROUP amortized across requests) and off (re-run per
// request). The cached path should be severalfold faster.
func BenchmarkServeSearch(b *testing.B) {
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"CacheHit", true}, {"Uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			s := benchServer(b, mode.cached)
			// Warm: the first request per spec is always a miss.
			serveSearch(b, s, benchQueries[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveSearch(b, s, benchQueries[i%len(benchQueries)])
			}
		})
	}
}

// BenchmarkServeSearchColdCache measures the miss path including cache
// bookkeeping: every request arrives at a fresh dataset version.
func BenchmarkServeSearchColdCache(b *testing.B) {
	s := benchServer(b, true)
	tbl := gen.Stocks(120, 250, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.Register("stocks", tbl) // bump version: guaranteed miss
		b.StartTimer()
		serveSearch(b, s, benchQueries[i%len(benchQueries)])
	}
}
