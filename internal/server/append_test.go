package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"shapesearch/internal/dataset"
	"shapesearch/internal/gen"
)

// appendQueries cover crisp, multi-segment and fuzzy queries (distinct
// engine routing under AlgAuto) — the oracle set for append-vs-register
// byte identity.
var appendQueries = []string{"u", "u ; d", "[p=up, m={1,}]"}

// searchCanonical runs one search against the "ticks" dataset and returns
// the response body with the Debug block zeroed — plan-cache counters
// legitimately differ between a long-lived appended server and a freshly
// registered one, everything else must not.
func searchCanonical(t *testing.T, s *Server, query string, k int, pruning bool) string {
	t.Helper()
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: query},
		Dataset:      "ticks", Z: "z", X: "x", Y: "y", K: k,
		Pruning: pruning,
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search %q: status = %d: %s", query, rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	resp.Debug = nil
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func cacheMisses(s *Server) uint64 {
	_, m := s.cache.stats()
	return m
}

// assertAppendedMatchesFresh registers the concatenation of applied on a
// brand-new server and checks that every oracle query answers byte-
// identically on both — the append path's correctness bar.
func assertAppendedMatchesFresh(t *testing.T, s *Server, applied []*dataset.Table, label string) {
	t.Helper()
	full, err := dataset.Concat(applied...)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New()
	fresh.Register("ticks", full)
	for _, q := range appendQueries {
		for _, pruning := range []bool{true, false} {
			got := searchCanonical(t, s, q, 10, pruning)
			want := searchCanonical(t, fresh, q, 10, pruning)
			if got != want {
				t.Fatalf("%s: query %q (pruning=%v) diverges from a fresh Register\ngot:  %.300s\nwant: %.300s",
					label, q, pruning, got, want)
			}
		}
	}
}

// TestAppendMatchesRegister drives random append schedules — in-order and
// out-of-order x, indexed (>= indexMinVizs series) and flat corpora,
// default and aggressive rebuild thresholds — and checks after every batch
// that searches on the appended server are byte-identical to a fresh
// Register of the concatenated table, served from the patched cache entry
// (no new cache miss).
func TestAppendMatchesRegister(t *testing.T) {
	cases := []struct {
		name               string
		numSeries, basePts int
		nBatches, batchPts int
		inOrder            bool
		rebuildThreshold   int
	}{
		{"indexed-inorder", 300, 8, 3, 150, true, 0},
		{"indexed-outoforder-rebuild1", 300, 8, 3, 150, false, 1},
		{"flat-inorder", 40, 10, 4, 25, true, 0},
		{"flat-outoforder", 40, 10, 4, 25, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts []Option
			if tc.rebuildThreshold > 0 {
				opts = append(opts, WithIndexRebuildThreshold(tc.rebuildThreshold))
			}
			s := New(opts...)
			base, batches := gen.StreamTicks(tc.numSeries, tc.basePts, tc.nBatches, tc.batchPts, 42, tc.inOrder)
			// The server owns base after Register (appends grow it in
			// place); the ground truth needs a pristine copy, and the
			// generator is deterministic, so generate it again.
			pristine, _ := gen.StreamTicks(tc.numSeries, tc.basePts, tc.nBatches, tc.batchPts, 42, tc.inOrder)
			s.Register("ticks", base)
			// Warm the cache so the appends have entries to patch.
			for _, q := range appendQueries {
				searchCanonical(t, s, q, 10, true)
			}
			applied := []*dataset.Table{pristine}
			for bi, delta := range batches {
				if _, _, err := s.AppendRows("ticks", delta); err != nil {
					t.Fatal(err)
				}
				s.rebuildWG.Wait()
				applied = append(applied, delta)
				missesBefore := cacheMisses(s)
				assertAppendedMatchesFresh(t, s, applied, tc.name+": batch "+string(rune('0'+bi)))
				if m := cacheMisses(s); m != missesBefore {
					t.Fatalf("batch %d: post-append search missed the cache (%d -> %d); the entry was dropped instead of patched", bi, missesBefore, m)
				}
			}
		})
	}
}

// seriesTable builds numSeries fresh series named prefix0, prefix1, … with
// pts points each (deterministic y), matching StreamTicks's z/x/y schema.
func seriesTable(t *testing.T, prefix string, numSeries, pts int) *dataset.Table {
	t.Helper()
	var zs []string
	var xs, ys []float64
	for si := 0; si < numSeries; si++ {
		name := prefix + string(rune('0'+si))
		for k := 0; k < pts; k++ {
			zs = append(zs, name)
			xs = append(xs, float64(k))
			ys = append(ys, math.Sin(float64(k)*0.7+float64(si)))
		}
	}
	tbl, err := dataset.New(
		dataset.Column{Name: "z", Type: dataset.String, Strings: zs},
		dataset.Column{Name: "x", Type: dataset.Float, Floats: xs},
		dataset.Column{Name: "y", Type: dataset.Float, Floats: ys},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestAppendNewGroups covers deltas that introduce brand-new z groups: ones
// sorting after every existing series extend the cached slice (and its
// shape index) in place, ones sorting before force the merge + background
// rebuild path. Both must stay byte-identical to a fresh Register and keep
// serving from the patched entry.
func TestAppendNewGroups(t *testing.T) {
	s := New()
	base, _ := gen.StreamTicks(300, 8, 0, 0, 7, true)
	pristine, _ := gen.StreamTicks(300, 8, 0, 0, 7, true)
	s.Register("ticks", base)
	for _, q := range appendQueries {
		searchCanonical(t, s, q, 10, true)
	}
	applied := []*dataset.Table{pristine}

	// StreamTicks series are named tick…, so "zz-…" sorts after all of them
	// (end-append) and "aaa-…" before all of them (mid-insert).
	endDelta := seriesTable(t, "zz-end-", 3, 8)
	if _, _, err := s.AppendRows("ticks", endDelta); err != nil {
		t.Fatal(err)
	}
	s.rebuildWG.Wait()
	applied = append(applied, endDelta)
	misses := cacheMisses(s)
	assertAppendedMatchesFresh(t, s, applied, "end-append of new groups")
	if m := cacheMisses(s); m != misses {
		t.Fatalf("end-append dropped the cache entry (misses %d -> %d)", misses, m)
	}

	midDelta := seriesTable(t, "aaa-mid-", 2, 8)
	if _, _, err := s.AppendRows("ticks", midDelta); err != nil {
		t.Fatal(err)
	}
	s.rebuildWG.Wait()
	applied = append(applied, midDelta)
	misses = cacheMisses(s)
	assertAppendedMatchesFresh(t, s, applied, "mid-insert of new groups")
	if m := cacheMisses(s); m != misses {
		t.Fatalf("mid-insert dropped the cache entry (misses %d -> %d)", misses, m)
	}
}

// entryIndexStaleness digs the lone cached entry's shape-index staleness
// out of the candidate cache (version 1 = the first Register).
func entryIndexStaleness(t *testing.T, s *Server) int {
	t.Helper()
	snaps := s.cache.snapshotDataset("ticks", cacheKeyPrefix("ticks", 1))
	if len(snaps) == 0 {
		t.Fatal("no cached entry to inspect")
	}
	if snaps[0].cands.index == nil {
		t.Fatal("cached entry has no shape index")
	}
	return snaps[0].cands.index.Staleness()
}

// TestAppendRebuildPolicy pins the staleness policy: under the default
// threshold a patched index survives with nonzero staleness; with the
// threshold at 1 every append schedules a background rebuild that resets
// staleness to zero.
func TestAppendRebuildPolicy(t *testing.T) {
	base, batches := gen.StreamTicks(300, 8, 1, 80, 11, true)
	base2, _ := gen.StreamTicks(300, 8, 1, 80, 11, true)

	s := New()
	s.Register("ticks", base)
	searchCanonical(t, s, "u", 5, true)
	if _, _, err := s.AppendRows("ticks", batches[0]); err != nil {
		t.Fatal(err)
	}
	s.rebuildWG.Wait()
	if st := entryIndexStaleness(t, s); st == 0 {
		t.Fatal("default threshold: expected the patched index to carry staleness, got 0 (rebuilt?)")
	}

	s2 := New(WithIndexRebuildThreshold(1))
	s2.Register("ticks", base2)
	searchCanonical(t, s2, "u", 5, true)
	if _, _, err := s2.AppendRows("ticks", batches[0]); err != nil {
		t.Fatal(err)
	}
	s2.rebuildWG.Wait()
	if st := entryIndexStaleness(t, s2); st != 0 {
		t.Fatalf("threshold 1: expected a background rebuild to reset staleness, got %d", st)
	}
}

// TestAppendDropsPinnedEntries: plans with pinned push-down windows group
// against the whole collection, so their cached entries cannot be patched
// per-group — an append must drop them, and the next search must rebuild
// and still match a fresh Register.
func TestAppendDropsPinnedEntries(t *testing.T) {
	pinned := "[x.s=1, x.e=5, p=up]"
	run := func(t *testing.T, s *Server) string {
		return searchCanonical(t, s, pinned, 5, true)
	}
	s := New()
	base, batches := gen.StreamTicks(40, 10, 1, 30, 23, true)
	pristine, _ := gen.StreamTicks(40, 10, 1, 30, 23, true)
	s.Register("ticks", base)
	run(t, s)
	missesBefore := cacheMisses(s)
	if _, _, err := s.AppendRows("ticks", batches[0]); err != nil {
		t.Fatal(err)
	}
	s.rebuildWG.Wait()
	got := run(t, s)
	if m := cacheMisses(s); m != missesBefore+1 {
		t.Fatalf("pinned entry should be dropped and rebuilt once (misses %d -> %d)", missesBefore, m)
	}
	full, err := dataset.Concat(pristine, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	fresh := New()
	fresh.Register("ticks", full)
	if want := run(t, fresh); got != want {
		t.Fatalf("pinned query after append diverges from fresh Register\ngot:  %.300s\nwant: %.300s", got, want)
	}
}

// TestAppendRowsErrors covers the append API's failure modes: unknown
// dataset, schema mismatch (which must leave the dataset untouched), and
// the empty-delta no-op.
func TestAppendRowsErrors(t *testing.T) {
	s := testServer(t)
	if _, _, err := s.AppendRows("nope", nil); err == nil {
		t.Fatal("append to unknown dataset succeeded")
	}
	bad, err := dataset.New(dataset.Column{Name: "wrong", Type: dataset.Float, Floats: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendRows("demo", bad); err == nil {
		t.Fatal("schema-mismatched append succeeded")
	}
	appended, total, err := s.AppendRows("demo", nil)
	if err != nil || appended != 0 || total != 18 {
		t.Fatalf("empty append: appended=%d total=%d err=%v, want 0, 18, nil", appended, total, err)
	}
}

// TestAppendEndpoint exercises POST /api/append end to end: CSV parsing
// against the registered schema, row accounting, and the error statuses.
func TestAppendEndpoint(t *testing.T) {
	s := testServer(t)
	body := "z,x,y\nspike,0,0\nspike,1,5\nspike,2,0\nrise,9,9\n"
	req := httptest.NewRequest(http.MethodPost, "/api/append?dataset=demo", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp appendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Appended != 4 || resp.Rows != 22 {
		t.Fatalf("appended=%d rows=%d, want 4, 22", resp.Appended, resp.Rows)
	}

	for _, tc := range []struct {
		path, body string
		wantCode   int
	}{
		{"/api/append", "z,x,y\n", http.StatusBadRequest},
		{"/api/append?dataset=nope", "z,x,y\n", http.StatusNotFound},
		{"/api/append?dataset=demo", "a,b\n1,2\n", http.StatusBadRequest},
	} {
		req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.wantCode {
			t.Fatalf("%s: status = %d, want %d: %s", tc.path, rec.Code, tc.wantCode, rec.Body.String())
		}
	}
}

// TestFetchValidateAtStore is the regression test for the build-vs-append
// race: a candidate build that was in flight when the data changed (the
// validate closure turns false) must NOT be stored — before this check a
// pre-append extraction could land after the patcher ran and serve stale
// candidates forever.
func TestFetchValidateAtStore(t *testing.T) {
	c := newCandidateCache(4)
	var valid atomic.Bool
	valid.Store(true)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.fetch(context.Background(), "d", "k", 0, valid.Load, func() (cachedCandidates, error) {
			close(started)
			<-release
			return cachedCandidates{}, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	valid.Store(false) // an append invalidated the build mid-flight
	close(release)
	<-done
	c.mu.Lock()
	_, stored := c.entries["k"]
	c.mu.Unlock()
	if stored {
		t.Fatal("a build invalidated mid-flight was stored anyway")
	}
}

// TestFetchFlightScopedByDeltaVersion: a request admitted after an append
// (higher delta version) must not join a flight led by a pre-append
// request — the leader's extraction may predate the appended rows.
func TestFetchFlightScopedByDeltaVersion(t *testing.T) {
	c := newCandidateCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.fetch(context.Background(), "d", "k", 0,
			func() bool { return false }, // the append already invalidated this leader
			func() (cachedCandidates, error) {
				close(started)
				<-release
				return cachedCandidates{}, nil
			})
	}()
	<-started
	ran := false
	cands, hit, err := c.fetch(context.Background(), "d", "k", 1, nil, func() (cachedCandidates, error) {
		ran = true
		return cachedCandidates{patchable: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || hit {
		t.Fatalf("post-append request joined the pre-append flight (ran=%v hit=%v)", ran, hit)
	}
	if !cands.patchable {
		t.Fatal("post-append request got the wrong payload")
	}
	close(release)
	<-done
	// The stale leader must not have clobbered the post-append store.
	got, hit, err := c.fetch(context.Background(), "d", "k", 1, nil, func() (cachedCandidates, error) {
		t.Fatal("unexpected rebuild: entry should be cached")
		return cachedCandidates{}, nil
	})
	if err != nil || !hit || !got.patchable {
		t.Fatalf("stale leader overwrote the fresh entry (hit=%v patchable=%v err=%v)", hit, got.patchable, err)
	}
}
