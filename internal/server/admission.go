package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"shapesearch/internal/server/faultinject"
)

// Admission control (ROADMAP "Production serving hardening"): a bounded,
// deadline-aware FIFO in front of scoring. At saturation new searches wait
// in a per-tenant queue with a queue-time budget and are shed with 429 +
// Retry-After once the queue is full or their budget runs out — never an
// unbounded goroutine pileup — and a request whose own context expires
// while it waits is answered from the queue (503 for a server-side
// deadline, a silent drop for a disconnected client) without ever
// consuming a scoring worker.
//
// Admitted requests draw their scoring parallelism from a fixed pool of
// worker tokens: each admission takes a fair share of the pool at the
// *admitted* concurrency, clamped to what the pool still has and floored
// at one worker. Because grants are clamped — not merely divided, as the
// old fixed-at-admission scheme was — the total handed out is bounded by
// workers + concurrency − 1 (each admission past a drained pool runs on
// its floor grant of one), instead of growing by a full fixed share per
// staggered arrival as before.
//
// Tenancy: every request carries a tenant id (X-Tenant header, falling
// back to the API key in Authorization, then the anonymous tenant "").
// Each tenant has its own FIFO and an optional concurrency cap, and freed
// slots are granted round-robin across the tenants with waiters, so one
// hot tenant saturating the server cannot starve the rest: its requests
// queue behind its cap while other tenants' requests keep flowing.

// Admission defaults: concurrency defaults to the core count (set in New),
// so a saturated server runs one scoring worker per admitted search.
const (
	defaultQueueDepth = 64
	defaultQueueWait  = 2 * time.Second
)

// errClientGone marks a request whose client disconnected while it waited
// for a slot or while it was scored. There is nobody left to read a
// status: the handler logs it and writes nothing.
var errClientGone = errors.New("server: client disconnected")

// overloadError is the load-shedding signal: the request was refused
// without consuming a scoring worker and the client should retry after
// RetryAfter seconds. Mapped to 429 Too Many Requests.
type overloadError struct {
	retryAfter int
	reason     string
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("server overloaded (%s): retry after %ds", e.reason, e.retryAfter)
}

// admission is the bounded search queue. All fields behind mu; the
// configuration fields (concurrency, queueDepth, queueWait, tenantCap,
// workers) are written only during Server construction, before the value
// is shared.
type admission struct {
	mu sync.Mutex
	// concurrency is the maximum number of concurrently admitted searches.
	concurrency int
	// queueDepth bounds the waiters across all tenants; arrivals beyond it
	// are shed immediately.
	queueDepth int
	// queueWait is the queue-time budget: a request still queued after it
	// is shed (429), on the theory that by then the client's retry would
	// have been admitted faster than its original request.
	queueWait time.Duration
	// tenantCap caps one tenant's concurrently admitted searches
	// (0 = no per-tenant cap beyond the global concurrency).
	tenantCap int
	// workers is the scoring worker-token pool (the core count at
	// construction); workersOut is how many tokens admitted requests hold.
	workers    int
	workersOut int

	admitted int
	queued   int
	tenants  map[string]*tenantQueue
	// rr lists the tenants that currently have waiters; grants walk it
	// round-robin from rrPos so every tenant drains at the same rate
	// regardless of queue length.
	rr    []*tenantQueue
	rrPos int
	// calm is closed (and nilled) when load drops below the watermark —
	// no waiters and a free slot. Background work parks on it to yield.
	calm chan struct{}

	// Lifetime counters (tests and /api/health-style introspection).
	nAdmitted, nShed uint64
}

type tenantQueue struct {
	id      string
	running int
	waiters []*waiter
}

// waiter is one queued request. The granter moves its bookkeeping from
// queued to admitted under a.mu and then sends the worker budget on grant
// (buffered, never blocks); the waiter side builds the ticket.
type waiter struct {
	requested int
	grant     chan int
	tq        *tenantQueue
}

// ticket is an admitted request's slot. Exactly one release per ticket
// (idempotent under mu for safety); handlers must pair admit with
// `defer tk.release()` — enforced by the admissionpair analyzer.
type ticket struct {
	a      *admission
	tq     *tenantQueue
	budget int
	done   bool
}

func newAdmission(workers int) *admission {
	if workers < 1 {
		workers = 1
	}
	return &admission{
		concurrency: workers,
		queueDepth:  defaultQueueDepth,
		queueWait:   defaultQueueWait,
		workers:     workers,
		tenants:     make(map[string]*tenantQueue),
	}
}

// admit blocks until the request holds a search slot, or fails with
// *overloadError (shed: queue full or queue-time budget exhausted),
// context.DeadlineExceeded (the request's deadline expired first), or
// errClientGone (the client disconnected). On success the caller owns the
// ticket and must release it on every path via defer.
func (a *admission) admit(ctx context.Context, tenant string, requested int) (*ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, admissionCtxErr(err)
	}
	a.mu.Lock()
	tq := a.tenantLocked(tenant)
	if a.admitted < a.concurrency && tq.running < a.capLocked() {
		tk := a.grantLocked(tq, requested)
		a.mu.Unlock()
		return tk, nil
	}
	if a.queued >= a.queueDepth {
		a.nShed++
		a.mu.Unlock()
		return nil, &overloadError{retryAfter: a.retryAfterSeconds(), reason: "queue full"}
	}
	w := &waiter{requested: requested, grant: make(chan int, 1), tq: tq}
	if len(tq.waiters) == 0 {
		a.rr = append(a.rr, tq)
	}
	tq.waiters = append(tq.waiters, w)
	a.queued++
	a.mu.Unlock()
	faultinject.Fire("server.admission.queued")

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case budget := <-w.grant:
		return &ticket{a: a, tq: tq, budget: budget}, nil
	case <-ctx.Done():
		if tk := a.withdraw(w); tk != nil {
			// A grant raced the expiry; the client is gone either way, so
			// hand the slot straight back.
			tk.release()
		}
		return nil, admissionCtxErr(ctx.Err())
	case <-timer.C:
		if tk := a.withdraw(w); tk != nil {
			// A grant raced the timeout. The slot is ours and the client is
			// still waiting: use it rather than shed an admitted request.
			return tk, nil
		}
		a.mu.Lock()
		a.nShed++
		a.mu.Unlock()
		return nil, &overloadError{retryAfter: a.retryAfterSeconds(), reason: "queue wait budget exhausted"}
	}
}

// admissionCtxErr classifies a context error at admission time: an expired
// deadline keeps its identity (503 + Retry-After), a cancellation means
// the client went away (dropped without a response).
func admissionCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return errClientGone
}

// withdraw removes w from its queue after an expiry. If w is no longer
// queued, a grant was delivered concurrently (the buffered send happens
// under a.mu before the waiter is unlinked), and withdraw returns the
// already-admitted ticket for the caller to use or release; otherwise it
// returns nil and the request was never admitted.
func (a *admission) withdraw(w *waiter) *ticket {
	a.mu.Lock()
	for i, x := range w.tq.waiters {
		if x == w {
			w.tq.waiters = append(w.tq.waiters[:i], w.tq.waiters[i+1:]...)
			if len(w.tq.waiters) == 0 {
				a.dropFromRRLocked(w.tq)
			}
			a.queued--
			a.gcTenantLocked(w.tq)
			a.maybeCalmLocked()
			a.mu.Unlock()
			return nil
		}
	}
	a.mu.Unlock()
	return &ticket{a: a, tq: w.tq, budget: <-w.grant}
}

// grantLocked admits one request for tq and takes its worker tokens.
func (a *admission) grantLocked(tq *tenantQueue, requested int) *ticket {
	a.admitted++
	tq.running++
	a.nAdmitted++
	budget := a.workerBudgetLocked(requested)
	a.workersOut += budget
	return &ticket{a: a, tq: tq, budget: budget}
}

// workerBudgetLocked computes an admitted request's scoring parallelism: a
// fair share of the worker pool at the current admitted concurrency,
// clamped to the tokens still unheld (a request admitted while earlier
// ones hold wide budgets gets the leftovers, so the pool is never
// oversubscribed), floored at one worker, and only ever lowered by an
// explicit client ask.
func (a *admission) workerBudgetLocked(requested int) int {
	budget := a.workers / a.admitted
	if left := a.workers - a.workersOut; budget > left {
		budget = left
	}
	if requested > 0 && requested < budget {
		budget = requested
	}
	if budget < 1 {
		budget = 1
	}
	return budget
}

// release returns the slot and its worker tokens, grants freed capacity to
// waiters (round-robin across tenants), and signals the calm channel when
// load drops below the watermark.
func (tk *ticket) release() {
	a := tk.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if tk.done {
		return
	}
	tk.done = true
	a.admitted--
	tk.tq.running--
	a.workersOut -= tk.budget
	a.gcTenantLocked(tk.tq)
	a.dispatchLocked()
	a.maybeCalmLocked()
}

// dispatchLocked hands freed slots to queued requests: FIFO within a
// tenant, round-robin across tenants, skipping tenants at their cap. It
// stops when the slots are gone, the queues are empty, or every waiting
// tenant is capped.
func (a *admission) dispatchLocked() {
	for a.admitted < a.concurrency && len(a.rr) > 0 {
		picked := -1
		for i := 0; i < len(a.rr); i++ {
			j := (a.rrPos + i) % len(a.rr)
			if a.rr[j].running < a.capLocked() {
				picked = j
				break
			}
		}
		if picked < 0 {
			return
		}
		tq := a.rr[picked]
		w := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		a.queued--
		if len(tq.waiters) == 0 {
			a.rr = append(a.rr[:picked], a.rr[picked+1:]...)
			if a.rrPos > picked {
				a.rrPos--
			}
		} else {
			a.rrPos = picked + 1
		}
		if len(a.rr) > 0 {
			a.rrPos %= len(a.rr)
		} else {
			a.rrPos = 0
		}
		a.admitted++
		tq.running++
		a.nAdmitted++
		budget := a.workerBudgetLocked(w.requested)
		a.workersOut += budget
		w.grant <- budget
	}
}

// capLocked is the effective per-tenant concurrency cap.
func (a *admission) capLocked() int {
	if a.tenantCap > 0 {
		return a.tenantCap
	}
	return a.concurrency
}

func (a *admission) tenantLocked(id string) *tenantQueue {
	tq, ok := a.tenants[id]
	if !ok {
		tq = &tenantQueue{id: id}
		a.tenants[id] = tq
	}
	return tq
}

// gcTenantLocked drops an idle tenant's queue state so the tenant map
// tracks live tenants, not every id ever seen.
func (a *admission) gcTenantLocked(tq *tenantQueue) {
	if tq.running == 0 && len(tq.waiters) == 0 {
		delete(a.tenants, tq.id)
	}
}

func (a *admission) dropFromRRLocked(tq *tenantQueue) {
	for i, x := range a.rr {
		if x == tq {
			a.rr = append(a.rr[:i], a.rr[i+1:]...)
			if a.rrPos > i {
				a.rrPos--
			}
			if len(a.rr) > 0 {
				a.rrPos %= len(a.rr)
			} else {
				a.rrPos = 0
			}
			return
		}
	}
}

// overloadedLocked is the load watermark: any waiter, or no free slot.
func (a *admission) overloadedLocked() bool {
	return a.queued > 0 || a.admitted >= a.concurrency
}

// maybeCalmLocked wakes calm-waiters when load drops below the watermark.
func (a *admission) maybeCalmLocked() {
	if !a.overloadedLocked() && a.calm != nil {
		close(a.calm)
		a.calm = nil
	}
}

// awaitCalm blocks until the server is below the load watermark (no queued
// searches and a free slot) or maxWait elapses. Background work — append
// patching, shape-index rebuilds — calls it to yield to interactive
// searches; the bound guarantees sustained overload degrades background
// work's latency, never starves it outright.
func (a *admission) awaitCalm(maxWait time.Duration) {
	deadline := time.NewTimer(maxWait)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		if !a.overloadedLocked() {
			a.mu.Unlock()
			return
		}
		if a.calm == nil {
			a.calm = make(chan struct{})
		}
		ch := a.calm
		a.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return
		}
	}
}

// retryAfterSeconds is the Retry-After hint on shed and expired responses:
// the queue-wait budget rounded up to whole seconds — by then the current
// queue has drained or been shed, so a retry sees fresh capacity.
// queueWait is immutable after construction, so no lock is needed.
func (a *admission) retryAfterSeconds() int {
	s := int(math.Ceil(a.queueWait.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// snapshot reports the live gauges; tests assert they return to zero after
// every burst and on every early-return path.
func (a *admission) snapshot() (admitted, queued, workersOut int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.queued, a.workersOut
}

// counters reports the lifetime (admitted, shed) totals.
func (a *admission) counters() (admitted, shed uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nAdmitted, a.nShed
}
