package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"

	"shapesearch/internal/executor"
	"shapesearch/internal/regexlang"
)

// TestSearchUsesPlanCache: repeated single-query searches compile once —
// the second identical request reports a plan-cache hit, and spelling the
// same normalized query differently still hits (fingerprint keying).
func TestSearchUsesPlanCache(t *testing.T) {
	s := testServer(t)
	req := searchRequest{
		parseRequest: parseRequest{Kind: "regex", Query: "u ; d"},
		Dataset:      "demo", Z: "z", X: "x", Y: "y",
	}
	var first searchResponse
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Debug == nil {
		t.Fatal("response carries no debug block")
	}
	if first.Debug.PlanCache.Hit {
		t.Fatal("first request reported a plan-cache hit")
	}
	var second searchResponse
	rec = doJSON(t, s, http.MethodPost, "/api/search", req)
	if err := json.Unmarshal(rec.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Debug.PlanCache.Hit {
		t.Fatal("identical second request missed the plan cache")
	}
	if second.Debug.PlanCache.Hits < 1 || second.Debug.PlanCache.Misses < 1 {
		t.Fatalf("counters = %+v", second.Debug.PlanCache)
	}
	// A different spelling of the same normalized query shares the plan.
	req.Query = "(u) ⊗ (d)"
	var third searchResponse
	rec = doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &third); err != nil {
		t.Fatal(err)
	}
	if !third.Debug.PlanCache.Hit {
		t.Fatal("respelled query missed the plan cache")
	}
	// Different K compiles a different plan (K shapes the top-k heap).
	req.K = 1
	var fourth searchResponse
	rec = doJSON(t, s, http.MethodPost, "/api/search", req)
	if err := json.Unmarshal(rec.Body.Bytes(), &fourth); err != nil {
		t.Fatal(err)
	}
	if fourth.Debug.PlanCache.Hit {
		t.Fatal("different K wrongly hit the plan cache")
	}
}

// TestSearchBatch: the batch form returns per-query results identical to
// issuing each query alone, in input order, from one request.
func TestSearchBatch(t *testing.T) {
	s := testServer(t)
	queries := []parseRequest{
		{Kind: "regex", Query: "u ; d"},
		{Kind: "regex", Query: "u"},
		{Kind: "nl", Query: "rising then falling"},
	}
	req := searchRequest{
		Queries: queries,
		Dataset: "demo", Z: "z", X: "x", Y: "y", K: 2,
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var batch searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Queries) != len(queries) {
		t.Fatalf("got %d query results, want %d", len(batch.Queries), len(queries))
	}
	if len(batch.Results) != 0 {
		t.Fatalf("batch response also carried top-level results: %+v", batch.Results)
	}
	for i, pr := range queries {
		single := searchRequest{
			parseRequest: pr,
			Dataset:      "demo", Z: "z", X: "x", Y: "y", K: 2,
		}
		rec := doJSON(t, s, http.MethodPost, "/api/search", single)
		if rec.Code != http.StatusOK {
			t.Fatalf("single %d: status = %d: %s", i, rec.Code, rec.Body.String())
		}
		var want searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		got := batch.Queries[i]
		if got.Parse.Canonical != want.Parse.Canonical {
			t.Fatalf("query %d parse = %q, want %q", i, got.Parse.Canonical, want.Parse.Canonical)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("query %d: %d results, want %d", i, len(got.Results), len(want.Results))
		}
		for j := range want.Results {
			if got.Results[j].Z != want.Results[j].Z ||
				math.Float64bits(got.Results[j].Score) != math.Float64bits(want.Results[j].Score) {
				t.Fatalf("query %d result %d = (%s, %v), want (%s, %v)", i, j,
					got.Results[j].Z, got.Results[j].Score, want.Results[j].Z, want.Results[j].Score)
			}
		}
	}
}

// TestSearchBatchSharesCandidates: a batch of queries over one set of
// visual parameters extracts and groups once — after the batch, a
// follow-up identical batch is served entirely from the candidate cache.
func TestSearchBatchSharesCandidates(t *testing.T) {
	s := testServer(t)
	req := searchRequest{
		Queries: []parseRequest{
			{Kind: "regex", Query: "u ; d"},
			{Kind: "regex", Query: "d ; u"},
			{Kind: "regex", Query: "u ; d ; u"},
		},
		Dataset: "demo", Z: "z", X: "x", Y: "y",
	}
	rec := doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	hits, misses := s.cache.stats()
	if misses != 1 {
		t.Fatalf("batch of 3 same-spec queries cost %d candidate extractions, want 1 (hits=%d)", misses, hits)
	}
	rec = doJSON(t, s, http.MethodPost, "/api/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	hits2, misses2 := s.cache.stats()
	if misses2 != 1 || hits2 != hits+1 {
		t.Fatalf("second batch: hits %d→%d misses %d→%d, want one more hit, no more misses",
			hits, hits2, misses, misses2)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Debug == nil || !resp.Debug.PlanCache.Hit {
		t.Fatal("repeated batch did not report a full plan-cache hit")
	}
}

// TestSearchBatchErrors: malformed batches fail with per-query context and
// the right status codes.
func TestSearchBatchErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name string
		req  searchRequest
		code int
	}{
		{
			"mixed single and batch",
			searchRequest{
				parseRequest: parseRequest{Kind: "regex", Query: "u"},
				Queries:      []parseRequest{{Kind: "regex", Query: "d"}},
				Dataset:      "demo", Z: "z", X: "x", Y: "y",
			},
			http.StatusBadRequest,
		},
		{
			"bad query in batch",
			searchRequest{
				Queries: []parseRequest{{Kind: "regex", Query: "u"}, {Kind: "regex", Query: "["}},
				Dataset: "demo", Z: "z", X: "x", Y: "y",
			},
			http.StatusUnprocessableEntity,
		},
	}
	for _, c := range cases {
		rec := doJSON(t, s, http.MethodPost, "/api/search", c.req)
		if rec.Code != c.code {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body.String())
		}
	}
}

// TestPlanCacheEviction: the LRU bound holds — overflow evicts the least
// recently used entry, and evicted keys recompile on the next get.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	compiles := 0
	get := func(key string) {
		t.Helper()
		_, _, err := c.get(key, func() (*executor.Plan, error) {
			compiles++
			return executor.Compile(regexlang.MustParse("u"), executor.DefaultOptions())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a's recency; b is now LRU
	get("c") // evicts b
	if compiles != 3 {
		t.Fatalf("compiles = %d, want 3", compiles)
	}
	get("a") // still cached
	if compiles != 3 {
		t.Fatalf("a was evicted: compiles = %d", compiles)
	}
	get("b") // evicted above, recompiles
	if compiles != 4 {
		t.Fatalf("compiles = %d, want 4", compiles)
	}
	// Compile errors are returned but never cached.
	wantErr := fmt.Errorf("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.get("bad", func() (*executor.Plan, error) { return nil, wantErr })
		if err != wantErr {
			t.Fatalf("err = %v", err)
		}
	}
	_, misses := c.stats()
	if misses != 6 { // a, b, c, b again, bad twice
		t.Fatalf("misses = %d, want 6", misses)
	}
}
