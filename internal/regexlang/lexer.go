// Package regexlang parses ShapeSearch's visual regular expression language
// into the ShapeQuery algebra, implementing the context-free grammar of
// Table 2 of the paper. The language accepts both the paper's Unicode
// operator glyphs (⊗ ⊙ ⊕) and ASCII spellings (";" or juxtaposition for
// CONCAT, "&" for AND, "|" for OR, "!" for OPPOSITE).
//
// Examples:
//
//	[p=up][p=down][p=up]                  three patterns in sequence
//	u ; d ; u                             the same, with bare patterns
//	[x.s=2, x.e=5, p=up, m=>>]            sharply rising from x=2 to x=5
//	[p=up, m={2,}] & ![p=flat]            at least two rises and not flat
//	[x.s=., x.e=.+3, p=up]                best rise over any 3-wide window
//	[p=up]([p=flat] | [p=down][p=up])     grouping and alternation
package regexlang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokConcat // ⊗ or ;
	tokAnd    // ⊙ or &
	tokOr     // ⊕ or |
	tokBang
	tokQuestion
	tokEq
	tokGT
	tokGTGT
	tokLT
	tokLTLT
	tokDot
	tokPlus
	tokMinus
	tokDollar
	tokNumber
	tokIdent
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokConcat:
		return "CONCAT"
	case tokAnd:
		return "AND"
	case tokOr:
		return "OR"
	case tokBang:
		return "'!'"
	case tokQuestion:
		return "'?'"
	case tokEq:
		return "'='"
	case tokGT:
		return "'>'"
	case tokGTGT:
		return "'>>'"
	case tokLT:
		return "'<'"
	case tokLTLT:
		return "'<<'"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokDollar:
		return "'$'"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int // byte offset in the input, for error messages
}

// lexer produces tokens from a query string.
type lexer struct {
	input string
	pos   int
}

// A SyntaxError reports where parsing failed and why.
type SyntaxError struct {
	Pos     int
	Message string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regexlang: position %d: %s", e.Pos, e.Message)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		r := rune(l.input[l.pos])
		if r < 0x80 && (r == ' ' || r == '\t' || r == '\n' || r == '\r') {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	rest := l.input[l.pos:]

	// Degree signs are decoration (θ = 45° reads naturally): skip them.
	if strings.HasPrefix(rest, "°") {
		l.pos += len("°")
		return l.next()
	}
	// Unicode operator glyphs.
	for _, g := range []struct {
		glyph string
		kind  tokenKind
	}{
		{"⊗", tokConcat}, {"⊙", tokAnd}, {"⊕", tokOr},
	} {
		if strings.HasPrefix(rest, g.glyph) {
			l.pos += len(g.glyph)
			return token{kind: g.kind, text: g.glyph, pos: start}, nil
		}
	}
	if strings.HasPrefix(rest, "θ") {
		l.pos += len("θ")
		return token{kind: tokIdent, text: "theta", pos: start}, nil
	}

	c := l.input[l.pos]
	switch c {
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ':':
		l.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case ';':
		l.pos++
		return token{kind: tokConcat, text: ";", pos: start}, nil
	case '&':
		l.pos++
		return token{kind: tokAnd, text: "&", pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokOr, text: "|", pos: start}, nil
	case '!':
		l.pos++
		return token{kind: tokBang, text: "!", pos: start}, nil
	case '?':
		l.pos++
		return token{kind: tokQuestion, text: "?", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '>':
		if strings.HasPrefix(rest, ">>") {
			l.pos += 2
			return token{kind: tokGTGT, text: ">>", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGT, text: ">", pos: start}, nil
	case '<':
		if strings.HasPrefix(rest, "<<") {
			l.pos += 2
			return token{kind: tokLTLT, text: "<<", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLT, text: "<", pos: start}, nil
	case '+':
		l.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case '-':
		l.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '$':
		l.pos++
		return token{kind: tokDollar, text: "$", pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokIdent, text: "*", pos: start}, nil
	case '.':
		// "." followed by a digit is a number; otherwise the ITERATOR.
		if l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	}

	if isDigit(c) {
		return l.lexNumber()
	}
	if isIdentStart(rune(c)) {
		return l.lexIdent()
	}
	return token{}, errf(start, "unexpected character %q", string(rune(c)))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1]) {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.input) {
			nxt := l.input[l.pos+1]
			if isDigit(nxt) {
				l.pos += 2
				continue
			}
			if (nxt == '+' || nxt == '-') && l.pos+2 < len(l.input) && isDigit(l.input[l.pos+2]) {
				l.pos += 3
				continue
			}
		}
		break
	}
	text := l.input[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, errf(start, "invalid number %q", text)
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.input) {
		c := rune(l.input[l.pos])
		if isIdentStart(c) || isDigit(byte(c)) {
			l.pos++
			continue
		}
		// Embedded dots join sub-primitive names: x.s, y.e.
		if c == '.' && l.pos+1 < len(l.input) && isIdentStart(rune(l.input[l.pos+1])) {
			l.pos += 2
			continue
		}
		break
	}
	return token{kind: tokIdent, text: strings.ToLower(l.input[start:l.pos]), pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}
