package regexlang

import (
	"math/rand"
	"strings"
	"testing"

	"shapesearch/internal/shape"
)

func mustParse(t *testing.T, s string) shape.Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseSimpleSegments(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String form
	}{
		{"[p=up]", "[p=up]"},
		{"[p=down]", "[p=down]"},
		{"[p=flat]", "[p=flat]"},
		{"[p=45]", "[p=45]"},
		{"[p=-20]", "[p=-20]"},
		{"[p=*]", "[p=*]"},
		{"[x.s=2, x.e=5, p=up]", "[x.s=2, x.e=5, p=up]"},
		{"[x.s=2,x.e=10,y.s=10,y.e=100]", "[x.s=2, x.e=10, y.s=10, y.e=100]"},
		{"[p=up, m=>>]", "[p=up, m=>>]"},
		{"[p=up, m={2,}]", "[p=up, m={2,}]"},
		{"[p=up, m={,2}]", "[p=up, m={,2}]"},
		{"[p=up, m={2,5}]", "[p=up, m={2,5}]"},
		{"[p=up, m=2]", "[p=up, m={2}]"},
		{"[p=up, m={3}]", "[p=up, m={3}]"},
		{"[x.s=., x.e=.+3, p=up]", "[x.s=., x.e=.+3, p=up]"},
		{"[p=$0, m=<]", "[p=$0, m=<]"},
		{"[p=$-, m=>]", "[p=$-, m=>]"},
		{"[p=$+]", "[p=$+]"},
		{"[p=up, m=<0.5]", "[p=up, m=<0.5]"},
		{"[p=up, m=>2]", "[p=up, m=>2]"},
		{"[v=(2:10,3:14,10:100)]", "[v=(2:10,3:14,10:100)]"},
		{"[p=myshape]", "[p=myshape]"},
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseOperators(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"[p=up][p=down]", "[p=up][p=down]"},
		{"[p=up] ⊗ [p=down]", "[p=up][p=down]"},
		{"[p=up] ; [p=down] ; [p=up]", "[p=up][p=down][p=up]"},
		{"[p=up] & [p=down]", "[p=up] & [p=down]"},
		{"[p=up] ⊙ [p=down]", "[p=up] & [p=down]"},
		{"[p=up] | [p=down]", "[p=up] | [p=down]"},
		{"[p=up] ⊕ [p=down]", "[p=up] | [p=down]"},
		{"![p=flat]", "![p=flat]"},
		{"!([p=up][p=down])", "!([p=up][p=down])"},
		{"[p=up]([p=flat] | [p=down][p=up])", "[p=up]([p=flat] | [p=down][p=up])"},
		{"[p=up] and [p=down]", "[p=up] & [p=down]"},
		{"[p=up] or [p=down]", "[p=up] | [p=down]"},
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBareShorthands(t *testing.T) {
	q := mustParse(t, "u ; d ; u ; d")
	if got := q.String(); got != "[p=up][p=down][p=up][p=down]" {
		t.Errorf("got %q", got)
	}
	q = mustParse(t, "theta=45 ; d ; u ; d")
	if got := q.String(); got != "[p=45][p=down][p=up][p=down]" {
		t.Errorf("got %q", got)
	}
	// Table 11 style with unicode glyphs and degree sign.
	q = mustParse(t, "(θ = 45° ⊗ d ⊗ u ⊗ d)")
	if got := q.String(); got != "[p=45][p=down][p=up][p=down]" {
		t.Errorf("got %q", got)
	}
	q = mustParse(t, "(d ⊗ (θ = 45° ⊕ θ = -20°) ⊗ f)")
	if got := q.String(); got != "[p=down]([p=45] | [p=-20])[p=flat]" {
		t.Errorf("got %q", got)
	}
}

func TestParsePaperTable11Queries(t *testing.T) {
	// All fuzzy and non-fuzzy queries from Table 11 must parse.
	queries := []string{
		"(θ = 45° ⊗ d ⊗ u ⊗ d)",
		"((u ⊕ d) ⊗ f ⊗ u ⊗ d)",
		"(f ⊗ u ⊗ d ⊗ f)",
		"(d ⊗ (θ = 45° ⊕ θ = -20°) ⊗ f)",
		"(d ⊗ θ = 45° ⊗ d)",
		"(u ⊗ d ⊗ u)",
		"(d ⊗ (u ⊕ (f ⊗ d)))",
		"((u ⊕ d) ⊗ (u ⊕ d) ⊗ f)",
		"(f ⊗ d ⊗ u ⊗ f)",
		"(u ⊗ d ⊗ u ⊗ f)",
		"(u ⊗ f ⊗ ((θ = 45° ⊗ θ = 60°) ⊕ (u ⊗ d)))",
		"(u ⊗ d ⊗ f ⊗ u)",
		"(d ⊗ u ⊗ d ⊗ f)",
		"[p{down},x.s = 1,x.e = 4] ⊗ [p{up},x.s = 4,x.e = 10] ⊗ [p{down},x.s = 10,x.e = 12]",
		"[p{down},x.s = 50,x.e = 100]",
		"[p{down},x.s = 200,x.e = 400] ⊗ [p{up},x.s = 800,x.e = 850]",
		"[p{up},x.s = 60,x.e = 80]",
	}
	for _, s := range queries {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestParseNestedPattern(t *testing.T) {
	// The nesting example from Section 3.2.
	in := "[x.s=2, x.e=10, p=[[x.s=., x.e=.+4, p=[[p=up][p=down]]]]]"
	q := mustParse(t, in)
	segs := q.Root.Segments()
	if len(segs) != 1 {
		t.Fatalf("expected 1 top-level segment, got %d", len(segs))
	}
	if segs[0].Pat.Kind != shape.PatNested {
		t.Fatal("expected nested pattern")
	}
	inner := segs[0].Pat.Sub
	if inner.Kind != shape.NodeSegment || inner.Seg.Pat.Kind != shape.PatNested {
		t.Fatal("expected doubly nested pattern")
	}
	if !inner.Seg.Loc.HasIterator() {
		t.Fatal("inner segment should carry the iterator")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "expected a shape expression"},
		{"[", "expected"},
		{"[p=up", "expected ']'"},
		{"[q=up]", "unknown segment primitive"},
		{"[p=up] extra ]", "unexpected"},
		{"[p=up] @", "unexpected character"},
		{"[m=>>]", "no pattern"},
		{"[p=95]", "slope pattern must be in (-90, 90)"},
		{"[x.s=5, x.e=2, p=up]", "must not exceed"},
		{"[p=$x]", "expected segment index"},
		{"[p=up, m={5,2}]", "min (5) exceeds max (2)"},
		{"[v=(1:2,", "expected"},
		{"((u)", "expected ')'"},
		{"[p=up, m={1.5}]", "integer count"},
		{"u ⊗", "expected a shape expression"},
		{"[x.s=.+2, x.e=.+3, p=up]", "must not carry an offset"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.in, err, c.want)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("[p=up] @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T", err)
	}
	if se.Pos != 7 {
		t.Errorf("error position = %d, want 7", se.Pos)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("[")
}

// randomQuery builds a random valid query tree for round-trip testing.
func randomQuery(r *rand.Rand, depth int) *shape.Node {
	if depth <= 0 || r.Intn(3) == 0 {
		return randomSegment(r)
	}
	n := 2 + r.Intn(2)
	children := make([]*shape.Node, n)
	for i := range children {
		children[i] = randomQuery(r, depth-1)
	}
	switch r.Intn(4) {
	case 0:
		return shape.Concat(children...)
	case 1:
		return shape.And(children...)
	case 2:
		return shape.Or(children...)
	default:
		return shape.Not(children[0])
	}
}

func randomSegment(r *rand.Rand) *shape.Node {
	var seg shape.Segment
	switch r.Intn(5) {
	case 0:
		seg.Pat = shape.Pattern{Kind: shape.PatUp}
	case 1:
		seg.Pat = shape.Pattern{Kind: shape.PatDown}
	case 2:
		seg.Pat = shape.Pattern{Kind: shape.PatFlat}
	case 3:
		seg.Pat = shape.Pattern{Kind: shape.PatSlope, Slope: float64(r.Intn(170)-85) / 2}
	case 4:
		seg.Pat = shape.Pattern{Kind: shape.PatUDP, Name: "shapea"}
	}
	if r.Intn(3) == 0 {
		a := float64(r.Intn(50))
		seg.Loc.XS = shape.Lit(a)
		seg.Loc.XE = shape.Lit(a + 1 + float64(r.Intn(50)))
	}
	switch r.Intn(4) {
	case 0:
		seg.Mod = shape.Modifier{Kind: shape.ModMuchMore}
	case 1:
		seg.Mod = shape.Modifier{Kind: shape.ModQuantifier, Min: 1 + r.Intn(3), HasMin: true}
	case 2:
		seg.Mod = shape.Modifier{Kind: shape.ModLessFactor, Factor: 0.5}
	}
	return shape.Seg(seg)
}

// TestRoundTrip: for random valid queries, Parse(q.String()) must reproduce
// the identical tree. This pins the formatter and parser to each other.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		orig := shape.Query{Root: randomQuery(r, 3)}
		if orig.Validate() != nil {
			continue
		}
		text := orig.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", text, err)
		}
		if !parsed.Root.Equal(orig.Root) {
			t.Fatalf("round-trip mismatch:\n orig: %s\n back: %s", text, parsed.String())
		}
	}
}

// TestIdempotentFormat: String of a parsed query re-parses to the same string.
func TestIdempotentFormat(t *testing.T) {
	inputs := []string{
		"u;d;u",
		"[p=up, m={2,}] & ![p=flat]",
		"(u | d) ; f",
		"[x.s=., x.e=.+3, p=up]",
		"[v=(0:1,1:5,2:3)]",
		"[p=$0, m=<0.5]",
	}
	for _, in := range inputs {
		q := mustParse(t, in)
		s1 := q.String()
		q2 := mustParse(t, s1)
		if s2 := q2.String(); s1 != s2 {
			t.Errorf("format not idempotent: %q -> %q", s1, s2)
		}
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	a := mustParse(t, "[p=up][p=down]")
	b := mustParse(t, "  [ p = up ]\n\t[ p = down ]  ")
	if !a.Root.Equal(b.Root) {
		t.Error("whitespace should not affect parsing")
	}
}

func TestParseOptional(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"u?", "[p=up]?"},
		{"u? ; d", "[p=up]?[p=down]"},
		{"u?;d;u?;d;u?", "[p=up]?[p=down][p=up]?[p=down][p=up]?"},
		{"(u;d)? ; f", "([p=up][p=down])?[p=flat]"},
		{"[p=up, m=>>]? ; d", "[p=up, m=>>]?[p=down]"},
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form reparses to the same tree.
		rt := mustParse(t, q.String())
		if !rt.Root.Equal(q.Root) {
			t.Errorf("%q: canonical form %q does not round-trip", c.in, q.String())
		}
	}
	// The expansion itself: u?;d yields the with- and without-u chains.
	n, err := shape.Normalize(mustParse(t, "u? ; d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 2 {
		t.Fatalf("u?;d normalized to %d alternatives, want 2", len(n.Alternatives))
	}
	// A dangling ? with nothing to modify is a syntax error.
	if _, err := Parse("? ; d"); err == nil {
		t.Error("leading '?' must not parse")
	}
}
