package regexlang

import (
	"math"

	"shapesearch/internal/shape"
)

// Parse parses a visual regular expression into a validated ShapeQuery.
func Parse(input string) (shape.Query, error) {
	p := &parser{lex: &lexer{input: input}}
	if err := p.advance(); err != nil {
		return shape.Query{}, err
	}
	root, err := p.parseOr()
	if err != nil {
		return shape.Query{}, err
	}
	if p.cur.kind != tokEOF {
		return shape.Query{}, errf(p.cur.pos, "unexpected %s after end of query", p.cur.kind)
	}
	q := shape.Query{Root: root}
	if err := q.Validate(); err != nil {
		return shape.Query{}, err
	}
	return q, nil
}

// MustParse is Parse for statically known-good queries; it panics on error.
// Intended for tests and example code.
func MustParse(input string) shape.Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, errf(p.cur.pos, "expected %s, found %s", kind, p.cur.kind)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// parseOr handles the lowest-precedence operator: Q ⊕ Q.
func (p *parser) parseOr() (*shape.Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*shape.Node{left}
	for p.cur.kind == tokOr || (p.cur.kind == tokIdent && p.cur.text == "or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	return shape.Or(children...), nil
}

// parseAnd handles Q ⊙ Q.
func (p *parser) parseAnd() (*shape.Node, error) {
	left, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	children := []*shape.Node{left}
	for p.cur.kind == tokAnd || (p.cur.kind == tokIdent && p.cur.text == "and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	return shape.And(children...), nil
}

// parseCat handles CONCAT: explicit ⊗ / ";", or juxtaposition
// ("[p=up][p=down]").
func (p *parser) parseCat() (*shape.Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []*shape.Node{left}
	for {
		if p.cur.kind == tokConcat {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if !p.startsPrimary() {
			break
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	return shape.Concat(children...), nil
}

func (p *parser) startsPrimary() bool {
	switch p.cur.kind {
	case tokLBracket, tokLParen, tokBang:
		return true
	case tokIdent:
		return p.cur.text != "and" && p.cur.text != "or"
	default:
		return false
	}
}

func (p *parser) parseUnary() (*shape.Node, error) {
	if p.cur.kind == tokBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return shape.Not(child), nil
	}
	node, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Postfix optional: u?, (u;d)? — the sub-shape may be absent, expanding
	// the query into alternative chains with and without it.
	for p.cur.kind == tokQuestion {
		if err := p.advance(); err != nil {
			return nil, err
		}
		node = shape.Optional(node)
	}
	return node, nil
}

func (p *parser) parsePrimary() (*shape.Node, error) {
	switch p.cur.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokLBracket:
		return p.parseBracket()
	case tokIdent:
		return p.parseBare()
	default:
		return nil, errf(p.cur.pos, "expected a shape expression, found %s", p.cur.kind)
	}
}

// parseBare handles bare pattern shorthands outside brackets: up, u, down,
// d, flat, f, *, empty, theta=NUM, or a user-defined pattern name.
func (p *parser) parseBare() (*shape.Node, error) {
	name := p.cur.text
	pos := p.cur.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch name {
	case "up", "u":
		return shape.PatternSeg(shape.PatUp), nil
	case "down", "d":
		return shape.PatternSeg(shape.PatDown), nil
	case "flat", "f":
		return shape.PatternSeg(shape.PatFlat), nil
	case "*", "any":
		return shape.PatternSeg(shape.PatAny), nil
	case "empty":
		return shape.PatternSeg(shape.PatEmpty), nil
	case "theta", "slope":
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		deg, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		return shape.SlopeSeg(deg), nil
	default:
		if name == "p" || name == "m" || name == "v" || len(name) > 1 && (name[1] == '.') {
			return nil, errf(pos, "segment primitives like %q must appear inside brackets", name)
		}
		return shape.Seg(shape.Segment{Pat: shape.Pattern{Kind: shape.PatUDP, Name: name}}), nil
	}
}

// parseBracket parses a MATCH segment: [key=value, ...].
func (p *parser) parseBracket() (*shape.Node, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	var seg shape.Segment
	for {
		if p.cur.kind == tokRBracket || p.cur.kind == tokEOF {
			break
		}
		if err := p.parseKV(&seg); err != nil {
			return nil, err
		}
		if p.cur.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return shape.Seg(seg), nil
}

func (p *parser) parseKV(seg *shape.Segment) error {
	key, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	switch key.text {
	case "x.s":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		c, err := p.parseCoord()
		if err != nil {
			return err
		}
		seg.Loc.XS = c
	case "x.e":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		c, err := p.parseCoord()
		if err != nil {
			return err
		}
		seg.Loc.XE = c
	case "y.s":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		v, err := p.parseSignedNumber()
		if err != nil {
			return err
		}
		seg.Loc.YS = shape.Lit(v)
	case "y.e":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		v, err := p.parseSignedNumber()
		if err != nil {
			return err
		}
		seg.Loc.YE = shape.Lit(v)
	case "p":
		// Accept both p=value and the paper's table typography p{value}.
		if p.cur.kind == tokLBrace {
			if err := p.advance(); err != nil {
				return err
			}
			pat, err := p.parsePatternValue()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return err
			}
			seg.Pat = pat
			return nil
		}
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		pat, err := p.parsePatternValue()
		if err != nil {
			return err
		}
		seg.Pat = pat
	case "m":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		mod, err := p.parseModifierValue()
		if err != nil {
			return err
		}
		seg.Mod = mod
	case "v":
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		pts, err := p.parseSketchValue()
		if err != nil {
			return err
		}
		seg.Sketch = pts
	default:
		return errf(key.pos, "unknown segment primitive %q (want x.s, x.e, y.s, y.e, p, m, or v)", key.text)
	}
	return nil
}

func (p *parser) parseCoord() (shape.Coord, error) {
	if p.cur.kind == tokDot {
		if err := p.advance(); err != nil {
			return shape.Coord{}, err
		}
		if p.cur.kind == tokPlus {
			if err := p.advance(); err != nil {
				return shape.Coord{}, err
			}
			n, err := p.parseSignedNumber()
			if err != nil {
				return shape.Coord{}, err
			}
			return shape.IterCoord(n), nil
		}
		return shape.IterCoord(0), nil
	}
	v, err := p.parseSignedNumber()
	if err != nil {
		return shape.Coord{}, err
	}
	return shape.Lit(v), nil
}

func (p *parser) parsePatternValue() (shape.Pattern, error) {
	switch p.cur.kind {
	case tokIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return shape.Pattern{}, err
		}
		switch name {
		case "up", "u":
			return shape.Pattern{Kind: shape.PatUp}, nil
		case "down", "d":
			return shape.Pattern{Kind: shape.PatDown}, nil
		case "flat", "f":
			return shape.Pattern{Kind: shape.PatFlat}, nil
		case "*", "any":
			return shape.Pattern{Kind: shape.PatAny}, nil
		case "empty":
			return shape.Pattern{Kind: shape.PatEmpty}, nil
		default:
			return shape.Pattern{Kind: shape.PatUDP, Name: name}, nil
		}
	case tokNumber, tokMinus:
		deg, err := p.parseSignedNumber()
		if err != nil {
			return shape.Pattern{}, err
		}
		return shape.Pattern{Kind: shape.PatSlope, Slope: deg}, nil
	case tokDollar:
		if err := p.advance(); err != nil {
			return shape.Pattern{}, err
		}
		switch p.cur.kind {
		case tokMinus:
			if err := p.advance(); err != nil {
				return shape.Pattern{}, err
			}
			return shape.Pattern{Kind: shape.PatPosition, Ref: shape.PosRef{Kind: shape.RefPrev}}, nil
		case tokPlus:
			if err := p.advance(); err != nil {
				return shape.Pattern{}, err
			}
			return shape.Pattern{Kind: shape.PatPosition, Ref: shape.PosRef{Kind: shape.RefNext}}, nil
		case tokNumber:
			idx := int(p.cur.num)
			if float64(idx) != p.cur.num || idx < 0 {
				return shape.Pattern{}, errf(p.cur.pos, "position reference must be a non-negative integer")
			}
			if err := p.advance(); err != nil {
				return shape.Pattern{}, err
			}
			return shape.Pattern{Kind: shape.PatPosition, Ref: shape.PosRef{Kind: shape.RefAbs, Index: idx}}, nil
		default:
			return shape.Pattern{}, errf(p.cur.pos, "expected segment index, '-' or '+' after '$'")
		}
	case tokLBracket:
		// Nested sub-query pattern: p=[[p=up][p=down]].
		if err := p.advance(); err != nil {
			return shape.Pattern{}, err
		}
		sub, err := p.parseOr()
		if err != nil {
			return shape.Pattern{}, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return shape.Pattern{}, err
		}
		return shape.Pattern{Kind: shape.PatNested, Sub: sub}, nil
	default:
		return shape.Pattern{}, errf(p.cur.pos, "expected a pattern value, found %s", p.cur.kind)
	}
}

func (p *parser) parseModifierValue() (shape.Modifier, error) {
	switch p.cur.kind {
	case tokGTGT:
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		return shape.Modifier{Kind: shape.ModMuchMore}, nil
	case tokLTLT:
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		return shape.Modifier{Kind: shape.ModMuchLess}, nil
	case tokGT:
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		if p.cur.kind == tokNumber {
			f := p.cur.num
			if err := p.advance(); err != nil {
				return shape.Modifier{}, err
			}
			return shape.Modifier{Kind: shape.ModMoreFactor, Factor: f}, nil
		}
		return shape.Modifier{Kind: shape.ModMore}, nil
	case tokLT:
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		if p.cur.kind == tokNumber {
			f := p.cur.num
			if err := p.advance(); err != nil {
				return shape.Modifier{}, err
			}
			return shape.Modifier{Kind: shape.ModLessFactor, Factor: f}, nil
		}
		return shape.Modifier{Kind: shape.ModLess}, nil
	case tokEq:
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		return shape.Modifier{Kind: shape.ModEqual}, nil
	case tokNumber:
		// m=2 means "exactly 2 occurrences" (Section 3.1).
		n, err := p.parseCount()
		if err != nil {
			return shape.Modifier{}, err
		}
		return shape.Modifier{Kind: shape.ModQuantifier, Min: n, Max: n, HasMin: true, HasMax: true}, nil
	case tokLBrace:
		return p.parseQuantifier()
	default:
		return shape.Modifier{}, errf(p.cur.pos, "expected a modifier value, found %s", p.cur.kind)
	}
}

// parseQuantifier parses {n}, {n,}, {,m} and {n,m}.
func (p *parser) parseQuantifier() (shape.Modifier, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return shape.Modifier{}, err
	}
	mod := shape.Modifier{Kind: shape.ModQuantifier}
	if p.cur.kind == tokNumber {
		n, err := p.parseCount()
		if err != nil {
			return shape.Modifier{}, err
		}
		mod.Min, mod.HasMin = n, true
	}
	if p.cur.kind == tokComma {
		if err := p.advance(); err != nil {
			return shape.Modifier{}, err
		}
		if p.cur.kind == tokNumber {
			n, err := p.parseCount()
			if err != nil {
				return shape.Modifier{}, err
			}
			mod.Max, mod.HasMax = n, true
		}
	} else if mod.HasMin {
		// {n} is shorthand for exactly n.
		mod.Max, mod.HasMax = mod.Min, true
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return shape.Modifier{}, err
	}
	return mod, nil
}

func (p *parser) parseSketchValue() ([]shape.Point, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var pts []shape.Point
	for {
		x, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		y, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		pts = append(pts, shape.Point{X: x, Y: y})
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return pts, nil
}

func (p *parser) parseSignedNumber() (float64, error) {
	neg := false
	if p.cur.kind == tokMinus {
		neg = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

func (p *parser) parseCount() (int, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n := int(t.num)
	if float64(n) != t.num || n < 0 || t.num > math.MaxInt32 {
		return 0, errf(t.pos, "expected a non-negative integer count, found %v", t.num)
	}
	return n, nil
}
