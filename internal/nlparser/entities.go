// Package nlparser translates natural-language queries ("show me genes
// that are rising, then going down, and then increasing") into ShapeQuery
// trees, implementing Section 4 of the paper: POS-based noise filtering, a
// CRF (or rule-based) shape-entity tagger with the Table 3 feature set,
// synonym/semantic value mapping, ShapeQuery tree generation through the
// algebra's grammar, and the Table 4 ambiguity resolution rules.
package nlparser

import (
	"shapesearch/internal/pos"
	"shapesearch/internal/text"
)

// Entity labels assigned to tokens. EntNoise is the background class.
const (
	EntPattern = "P"   // pattern word: rising, falling, stable, peak…
	EntMod     = "M"   // modifier word: sharply, gradually, at least…
	EntCount   = "CNT" // occurrence count: twice, 2 (peaks)
	EntXS      = "XS"  // x start value
	EntXE      = "XE"  // x end value
	EntYS      = "YS"  // y start value
	EntYE      = "YE"  // y end value
	EntWidth   = "W"   // window width value
	EntConcat  = "CAT" // sequence connective: then, followed by…
	EntAnd     = "AND"
	EntOr      = "OR"
	EntNot     = "NOT"
	EntNoise   = "O"
)

// AllEntityLabels lists every label the taggers emit.
func AllEntityLabels() []string {
	return []string{EntPattern, EntMod, EntCount, EntXS, EntXE, EntYS, EntYE,
		EntWidth, EntConcat, EntAnd, EntOr, EntNot, EntNoise}
}

// TaggedToken pairs a token with its POS tag and entity label — the
// intermediate representation shown in the correction panel.
type TaggedToken struct {
	Token  text.Token
	POS    pos.Tag
	Entity string
}

// Tagger assigns entity labels to a token sequence.
type Tagger interface {
	Tag(tokens []text.Token, tags []pos.Tag) []string
}
