package nlparser

import (
	"math/rand"
	"strconv"
	"strings"

	"shapesearch/internal/crf"
)

// LabeledQuery is one training example: a natural-language query and a gold
// entity label per token.
type LabeledQuery struct {
	Query  string
	Labels []string
}

// GenerateCorpus synthesizes n labeled natural-language queries in the
// style of the paper's Mechanical Turk corpus: crowd-worker-like phrasings
// of pattern sequences with varying noise words, connectives, modifiers,
// locations, widths and quantifiers. It substitutes for the unavailable
// 250-query MTurk dataset (see DESIGN.md §3); the paper's experiment needs
// only the entity/noise structure, which these templates reproduce.
func GenerateCorpus(n int, seed int64) []LabeledQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]LabeledQuery, 0, n)
	for len(out) < n {
		out = append(out, generateOne(rng))
	}
	return out
}

// wl is a word with its gold label.
type wl struct{ w, l string }

func generateOne(rng *rand.Rand) LabeledQuery {
	var parts []wl
	parts = append(parts, prefix(rng)...)
	steps := 1 + rng.Intn(3)
	for s := 0; s < steps; s++ {
		if s > 0 {
			parts = append(parts, connective(rng)...)
		}
		parts = append(parts, step(rng)...)
	}
	if rng.Intn(4) == 0 {
		parts = append(parts, suffix(rng)...)
	}
	words := make([]string, len(parts))
	labels := make([]string, len(parts))
	for i, p := range parts {
		words[i] = p.w
		labels[i] = p.l
	}
	return LabeledQuery{Query: strings.Join(words, " "), Labels: labels}
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

func noise(words ...string) []wl {
	out := make([]wl, len(words))
	for i, w := range words {
		out[i] = wl{w, EntNoise}
	}
	return out
}

func prefix(rng *rand.Rand) []wl {
	options := [][]wl{
		noise("show", "me", "genes", "that", "are"),
		noise("find", "stocks", "that", "are"),
		noise("i", "want", "cities", "where", "temperature", "is"),
		noise("display", "products", "with", "sales"),
		noise("find", "objects", "whose", "luminosity", "is"),
		noise("which", "trends", "are"),
		{},
	}
	return pick(rng, options)
}

func suffix(rng *rand.Rand) []wl {
	options := [][]wl{
		noise("over", "the", "year"),
		noise("in", "the", "data"),
		noise("please"),
	}
	return pick(rng, options)
}

func connective(rng *rand.Rand) []wl {
	options := [][]wl{
		{{",", EntNoise}, {"then", EntConcat}},
		{{"and", EntNoise}, {"then", EntConcat}},
		{{"followed", EntConcat}, {"by", EntNoise}},
		{{"then", EntConcat}},
		{{"next", EntConcat}},
		{{"and", EntAnd}},
		{{"or", EntOr}},
		{{"and", EntNoise}, {"afterwards", EntConcat}},
	}
	return pick(rng, options)
}

var patternWords = map[string][]string{
	"up":     {"rising", "increasing", "growing", "climbing", "going-up", "rises", "increases"},
	"down":   {"falling", "decreasing", "declining", "dropping", "falls", "decreases"},
	"flat":   {"stable", "flat", "steady", "constant", "plateau"},
	"peak":   {"peak", "spike", "peaks", "spikes"},
	"valley": {"dip", "valley", "trough", "dips"},
}

func step(rng *rand.Rand) []wl {
	var parts []wl
	kindRoll := rng.Intn(10)
	switch {
	case kindRoll < 6: // plain pattern, optionally modified / located
		if rng.Intn(3) == 0 {
			parts = append(parts, wl{pick(rng, []string{"sharply", "rapidly", "gradually", "slowly", "steeply"}), EntMod})
		}
		dir := pick(rng, []string{"up", "down", "flat"})
		parts = append(parts, wl{pick(rng, patternWords[dir]), EntPattern})
		switch rng.Intn(4) {
		case 0:
			parts = append(parts, location(rng)...)
		case 1:
			parts = append(parts, width(rng)...)
		}
	case kindRoll < 8: // quantified occurrence: "at least 2 peaks"
		switch rng.Intn(3) {
		case 0:
			parts = append(parts, noise("at")...)
			parts = append(parts, wl{"least", EntMod})
		case 1:
			parts = append(parts, noise("at")...)
			parts = append(parts, wl{"most", EntMod})
		default:
			if rng.Intn(2) == 0 {
				parts = append(parts, wl{"exactly", EntMod})
			}
		}
		cnt := 1 + rng.Intn(4)
		parts = append(parts, wl{strconv.Itoa(cnt), EntCount})
		kind := pick(rng, []string{"peak", "valley"})
		parts = append(parts, wl{pick(rng, patternWords[kind]), EntPattern})
		if rng.Intn(3) == 0 {
			parts = append(parts, width(rng)...)
		}
	case kindRoll < 9: // "rises twice"
		dir := pick(rng, []string{"up", "down"})
		parts = append(parts, wl{pick(rng, patternWords[dir]), EntPattern})
		parts = append(parts, wl{pick(rng, []string{"twice", "thrice"}), EntCount})
	default: // negated pattern
		parts = append(parts, wl{"not", EntNot})
		parts = append(parts, wl{pick(rng, patternWords["flat"]), EntPattern})
	}
	return parts
}

func location(rng *rand.Rand) []wl {
	a := rng.Intn(50)
	b := a + 1 + rng.Intn(50)
	sa, sb := strconv.Itoa(a), strconv.Itoa(b)
	options := [][]wl{
		{{"from", EntNoise}, {sa, EntXS}, {"to", EntNoise}, {sb, EntXE}},
		{{"between", EntNoise}, {sa, EntXS}, {"and", EntNoise}, {sb, EntXE}},
		{{"from", EntNoise}, {"x", EntNoise}, {"=", EntNoise}, {sa, EntXS},
			{"to", EntNoise}, {"x", EntNoise}, {"=", EntNoise}, {sb, EntXE}},
		{{"from", EntNoise}, {pickMonth(rng, 1), EntXS}, {"to", EntNoise}, {pickMonth(rng, 7), EntXE}},
	}
	return pick(rng, options)
}

func pickMonth(rng *rand.Rand, base int) string {
	months := []string{"january", "february", "march", "april", "may", "june",
		"july", "august", "september", "october", "november", "december"}
	return months[(base-1+rng.Intn(3))%12]
}

func width(rng *rand.Rand) []wl {
	w := 2 + rng.Intn(9)
	sw := strconv.Itoa(w)
	unit := pick(rng, []string{"months", "days", "weeks", "points"})
	options := [][]wl{
		{{"over", EntNoise}, {"a", EntNoise}, {"span", EntWidth}, {"of", EntNoise},
			{sw, EntWidth}, {unit, EntNoise}},
		{{"within", EntNoise}, {sw, EntWidth}, {unit, EntNoise}},
		{{"over", EntNoise}, {sw, EntWidth}, {unit, EntNoise}},
	}
	return pick(rng, options)
}

// ToSequences converts labeled queries into CRF training sequences.
func ToSequences(corpus []LabeledQuery) []crf.Sequence {
	seqs := make([]crf.Sequence, 0, len(corpus))
	for _, lq := range corpus {
		seqs = append(seqs, SequenceFor(lq.Query, lq.Labels))
	}
	return seqs
}

// CrossValidate trains and evaluates with k-fold cross validation,
// returning the averaged metrics — the paper's protocol for its 81% F1
// measurement.
func CrossValidate(corpus []LabeledQuery, folds int, cfg crf.TrainConfig) (crf.Metrics, error) {
	if folds < 2 {
		folds = 5
	}
	seqs := ToSequences(corpus)
	var sum crf.Metrics
	for f := 0; f < folds; f++ {
		var train, test []crf.Sequence
		for i, s := range seqs {
			if i%folds == f {
				test = append(test, s)
			} else {
				train = append(train, s)
			}
		}
		model, err := crf.Train(train, cfg)
		if err != nil {
			return crf.Metrics{}, err
		}
		m := model.Evaluate(test, EntNoise)
		sum.Precision += m.Precision
		sum.Recall += m.Recall
		sum.F1 += m.F1
		sum.Accuracy += m.Accuracy
	}
	n := float64(folds)
	return crf.Metrics{
		Precision: sum.Precision / n,
		Recall:    sum.Recall / n,
		F1:        sum.F1 / n,
		Accuracy:  sum.Accuracy / n,
	}, nil
}
