package nlparser

import (
	"fmt"
	"strings"

	"shapesearch/internal/pos"
	"shapesearch/internal/text"
)

// Features implements the Table 3 feature set for one token position:
// POS-tag context, word context, predicted entities (synonym matches, the
// weak-supervision "bootstrapping" features), time/space preposition
// distances, punctuation distances, conjunction distances, and the
// miscellaneous features (d(x), d(y), d(next), suffixes, query length).
func Features(tokens []text.Token, tags []pos.Tag) [][]string {
	n := len(tokens)
	predicted := make([]string, n)
	for i, tok := range tokens {
		predicted[i] = predictEntity(tok)
	}
	lenBucket := bucket(n / 4)

	feats := make([][]string, n)
	for i := range tokens {
		var fs []string
		add := func(format string, args ...any) {
			fs = append(fs, fmt.Sprintf(format, args...))
		}
		w := tokens[i].Text
		add("w=%s", w)
		add("stem=%s", text.Stem(w))
		add("pos=%s", tags[i])
		add("pos-=%s", tagAt(tags, i-1))
		add("pos+=%s", tagAt(tags, i+1))
		add("w-=%s", wordAt(tokens, i-1))
		add("w+=%s", wordAt(tokens, i+1))
		add("w--=%s", wordAt(tokens, i-2))
		add("w++=%s", wordAt(tokens, i+2))
		if tokens[i].IsNumber {
			add("isnum")
		}
		if _, ok := text.MonthNumber(w); ok {
			add("ismonth")
		}
		if _, ok := text.SmallNumber(w); ok {
			add("issmallnum")
		}
		// Predicted-entity features (synonym bootstrap).
		if predicted[i] != "" {
			add("pe=%s", predicted[i])
		}
		add("pe-=%s", predAt(predicted, i-1))
		add("pe+=%s", predAt(predicted, i+1))
		add("d(pe+)=%s", bucket(distForward(predicted, i, func(s string) bool { return s != "" })))
		add("d(pe-)=%s", bucket(distBackward(predicted, i, func(s string) bool { return s != "" })))
		// Preposition features.
		add("tp+=%s", nearestWord(tokens, i, +1, timePreps))
		add("tp-=%s", nearestWord(tokens, i, -1, timePreps))
		add("sp+=%s", nearestWord(tokens, i, +1, spacePreps))
		add("sp-=%s", nearestWord(tokens, i, -1, spacePreps))
		add("d(tp+)=%s", bucket(distWord(tokens, i, +1, timePreps)))
		add("d(tp-)=%s", bucket(distWord(tokens, i, -1, timePreps)))
		add("d(sp+)=%s", bucket(distWord(tokens, i, +1, spacePreps)))
		add("d(sp-)=%s", bucket(distWord(tokens, i, -1, spacePreps)))
		// Punctuation distances.
		for _, p := range []string{",", ";", "."} {
			add("d(%s+)=%s", p, bucket(distWord(tokens, i, +1, map[string]bool{p: true})))
			add("d(%s-)=%s", p, bucket(distWord(tokens, i, -1, map[string]bool{p: true})))
		}
		// Conjunction distances.
		add("d(and+)=%s", bucket(distWord(tokens, i, +1, map[string]bool{"and": true})))
		add("d(or-)=%s", bucket(distWord(tokens, i, -1, map[string]bool{"or": true})))
		add("d(then+)=%s", bucket(distWord(tokens, i, +1, map[string]bool{"then": true})))
		// Miscellaneous.
		add("d(x)=%s", bucket(distWord(tokens, i, +1, map[string]bool{"x": true})))
		add("d(y)=%s", bucket(distWord(tokens, i, +1, map[string]bool{"y": true})))
		add("d(next)=%s", bucket(distWord(tokens, i, +1, map[string]bool{"next": true})))
		if strings.HasSuffix(w, "ing") {
			add("ends(ing)")
		}
		if strings.HasSuffix(w, "ly") {
			add("ends(ly)")
		}
		add("qlen=%s", lenBucket)
		feats[i] = fs
	}
	return feats
}

var timePreps = map[string]bool{
	"during": true, "until": true, "till": true, "before": true, "after": true,
	"when": true, "while": true,
}

var spacePreps = map[string]bool{
	"from": true, "to": true, "between": true, "at": true, "above": true,
	"below": true, "around": true, "within": true, "over": true, "of": true,
}

// predictEntity is the synonym-match feature: the entity type whose synonym
// list most closely matches the word (Section 4's "predicted-entity").
func predictEntity(tok text.Token) string {
	if tok.IsPunct {
		return ""
	}
	if tok.IsNumber {
		return "NUM"
	}
	if _, ok := text.SmallNumber(tok.Text); ok {
		return "NUM"
	}
	if _, ok := text.MonthNumber(tok.Text); ok {
		return "NUM"
	}
	v, ok := text.MatchValue(tok.Text, []text.EntityValue{
		text.ValUp, text.ValDown, text.ValFlat, text.ValPeak, text.ValValley,
		text.ValSharp, text.ValGradual, text.ValConcat, text.ValAnd, text.ValOr,
		text.ValNot, text.ValAtLeast, text.ValAtMost, text.ValExactly, text.ValWidth,
	})
	if !ok {
		return ""
	}
	return string(v)
}

func tagAt(tags []pos.Tag, i int) pos.Tag {
	if i < 0 {
		return "BOS"
	}
	if i >= len(tags) {
		return "EOS"
	}
	return tags[i]
}

func wordAt(tokens []text.Token, i int) string {
	if i < 0 {
		return "<bos>"
	}
	if i >= len(tokens) {
		return "<eos>"
	}
	return tokens[i].Text
}

func predAt(pred []string, i int) string {
	if i < 0 || i >= len(pred) {
		return ""
	}
	return pred[i]
}

func distForward(xs []string, i int, match func(string) bool) int {
	for d := 1; i+d < len(xs); d++ {
		if match(xs[i+d]) {
			return d
		}
	}
	return -1
}

func distBackward(xs []string, i int, match func(string) bool) int {
	for d := 1; i-d >= 0; d++ {
		if match(xs[i-d]) {
			return d
		}
	}
	return -1
}

func distWord(tokens []text.Token, i, dir int, set map[string]bool) int {
	for d := 1; ; d++ {
		j := i + dir*d
		if j < 0 || j >= len(tokens) {
			return -1
		}
		if set[tokens[j].Text] {
			return d
		}
	}
}

func nearestWord(tokens []text.Token, i, dir int, set map[string]bool) string {
	for d := 1; ; d++ {
		j := i + dir*d
		if j < 0 || j >= len(tokens) {
			return "<none>"
		}
		if set[tokens[j].Text] {
			return tokens[j].Text
		}
	}
}

// bucket discretizes a distance: -1 (absent), 1, 2, 3, 4, or "5+".
func bucket(d int) string {
	switch {
	case d < 0:
		return "none"
	case d >= 5:
		return "5+"
	default:
		return fmt.Sprintf("%d", d)
	}
}
