package nlparser

import (
	"shapesearch/internal/crf"
	"shapesearch/internal/pos"
	"shapesearch/internal/shape"
	"shapesearch/internal/text"
)

// ParseInfo carries the intermediate parse state shown in the correction
// panel: per-token entity tags and the ambiguity resolutions that were
// applied.
type ParseInfo struct {
	Tagged      []TaggedToken
	Resolutions []string
}

// Parser translates natural-language queries into ShapeQueries.
type Parser struct {
	tagger Tagger
}

// NewParser returns a parser using the deterministic rule tagger — the
// no-training default.
func NewParser() *Parser { return &Parser{tagger: RuleTagger{}} }

// NewParserWithModel returns a parser backed by a trained CRF tagger.
func NewParserWithModel(m *crf.Model) *Parser {
	return &Parser{tagger: CRFTagger{Model: m}}
}

// NewParserWithTagger returns a parser with a custom tagger.
func NewParserWithTagger(t Tagger) *Parser { return &Parser{tagger: t} }

// Parse runs the full pipeline: tokenize → POS tag → entity tagging →
// grouping into ShapeSegments → ambiguity resolution → tree generation.
func (p *Parser) Parse(query string) (shape.Query, *ParseInfo, error) {
	tokens := text.Tokenize(query)
	tags := pos.TagTokens(tokens)
	entities := p.tagger.Tag(tokens, tags)
	tagged := make([]TaggedToken, len(tokens))
	for i := range tokens {
		tagged[i] = TaggedToken{Token: tokens[i], POS: tags[i], Entity: entities[i]}
	}
	asm := assemble(tagged)
	asm.resolve()
	q, err := asm.build()
	info := &ParseInfo{Tagged: tagged, Resolutions: asm.resolutions}
	if err != nil {
		return shape.Query{}, info, err
	}
	return q, info, nil
}

// TrainCRF trains a CRF tagger from labeled sequences (for example the
// synthetic corpus from GenerateCorpus) and returns the model.
func TrainCRF(seqs []crf.Sequence, cfg crf.TrainConfig) (*crf.Model, error) {
	return crf.Train(seqs, cfg)
}

// SequenceFor converts a raw query plus gold entity labels into a CRF
// training sequence using the Table 3 features.
func SequenceFor(query string, labels []string) crf.Sequence {
	tokens := text.Tokenize(query)
	tags := pos.TagTokens(tokens)
	return crf.Sequence{Features: Features(tokens, tags), Labels: labels}
}
