package nlparser

import (
	"fmt"

	"shapesearch/internal/shape"
	"shapesearch/internal/text"
)

// protoSegment is a ShapeSegment under construction: entity values
// collected between two operator entities (Section 4, "we first group all
// shape primitive entities between two operator entities into one
// ShapeSegment").
type protoSegment struct {
	pats    []text.EntityValue
	sharp   bool
	gradual bool
	// Quantifier pieces: kind is "atleast", "atmost" or "exact".
	countKind string
	count     int
	hasCount  bool
	xs, xe    *float64
	ys, ye    *float64
	width     *float64
	negated   bool
}

func (p *protoSegment) empty() bool {
	return len(p.pats) == 0 && !p.hasCount && p.xs == nil && p.xe == nil &&
		p.ys == nil && p.ye == nil && p.width == nil && !p.sharp && !p.gradual
}

type opKind int

const (
	opCat opKind = iota
	opAnd
	opOr
)

// assembly is the intermediate list of segments and connectives.
type assembly struct {
	segs []*protoSegment
	// ops[i] connects segs[i] and segs[i+1].
	ops []opKind
	// resolutions logs applied Table 4 disambiguation rules for the
	// correction panel.
	resolutions []string
}

// assemble groups tagged tokens into proto segments split at operator
// entities.
func assemble(tagged []TaggedToken) *assembly {
	a := &assembly{}
	cur := &protoSegment{}
	pendingNot := false
	flush := func(op opKind) {
		if cur.empty() {
			return
		}
		cur.negated = cur.negated || pendingNot
		pendingNot = false
		a.segs = append(a.segs, cur)
		if len(a.segs) > 1 {
			a.ops = append(a.ops, op)
		}
		cur = &protoSegment{}
	}
	lastOp := opCat
	for i, tt := range tagged {
		switch tt.Entity {
		case EntConcat:
			flush(lastOp)
			lastOp = opCat
		case EntAnd:
			flush(lastOp)
			lastOp = opAnd
		case EntOr:
			flush(lastOp)
			lastOp = opOr
		case EntNot:
			// A NOT before any segment content negates the next segment.
			if cur.empty() {
				pendingNot = true
			} else {
				flush(lastOp)
				lastOp = opAnd
				pendingNot = true
			}
		case EntPattern:
			v, ok := text.MatchValue(tt.Token.Text, []text.EntityValue{
				text.ValUp, text.ValDown, text.ValFlat, text.ValPeak, text.ValValley,
			})
			if ok {
				// A second pattern in the same proto segment usually means
				// a new step in the sequence ("rising falling" without a
				// connective): Table 4 rule 1 resolves it later; collect
				// for now.
				cur.pats = append(cur.pats, v)
			}
		case EntMod:
			switch tt.Token.Text {
			case "least":
				cur.countKind = "atleast"
			case "most":
				cur.countKind = "atmost"
			case "exactly", "precisely":
				cur.countKind = "exact"
			default:
				if v, ok := text.MatchValue(tt.Token.Text, []text.EntityValue{text.ValSharp, text.ValGradual}); ok {
					if v == text.ValSharp {
						cur.sharp = true
					} else {
						cur.gradual = true
					}
				}
			}
		case EntCount:
			if n, ok := numberOf(tt.Token); ok {
				cur.count = int(n)
				cur.hasCount = true
			}
		case EntXS:
			if n, ok := numberOf(tt.Token); ok {
				v := n
				cur.xs = &v
			}
		case EntXE:
			if n, ok := numberOf(tt.Token); ok {
				v := n
				cur.xe = &v
			}
		case EntYS:
			if n, ok := numberOf(tt.Token); ok {
				v := n
				cur.ys = &v
			}
		case EntYE:
			if n, ok := numberOf(tt.Token); ok {
				v := n
				cur.ye = &v
			}
		case EntWidth:
			if n, ok := numberOf(tt.Token); ok {
				v := n
				cur.width = &v
			}
		}
		_ = i
	}
	flush(lastOp)
	return a
}

// resolve applies the Table 4 ambiguity resolution rules in place.
func (a *assembly) resolve() {
	// Rule 1: multiple p in one ShapeSegment — move one to an adjacent
	// segment missing p, else split into two segments joined by CONCAT
	// (crowd workers listing steps) when location-free, or OR otherwise.
	for i := 0; i < len(a.segs); i++ {
		seg := a.segs[i]
		for len(seg.pats) > 1 {
			moved := false
			if i+1 < len(a.segs) && len(a.segs[i+1].pats) == 0 {
				a.segs[i+1].pats = append(a.segs[i+1].pats, seg.pats[len(seg.pats)-1])
				seg.pats = seg.pats[:len(seg.pats)-1]
				a.logf("moved extra pattern %q to the next segment", a.segs[i+1].pats[0])
				moved = true
			} else if i > 0 && len(a.segs[i-1].pats) == 0 {
				a.segs[i-1].pats = append(a.segs[i-1].pats, seg.pats[0])
				seg.pats = seg.pats[1:]
				a.logf("moved extra pattern %q to the previous segment", a.segs[i-1].pats[0])
				moved = true
			}
			if !moved {
				// Split: the extra pattern becomes its own segment in
				// sequence.
				extra := &protoSegment{pats: []text.EntityValue{seg.pats[len(seg.pats)-1]}}
				seg.pats = seg.pats[:len(seg.pats)-1]
				a.insertSegAfter(i, extra, opCat)
				a.logf("split segment with multiple patterns into a sequence")
			}
		}
	}
	// Rule 2: m with no p — move the modifier to an adjacent segment that
	// has a pattern but no modifier; else drop it.
	for i, seg := range a.segs {
		if len(seg.pats) > 0 || (!seg.sharp && !seg.gradual && !seg.hasCount) {
			continue
		}
		if seg.xs != nil || seg.xe != nil || seg.ys != nil || seg.ye != nil || seg.width != nil {
			continue // a location-only segment legitimately has no pattern
		}
		target := -1
		if i+1 < len(a.segs) && len(a.segs[i+1].pats) > 0 && !a.segs[i+1].sharp && !a.segs[i+1].gradual {
			target = i + 1
		} else if i > 0 && len(a.segs[i-1].pats) > 0 && !a.segs[i-1].sharp && !a.segs[i-1].gradual {
			target = i - 1
		}
		if target >= 0 {
			a.segs[target].sharp = a.segs[target].sharp || seg.sharp
			a.segs[target].gradual = a.segs[target].gradual || seg.gradual
			if seg.hasCount && !a.segs[target].hasCount {
				a.segs[target].hasCount = true
				a.segs[target].count = seg.count
				a.segs[target].countKind = seg.countKind
			}
			a.logf("moved dangling modifier to an adjacent segment")
		} else {
			a.logf("ignored modifier with no pattern to attach to")
		}
		seg.sharp, seg.gradual, seg.hasCount = false, false, false
	}
	// Rule 3: conflicting location and pattern — an inverted x range is
	// reinterpreted as y values when the pattern direction agrees, else the
	// endpoints are swapped.
	for _, seg := range a.segs {
		if seg.xs != nil && seg.xe != nil && *seg.xs > *seg.xe {
			if hasPat(seg, text.ValDown) && seg.ys == nil && seg.ye == nil {
				seg.ys, seg.ye = seg.xs, seg.xe
				seg.xs, seg.xe = nil, nil
				a.logf("reinterpreted decreasing x range as y values")
			} else {
				seg.xs, seg.xe = seg.xe, seg.xs
				a.logf("swapped inverted x endpoints")
			}
		}
		if seg.ys != nil && seg.ye != nil {
			if hasPat(seg, text.ValUp) && *seg.ys > *seg.ye {
				seg.ys, seg.ye = seg.ye, seg.ys
				a.logf("swapped y endpoints conflicting with a rising pattern")
			}
			if hasPat(seg, text.ValDown) && *seg.ys < *seg.ye {
				seg.ys, seg.ye = seg.ye, seg.ys
				a.logf("swapped y endpoints conflicting with a falling pattern")
			}
		}
	}
	// Rule 4: overlapping CONCAT segments — a following segment whose x
	// start precedes the previous segment's x end becomes y values when
	// missing, else the connective becomes AND.
	for i := 0; i+1 < len(a.segs); i++ {
		if a.ops[i] != opCat {
			continue
		}
		cur, next := a.segs[i], a.segs[i+1]
		if cur.xe == nil || next.xs == nil {
			continue
		}
		if *next.xs < *cur.xe {
			if next.ys == nil && next.ye == nil {
				next.ys, next.ye = next.xs, next.xe
				next.xs, next.xe = nil, nil
				a.logf("reinterpreted overlapping x range as y values")
			} else {
				a.ops[i] = opAnd
				a.logf("replaced CONCAT with AND for overlapping segments")
			}
		}
	}
}

func hasPat(seg *protoSegment, v text.EntityValue) bool {
	for _, p := range seg.pats {
		if p == v {
			return true
		}
	}
	return false
}

func (a *assembly) insertSegAfter(i int, seg *protoSegment, op opKind) {
	a.segs = append(a.segs, nil)
	copy(a.segs[i+2:], a.segs[i+1:])
	a.segs[i+1] = seg
	a.ops = append(a.ops, opCat)
	copy(a.ops[i+1:], a.ops[i:])
	a.ops[i] = op
}

func (a *assembly) logf(format string, args ...any) {
	a.resolutions = append(a.resolutions, fmt.Sprintf(format, args...))
}

// build converts the resolved assembly into a ShapeQuery tree: CONCAT
// separates steps; within a step AND binds tighter than OR.
func (a *assembly) build() (shape.Query, error) {
	if len(a.segs) == 0 {
		return shape.Query{}, fmt.Errorf("nlparser: no shape entities recognized in the query")
	}
	nodes := make([]*shape.Node, len(a.segs))
	for i, seg := range a.segs {
		n, err := buildSegment(seg)
		if err != nil {
			return shape.Query{}, err
		}
		nodes[i] = n
	}
	// Fold with precedence CONCAT > AND > OR, left-associated: split at OR
	// first, then AND, then CONCAT.
	root := foldOps(nodes, a.ops)
	q := shape.Query{Root: root}
	if err := q.Validate(); err != nil {
		return shape.Query{}, fmt.Errorf("nlparser: assembled query is invalid: %w", err)
	}
	return q, nil
}

func foldOps(nodes []*shape.Node, ops []opKind) *shape.Node {
	// Split at the lowest-precedence operator present.
	split := func(kind opKind) ([][]*shape.Node, [][]opKind, bool) {
		var nodeGroups [][]*shape.Node
		var opGroups [][]opKind
		start := 0
		found := false
		for i, op := range ops {
			if op == kind {
				nodeGroups = append(nodeGroups, nodes[start:i+1])
				opGroups = append(opGroups, ops[start:i])
				start = i + 1
				found = true
			}
		}
		if !found {
			return nil, nil, false
		}
		nodeGroups = append(nodeGroups, nodes[start:])
		opGroups = append(opGroups, ops[start:])
		return nodeGroups, opGroups, true
	}
	for _, kind := range []opKind{opOr, opAnd, opCat} {
		if groups, opGroups, ok := split(kind); ok {
			children := make([]*shape.Node, len(groups))
			for i := range groups {
				children[i] = foldOps(groups[i], opGroups[i])
			}
			switch kind {
			case opOr:
				return shape.Or(children...)
			case opAnd:
				return shape.And(children...)
			default:
				return shape.Concat(children...)
			}
		}
	}
	return nodes[0]
}

// buildSegment converts one proto segment into a MATCH node.
func buildSegment(p *protoSegment) (*shape.Node, error) {
	var seg shape.Segment
	if p.xs != nil {
		seg.Loc.XS = shape.Lit(*p.xs)
	}
	if p.xe != nil {
		seg.Loc.XE = shape.Lit(*p.xe)
	}
	if p.ys != nil {
		seg.Loc.YS = shape.Lit(*p.ys)
	}
	if p.ye != nil {
		seg.Loc.YE = shape.Lit(*p.ye)
	}
	if p.width != nil && *p.width >= 1 {
		seg.Loc.XS = shape.IterCoord(0)
		seg.Loc.XE = shape.IterCoord(*p.width)
	}

	var pat text.EntityValue
	if len(p.pats) > 0 {
		pat = p.pats[0]
	}
	switch pat {
	case text.ValUp:
		seg.Pat = shape.Pattern{Kind: shape.PatUp}
	case text.ValDown:
		seg.Pat = shape.Pattern{Kind: shape.PatDown}
	case text.ValFlat:
		seg.Pat = shape.Pattern{Kind: shape.PatFlat}
	case text.ValPeak, text.ValValley:
		first, second := shape.PatUp, shape.PatDown
		if pat == text.ValValley {
			first, second = shape.PatDown, shape.PatUp
		}
		if p.hasCount {
			// "two peaks": count occurrences of the rising (or falling)
			// flank — quantified simple patterns segment efficiently.
			seg.Pat = shape.Pattern{Kind: first}
		} else {
			seg.Pat = shape.Pattern{
				Kind: shape.PatNested,
				Sub: shape.Concat(
					shape.PatternSeg(first),
					shape.PatternSeg(second),
				),
			}
		}
	}

	// Modifier: quantifier beats sharp/gradual when both appear.
	switch {
	case p.hasCount:
		mod := shape.Modifier{Kind: shape.ModQuantifier}
		switch p.countKind {
		case "atleast":
			mod.Min, mod.HasMin = p.count, true
		case "atmost":
			mod.Max, mod.HasMax = p.count, true
		default:
			mod.Min, mod.Max, mod.HasMin, mod.HasMax = p.count, p.count, true, true
		}
		seg.Mod = mod
	case p.sharp:
		if seg.Pat.Kind == shape.PatDown {
			seg.Mod = shape.Modifier{Kind: shape.ModMuchLess}
		} else {
			seg.Mod = shape.Modifier{Kind: shape.ModMuchMore}
		}
	case p.gradual:
		if seg.Pat.Kind == shape.PatDown {
			seg.Mod = shape.Modifier{Kind: shape.ModLess}
		} else {
			seg.Mod = shape.Modifier{Kind: shape.ModMore}
		}
	}

	if seg.Pat.Kind == shape.PatNone && seg.Loc.IsZero() {
		return nil, fmt.Errorf("nlparser: could not derive a pattern or location for a query step")
	}
	node := shape.Seg(seg)
	if p.negated {
		node = shape.Not(node)
	}
	return node, nil
}
