package nlparser

import (
	"shapesearch/internal/crf"
	"shapesearch/internal/pos"
	"shapesearch/internal/text"
)

// RuleTagger is the deterministic synonym-and-context entity tagger. It is
// the default (no training required) and the fallback when no CRF model is
// loaded; it also generates the "predicted-entity" bootstrap signal the CRF
// features build on.
type RuleTagger struct{}

// Tag implements Tagger.
func (RuleTagger) Tag(tokens []text.Token, tags []pos.Tag) []string {
	n := len(tokens)
	out := make([]string, n)
	for i := range out {
		out[i] = EntNoise
	}
	for i, tok := range tokens {
		if tok.IsPunct || pos.IsLikelyNoise(tags[i]) {
			continue
		}
		w := tok.Text
		// Operators first: their common words are unambiguous.
		switch w {
		case "then", "afterwards", "thereafter", "subsequently", "next", "later":
			out[i] = EntConcat
			continue
		case "followed", "following":
			out[i] = EntConcat
			continue
		case "and":
			// "and then" is CONCAT; bare "and" joins patterns.
			if i+1 < n && tokens[i+1].Text == "then" {
				out[i] = EntNoise
			} else {
				out[i] = EntAnd
			}
			continue
		case "or", "either":
			out[i] = EntOr
			continue
		case "not", "never", "without":
			out[i] = EntNot
			continue
		case "while", "simultaneously":
			out[i] = EntAnd
			continue
		}
		// Numbers: role decided by context.
		if num, ok := numberOf(tok); ok {
			out[i] = classifyNumber(tokens, tags, i, num)
			continue
		}
		// Quantifier markers.
		if (w == "least" || w == "most") && i > 0 && tokens[i-1].Text == "at" {
			out[i] = EntMod
			continue
		}
		if w == "exactly" || w == "precisely" {
			out[i] = EntMod
			continue
		}
		if w == "times" || w == "time" || w == "occurrences" {
			continue // unit word, not an entity
		}
		// Width markers ("span of 3 months" / "window of 4").
		if v, ok := text.MatchValue(w, []text.EntityValue{text.ValWidth}); ok && v == text.ValWidth &&
			exactSynonym(w, text.ValWidth) {
			out[i] = EntWidth
			continue
		}
		// Pattern and modifier vocabulary.
		if v, ok := text.MatchValue(w, []text.EntityValue{
			text.ValUp, text.ValDown, text.ValFlat, text.ValPeak, text.ValValley,
		}); ok && plausiblePatternPOS(tags[i]) {
			_ = v
			out[i] = EntPattern
			continue
		}
		if _, ok := text.MatchValue(w, []text.EntityValue{text.ValSharp, text.ValGradual}); ok {
			out[i] = EntMod
			continue
		}
	}
	return out
}

// plausiblePatternPOS: pattern words surface as verbs ("rising"),
// adjectives ("stable"), nouns ("peak", "growth") or adverbs ("upward").
func plausiblePatternPOS(t pos.Tag) bool {
	switch t {
	case pos.Verb, pos.Adj, pos.Noun, pos.Adv:
		return true
	default:
		return false
	}
}

func exactSynonym(w string, v text.EntityValue) bool {
	for _, s := range text.Synonyms(v) {
		if w == s {
			return true
		}
	}
	return false
}

func numberOf(tok text.Token) (float64, bool) {
	if tok.IsNumber {
		return tok.Num, true
	}
	if n, ok := text.SmallNumber(tok.Text); ok {
		return n, true
	}
	if n, ok := text.MonthNumber(tok.Text); ok {
		return n, true
	}
	return 0, false
}

// classifyNumber decides a numeric token's entity from its context:
// "from 2 to 5" (XS/XE), "y=10" (YS), "span of 3" (W), "2 peaks" or
// "rises 2 times" (CNT).
func classifyNumber(tokens []text.Token, tags []pos.Tag, i int, num float64) string {
	prev1 := wordAt(tokens, i-1)
	prev2 := wordAt(tokens, i-2)
	next1 := wordAt(tokens, i+1)

	// Axis-explicit: "x = 5", "y = 10".
	if prev1 == "=" && (prev2 == "x" || prev2 == "y") {
		axisStart := true
		// "to x=5" / "until" implies an end coordinate.
		for d := 3; d <= 5 && i-d >= 0; d++ {
			switch tokens[i-d].Text {
			case "to", "until", "till":
				axisStart = false
			case "from", "between":
				axisStart = true
			}
		}
		if prev2 == "x" {
			if axisStart {
				return EntXS
			}
			return EntXE
		}
		if axisStart {
			return EntYS
		}
		return EntYE
	}
	// Count: "2 peaks", "rises twice", "2 times".
	if next1 == "times" || next1 == "time" || next1 == "occurrences" {
		return EntCount
	}
	if _, isPat := text.MatchValue(next1, []text.EntityValue{text.ValPeak, text.ValValley}); isPat && num == float64(int(num)) && num < 20 {
		if exactAny(next1, text.ValPeak, text.ValValley) {
			return EntCount
		}
	}
	if _, ok := text.SmallNumber(tokens[i].Text); ok && !tokens[i].IsNumber {
		// "twice"/"thrice"/"two" followed by pattern words count occurrences.
		if tokens[i].Text == "twice" || tokens[i].Text == "thrice" || tokens[i].Text == "once" {
			return EntCount
		}
	}
	// Width: "span of 3 months", "window of 4", "width 5", "over 3 months".
	if prev1 == "of" && (exactSynonym(prev2, text.ValWidth) || prev2 == "") {
		if exactSynonym(prev2, text.ValWidth) {
			return EntWidth
		}
	}
	if exactSynonym(prev1, text.ValWidth) {
		return EntWidth
	}
	if next1 == "months" || next1 == "days" || next1 == "weeks" || next1 == "hours" ||
		next1 == "points" || next1 == "years" {
		// "over 3 months" is a width; "from 3 months" would be a location.
		if prev1 == "over" || prev1 == "within" || prev1 == "of" || prev1 == "spanning" {
			return EntWidth
		}
	}
	// Start/end by preposition.
	switch prev1 {
	case "from", "between", "starting", "start", "begin", "beginning":
		return EntXS
	case "to", "until", "till", "ending", "end", "reaching":
		return EntXE
	case "and":
		// "between 2 and 5".
		for d := 2; d <= 4 && i-d >= 0; d++ {
			if tokens[i-d].Text == "between" {
				return EntXE
			}
		}
	}
	return EntNoise
}

func exactAny(w string, vals ...text.EntityValue) bool {
	for _, v := range vals {
		if exactSynonym(w, v) {
			return true
		}
	}
	return false
}

// CRFTagger wraps a trained linear-chain CRF model.
type CRFTagger struct {
	Model *crf.Model
}

// Tag implements Tagger by Viterbi decoding over Table 3 features.
func (t CRFTagger) Tag(tokens []text.Token, tags []pos.Tag) []string {
	if t.Model == nil || len(tokens) == 0 {
		return RuleTagger{}.Tag(tokens, tags)
	}
	return t.Model.Decode(Features(tokens, tags))
}
