package nlparser

import (
	"strings"
	"testing"

	"shapesearch/internal/crf"
	"shapesearch/internal/shape"
	"shapesearch/internal/text"
)

func parseNL(t *testing.T, q string) shape.Query {
	t.Helper()
	query, info, err := NewParser().Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v (info: %+v)", q, err, info)
	}
	return query
}

func TestParseSequence(t *testing.T) {
	// The flagship example from the paper's introduction.
	q := parseNL(t, "show me genes that are rising, then going down, and then increasing")
	want := "[p=up][p=down][p=up]"
	if got := q.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestParseSingle(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"rising", "[p=up]"},
		{"show me stocks that are falling", "[p=down]"},
		{"stable trends", "[p=flat]"},
		{"find genes increasing sharply", "[p=up, m=>>]"},
		{"declining gradually", "[p=down, m=<]"},
		{"find objects with a sharp peak in luminosity", "[p=[[p=up][p=down]], m=>>]"},
		{"show me trends with a dip", "[p=[[p=down][p=up]]]"},
	}
	for _, c := range cases {
		q := parseNL(t, c.in)
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseLocations(t *testing.T) {
	q := parseNL(t, "rising from 2 to 5 and then falling")
	want := "[x.s=2, x.e=5, p=up][p=down]"
	if got := q.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Months map onto numeric coordinates (the Sydney example). November
	// (11) to January (1) is an inverted x range; Table 4 rule 3 resolves
	// it — for a rising pattern the y reading conflicts too, so the
	// endpoints are swapped.
	_, info, err := NewParser().Parse("temperature rises from november to january")
	if err != nil {
		t.Fatal(err)
	}
	q, _, err = NewParser().Parse("temperature rises from november to january")
	if err != nil {
		t.Fatal(err)
	}
	segs := q.Root.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	if !segs[0].Loc.XS.Set || segs[0].Loc.XS.Value != 1 || segs[0].Loc.XE.Value != 11 {
		t.Errorf("resolved months = %+v / %+v (resolutions %v)", segs[0].Loc.XS, segs[0].Loc.XE, info.Resolutions)
	}
	if len(info.Resolutions) == 0 {
		t.Error("expected a rule-3 resolution log entry")
	}
}

func TestParseQuantifier(t *testing.T) {
	q := parseNL(t, "stocks with at least 2 peaks")
	want := "[p=up, m={2,}]"
	if got := q.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	q = parseNL(t, "genes that rise twice")
	if got := q.String(); got != "[p=up, m={2}]" {
		t.Errorf("got %q", got)
	}
	q = parseNL(t, "at most 3 dips")
	if got := q.String(); got != "[p=down, m={,3}]" {
		t.Errorf("got %q", got)
	}
}

func TestParseWidth(t *testing.T) {
	q := parseNL(t, "cities with maximum rise in temperature over a span of 3 months")
	segs := q.Root.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %d: %s", len(segs), q)
	}
	if !segs[0].Loc.HasIterator() {
		t.Fatalf("expected iterator location, got %s", q)
	}
	if segs[0].Loc.XE.IterOffset != 3 {
		t.Errorf("width = %v, want 3", segs[0].Loc.XE.IterOffset)
	}
	if segs[0].Pat.Kind != shape.PatUp {
		t.Errorf("pattern = %v", segs[0].Pat.Kind)
	}
}

func TestParseOrAndNot(t *testing.T) {
	q := parseNL(t, "genes that are up-regulated or down-regulated")
	if got := q.String(); got != "[p=up] | [p=down]" {
		t.Errorf("got %q", got)
	}
	q = parseNL(t, "trends that are not flat")
	if got := q.String(); got != "![p=flat]" {
		t.Errorf("got %q", got)
	}
}

func TestAmbiguityRule1MultipleP(t *testing.T) {
	// Two patterns with no connective: the second moves into its own step.
	_, info, err := NewParser().Parse("rising falling trends")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range info.Resolutions {
		if strings.Contains(r, "split") || strings.Contains(r, "moved extra pattern") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected rule-1 resolution, got %v", info.Resolutions)
	}
}

func TestAmbiguityRule2DanglingModifier(t *testing.T) {
	// "sharply" separated from its pattern by a connective.
	q, info, err := NewParser().Parse("rising and then sharply , falling")
	if err != nil {
		t.Fatalf("%v (%v)", err, info)
	}
	// The modifier must attach to a segment with a pattern.
	str := q.String()
	if !strings.Contains(str, "m=") {
		t.Errorf("modifier lost: %q (resolutions %v)", str, info.Resolutions)
	}
}

func TestAmbiguityRule3InvertedX(t *testing.T) {
	// "decreasing from 8 to 2": inverted x range reinterpreted as y values.
	q := parseNL(t, "decreasing from 8 to 2")
	segs := q.Root.Segments()
	seg := segs[0]
	if seg.Loc.XS.Set {
		t.Fatalf("x should have moved to y: %s", q)
	}
	if !seg.Loc.YS.Set || seg.Loc.YS.Value != 8 || !seg.Loc.YE.Set || seg.Loc.YE.Value != 2 {
		t.Fatalf("y = %+v / %+v", seg.Loc.YS, seg.Loc.YE)
	}
	// "increasing from 9 to 3" has no consistent y reading: swap instead.
	q = parseNL(t, "increasing from 9 to 3")
	seg = q.Root.Segments()[0]
	if !seg.Loc.XS.Set || seg.Loc.XS.Value != 3 || seg.Loc.XE.Value != 9 {
		t.Fatalf("expected swapped x, got %s", q)
	}
}

func TestAmbiguityRule4Overlap(t *testing.T) {
	// "increasing from 4 to 8 then decreasing from 8 to 0": the second
	// range is inverted; after rule 3 it becomes y values, which is the
	// Table 4 resolution for the overlap example.
	q := parseNL(t, "increasing from 4 to 8 then decreasing from 8 to 0")
	segs := q.Root.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d: %s", len(segs), q)
	}
	second := segs[1]
	if !second.Loc.YS.Set || second.Loc.YS.Value != 8 || second.Loc.YE.Value != 0 {
		t.Fatalf("second segment = %s", q)
	}
}

func TestParseNoEntities(t *testing.T) {
	if _, _, err := NewParser().Parse("hello world nothing here"); err == nil {
		t.Fatal("gibberish should fail to parse")
	}
	if _, _, err := NewParser().Parse(""); err == nil {
		t.Fatal("empty query should fail")
	}
}

func TestParseInfoTagging(t *testing.T) {
	_, info, err := NewParser().Parse("rising then falling")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Tagged) != 3 {
		t.Fatalf("tagged = %d", len(info.Tagged))
	}
	if info.Tagged[0].Entity != EntPattern || info.Tagged[1].Entity != EntConcat || info.Tagged[2].Entity != EntPattern {
		t.Fatalf("entities = %v %v %v", info.Tagged[0].Entity, info.Tagged[1].Entity, info.Tagged[2].Entity)
	}
}

func TestGenerateCorpusAligned(t *testing.T) {
	corpus := GenerateCorpus(250, 42)
	if len(corpus) != 250 {
		t.Fatalf("corpus size = %d", len(corpus))
	}
	for i, lq := range corpus {
		toks := text.Tokenize(lq.Query)
		if len(toks) != len(lq.Labels) {
			t.Fatalf("example %d: %d tokens vs %d labels (%q)", i, len(toks), len(lq.Labels), lq.Query)
		}
	}
	// Corpus must exercise a healthy variety of entity labels.
	seen := map[string]bool{}
	for _, lq := range corpus {
		for _, l := range lq.Labels {
			seen[l] = true
		}
	}
	for _, l := range []string{EntPattern, EntMod, EntConcat, EntXS, EntXE, EntWidth, EntCount, EntNoise} {
		if !seen[l] {
			t.Errorf("label %s never generated", l)
		}
	}
}

// TestCRFTaggerEndToEnd trains on the synthetic corpus and checks the CRF
// tagger reaches strong F1 on held-out data and can drive the parser. This
// is the miniature version of the paper's 81% F1 experiment; the harness in
// internal/experiments runs the full 5-fold version.
func TestCRFTaggerEndToEnd(t *testing.T) {
	corpus := GenerateCorpus(150, 7)
	split := 120
	cfg := crf.DefaultTrainConfig()
	cfg.Iterations = 12
	model, err := TrainCRF(ToSequences(corpus[:split]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := model.Evaluate(ToSequences(corpus[split:]), EntNoise)
	if m.F1 < 0.75 {
		t.Fatalf("held-out F1 = %.3f, want >= 0.75", m.F1)
	}
	// The CRF-backed parser handles the flagship query.
	p := NewParserWithModel(model)
	q, _, err := p.Parse("show me genes that are rising , then falling")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "[p=up][p=down]" {
		t.Errorf("CRF parse = %q", got)
	}
}

func TestCrossValidate(t *testing.T) {
	corpus := GenerateCorpus(60, 13)
	cfg := crf.DefaultTrainConfig()
	cfg.Iterations = 6
	m, err := CrossValidate(corpus, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 <= 0.5 || m.F1 > 1 {
		t.Fatalf("cross-validated F1 = %v", m.F1)
	}
}
