// Fixture for the evalctxescape analyzer: a miniature scoring kernel with
// the same shape as internal/executor's evalCtx. Arena-backed buffers may be
// borrowed inside the package but must not cross the exported boundary, be
// stored in outliving structures, or be captured by goroutines.
package evalctxescape

type scoreEnt struct {
	key  uint64
	mark uint32
	val  float64
}

type scoreMemo struct {
	ents  []scoreEnt
	epoch uint32
}

type evalCtx struct {
	qyBuf []float64
	memo  scoreMemo
	child *evalCtx
}

// Leak hands arena memory across the exported boundary: flagged.
func Leak(ec *evalCtx) []float64 {
	return ec.qyBuf // want `arena-backed evalCtx buffer escapes via exported Leak`
}

// LeakAlias escapes through a local alias: still flagged.
func LeakAlias(ec *evalCtx) []float64 {
	buf := ec.qyBuf
	return buf // want `arena-backed evalCtx buffer escapes via exported LeakAlias`
}

// borrow is the documented in-package protocol (solvers return context
// scratch, the caller copies the winner out): unexported, not flagged.
func borrow(ec *evalCtx) []float64 {
	return ec.qyBuf
}

// CopyOut returns a fresh copy, the sanctioned way out: not flagged.
func CopyOut(ec *evalCtx) []float64 {
	out := make([]float64, len(ec.qyBuf))
	copy(out, ec.qyBuf)
	return out
}

type sink struct {
	vals []float64
}

// store parks kernel memory in a struct that outlives the call: flagged.
func store(ec *evalCtx, s *sink) {
	s.vals = ec.qyBuf // want `stored in s.vals, which outlives the candidate`
}

// storeFamily is kernel state maintaining kernel state: not flagged.
func storeFamily(ec *evalCtx) {
	ec.child.qyBuf = ec.qyBuf
}

// capture shares single-worker state with a goroutine: flagged.
func capture(ec *evalCtx) {
	done := make(chan struct{})
	go func() {
		_ = ec.qyBuf // want `evalCtx state ec captured by goroutine`
		close(done)
	}()
	<-done
}

// captureCopy hands the goroutine its own copy: not flagged.
func captureCopy(ec *evalCtx) {
	snapshot := make([]float64, len(ec.qyBuf))
	copy(snapshot, ec.qyBuf)
	done := make(chan struct{})
	go func() {
		_ = snapshot
		close(done)
	}()
	<-done
}

// Suppressed documents its exception: the ignore comment absorbs the report.
func Suppressed(ec *evalCtx) []float64 {
	//lint:ignore evalctxescape bench harness copies the slice before the next candidate
	return ec.qyBuf
}

// BadIgnore has no reason, so the ignore does not suppress: still flagged.
func BadIgnore(ec *evalCtx) []float64 {
	//lint:ignore evalctxescape
	return ec.qyBuf // want `arena-backed evalCtx buffer escapes via exported BadIgnore`
}

var _ = borrow
var _ = store
var _ = storeFamily
var _ = capture
var _ = captureCopy
