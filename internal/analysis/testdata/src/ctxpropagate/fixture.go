// Fixture for the ctxpropagate analyzer: the executor/server cancellation
// contract. Blocking entrypoints thread ctx; context.Background() only
// inside Foo→FooContext wrappers; context.TODO() and nil contexts never.
package ctxpropagate

import "context"

// RunContext is the real entrypoint: it accepts and uses ctx. Not flagged.
func RunContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Run is the sanctioned compatibility wrapper (Foo → FooContext with
// Background as the delegation argument): not flagged.
func Run(n int) int {
	return RunContext(context.Background(), n)
}

// Todo marks an unfinished migration: always flagged.
func Todo(n int) int {
	ctx := context.TODO() // want `context\.TODO\(\) in non-test code`
	return RunContext(ctx, n)
}

// Sever has no SeverContext variant, so its Background() cuts the caller's
// cancellation chain: flagged.
func Sever(n int) int {
	return RunContext(context.Background(), n) // want `context\.Background\(\) severs cancellation`
}

// NilCtx passes a nil context where RunContext expects one: flagged.
func NilCtx(n int) int {
	return RunContext(nil, n) // want `nil context passed`
}

// DropsCtx accepts a ctx and never threads it anywhere: flagged.
func DropsCtx(ctx context.Context, n int) int { // want `never uses its ctx parameter`
	return n
}

// BlankCtx discards the parameter outright: flagged.
func BlankCtx(_ context.Context, n int) int { // want `discards its ctx parameter`
	return n
}

// Detach documents its exception: a background rebuild outliving the request
// is the one sanctioned detachment, and the ignore absorbs the report.
func Detach(n int) int {
	//lint:ignore ctxpropagate rebuild runs beyond the request lifetime by design
	return RunContext(context.Background(), n)
}
