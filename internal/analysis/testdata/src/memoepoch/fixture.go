// Fixture for the memoepoch analyzer: an epoch-stamped memo table with the
// same shape as internal/executor's scoreMemo. Entries may only be touched
// through the memo's own methods, payload reads must check mark against
// epoch, and sig-derived keys must guard the -1 POSITION sentinel.
package memoepoch

type scoreEnt struct {
	key  uint64
	mark uint32
	val  float64
}

type scoreMemo struct {
	ents  []scoreEnt
	epoch uint32
	live  int
	shift uint
}

// getSlot carries the epoch guard: not flagged.
func (m *scoreMemo) getSlot(key uint64) (float64, bool) {
	e := &m.ents[key&7]
	if e.mark != m.epoch || e.key != key {
		return 0, false
	}
	return e.val, true
}

// putSlot only writes payloads (writes establish entries): not flagged.
func (m *scoreMemo) putSlot(key uint64, v float64) {
	e := &m.ents[key&7]
	e.key = key
	e.mark = m.epoch
	e.val = v
}

// getStale reads e.val without ever consulting the epoch stamp: flagged.
func (m *scoreMemo) getStale(key uint64) (float64, bool) { // want `reads entry values without comparing mark against epoch`
	e := &m.ents[key&7]
	if e.key != key {
		return 0, false
	}
	return e.val, true
}

// peek reaches into the table from outside the memo's methods: flagged.
func peek(m *scoreMemo, key uint64) float64 {
	return m.ents[key&7].val // want `memo internals \(\.ents\) accessed outside`
}

// bump mutates the epoch from outside: flagged.
func bump(m *scoreMemo) {
	m.epoch++ // want `memo internals \(\.epoch\) accessed outside`
}

// lookupGuarded guards the POSITION sentinel before keying: not flagged.
func lookupGuarded(m *scoreMemo, sigs []int, t, i, j int) (float64, bool) {
	sig := sigs[t]
	if sig < 0 {
		return 0, false
	}
	key := uint64(sig)<<32 | uint64(i)<<16 | uint64(j)
	return m.getSlot(key)
}

// lookupUnguarded feeds sig straight into the key: flagged at the accessor.
func lookupUnguarded(m *scoreMemo, sigs []int, t, i, j int) (float64, bool) {
	sig := sigs[t]
	key := uint64(sig)<<32 | uint64(i)<<16 | uint64(j)
	return m.getSlot(key) // want `uses sig without guarding the -1 POSITION sentinel`
}

// peekSuppressed documents its exception: the ignore absorbs the report.
func peekSuppressed(m *scoreMemo) int {
	//lint:ignore memoepoch occupancy introspection for the stats endpoint, no payload read
	return m.live
}

var _ = peek
var _ = bump
var _, _ = lookupGuarded, lookupUnguarded
var _ = peekSuppressed
