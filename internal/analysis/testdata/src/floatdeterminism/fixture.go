// Fixture for the floatdeterminism analyzer: scoring code must be a pure,
// byte-identical function of its inputs — no map iteration order, no
// wall-clock reads, no randomness.
package floatdeterminism

import (
	"math/rand" // want `math/rand imported in a scoring package`
	"sort"
	"time"
)

// sum accumulates floats in map order, which Go randomizes: flagged.
func sum(scores map[string]float64) float64 {
	total := 0.0
	for _, v := range scores { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// sumSorted shows the sanctioned pattern: an order-free key collection
// (with its one-line proof in the ignore) followed by sorted iteration.
func sumSorted(scores map[string]float64) float64 {
	keys := make([]string, 0, len(scores))
	//lint:ignore floatdeterminism key collection is order-free; the scoring loop below iterates sorted
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += scores[k]
	}
	return total
}

// stamp reads the wall clock: flagged.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now\(\) in a scoring package`
}

// jitter justifies the (already flagged) rand import.
func jitter() float64 {
	return rand.Float64()
}

var _ = sum
var _ = sumSorted
var _ = stamp
var _ = jitter
