// Fixture for the admissionpair analyzer: admission slots are released on
// every path via defer, and the admission gauges are controller-private.
package admissionpair

import "sync"

type ticket struct {
	a    *admission
	done bool
}

type admission struct {
	mu         sync.Mutex
	admitted   int
	queued     int
	workersOut int
}

// newAdmission seeds the gauges before the value is shared: not flagged.
func newAdmission() *admission {
	a := &admission{}
	a.admitted = 0
	return a
}

// admit and release are the controller's own methods: exempt, even though
// release mutates gauges and admit hands out tickets inline.
func (a *admission) admit() (*ticket, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.admitted++
	return &ticket{a: a}, nil
}

func (tk *ticket) release() {
	tk.a.mu.Lock()
	defer tk.a.mu.Unlock()
	if tk.done {
		return
	}
	tk.done = true
	tk.a.admitted--
}

// handleGood pairs the admit with a deferred release: not flagged.
func handleGood(a *admission) error {
	tk, err := a.admit()
	if err != nil {
		return err
	}
	defer tk.release()
	return nil
}

// handleLeaky acquires a slot and never releases it: flagged.
func handleLeaky(a *admission) error {
	tk, err := a.admit() // want `admission slot acquired without a deferred release`
	if err != nil {
		return err
	}
	_ = tk
	return nil
}

// handleInline releases on the happy path only — a panic or the early
// return above it leaks the slot: both the acquire and the inline release
// are flagged.
func handleInline(a *admission) error {
	tk, err := a.admit() // want `admission slot acquired without a deferred release`
	if err != nil {
		return err
	}
	tk.release() // want `ticket released outside a defer`
	return nil
}

// pokeGauge reads a gauge from outside the controller: flagged.
func pokeGauge(a *admission) int {
	return a.admitted // want `admission gauge admitted accessed outside the controller`
}

// skewGauge writes a gauge from outside the controller: flagged.
func skewGauge(a *admission) {
	a.queued++ // want `admission gauge queued accessed outside the controller`
}

// wrongIgnore names a different analyzer, so nothing is suppressed.
func wrongIgnore(a *admission) int {
	//lint:ignore lockorder wrong analyzer name does not suppress this
	return a.workersOut // want `admission gauge workersOut accessed outside the controller`
}

// debugGauges documents its exception: the ignore absorbs the report.
func debugGauges(a *admission) int {
	//lint:ignore admissionpair debug dump tolerates a racy snapshot
	return a.workersOut
}

var _ = handleGood
var _ = handleLeaky
var _ = handleInline
var _ = pokeGauge
var _ = skewGauge
var _ = wrongIgnore
var _ = debugGauges
var _ = newAdmission
