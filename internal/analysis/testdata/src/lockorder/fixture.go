// Fixture for the lockorder analyzer: appendMu is the outermost lock, and
// the atomic pruning floor is touched only by its owner's methods.
package lockorder

import (
	"sync"
	"sync/atomic"
)

type cache struct {
	mu sync.Mutex
	n  int
}

type server struct {
	appendMu sync.Mutex
	mu       sync.RWMutex
	cache    *cache
}

// appendRows follows the documented order (appendMu, then inner locks):
// not flagged.
func (s *server) appendRows() {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	s.cache.mu.Lock()
	s.cache.n++
	s.cache.mu.Unlock()
}

// inverted acquires appendMu while holding the cache lock: flagged.
func (s *server) inverted() {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	s.appendMu.Lock() // want `appendMu is the outermost lock`
	s.appendMu.Unlock()
}

// sequential releases the state lock before taking appendMu: not flagged.
func (s *server) sequential() {
	s.mu.RLock()
	_ = s.cache
	s.mu.RUnlock()
	s.appendMu.Lock()
	s.appendMu.Unlock()
}

type sharedTopK struct {
	mu        sync.Mutex
	floorBits atomic.Uint64
}

// newSharedTopK seeds the floor before the value is shared: not flagged.
func newSharedTopK(floor uint64) *sharedTopK {
	s := &sharedTopK{}
	s.floorBits.Store(floor)
	return s
}

// add publishes the floor under the heap lock, from an owner method:
// not flagged.
func (s *sharedTopK) add(v uint64) {
	s.mu.Lock()
	s.floorBits.Store(v)
	s.mu.Unlock()
}

// fastFloor is the sanctioned lock-free read: not flagged.
func (s *sharedTopK) fastFloor() uint64 {
	return s.floorBits.Load()
}

// steal reads the floor word from outside the owner: flagged.
func steal(s *sharedTopK) uint64 {
	return s.floorBits.Load() // want `floorBits accessed outside sharedTopK's methods`
}

// wrongIgnore names a different analyzer, so nothing is suppressed.
func wrongIgnore(s *sharedTopK) uint64 {
	//lint:ignore memoepoch wrong analyzer name does not suppress this
	return s.floorBits.Load() // want `floorBits accessed outside sharedTopK's methods`
}

// debugFloor documents its exception: the ignore absorbs the report.
func debugFloor(s *sharedTopK) uint64 {
	//lint:ignore lockorder debug dump tolerates a racy snapshot
	return s.floorBits.Load()
}

var _ = steal
var _ = wrongIgnore
var _ = debugFloor
