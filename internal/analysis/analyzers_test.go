package analysis

import "testing"

func TestEvalCtxEscape(t *testing.T)    { runFixture(t, EvalCtxEscape, "evalctxescape") }
func TestMemoEpoch(t *testing.T)        { runFixture(t, MemoEpoch, "memoepoch") }
func TestCtxPropagate(t *testing.T)     { runFixture(t, CtxPropagate, "ctxpropagate") }
func TestFloatDeterminism(t *testing.T) { runFixture(t, FloatDeterminism, "floatdeterminism") }
func TestLockOrder(t *testing.T)        { runFixture(t, LockOrder, "lockorder") }
func TestAdmissionPair(t *testing.T)    { runFixture(t, AdmissionPair, "admissionpair") }

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := ByName("memoepoch, lockorder")
	if err != nil || len(two) != 2 || two[0].Name != "memoepoch" || two[1].Name != "lockorder" {
		t.Fatalf("ByName(\"memoepoch, lockorder\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") did not fail")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
