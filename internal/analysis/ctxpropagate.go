package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagate enforces the cancellation contract (ROADMAP "Scoring
// kernel", cancellation points): every blocking entrypoint in the executor
// and server threads a context.Context down to the worker pool, and the
// only sanctioned context.Background() is inside an exported
// compatibility wrapper Foo that delegates directly to FooContext.
//
// Rules, in non-test executor/server code:
//
//  1. context.TODO() is always an error — TODO marks an unfinished
//     migration, and this codebase finished it in PR 3.
//  2. context.Background() is allowed only as an argument of a call to
//     FooContext made from inside Foo itself (the documented wrapper
//     pattern: Run → RunContext, Search → SearchContext, ...). Anywhere
//     else it severs an entrypoint from its caller's cancellation — the
//     exact bug class of the BuildVizIndex summary pass.
//  3. Passing a nil context is an error; use the non-Context wrapper or
//     context.Background() via one.
//  4. An exported function whose first parameter is a context.Context must
//     use it — a dropped ctx parameter is a silent cancellation leak.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "blocking entrypoints must thread ctx; context.Background() only inside Foo→FooContext wrappers, context.TODO() and nil ctx never",
	AppliesTo: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/executor") ||
			strings.HasSuffix(pkgPath, "internal/server")
	},
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *Pass) error {
	funcs := indexFuncs(pass.Files)

	// contextVariants: names of declared functions/methods ending in
	// "Context", for the wrapper check.
	variants := map[string]bool{}
	for _, fd := range funcs.decls {
		if strings.HasSuffix(fd.Name.Name, "Context") {
			variants[fd.Name.Name] = true
		}
	}

	isCtxType := func(t types.Type) bool {
		n := derefNamed(t)
		return n != nil && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass.Info, call, "context", "TODO") {
				pass.Reportf(call.Pos(), "context.TODO() in non-test code: thread the caller's ctx (or use the Foo→FooContext wrapper pattern)")
				return true
			}
			if isPkgCall(pass.Info, call, "context", "Background") {
				if !isWrapperDelegation(pass, funcs, call, variants) {
					pass.Reportf(call.Pos(), "context.Background() severs cancellation: accept a ctx (add a ...Context variant) or call through an existing wrapper")
				}
				return true
			}
			// Rule 3: nil passed where a context.Context is expected.
			sig := signatureOf(pass.Info, call)
			if sig != nil {
				for i, arg := range call.Args {
					id, ok := arg.(*ast.Ident)
					if !ok || id.Name != "nil" {
						continue
					}
					if _, isNil := pass.Info.ObjectOf(id).(*types.Nil); !isNil {
						continue // an identifier shadowing nil, not the literal
					}
					if pi := paramAt(sig, i); pi != nil && isCtxType(pi.Type()) {
						pass.Reportf(arg.Pos(), "nil context passed: use context.Background() through a wrapper, or thread the caller's ctx")
					}
				}
			}
			return true
		})
	}

	// Rule 4: exported entrypoints with a leading ctx parameter must use it.
	for _, fd := range funcs.decls {
		if !fd.Name.IsExported() || fd.Body == nil || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
			continue
		}
		first := fd.Type.Params.List[0]
		if !isCtxType(pass.Info.TypeOf(first.Type)) || len(first.Names) == 0 {
			continue
		}
		name := first.Names[0]
		if name.Name == "_" {
			pass.Reportf(name.Pos(), "exported %s discards its ctx parameter: thread it into the blocking work it guards", fd.Name.Name)
			continue
		}
		obj := pass.Info.Defs[name]
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(name.Pos(), "exported %s never uses its ctx parameter: thread it into the blocking work it guards", fd.Name.Name)
		}
	}
	return nil
}

// isWrapperDelegation reports whether the context.Background() call is an
// argument of a delegation call Foo → FooContext inside Foo itself.
func isWrapperDelegation(pass *Pass, funcs *funcIndex, bg *ast.CallExpr, variants map[string]bool) bool {
	fd := funcs.enclosing(bg.Pos())
	if fd == nil || strings.HasSuffix(fd.Name.Name, "Context") {
		return false
	}
	want := fd.Name.Name + "Context"
	if !variants[want] {
		return false
	}
	// The Background() call must appear as an argument of a call to the
	// Context variant.
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, okc := n.(*ast.CallExpr)
		if !okc {
			return true
		}
		callee := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = fun.Name
		case *ast.SelectorExpr:
			callee = fun.Sel.Name
		}
		if callee != want {
			return true
		}
		for _, arg := range call.Args {
			if arg == ast.Expr(bg) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// paramAt returns the parameter a positional argument binds to, folding
// variadic tails.
func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		return sig.Params().At(n - 1)
	}
	if i < n {
		return sig.Params().At(i)
	}
	return nil
}
