package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FloatDeterminism is the mechanical guard behind every `byte-identical`
// property test (TestSharedEvalMatchesNaive, TestIndexedSearchMatchesScan,
// TestSearchBatchMatchesSequential, TestAppendMatchesRegister...): scoring
// and ranking must be a pure function of the inputs, bit for bit, under any
// worker count and interleaving. Floating-point addition does not commute,
// so any nondeterministically-ordered iteration that feeds a score, a
// bound, or a result ordering breaks the guarantee probabilistically —
// the kind of bug -race -count=2 only catches when it feels like it.
//
// In the scoring packages (executor, score, shapeindex, segstat) the
// analyzer flags:
//
//  1. range over a map — Go randomizes map iteration order by design.
//     Iterate a sorted key slice instead, or carry a side slice in
//     first-appearance order (see MultiPlan.forEachKeyGroup). Iterations
//     that are genuinely order-free take a //lint:ignore with the
//     one-line proof.
//  2. time.Now — wall-clock input makes two identical runs differ.
//  3. math/rand (v1 or v2) — randomness in a scoring path is
//     nondeterminism by definition; deterministic corpora generation
//     lives in internal/gen, outside the scoring packages.
var FloatDeterminism = &Analyzer{
	Name: "floatdeterminism",
	Doc:  "scoring packages must not iterate maps, read the clock, or use math/rand: results are byte-identical by contract",
	AppliesTo: func(pkgPath string) bool {
		for _, sfx := range []string{
			"internal/executor", "internal/score",
			"internal/shapeindex", "internal/segstat",
		} {
			if strings.HasSuffix(pkgPath, sfx) {
				return true
			}
		}
		return false
	},
	Run: runFloatDeterminism,
}

func runFloatDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch importPathOf(imp) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "math/rand imported in a scoring package: results must be byte-identical across runs")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(x.Pos(), "map iteration order is nondeterministic: iterate sorted keys (or a first-appearance order slice) so scores and orderings stay byte-identical")
					}
				}
			case *ast.CallExpr:
				if isPkgCall(pass.Info, x, "time", "Now") {
					pass.Reportf(x.Pos(), "time.Now() in a scoring package: wall-clock input breaks byte-identical results")
				}
			}
			return true
		})
	}
	return nil
}
