package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EvalCtxEscape enforces the scoring kernel's buffer-ownership rule
// (ROADMAP "Scoring kernel"): every slice and arena allocation hanging off
// a worker's evalCtx belongs to that worker's current candidate. A slice
// drawn from the kernel state may be borrowed freely inside the package —
// solvers hand ranges up through runResult/segResult and the caller copies
// the winner out (the evalViz copy-out rule) — but it must never
//
//   - be returned by an exported function or method (arena memory handed
//     across the package boundary outlives any candidate),
//   - be stored into a struct, map or slice that is not itself kernel
//     state (the store outlives the call), or
//   - be captured by a goroutine (the worker-ownership rule: an evalCtx is
//     single-worker state; a goroutine capture shares it).
//
// An explicit copy (append(dst[:0], src...), copy into a fresh make) is the
// sanctioned way out — copies are plain calls and are never flagged.
//
// The analyzer self-gates: it does nothing in packages that do not declare
// a type named evalCtx. Kernel state is the transitive closure of evalCtx's
// field types (chainEval, the memo tables, the arenas, tree nodes...), so
// the kernel's own internal wiring is exempt. Tracking is function-local
// with one level of aliasing (x := ec.buf; grow helpers taking &ec.buf;
// arena alloc / grid-cache methods), which matches how the kernel code is
// actually written.
var EvalCtxEscape = &Analyzer{
	Name: "evalctxescape",
	Doc:  "arena/pool-backed evalCtx slices must not escape: no exported returns, long-lived stores, or goroutine captures without an explicit copy",
	Run:  runEvalCtxEscape,
}

func runEvalCtxEscape(pass *Pass) error {
	root := pass.Pkg.Scope().Lookup("evalCtx")
	if root == nil {
		return nil
	}
	rootNamed := derefNamed(root.Type())
	if rootNamed == nil {
		return nil
	}

	family := kernelFamily(rootNamed, pass.Pkg)

	inFamily := func(t types.Type) bool {
		n := derefNamed(t)
		return n != nil && family[n.Obj()]
	}
	isEvalCtx := func(t types.Type) bool {
		n := derefNamed(t)
		return n != nil && n.Obj() == rootNamed.Obj()
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKernelFunc(pass, fd, inFamily, isEvalCtx)
		}
	}
	return nil
}

// kernelFamily computes the set of named struct types reachable from
// evalCtx's fields within the package — the kernel's own state, whose
// internal mutation is the owner's business. Exported types are excluded:
// arena/pool state is unexported by construction, while exported types
// reachable from kernel fields (Viz, Options, ...) are API surface whose
// methods hand out fresh memory, not arena memory.
func kernelFamily(root *types.Named, pkg *types.Package) map[*types.TypeName]bool {
	family := map[*types.TypeName]bool{root.Obj(): true}
	work := []*types.Named{root}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		s, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			for _, ft := range elementNamed(s.Field(i).Type()) {
				if ft.Obj().Pkg() == pkg && !ft.Obj().Exported() && !family[ft.Obj()] {
					family[ft.Obj()] = true
					work = append(work, ft)
				}
			}
		}
	}
	return family
}

// elementNamed unwraps slices, arrays, pointers and maps down to the named
// types they carry.
func elementNamed(t types.Type) []*types.Named {
	switch u := t.(type) {
	case *types.Pointer:
		return elementNamed(u.Elem())
	case *types.Slice:
		return elementNamed(u.Elem())
	case *types.Array:
		return elementNamed(u.Elem())
	case *types.Map:
		return append(elementNamed(u.Key()), elementNamed(u.Elem())...)
	case *types.Named:
		return []*types.Named{u}
	case *types.Alias:
		return elementNamed(types.Unalias(u))
	default:
		return nil
	}
}

func checkKernelFunc(pass *Pass, fd *ast.FuncDecl, inFamily, isEvalCtx func(types.Type) bool) {
	recv := recvNamed(pass.Info, fd)
	recvIsFamily := recv != nil && inFamily(recv)

	// tainted holds local variables directly aliased to kernel-backed
	// memory within this function.
	tainted := map[types.Object]bool{}

	// arenaBacked reports whether e denotes kernel-owned memory:
	// a field selector rooted at a kernel value, an index/slice of one, a
	// grow/alloc/grid helper result over one, or a tainted local.
	var arenaBacked func(e ast.Expr) bool
	rootObj := func(e ast.Expr) types.Object {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.Ident:
				return pass.Info.ObjectOf(x)
			default:
				return nil
			}
		}
	}
	refLike := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer, *types.Map:
			return true
		}
		return false
	}
	arenaBacked = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			return tainted[pass.Info.ObjectOf(x)]
		case *ast.ParenExpr:
			return arenaBacked(x.X)
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return false
			}
			if t := pass.Info.TypeOf(x); t == nil || !refLike(t) {
				return false
			}
			return inFamily(pass.Info.TypeOf(x.X)) || arenaBacked(x.X)
		case *ast.IndexExpr:
			t := pass.Info.TypeOf(x)
			return t != nil && refLike(t) && arenaBacked(x.X)
		case *ast.SliceExpr:
			return arenaBacked(x.X)
		case *ast.UnaryExpr:
			return x.Op == token.AND && arenaBacked(x.X)
		case *ast.CallExpr:
			// grow*(&ec.buf, n) returns the resized kernel buffer; method
			// calls on kernel state returning reference types (arena alloc,
			// grid caches) hand out kernel memory.
			if t := pass.Info.TypeOf(x); t == nil || !refLike(t) {
				return false
			}
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				for _, arg := range x.Args {
					if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND && arenaBacked(u.X) {
						return true
					}
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
					return inFamily(pass.Info.TypeOf(fun.X)) || arenaBacked(fun.X)
				}
			}
			return false
		}
		return false
	}

	// Pass 1: collect taints (simple aliases of kernel memory).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" && arenaBacked(rhs) {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	exported := fd.Name.IsExported()

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if !exported || recvIsFamily {
				// In-package borrowing (solvers returning runResult over
				// context scratch, copied by the caller) is the documented
				// protocol; only the exported surface is a hard boundary.
				return true
			}
			for _, res := range st.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok && arenaBacked(e) {
						pass.Reportf(e.Pos(), "arena-backed evalCtx buffer escapes via exported %s: copy it out (append(dst[:0], src...)) before returning", fd.Name.Name)
						return false
					}
					return true
				})
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !arenaBacked(rhs) {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.SelectorExpr:
					obj := rootObj(lhs)
					if obj != nil && (tainted[obj] || inFamily(obj.Type()) || isEvalCtx(obj.Type())) {
						continue // kernel state maintaining kernel state
					}
					if inFamily(pass.Info.TypeOf(lhs.X)) {
						continue
					}
					pass.Reportf(st.Pos(), "arena-backed evalCtx buffer stored in %s, which outlives the candidate: copy it out first", selectorPath(lhs))
				case *ast.IndexExpr:
					obj := rootObj(lhs)
					if obj != nil && (tainted[obj] || inFamily(obj.Type())) {
						continue
					}
					pass.Reportf(st.Pos(), "arena-backed evalCtx buffer stored in %s, which outlives the candidate: copy it out first", selectorPath(lhs.X))
				}
			}
		case *ast.GoStmt:
			ast.Inspect(st.Call, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || obj.Pos() == token.NoPos {
					return true
				}
				if !isEvalCtx(obj.Type()) && !tainted[obj] {
					return true
				}
				// Declared outside the go statement ⇒ captured.
				if obj.Pos() < st.Pos() || obj.Pos() > st.End() {
					pass.Reportf(id.Pos(), "evalCtx state %s captured by goroutine: contexts are single-worker owned (pass a copy or use the worker pool)", id.Name)
				}
				return true
			})
		}
		return true
	})
}
