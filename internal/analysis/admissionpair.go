package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AdmissionPair enforces the admission-control bookkeeping invariants
// (ROADMAP "Production serving hardening"): every admission slot that is
// acquired is released on every path, and the admission gauges cannot be
// skewed from outside the controller.
//
//  1. A function that acquires a slot — calls admission.admit — must pair
//     it with `defer tk.release()` in the same function. Only a defer
//     covers every return and panic path; the transient slot leak it
//     prevents is precisely the "inflight counter drifts up under errors"
//     failure the admission tests pin down.
//  2. A ticket released outside a defer (again, outside the controller
//     itself) is flagged: a panic or early return between the acquire and
//     an inline release leaks the slot forever, silently shrinking the
//     server's admitted capacity.
//  3. The admission gauges (admitted, queued, workersOut) are mutated
//     under admission.mu by the controller alone — admission and ticket
//     methods, plus the new* constructor that runs before the value is
//     shared. Any other access bypasses the pairing discipline the first
//     two rules protect.
//
// All three rules self-gate on the admission/ticket type names, so the
// analyzer is a no-op in packages without an admission controller. The
// controller's own methods are exempt from rules 1 and 2: internally it
// hands tickets across goroutines (the grant/withdraw race protocol),
// which no lexical pairing rule can or should capture.
var AdmissionPair = &Analyzer{
	Name: "admissionpair",
	Doc:  "admission.admit must be paired with defer ticket.release() in the same function; admission gauges are touched only by the controller",
	Run:  runAdmissionPair,
}

func runAdmissionPair(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAdmissionPairFunc(pass, fd)
		}
	}
	checkGaugeEncapsulation(pass)
	return nil
}

// admissionMethod reports whether call invokes a method named name whose
// receiver is the named type recv ("admission" or "ticket").
func admissionMethod(info *types.Info, call *ast.CallExpr, name, recv string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := derefNamed(sig.Recv().Type())
	return n != nil && n.Obj().Name() == recv
}

func checkAdmissionPairFunc(pass *Pass, fd *ast.FuncDecl) {
	// The controller's internals are exempt: admit/withdraw/release pass
	// tickets across goroutines by design.
	if r := recvNamed(pass.Info, fd); r != nil {
		switch r.Obj().Name() {
		case "admission", "ticket":
			return
		}
	}
	var admits []token.Pos
	var inlineReleases []token.Pos
	deferredRelease := false
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			// The deferred call itself is the sanctioned form; its closure
			// body (visited below) is still checked like any other code.
			deferredCalls[ds.Call] = true
			if admissionMethod(pass.Info, ds.Call, "release", "ticket") {
				deferredRelease = true
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case admissionMethod(pass.Info, call, "admit", "admission"):
			admits = append(admits, call.Pos())
		case admissionMethod(pass.Info, call, "release", "ticket") && !deferredCalls[call]:
			inlineReleases = append(inlineReleases, call.Pos())
		}
		return true
	})
	if !deferredRelease {
		for _, pos := range admits {
			pass.Reportf(pos, "admission slot acquired without a deferred release: pair admit with `defer tk.release()` in the same function so every return and panic path frees the slot")
		}
	}
	for _, pos := range inlineReleases {
		pass.Reportf(pos, "ticket released outside a defer: a panic or early return between admit and this release leaks the slot; use `defer tk.release()`")
	}
}

// checkGaugeEncapsulation flags accesses to the admission gauges from
// outside the controller's methods and constructor.
func checkGaugeEncapsulation(pass *Pass) {
	gauges := map[string]bool{"admitted": true, "queued": true, "workersOut": true}
	funcs := indexFuncs(pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !gauges[sel.Sel.Name] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			owner := derefNamed(pass.Info.TypeOf(sel.X))
			if owner == nil || owner.Obj().Name() != "admission" {
				return true
			}
			fd := funcs.enclosing(sel.Pos())
			if fd == nil {
				return true
			}
			if recv := recvNamed(pass.Info, fd); recv != nil {
				switch recv.Obj().Name() {
				case "admission", "ticket":
					return true // the controller and its tickets move the gauges by design
				}
			}
			if strings.EqualFold(fd.Name.Name, "new"+owner.Obj().Name()) {
				return true // constructor runs before the value is shared
			}
			pass.Reportf(sel.Pos(), "admission gauge %s accessed outside the controller: gauges move only under admission.mu via admit/release (read them through snapshot())", sel.Sel.Name)
			return true
		})
	}
}
