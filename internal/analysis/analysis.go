// Package analysis is shapesearch's static-analysis suite: a set of
// repo-specific analyzers that mechanically enforce the engine's concurrency
// and determinism invariants (evalCtx buffer ownership, epoch-stamped memo
// discipline, context propagation, byte-identical-result determinism, and
// the appendMu → cache-lock ordering). See README.md in this directory for
// the invariant catalog.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Reportf, per-package runs over type-checked
// syntax) so the analyzers port mechanically if the repo ever takes on the
// x/tools dependency; it is implemented on the standard library alone
// (go/ast + go/types, with export data served by `go list -export`) because
// the build must stay dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output, in
	// //lint:ignore comments and in vet-style diagnostics.
	Name string
	// Doc is the one-line invariant statement shown by `shapelint -help`.
	Doc string
	// AppliesTo restricts the analyzer to packages whose import path it
	// accepts; nil means every package (such analyzers self-gate on the
	// declarations they police).
	AppliesTo func(pkgPath string) bool
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
	ignores  ignoreIndex
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Reportf records a diagnostic at pos unless a //lint:ignore comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreIndex records //lint:ignore suppressions by file and line. The
// comment form is
//
//	//lint:ignore analyzer1,analyzer2 reason for the exception
//
// and it suppresses matching diagnostics on its own line and on the line
// immediately below (so it can sit above the flagged statement or trail it
// on the same line). The reason is mandatory: an ignore without one does
// not suppress anything — unexplained exceptions are the tribal knowledge
// this package exists to eliminate.
type ignoreIndex map[string]map[int][]string // file → line → analyzer names

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(\S.*)$`)

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ix[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					ix[pos.Filename] = byLine
				}
				names := strings.Split(m[1], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return ix
}

func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, name := range ix[pos.Filename][pos.Line] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		EvalCtxEscape,
		MemoEpoch,
		CtxPropagate,
		FloatDeterminism,
		LockOrder,
		AdmissionPair,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means all.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage runs the given analyzers over one loaded package, honoring
// each analyzer's AppliesTo gate and the package's //lint:ignore comments,
// and returns the surviving findings sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			findings: &findings,
			ignores:  ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- shared type helpers used by several analyzers ----

// derefNamed unwraps pointers and aliases down to a named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// namedStructIn returns the named type's struct underlying, if the type is
// declared in pkg; nil otherwise.
func namedStructIn(t types.Type, pkg *types.Package) (*types.Named, *types.Struct) {
	n := derefNamed(t)
	if n == nil || n.Obj().Pkg() != pkg {
		return nil, nil
	}
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return n, s
}

// isPkgCall reports whether call invokes pkgPath.fn (e.g. "context",
// "Background").
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// enclosingFuncs builds a lookup from any node position to its innermost
// enclosing function declaration (methods included). Function literals are
// not tracked separately: a literal belongs to the declaration it appears
// in, which is the granularity the analyzers reason at.
type funcIndex struct {
	decls []*ast.FuncDecl
}

func indexFuncs(files []*ast.File) *funcIndex {
	var ix funcIndex
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				ix.decls = append(ix.decls, fd)
			}
		}
	}
	return &ix
}

func (ix *funcIndex) enclosing(pos token.Pos) *ast.FuncDecl {
	for _, fd := range ix.decls {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// recvNamed returns the receiver's named type for a method decl, or nil.
func recvNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return derefNamed(info.TypeOf(fd.Recv.List[0].Type))
}

// selectorPath renders a selector/ident chain ("s.cache.mu") for display
// and lock-identity purposes; non-chain expressions collapse to "".
func selectorPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selectorPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return selectorPath(x.X)
	default:
		return ""
	}
}
