package analysis

// A miniature analysistest: fixtures live under testdata/src/<analyzer>/ and
// annotate the lines they expect diagnostics on with
//
//	// want `regex`
//	// want "regex"
//
// comments (several patterns per comment are allowed). runFixture loads the
// fixture directory as one package, runs a single analyzer over it with
// //lint:ignore suppression active, and requires an exact match between the
// diagnostics produced and the want annotations: every finding must be
// wanted, every want must be found.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantTokRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantTokRe.FindAllString(m[1], -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, tok := range toks {
					pat := tok
					if tok[0] == '"' {
						var err error
						pat, err = strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						}
					} else {
						pat = tok[1 : len(tok)-1]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runAnalyzer runs one analyzer over a loaded package with suppression
// active, bypassing AppliesTo: fixtures reproduce the package *shape* the
// analyzer polices, not the repo's import paths.
func runAnalyzer(t *testing.T, a *Analyzer, pkg *Package) []Finding {
	t.Helper()
	var findings []Finding
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		findings: &findings,
		ignores:  buildIgnoreIndex(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	sortFindings(findings)
	return findings
}

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings := runAnalyzer(t, a, pkg)
	wants := parseWants(t, pkg)

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}
