package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns in dir and
// returns the decoded package stream. Export data comes from the local
// build cache, so the loader works fully offline.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc-importer lookup function over an import-path →
// export-file map.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
}

func typeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load type-checks the packages matching the patterns (e.g. "./...") rooted
// at dir. Only the matched packages themselves are parsed; their
// dependencies are imported from compiler export data, exactly as `go vet`
// loads them. Test files are excluded: the invariants the analyzers enforce
// bind non-test code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package, resolving its imports through `go list -export`. This is
// the fixture loader behind the analyzer tests: testdata packages live
// outside the module's package graph, so they are loaded by path rather
// than by import pattern.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first to learn the fixture's imports, then fetch export data
	// for exactly those (plus their dependencies).
	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, imp := range f.Imports {
			importSet[importPathOf(imp)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := typeInfo()
	conf := types.Config{Importer: imp}
	pkgPath := filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

func importPathOf(s *ast.ImportSpec) string {
	p := s.Path.Value
	return p[1 : len(p)-1] // strip quotes
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := typeInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// CheckFiles type-checks an already-parsed file set against explicit export
// data (import path → export file), as handed to a vet tool by `go vet`'s
// unitchecker protocol. importMap translates source-level import paths to
// the canonical paths keying exports.
func CheckFiles(fset *token.FileSet, path string, asts []*ast.File, importMap, exports map[string]string) (*Package, error) {
	lookup := func(p string) (io.ReadCloser, error) {
		if canon, ok := importMap[p]; ok {
			p = canon
		}
		f, ok := exports[p]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", p)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := typeInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
