package analysis

import "testing"

// TestRepoClean runs the full analyzer suite over the repository itself and
// requires zero findings: the invariants are enforced, not aspirational.
// A finding here means either real code broke an invariant (fix the code)
// or a documented exception is missing its //lint:ignore with a reason.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
