package analysis

import (
	"go/ast"
	"go/types"
)

// MemoEpoch enforces the epoch-stamped memo discipline (ROADMAP
// "Shared-alternative evaluation", memo ownership): the score/fit memos on
// the pooled evalCtx belong to the worker's current candidate, and the
// `mark != epoch` stamp is the only thing standing between a candidate and
// a stale score computed for the previous one.
//
// Three mechanical rules:
//
//  1. Encapsulation: outside a memo type's own methods, nothing may touch
//     its ents/epoch/live/shift fields — every probe goes through the
//     accessors that carry the epoch guard (getSlot/putSlot/put/fit/reset).
//  2. Guarded reads: any memo method that reads an entry's payload must
//     compare the entry's mark against the table's epoch somewhere in its
//     body. Deleting the guard from getSlot (the classic refactor
//     accident) makes the memo serve the previous candidate's scores.
//  3. No −1 signatures: a function that computes a memo key from a `sig`
//     variable must guard sig against the −1 sentinel (units containing
//     POSITION references score by chain position and must never be
//     memoized).
//
// A "memo type" is any package-local struct with both an `ents` slice and
// an `epoch` field — scoreMemo and fitMemo today, and any table that
// adopts the same scheme tomorrow.
var MemoEpoch = &Analyzer{
	Name: "memoepoch",
	Doc:  "epoch-stamped memo entries may only be touched through guarded accessors; mark/epoch checks and the sig>=0 guard are mandatory",
	Run:  runMemoEpoch,
}

func runMemoEpoch(pass *Pass) error {
	memos := map[*types.TypeName]*memoShape{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if shape := memoShapeOf(tn, pass.Pkg); shape != nil {
			memos[tn] = shape
		}
	}
	if len(memos) == 0 {
		return nil
	}

	memoOf := func(t types.Type) *memoShape {
		n := derefNamed(t)
		if n == nil {
			return nil
		}
		return memos[n.Obj()]
	}
	entryPayload := func(t types.Type) bool {
		n := derefNamed(t)
		if n == nil {
			return false
		}
		for _, m := range memos {
			if m.entry == n.Obj() {
				return true
			}
		}
		return false
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := recvNamed(pass.Info, fd)
			recvMemo := recv != nil && memos[recv.Obj()] != nil

			// Rule 1: field access outside the owning type's methods.
			if !recvMemo {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					s, ok := pass.Info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						return true
					}
					if memoOf(pass.Info.TypeOf(sel.X)) == nil {
						return true
					}
					switch sel.Sel.Name {
					case "ents", "epoch", "live", "shift":
						pass.Reportf(sel.Pos(), "memo internals (.%s) accessed outside the memo's methods: only the epoch-guarded accessors may touch entries", sel.Sel.Name)
					}
					return true
				})
			}

			// Rule 2: memo methods reading entry payloads must consult the
			// epoch stamp.
			if recvMemo {
				readsPayload := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					s, ok := pass.Info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						return true
					}
					if !entryPayload(pass.Info.TypeOf(sel.X)) {
						return true
					}
					switch sel.Sel.Name {
					case "key", "mark":
						return true
					}
					if isAssignTarget(fd.Body, sel) {
						return true
					}
					readsPayload = true
					return true
				})
				if readsPayload && !hasMarkEpochComparison(fd.Body) {
					pass.Reportf(fd.Name.Pos(), "memo method %s reads entry values without comparing mark against epoch: a stale entry from the previous candidate can leak through", fd.Name.Name)
				}
			}

			// Rule 3: key construction from an unguarded sig.
			checkSigGuard(pass, fd, memoOf)
		}
	}
	return nil
}

// memoShape describes one epoch-stamped table: its entry struct type.
type memoShape struct {
	owner *types.TypeName
	entry *types.TypeName
}

// memoShapeOf recognizes the epoch-stamped memo pattern: a package-local
// struct with an `ents` slice of structs and an `epoch` field.
func memoShapeOf(tn *types.TypeName, pkg *types.Package) *memoShape {
	if tn.Pkg() != pkg {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var entsElem *types.TypeName
	hasEpoch := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "ents":
			sl, ok := f.Type().Underlying().(*types.Slice)
			if !ok {
				return nil
			}
			en := derefNamed(sl.Elem())
			if en == nil {
				return nil
			}
			entsElem = en.Obj()
		case "epoch":
			hasEpoch = true
		}
	}
	if entsElem == nil || !hasEpoch {
		return nil
	}
	return &memoShape{owner: tn, entry: entsElem}
}

// isAssignTarget reports whether sel appears as (part of) an assignment
// LHS inside body — writes establish entries and are not "reads".
func isAssignTarget(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	target := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ast.Inspect(lhs, func(m ast.Node) bool {
				if m == ast.Node(sel) {
					target = true
				}
				return !target
			})
		}
		return !target
	})
	return target
}

// hasMarkEpochComparison reports whether the body compares a selector
// ending in "mark" against one ending in "epoch" (either order, any
// comparison operator) — the epoch guard in any of its spellings.
func hasMarkEpochComparison(body *ast.BlockStmt) bool {
	found := false
	endsIn := func(e ast.Expr, field string) bool {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == field
		}
		if id, ok := e.(*ast.Ident); ok {
			return id.Name == field
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "==", "!=":
			if (endsIn(be.X, "mark") && endsIn(be.Y, "epoch")) ||
				(endsIn(be.X, "epoch") && endsIn(be.Y, "mark")) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSigGuard flags functions that feed a `sig` variable into a memo
// accessor without guarding it against the −1 POSITION sentinel.
func checkSigGuard(pass *Pass, fd *ast.FuncDecl, memoOf func(types.Type) *memoShape) {
	// Find memo accessor calls within the function.
	var firstMemoCall *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if memoOf(pass.Info.TypeOf(sel.X)) == nil {
			return true
		}
		switch sel.Sel.Name {
		case "getSlot", "putSlot", "put", "fit":
			if firstMemoCall == nil {
				firstMemoCall = call
			}
		}
		return true
	})
	if firstMemoCall == nil {
		return
	}
	// Does the function mention a variable named sig at all?
	var sigIdent *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "sig" && sigIdent == nil {
			sigIdent = id
		}
		return sigIdent == nil
	})
	if sigIdent == nil {
		return
	}
	// Require a comparison of sig against a numeric literal (sig < 0,
	// sig >= 0, sig != -1, ...) anywhere in the function.
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", "<=", ">", ">=", "==", "!=":
			if (isIdentNamed(be.X, "sig") && isNumericLit(be.Y)) ||
				(isIdentNamed(be.Y, "sig") && isNumericLit(be.X)) {
				guarded = true
			}
		}
		return !guarded
	})
	if !guarded {
		pass.Reportf(firstMemoCall.Pos(), "memo access in %s uses sig without guarding the -1 POSITION sentinel: POSITION-dependent units must never be memoized", fd.Name.Name)
	}
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNumericLit(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isNumericLit(x.X)
	}
	return false
}
