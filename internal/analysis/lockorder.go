package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces two locking invariants:
//
//  1. appendMu is the outermost lock (ROADMAP "Streaming ingestion"):
//     AppendRows serializes the whole append path on it and only then
//     touches the server's state lock and the candidate cache's lock.
//     Acquiring appendMu while already holding any other mutex inverts
//     that order and can deadlock against a patcher — the analyzer flags
//     any appendMu acquisition made while another lock is held in the
//     same function (lexical, function-local approximation; lock
//     acquisitions across call boundaries are the code reviewer's job).
//  2. The shared pruning floor (sharedTopK.floorBits) is published under
//     the heap's mutex and read lock-free. Only the owner type's methods
//     (and its new* constructor, which runs before the value is shared)
//     may touch the field — everyone else goes through add()/fastFloor(),
//     which preserve "updated under the lock, read atomically". A
//     non-atomic or out-of-band access is exactly the race the PR 5 floor
//     broadcast was designed to exclude.
//
// Both rules self-gate on the names they police (appendMu, floorBits), so
// the analyzer is a no-op in packages without them.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "appendMu must be acquired before any other lock; the atomic floor word is touched only by its owner's methods",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockOrderFunc(pass, fd)
		}
	}
	checkFloorEncapsulation(pass)
	return nil
}

// lockOp is one Lock/Unlock call found in a function, keyed by the
// rendered selector path of the mutex it targets.
type lockOp struct {
	pos      token.Pos
	path     string // "s.appendMu", "c.mu", ...
	field    string // last path component
	acquire  bool
	deferred bool
}

func checkLockOrderFunc(pass *Pass, fd *ast.FuncDecl) {
	var ops []lockOp
	collect := func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return
		}
		if !isMutexType(pass.Info.TypeOf(sel.X)) {
			return
		}
		path := selectorPath(sel.X)
		if path == "" {
			return
		}
		field := path
		if i := strings.LastIndex(path, "."); i >= 0 {
			field = path[i+1:]
		}
		ops = append(ops, lockOp{pos: call.Pos(), path: path, field: field, acquire: acquire, deferred: deferred})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			collect(ds.Call, true)
			return false // the deferred call itself is handled; skip re-visiting
		}
		collect(n, false)
		return true
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

	// Lexical simulation: a deferred Unlock never releases within the
	// function, so the lock counts as held for the remainder (conservative
	// and faithful to the Lock();defer Unlock() idiom).
	held := map[string]bool{}
	for _, op := range ops {
		if !op.acquire {
			if !op.deferred {
				delete(held, op.path)
			}
			continue
		}
		if op.field == "appendMu" {
			for other := range held {
				pass.Reportf(op.pos, "%s acquired while holding %s: appendMu is the outermost lock (append path order: appendMu → state/cache locks)", op.path, other)
			}
		}
		held[op.path] = true
	}
}

func isMutexType(t types.Type) bool {
	n := derefNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// checkFloorEncapsulation flags accesses to a floorBits field from outside
// the owning type's methods and constructor.
func checkFloorEncapsulation(pass *Pass) {
	funcs := indexFuncs(pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "floorBits" {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			owner := derefNamed(pass.Info.TypeOf(sel.X))
			if owner == nil {
				return true
			}
			fd := funcs.enclosing(sel.Pos())
			if fd == nil {
				return true
			}
			if recv := recvNamed(pass.Info, fd); recv != nil && recv.Obj() == owner.Obj() {
				return true // the owner's own methods
			}
			if strings.EqualFold(fd.Name.Name, "new"+owner.Obj().Name()) {
				return true // constructor runs before the value is shared
			}
			pass.Reportf(sel.Pos(), "floorBits accessed outside %s's methods: the floor is published under the heap lock and read via fastFloor() only", owner.Obj().Name())
			return true
		})
	}
}
