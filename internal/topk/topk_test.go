package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTopKBasic(t *testing.T) {
	h := New[string](3)
	if h.Full() {
		t.Fatal("empty heap should not be full")
	}
	if _, ok := h.Floor(); ok {
		t.Fatal("floor of non-full heap should be unavailable")
	}
	h.Add(0.5, "a")
	h.Add(0.9, "b")
	h.Add(0.1, "c")
	if !h.Full() {
		t.Fatal("heap should be full after k adds")
	}
	if f, ok := h.Floor(); !ok || f != 0.1 {
		t.Fatalf("floor = %v, %v", f, ok)
	}
	// Too-small score is rejected.
	if h.Add(0.05, "d") {
		t.Fatal("score below floor should be rejected")
	}
	// Better score evicts the floor.
	if !h.Add(0.7, "e") {
		t.Fatal("score above floor should be retained")
	}
	got := h.Sorted()
	if len(got) != 3 || got[0].Value != "b" || got[1].Value != "e" || got[2].Value != "a" {
		t.Fatalf("sorted = %+v", got)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		h := New[int](k)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			h.Add(scores[i], i)
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := k
		if n < k {
			want = n
		}
		got := h.Sorted()
		if len(got) != want {
			t.Fatalf("len = %d, want %d", len(got), want)
		}
		for i := range got {
			if got[i].Score != sorted[i] {
				t.Fatalf("top-%d mismatch at %d: %v != %v", k, i, got[i].Score, sorted[i])
			}
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	New[int](0)
}
