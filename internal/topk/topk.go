// Package topk provides a bounded min-heap that retains the k highest
// scoring items seen, the reduction at the end of the SCORE operator.
package topk

import "sort"

// Item is one scored candidate.
type Item[T any] struct {
	Score float64
	Value T
}

// Heap keeps the k items with the highest scores. The zero value is not
// usable; construct with New.
type Heap[T any] struct {
	k     int
	items []Item[T]
}

// New returns a heap retaining the top k items. k must be positive.
func New[T any](k int) *Heap[T] {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap[T]{k: k}
}

// Len reports how many items are currently retained.
func (h *Heap[T]) Len() int { return len(h.items) }

// Full reports whether k items are retained (so Floor is meaningful as a
// pruning bound).
func (h *Heap[T]) Full() bool { return len(h.items) >= h.k }

// Floor returns the smallest retained score: the k-th best so far. It
// returns ok=false until the heap is full; callers using Floor as a lower
// bound must not prune before then.
func (h *Heap[T]) Floor() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Score, true
}

// Add offers an item; it is retained only if it beats the current floor
// (or the heap is not yet full). Reports whether the item was retained.
func (h *Heap[T]) Add(score float64, value T) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, Item[T]{score, value})
		h.up(len(h.items) - 1)
		return true
	}
	if score <= h.items[0].Score {
		return false
	}
	h.items[0] = Item[T]{score, value}
	h.down(0)
	return true
}

// Sorted returns the retained items in descending score order.
func (h *Heap[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(h.items))
	copy(out, h.items)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Score <= h.items[i].Score {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].Score < h.items[small].Score {
			small = l
		}
		if r < n && h.items[r].Score < h.items[small].Score {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
