package pos

import (
	"testing"

	"shapesearch/internal/text"
)

func tagsOf(s string) []Tag {
	return TagTokens(text.Tokenize(s))
}

func TestTagTokens(t *testing.T) {
	tags := tagsOf("show me the genes rising sharply from 2 to 5, please")
	want := []Tag{Verb, Pron, Det, Noun, Verb, Adv, Prep, Num, Prep, Num, Punct, Noun}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tag %d = %v, want %v", i, tags[i], want[i])
		}
	}
}

func TestSuffixMorphology(t *testing.T) {
	cases := map[string]Tag{
		"quickly":    Adv,
		"falling":    Verb,
		"stabilized": Verb,
		"drastic":    Adj,
		"expression": Noun,
		"luminosity": Noun,
		"trend":      Noun,
	}
	for w, want := range cases {
		got := TagTokens(text.Tokenize(w))[0]
		if got != want {
			t.Errorf("%q tagged %v, want %v", w, got, want)
		}
	}
}

func TestNumbersAndMonths(t *testing.T) {
	tags := tagsOf("three peaks in november")
	if tags[0] != Num {
		t.Errorf("three = %v, want NUM", tags[0])
	}
	if tags[3] != Noun {
		t.Errorf("november = %v, want NOUN", tags[3])
	}
}

func TestIsLikelyNoise(t *testing.T) {
	if !IsLikelyNoise(Det) || !IsLikelyNoise(Pron) || !IsLikelyNoise(Punct) {
		t.Error("determiners, pronouns and punctuation are noise")
	}
	if IsLikelyNoise(Verb) || IsLikelyNoise(Noun) || IsLikelyNoise(Num) {
		t.Error("open classes are not automatically noise")
	}
}
