// Package pos implements a compact part-of-speech tagger used to derive
// features for the natural-language parser (Table 3 of the paper) and to
// separate noise words from candidate shape entities. It combines a
// closed-class lexicon with suffix heuristics — ample for the short,
// imperative query language of trendline search.
package pos

import (
	"strings"

	"shapesearch/internal/text"
)

// Tag is a coarse part-of-speech category.
type Tag string

// Coarse tags. Closed classes come from the lexicon; open classes fall back
// to suffix morphology.
const (
	Noun  Tag = "NOUN"
	Verb  Tag = "VERB"
	Adj   Tag = "ADJ"
	Adv   Tag = "ADV"
	Num   Tag = "NUM"
	Det   Tag = "DET"
	Prep  Tag = "PREP"
	Conj  Tag = "CONJ"
	Pron  Tag = "PRON"
	Punct Tag = "PUNCT"
	Other Tag = "OTHER"
)

var lexicon = map[string]Tag{
	// Determiners.
	"a": Det, "an": Det, "the": Det, "this": Det, "that": Det, "these": Det,
	"those": Det, "some": Det, "any": Det, "each": Det, "every": Det,
	// Prepositions (time/space prepositions are features in Table 3).
	"in": Prep, "on": Prep, "at": Prep, "from": Prep, "to": Prep, "of": Prep,
	"by": Prep, "with": Prep, "within": Prep, "over": Prep, "between": Prep,
	"during": Prep, "until": Prep, "till": Prep, "for": Prep, "before": Prep,
	"after": Prep, "around": Prep, "near": Prep, "towards": Prep, "through": Prep,
	// Conjunctions and connectives.
	"and": Conj, "or": Conj, "but": Conj, "then": Conj, "while": Conj,
	"nor": Conj, "so": Conj, "yet": Conj,
	// Pronouns.
	"i": Pron, "me": Pron, "my": Pron, "we": Pron, "us": Pron, "our": Pron,
	"it": Pron, "its": Pron, "they": Pron, "them": Pron, "their": Pron,
	"which": Pron, "whose": Pron, "what": Pron,
	// Common verbs in queries.
	"is": Verb, "are": Verb, "was": Verb, "were": Verb, "be": Verb, "been": Verb,
	"show": Verb, "find": Verb, "get": Verb, "give": Verb, "want": Verb,
	"see": Verb, "display": Verb, "search": Verb, "look": Verb, "goes": Verb,
	"go": Verb, "going": Verb, "stay": Verb, "stays": Verb, "keep": Verb,
	"keeps": Verb, "start": Verb, "starts": Verb, "begin": Verb, "begins": Verb,
	"end": Verb, "ends": Verb, "remain": Verb, "remains": Verb,
	// Frequent adjectives/adverbs in trend language.
	"high": Adj, "low": Adj, "big": Adj, "small": Adj, "long": Adj, "short": Adj,
	"first": Adj, "second": Adj, "third": Adj, "final": Adj, "initial": Adj,
	"very": Adv, "too": Adv, "again": Adv, "once": Adv, "twice": Adv,
	"thrice": Adv, "there": Adv, "not": Adv, "never": Adv, "always": Adv,
	"least": Adv, "most": Adv, "about": Adv, "approximately": Adv, "roughly": Adv,
}

// TagTokens assigns a part-of-speech tag to each token.
func TagTokens(tokens []text.Token) []Tag {
	tags := make([]Tag, len(tokens))
	for i, tok := range tokens {
		tags[i] = tagOne(tok)
	}
	return tags
}

func tagOne(tok text.Token) Tag {
	if tok.IsPunct {
		return Punct
	}
	if tok.IsNumber {
		return Num
	}
	w := tok.Text
	if t, ok := lexicon[w]; ok {
		return t
	}
	if _, ok := text.SmallNumber(w); ok {
		return Num
	}
	if _, ok := text.MonthNumber(w); ok {
		return Noun
	}
	// Suffix morphology for open classes.
	switch {
	case strings.HasSuffix(w, "ly"):
		return Adv
	case strings.HasSuffix(w, "ing"), strings.HasSuffix(w, "ed"),
		strings.HasSuffix(w, "ise"), strings.HasSuffix(w, "ize"):
		return Verb
	case strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ful"),
		strings.HasSuffix(w, "ive"), strings.HasSuffix(w, "able"),
		strings.HasSuffix(w, "al"), strings.HasSuffix(w, "ic"),
		strings.HasSuffix(w, "est"):
		return Adj
	case strings.HasSuffix(w, "tion"), strings.HasSuffix(w, "ment"),
		strings.HasSuffix(w, "ness"), strings.HasSuffix(w, "ity"),
		strings.HasSuffix(w, "er"), strings.HasSuffix(w, "ies"):
		return Noun
	default:
		return Noun
	}
}

// IsLikelyNoise classifies a tagged token as a noise word (Section 4): the
// closed classes that almost never carry shape entities. Prepositions stay
// as features for neighbouring words but are noise themselves, except when
// they connect numbers ("from 2 to 5") — the caller handles that case.
func IsLikelyNoise(tag Tag) bool {
	switch tag {
	case Det, Pron, Punct:
		return true
	default:
		return false
	}
}
