package sketch

import (
	"math"
	"testing"

	"shapesearch/internal/shape"
)

func TestToDomain(t *testing.T) {
	c := Canvas{Width: 100, Height: 100, XMin: 0, XMax: 10, YMin: 0, YMax: 50}
	pts, err := c.ToDomain([]Pixel{{0, 100}, {50, 50}, {100, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []shape.Point{{X: 0, Y: 0}, {X: 5, Y: 25}, {X: 10, Y: 50}}
	for i := range want {
		if math.Abs(pts[i].X-want[i].X) > 1e-9 || math.Abs(pts[i].Y-want[i].Y) > 1e-9 {
			t.Fatalf("pts = %v, want %v", pts, want)
		}
	}
}

func TestToDomainSortsAndDedups(t *testing.T) {
	c := Canvas{Width: 10, Height: 10, XMin: 0, XMax: 10, YMin: 0, YMax: 10}
	// A stroke that wiggles backwards and repeats an x position.
	pts, err := c.ToDomain([]Pixel{{5, 5}, {3, 2}, {5, 7}, {8, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("not strictly sorted: %v", pts)
		}
	}
	if len(pts) != 3 {
		t.Fatalf("duplicate x should merge: %v", pts)
	}
	// Averaged y at x=5: pixels 5 and 7 → domain (10-5)=5 and (10-7)=3 → 4.
	if math.Abs(pts[1].Y-4) > 1e-9 {
		t.Fatalf("averaged y = %v, want 4", pts[1].Y)
	}
}

func TestToDomainErrors(t *testing.T) {
	if _, err := (Canvas{}).ToDomain([]Pixel{{1, 1}}); err == nil {
		t.Error("zero canvas should error")
	}
	c := Canvas{Width: 10, Height: 10, XMin: 0, XMax: 10, YMin: 0, YMax: 10}
	if _, err := c.ToDomain(nil); err == nil {
		t.Error("empty stroke should error")
	}
	bad := Canvas{Width: 10, Height: 10, XMin: 5, XMax: 5, YMin: 0, YMax: 10}
	if _, err := bad.ToDomain([]Pixel{{1, 1}}); err == nil {
		t.Error("empty domain window should error")
	}
}

func TestExactQuery(t *testing.T) {
	q, err := ExactQuery([]shape.Point{{X: 0, Y: 1}, {X: 1, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	segs := q.Root.Segments()
	if len(segs) != 1 || len(segs[0].Sketch) != 2 {
		t.Fatalf("query = %s", q)
	}
	if _, err := ExactQuery([]shape.Point{{X: 0, Y: 1}}); err == nil {
		t.Error("single point should error")
	}
}

// vShape draws a clean V.
func vShape(n int) []shape.Point {
	pts := make([]shape.Point, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, shape.Point{X: float64(i), Y: float64(n - i)})
	}
	for i := 0; i <= n; i++ {
		pts = append(pts, shape.Point{X: float64(n + i), Y: float64(i)})
	}
	return pts
}

func TestInferV(t *testing.T) {
	legs, err := Infer(vShape(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) != 2 {
		t.Fatalf("legs = %+v, want 2", legs)
	}
	if legs[0].AngleDeg >= 0 || legs[1].AngleDeg <= 0 {
		t.Fatalf("angles = %v, %v; want down then up", legs[0].AngleDeg, legs[1].AngleDeg)
	}
	// Legs partition the points and share the corner.
	if legs[0].StartIdx != 0 || legs[1].EndIdx != len(vShape(20))-1 {
		t.Fatalf("legs don't span the sketch: %+v", legs)
	}
	if legs[0].EndIdx < 18 || legs[0].EndIdx > 22 {
		t.Fatalf("corner at %d, want ~20", legs[0].EndIdx)
	}
}

func TestBlurryQueryV(t *testing.T) {
	q, err := BlurryQuery(vShape(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "[p=down][p=up]" {
		t.Fatalf("query = %q", got)
	}
}

func TestBlurryQueryWithFlat(t *testing.T) {
	// Rise, plateau, fall.
	var pts []shape.Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, shape.Point{X: float64(i), Y: float64(i)})
	}
	for i := 1; i <= 10; i++ {
		pts = append(pts, shape.Point{X: float64(10 + i), Y: 10})
	}
	for i := 1; i <= 10; i++ {
		pts = append(pts, shape.Point{X: float64(20 + i), Y: 10 - float64(i)})
	}
	q, err := BlurryQuery(pts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "[p=up][p=flat][p=down]" {
		t.Fatalf("query = %q", got)
	}
}

func TestBlurryQueryKeepSlopes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepSlopes = true
	q, err := BlurryQuery(vShape(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := q.Root.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	for _, s := range segs {
		if s.Pat.Kind != shape.PatSlope {
			t.Fatalf("kind = %v, want slope", s.Pat.Kind)
		}
	}
	if segs[0].Pat.Slope >= 0 || segs[1].Pat.Slope <= 0 {
		t.Fatalf("slopes = %v, %v", segs[0].Pat.Slope, segs[1].Pat.Slope)
	}
}

func TestInferRespectsMaxSegments(t *testing.T) {
	// A zigzag with 4 direction changes but MaxSegments 2.
	var pts []shape.Point
	x := 0.0
	y := 0.0
	for leg := 0; leg < 5; leg++ {
		dir := 1.0
		if leg%2 == 1 {
			dir = -1
		}
		for i := 0; i < 8; i++ {
			pts = append(pts, shape.Point{X: x, Y: y})
			x++
			y += dir
		}
	}
	cfg := DefaultConfig()
	cfg.MaxSegments = 2
	legs, err := Infer(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) > 2 {
		t.Fatalf("legs = %d, want <= 2", len(legs))
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer([]shape.Point{{X: 1, Y: 1}}, DefaultConfig()); err == nil {
		t.Error("single point should error")
	}
}
