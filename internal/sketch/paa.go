package sketch

import "shapesearch/internal/segstat"

// Directions summarizes a (normalized) series into w coarse per-window
// direction codes: +1 where the window's least-squares slope rises
// perceptibly, −1 where it falls, 0 where it reads flat or is degenerate.
// It is the piecewise-aggregate sibling of blurry-sketch inference: the
// same "what would this window look like on a chart" question, answered at
// fixed resolution instead of by segmentation.
//
// The corpus shape index uses the codes as its build-time bucketing key —
// visualizations with matching direction profiles bucket together, which
// keeps merged slope envelopes tight. The codes are deterministic for a
// given input and never consulted at query time, so they influence pruning
// effectiveness only, never correctness.
func Directions(xs, ys []float64, w int) []int8 {
	n := len(xs)
	if w < 1 || n < 2 {
		return nil
	}
	if w > n-1 {
		w = n - 1
	}
	// flatSlope separates "reads flat" from "reads trending" on the
	// normalized chart scale — the same order of magnitude the perceptual
	// flat score uses. The exact value only shifts bucket boundaries.
	const flatSlope = 0.25
	out := make([]int8, w)
	for k := 0; k < w; k++ {
		// Windows share boundary points so every adjacent pair is covered.
		lo := k * (n - 1) / w
		hi := (k + 1) * (n - 1) / w
		var st segstat.Stats
		for i := lo; i <= hi; i++ {
			st.Add(xs[i], ys[i])
		}
		s, ok := st.Slope()
		switch {
		case !ok:
		case s > flatSlope:
			out[k] = 1
		case s < -flatSlope:
			out[k] = -1
		}
	}
	return out
}
