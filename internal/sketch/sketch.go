// Package sketch implements ShapeSearch's sketching interface (Section 2):
// translating canvas pixels into domain coordinates, building precise-match
// sketch queries, and inferring blurry pattern-sequence queries from a
// drawing via bottom-up piecewise-linear segmentation — the "multiple line
// segments that ShapeSearch can automatically infer from the user-drawn
// sketch" (Section 5.2).
package sketch

import (
	"fmt"
	"math"
	"sort"

	"shapesearch/internal/segstat"
	"shapesearch/internal/shape"
)

// Canvas describes the drawing surface and the domain window it maps onto.
// Pixel y grows downward (screen convention); domain y grows upward.
type Canvas struct {
	Width, Height float64
	XMin, XMax    float64
	YMin, YMax    float64
}

// Pixel is one sampled point of the user's stroke in canvas coordinates.
type Pixel struct {
	PX, PY float64
}

// ToDomain translates stroke pixels into domain-coordinate sketch points,
// sorted by x with duplicate x positions averaged (strokes often wiggle
// backwards a pixel or two).
func (c Canvas) ToDomain(stroke []Pixel) ([]shape.Point, error) {
	if c.Width <= 0 || c.Height <= 0 {
		return nil, fmt.Errorf("sketch: canvas dimensions must be positive")
	}
	if c.XMax <= c.XMin || c.YMax <= c.YMin {
		return nil, fmt.Errorf("sketch: domain window must be non-empty")
	}
	if len(stroke) == 0 {
		return nil, fmt.Errorf("sketch: empty stroke")
	}
	pts := make([]shape.Point, 0, len(stroke))
	for _, p := range stroke {
		x := c.XMin + p.PX/c.Width*(c.XMax-c.XMin)
		y := c.YMax - p.PY/c.Height*(c.YMax-c.YMin)
		pts = append(pts, shape.Point{X: x, Y: y})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	// Average duplicate x positions.
	out := pts[:0]
	for i := 0; i < len(pts); {
		j := i
		var sum float64
		for j < len(pts) && pts[j].X == pts[i].X {
			sum += pts[j].Y
			j++
		}
		out = append(out, shape.Point{X: pts[i].X, Y: sum / float64(j-i)})
		i = j
	}
	return out, nil
}

// ExactQuery wraps sketch points into a precise-match ShapeQuery scored
// with the L2 norm (Table 5, "v").
func ExactQuery(points []shape.Point) (shape.Query, error) {
	if len(points) < 2 {
		return shape.Query{}, fmt.Errorf("sketch: need at least two points, got %d", len(points))
	}
	q := shape.Query{Root: shape.Seg(shape.Segment{Sketch: points})}
	if err := q.Validate(); err != nil {
		return shape.Query{}, err
	}
	return q, nil
}

// Config controls blurry-query inference.
type Config struct {
	// MaxSegments caps the inferred pattern sequence length (default 4).
	MaxSegments int
	// Tolerance is the relative fit-error threshold that stops merging
	// early: merging continues while the cheapest merge adds less than
	// Tolerance × the sketch's y variance (default 0.05).
	Tolerance float64
	// KeepSlopes emits θ=angle patterns preserving the drawn slopes;
	// otherwise segments map to up/down/flat (the blurrier default).
	KeepSlopes bool
	// FlatAngle is the |angle| in degrees below which a leg reads as flat
	// (default 10).
	FlatAngle float64
}

// DefaultConfig returns the system defaults.
func DefaultConfig() Config {
	return Config{MaxSegments: 4, Tolerance: 0.05, FlatAngle: 10}
}

// Leg is one inferred line segment of a sketch.
type Leg struct {
	// StartIdx and EndIdx are inclusive indices into the sketch points.
	StartIdx, EndIdx int
	// AngleDeg is the fitted angle in normalized chart space.
	AngleDeg float64
}

// Infer segments the sketch into legs by bottom-up merging: start from
// minimal segments and repeatedly merge the adjacent pair whose combined
// line fit adds the least squared error.
func Infer(points []shape.Point, cfg Config) ([]Leg, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("sketch: need at least two points, got %d", len(points))
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 4
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	// Normalize into chart space: x spans 4 units, y is z-scored, so
	// angles mean the same thing they mean in the executor.
	nx := make([]float64, len(points))
	ny := make([]float64, len(points))
	xmin, xmax := points[0].X, points[len(points)-1].X
	span := xmax - xmin
	if span <= 0 {
		span = 1
	}
	for i, p := range points {
		nx[i] = (p.X - xmin) / span * 4
		ny[i] = p.Y
	}
	segstat.ZNormalize(ny)
	variance := 0.0
	for _, y := range ny {
		variance += y * y
	}
	variance /= float64(len(ny))
	if variance == 0 {
		variance = 1
	}

	// Start with one leg per adjacent pair; greedily merge.
	type seg struct{ lo, hi int }
	segs := make([]seg, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		segs = append(segs, seg{i, i + 1})
	}
	sse := func(lo, hi int) float64 {
		st := segstat.FromPoints(nx[lo:hi+1], ny[lo:hi+1])
		slope, intercept, ok := st.Line()
		if !ok {
			return 0
		}
		var total float64
		for i := lo; i <= hi; i++ {
			d := ny[i] - (slope*nx[i] + intercept)
			total += d * d
		}
		return total
	}
	for len(segs) > 1 {
		bestIdx, bestCost := -1, math.Inf(1)
		for i := 0; i+1 < len(segs); i++ {
			cost := sse(segs[i].lo, segs[i+1].hi) - sse(segs[i].lo, segs[i].hi) - sse(segs[i+1].lo, segs[i+1].hi)
			if cost < bestCost {
				bestCost, bestIdx = cost, i
			}
		}
		// Stop when few enough segments remain and the next merge would
		// distort the drawing beyond tolerance.
		if len(segs) <= cfg.MaxSegments && bestCost > cfg.Tolerance*variance*float64(len(points)) {
			break
		}
		segs[bestIdx].hi = segs[bestIdx+1].hi
		segs = append(segs[:bestIdx+1], segs[bestIdx+2:]...)
	}

	legs := make([]Leg, 0, len(segs))
	for _, s := range segs {
		st := segstat.FromPoints(nx[s.lo:s.hi+1], ny[s.lo:s.hi+1])
		slope, ok := st.Slope()
		if !ok {
			slope = 0
		}
		legs = append(legs, Leg{
			StartIdx: s.lo,
			EndIdx:   s.hi,
			AngleDeg: math.Atan(slope) * 180 / math.Pi,
		})
	}
	return legs, nil
}

// BlurryQuery infers a pattern-sequence ShapeQuery from a sketch: the legs
// become CONCAT-ed up/down/flat (or θ=angle) segments, giving the sketch the
// same blurry-matching semantics as a typed query.
func BlurryQuery(points []shape.Point, cfg Config) (shape.Query, error) {
	legs, err := Infer(points, cfg)
	if err != nil {
		return shape.Query{}, err
	}
	if cfg.FlatAngle <= 0 {
		cfg.FlatAngle = 10
	}
	nodes := make([]*shape.Node, 0, len(legs))
	for _, leg := range legs {
		var pat shape.Pattern
		switch {
		case cfg.KeepSlopes:
			angle := leg.AngleDeg
			if angle > 89 {
				angle = 89
			}
			if angle < -89 {
				angle = -89
			}
			pat = shape.Pattern{Kind: shape.PatSlope, Slope: angle}
		case math.Abs(leg.AngleDeg) < cfg.FlatAngle:
			pat = shape.Pattern{Kind: shape.PatFlat}
		case leg.AngleDeg > 0:
			pat = shape.Pattern{Kind: shape.PatUp}
		default:
			pat = shape.Pattern{Kind: shape.PatDown}
		}
		nodes = append(nodes, shape.Seg(shape.Segment{Pat: pat}))
	}
	q := shape.Query{Root: shape.Concat(nodes...)}
	if err := q.Validate(); err != nil {
		return shape.Query{}, err
	}
	return q, nil
}
