package dataset

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTable builds a dataset shaped like real candidate-cache-miss
// traffic: many z groups of moderate length plus filterable attributes.
func benchTable(groups, perGroup int) *Table {
	rng := rand.New(rand.NewSource(3))
	rows := groups * perGroup
	zs := make([]string, 0, rows)
	xs := make([]float64, 0, rows)
	ys := make([]float64, 0, rows)
	region := make([]float64, 0, rows)
	sector := make([]string, 0, rows)
	sectors := []string{"tech", "energy", "health", "retail"}
	for g := 0; g < groups; g++ {
		z := fmt.Sprintf("series-%04d", g)
		sec := sectors[g%len(sectors)]
		for i := 0; i < perGroup; i++ {
			zs = append(zs, z)
			xs = append(xs, float64(i))
			ys = append(ys, rng.NormFloat64())
			region = append(region, float64(g%8))
			sector = append(sector, sec)
		}
	}
	tbl, err := New(
		Column{Name: "z", Type: String, Strings: zs},
		Column{Name: "x", Type: Float, Floats: xs},
		Column{Name: "y", Type: Float, Floats: ys},
		Column{Name: "region", Type: Float, Floats: region},
		Column{Name: "sector", Type: String, Strings: sector},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// BenchmarkIndexBuild isolates the one-time cost Register pays per upload:
// eager string dictionaries only; permutations are lazy.
func BenchmarkIndexBuild(b *testing.B) {
	for _, size := range []struct{ groups, perGroup int }{
		{100, 100}, {1000, 100},
	} {
		tbl := benchTable(size.groups, size.perGroup)
		b.Run(fmt.Sprintf("rows=%d", tbl.NumRows()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildIndex(tbl)
			}
		})
	}
}

// BenchmarkIndexFirstExtract measures the cold path: index build plus the
// first extraction, which also builds the (z, x) permutation. This is the
// full price of switching a one-shot extraction to the indexed path.
func BenchmarkIndexFirstExtract(b *testing.B) {
	tbl := benchTable(500, 100)
	spec := ExtractSpec{Z: "z", X: "x", Y: "y"}
	b.Run("Legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Extract(tbl, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IndexedCold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildIndex(tbl).Extract(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractDistinctFilters is the cache-miss traffic the index
// targets: repeated queries over one registered dataset whose filters vary
// per query, so the server's exact-spec candidate cache never hits. The
// legacy path re-renders z, re-hashes and re-sorts every group per query;
// the indexed path pays a bitmap sweep and one pass over presorted runs.
func BenchmarkExtractDistinctFilters(b *testing.B) {
	tbl := benchTable(500, 100)
	ix := BuildIndex(tbl)
	// Warm the (z, x) permutation so the steady state is measured.
	if _, err := ix.Extract(ExtractSpec{Z: "z", X: "x", Y: "y"}); err != nil {
		b.Fatal(err)
	}
	specAt := func(i int) ExtractSpec {
		return ExtractSpec{
			Z: "z", X: "x", Y: "y",
			Filters: []Filter{
				{Col: "region", Op: Le, Num: float64(i % 8)},
				{Col: "sector", Op: Ne, Str: []string{"tech", "energy", "health", "retail"}[i%4]},
			},
		}
	}
	b.Run("Legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Extract(tbl, specAt(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Extract(specAt(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractXRange measures the LOCATION push-down: binary-searched
// run restriction versus the legacy per-row range test.
func BenchmarkExtractXRange(b *testing.B) {
	tbl := benchTable(500, 100)
	ix := BuildIndex(tbl)
	spec := ExtractSpec{Z: "z", X: "x", Y: "y", XRanges: [][2]float64{{60, 80}}}
	if _, err := ix.Extract(spec); err != nil {
		b.Fatal(err)
	}
	b.Run("Legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Extract(tbl, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Extract(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
