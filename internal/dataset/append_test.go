package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// randomDelta draws an append batch over randomTable's schema: z values
// overlap the base's range but reach past it (new groups get fresh
// dictionary codes), x values land anywhere on the grid (out-of-order
// arrivals relative to the base), and NaNs appear in both x and y.
func randomDelta(rng *rand.Rand, rows int) *Table {
	zs := make([]string, rows)
	zf := make([]float64, rows)
	xs := make([]float64, rows)
	ys := make([]float64, rows)
	fnum := make([]float64, rows)
	fstr := make([]string, rows)
	for i := 0; i < rows; i++ {
		zs[i] = fmt.Sprintf("z%02d", rng.Intn(15)) // may introduce new groups
		zf[i] = float64(rng.Intn(9)) / 2
		xs[i] = float64(rng.Intn(24))
		if rng.Intn(25) == 0 {
			xs[i] = math.NaN()
		}
		ys[i] = rng.NormFloat64() * 10
		if rng.Intn(25) == 0 {
			ys[i] = math.NaN()
		}
		fnum[i] = float64(rng.Intn(10))
		fstr[i] = string(rune('a' + rng.Intn(4)))
	}
	tbl, err := New(
		Column{Name: "zs", Type: String, Strings: zs},
		Column{Name: "zf", Type: Float, Floats: zf},
		Column{Name: "x", Type: Float, Floats: xs},
		Column{Name: "y", Type: Float, Floats: ys},
		Column{Name: "fnum", Type: Float, Floats: fnum},
		Column{Name: "fstr", Type: String, Strings: fstr},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// inOrderDelta draws an append batch whose x values strictly extend the
// base grid — the pure-extend streaming case of zxPerm.extend.
func inOrderDelta(rng *rand.Rand, rows int, xBase float64) *Table {
	d := randomDelta(rng, rows)
	for i := range d.cols[2].Floats {
		if !math.IsNaN(d.cols[2].Floats[i]) {
			d.cols[2].Floats[i] = xBase + float64(i)
		}
	}
	return d
}

// copyTable deep-copies a table so a rebuilt index cannot share (or be
// perturbed by) the in-place growth of the appended one.
func copyTable(t *Table) *Table {
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = Column{Name: c.Name, Type: c.Type}
		if c.Type == Float {
			cols[i].Floats = append([]float64(nil), c.Floats...)
		} else {
			cols[i].Strings = append([]string(nil), c.Strings...)
		}
	}
	nt, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return nt
}

// TestIndexAppendMatchesRebuild is the incremental-maintenance equivalence
// property: after any sequence of appends — in-order and out-of-order x,
// new z values, NaNs — extraction through the incrementally maintained
// index is bit-identical (same errors included) to both a fresh BuildIndex
// of the concatenated table and the legacy Extract over it. Specs run
// BEFORE the appends too, so extended (not freshly built) encodings and
// layouts are what the comparison exercises.
func TestIndexAppendMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 120; iter++ {
		tbl := randomTable(rng)
		ix := BuildIndex(tbl)
		// Touch a few specs up front to force lazy builds that the appends
		// must then maintain incrementally.
		warm := make([]ExtractSpec, 0, 3)
		for q := 0; q < 3; q++ {
			spec := randomSpec(rng)
			warm = append(warm, spec)
			_, _ = ix.Extract(spec)
		}
		for step := 0; step < 3; step++ {
			var delta *Table
			if rng.Intn(2) == 0 {
				delta = inOrderDelta(rng, 1+rng.Intn(30), 20+float64(step))
			} else {
				delta = randomDelta(rng, 1+rng.Intn(30))
			}
			if err := ix.Append(delta); err != nil {
				t.Fatalf("iter %d step %d: append: %v", iter, step, err)
			}
			fresh := copyTable(ix.Table())
			freshIx := BuildIndex(fresh)
			specs := append(append([]ExtractSpec(nil), warm...), randomSpec(rng))
			for si, spec := range specs {
				legacy, lerr := Extract(fresh, spec)
				appended, aerr := ix.Extract(spec)
				rebuilt, rerr := freshIx.Extract(spec)
				if (lerr == nil) != (aerr == nil) || (lerr == nil) != (rerr == nil) {
					t.Fatalf("iter %d step %d spec %d: errors legacy=%v appended=%v rebuilt=%v",
						iter, step, si, lerr, aerr, rerr)
				}
				if lerr != nil {
					if lerr.Error() != aerr.Error() {
						t.Fatalf("iter %d step %d spec %d: error mismatch:\nlegacy:   %v\nappended: %v",
							iter, step, si, lerr, aerr)
					}
					continue
				}
				assertSeriesIdentical(t, legacy, appended)
				assertSeriesIdentical(t, rebuilt, appended)
			}
		}
	}
}

// TestExtractGroupsMatchesExtract checks the repair path: for any subset of
// z values (present, absent, duplicated), ExtractGroups returns exactly
// the matching entries of the full extraction, bit-identical.
func TestExtractGroupsMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 150; iter++ {
		tbl := randomTable(rng)
		ix := BuildIndex(tbl)
		if rng.Intn(2) == 0 {
			if err := ix.Append(randomDelta(rng, 1+rng.Intn(20))); err != nil {
				t.Fatal(err)
			}
		}
		spec := randomSpec(rng)
		full, ferr := ix.Extract(spec)
		zvals := make([]string, 0, 6)
		for n := rng.Intn(6); n >= 0; n-- {
			if len(full) > 0 && rng.Intn(3) > 0 {
				zvals = append(zvals, full[rng.Intn(len(full))].Z)
			} else {
				zvals = append(zvals, fmt.Sprintf("z%02d", rng.Intn(20)))
			}
		}
		got, gerr := ix.ExtractGroups(spec, zvals)
		if (ferr == nil) != (gerr == nil) {
			// ExtractGroups may dodge an AggNone duplicate confined to an
			// unrequested group; only the reverse direction is a bug.
			if ferr == nil {
				t.Fatalf("iter %d: ExtractGroups err %v, Extract none", iter, gerr)
			}
			continue
		}
		if ferr != nil {
			continue
		}
		want := make([]Series, 0, len(zvals))
		asked := make(map[string]bool, len(zvals))
		for _, z := range zvals {
			asked[z] = true
		}
		for _, s := range full {
			if asked[s.Z] {
				want = append(want, s)
			}
		}
		assertSeriesIdentical(t, want, got)
	}
}

// TestAppendSchemaMismatch pins the validation errors.
func TestAppendSchemaMismatch(t *testing.T) {
	base, err := New(
		Column{Name: "z", Type: String, Strings: []string{"a"}},
		Column{Name: "x", Type: Float, Floats: []float64{1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(base)
	wrongCount, _ := New(Column{Name: "z", Type: String, Strings: []string{"a"}})
	if err := ix.Append(wrongCount); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Errorf("column-count mismatch: got %v", err)
	}
	wrongName, _ := New(
		Column{Name: "zz", Type: String, Strings: []string{"a"}},
		Column{Name: "x", Type: Float, Floats: []float64{1}},
	)
	if err := ix.Append(wrongName); err == nil {
		t.Error("column-name mismatch should error")
	}
	wrongType, _ := New(
		Column{Name: "z", Type: Float, Floats: []float64{1}},
		Column{Name: "x", Type: Float, Floats: []float64{1}},
	)
	if err := ix.Append(wrongType); err == nil {
		t.Error("column-type mismatch should error")
	}
	if ix.NumRows() != 1 {
		t.Errorf("failed appends must not grow the table: %d rows", ix.NumRows())
	}
}

// TestIndexConcurrentAppendExtract races appends against extractions (run
// with -race): every extraction must observe a consistent snapshot — a
// prefix of the append sequence — and never a torn state.
func TestIndexConcurrentAppendExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := randomTable(rng)
	ix := BuildIndex(tbl)
	deltas := make([]*Table, 20)
	for i := range deltas {
		deltas[i] = randomDelta(rand.New(rand.NewSource(int64(100+i))), 1+i%7)
	}
	spec := ExtractSpec{Z: "zs", X: "x", Y: "y", Agg: AggAvg}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, d := range deltas {
			if err := ix.Append(d); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := ix.Extract(spec); err != nil {
					t.Errorf("extract: %v", err)
					return
				}
				if _, err := ix.ExtractGroups(spec, []string{"z00", "z07"}); err != nil {
					t.Errorf("extract groups: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
