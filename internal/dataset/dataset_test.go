package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func floatCol(name string, vals ...float64) Column {
	return Column{Name: name, Type: Float, Floats: vals}
}

func strCol(name string, vals ...string) Column {
	return Column{Name: name, Type: String, Strings: vals}
}

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(
		strCol("product", "a", "a", "a", "b", "b", "b", "c", "c", "c"),
		floatCol("year", 1, 2, 3, 1, 2, 3, 1, 2, 3),
		floatCol("sales", 10, 20, 30, 30, 20, 10, 5, 5, 5),
		floatCol("region", 1, 1, 1, 2, 2, 2, 1, 1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(floatCol("", 1)); err == nil {
		t.Error("empty column name should error")
	}
	if _, err := New(floatCol("a", 1), floatCol("a", 2)); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := New(floatCol("a", 1, 2), floatCol("b", 1)); err == nil {
		t.Error("ragged columns should error")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.NumRows() != 9 || tbl.NumCols() != 4 {
		t.Fatalf("dims = %d x %d", tbl.NumRows(), tbl.NumCols())
	}
	c, err := tbl.Column("sales")
	if err != nil || c.Type != Float {
		t.Fatalf("Column(sales): %v", err)
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("missing column should error")
	}
	names := tbl.ColumnNames()
	if len(names) != 4 || names[0] != "product" {
		t.Errorf("names = %v", names)
	}
}

func TestExtractBasic(t *testing.T) {
	tbl := sampleTable(t)
	series, err := Extract(tbl, ExtractSpec{Z: "product", X: "year", Y: "sales"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	// Sorted by z.
	if series[0].Z != "a" || series[1].Z != "b" || series[2].Z != "c" {
		t.Fatalf("z order = %v %v %v", series[0].Z, series[1].Z, series[2].Z)
	}
	a := series[0]
	if a.Len() != 3 || a.X[0] != 1 || a.Y[2] != 30 {
		t.Fatalf("series a = %+v", a)
	}
}

func TestExtractFilters(t *testing.T) {
	tbl := sampleTable(t)
	series, err := Extract(tbl, ExtractSpec{
		Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "region", Op: Eq, Num: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Z != "b" {
		t.Fatalf("series = %+v", series)
	}
	// Range filter.
	series, err = Extract(tbl, ExtractSpec{
		Z: "product", X: "year", Y: "sales",
		Filters: []Filter{
			{Col: "sales", Op: Gt, Num: 4},
			{Col: "sales", Op: Lt, Num: 11},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// a keeps year 1, b keeps year 3, c keeps all.
	if len(series) != 3 || series[0].Len() != 1 || series[2].Len() != 3 {
		t.Fatalf("series = %+v", series)
	}
	// String filter.
	series, err = Extract(tbl, ExtractSpec{
		Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "product", Op: Ne, Str: "a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	// Bad operator on string column.
	if _, err := Extract(tbl, ExtractSpec{
		Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "product", Op: Lt, Str: "a"}},
	}); err == nil {
		t.Error("Lt on string column should error")
	}
}

func TestExtractXRangePushdown(t *testing.T) {
	tbl := sampleTable(t)
	series, err := Extract(tbl, ExtractSpec{
		Z: "product", X: "year", Y: "sales",
		XRanges: [][2]float64{{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Len() != 2 || s.X[0] != 2 {
			t.Fatalf("pushdown failed: %+v", s)
		}
	}
}

func TestExtractAggregation(t *testing.T) {
	tbl, err := New(
		strCol("city", "x", "x", "x", "x"),
		floatCol("month", 1, 1, 2, 2),
		floatCol("price", 10, 20, 5, 15),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates without aggregation: error.
	if _, err := Extract(tbl, ExtractSpec{Z: "city", X: "month", Y: "price"}); err == nil {
		t.Fatal("duplicates without agg should error")
	}
	cases := []struct {
		agg  Agg
		want [2]float64
	}{
		{AggAvg, [2]float64{15, 10}},
		{AggSum, [2]float64{30, 20}},
		{AggMin, [2]float64{10, 5}},
		{AggMax, [2]float64{20, 15}},
		{AggCount, [2]float64{2, 2}},
	}
	for _, c := range cases {
		series, err := Extract(tbl, ExtractSpec{Z: "city", X: "month", Y: "price", Agg: c.agg})
		if err != nil {
			t.Fatalf("%v: %v", c.agg, err)
		}
		got := [2]float64{series[0].Y[0], series[0].Y[1]}
		if got != c.want {
			t.Errorf("%v: got %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestExtractNumericZ(t *testing.T) {
	tbl, err := New(
		floatCol("id", 1, 1, 2, 2),
		floatCol("t", 0, 1, 0, 1),
		floatCol("v", 5, 6, 7, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Extract(tbl, ExtractSpec{Z: "id", X: "t", Y: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Z != "1" {
		t.Fatalf("series = %+v", series)
	}
}

func TestExtractSkipsNaN(t *testing.T) {
	tbl, err := New(
		strCol("z", "a", "a", "a"),
		floatCol("x", 1, 2, 3),
		floatCol("y", 1, math.NaN(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Extract(tbl, ExtractSpec{Z: "z", X: "x", Y: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Len() != 2 {
		t.Fatalf("NaN row should be dropped: %+v", series[0])
	}
}

func TestExtractErrors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := Extract(tbl, ExtractSpec{Z: "nope", X: "year", Y: "sales"}); err == nil {
		t.Error("missing z should error")
	}
	if _, err := Extract(tbl, ExtractSpec{Z: "product", X: "product", Y: "sales"}); err == nil {
		t.Error("string x should error")
	}
	if _, err := Extract(tbl, ExtractSpec{Z: "product", X: "year", Y: "product"}); err == nil {
		t.Error("string y should error")
	}
	if _, err := Extract(tbl, ExtractSpec{Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "ghost", Op: Eq}}}); err == nil {
		t.Error("missing filter column should error")
	}
}

const csvSample = `city,month,temp,note
nyc,1,30.5,cold
nyc,2,35,mild
sf,1,50,mild
sf,2,,missing
`

func TestFromCSV(t *testing.T) {
	tbl, err := FromCSV(strings.NewReader(csvSample))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 || tbl.NumCols() != 4 {
		t.Fatalf("dims = %d x %d", tbl.NumRows(), tbl.NumCols())
	}
	c, _ := tbl.Column("temp")
	if c.Type != Float {
		t.Fatal("temp should infer Float")
	}
	if !math.IsNaN(c.Floats[3]) {
		t.Fatal("empty numeric cell should be NaN")
	}
	n, _ := tbl.Column("note")
	if n.Type != String || n.Strings[0] != "cold" {
		t.Fatal("note should infer String")
	}
	if _, err := FromCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() || back.NumCols() != tbl.NumCols() {
		t.Fatalf("round trip dims = %d x %d", back.NumRows(), back.NumCols())
	}
	s1, _ := Extract(tbl, ExtractSpec{Z: "product", X: "year", Y: "sales"})
	s2, _ := Extract(back, ExtractSpec{Z: "product", X: "year", Y: "sales"})
	for i := range s1 {
		if s1[i].Z != s2[i].Z || s1[i].Len() != s2[i].Len() {
			t.Fatal("round trip series mismatch")
		}
		for j := range s1[i].Y {
			if s1[i].Y[j] != s2[i].Y[j] {
				t.Fatal("round trip values mismatch")
			}
		}
	}
}

const jsonSample = `[
  {"gene": "gbx2", "hour": 0, "expr": 1.5},
  {"gene": "gbx2", "hour": 1, "expr": 2.5},
  {"gene": "klf5", "hour": 0, "expr": 0.5},
  {"gene": "klf5", "hour": 1, "expr": 1.0}
]`

func TestFromJSON(t *testing.T) {
	tbl, err := FromJSON(strings.NewReader(jsonSample))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("dims = %d x %d", tbl.NumRows(), tbl.NumCols())
	}
	g, err := tbl.Column("gene")
	if err != nil || g.Type != String {
		t.Fatalf("gene column: %v", err)
	}
	e, err := tbl.Column("expr")
	if err != nil || e.Type != Float {
		t.Fatalf("expr column: %v", err)
	}
	series, err := Extract(tbl, ExtractSpec{Z: "gene", X: "hour", Y: "expr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Z != "gbx2" {
		t.Fatalf("series = %+v", series)
	}
	if _, err := FromJSON(strings.NewReader("[]")); err == nil {
		t.Error("empty JSON should error")
	}
	if _, err := FromJSON(strings.NewReader("{}")); err == nil {
		t.Error("non-array JSON should error")
	}
}

func TestFromJSONMixedTypes(t *testing.T) {
	// A key that is numeric in one row and string in another degrades to a
	// String column.
	in := `[{"a": 1, "b": 2}, {"a": "x", "b": 3}]`
	tbl, err := FromJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tbl.Column("a")
	if a.Type != String || a.Strings[0] != "1" {
		t.Fatalf("a = %+v", a)
	}
	b, _ := tbl.Column("b")
	if b.Type != Float {
		t.Fatal("b should stay Float")
	}
}

func TestOpenCSVMissing(t *testing.T) {
	if _, err := OpenCSV("/nonexistent/file.csv"); err == nil {
		t.Error("missing file should error")
	}
}
