package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// assertSeriesIdentical asserts two extraction results are byte-identical:
// same series, same order, and float values equal bit-for-bit (so -0 vs 0
// or rounding-order differences fail).
func assertSeriesIdentical(t *testing.T, legacy, indexed []Series) {
	t.Helper()
	if len(legacy) != len(indexed) {
		t.Fatalf("series count: legacy %d, indexed %d", len(legacy), len(indexed))
	}
	for i := range legacy {
		l, ix := legacy[i], indexed[i]
		if l.Z != ix.Z {
			t.Fatalf("series %d z: legacy %q, indexed %q", i, l.Z, ix.Z)
		}
		if l.Len() != ix.Len() {
			t.Fatalf("series %d (%q) len: legacy %d, indexed %d", i, l.Z, l.Len(), ix.Len())
		}
		for j := range l.X {
			if math.Float64bits(l.X[j]) != math.Float64bits(ix.X[j]) {
				t.Fatalf("series %q x[%d]: legacy %v, indexed %v", l.Z, j, l.X[j], ix.X[j])
			}
			if math.Float64bits(l.Y[j]) != math.Float64bits(ix.Y[j]) {
				t.Fatalf("series %q y[%d]: legacy %v, indexed %v", l.Z, j, l.Y[j], ix.Y[j])
			}
		}
	}
}

// randomTable builds a table with a string z, a float z, an x with
// duplicates and NaNs, a y with NaNs, and float/string filter columns.
func randomTable(rng *rand.Rand) *Table {
	rows := rng.Intn(120)
	zs := make([]string, rows)
	zf := make([]float64, rows)
	xs := make([]float64, rows)
	ys := make([]float64, rows)
	fnum := make([]float64, rows)
	fstr := make([]string, rows)
	for i := 0; i < rows; i++ {
		zs[i] = fmt.Sprintf("z%02d", rng.Intn(1+rng.Intn(12)))
		zf[i] = float64(rng.Intn(7)) / 2 // collides and renders as "0", "0.5", ...
		// Duplicate-heavy x grid so aggregation paths are exercised.
		xs[i] = float64(rng.Intn(20))
		if rng.Intn(25) == 0 {
			xs[i] = math.NaN()
		}
		ys[i] = rng.NormFloat64() * 10
		if rng.Intn(25) == 0 {
			ys[i] = math.NaN()
		}
		fnum[i] = float64(rng.Intn(10))
		fstr[i] = string(rune('a' + rng.Intn(4)))
	}
	tbl, err := New(
		Column{Name: "zs", Type: String, Strings: zs},
		Column{Name: "zf", Type: Float, Floats: zf},
		Column{Name: "x", Type: Float, Floats: xs},
		Column{Name: "y", Type: Float, Floats: ys},
		Column{Name: "fnum", Type: Float, Floats: fnum},
		Column{Name: "fstr", Type: String, Strings: fstr},
	)
	if err != nil {
		panic(err)
	}
	return tbl
}

// randomSpec draws a spec with random z type, filters, agg and XRanges.
func randomSpec(rng *rand.Rand) ExtractSpec {
	spec := ExtractSpec{Z: "zs", X: "x", Y: "y"}
	if rng.Intn(2) == 0 {
		spec.Z = "zf"
	}
	spec.Agg = Agg(rng.Intn(6)) // includes AggNone, which may error on duplicates
	for n := rng.Intn(4); n > 0; n-- {
		switch rng.Intn(3) {
		case 0:
			spec.Filters = append(spec.Filters, Filter{
				Col: "fnum", Op: FilterOp(rng.Intn(6)), Num: float64(rng.Intn(10)),
			})
		case 1:
			op := Eq
			if rng.Intn(2) == 0 {
				op = Ne
			}
			// Sometimes a value absent from the column.
			s := string(rune('a' + rng.Intn(6)))
			spec.Filters = append(spec.Filters, Filter{Col: "fstr", Op: op, Str: s})
		case 2:
			spec.Filters = append(spec.Filters, Filter{
				Col: "y", Op: FilterOp(rng.Intn(6)), Num: rng.NormFloat64() * 10,
			})
		}
	}
	for n := rng.Intn(3); n > 0; n-- {
		a := float64(rng.Intn(22)) - 1
		b := a + float64(rng.Intn(10)) - 2 // sometimes inverted (empty window)
		spec.XRanges = append(spec.XRanges, [2]float64{a, b})
	}
	return spec
}

// TestIndexedExtractMatchesLegacy is the equivalence property test: for
// random tables and specs (filters, aggs, XRanges, float and string z),
// index-backed extraction returns series identical to the legacy Extract —
// including which error, if any, is reported.
func TestIndexedExtractMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		tbl := randomTable(rng)
		ix := BuildIndex(tbl)
		for q := 0; q < 4; q++ {
			spec := randomSpec(rng)
			legacy, lerr := Extract(tbl, spec)
			indexed, xerr := ix.Extract(spec)
			if (lerr == nil) != (xerr == nil) {
				t.Fatalf("iter %d spec %+v: legacy err %v, indexed err %v", iter, spec, lerr, xerr)
			}
			if lerr != nil {
				if lerr.Error() != xerr.Error() {
					t.Fatalf("iter %d spec %+v: error mismatch:\nlegacy:  %v\nindexed: %v", iter, spec, lerr, xerr)
				}
				continue
			}
			assertSeriesIdentical(t, legacy, indexed)
		}
	}
}

// TestIndexedExtractErrors mirrors the legacy validation errors through the
// indexed path.
func TestIndexedExtractErrors(t *testing.T) {
	tbl := sampleTable(t)
	ix := BuildIndex(tbl)
	if _, err := ix.Extract(ExtractSpec{Z: "nope", X: "year", Y: "sales"}); err == nil {
		t.Error("missing z should error")
	}
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "product", Y: "sales"}); err == nil {
		t.Error("string x should error")
	}
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "year", Y: "product"}); err == nil {
		t.Error("string y should error")
	}
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "ghost", Op: Eq}}}); err == nil {
		t.Error("missing filter column should error")
	}
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "product", Op: Lt, Str: "a"}}}); err == nil {
		t.Error("Lt on string column should error")
	}
}

// TestIndexConcurrentExtract exercises the lazy permutation/encoding builds
// under concurrency (run with -race).
func TestIndexConcurrentExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := randomTable(rng)
	ix := BuildIndex(tbl)
	specs := []ExtractSpec{
		{Z: "zs", X: "x", Y: "y", Agg: AggAvg},
		{Z: "zf", X: "x", Y: "y", Agg: AggSum},
		{Z: "zs", X: "x", Y: "y", Agg: AggAvg, Filters: []Filter{{Col: "fstr", Op: Eq, Str: "a"}}},
		{Z: "zs", X: "x", Y: "y", Agg: AggAvg, XRanges: [][2]float64{{3, 9}}},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				spec := specs[(w+i)%len(specs)]
				legacy, lerr := Extract(tbl, spec)
				indexed, xerr := ix.Extract(spec)
				if lerr != nil || xerr != nil {
					t.Errorf("unexpected error: %v / %v", lerr, xerr)
					return
				}
				if len(legacy) != len(indexed) {
					t.Errorf("series count %d vs %d", len(legacy), len(indexed))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestNormalizeRanges pins the window normalization: empty and NaN windows
// drop, overlapping ones merge, disjoint ones sort.
func TestNormalizeRanges(t *testing.T) {
	cases := []struct {
		in, want [][2]float64
	}{
		{nil, nil},
		{[][2]float64{{5, 1}}, [][2]float64{}},
		{[][2]float64{{math.NaN(), 1}}, [][2]float64{}},
		{[][2]float64{{1, 3}, {2, 5}}, [][2]float64{{1, 5}}},
		{[][2]float64{{4, 6}, {1, 2}}, [][2]float64{{1, 2}, {4, 6}}},
		{[][2]float64{{1, 2}, {2, 3}}, [][2]float64{{1, 3}}},
	}
	for _, c := range cases {
		got := normalizeRanges(c.in)
		if len(got) != len(c.want) {
			t.Errorf("normalizeRanges(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("normalizeRanges(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestFilterProgram exercises the vectorized kernels directly: float ops,
// dictionary-coded string ops, absent dictionary values, word-boundary row
// counts, and compile-time validation.
func TestFilterProgram(t *testing.T) {
	const rows = 130 // crosses two word boundaries
	vals := make([]float64, rows)
	strs := make([]string, rows)
	for i := range vals {
		vals[i] = float64(i % 7)
		strs[i] = string(rune('a' + i%3))
	}
	tbl, err := New(
		Column{Name: "v", Type: Float, Floats: vals},
		Column{Name: "s", Type: String, Strings: strs},
	)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(tbl)
	count := func(filters ...Filter) int {
		prog, err := CompileFilters(tbl, filters, ix.builtEncoding)
		if err != nil {
			t.Fatalf("CompileFilters(%+v): %v", filters, err)
		}
		sel := prog.Run()
		n := 0
		for i := 0; i < rows; i++ {
			if selected(sel, i) {
				n++
			}
		}
		return n
	}
	naive := func(filters ...Filter) int {
		n := 0
	rows:
		for i := 0; i < rows; i++ {
			for _, f := range filters {
				c, _ := tbl.Column(f.Col)
				ok, err := f.matches(c, i)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue rows
				}
			}
			n++
		}
		return n
	}
	cases := [][]Filter{
		{{Col: "v", Op: Eq, Num: 3}},
		{{Col: "v", Op: Ne, Num: 3}},
		{{Col: "v", Op: Lt, Num: 3}},
		{{Col: "v", Op: Le, Num: 3}},
		{{Col: "v", Op: Gt, Num: 3}},
		{{Col: "v", Op: Ge, Num: 3}},
		{{Col: "s", Op: Eq, Str: "b"}},
		{{Col: "s", Op: Ne, Str: "b"}},
		{{Col: "s", Op: Eq, Str: "zebra"}}, // absent from dictionary
		{{Col: "s", Op: Ne, Str: "zebra"}},
		{{Col: "v", Op: Ge, Num: 2}, {Col: "v", Op: Lt, Num: 5}, {Col: "s", Op: Ne, Str: "a"}},
	}
	for _, filters := range cases {
		if got, want := count(filters...), naive(filters...); got != want {
			t.Errorf("filters %+v: kernel count %d, naive %d", filters, got, want)
		}
	}
	// Validation errors surface at compile time.
	if _, err := CompileFilters(tbl, []Filter{{Col: "s", Op: Gt, Str: "a"}}, nil); err == nil {
		t.Error("Gt on string column should fail to compile")
	}
	if _, err := CompileFilters(tbl, []Filter{{Col: "ghost", Op: Eq}}, nil); err == nil {
		t.Error("missing column should fail to compile")
	}
	if _, err := CompileFilters(tbl, []Filter{{Col: "v", Op: FilterOp(99)}}, nil); err == nil {
		t.Error("unknown operator should fail to compile")
	}
	// No filters: nil program selects everything.
	prog, err := CompileFilters(tbl, nil, nil)
	if err != nil || prog != nil {
		t.Fatalf("empty filter program = %v, %v", prog, err)
	}
	if !selected(nil, 5) {
		t.Error("nil bitmap must select every row")
	}
}

// TestIndexPermMemoized asserts the (z, x) permutation is built once and
// reused across extractions.
func TestIndexPermMemoized(t *testing.T) {
	tbl := sampleTable(t)
	ix := BuildIndex(tbl)
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "year", Y: "sales"}); err != nil {
		t.Fatal(err)
	}
	p1 := ix.perm(tbl.byName["product"], tbl.byName["year"])
	if _, err := ix.Extract(ExtractSpec{Z: "product", X: "year", Y: "sales",
		Filters: []Filter{{Col: "region", Op: Eq, Num: 1}}}); err != nil {
		t.Fatal(err)
	}
	p2 := ix.perm(tbl.byName["product"], tbl.byName["year"])
	if p1 != p2 {
		t.Error("permutation was rebuilt for a second query over the same (z, x)")
	}
}
