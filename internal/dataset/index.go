package dataset

import (
	"math"
	"sort"
	"sync"
)

// Index is the columnar acceleration layer over an immutable Table — the
// OLAP-style physical design Section 5.1 assumes for EXTRACT. It holds
//
//   - dictionary encodings of grouping columns: each distinct rendered
//     value gets an integer code assigned in lexicographic order, so z
//     grouping compares integers and ValueString never runs in a hot loop
//     (string columns are encoded eagerly at build time, float grouping
//     keys lazily on first use);
//   - per (z, x) attribute pair, a row permutation sorted by (z code,
//     x value, row): extraction becomes a single pass over contiguous
//     z-runs with no hash maps and no per-query sorts, and XRange
//     restriction a binary search inside each run. Permutations are built
//     on first use and memoized, so repeated distinct-filter queries over
//     one chart (the candidate-cache-miss traffic) pay the sort once.
//
// Filters run as vectorized kernels into a selection bitmap (see
// CompileFilters) instead of the legacy per-row checked Filter.matches.
// Index.Extract returns Series identical — float-bit-for-bit — to the
// legacy Extract over the same table and spec.
//
// An Index is immutable from the caller's perspective and safe for
// concurrent use; internal lazy state is synchronized.
type Index struct {
	t *Table

	// enc[ci] is the grouping encoding of column ci; string columns are
	// filled at build time, float columns built lazily under mu.
	mu    sync.Mutex
	enc   []*lazyEnc
	perms map[permKey]*lazyPerm
}

type permKey struct{ z, x int }

type lazyEnc struct {
	once sync.Once
	enc  *zEncoding
}

type lazyPerm struct {
	once sync.Once
	p    *zxPerm
}

// zEncoding dictionary-encodes one column's rendered values: codes are
// assigned in lexicographic order of the value, so sorting rows by code
// sorts them by the same key legacy extraction sorts group names by.
type zEncoding struct {
	codes []uint32 // row -> code
	dict  []string // code -> rendered value, lexicographically sorted
}

// lookup returns the code of a rendered value.
func (e *zEncoding) lookup(v string) (uint32, bool) {
	i := sort.SearchStrings(e.dict, v)
	if i < len(e.dict) && e.dict[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// zxPerm is the memoized physical layout for one (z, x) attribute pair: a
// row permutation sorted by (z code, x, row) with NaN-x rows dropped, plus
// the contiguous z-runs within it.
type zxPerm struct {
	rows []int32
	runs []zrun
}

// zrun is one contiguous run of a single z code: rows[start:end).
type zrun struct {
	code       uint32
	start, end int
}

// BuildIndex builds the columnar index for a table: every string column is
// dictionary-encoded up front (one O(rows) pass plus an O(d log d) sort of
// d distinct values per column); grouping encodings for float columns and
// (z, x) permutations are built lazily on first use. The table must not be
// mutated afterwards — Tables are immutable by construction.
func BuildIndex(t *Table) *Index {
	ix := &Index{
		t:     t,
		enc:   make([]*lazyEnc, len(t.cols)),
		perms: make(map[permKey]*lazyPerm),
	}
	for ci := range t.cols {
		ix.enc[ci] = &lazyEnc{}
		if t.cols[ci].Type == String {
			e := ix.enc[ci]
			e.once.Do(func() { e.enc = buildEncoding(&t.cols[ci]) })
		}
	}
	return ix
}

// Table returns the indexed table, making *Index a Source.
func (ix *Index) Table() *Table { return ix.t }

// buildEncoding dictionary-encodes a column's rendered values.
func buildEncoding(c *Column) *zEncoding {
	n := c.Len()
	rendered := make([]string, n)
	distinct := make(map[string]struct{}, 64)
	if c.Type == String {
		copy(rendered, c.Strings)
	} else {
		for i := 0; i < n; i++ {
			rendered[i] = c.ValueString(i)
		}
	}
	for _, v := range rendered {
		distinct[v] = struct{}{}
	}
	dict := make([]string, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	byValue := make(map[string]uint32, len(dict))
	for code, v := range dict {
		byValue[v] = uint32(code)
	}
	codes := make([]uint32, n)
	for i, v := range rendered {
		codes[i] = byValue[v]
	}
	return &zEncoding{codes: codes, dict: dict}
}

// encoding returns the grouping encoding for column ci, building it on
// first use for float columns.
func (ix *Index) encoding(ci int) *zEncoding {
	e := ix.enc[ci]
	e.once.Do(func() { e.enc = buildEncoding(&ix.t.cols[ci]) })
	return e.enc
}

// builtEncoding returns the encoding for column ci only if it has already
// been built (used by filter compilation, which must not pay an encoding
// build for a column that is merely filtered on).
func (ix *Index) builtEncoding(ci int) *zEncoding {
	e := ix.enc[ci]
	if ix.t.cols[ci].Type == String {
		return e.enc // eager, always built
	}
	return nil
}

// perm returns the memoized (z, x) permutation, building it on first use.
func (ix *Index) perm(zi, xi int) *zxPerm {
	key := permKey{zi, xi}
	ix.mu.Lock()
	lp, ok := ix.perms[key]
	if !ok {
		lp = &lazyPerm{}
		ix.perms[key] = lp
	}
	ix.mu.Unlock()
	lp.once.Do(func() { lp.p = ix.buildPerm(zi, xi) })
	return lp.p
}

// buildPerm sorts row ids by (z code, x, row), dropping NaN-x rows (they
// can never appear in a series for this x attribute), and records the
// contiguous z-runs.
func (ix *Index) buildPerm(zi, xi int) *zxPerm {
	enc := ix.encoding(zi)
	xs := ix.t.cols[xi].Floats
	rows := make([]int32, 0, ix.t.rows)
	for i := 0; i < ix.t.rows; i++ {
		if !math.IsNaN(xs[i]) {
			rows = append(rows, int32(i))
		}
	}
	codes := enc.codes
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		ca, cb := codes[ra], codes[rb]
		if ca != cb {
			return ca < cb
		}
		xa, xb := xs[ra], xs[rb]
		if xa != xb {
			return xa < xb
		}
		return ra < rb
	})
	p := &zxPerm{rows: rows}
	for i := 0; i < len(rows); {
		code := codes[rows[i]]
		j := i + 1
		for j < len(rows) && codes[rows[j]] == code {
			j++
		}
		p.runs = append(p.runs, zrun{code: code, start: i, end: j})
		i = j
	}
	return p
}

// Extract is the index-backed EXTRACT: filters run as vectorized kernels
// into a selection bitmap, grouping walks the precomputed (z, x) runs in
// one pass, and XRanges narrow each run by binary search. Output is
// identical to the legacy Extract(t, spec).
func (ix *Index) Extract(spec ExtractSpec) ([]Series, error) {
	t := ix.t
	_, xc, yc, err := resolveSpec(t, spec)
	if err != nil {
		return nil, err
	}
	zi := t.byName[spec.Z]
	xi := t.byName[spec.X]
	prog, err := CompileFilters(t, spec.Filters, ix.builtEncoding)
	if err != nil {
		return nil, err
	}
	ranges := normalizeRanges(spec.XRanges)
	if len(spec.XRanges) > 0 && len(ranges) == 0 {
		return []Series{}, nil // only empty windows: nothing can match
	}
	var sel []uint64
	if prog != nil {
		sel = prog.Run()
	}
	p := ix.perm(zi, xi)
	dict := ix.encoding(zi).dict
	xs, ys := xc.Floats, yc.Floats

	series := make([]Series, 0, len(p.runs))
	var pts []point // scratch, reused across runs
	for _, run := range p.runs {
		pts = pts[:0]
		appendRange := func(start, end int) {
			for k := start; k < end; k++ {
				row := p.rows[k]
				if !selected(sel, int(row)) {
					continue
				}
				y := ys[row]
				if math.IsNaN(y) {
					continue
				}
				pts = append(pts, point{xs[row], y})
			}
		}
		if ranges == nil {
			appendRange(run.start, run.end)
		} else {
			// Disjoint ascending windows over a run sorted by x: each
			// binary-searches to its sub-run, and visiting them in order
			// preserves the global (x, row) order.
			for _, r := range ranges {
				lo := searchRunX(p.rows, xs, run.start, run.end, r[0])
				hi := searchRunXAfter(p.rows, xs, lo, run.end, r[1])
				appendRange(lo, hi)
			}
		}
		if len(pts) == 0 {
			continue
		}
		s, err := buildSeries(dict[run.code], pts, spec)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return series, nil
}

// buildSeries aggregates one z-run's points (already in (x, row) order)
// into a Series, sharing the legacy path's aggregate helper and its
// AggNone duplicate error.
func buildSeries(z string, pts []point, spec ExtractSpec) (Series, error) {
	s := Series{Z: z, X: make([]float64, 0, len(pts)), Y: make([]float64, 0, len(pts))}
	for i := 0; i < len(pts); {
		j := i
		for j < len(pts) && pts[j].x == pts[i].x {
			j++
		}
		if j-i > 1 && spec.Agg == AggNone {
			return Series{}, duplicateErr(spec, z, pts[i].x)
		}
		s.X = append(s.X, pts[i].x)
		s.Y = append(s.Y, aggregate(pts[i:j], spec.Agg))
		i = j
	}
	return s, nil
}

// searchRunX returns the first position in rows[start:end) whose x is >= v.
func searchRunX(rows []int32, xs []float64, start, end int, v float64) int {
	return start + sort.Search(end-start, func(k int) bool {
		return xs[rows[start+k]] >= v
	})
}

// searchRunXAfter returns the first position in rows[start:end) whose x is
// strictly greater than v.
func searchRunXAfter(rows []int32, xs []float64, start, end int, v float64) int {
	return start + sort.Search(end-start, func(k int) bool {
		return xs[rows[start+k]] > v
	})
}

// normalizeRanges drops empty windows (start > end, or any NaN bound) and
// merges overlapping ones into disjoint ascending windows, preserving the
// union-of-ranges row semantics of InRanges while letting the indexed path
// visit each qualifying row exactly once. Nil means "no restriction";
// non-nil-but-empty means the windows exclude everything.
func normalizeRanges(ranges [][2]float64) [][2]float64 {
	if len(ranges) == 0 {
		return nil
	}
	valid := make([][2]float64, 0, len(ranges))
	for _, r := range ranges {
		if r[0] <= r[1] { // also rejects NaN bounds
			valid = append(valid, r)
		}
	}
	if len(valid) == 0 {
		return valid
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i][0] < valid[j][0] })
	merged := valid[:1]
	for _, r := range valid[1:] {
		last := &merged[len(merged)-1]
		if r[0] <= last[1] {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}
