package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Index is the columnar acceleration layer over a Table — the OLAP-style
// physical design Section 5.1 assumes for EXTRACT. It holds
//
//   - dictionary encodings of grouping columns: each distinct rendered
//     value gets an integer code, and a value-order view keeps extraction
//     output sorted by the rendered value however codes were assigned, so
//     z grouping compares integers and ValueString never runs in a hot
//     loop (string columns are encoded eagerly at build time, float
//     grouping keys lazily on first use);
//   - per (z, x) attribute pair, a memoized per-group row layout: each z
//     code's rows sorted by (x value, row). Extraction becomes one pass
//     over the groups in value order with no hash maps and no per-query
//     sorts, and XRange restriction a binary search inside each group.
//     Layouts are built on first use and memoized, so repeated
//     distinct-filter queries over one chart (the candidate-cache-miss
//     traffic) pay the sort once.
//
// Filters run as vectorized kernels into a selection bitmap (see
// CompileFilters) instead of the legacy per-row checked Filter.matches.
// Index.Extract returns Series identical — float-bit-for-bit — to the
// legacy Extract over the same table and spec.
//
// An Index is safe for concurrent use. The indexed table is NOT immutable:
// Append grows it (and every built encoding and layout) in place under the
// writer half of dataMu, so readers always observe a consistent snapshot.
type Index struct {
	t *Table

	// dataMu orders Append (writer) against extraction and lazy builds
	// (readers): every derived structure — table columns, dictionaries,
	// permutation layouts — is read or lazily built under the read lock and
	// extended only under the write lock.
	dataMu sync.RWMutex

	// enc[ci] is the grouping encoding of column ci; string columns are
	// filled at build time, float columns built lazily under mu.
	mu    sync.Mutex
	enc   []*lazyEnc
	perms map[permKey]*lazyPerm
}

type permKey struct{ z, x int }

type lazyEnc struct {
	once sync.Once
	enc  *zEncoding
}

type lazyPerm struct {
	once sync.Once
	p    *zxPerm
}

// zEncoding dictionary-encodes one column's rendered values. The dictionary
// is append-only — Append assigns fresh codes to unseen values without ever
// re-encoding existing rows — so codes carry no order; the order view lists
// codes by ascending rendered value and is what keeps extraction output
// sorted the way legacy extraction sorts group names.
type zEncoding struct {
	codes []uint32 // row -> code, append-only
	dict  []string // code -> rendered value, append-only
	order []uint32 // codes in ascending dict-value order
}

// lookup returns the code of a rendered value.
func (e *zEncoding) lookup(v string) (uint32, bool) {
	i := sort.Search(len(e.order), func(i int) bool { return e.dict[e.order[i]] >= v })
	if i < len(e.order) && e.dict[e.order[i]] == v {
		return e.order[i], true
	}
	return 0, false
}

// extend assigns codes to appended rendered values: known values reuse
// their code, unseen values get fresh codes at the end of the dictionary,
// and the value-order view is re-sorted once (O(d log d) in the distinct
// count, independent of the existing row count).
func (e *zEncoding) extend(rendered []string) {
	var added map[string]uint32
	for _, v := range rendered {
		code, ok := e.lookup(v)
		if !ok {
			if c, dup := added[v]; dup {
				code = c
			} else {
				code = uint32(len(e.dict))
				e.dict = append(e.dict, v)
				if added == nil {
					added = make(map[string]uint32)
				}
				added[v] = code
			}
		}
		e.codes = append(e.codes, code)
	}
	if added != nil {
		for _, code := range added {
			e.order = append(e.order, code)
		}
		sort.Slice(e.order, func(a, b int) bool { return e.dict[e.order[a]] < e.dict[e.order[b]] })
	}
}

// zxPerm is the memoized physical layout for one (z, x) attribute pair:
// per z code, the row list sorted by (x, row) with NaN-x rows dropped.
// Extraction iterates groups in the encoding's value order, so output
// order never depends on code-assignment order.
type zxPerm struct {
	groups []*zrows // indexed by z code; nil = no rows
}

// zrows is one z group's row list, sorted by (x, row).
type zrows struct {
	rows []int32
}

// BuildIndex builds the columnar index for a table: every string column is
// dictionary-encoded up front (one O(rows) pass plus an O(d log d) sort of
// d distinct values per column); grouping encodings for float columns and
// (z, x) layouts are built lazily on first use. The table is owned by the
// index afterwards — Append grows it in place.
func BuildIndex(t *Table) *Index {
	ix := &Index{
		t:     t,
		enc:   make([]*lazyEnc, len(t.cols)),
		perms: make(map[permKey]*lazyPerm),
	}
	for ci := range t.cols {
		ix.enc[ci] = &lazyEnc{}
		if t.cols[ci].Type == String {
			e := ix.enc[ci]
			e.once.Do(func() { e.enc = buildEncoding(&t.cols[ci]) })
		}
	}
	return ix
}

// Table returns the indexed table, making *Index a Source. The table is a
// live view: Append grows it in place, so callers needing a stable row
// count under concurrent appends should use NumRows instead.
func (ix *Index) Table() *Table { return ix.t }

// NumRows reports the current row count, consistent under concurrent
// Append.
func (ix *Index) NumRows() int {
	ix.dataMu.RLock()
	defer ix.dataMu.RUnlock()
	return ix.t.rows
}

// buildEncoding dictionary-encodes a column's rendered values.
func buildEncoding(c *Column) *zEncoding {
	n := c.Len()
	rendered := renderColumn(c, 0, n)
	distinct := make(map[string]struct{}, 64)
	for _, v := range rendered {
		distinct[v] = struct{}{}
	}
	dict := make([]string, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	byValue := make(map[string]uint32, len(dict))
	order := make([]uint32, len(dict))
	for code, v := range dict {
		byValue[v] = uint32(code)
		order[code] = uint32(code)
	}
	codes := make([]uint32, n)
	for i, v := range rendered {
		codes[i] = byValue[v]
	}
	return &zEncoding{codes: codes, dict: dict, order: order}
}

// renderColumn renders rows [lo, hi) of a column as grouping keys.
func renderColumn(c *Column, lo, hi int) []string {
	rendered := make([]string, hi-lo)
	if c.Type == String {
		copy(rendered, c.Strings[lo:hi])
		return rendered
	}
	for i := lo; i < hi; i++ {
		rendered[i-lo] = c.ValueString(i)
	}
	return rendered
}

// encoding returns the grouping encoding for column ci, building it on
// first use for float columns.
func (ix *Index) encoding(ci int) *zEncoding {
	e := ix.enc[ci]
	e.once.Do(func() { e.enc = buildEncoding(&ix.t.cols[ci]) })
	return e.enc
}

// builtEncoding returns the encoding for column ci only if it has already
// been built (used by filter compilation, which must not pay an encoding
// build for a column that is merely filtered on).
func (ix *Index) builtEncoding(ci int) *zEncoding {
	e := ix.enc[ci]
	if ix.t.cols[ci].Type == String {
		return e.enc // eager, always built
	}
	return nil
}

// perm returns the memoized (z, x) layout, building it on first use.
func (ix *Index) perm(zi, xi int) *zxPerm {
	key := permKey{zi, xi}
	ix.mu.Lock()
	lp, ok := ix.perms[key]
	if !ok {
		lp = &lazyPerm{}
		ix.perms[key] = lp
	}
	ix.mu.Unlock()
	lp.once.Do(func() { lp.p = ix.buildPerm(zi, xi) })
	return lp.p
}

// buildPerm buckets row ids by z code, dropping NaN-x rows (they can never
// appear in a series for this x attribute), and sorts each group by
// (x, row).
func (ix *Index) buildPerm(zi, xi int) *zxPerm {
	enc := ix.encoding(zi)
	xs := ix.t.cols[xi].Floats
	codes := enc.codes
	p := &zxPerm{groups: make([]*zrows, len(enc.dict))}
	for i := 0; i < ix.t.rows; i++ {
		if math.IsNaN(xs[i]) {
			continue
		}
		g := p.groups[codes[i]]
		if g == nil {
			g = &zrows{}
			p.groups[codes[i]] = g
		}
		g.rows = append(g.rows, int32(i))
	}
	for _, g := range p.groups {
		if g != nil {
			sortByXRow(g.rows, xs)
		}
	}
	return p
}

// sortByXRow sorts a row list by (x value, row id). Inputs gathered in
// ascending row order stay row-ascending within equal x.
func sortByXRow(rows []int32, xs []float64) {
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		xa, xb := xs[ra], xs[rb]
		if xa != xb {
			return xa < xb
		}
		return ra < rb
	})
}

// extend absorbs appended rows [base, total) into the layout: the delta is
// bucketed per group and only each group's tail is sorted; a tail whose
// first x is at or past the group's last x — the in-order streaming case —
// is appended outright, anything else is merged in one linear pass over
// the group. Cost is O(delta log delta) plus the touched groups' sizes,
// never the corpus's.
func (p *zxPerm) extend(enc *zEncoding, xs []float64, base, total int) {
	if len(p.groups) < len(enc.dict) {
		p.groups = append(p.groups, make([]*zrows, len(enc.dict)-len(p.groups))...)
	}
	var touched []uint32
	tails := make(map[uint32][]int32)
	for i := base; i < total; i++ {
		if math.IsNaN(xs[i]) {
			continue
		}
		c := enc.codes[i]
		if _, ok := tails[c]; !ok {
			touched = append(touched, c)
		}
		tails[c] = append(tails[c], int32(i))
	}
	for _, c := range touched {
		tail := tails[c]
		sortByXRow(tail, xs)
		g := p.groups[c]
		if g == nil {
			p.groups[c] = &zrows{rows: tail}
			continue
		}
		old := g.rows
		if len(old) == 0 || xs[tail[0]] >= xs[old[len(old)-1]] {
			g.rows = append(old, tail...)
			continue
		}
		// Out-of-order arrival: merge the sorted tail into the sorted group.
		// Appended row ids exceed existing ones, so taking the old row on
		// equal x preserves the (x, row) order.
		merged := make([]int32, 0, len(old)+len(tail))
		i, j := 0, 0
		for i < len(old) && j < len(tail) {
			if xs[old[i]] <= xs[tail[j]] {
				merged = append(merged, old[i])
				i++
			} else {
				merged = append(merged, tail[j])
				j++
			}
		}
		merged = append(merged, old[i:]...)
		merged = append(merged, tail[j:]...)
		g.rows = merged
	}
}

// Append appends delta's rows (same schema: column names and types, in
// order) to the indexed table, maintaining every already-built structure
// incrementally: dictionaries only grow — existing rows are never
// re-encoded — and each memoized (z, x) layout absorbs the delta per group
// (see zxPerm.extend). Lazy state not yet built stays unbuilt and simply
// sees the longer table on first use. Readers block for the duration; an
// extraction started before Append returns the pre-append snapshot, one
// started after returns the post-append table, never a mix.
func (ix *Index) Append(delta *Table) error {
	if err := validateAppendSchema(ix.t, delta); err != nil {
		return err
	}
	ix.dataMu.Lock()
	defer ix.dataMu.Unlock()
	t := ix.t
	base := t.rows
	for ci := range t.cols {
		dst, src := &t.cols[ci], &delta.cols[ci]
		if dst.Type == Float {
			dst.Floats = append(dst.Floats, src.Floats...)
		} else {
			dst.Strings = append(dst.Strings, src.Strings...)
		}
	}
	t.rows += delta.rows
	for ci := range t.cols {
		// Built encodings extend in place; lp.p / e.enc reads are safe here
		// because every lazy build runs under the read lock, which the write
		// lock excludes.
		if e := ix.enc[ci].enc; e != nil {
			e.extend(renderColumn(&t.cols[ci], base, t.rows))
		}
	}
	for key, lp := range ix.perms {
		if lp.p == nil {
			continue
		}
		lp.p.extend(ix.enc[key.z].enc, t.cols[key.x].Floats, base, t.rows)
	}
	return nil
}

// validateAppendSchema requires delta's columns to match the base table's
// names and types, in order.
func validateAppendSchema(t, delta *Table) error {
	if len(delta.cols) != len(t.cols) {
		return fmt.Errorf("dataset: append schema mismatch: %d columns, want %d", len(delta.cols), len(t.cols))
	}
	for i := range t.cols {
		if delta.cols[i].Name != t.cols[i].Name {
			return fmt.Errorf("dataset: append schema mismatch: column %d is %q, want %q", i, delta.cols[i].Name, t.cols[i].Name)
		}
		if delta.cols[i].Type != t.cols[i].Type {
			return fmt.Errorf("dataset: append schema mismatch: column %q type differs", t.cols[i].Name)
		}
	}
	return nil
}

// Extract is the index-backed EXTRACT: filters run as vectorized kernels
// into a selection bitmap, grouping walks the memoized (z, x) groups in
// value order, and XRanges narrow each group by binary search. Output is
// identical to the legacy Extract(t, spec).
func (ix *Index) Extract(spec ExtractSpec) ([]Series, error) {
	ix.dataMu.RLock()
	defer ix.dataMu.RUnlock()
	st, err := ix.extractState(spec)
	if err != nil || st == nil {
		return []Series{}, err
	}
	series := make([]Series, 0, len(st.enc.order))
	var pts []point // scratch, reused across groups
	for _, code := range st.enc.order {
		g := st.p.groups[code]
		if g == nil || len(g.rows) == 0 {
			continue
		}
		var s Series
		var ok bool
		pts, s, ok, err = st.extractGroup(g.rows, st.enc.dict[code], spec, pts)
		if err != nil {
			return nil, err
		}
		if ok {
			series = append(series, s)
		}
	}
	return series, nil
}

// ExtractGroups extracts only the named z groups (rendered values), in
// ascending value order, skipping values absent from the dataset or
// emptied by filters and NaNs. It is the repair path for incremental
// appends: per group the cost is that group's size, with one vectorized
// filter pass over the table only when the spec carries filters. Output
// series are bit-identical to the corresponding entries of Extract(spec).
func (ix *Index) ExtractGroups(spec ExtractSpec, zvals []string) ([]Series, error) {
	ix.dataMu.RLock()
	defer ix.dataMu.RUnlock()
	st, err := ix.extractState(spec)
	if err != nil || st == nil {
		return []Series{}, err
	}
	sorted := append([]string(nil), zvals...)
	sort.Strings(sorted)
	series := make([]Series, 0, len(sorted))
	var pts []point
	for i, z := range sorted {
		if i > 0 && z == sorted[i-1] {
			continue
		}
		code, ok := st.enc.lookup(z)
		if !ok {
			continue
		}
		g := st.p.groups[code]
		if g == nil || len(g.rows) == 0 {
			continue
		}
		var s Series
		pts, s, ok, err = st.extractGroup(g.rows, z, spec, pts)
		if err != nil {
			return nil, err
		}
		if ok {
			series = append(series, s)
		}
	}
	return series, nil
}

// extractCtx is the shared per-extraction state of Extract and
// ExtractGroups.
type extractCtx struct {
	enc    *zEncoding
	p      *zxPerm
	xs, ys []float64
	sel    []uint64
	ranges [][2]float64
}

// extractState resolves a spec into an extractCtx: attribute resolution,
// filter compilation and the one vectorized filter pass, range
// normalization, and the lazy encoding/layout builds. A nil state (with
// nil error) means the spec's XRanges exclude everything. Caller holds
// dataMu.
func (ix *Index) extractState(spec ExtractSpec) (*extractCtx, error) {
	t := ix.t
	_, xc, yc, err := resolveSpec(t, spec)
	if err != nil {
		return nil, err
	}
	zi := t.byName[spec.Z]
	xi := t.byName[spec.X]
	prog, err := CompileFilters(t, spec.Filters, ix.builtEncoding)
	if err != nil {
		return nil, err
	}
	ranges := normalizeRanges(spec.XRanges)
	if len(spec.XRanges) > 0 && len(ranges) == 0 {
		return nil, nil // only empty windows: nothing can match
	}
	var sel []uint64
	if prog != nil {
		sel = prog.Run()
	}
	return &extractCtx{
		enc: ix.encoding(zi),
		p:   ix.perm(zi, xi),
		xs:  xc.Floats, ys: yc.Floats,
		sel: sel, ranges: ranges,
	}, nil
}

// extractGroup renders one z group's Series from its sorted row list; both
// extraction entry points share it so their output stays bit-identical.
// ok=false when filters, windows and NaNs leave no points.
func (st *extractCtx) extractGroup(rows []int32, z string, spec ExtractSpec, pts []point) ([]point, Series, bool, error) {
	pts = pts[:0]
	appendRange := func(start, end int) {
		for k := start; k < end; k++ {
			row := rows[k]
			if !selected(st.sel, int(row)) {
				continue
			}
			y := st.ys[row]
			if math.IsNaN(y) {
				continue
			}
			pts = append(pts, point{st.xs[row], y})
		}
	}
	if st.ranges == nil {
		appendRange(0, len(rows))
	} else {
		// Disjoint ascending windows over a group sorted by x: each
		// binary-searches to its sub-range, and visiting them in order
		// preserves the global (x, row) order.
		for _, r := range st.ranges {
			lo := searchRunX(rows, st.xs, 0, len(rows), r[0])
			hi := searchRunXAfter(rows, st.xs, lo, len(rows), r[1])
			appendRange(lo, hi)
		}
	}
	if len(pts) == 0 {
		return pts, Series{}, false, nil
	}
	s, err := buildSeries(z, pts, spec)
	if err != nil {
		return pts, Series{}, false, err
	}
	return pts, s, true, nil
}

// buildSeries aggregates one z group's points (already in (x, row) order)
// into a Series, sharing the legacy path's aggregate helper and its
// AggNone duplicate error.
func buildSeries(z string, pts []point, spec ExtractSpec) (Series, error) {
	s := Series{Z: z, X: make([]float64, 0, len(pts)), Y: make([]float64, 0, len(pts))}
	for i := 0; i < len(pts); {
		j := i
		for j < len(pts) && pts[j].x == pts[i].x {
			j++
		}
		if j-i > 1 && spec.Agg == AggNone {
			return Series{}, duplicateErr(spec, z, pts[i].x)
		}
		s.X = append(s.X, pts[i].x)
		s.Y = append(s.Y, aggregate(pts[i:j], spec.Agg))
		i = j
	}
	return s, nil
}

// searchRunX returns the first position in rows[start:end) whose x is >= v.
func searchRunX(rows []int32, xs []float64, start, end int, v float64) int {
	return start + sort.Search(end-start, func(k int) bool {
		return xs[rows[start+k]] >= v
	})
}

// searchRunXAfter returns the first position in rows[start:end) whose x is
// strictly greater than v.
func searchRunXAfter(rows []int32, xs []float64, start, end int, v float64) int {
	return start + sort.Search(end-start, func(k int) bool {
		return xs[rows[start+k]] > v
	})
}

// normalizeRanges drops empty windows (start > end, or any NaN bound) and
// merges overlapping ones into disjoint ascending windows, preserving the
// union-of-ranges row semantics of InRanges while letting the indexed path
// visit each qualifying row exactly once. Nil means "no restriction";
// non-nil-but-empty means the windows exclude everything.
func normalizeRanges(ranges [][2]float64) [][2]float64 {
	if len(ranges) == 0 {
		return nil
	}
	valid := make([][2]float64, 0, len(ranges))
	for _, r := range ranges {
		if r[0] <= r[1] { // also rejects NaN bounds
			valid = append(valid, r)
		}
	}
	if len(valid) == 0 {
		return valid
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i][0] < valid[j][0] })
	merged := valid[:1]
	for _, r := range valid[1:] {
		last := &merged[len(merged)-1]
		if r[0] <= last[1] {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}
