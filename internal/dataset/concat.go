package dataset

import "fmt"

// Concat stacks tables row-wise into one new table. Every table must carry
// the first table's exact schema — same column names, order, and types —
// mirroring the append-path contract, so a fresh build over Concat(base,
// deltas...) is the ground truth an incrementally appended index is checked
// against.
func Concat(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("dataset: Concat of no tables")
	}
	head := tables[0]
	for _, t := range tables[1:] {
		if err := validateAppendSchema(head, t); err != nil {
			return nil, err
		}
	}
	cols := make([]Column, len(head.cols))
	for ci := range head.cols {
		cols[ci] = Column{Name: head.cols[ci].Name, Type: head.cols[ci].Type}
		for _, t := range tables {
			if cols[ci].Type == Float {
				cols[ci].Floats = append(cols[ci].Floats, t.cols[ci].Floats...)
			} else {
				cols[ci].Strings = append(cols[ci].Strings, t.cols[ci].Strings...)
			}
		}
	}
	return New(cols...)
}
