package dataset

import "fmt"

// Vectorized filter kernels: a filter conjunction is validated and compiled
// once per extraction into a FilterProgram, then applied over whole column
// slices into a selection bitmap — no per-row error checks or interface
// dispatch in the hot loop, unlike the legacy Filter.matches path. The
// bitmap is a []uint64 bitset with one bit per row.

// FilterProgram is a compiled, validated filter conjunction over one table.
// Compile it once (CompileFilters), run it over the table's rows with Run.
// A nil *FilterProgram selects every row.
type FilterProgram struct {
	kernels []kernel
	rows    int
}

// kernel fills (first pass) or intersects (later passes) the selection
// bitmap with one predicate's matches over the whole column.
type kernel func(sel []uint64, first bool)

// CompileFilters validates the filter conjunction against the table —
// column existence and operator/type compatibility, with the same error
// messages as the legacy per-row path — and compiles it into vectorized
// kernels. Filters on dictionary-encoded string columns compare integer
// codes when an encoding is supplied via enc (may be nil).
func CompileFilters(t *Table, filters []Filter, enc func(col int) *zEncoding) (*FilterProgram, error) {
	if len(filters) == 0 {
		return nil, nil
	}
	p := &FilterProgram{rows: t.NumRows()}
	for _, f := range filters {
		ci, ok := t.byName[f.Col]
		if !ok {
			return nil, fmt.Errorf("dataset: no column %q", f.Col)
		}
		c := &t.cols[ci]
		if c.Type == String {
			if f.Op != Eq && f.Op != Ne {
				return nil, fmt.Errorf("dataset: operator %s not supported on string column %q", f.Op, f.Col)
			}
			var e *zEncoding
			if enc != nil {
				e = enc(ci)
			}
			p.kernels = append(p.kernels, stringKernel(c.Strings, e, f.Op, f.Str))
			continue
		}
		if f.Op < Eq || f.Op > Ge {
			return nil, fmt.Errorf("dataset: unknown operator %d", int(f.Op))
		}
		p.kernels = append(p.kernels, floatKernel(c.Floats, f.Op, f.Num))
	}
	return p, nil
}

// Run evaluates the program over all rows into a fresh selection bitmap.
func (p *FilterProgram) Run() []uint64 {
	sel := make([]uint64, (p.rows+63)/64)
	for i, k := range p.kernels {
		k(sel, i == 0)
	}
	return sel
}

// selected reports bit row of the bitmap; a nil bitmap selects everything.
func selected(sel []uint64, row int) bool {
	return sel == nil || sel[row>>6]&(1<<(uint(row)&63)) != 0
}

// floatKernel compares a whole float column against a constant. The
// operator switch sits outside the row loop, so each loop body is a single
// branch-predictable comparison accumulated into 64-row words.
func floatKernel(vals []float64, op FilterOp, num float64) kernel {
	return func(sel []uint64, first bool) {
		n := len(vals)
		switch op {
		case Eq:
			applyWords(sel, first, n, func(i int) bool { return vals[i] == num })
		case Ne:
			applyWords(sel, first, n, func(i int) bool { return vals[i] != num })
		case Lt:
			applyWords(sel, first, n, func(i int) bool { return vals[i] < num })
		case Le:
			applyWords(sel, first, n, func(i int) bool { return vals[i] <= num })
		case Gt:
			applyWords(sel, first, n, func(i int) bool { return vals[i] > num })
		default: // Ge
			applyWords(sel, first, n, func(i int) bool { return vals[i] >= num })
		}
	}
}

// stringKernel compares a string column against a constant. With a
// dictionary encoding the comparison is one integer equality per row (a
// constant value not in the dictionary short-circuits: Eq matches nothing,
// Ne everything); without, it falls back to string comparison.
func stringKernel(vals []string, e *zEncoding, op FilterOp, str string) kernel {
	return func(sel []uint64, first bool) {
		if e != nil {
			code, present := e.lookup(str)
			if !present {
				if op == Eq {
					applyWords(sel, first, len(vals), func(int) bool { return false })
				} else {
					applyWords(sel, first, len(vals), func(int) bool { return true })
				}
				return
			}
			codes := e.codes
			if op == Eq {
				applyWords(sel, first, len(codes), func(i int) bool { return codes[i] == code })
			} else {
				applyWords(sel, first, len(codes), func(i int) bool { return codes[i] != code })
			}
			return
		}
		if op == Eq {
			applyWords(sel, first, len(vals), func(i int) bool { return vals[i] == str })
		} else {
			applyWords(sel, first, len(vals), func(i int) bool { return vals[i] != str })
		}
	}
}

// applyWords runs a predicate over rows [0, n), packing results into 64-bit
// words: the first kernel writes the bitmap, later kernels AND into it
// (conjunctive filters), skipping whole words that are already all-zero.
func applyWords(sel []uint64, first bool, n int, match func(i int) bool) {
	for w := 0; w*64 < n; w++ {
		if !first && sel[w] == 0 {
			continue
		}
		lo := w * 64
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var word uint64
		for i := lo; i < hi; i++ {
			if match(i) {
				word |= 1 << (uint(i) & 63)
			}
		}
		if first {
			sel[w] = word
		} else {
			sel[w] &= word
		}
	}
}
