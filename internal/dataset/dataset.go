// Package dataset implements ShapeSearch's OLAP data substrate (Section 5.1
// of the paper): an in-memory columnar table loaded from CSV or JSON, filter
// predicates, and the EXTRACT step that selects, aggregates and sorts
// records into candidate trendline series according to the visual
// parameters z, x and y.
//
// EXTRACT has two physical implementations behind the Source interface: the
// legacy row-at-a-time scan over a bare *Table (package-level Extract), and
// the columnar *Index built by BuildIndex — dictionary-encoded grouping
// keys, memoized (z, x) sort permutations walked as contiguous z-runs, and
// vectorized filter kernels over a selection bitmap. Both produce identical
// Series; serving layers index tables once at registration and extract
// through the index.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// ColumnType is the type of a column's values.
type ColumnType int

const (
	// Float columns hold numeric values.
	Float ColumnType = iota
	// String columns hold categorical values.
	String
)

// Column is one named, typed column. Exactly one of Floats or Strings is
// populated, matching Type.
type Column struct {
	Name    string
	Type    ColumnType
	Floats  []float64
	Strings []string
}

// Len reports the number of values in the column.
func (c *Column) Len() int {
	if c.Type == Float {
		return len(c.Floats)
	}
	return len(c.Strings)
}

// ValueString renders row i as a string (used for z grouping keys).
func (c *Column) ValueString(i int) string {
	if c.Type == Float {
		return strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
	}
	return c.Strings[i]
}

// Table is an immutable in-memory columnar table.
type Table struct {
	cols   []Column
	byName map[string]int
	rows   int
}

// New builds a table from columns. All columns must share one length.
func New(cols ...Column) (*Table, error) {
	t := &Table{byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("dataset: column %d has no name", i)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column %q", c.Name)
		}
		if i > 0 && c.Len() != t.rows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, c.Len(), t.rows)
		}
		if i == 0 {
			t.rows = c.Len()
		}
		t.byName[c.Name] = i
		t.cols = append(t.cols, c)
	}
	return t, nil
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return t.rows }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// ColumnNames lists column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i := range t.cols {
		names[i] = t.cols[i].Name
	}
	return names
}

// Column returns a column by name.
func (t *Table) Column(name string) (*Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("dataset: no column %q", name)
	}
	return &t.cols[i], nil
}

// DistinctValues returns the sorted distinct rendered values of the named
// column — the grouping keys it would contribute as a z attribute. The
// incremental append path uses it to learn which z groups a delta batch
// touches.
func (t *Table) DistinctValues(name string) ([]string, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, 16)
	out := make([]string, 0, 16)
	for i := 0; i < c.Len(); i++ {
		v := c.ValueString(i)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// FilterOp is a comparison operator in a filter predicate.
type FilterOp int

const (
	// Eq tests equality.
	Eq FilterOp = iota
	// Ne tests inequality.
	Ne
	// Lt tests strictly-less-than (numeric columns only).
	Lt
	// Le tests less-or-equal (numeric columns only).
	Le
	// Gt tests strictly-greater-than (numeric columns only).
	Gt
	// Ge tests greater-or-equal (numeric columns only).
	Ge
)

// String renders the operator.
func (op FilterOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// Filter is one predicate on a column. Filters on a query are conjunctive:
// a row survives when every filter accepts it. For Float columns Num is
// compared; for String columns only Eq and Ne apply, against Str.
type Filter struct {
	Col string
	Op  FilterOp
	Num float64
	Str string
}

// matches evaluates the filter on row i of column c.
func (f Filter) matches(c *Column, i int) (bool, error) {
	if c.Type == String {
		switch f.Op {
		case Eq:
			return c.Strings[i] == f.Str, nil
		case Ne:
			return c.Strings[i] != f.Str, nil
		default:
			return false, fmt.Errorf("dataset: operator %s not supported on string column %q", f.Op, f.Col)
		}
	}
	v := c.Floats[i]
	switch f.Op {
	case Eq:
		return v == f.Num, nil
	case Ne:
		return v != f.Num, nil
	case Lt:
		return v < f.Num, nil
	case Le:
		return v <= f.Num, nil
	case Gt:
		return v > f.Num, nil
	case Ge:
		return v >= f.Num, nil
	default:
		return false, fmt.Errorf("dataset: unknown operator %d", int(f.Op))
	}
}

// Agg is the aggregation applied when multiple y values share one (z, x)
// coordinate (for example the Real Estate dataset of the paper's
// evaluation).
type Agg int

const (
	// AggNone keeps duplicate points (they are averaged implicitly by the
	// fit, but GROUP-level binning expects one point per x, so extraction
	// with duplicates and AggNone reports an error).
	AggNone Agg = iota
	// AggAvg averages duplicate y values (the paper's default).
	AggAvg
	// AggSum sums duplicates.
	AggSum
	// AggMin keeps the minimum.
	AggMin
	// AggMax keeps the maximum.
	AggMax
	// AggCount counts duplicates, ignoring their values.
	AggCount
)

// String names the aggregation.
func (a Agg) String() string {
	switch a {
	case AggNone:
		return "none"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	default:
		return "?"
	}
}

// Series is one candidate visualization: the trendline of a single z value,
// sorted by x.
type Series struct {
	Z string
	X []float64
	Y []float64
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// ExtractSpec is the input to Extract: the visual parameters R of the paper
// (z, x, y attributes), filters f, and aggregation a.
type ExtractSpec struct {
	Z, X, Y string
	Filters []Filter
	Agg     Agg
	// XRanges optionally restricts extraction to x values inside any of the
	// given [start, end] windows — the LOCATION push-down of Section 5.4.
	// Empty means the full domain.
	XRanges [][2]float64
}

// Source is anything the EXTRACT operator can run against: a bare *Table
// (the legacy row-at-a-time path) or an *Index (the columnar path with
// dictionary-encoded grouping and vectorized filters). Both produce
// identical Series for identical specs.
type Source interface {
	// Table returns the underlying columnar table (for metadata access).
	Table() *Table
	// Extract selects and aggregates records into one Series per distinct
	// z value, sorted on z then x.
	Extract(spec ExtractSpec) ([]Series, error)
}

// Table returns the table itself, making *Table a Source.
func (t *Table) Table() *Table { return t }

// Extract runs the legacy row-at-a-time EXTRACT over the table; it is the
// method form of the package-level Extract.
func (t *Table) Extract(spec ExtractSpec) ([]Series, error) { return Extract(t, spec) }

// resolveSpec resolves and validates the z/x/y attributes of a spec against
// a table; both extraction paths share its checks and error messages.
func resolveSpec(t *Table, spec ExtractSpec) (zc, xc, yc *Column, err error) {
	zc, err = t.Column(spec.Z)
	if err != nil {
		return nil, nil, nil, err
	}
	xc, err = t.Column(spec.X)
	if err != nil {
		return nil, nil, nil, err
	}
	if xc.Type != Float {
		return nil, nil, nil, fmt.Errorf("dataset: x attribute %q must be numeric", spec.X)
	}
	yc, err = t.Column(spec.Y)
	if err != nil {
		return nil, nil, nil, err
	}
	if yc.Type != Float {
		return nil, nil, nil, fmt.Errorf("dataset: y attribute %q must be numeric", spec.Y)
	}
	return zc, xc, yc, nil
}

// Extract selects and aggregates records into one Series per distinct z
// value, sorted on z then x (the EXTRACT physical operator, Section 5.3).
func Extract(t *Table, spec ExtractSpec) ([]Series, error) {
	zc, xc, yc, err := resolveSpec(t, spec)
	if err != nil {
		return nil, err
	}
	fcols := make([]*Column, len(spec.Filters))
	for i, f := range spec.Filters {
		fc, err := t.Column(f.Col)
		if err != nil {
			return nil, err
		}
		fcols[i] = fc
	}

	groups := make(map[string][]point)
	var order []string

rows:
	for i := 0; i < t.rows; i++ {
		for j, f := range spec.Filters {
			ok, err := f.matches(fcols[j], i)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue rows
			}
		}
		x := xc.Floats[i]
		if len(spec.XRanges) > 0 && !InRanges(x, spec.XRanges) {
			continue
		}
		y := yc.Floats[i]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		z := zc.ValueString(i)
		if _, seen := groups[z]; !seen {
			order = append(order, z)
		}
		groups[z] = append(groups[z], point{x, y})
	}
	sort.Strings(order)

	series := make([]Series, 0, len(order))
	for _, z := range order {
		pts := groups[z]
		// Stable, so duplicate-x points keep row order: aggregation then
		// sums duplicates in the same order as the index-backed path,
		// keeping the two extraction paths float-bit-identical.
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		s := Series{Z: z, X: make([]float64, 0, len(pts)), Y: make([]float64, 0, len(pts))}
		for i := 0; i < len(pts); {
			j := i
			for j < len(pts) && pts[j].x == pts[i].x {
				j++
			}
			if j-i > 1 && spec.Agg == AggNone {
				return nil, duplicateErr(spec, z, pts[i].x)
			}
			s.X = append(s.X, pts[i].x)
			s.Y = append(s.Y, aggregate(pts[i:j], spec.Agg))
			i = j
		}
		series = append(series, s)
	}
	return series, nil
}

type point struct{ x, y float64 }

// duplicateErr is the shared AggNone-with-duplicates error of both
// extraction paths.
func duplicateErr(spec ExtractSpec, z string, x float64) error {
	return fmt.Errorf("dataset: multiple y values at %s=%q, %s=%v; specify an aggregation",
		spec.Z, z, spec.X, x)
}

func aggregate(pts []point, a Agg) float64 {
	switch a {
	case AggCount:
		return float64(len(pts))
	case AggSum:
		var sum float64
		for _, p := range pts {
			sum += p.y
		}
		return sum
	case AggMin:
		min := pts[0].y
		for _, p := range pts[1:] {
			if p.y < min {
				min = p.y
			}
		}
		return min
	case AggMax:
		max := pts[0].y
		for _, p := range pts[1:] {
			if p.y > max {
				max = p.y
			}
		}
		return max
	default: // AggAvg and AggNone (single point)
		var sum float64
		for _, p := range pts {
			sum += p.y
		}
		return sum / float64(len(pts))
	}
}

// InRanges reports whether x falls inside any of the inclusive [start, end]
// windows. It is the one shared range test for the LOCATION push-down: the
// EXTRACT row filter and the executor's GROUP skip-mask both use it.
func InRanges(x float64, ranges [][2]float64) bool {
	for _, r := range ranges {
		if x >= r[0] && x <= r[1] {
			return true
		}
	}
	return false
}
