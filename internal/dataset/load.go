package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// FromCSV reads a table from CSV data with a header row. Column types are
// inferred: a column where every non-empty value parses as a float becomes
// Float, otherwise String. Empty numeric cells become NaN (and are skipped
// by Extract).
func FromCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no header row")
	}
	header := records[0]
	body := records[1:]
	cols := make([]Column, len(header))
	for j, name := range header {
		cols[j] = inferColumn(name, body, j)
	}
	return New(cols...)
}

// FromCSVSchema reads CSV rows under an existing table's schema: the
// header must list exactly the schema's columns (any order), and every
// cell is parsed per the schema column's declared type instead of being
// re-inferred — so an append batch whose string column happens to look
// numeric still lands as strings. Unparsable numeric cells are an error
// (not a silent NaN: an append delta is small enough to reject outright);
// empty numeric cells become NaN as in FromCSV.
func FromCSVSchema(r io.Reader, schema *Table) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no header row")
	}
	header := records[0]
	body := records[1:]
	if len(header) != schema.NumCols() {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), schema.NumCols())
	}
	// srcOf[j] is the CSV column holding schema column j.
	srcOf := make([]int, schema.NumCols())
	used := make([]bool, len(header))
	for j, name := range schema.ColumnNames() {
		found := -1
		for k, h := range header {
			if h == name && !used[k] {
				found = k
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("dataset: CSV is missing column %q", name)
		}
		used[found] = true
		srcOf[j] = found
	}
	cols := make([]Column, schema.NumCols())
	for j := range cols {
		sc := &schema.cols[j]
		k := srcOf[j]
		c := Column{Name: sc.Name, Type: sc.Type}
		if sc.Type == Float {
			c.Floats = make([]float64, len(body))
			for i, rec := range body {
				if k >= len(rec) || rec[k] == "" {
					c.Floats[i] = nan()
					continue
				}
				v, err := strconv.ParseFloat(rec[k], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q row %d: %q is not numeric", sc.Name, i+1, rec[k])
				}
				c.Floats[i] = v
			}
		} else {
			c.Strings = make([]string, len(body))
			for i, rec := range body {
				if k < len(rec) {
					c.Strings[i] = rec[k]
				}
			}
		}
		cols[j] = c
	}
	return New(cols...)
}

// OpenCSV loads a CSV file from disk.
func OpenCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return FromCSV(f)
}

func inferColumn(name string, body [][]string, j int) Column {
	numeric := true
	for _, rec := range body {
		if j >= len(rec) || rec[j] == "" {
			continue
		}
		if _, err := strconv.ParseFloat(rec[j], 64); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		c := Column{Name: name, Type: Float, Floats: make([]float64, len(body))}
		for i, rec := range body {
			if j >= len(rec) || rec[j] == "" {
				c.Floats[i] = nan()
				continue
			}
			v, _ := strconv.ParseFloat(rec[j], 64)
			c.Floats[i] = v
		}
		return c
	}
	c := Column{Name: name, Type: String, Strings: make([]string, len(body))}
	for i, rec := range body {
		if j < len(rec) {
			c.Strings[i] = rec[j]
		}
	}
	return c
}

// FromJSON reads a table from a JSON array of flat objects. Numeric values
// become Float columns; everything else is stringified. Keys missing from
// some objects become NaN / empty values.
func FromJSON(r io.Reader) (*Table, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var rows []map[string]any
	if err := dec.Decode(&rows); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: JSON array is empty")
	}
	// Collect keys in first-seen order for stable column ordering.
	var names []string
	seen := make(map[string]bool)
	numeric := make(map[string]bool)
	for _, row := range rows {
		for k, v := range row {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
				numeric[k] = true
			}
			if _, ok := v.(json.Number); !ok && v != nil {
				numeric[k] = false
			}
		}
	}
	sortStableByFirstSeen(names, rows)
	cols := make([]Column, 0, len(names))
	for _, k := range names {
		if numeric[k] {
			c := Column{Name: k, Type: Float, Floats: make([]float64, len(rows))}
			for i, row := range rows {
				if n, ok := row[k].(json.Number); ok {
					f, err := n.Float64()
					if err != nil {
						return nil, fmt.Errorf("dataset: column %q row %d: %w", k, i, err)
					}
					c.Floats[i] = f
				} else {
					c.Floats[i] = nan()
				}
			}
			cols = append(cols, c)
			continue
		}
		c := Column{Name: k, Type: String, Strings: make([]string, len(rows))}
		for i, row := range rows {
			switch v := row[k].(type) {
			case nil:
				c.Strings[i] = ""
			case string:
				c.Strings[i] = v
			case json.Number:
				c.Strings[i] = v.String()
			case bool:
				c.Strings[i] = strconv.FormatBool(v)
			default:
				b, _ := json.Marshal(v)
				c.Strings[i] = string(b)
			}
		}
		cols = append(cols, c)
	}
	return New(cols...)
}

// sortStableByFirstSeen keeps map-iteration nondeterminism out of the column
// order: names discovered within one row are sorted lexicographically while
// preserving cross-row discovery order. In practice rows share a schema, so
// this yields a deterministic, sorted column order.
func sortStableByFirstSeen(names []string, rows []map[string]any) {
	if len(rows) == 0 {
		return
	}
	first := rows[0]
	// Names present in the first row come first, sorted; stragglers after,
	// sorted.
	var a, b []string
	for _, n := range names {
		if _, ok := first[n]; ok {
			a = append(a, n)
		} else {
			b = append(b, n)
		}
	}
	sortStrings(a)
	sortStrings(b)
	copy(names, append(a, b...))
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, len(t.cols))
	for i := 0; i < t.rows; i++ {
		for j := range t.cols {
			rec[j] = t.cols[j].ValueString(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func nan() float64 { return math.NaN() }
