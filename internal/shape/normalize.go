package shape

import (
	"fmt"
	"math"
)

// Unit is one CONCAT-free sub-expression of a normalized query, scored over
// a single VisualSegment. Weight is the unit's share of the chain's weighted
// mean; weights within a chain sum to 1. Nested means (from grouped
// sub-chains like a⊗(b⊗c)) surface as unequal weights, preserving the
// paper's operator semantics.
type Unit struct {
	Node   *Node
	Weight float64
}

// Chain is a normalized CONCAT chain of units, matched left to right over
// consecutive VisualSegments.
type Chain struct {
	Units []Unit
}

// Len reports the number of units (the "k" of the paper's complexity
// analyses).
func (c Chain) Len() int { return len(c.Units) }

// Score combines per-unit scores into the chain score: the weighted mean
// that generalizes CONCAT's average.
func (c Chain) Score(unitScores []float64) float64 {
	var total float64
	for i, u := range c.Units {
		total += u.Weight * unitScores[i]
	}
	return total
}

// PinnedStart returns the pinned x.s of unit i if every x.s-bearing segment
// in the unit agrees on a literal value.
func (u Unit) PinnedStart() (float64, bool) { return pinned(u.Node, true) }

// PinnedEnd returns the pinned x.e of unit i under the same rule.
func (u Unit) PinnedEnd() (float64, bool) { return pinned(u.Node, false) }

func pinned(n *Node, start bool) (float64, bool) {
	var val float64
	found := false
	consistent := true
	n.Walk(func(m *Node) {
		if m.Kind != NodeSegment {
			return
		}
		c := m.Seg.Loc.XS
		if !start {
			c = m.Seg.Loc.XE
		}
		if !c.Set || c.Iter {
			return
		}
		if found && c.Value != val {
			consistent = false
			return
		}
		val, found = c.Value, true
	})
	if !found || !consistent {
		return 0, false
	}
	return val, true
}

// IsFuzzy reports whether the unit lacks a pinned start or end (Section 6:
// a fuzzy ShapeSegment has at least one x endpoint missing). Units built
// from iterator segments locate themselves and are treated as non-fuzzy
// only when fully pinned; iterators scan, so they count as fuzzy-free for
// segmentation purposes but are evaluated over whichever region the chain
// assigns them.
func (u Unit) IsFuzzy() bool {
	_, s := u.PinnedStart()
	_, e := u.PinnedEnd()
	return !(s && e)
}

// Normalized is the engine-facing form of a query: a set of alternative
// chains. OR nodes whose branches contain CONCAT chains expand into
// alternatives (max distributes over per-alternative optimal segmentation);
// OR nodes over plain units stay inside a single unit.
type Normalized struct {
	Alternatives []Chain
}

// MaxUnits returns the longest chain length across alternatives.
func (n Normalized) MaxUnits() int {
	max := 0
	for _, a := range n.Alternatives {
		if a.Len() > max {
			max = a.Len()
		}
	}
	return max
}

// Normalize rewrites a validated query into alternative weighted CONCAT
// chains. It returns an error for compositions the fuzzy engines cannot
// segment (AND or OPPOSITE applied over CONCAT chains), which the paper's
// algebra never produces either.
//
// Post-processing: alternatives reduced to the empty chain (every optional
// absent) are dropped — a query must require at least one segment; each
// chain's weights are rescaled to sum to 1 (optional expansion leaves the
// surviving units' relative weights intact but their sum short); and exact
// duplicate chains — same units, same weights, per Chain.Signature — are
// deduplicated keeping the first occurrence, so the engines never solve the
// same segmentation twice per candidate. Dedup is score-neutral: a dropped
// duplicate scores identically to its earlier copy, and the earlier copy
// already wins the best-alternative tie.
func Normalize(q Query) (Normalized, error) {
	if q.Root == nil {
		return Normalized{}, fmt.Errorf("shape: cannot normalize empty query")
	}
	chains, err := normalizeNode(q.Root, 1.0)
	if err != nil {
		return Normalized{}, err
	}
	kept := chains[:0]
	for _, c := range chains {
		if len(c.Units) > 0 {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return Normalized{}, fmt.Errorf("shape: query admits only the empty match; at least one segment must be required")
	}
	for _, c := range kept {
		renormalizeWeights(c.Units)
	}
	if len(kept) > 1 {
		kept = dedupChains(kept)
	}
	return Normalized{Alternatives: kept}, nil
}

// renormalizeWeights rescales unit weights to sum to exactly 1 when optional
// expansion left the sum short. Chains whose weights already sum to 1 (every
// query without optionals, up to float rounding in the CONCAT divisions) are
// left bit-identical.
func renormalizeWeights(units []Unit) {
	var sum float64
	for _, u := range units {
		sum += u.Weight
	}
	if sum <= 0 || math.Abs(sum-1) <= 1e-9 {
		return
	}
	for i := range units {
		units[i].Weight /= sum
	}
}

// dedupChains drops exact duplicate alternatives, keeping first occurrences
// in order.
func dedupChains(chains []Chain) []Chain {
	seen := make(map[string]struct{}, len(chains))
	out := chains[:0]
	for _, c := range chains {
		sig := c.Signature()
		if _, dup := seen[sig]; dup {
			continue
		}
		seen[sig] = struct{}{}
		out = append(out, c)
	}
	return out
}

func normalizeNode(n *Node, weight float64) ([]Chain, error) {
	switch n.Kind {
	case NodeSegment:
		return []Chain{{Units: []Unit{{Node: n, Weight: weight}}}}, nil

	case NodeConcat:
		w := weight / float64(len(n.Children))
		acc := []Chain{{}}
		for _, c := range n.Children {
			sub, err := normalizeNode(c, w)
			if err != nil {
				return nil, err
			}
			// Cross-concatenate: every accumulated prefix extends with every
			// alternative of the child.
			next := make([]Chain, 0, len(acc)*len(sub))
			for _, pre := range acc {
				for _, s := range sub {
					units := make([]Unit, 0, len(pre.Units)+len(s.Units))
					units = append(units, pre.Units...)
					units = append(units, s.Units...)
					next = append(next, Chain{Units: units})
				}
			}
			acc = next
		}
		return acc, nil

	case NodeOr:
		// If every branch is a single unit, the OR stays inside one unit so
		// segmentation treats it atomically.
		allUnit := true
		var branches [][]Chain
		for _, c := range n.Children {
			sub, err := normalizeNode(c, weight)
			if err != nil {
				return nil, err
			}
			branches = append(branches, sub)
			if len(sub) != 1 || sub[0].Len() != 1 {
				allUnit = false
			}
		}
		if allUnit {
			return []Chain{{Units: []Unit{{Node: n, Weight: weight}}}}, nil
		}
		var out []Chain
		for _, sub := range branches {
			out = append(out, sub...)
		}
		return out, nil

	case NodeOptional:
		sub, err := normalizeNode(n.Children[0], weight)
		if err != nil {
			return nil, err
		}
		// The absent branch is the empty chain: CONCAT cross-concatenation
		// contributes no units for it, and Normalize rescales the surviving
		// chain's weights to sum to 1.
		return append(sub, Chain{}), nil

	case NodeAnd:
		for _, c := range n.Children {
			if containsConcat(c) {
				return nil, fmt.Errorf("shape: AND over a CONCAT chain cannot be segmented; restructure the query")
			}
			if containsOptional(c) {
				return nil, fmt.Errorf("shape: AND over an optional sub-shape cannot be segmented; restructure the query")
			}
		}
		return []Chain{{Units: []Unit{{Node: n, Weight: weight}}}}, nil

	case NodeNot:
		if containsConcat(n.Children[0]) {
			return nil, fmt.Errorf("shape: OPPOSITE over a CONCAT chain cannot be segmented; restructure the query")
		}
		if containsOptional(n.Children[0]) {
			return nil, fmt.Errorf("shape: OPPOSITE over an optional sub-shape cannot be segmented; restructure the query")
		}
		return []Chain{{Units: []Unit{{Node: n, Weight: weight}}}}, nil

	default:
		return nil, fmt.Errorf("shape: cannot normalize node kind %d", int(n.Kind))
	}
}

// containsConcat reports whether the subtree holds a CONCAT node at any
// depth outside nested pattern sub-queries (which are evaluated atomically
// by the unit evaluator).
func containsConcat(n *Node) bool {
	if n == nil {
		return false
	}
	if n.Kind == NodeConcat {
		return true
	}
	for _, c := range n.Children {
		if containsConcat(c) {
			return true
		}
	}
	return false
}

// containsOptional reports whether the subtree holds an OPTIONAL node at any
// depth outside nested pattern sub-queries.
func containsOptional(n *Node) bool {
	if n == nil {
		return false
	}
	if n.Kind == NodeOptional {
		return true
	}
	for _, c := range n.Children {
		if containsOptional(c) {
			return true
		}
	}
	return false
}
