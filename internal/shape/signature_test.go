package shape

import (
	"math"
	"testing"
)

func upSeg() *Node   { return PatternSeg(PatUp) }
func downSeg() *Node { return PatternSeg(PatDown) }

func TestSignatureMatchesStructuralEquality(t *testing.T) {
	pairs := []struct {
		a, b *Node
		same bool
	}{
		{upSeg(), upSeg(), true},
		{upSeg(), downSeg(), false},
		{SlopeSeg(45), SlopeSeg(45), true},
		{SlopeSeg(45), SlopeSeg(45.5), false},
		{Seg(Segment{Loc: Location{XS: Lit(2)}, Pat: Pattern{Kind: PatUp}}),
			Seg(Segment{Loc: Location{XS: Lit(2)}, Pat: Pattern{Kind: PatUp}}), true},
		{Seg(Segment{Loc: Location{XS: Lit(2)}, Pat: Pattern{Kind: PatUp}}),
			Seg(Segment{Loc: Location{XE: Lit(2)}, Pat: Pattern{Kind: PatUp}}), false},
		{Seg(Segment{Pat: Pattern{Kind: PatUDP, Name: "spike"}}),
			Seg(Segment{Pat: Pattern{Kind: PatUDP, Name: "spike"}}), true},
		{Seg(Segment{Pat: Pattern{Kind: PatUDP, Name: "spike"}}),
			Seg(Segment{Pat: Pattern{Kind: PatUDP, Name: "dip"}}), false},
		{Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(upSeg(), downSeg())}}),
			Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(upSeg(), downSeg())}}), true},
		{Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(upSeg(), downSeg())}}),
			Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(downSeg(), upSeg())}}), false},
		{And(upSeg(), Not(downSeg())), And(upSeg(), Not(downSeg())), true},
		{And(upSeg(), Not(downSeg())), And(upSeg(), Not(upSeg())), false},
		{Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier, Min: 2, HasMin: true}}),
			Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier, Min: 2, HasMin: true}}), true},
		{Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier, Min: 2, HasMin: true}}),
			Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier, Min: 3, HasMin: true}}), false},
	}
	for i, p := range pairs {
		sa, sb := p.a.Signature(), p.b.Signature()
		if (sa == sb) != p.same {
			t.Errorf("pair %d: signatures %q vs %q, want same=%v", i, sa, sb, p.same)
		}
		if p.same != p.a.Equal(p.b) {
			t.Errorf("pair %d: Equal=%v disagrees with expectation %v", i, p.a.Equal(p.b), p.same)
		}
	}
}

func TestHasDirectPositionRef(t *testing.T) {
	pos := Seg(Segment{Pat: Pattern{Kind: PatPosition, Ref: PosRef{Kind: RefPrev}}})
	if !pos.HasDirectPositionRef() {
		t.Fatal("bare POSITION segment must report a direct reference")
	}
	if !And(upSeg(), pos).HasDirectPositionRef() {
		t.Fatal("POSITION under AND must report a direct reference")
	}
	// POSITION inside a nested sub-query resolves within the sub-query's
	// own chains and must not leak out.
	nested := Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(upSeg(), pos)}})
	if nested.HasDirectPositionRef() {
		t.Fatal("POSITION inside a nested sub-query is not a direct reference")
	}
}

// TestNormalizeOptional: the ? operator expands into alternatives with and
// without the optional units, never yields an empty chain, and every
// surviving chain's weights sum to 1.
func TestNormalizeOptional(t *testing.T) {
	q := Query{Root: Concat(Optional(upSeg()), downSeg())}
	n, err := Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 2 {
		t.Fatalf("got %d alternatives, want 2", len(n.Alternatives))
	}
	for _, alt := range n.Alternatives {
		var sum float64
		for _, u := range alt.Units {
			sum += u.Weight
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("chain %v weights sum to %v, want 1", alt, sum)
		}
	}
	if n.Alternatives[0].Len() != 2 || n.Alternatives[1].Len() != 1 {
		t.Fatalf("alternative lengths %d, %d; want 2, 1", n.Alternatives[0].Len(), n.Alternatives[1].Len())
	}
	if w := n.Alternatives[1].Units[0].Weight; w != 1 {
		t.Fatalf("lone unit weight %v, want exactly 1", w)
	}

	// A whole-query optional degrades to its required form: the empty
	// alternative is dropped, so u? normalizes like bare u.
	solo, err := Normalize(Query{Root: Optional(upSeg())})
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Alternatives) != 1 || solo.Alternatives[0].Len() != 1 ||
		solo.Alternatives[0].Units[0].Weight != 1 {
		t.Fatalf("u? normalized to %+v, want the single bare-u chain", solo.Alternatives)
	}

	// AND / OPPOSITE over an optional cannot be segmented.
	if _, err := Normalize(Query{Root: And(upSeg(), Optional(downSeg()))}); err == nil {
		t.Fatal("AND over optional must not normalize")
	}
	if _, err := Normalize(Query{Root: Not(Optional(downSeg()))}); err == nil {
		t.Fatal("OPPOSITE over optional must not normalize")
	}
}

// TestChainDedupPreservesWeights: dedup drops only chains that agree on
// units AND weights; structurally equal chains with different weightings
// (from nested CONCAT grouping) must both survive, and a dropped duplicate
// must not disturb the kept chain's weights.
func TestChainDedupPreservesWeights(t *testing.T) {
	// (u;(d;u)) | (u;d;u): same unit patterns, different weight vectors.
	grouped := Concat(upSeg(), Concat(downSeg(), upSeg()))
	flat := Concat(upSeg(), downSeg(), upSeg())
	n, err := Normalize(Query{Root: Or(grouped, flat)})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 2 {
		t.Fatalf("got %d alternatives, want 2 (different weightings must not merge)", len(n.Alternatives))
	}
	wantGrouped := []float64{0.5, 0.25, 0.25}
	for i, w := range wantGrouped {
		if n.Alternatives[0].Units[i].Weight != w {
			t.Fatalf("grouped chain unit %d weight %v, want %v", i, n.Alternatives[0].Units[i].Weight, w)
		}
	}

	// (u;d) | (u;d): exact duplicates collapse to one, keeping the first
	// occurrence's weights untouched.
	dup, err := Normalize(Query{Root: Or(Concat(upSeg(), downSeg()), Concat(upSeg(), downSeg()))})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Alternatives) != 1 {
		t.Fatalf("got %d alternatives, want 1 after dedup", len(dup.Alternatives))
	}
	for i, u := range dup.Alternatives[0].Units {
		if u.Weight != 0.5 {
			t.Fatalf("deduped chain unit %d weight %v, want 0.5", i, u.Weight)
		}
	}
}

// TestNormalizeUnchangedWithoutOptionals: queries without optionals keep
// their exact pre-dedup weights (renormalization must not touch chains
// whose weights already sum to ~1, so float drift like 3×(1/3) stays
// bit-identical to the historical behavior).
func TestNormalizeUnchangedWithoutOptionals(t *testing.T) {
	n, err := Normalize(Query{Root: Concat(upSeg(), downSeg(), upSeg())})
	if err != nil {
		t.Fatal(err)
	}
	third := 1.0 / 3.0
	for i, u := range n.Alternatives[0].Units {
		if u.Weight != third {
			t.Fatalf("unit %d weight %v, want exactly 1/3 (bit-identical)", i, u.Weight)
		}
	}
}

// TestOptionalStringRoundTrip: String renders ? so that it reparses.
func TestOptionalStringRoundTrip(t *testing.T) {
	q := Query{Root: Concat(Optional(upSeg()), downSeg(), Optional(Concat(upSeg(), downSeg())))}
	if got, want := q.String(), "[p=up]?[p=down]([p=up][p=down])?"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestXRangesSkipsOptional: pinned windows under an optional must not feed
// push-down filtering, and the query must not count as fully pinned.
func TestXRangesSkipsOptional(t *testing.T) {
	pinned := Seg(Segment{Loc: Location{XS: Lit(2), XE: Lit(5)}, Pat: Pattern{Kind: PatUp}})
	opt := Optional(Seg(Segment{Loc: Location{XS: Lit(7), XE: Lit(9)}, Pat: Pattern{Kind: PatDown}}))
	ranges, ok := Query{Root: Concat(pinned, opt)}.XRanges()
	if ok {
		t.Fatal("query with an optional segment must not be fully pinned")
	}
	if len(ranges) != 1 || ranges[0] != [2]float64{2, 5} {
		t.Fatalf("ranges = %v, want only the required segment's window", ranges)
	}
}
