package shape

import (
	"math"
	"strconv"
	"strings"
)

// Canonical structural signatures. A signature serializes every field that
// participates in structural equality (Node.Equal), nested sub-queries
// included, with floats encoded by their exact IEEE bit pattern — so equal
// signatures imply structurally equal trees, which in turn score identically
// over every range of every visualization. The executor interns unit
// signatures once per compiled plan and keys its per-candidate unit-score
// memo and chain-bound dedup on them; two alternatives produced by
// cross-concatenation that share a unit therefore share its evaluation.

// Signature returns the canonical structural signature of the node tree.
func (n *Node) Signature() string {
	var sb strings.Builder
	writeNodeSig(&sb, n)
	return sb.String()
}

// Signature returns the unit's canonical pattern signature (the node
// signature; the unit's chain weight is a chain-level property, see
// Chain.Signature).
func (u Unit) Signature() string { return u.Node.Signature() }

// Signature returns the canonical signature of the chain: the unit
// signatures in order, each paired with its exact weight. Two chains with
// equal signatures are interchangeable — same score and same assignment on
// every visualization — which is the dedup contract of Normalize.
func (c Chain) Signature() string {
	var sb strings.Builder
	for i, u := range c.Units {
		if i > 0 {
			sb.WriteByte(';')
		}
		writeFloatSig(&sb, u.Weight)
		sb.WriteByte('*')
		writeNodeSig(&sb, u.Node)
	}
	return sb.String()
}

// Fingerprint returns the canonical fingerprint of a normalized query: its
// alternative chain signatures in order, newline-joined. Two queries with
// equal fingerprints normalize to the same alternatives in the same order —
// they score identically (same score bits, same assignment, same
// best-alternative tie resolution) over every visualization, so a compiled
// plan for one serves the other verbatim. That is the keying contract of
// the server's compiled-plan cache: syntactically different spellings of
// one query (`u? ; d` versus its expanded chains re-entered through ⊕)
// collide, while any structural or weight difference — weights are exact
// IEEE bits in Chain.Signature — separates.
//
// The fingerprint is order-sensitive on purpose: alternative order decides
// ties between equal-scoring alternatives, so order-insensitive keying
// would conflate plans with observably different Ranges/BreakXs output.
func (n Normalized) Fingerprint() string {
	var sb strings.Builder
	for i, alt := range n.Alternatives {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(alt.Signature())
	}
	return sb.String()
}

// HasDirectPositionRef reports whether the tree contains a POSITION pattern
// outside nested sub-queries. Such a node's score depends on its position in
// the chain and on sibling units' fitted slopes, not on its structure alone,
// so it is excluded from signature-keyed score sharing. POSITION references
// inside a nested sub-query resolve within that sub-query's own chains and
// do not leak out.
func (n *Node) HasDirectPositionRef() bool {
	if n == nil {
		return false
	}
	if n.Kind == NodeSegment && n.Seg.Pat.Kind == PatPosition {
		return true
	}
	for _, c := range n.Children {
		if c.HasDirectPositionRef() {
			return true
		}
	}
	return false
}

func writeNodeSig(sb *strings.Builder, n *Node) {
	if n == nil {
		sb.WriteByte('_')
		return
	}
	if n.Kind == NodeSegment {
		writeSegSig(sb, n.Seg)
		return
	}
	sb.WriteByte('(')
	sb.WriteString(strconv.Itoa(int(n.Kind)))
	for _, c := range n.Children {
		sb.WriteByte(' ')
		writeNodeSig(sb, c)
	}
	sb.WriteByte(')')
}

func writeSegSig(sb *strings.Builder, s *Segment) {
	if s == nil {
		sb.WriteString("[_]")
		return
	}
	sb.WriteByte('[')
	writeCoordSig(sb, s.Loc.XS)
	sb.WriteByte(',')
	writeCoordSig(sb, s.Loc.XE)
	sb.WriteByte(',')
	writeCoordSig(sb, s.Loc.YS)
	sb.WriteByte(',')
	writeCoordSig(sb, s.Loc.YE)
	sb.WriteByte('p')
	sb.WriteString(strconv.Itoa(int(s.Pat.Kind)))
	switch s.Pat.Kind {
	case PatSlope:
		writeFloatSig(sb, s.Pat.Slope)
	case PatPosition:
		sb.WriteString(strconv.Itoa(int(s.Pat.Ref.Kind)))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(s.Pat.Ref.Index))
	case PatUDP:
		sb.WriteString(strconv.Quote(s.Pat.Name))
	case PatNested:
		writeNodeSig(sb, s.Pat.Sub)
	}
	sb.WriteByte('m')
	sb.WriteString(strconv.Itoa(int(s.Mod.Kind)))
	writeFloatSig(sb, s.Mod.Factor)
	if s.Mod.HasMin {
		sb.WriteString(strconv.Itoa(s.Mod.Min))
	}
	sb.WriteByte(',')
	if s.Mod.HasMax {
		sb.WriteString(strconv.Itoa(s.Mod.Max))
	}
	if len(s.Sketch) > 0 {
		sb.WriteByte('v')
		for _, pt := range s.Sketch {
			writeFloatSig(sb, pt.X)
			sb.WriteByte(':')
			writeFloatSig(sb, pt.Y)
			sb.WriteByte(' ')
		}
	}
	sb.WriteByte(']')
}

func writeCoordSig(sb *strings.Builder, c Coord) {
	if !c.Set {
		sb.WriteByte('_')
		return
	}
	if c.Iter {
		sb.WriteByte('.')
		writeFloatSig(sb, c.IterOffset)
		return
	}
	writeFloatSig(sb, c.Value)
}

func writeFloatSig(sb *strings.Builder, f float64) {
	sb.WriteString(strconv.FormatUint(math.Float64bits(f), 16))
}
