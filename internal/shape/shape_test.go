package shape

import (
	"strings"
	"testing"
)

func up() *Node   { return PatternSeg(PatUp) }
func down() *Node { return PatternSeg(PatDown) }
func flat() *Node { return PatternSeg(PatFlat) }

func TestSegmentString(t *testing.T) {
	cases := []struct {
		seg  Segment
		want string
	}{
		{Segment{Pat: Pattern{Kind: PatUp}}, "[p=up]"},
		{Segment{Pat: Pattern{Kind: PatSlope, Slope: 45}}, "[p=45]"},
		{
			Segment{
				Loc: Location{XS: Lit(2), XE: Lit(5)},
				Pat: Pattern{Kind: PatUp},
			},
			"[x.s=2, x.e=5, p=up]",
		},
		{
			Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModMuchMore}},
			"[p=up, m=>>]",
		},
		{
			Segment{
				Pat: Pattern{Kind: PatUp},
				Mod: Modifier{Kind: ModQuantifier, Min: 2, HasMin: true},
			},
			"[p=up, m={2,}]",
		},
		{
			Segment{
				Loc: Location{XS: IterCoord(0), XE: IterCoord(3)},
				Pat: Pattern{Kind: PatUp},
			},
			"[x.s=., x.e=.+3, p=up]",
		},
		{
			Segment{Pat: Pattern{Kind: PatPosition, Ref: PosRef{Kind: RefAbs, Index: 0}}, Mod: Modifier{Kind: ModLess}},
			"[p=$0, m=<]",
		},
		{
			Segment{Sketch: []Point{{2, 10}, {3, 14}}},
			"[v=(2:10,3:14)]",
		},
	}
	for _, c := range cases {
		if got := c.seg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestQueryStringPrecedence(t *testing.T) {
	// a ⊗ (b ⊕ (c ⊗ d)) — the running example of the paper.
	q := Query{Root: Concat(up(), Or(flat(), Concat(down(), up())))}
	got := q.String()
	want := "[p=up]([p=flat] | [p=down][p=up])"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNotString(t *testing.T) {
	q := Query{Root: Not(flat())}
	if got := q.String(); got != "![p=flat]" {
		t.Errorf("String() = %q", got)
	}
	q = Query{Root: Not(Concat(up(), down()))}
	if got := q.String(); got != "!([p=up][p=down])" {
		t.Errorf("String() = %q", got)
	}
}

func TestValidateOK(t *testing.T) {
	good := []Query{
		{Root: up()},
		{Root: Concat(up(), down(), up())},
		{Root: And(up(), Not(flat()))},
		{Root: Seg(Segment{Loc: Location{XS: Lit(1), XE: Lit(5)}})},
		{Root: Seg(Segment{
			Loc: Location{XS: IterCoord(0), XE: IterCoord(3)},
			Pat: Pattern{Kind: PatUp},
		})},
		{Root: Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(up(), down())}})},
		{Root: Seg(Segment{Sketch: []Point{{0, 1}, {1, 2}}})},
	}
	for i, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		q    Query
		want string
	}{
		{"empty", Query{}, "empty query"},
		{"no primitives", Query{Root: Seg(Segment{})}, "no pattern"},
		{"bad slope", Query{Root: SlopeSeg(95)}, "slope pattern"},
		{"udp no name", Query{Root: Seg(Segment{Pat: Pattern{Kind: PatUDP}})}, "requires a name"},
		{"nested nil", Query{Root: Seg(Segment{Pat: Pattern{Kind: PatNested}})}, "sub-query"},
		{"neg ref", Query{Root: Seg(Segment{Pat: Pattern{Kind: PatPosition, Ref: PosRef{Kind: RefAbs, Index: -1}}})}, "non-negative"},
		{
			"inverted x",
			Query{Root: Seg(Segment{Loc: Location{XS: Lit(9), XE: Lit(2)}, Pat: Pattern{Kind: PatUp}})},
			"must not exceed",
		},
		{
			"iter end without start",
			Query{Root: Seg(Segment{Loc: Location{XE: IterCoord(3)}, Pat: Pattern{Kind: PatUp}})},
			"requires x.s iterator",
		},
		{
			"iter zero width",
			Query{Root: Seg(Segment{Loc: Location{XS: IterCoord(0), XE: IterCoord(0)}, Pat: Pattern{Kind: PatUp}})},
			"width",
		},
		{
			"quantifier no bounds",
			Query{Root: Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier}})},
			"at least one bound",
		},
		{
			"quantifier inverted",
			Query{Root: Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModQuantifier, Min: 5, Max: 2, HasMin: true, HasMax: true}})},
			"exceeds max",
		},
		{
			"factor nonpositive",
			Query{Root: Seg(Segment{Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModMoreFactor, Factor: 0}})},
			"must be positive",
		},
		{
			"unsorted sketch",
			Query{Root: Seg(Segment{Sketch: []Point{{5, 1}, {2, 2}}})},
			"sorted by x",
		},
	}
	for _, c := range cases {
		err := c.q.Validate()
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestIsFuzzy(t *testing.T) {
	fuzzy := Query{Root: Concat(up(), down())}
	if !fuzzy.IsFuzzy() {
		t.Error("pattern-only query should be fuzzy")
	}
	pinned := Query{Root: Seg(Segment{
		Loc: Location{XS: Lit(0), XE: Lit(10)},
		Pat: Pattern{Kind: PatUp},
	})}
	if pinned.IsFuzzy() {
		t.Error("fully pinned query should not be fuzzy")
	}
}

func TestXRanges(t *testing.T) {
	q := Query{Root: Concat(
		Seg(Segment{Loc: Location{XS: Lit(50), XE: Lit(100)}, Pat: Pattern{Kind: PatUp}}),
		down(),
	)}
	ranges, all := q.XRanges()
	if all {
		t.Error("query with a fuzzy segment should report ok=false")
	}
	if len(ranges) != 1 || ranges[0] != [2]float64{50, 100} {
		t.Errorf("ranges = %v", ranges)
	}

	q2 := Query{Root: Seg(Segment{Loc: Location{XS: Lit(1), XE: Lit(4)}, Pat: Pattern{Kind: PatDown}})}
	ranges, all = q2.XRanges()
	if !all || len(ranges) != 1 {
		t.Errorf("ranges = %v, all = %v", ranges, all)
	}
}

func TestHasYConstraints(t *testing.T) {
	if (Query{Root: up()}).HasYConstraints() {
		t.Error("plain up has no y constraints")
	}
	q := Query{Root: Seg(Segment{Loc: Location{YS: Lit(10), YE: Lit(100), XS: Lit(0), XE: Lit(5)}})}
	if !q.HasYConstraints() {
		t.Error("y-pinned query should report y constraints")
	}
	qs := Query{Root: Seg(Segment{Sketch: []Point{{0, 0}, {1, 1}}})}
	if !qs.HasYConstraints() {
		t.Error("sketch query compares raw values; should report y constraints")
	}
}

func TestCloneEqual(t *testing.T) {
	q := Query{Root: Concat(
		Seg(Segment{Loc: Location{XS: Lit(2), XE: Lit(5)}, Pat: Pattern{Kind: PatUp}, Mod: Modifier{Kind: ModMuchMore}}),
		Or(flat(), Seg(Segment{Pat: Pattern{Kind: PatNested, Sub: Concat(down(), up())}})),
	)}
	cp := q.Clone()
	if !q.Root.Equal(cp.Root) {
		t.Fatal("clone should be structurally equal")
	}
	// Mutating the clone must not affect the original.
	cp.Root.Children[0].Seg.Pat.Kind = PatDown
	if q.Root.Equal(cp.Root) {
		t.Fatal("mutated clone should differ")
	}
}

func TestQuantifierSatisfies(t *testing.T) {
	atLeast2 := Modifier{Kind: ModQuantifier, Min: 2, HasMin: true}
	atMost2 := Modifier{Kind: ModQuantifier, Max: 2, HasMax: true}
	between := Modifier{Kind: ModQuantifier, Min: 2, Max: 5, HasMin: true, HasMax: true}
	if atLeast2.Satisfies(1) || !atLeast2.Satisfies(2) || !atLeast2.Satisfies(9) {
		t.Error("at-least bounds wrong")
	}
	if !atMost2.Satisfies(0) || !atMost2.Satisfies(2) || atMost2.Satisfies(3) {
		t.Error("at-most bounds wrong")
	}
	if between.Satisfies(1) || !between.Satisfies(3) || between.Satisfies(6) {
		t.Error("between bounds wrong")
	}
}

func TestNormalizeSingleSegment(t *testing.T) {
	n, err := Normalize(Query{Root: up()})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 1 || n.Alternatives[0].Len() != 1 {
		t.Fatalf("got %+v", n)
	}
	if w := n.Alternatives[0].Units[0].Weight; w != 1 {
		t.Fatalf("weight = %v, want 1", w)
	}
}

func TestNormalizeFlatConcat(t *testing.T) {
	n, err := Normalize(Query{Root: Concat(up(), down(), up())})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 1 {
		t.Fatalf("alternatives = %d, want 1", len(n.Alternatives))
	}
	c := n.Alternatives[0]
	if c.Len() != 3 {
		t.Fatalf("units = %d, want 3", c.Len())
	}
	for _, u := range c.Units {
		if !almost(u.Weight, 1.0/3) {
			t.Fatalf("weight = %v, want 1/3", u.Weight)
		}
	}
}

func TestNormalizeNestedOrExpansion(t *testing.T) {
	// a ⊗ (b ⊕ (c ⊗ d)) expands into {a:1/2, b:1/2} and {a:1/2, c:1/4, d:1/4}.
	q := Query{Root: Concat(up(), Or(flat(), Concat(down(), up())))}
	n, err := Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 2 {
		t.Fatalf("alternatives = %d, want 2", len(n.Alternatives))
	}
	var two, three Chain
	for _, a := range n.Alternatives {
		switch a.Len() {
		case 2:
			two = a
		case 3:
			three = a
		default:
			t.Fatalf("unexpected chain length %d", a.Len())
		}
	}
	if !almost(two.Units[0].Weight, 0.5) || !almost(two.Units[1].Weight, 0.5) {
		t.Errorf("two-unit weights = %v, %v", two.Units[0].Weight, two.Units[1].Weight)
	}
	if !almost(three.Units[0].Weight, 0.5) || !almost(three.Units[1].Weight, 0.25) || !almost(three.Units[2].Weight, 0.25) {
		t.Errorf("three-unit weights = %v %v %v",
			three.Units[0].Weight, three.Units[1].Weight, three.Units[2].Weight)
	}
	if n.MaxUnits() != 3 {
		t.Errorf("MaxUnits = %d, want 3", n.MaxUnits())
	}
}

func TestNormalizeOrOfUnitsStaysAtomic(t *testing.T) {
	// up ⊕ down has no chains inside, so it stays a single unit.
	n, err := Normalize(Query{Root: Or(up(), down())})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Alternatives) != 1 || n.Alternatives[0].Len() != 1 {
		t.Fatalf("got %d alternatives, first len %d", len(n.Alternatives), n.Alternatives[0].Len())
	}
	if n.Alternatives[0].Units[0].Node.Kind != NodeOr {
		t.Fatal("unit should be the OR node itself")
	}
}

func TestNormalizeAndOverChainErrors(t *testing.T) {
	q := Query{Root: And(up(), Concat(down(), up()))}
	if _, err := Normalize(q); err == nil {
		t.Fatal("expected error for AND over CONCAT")
	}
	q = Query{Root: Not(Concat(down(), up()))}
	if _, err := Normalize(q); err == nil {
		t.Fatal("expected error for OPPOSITE over CONCAT")
	}
}

func TestChainScoreWeightedMean(t *testing.T) {
	c := Chain{Units: []Unit{{Weight: 0.5}, {Weight: 0.25}, {Weight: 0.25}}}
	got := c.Score([]float64{1, -1, 0.5})
	want := 0.5*1 + 0.25*-1 + 0.25*0.5
	if !almost(got, want) {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestUnitPins(t *testing.T) {
	u := Unit{Node: Seg(Segment{Loc: Location{XS: Lit(50), XE: Lit(100)}, Pat: Pattern{Kind: PatUp}})}
	s, ok := u.PinnedStart()
	if !ok || s != 50 {
		t.Fatalf("PinnedStart = %v, %v", s, ok)
	}
	e, ok := u.PinnedEnd()
	if !ok || e != 100 {
		t.Fatalf("PinnedEnd = %v, %v", e, ok)
	}
	if u.IsFuzzy() {
		t.Error("pinned unit should not be fuzzy")
	}
	free := Unit{Node: up()}
	if _, ok := free.PinnedStart(); ok {
		t.Error("free unit has no pinned start")
	}
	if !free.IsFuzzy() {
		t.Error("free unit should be fuzzy")
	}
}

func TestHasPositionRefs(t *testing.T) {
	q := Query{Root: Concat(up(), Seg(Segment{Pat: Pattern{Kind: PatPosition, Ref: PosRef{Kind: RefAbs}}, Mod: Modifier{Kind: ModLess}}))}
	if !q.HasPositionRefs() {
		t.Error("expected position refs")
	}
	if (Query{Root: up()}).HasPositionRefs() {
		t.Error("did not expect position refs")
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
