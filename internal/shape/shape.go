// Package shape defines the ShapeQuery algebra: the structured internal
// representation of a shape search query (Section 3 of the ShapeSearch
// paper). A ShapeQuery is a tree of ShapeSegments — each describing one
// pattern over one sub-region of a trendline — combined with the operators
// CONCAT (⊗), AND (⊙), OR (⊕) and OPPOSITE (!). Each ShapeSegment carries
// the shape primitives LOCATION, PATTERN, MODIFIER and SKETCH, with the
// ITERATOR and POSITION sub-primitives.
package shape

import (
	"fmt"
	"math"
	"strings"
)

// PatternKind enumerates the PATTERN primitive values of Table 1.
type PatternKind int

const (
	// PatNone means the segment specifies no pattern (location-only or
	// sketch-only segments).
	PatNone PatternKind = iota
	// PatUp matches increasing trends.
	PatUp
	// PatDown matches decreasing trends.
	PatDown
	// PatFlat matches stable trends.
	PatFlat
	// PatSlope matches trends with a specific slope, in degrees (θ = x).
	PatSlope
	// PatAny ("*") matches anything with score 1.
	PatAny
	// PatEmpty matches nothing; always scores −1.
	PatEmpty
	// PatPosition references the pattern of another ShapeSegment ($k, $-, $+).
	PatPosition
	// PatUDP is a named user-defined pattern, treated as a black box.
	PatUDP
	// PatNested embeds a full sub-query as the pattern value.
	PatNested
)

// String returns the canonical spelling of the pattern kind.
func (k PatternKind) String() string {
	switch k {
	case PatNone:
		return "none"
	case PatUp:
		return "up"
	case PatDown:
		return "down"
	case PatFlat:
		return "flat"
	case PatSlope:
		return "slope"
	case PatAny:
		return "*"
	case PatEmpty:
		return "empty"
	case PatPosition:
		return "$"
	case PatUDP:
		return "udp"
	case PatNested:
		return "nested"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(k))
	}
}

// PosRefKind says how a POSITION reference addresses another segment.
type PosRefKind int

const (
	// RefAbs addresses a segment by absolute index: $0 is the first segment.
	RefAbs PosRefKind = iota
	// RefPrev addresses the immediately preceding segment ($-).
	RefPrev
	// RefNext addresses the immediately following segment ($+).
	RefNext
)

// PosRef is a POSITION ($) reference to another ShapeSegment's pattern.
type PosRef struct {
	Kind  PosRefKind
	Index int // used when Kind == RefAbs
}

// String renders the reference in regex syntax ($0, $-, $+).
func (r PosRef) String() string {
	switch r.Kind {
	case RefPrev:
		return "$-"
	case RefNext:
		return "$+"
	default:
		return fmt.Sprintf("$%d", r.Index)
	}
}

// Pattern is the PATTERN primitive of a ShapeSegment.
type Pattern struct {
	Kind  PatternKind
	Slope float64 // degrees, for PatSlope
	Ref   PosRef  // for PatPosition
	Name  string  // for PatUDP
	Sub   *Node   // for PatNested
}

// String renders the pattern value in regex syntax.
func (p Pattern) String() string {
	switch p.Kind {
	case PatUp:
		return "up"
	case PatDown:
		return "down"
	case PatFlat:
		return "flat"
	case PatSlope:
		return trimFloat(p.Slope)
	case PatAny:
		return "*"
	case PatEmpty:
		return "empty"
	case PatPosition:
		return p.Ref.String()
	case PatUDP:
		return p.Name
	case PatNested:
		if p.Sub == nil {
			return "[]"
		}
		return "[" + p.Sub.String() + "]"
	default:
		return ""
	}
}

// ModifierKind enumerates the MODIFIER primitive values of Table 1.
type ModifierKind int

const (
	// ModNone means no modifier.
	ModNone ModifierKind = iota
	// ModMore (>) requires the slope to exceed the referenced segment's, or
	// marks a gradual up when used without a POSITION reference.
	ModMore
	// ModMuchMore (>>) is a sharper up / much-greater-slope constraint.
	ModMuchMore
	// ModLess (<) is the opposite of ModMore.
	ModLess
	// ModMuchLess (<<) is the opposite of ModMuchMore.
	ModMuchLess
	// ModEqual (=) requires similar slope to the referenced segment.
	ModEqual
	// ModMoreFactor (> f) requires slope ≥ f × the referenced segment's slope.
	ModMoreFactor
	// ModLessFactor (< f) requires slope ≤ f × the referenced segment's slope.
	ModLessFactor
	// ModQuantifier ({a,b}) requires between a and b occurrences of the
	// pattern inside the segment's region.
	ModQuantifier
)

// Modifier is the MODIFIER primitive of a ShapeSegment.
type Modifier struct {
	Kind   ModifierKind
	Factor float64 // for ModMoreFactor / ModLessFactor
	// Quantifier bounds; HasMin/HasMax distinguish {2,} from {2,5} from {,5}.
	Min, Max       int
	HasMin, HasMax bool
}

// IsZero reports whether no modifier is present.
func (m Modifier) IsZero() bool { return m.Kind == ModNone }

// String renders the modifier in regex syntax.
func (m Modifier) String() string {
	switch m.Kind {
	case ModMore:
		return ">"
	case ModMuchMore:
		return ">>"
	case ModLess:
		return "<"
	case ModMuchLess:
		return "<<"
	case ModEqual:
		return "="
	case ModMoreFactor:
		return ">" + trimFloat(m.Factor)
	case ModLessFactor:
		return "<" + trimFloat(m.Factor)
	case ModQuantifier:
		lo, hi := "", ""
		if m.HasMin {
			lo = fmt.Sprintf("%d", m.Min)
		}
		if m.HasMax {
			hi = fmt.Sprintf("%d", m.Max)
		}
		if m.HasMin && m.HasMax && m.Min == m.Max {
			return fmt.Sprintf("{%d}", m.Min)
		}
		return "{" + lo + "," + hi + "}"
	default:
		return ""
	}
}

// Satisfies reports whether an occurrence count meets the quantifier bounds.
func (m Modifier) Satisfies(count int) bool {
	if m.Kind != ModQuantifier {
		return true
	}
	if m.HasMin && count < m.Min {
		return false
	}
	if m.HasMax && count > m.Max {
		return false
	}
	return true
}

// Coord is one LOCATION sub-primitive endpoint (x.s, x.e, y.s or y.e).
// A coordinate may be unset, a literal value, or the ITERATOR (".") with an
// optional offset, as in x.e = . + 3.
type Coord struct {
	Set        bool
	Value      float64
	Iter       bool
	IterOffset float64
}

// Lit returns a literal coordinate.
func Lit(v float64) Coord { return Coord{Set: true, Value: v} }

// IterCoord returns an iterator coordinate with the given offset
// (offset 0 is plain ".").
func IterCoord(offset float64) Coord {
	return Coord{Set: true, Iter: true, IterOffset: offset}
}

// String renders the coordinate in regex syntax.
func (c Coord) String() string {
	if !c.Set {
		return ""
	}
	if c.Iter {
		if c.IterOffset == 0 {
			return "."
		}
		return ".+" + trimFloat(c.IterOffset)
	}
	return trimFloat(c.Value)
}

// Location is the LOCATION primitive: the endpoints of the sub-region over
// which a pattern is matched. Any subset of the four coordinates may be set.
type Location struct {
	XS, XE, YS, YE Coord
}

// IsZero reports whether no coordinate is set.
func (l Location) IsZero() bool {
	return !l.XS.Set && !l.XE.Set && !l.YS.Set && !l.YE.Set
}

// HasIterator reports whether either x coordinate uses the ITERATOR.
func (l Location) HasIterator() bool { return l.XS.Iter || l.XE.Iter }

// XPinned reports whether both x endpoints are fixed literals, which makes
// the owning segment non-fuzzy per Section 6.
func (l Location) XPinned() bool {
	return l.XS.Set && !l.XS.Iter && l.XE.Set && !l.XE.Iter
}

// Point is one (x, y) sample of a sketched trendline.
type Point struct {
	X, Y float64
}

// Segment is a ShapeSegment: the part of a query describing an individual
// pattern over one visual segment. Every segment is implicitly bound to the
// MATCH ([ ]) operator.
type Segment struct {
	Loc    Location
	Pat    Pattern
	Mod    Modifier
	Sketch []Point // SKETCH primitive (v); empty when unused
}

// IsFuzzy reports whether the segment is fuzzy: at least one of the start or
// end x locations is missing (Section 6). Iterator coordinates make the
// segment self-locating, not fuzzy, because the iterator enumerates its own
// windows.
func (s *Segment) IsFuzzy() bool {
	if s.Loc.HasIterator() {
		return false
	}
	return !s.Loc.XS.Set || !s.Loc.XE.Set
}

// String renders the segment in regex syntax, e.g.
// [x.s=2, x.e=5, p=up, m=>>].
func (s *Segment) String() string {
	var parts []string
	if s.Loc.XS.Set {
		parts = append(parts, "x.s="+s.Loc.XS.String())
	}
	if s.Loc.XE.Set {
		parts = append(parts, "x.e="+s.Loc.XE.String())
	}
	if s.Loc.YS.Set {
		parts = append(parts, "y.s="+s.Loc.YS.String())
	}
	if s.Loc.YE.Set {
		parts = append(parts, "y.e="+s.Loc.YE.String())
	}
	if s.Pat.Kind != PatNone {
		parts = append(parts, "p="+s.Pat.String())
	}
	if !s.Mod.IsZero() {
		parts = append(parts, "m="+s.Mod.String())
	}
	if len(s.Sketch) > 0 {
		var sb strings.Builder
		sb.WriteString("v=(")
		for i, pt := range s.Sketch {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(trimFloat(pt.X))
			sb.WriteByte(':')
			sb.WriteString(trimFloat(pt.Y))
		}
		sb.WriteByte(')')
		parts = append(parts, sb.String())
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// NodeKind enumerates the operator node types of the query tree.
type NodeKind int

const (
	// NodeSegment is a leaf MATCH node wrapping one ShapeSegment.
	NodeSegment NodeKind = iota
	// NodeConcat is the CONCAT (⊗) operator: a sequence of sub-shapes over
	// consecutive visual segments.
	NodeConcat
	// NodeAnd is the AND (⊙) operator: all sub-shapes over the same region.
	NodeAnd
	// NodeOr is the OR (⊕) operator: the best sub-shape over the same region.
	NodeOr
	// NodeNot is the OPPOSITE (!) operator.
	NodeNot
	// NodeOptional is the postfix optional ("?") operator: the sub-shape may
	// be present or absent. Normalize expands it into alternative chains
	// with and without the sub-shape's units.
	NodeOptional
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeSegment:
		return "MATCH"
	case NodeConcat:
		return "CONCAT"
	case NodeAnd:
		return "AND"
	case NodeOr:
		return "OR"
	case NodeNot:
		return "OPPOSITE"
	case NodeOptional:
		return "OPTIONAL"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one node of a ShapeQuery abstract syntax tree.
type Node struct {
	Kind     NodeKind
	Seg      *Segment // for NodeSegment
	Children []*Node  // for operator nodes
}

// Query is a parsed, validated ShapeQuery.
type Query struct {
	Root *Node
}

// Seg builds a leaf node around a segment.
func Seg(s Segment) *Node { return &Node{Kind: NodeSegment, Seg: &s} }

// Concat builds a CONCAT node. Single-child concats collapse to the child.
func Concat(children ...*Node) *Node { return opNode(NodeConcat, children) }

// And builds an AND node.
func And(children ...*Node) *Node { return opNode(NodeAnd, children) }

// Or builds an OR node.
func Or(children ...*Node) *Node { return opNode(NodeOr, children) }

// Not builds an OPPOSITE node.
func Not(child *Node) *Node {
	return &Node{Kind: NodeNot, Children: []*Node{child}}
}

// Optional builds an OPTIONAL ("?") node.
func Optional(child *Node) *Node {
	return &Node{Kind: NodeOptional, Children: []*Node{child}}
}

func opNode(kind NodeKind, children []*Node) *Node {
	if len(children) == 1 {
		return children[0]
	}
	return &Node{Kind: kind, Children: children}
}

// PatternSeg is a convenience constructor for a bare-pattern segment like
// [p=up].
func PatternSeg(kind PatternKind) *Node {
	return Seg(Segment{Pat: Pattern{Kind: kind}})
}

// SlopeSeg is a convenience constructor for [p=θ] with θ in degrees.
func SlopeSeg(deg float64) *Node {
	return Seg(Segment{Pat: Pattern{Kind: PatSlope, Slope: deg}})
}

// String renders the node in canonical regex syntax. Operator spellings use
// the ASCII forms accepted by the parser: implicit juxtaposition would also
// parse, but the canonical form is explicit.
func (n *Node) String() string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case NodeSegment:
		return n.Seg.String()
	case NodeNot:
		return "!" + n.childString(0, true)
	case NodeOptional:
		// Postfix ? binds tighter than every infix operator; any non-leaf
		// child keeps parentheses so String round-trips the parser.
		s := n.Children[0].String()
		if n.Children[0].Kind != NodeSegment {
			s = "(" + s + ")"
		}
		return s + "?"
	case NodeConcat:
		return n.joinChildren("")
	case NodeAnd:
		return n.joinChildren(" & ")
	case NodeOr:
		return n.joinChildren(" | ")
	default:
		return ""
	}
}

func (n *Node) joinChildren(sep string) string {
	parts := make([]string, len(n.Children))
	for i := range n.Children {
		parts[i] = n.childString(i, false)
	}
	return strings.Join(parts, sep)
}

// childString parenthesizes children whose operator binds less tightly than
// the parent, so String round-trips through the parser.
func (n *Node) childString(i int, unary bool) string {
	c := n.Children[i]
	s := c.String()
	if needsParens(n.Kind, c.Kind, unary) {
		return "(" + s + ")"
	}
	return s
}

// precedence: NOT > CONCAT > AND > OR.
func prec(k NodeKind) int {
	switch k {
	case NodeOr:
		return 1
	case NodeAnd:
		return 2
	case NodeConcat:
		return 3
	case NodeNot, NodeOptional:
		return 4
	default:
		return 5
	}
}

func needsParens(parent, child NodeKind, unary bool) bool {
	if child == NodeSegment {
		return false
	}
	if unary {
		return child != NodeNot
	}
	// Same-kind nesting keeps its parentheses: grouping is semantically
	// meaningful for CONCAT (nested means weight sub-chains differently),
	// and preserving it everywhere makes String/Parse exact inverses.
	return prec(child) < prec(parent) || child == parent
}

// String renders the query in canonical regex syntax.
func (q Query) String() string {
	if q.Root == nil {
		return ""
	}
	return q.Root.String()
}

// Clone deep-copies a node tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Kind: n.Kind}
	if n.Seg != nil {
		seg := *n.Seg
		if n.Seg.Sketch != nil {
			seg.Sketch = append([]Point(nil), n.Seg.Sketch...)
		}
		if n.Seg.Pat.Sub != nil {
			seg.Pat.Sub = n.Seg.Pat.Sub.Clone()
		}
		cp.Seg = &seg
	}
	if n.Children != nil {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Clone deep-copies the query.
func (q Query) Clone() Query { return Query{Root: q.Root.Clone()} }

// Walk visits every node in the tree in depth-first pre-order, descending
// into nested pattern sub-queries as well.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	if n.Seg != nil && n.Seg.Pat.Sub != nil {
		n.Seg.Pat.Sub.Walk(visit)
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Segments returns the segments of the tree in left-to-right order,
// not descending into nested sub-queries.
func (n *Node) Segments() []*Segment {
	var segs []*Segment
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil {
			return
		}
		if m.Kind == NodeSegment {
			segs = append(segs, m.Seg)
			return
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return segs
}

// IsFuzzy reports whether any segment in the query is fuzzy — missing at
// least one of the start or end x locations (Section 6).
func (q Query) IsFuzzy() bool {
	fuzzy := false
	q.Root.Walk(func(n *Node) {
		if n.Kind == NodeSegment && n.Seg.IsFuzzy() {
			fuzzy = true
		}
	})
	return fuzzy
}

// HasPositionRefs reports whether any segment uses the POSITION primitive.
func (q Query) HasPositionRefs() bool {
	found := false
	q.Root.Walk(func(n *Node) {
		if n.Kind == NodeSegment && n.Seg.Pat.Kind == PatPosition {
			found = true
		}
	})
	return found
}

// XRanges collects the literal [x.s, x.e] windows referenced anywhere in the
// query. The executor's push-down optimizations use these to prune data
// outside referenced ranges (Section 5.4). ok is false if any segment lacks
// a pinned window, in which case the whole x domain is needed.
func (q Query) XRanges() (ranges [][2]float64, ok bool) {
	ok = true
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == NodeOptional {
			// An absent optional imposes no window, so its pins must not
			// filter candidates and the query is not fully pinned.
			ok = false
			return
		}
		if n.Kind == NodeSegment {
			l := n.Seg.Loc
			if l.XPinned() {
				ranges = append(ranges, [2]float64{l.XS.Value, l.XE.Value})
			} else {
				ok = false
			}
		}
		if n.Seg != nil && n.Seg.Pat.Sub != nil {
			rec(n.Seg.Pat.Sub)
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(q.Root)
	return ranges, ok
}

// HasYConstraints reports whether any segment constrains y values, which
// disables z-score normalization in GROUP (Section 5.3).
func (q Query) HasYConstraints() bool {
	found := false
	q.Root.Walk(func(n *Node) {
		if n.Kind != NodeSegment {
			return
		}
		if n.Seg.Loc.YS.Set || n.Seg.Loc.YE.Set {
			found = true
		}
		if len(n.Seg.Sketch) > 0 {
			found = true
		}
	})
	return found
}

// Validate checks structural invariants of the query tree and returns a
// descriptive error for the first violation found. A validated query is safe
// to normalize and execute.
func (q Query) Validate() error {
	if q.Root == nil {
		return fmt.Errorf("shape: empty query")
	}
	return validateNode(q.Root, 0)
}

func validateNode(n *Node, depth int) error {
	if depth > 32 {
		return fmt.Errorf("shape: query nesting exceeds depth 32")
	}
	switch n.Kind {
	case NodeSegment:
		if n.Seg == nil {
			return fmt.Errorf("shape: segment node without segment")
		}
		return validateSegment(n.Seg, depth)
	case NodeNot:
		if len(n.Children) != 1 {
			return fmt.Errorf("shape: OPPOSITE requires exactly one operand, got %d", len(n.Children))
		}
	case NodeOptional:
		if len(n.Children) != 1 {
			return fmt.Errorf("shape: OPTIONAL requires exactly one operand, got %d", len(n.Children))
		}
	case NodeConcat, NodeAnd, NodeOr:
		if len(n.Children) < 2 {
			return fmt.Errorf("shape: %s requires at least two operands, got %d", n.Kind, len(n.Children))
		}
	default:
		return fmt.Errorf("shape: unknown node kind %d", int(n.Kind))
	}
	for _, c := range n.Children {
		if err := validateNode(c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func validateSegment(s *Segment, depth int) error {
	if s.Pat.Kind == PatNone && s.Loc.IsZero() && len(s.Sketch) == 0 {
		return fmt.Errorf("shape: segment specifies no pattern, location, or sketch")
	}
	if s.Pat.Kind == PatSlope {
		if math.IsNaN(s.Pat.Slope) || s.Pat.Slope <= -90 || s.Pat.Slope >= 90 {
			return fmt.Errorf("shape: slope pattern must be in (-90, 90) degrees, got %v", s.Pat.Slope)
		}
	}
	if s.Pat.Kind == PatUDP && s.Pat.Name == "" {
		return fmt.Errorf("shape: user-defined pattern requires a name")
	}
	if s.Pat.Kind == PatNested {
		if s.Pat.Sub == nil {
			return fmt.Errorf("shape: nested pattern requires a sub-query")
		}
		if err := validateNode(s.Pat.Sub, depth+1); err != nil {
			return err
		}
	}
	if s.Pat.Kind == PatPosition && s.Pat.Ref.Kind == RefAbs && s.Pat.Ref.Index < 0 {
		return fmt.Errorf("shape: position reference index must be non-negative, got %d", s.Pat.Ref.Index)
	}
	l := s.Loc
	if l.XS.Set && l.XE.Set && !l.XS.Iter && !l.XE.Iter && l.XS.Value > l.XE.Value {
		return fmt.Errorf("shape: x.s (%v) must not exceed x.e (%v)", l.XS.Value, l.XE.Value)
	}
	if l.XE.Iter && !l.XS.Iter {
		return fmt.Errorf("shape: x.e iterator requires x.s iterator")
	}
	if l.XS.Iter && l.XS.IterOffset != 0 {
		return fmt.Errorf("shape: x.s iterator must not carry an offset")
	}
	if l.XS.Iter && l.XE.Set && !l.XE.Iter {
		return fmt.Errorf("shape: x.s iterator requires x.e to be an iterator offset")
	}
	if l.XE.Iter && l.XE.IterOffset < 1 {
		return fmt.Errorf("shape: iterator window width must be >= 1, got %v", l.XE.IterOffset)
	}
	m := s.Mod
	if m.Kind == ModQuantifier {
		if !m.HasMin && !m.HasMax {
			return fmt.Errorf("shape: quantifier requires at least one bound")
		}
		if m.HasMin && m.Min < 0 || m.HasMax && m.Max < 0 {
			return fmt.Errorf("shape: quantifier bounds must be non-negative")
		}
		if m.HasMin && m.HasMax && m.Min > m.Max {
			return fmt.Errorf("shape: quantifier min (%d) exceeds max (%d)", m.Min, m.Max)
		}
	}
	if (m.Kind == ModMoreFactor || m.Kind == ModLessFactor) && m.Factor <= 0 {
		return fmt.Errorf("shape: modifier factor must be positive, got %v", m.Factor)
	}
	for i := 1; i < len(s.Sketch); i++ {
		if s.Sketch[i].X < s.Sketch[i-1].X {
			return fmt.Errorf("shape: sketch points must be sorted by x")
		}
	}
	return nil
}

// Equal reports structural equality of two trees.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || len(n.Children) != len(o.Children) {
		return false
	}
	if (n.Seg == nil) != (o.Seg == nil) {
		return false
	}
	if n.Seg != nil && !segEqual(n.Seg, o.Seg) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

func segEqual(a, b *Segment) bool {
	if a.Loc != b.Loc || a.Mod != b.Mod {
		return false
	}
	if a.Pat.Kind != b.Pat.Kind || a.Pat.Slope != b.Pat.Slope ||
		a.Pat.Ref != b.Pat.Ref || a.Pat.Name != b.Pat.Name {
		return false
	}
	if (a.Pat.Sub == nil) != (b.Pat.Sub == nil) {
		return false
	}
	if a.Pat.Sub != nil && !a.Pat.Sub.Equal(b.Pat.Sub) {
		return false
	}
	if len(a.Sketch) != len(b.Sketch) {
		return false
	}
	for i := range a.Sketch {
		if a.Sketch[i] != b.Sketch[i] {
			return false
		}
	}
	return true
}

// trimFloat formats a float without trailing zeros.
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
