// Package text provides the lexical substrate of the natural-language
// parser: tokenization, edit distance, light stemming, the synonym lexicon
// of shape entities, and a compact embedded synset graph ("wordnet-lite")
// for the semantic-similarity fallback the paper uses when edit distance is
// inconclusive (Section 4, "Identifying Pattern and Modifier Value").
package text

import (
	"strconv"
	"strings"
	"unicode"
)

// Token is one lexical unit of a natural-language query.
type Token struct {
	Text string // lowercased
	Raw  string
	// IsNumber marks numeric tokens; Num holds the parsed value.
	IsNumber bool
	Num      float64
	// IsPunct marks punctuation tokens.
	IsPunct bool
	// Pos is the byte offset in the original query.
	Pos int
}

// Tokenize splits a query into word, number and punctuation tokens.
// Contractions and hyphenated words stay together ("up-regulated").
func Tokenize(s string) []Token {
	var tokens []Token
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r >= '0' && r <= '9' || r == '.' && i+1 < len(s) && isDigit(s[i+1]):
			start := i
			for i < len(s) && (isDigit(s[i]) || s[i] == '.') {
				i++
			}
			raw := s[start:i]
			n, err := strconv.ParseFloat(strings.TrimSuffix(raw, "."), 64)
			if err == nil {
				tokens = append(tokens, Token{Text: raw, Raw: raw, IsNumber: true, Num: n, Pos: start})
			}
		case isWordRune(r):
			start := i
			for i < len(s) && (isWordRune(rune(s[i])) || s[i] == '-' || s[i] == '\'') {
				i++
			}
			raw := s[start:i]
			tokens = append(tokens, Token{Text: strings.ToLower(raw), Raw: raw, Pos: start})
		default:
			tokens = append(tokens, Token{Text: string(r), Raw: string(r), IsPunct: true, Pos: i})
			i++
		}
	}
	return tokens
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isWordRune(r rune) bool { return unicode.IsLetter(r) || r == '_' }

// EditDistance computes the Levenshtein distance between two strings.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedEditDistance is the edit distance divided by the average length
// of the two words, the paper's matching measure.
func NormalizedEditDistance(a, b string) float64 {
	avg := float64(len([]rune(a))+len([]rune(b))) / 2
	if avg == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / avg
}

// Stem strips common inflection suffixes (a deliberately light stemmer:
// "rising" → "rise" is not attempted; matching uses synonyms with -ing
// forms included, and Stem only handles plural/past/adverb suffixes).
func Stem(w string) string {
	for _, suf := range []string{"ies", "es", "s", "ed", "ly"} {
		if strings.HasSuffix(w, suf) && len(w) > len(suf)+2 {
			return w[:len(w)-len(suf)]
		}
	}
	return w
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
