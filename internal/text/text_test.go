package text

import (
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("show me genes rising from 2 to 5.5, then falling!")
	var words []string
	for _, tok := range toks {
		words = append(words, tok.Text)
	}
	want := []string{"show", "me", "genes", "rising", "from", "2", "to", "5.5", ",", "then", "falling", "!"}
	if len(words) != len(want) {
		t.Fatalf("tokens = %v, want %v", words, want)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, words[i], want[i])
		}
	}
	if !toks[5].IsNumber || toks[5].Num != 2 {
		t.Fatalf("token 5 = %+v, want number 2", toks[5])
	}
	if !toks[7].IsNumber || toks[7].Num != 5.5 {
		t.Fatalf("token 7 = %+v, want number 5.5", toks[7])
	}
	if !toks[8].IsPunct {
		t.Fatal("comma should be punctuation")
	}
}

func TestTokenizeHyphen(t *testing.T) {
	toks := Tokenize("up-regulated genes")
	if toks[0].Text != "up-regulated" {
		t.Fatalf("hyphenated word split: %v", toks[0].Text)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize("   "); len(toks) != 0 {
		t.Fatalf("whitespace should tokenize to nothing, got %v", toks)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"rising", "rising", 0},
		{"increase", "increasing", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Edit distance is a metric: symmetric and obeys the triangle inequality.
func TestEditDistanceMetric(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 12 || len(b) > 12 || len(c) > 12 {
			return true
		}
		ab := EditDistance(a, b)
		ba := EditDistance(b, a)
		ac := EditDistance(a, c)
		cb := EditDistance(c, b)
		return ab == ba && ab <= ac+cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEditDistance(t *testing.T) {
	if d := NormalizedEditDistance("rising", "rising"); d != 0 {
		t.Fatalf("identical words = %v", d)
	}
	if d := NormalizedEditDistance("", ""); d != 0 {
		t.Fatalf("empty = %v", d)
	}
	if d := NormalizedEditDistance("abcd", "wxyz"); d != 1 {
		t.Fatalf("disjoint = %v, want 1", d)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"peaks":   "peak",
		"dropped": "dropp",
		"sharply": "sharp",
		"up":      "up",
		"es":      "es",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMatchValueEditDistance(t *testing.T) {
	cases := []struct {
		word string
		want EntityValue
	}{
		{"rising", ValUp},
		{"risin", ValUp}, // typo within edit distance
		{"decreasing", ValDown},
		{"stable", ValFlat},
		{"spikes", ValPeak},
		{"trough", ValValley},
		{"sharply", ValSharp},
		{"slowly", ValGradual},
	}
	candidates := []EntityValue{ValUp, ValDown, ValFlat, ValPeak, ValValley, ValSharp, ValGradual}
	for _, c := range cases {
		got, ok := MatchValue(c.word, candidates)
		if !ok || got != c.want {
			t.Errorf("MatchValue(%q) = %v, %v; want %v", c.word, got, ok, c.want)
		}
	}
}

func TestMatchValueSemanticFallback(t *testing.T) {
	// "summit" is not within edit distance 0.1 of "up" synonyms but shares
	// the peak synset which cross-links to up.
	got, ok := MatchValue("summit", []EntityValue{ValUp, ValDown})
	if !ok || got != ValUp {
		t.Fatalf("MatchValue(summit) = %v, %v; want up via synset", got, ok)
	}
	if _, ok := MatchValue("xylophone", []EntityValue{ValUp, ValDown}); ok {
		t.Fatal("unrelated word should not match")
	}
}

func TestSemanticSimilarity(t *testing.T) {
	if s := SemanticSimilarity("peak", "rising"); s <= 0 {
		t.Fatalf("peak~rising = %v, want positive (cross-linked)", s)
	}
	if s := SemanticSimilarity("peak", "falling"); s != 0 {
		t.Fatalf("peak~falling = %v, want 0", s)
	}
	if s := SemanticSimilarity("qqq", "www"); s != 0 {
		t.Fatalf("unknown words = %v", s)
	}
}

func TestMonthAndSmallNumbers(t *testing.T) {
	if n, ok := MonthNumber("november"); !ok || n != 11 {
		t.Fatalf("november = %v, %v", n, ok)
	}
	if _, ok := MonthNumber("smarch"); ok {
		t.Fatal("smarch is not a month")
	}
	if n, ok := SmallNumber("twice"); !ok || n != 2 {
		t.Fatalf("twice = %v, %v", n, ok)
	}
	if n, ok := SmallNumber("seven"); !ok || n != 7 {
		t.Fatalf("seven = %v, %v", n, ok)
	}
}
