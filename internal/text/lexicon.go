package text

import "sort"

// EntityValue names a canonical shape-entity value the lexicon can map
// words onto: pattern values, modifier values, operator connectives and
// structural markers.
type EntityValue string

// Canonical entity values. Pattern values mirror Table 1; operator
// connectives cover how crowd workers phrase them (Section 4's synonym
// lists, e.g. "increasing" for up and "next" for CONCAT).
const (
	ValUp       EntityValue = "up"
	ValDown     EntityValue = "down"
	ValFlat     EntityValue = "flat"
	ValPeak     EntityValue = "peak"   // nested up⊗down
	ValValley   EntityValue = "valley" // nested down⊗up
	ValSharp    EntityValue = "sharp"
	ValGradual  EntityValue = "gradual"
	ValConcat   EntityValue = "concat"
	ValAnd      EntityValue = "and"
	ValOr       EntityValue = "or"
	ValNot      EntityValue = "not"
	ValAtLeast  EntityValue = "atleast"
	ValAtMost   EntityValue = "atmost"
	ValExactly  EntityValue = "exactly"
	ValTwice    EntityValue = "twice"
	ValThrice   EntityValue = "thrice"
	ValStart    EntityValue = "start" // "beginning", anchors x.s
	ValEnd      EntityValue = "end"
	ValWidth    EntityValue = "width" // window/span markers
	ValSimilarD EntityValue = "similar"
)

// synonyms maps each canonical value to the word forms observed for it.
var synonyms = map[EntityValue][]string{
	ValUp: {"up", "increase", "increasing", "increases", "increased", "rise", "rising", "rises", "rose",
		"grow", "growing", "grows", "grew", "growth", "climb", "climbing", "climbs", "upward", "upwards",
		"ascend", "ascending", "gain", "gaining", "up-regulated", "upregulated", "improve", "improving", "recover", "recovering"},
	ValDown: {"down", "decrease", "decreasing", "decreases", "decreased", "fall", "falling", "falls", "fell",
		"drop", "dropping", "drops", "dropped", "decline", "declining", "declines", "downward", "downwards",
		"descend", "descending", "shrink", "shrinking", "reduce", "reducing", "down-regulated", "downregulated",
		"lose", "losing", "sink", "sinking"},
	ValFlat: {"flat", "stable", "stabilize", "stabilized", "stabilizes", "steady", "constant", "plateau",
		"plateaus", "unchanged", "still", "level", "flatten", "flattens", "flattening", "stagnant"},
	ValPeak:   {"peak", "peaks", "peaked", "spike", "spikes", "spiked", "top", "tops", "summit", "bump", "bumps"},
	ValValley: {"valley", "valleys", "dip", "dips", "dipped", "trough", "troughs", "bottom", "bottoms", "crater"},
	ValSharp: {"sharp", "sharply", "steep", "steeply", "rapid", "rapidly", "quick", "quickly", "sudden",
		"suddenly", "drastic", "drastically", "fast", "abrupt", "abruptly", "strong", "strongly"},
	ValGradual: {"gradual", "gradually", "slow", "slowly", "gentle", "gently", "mild", "mildly", "slight", "slightly", "steadily"},
	ValConcat: {"then", "next", "after", "afterwards", "followed", "following", "later", "subsequently",
		"before", "thereafter"},
	ValAnd:      {"and", "also", "both", "while", "simultaneously", "plus"},
	ValOr:       {"or", "either", "alternatively"},
	ValNot:      {"not", "no", "never", "without", "except"},
	ValAtLeast:  {"atleast", "least", "minimum", "more"},
	ValAtMost:   {"atmost", "most", "maximum", "fewer", "less"},
	ValExactly:  {"exactly", "precisely"},
	ValTwice:    {"twice", "two"},
	ValThrice:   {"thrice", "three"},
	ValStart:    {"start", "starting", "beginning", "begin", "begins", "initially", "first"},
	ValEnd:      {"end", "ending", "ends", "finally", "last", "eventually"},
	ValWidth:    {"span", "window", "width", "duration", "period", "interval"},
	ValSimilarD: {"similar", "same", "like", "matching", "resembling"},
}

// Synonyms returns the word forms for a canonical value.
func Synonyms(v EntityValue) []string { return synonyms[v] }

// synsetIDs assigns concept identifiers to words: words sharing a concept
// are semantically related. This is the embedded stand-in for the WordNet
// synset lookup the paper uses ([39]); it covers the trendline vocabulary.
var synsetIDs = map[string][]int{}

func init() {
	// Build synsets from the synonym table: every canonical value is one
	// concept; a few cross-concept links add graded similarity.
	concept := 0
	order := make([]EntityValue, 0, len(synonyms))
	for v := range synonyms {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		for _, w := range synonyms[v] {
			synsetIDs[w] = append(synsetIDs[w], concept)
		}
		concept++
	}
	// Cross-links: peaks involve rising, valleys involve falling; sharp
	// movements relate to both directions.
	link := func(v EntityValue, extra EntityValue) {
		id := conceptOf(order, extra)
		for _, w := range synonyms[v] {
			synsetIDs[w] = append(synsetIDs[w], id)
		}
	}
	link(ValPeak, ValUp)
	link(ValValley, ValDown)
	link(ValTwice, ValExactly)
	link(ValThrice, ValExactly)
}

func conceptOf(order []EntityValue, v EntityValue) int {
	for i, o := range order {
		if o == v {
			return i
		}
	}
	return -1
}

// SemanticSimilarity returns the Jaccard overlap of the two words' synsets
// in [0, 1] — the semantic fallback when edit distance is inconclusive.
// Unknown words have similarity 0.
func SemanticSimilarity(a, b string) float64 {
	sa, sb := synsetIDs[a], synsetIDs[b]
	if len(sa) == 0 {
		sa = synsetIDs[Stem(a)]
	}
	if len(sb) == 0 {
		sb = synsetIDs[Stem(b)]
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter, union := 0, len(sa)
	for _, idB := range sb {
		found := false
		for _, idA := range sa {
			if idA == idB {
				found = true
				break
			}
		}
		if found {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// MatchValue resolves a word to the best canonical value among candidates,
// following the paper's two-step rule: the value whose synonym list has the
// lowest normalized edit distance wins if that distance is at most 0.1 (or
// an exact stem match); otherwise the value with the highest average
// semantic similarity wins, provided it is positive.
func MatchValue(word string, candidates []EntityValue) (EntityValue, bool) {
	word = normalizeWord(word)
	bestVal, bestDist := EntityValue(""), 1e9
	bestRawVal, bestRaw := EntityValue(""), 1<<30
	for _, v := range candidates {
		for _, syn := range synonyms[v] {
			d := NormalizedEditDistance(word, syn)
			if d < bestDist {
				bestDist, bestVal = d, v
			}
			if sd := NormalizedEditDistance(Stem(word), Stem(syn)); sd < bestDist {
				bestDist, bestVal = sd, v
			}
			if r := EditDistance(word, syn); r < bestRaw {
				bestRaw, bestRawVal = r, v
			}
		}
	}
	if bestDist <= 0.1 {
		return bestVal, true
	}
	// The paper also accepts close raw matches (edit distance ≤ 2); for
	// words of 5+ letters a single raw edit is a typo, not a new word
	// (shorter words collide too easily: "show" vs "slow").
	if bestRaw <= 1 && len(word) >= 5 {
		return bestRawVal, true
	}
	bestVal, bestSim := EntityValue(""), 0.0
	for _, v := range candidates {
		var total float64
		for _, syn := range synonyms[v] {
			total += SemanticSimilarity(word, syn)
		}
		if len(synonyms[v]) == 0 {
			continue
		}
		if avg := total / float64(len(synonyms[v])); avg > bestSim {
			bestSim, bestVal = avg, v
		}
	}
	if bestSim > 0 {
		return bestVal, true
	}
	return "", false
}

func normalizeWord(w string) string {
	// Hyphen variants collapse: up-regulated / upregulated.
	out := make([]rune, 0, len(w))
	for _, r := range w {
		if r == '\'' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// MonthNumber maps month names to 1–12, used for queries like "rising from
// November to January".
func MonthNumber(w string) (float64, bool) {
	months := map[string]float64{
		"january": 1, "jan": 1, "february": 2, "feb": 2, "march": 3, "mar": 3,
		"april": 4, "apr": 4, "may": 5, "june": 6, "jun": 6, "july": 7, "jul": 7,
		"august": 8, "aug": 8, "september": 9, "sep": 9, "sept": 9,
		"october": 10, "oct": 10, "november": 11, "nov": 11, "december": 12, "dec": 12,
	}
	n, ok := months[w]
	return n, ok
}

// SmallNumber maps number words to values ("one" … "ten", "twice" → 2).
func SmallNumber(w string) (float64, bool) {
	nums := map[string]float64{
		"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
		"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
		"once": 1, "twice": 2, "thrice": 3,
	}
	n, ok := nums[w]
	return n, ok
}
