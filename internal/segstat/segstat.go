// Package segstat implements the summarized statistics that ShapeSearch's
// GROUP operator emits for each small line segment of a trendline, and the
// additive merge of those statistics (Theorem 5.1 of the paper).
//
// A line segment fitted over a set of points (xi, yi) is fully determined by
// five numbers: Σxi, Σyi, Σxi·yi, Σxi², and n. Statistics over two adjacent
// visual segments add component-wise, so the least-squares fit over any
// contiguous region of a trendline can be recovered in O(1) from prefix
// sums of per-bin statistics, with no loss of accuracy.
package segstat

import "math"

// Stats holds the five summarized statistics of a set of points.
// The zero value is an empty segment.
type Stats struct {
	SumX  float64 // Σ xi
	SumY  float64 // Σ yi
	SumXY float64 // Σ xi·yi
	SumXX float64 // Σ xi²
	N     float64 // number of points
}

// Add accumulates a single point into s.
func (s *Stats) Add(x, y float64) {
	s.SumX += x
	s.SumY += y
	s.SumXY += x * y
	s.SumXX += x * x
	s.N++
}

// Merge returns the summarized statistics of the union of two point sets.
// This is the additivity property of Theorem 5.1: the fit over a combined
// region equals the fit computed from the summed statistics.
func Merge(a, b Stats) Stats {
	return Stats{
		SumX:  a.SumX + b.SumX,
		SumY:  a.SumY + b.SumY,
		SumXY: a.SumXY + b.SumXY,
		SumXX: a.SumXX + b.SumXX,
		N:     a.N + b.N,
	}
}

// Sub returns the statistics of the set difference whole − part, assuming
// part ⊆ whole. It is the inverse of Merge and powers prefix-sum range
// queries.
func Sub(whole, part Stats) Stats {
	return Stats{
		SumX:  whole.SumX - part.SumX,
		SumY:  whole.SumY - part.SumY,
		SumXY: whole.SumXY - part.SumXY,
		SumXX: whole.SumXX - part.SumXX,
		N:     whole.N - part.N,
	}
}

// Slope returns the least-squares slope of the line fitted over the points
// summarized by s. Degenerate segments (fewer than two points, or zero
// x-variance) report a slope of 0 and ok=false.
func (s Stats) Slope() (slope float64, ok bool) {
	if s.N < 2 {
		return 0, false
	}
	den := s.N*s.SumXX - s.SumX*s.SumX
	if den == 0 || math.IsNaN(den) {
		return 0, false
	}
	num := s.N*s.SumXY - s.SumX*s.SumY
	sl := num / den
	if math.IsNaN(sl) || math.IsInf(sl, 0) {
		return 0, false
	}
	return sl, true
}

// Intercept returns the least-squares intercept δ = (Σy − θ·Σx)/n of the
// fitted line. ok is false for degenerate segments.
func (s Stats) Intercept() (intercept float64, ok bool) {
	slope, ok := s.Slope()
	if !ok {
		return 0, false
	}
	return (s.SumY - slope*s.SumX) / s.N, true
}

// Line returns both slope and intercept of the fitted line.
func (s Stats) Line() (slope, intercept float64, ok bool) {
	slope, ok = s.Slope()
	if !ok {
		return 0, 0, false
	}
	return slope, (s.SumY - slope*s.SumX) / s.N, true
}

// MeanY returns the mean of the y values, or 0 for an empty segment.
func (s Stats) MeanY() float64 {
	if s.N == 0 {
		return 0
	}
	return s.SumY / s.N
}

// FromPoints computes the summarized statistics of a point set directly.
func FromPoints(xs, ys []float64) Stats {
	var s Stats
	for i := range xs {
		s.Add(xs[i], ys[i])
	}
	return s
}

// Prefix is a prefix-sum array over per-bin statistics. Prefix[i] summarizes
// bins [0, i); Range(i, j) recovers the statistics of bins [i, j) in O(1).
type Prefix []Stats

// BuildPrefix constructs the prefix array for a sequence of per-bin stats.
// len(BuildPrefix(bins)) == len(bins)+1.
func BuildPrefix(bins []Stats) Prefix {
	p := make(Prefix, 1, len(bins)+1)
	return p.Extend(bins)
}

// Extend appends per-bin statistics to an existing prefix array and returns
// the grown array — O(len(bins)) amortized, independent of how many bins the
// prefix already covers. Because it performs exactly the Merge sequence that
// BuildPrefix would, BuildPrefix(all) and BuildPrefix(head).Extend(tail) are
// bit-identical. The receiver's backing array may be reused; callers that
// shared the old slice should treat Extend like append.
func (p Prefix) Extend(bins []Stats) Prefix {
	if len(p) == 0 {
		p = make(Prefix, 1, len(bins)+1)
	}
	for _, b := range bins {
		p = append(p, Merge(p[len(p)-1], b))
	}
	return p
}

// Range returns the merged statistics of bins [i, j). It panics if the
// range is out of bounds or inverted, mirroring slice semantics.
func (p Prefix) Range(i, j int) Stats {
	if i < 0 || j > len(p)-1 || i > j {
		panic("segstat: Range out of bounds")
	}
	return Sub(p[j], p[i])
}

// NumBins reports how many bins the prefix array covers.
func (p Prefix) NumBins() int { return len(p) - 1 }

// ZNormalize rescales ys in place to zero mean and unit standard deviation
// (z-score normalization, applied by GROUP when the query has no constraints
// on y values). Constant series are left centered at 0.
func ZNormalize(ys []float64) {
	if len(ys) == 0 {
		return
	}
	var sum float64
	for _, y := range ys {
		sum += y
	}
	mean := sum / float64(len(ys))
	var varsum float64
	for _, y := range ys {
		d := y - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(len(ys)))
	if std == 0 || math.IsNaN(std) {
		for i := range ys {
			ys[i] -= mean
		}
		return
	}
	for i := range ys {
		ys[i] = (ys[i] - mean) / std
	}
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
