package segstat

// Extremes maintains the r smallest and r largest values of a stream in
// sorted order, O(r) worst-case (O(1) when the value is not extreme) per
// observation. ShapeSearch's sound pruning bound keeps the capped-extreme
// adjacent-pair slopes of each visualization in this form; holding them in a
// streaming type lets an append path absorb new pairs without revisiting the
// ones already seen.
type Extremes struct {
	r    int
	low  []float64 // r smallest, ascending
	high []float64 // r largest, descending
}

// NewExtremes returns an empty tracker for the r most extreme values per
// end. r must be positive.
func NewExtremes(r int) *Extremes {
	return &Extremes{
		r:    r,
		low:  make([]float64, 0, r),
		high: make([]float64, 0, r),
	}
}

// Observe feeds one value.
func (e *Extremes) Observe(s float64) {
	e.low = insertAsc(e.low, e.r, s)
	e.high = insertDesc(e.high, e.r, s)
}

// Low returns the smallest values seen, ascending. The slice aliases
// internal state: read-only, invalidated by the next Observe.
func (e *Extremes) Low() []float64 { return e.low }

// High returns the largest values seen, descending. Same aliasing caveat as
// Low.
func (e *Extremes) High() []float64 { return e.high }

// PrefixSums returns fresh prefix-sum arrays over Low and High:
// lowPrefix[i] = Σ Low()[:i], highPrefix[i] = Σ High()[:i].
func (e *Extremes) PrefixSums() (lowPrefix, highPrefix []float64) {
	lowPrefix = make([]float64, len(e.low)+1)
	highPrefix = make([]float64, len(e.high)+1)
	for i, s := range e.low {
		lowPrefix[i+1] = lowPrefix[i] + s
	}
	for i, s := range e.high {
		highPrefix[i+1] = highPrefix[i] + s
	}
	return lowPrefix, highPrefix
}

// insertAsc maintains the r smallest values seen, ascending.
func insertAsc(sel []float64, r int, s float64) []float64 {
	if len(sel) == r {
		if s >= sel[r-1] {
			return sel
		}
		sel = sel[:r-1]
	}
	i := len(sel)
	sel = append(sel, s)
	for i > 0 && sel[i-1] > s {
		sel[i] = sel[i-1]
		i--
	}
	sel[i] = s
	return sel
}

// insertDesc maintains the r largest values seen, descending.
func insertDesc(sel []float64, r int, s float64) []float64 {
	if len(sel) == r {
		if s <= sel[r-1] {
			return sel
		}
		sel = sel[:r-1]
	}
	i := len(sel)
	sel = append(sel, s)
	for i > 0 && sel[i-1] < s {
		sel[i] = sel[i-1]
		i--
	}
	sel[i] = s
	return sel
}
